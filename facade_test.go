package ocd_test

import (
	"bytes"
	"strings"
	"testing"

	"ocd"
)

func TestFacadeFlowBounds(t *testing.T) {
	g := ocd.NewGraph(3)
	if err := g.AddArc(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddArc(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	inst := ocd.NewInstance(g, 4)
	inst.Have[0].AddRange(0, 4)
	inst.Want[2].AddRange(0, 4)

	flowLB, err := ocd.FlowMakespanLowerBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	if flowLB != 2 {
		t.Errorf("flow bound = %d, want 2 (ceil(4/2) = dist)", flowLB)
	}
	combined, err := ocd.CombinedMakespanLowerBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	if combined < flowLB || combined < ocd.MakespanLowerBound(inst) {
		t.Errorf("combined bound %d below components", combined)
	}
	value, cut, err := ocd.MaxFlow(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if value != 2 || len(cut) == 0 {
		t.Errorf("max flow = %d cut=%v", value, cut)
	}
}

func TestFacadeSolveFOCDILP(t *testing.T) {
	inst := ocd.Figure1Instance()
	sched, tau, err := ocd.SolveFOCDILP(inst)
	if err != nil {
		t.Fatal(err)
	}
	if tau != 2 || sched.Makespan() != 2 {
		t.Errorf("ILP FOCD tau = %d (schedule %d), want 2", tau, sched.Makespan())
	}
}

func TestFacadeJSONRoundTrip(t *testing.T) {
	g, err := ocd.RandomTopology(10, ocd.DefaultCaps, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst := ocd.SingleFile(g, 4)
	var buf bytes.Buffer
	if err := ocd.EncodeInstanceJSON(&buf, inst); err != nil {
		t.Fatal(err)
	}
	back, err := ocd.DecodeInstanceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != inst.N() {
		t.Error("instance round trip changed size")
	}

	res, err := ocd.RunHeuristic(inst, "local", ocd.RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ocd.EncodeScheduleJSON(&buf, res.Schedule); err != nil {
		t.Fatal(err)
	}
	sched, err := ocd.DecodeScheduleJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Moves() != res.Schedule.Moves() {
		t.Error("schedule round trip changed moves")
	}
}

func TestFacadeRenderTimeline(t *testing.T) {
	inst := ocd.Figure1Instance()
	sched, err := ocd.SolveEOCD(inst, 0, ocd.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := ocd.RenderTimeline(inst, sched, 4)
	if !strings.Contains(out, "step 1") || !strings.Contains(out, "100%") {
		t.Errorf("timeline malformed:\n%s", out)
	}
}

func TestFacadeBaselineFactories(t *testing.T) {
	g, err := ocd.RandomTopology(15, ocd.DefaultCaps, 4)
	if err != nil {
		t.Fatal(err)
	}
	inst := ocd.SingleFile(g, 8)
	for name, f := range map[string]ocd.StrategyFactory{
		"tree":           ocd.TreeFactory(),
		"forest":         ocd.ForestFactory(2),
		"local-delayed":  ocd.LocalDelayedFactory(1),
		"protocol-local": ocd.ProtocolLocalFactory(),
	} {
		res, err := ocd.RunStrategy(inst, f, ocd.RunOptions{Seed: 3, IdlePatience: 8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed {
			t.Errorf("%s incomplete", name)
		}
		if err := ocd.Validate(inst, res.Schedule); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	cases := map[string]func() (*ocd.Table, error){
		"fig3": func() (*ocd.Table, error) {
			return ocd.ExperimentGraphSize(true, []int{12}, 8, 1, 1, 2)
		},
		"fig4": func() (*ocd.Table, error) {
			return ocd.ExperimentReceiverDensity(14, []float64{0.5}, 8, 1, 1, 2)
		},
		"fig5": func() (*ocd.Table, error) {
			return ocd.ExperimentNumFiles(13, []int{2}, 8, 1, 1, false, 2)
		},
		"fig6": func() (*ocd.Table, error) {
			return ocd.ExperimentNumFiles(13, []int{2}, 8, 1, 1, true, 2)
		},
		"fig7": func() (*ocd.Table, error) {
			return ocd.ExperimentFigure7(1, 4, 0.5, 2)
		},
		"thm4": func() (*ocd.Table, error) {
			return ocd.ExperimentTheorem4(1, []int{2}, 1)
		},
		"oracle": func() (*ocd.Table, error) {
			return ocd.ExperimentOracleAdditive([]int{12}, 6, 2)
		},
		"dynamic": func() (*ocd.Table, error) {
			return ocd.ExperimentDynamicConditions(10, 6, 2)
		},
		"coding": func() (*ocd.Table, error) {
			return ocd.ExperimentLossCoding(8, 16, 0.2, []float64{1.5}, 2)
		},
		"underlay": func() (*ocd.Table, error) {
			return ocd.ExperimentUnderlay(40, 6, 8, 2)
		},
		"delay": func() (*ocd.Table, error) {
			return ocd.ExperimentKnowledgeDelay(10, 8, 1, 2)
		},
		"tradeoff": func() (*ocd.Table, error) {
			return ocd.ExperimentTradeoffCurve(ocd.Figure1Instance())
		},
		"protocol": func() (*ocd.Table, error) {
			return ocd.ExperimentProtocolComparison([]int{12}, 6, 2)
		},
		"bounds": func() (*ocd.Table, error) {
			return ocd.ExperimentBoundsQuality(1, 4, 2, 2)
		},
		"arch": func() (*ocd.Table, error) {
			return ocd.ExperimentArchitectures(12, 8, 2)
		},
		"ilp-vs-bnb": func() (*ocd.Table, error) {
			return ocd.ExperimentILPvsBnB(1, 4, 1, 2)
		},
	}
	for name, run := range cases {
		tab, err := run()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
		if tab.CSV() == "" || tab.ASCII() == "" {
			t.Errorf("%s: rendering failed", name)
		}
	}
}
