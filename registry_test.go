package ocd

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"ocd/internal/experiments"
)

// facadeFuncs parses ocd.go and returns every top-level Experiment* function
// that returns (*Table, error) — the facade surface the registry must cover.
// Helper functions like ExperimentNames (which returns []string) are not
// experiment runners and are excluded by the return-type requirement.
func facadeFuncs(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "ocd.go", nil, 0)
	if err != nil {
		t.Fatalf("parsing ocd.go: %v", err)
	}
	var names []string
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv != nil || !strings.HasPrefix(fn.Name.Name, "Experiment") {
			continue
		}
		res := fn.Type.Results
		if res == nil || len(res.List) != 2 {
			continue
		}
		star, ok := res.List[0].Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		if id, ok := star.X.(*ast.Ident); !ok || id.Name != "Table" {
			continue
		}
		names = append(names, fn.Name.Name)
	}
	if len(names) == 0 {
		t.Fatal("found no Experiment* facade functions in ocd.go")
	}
	return names
}

// TestRegistryCoversEveryFacadeFunction reconciles the facade and the
// registry in both directions: every exported Experiment* function must be
// backed by a registered spec, and every registered spec must name a facade
// function that actually exists. This keeps the two surfaces from drifting
// as experiments are added.
func TestRegistryCoversEveryFacadeFunction(t *testing.T) {
	registered := make(map[string]string) // facade name -> spec name
	for _, s := range experiments.Specs() {
		if prev, dup := registered[s.Facade]; dup {
			t.Errorf("specs %q and %q both claim facade %s", prev, s.Name, s.Facade)
		}
		registered[s.Facade] = s.Name
	}

	inFacade := make(map[string]bool)
	for _, name := range facadeFuncs(t) {
		inFacade[name] = true
		if _, ok := registered[name]; !ok {
			t.Errorf("facade function %s has no registered spec", name)
		}
	}
	for _, s := range experiments.Specs() {
		if !inFacade[s.Facade] {
			t.Errorf("spec %q names facade %s, which ocd.go does not define", s.Name, s.Facade)
		}
	}
}

// TestRunExperimentMatchesFacade routes the same experiment through the
// string-typed registry entry point and the typed facade function and
// requires identical tables.
func TestRunExperimentMatchesFacade(t *testing.T) {
	viaRegistry, err := RunExperiment("theorem4", map[string]string{"decoys": "1,4"})
	if err != nil {
		t.Fatal(err)
	}
	viaFacade, err := ExperimentTheorem4(1, []int{1, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if viaRegistry.ASCII() != viaFacade.ASCII() {
		t.Errorf("registry and facade outputs diverge:\n--- registry ---\n%s--- facade ---\n%s",
			viaRegistry.ASCII(), viaFacade.ASCII())
	}
}

func TestExperimentNames(t *testing.T) {
	names := ExperimentNames()
	if len(names) != len(experiments.Specs()) {
		t.Fatalf("ExperimentNames returned %d names, registry has %d specs", len(names), len(experiments.Specs()))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
