// Benchmarks regenerating each table/figure of the paper's evaluation at
// benchmark-friendly scale, plus ablations for the design choices called
// out in DESIGN.md. Run everything with:
//
//	go test -bench=. -benchmem .
//
// The full paper-scale figures are produced by cmd/ocdbench instead; these
// benchmarks exercise the same code paths with smaller parameters so the
// whole suite stays within laptop minutes.
package ocd_test

import (
	"testing"

	"ocd"
)

// benchInstance builds the standard single-file workload used by the
// figure benchmarks.
func benchInstance(b *testing.B, transitStub bool, n, tokens int) *ocd.Instance {
	b.Helper()
	var g *ocd.Graph
	var err error
	if transitStub {
		g, err = ocd.TransitStubTopology(n, ocd.DefaultCaps, 42)
	} else {
		g, err = ocd.RandomTopology(n, ocd.DefaultCaps, 42)
	}
	if err != nil {
		b.Fatal(err)
	}
	return ocd.SingleFile(g, tokens)
}

func benchHeuristics(b *testing.B, inst *ocd.Instance) {
	for _, name := range ocd.Heuristics() {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ocd.RunHeuristic(inst, name, ocd.RunOptions{Seed: int64(i), Prune: true})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal("run incomplete")
				}
			}
		})
	}
}

// BenchmarkFig1Tradeoff regenerates Figure 1: both certified optima on the
// tension gadget via branch-and-bound and the time-indexed ILP.
func BenchmarkFig1Tradeoff(b *testing.B) {
	inst := ocd.Figure1Instance()
	b.Run("focd-bnb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ocd.SolveFOCD(inst, ocd.ExactOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eocd-bnb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ocd.SolveEOCD(inst, 0, ocd.ExactOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ilp-tau3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ocd.SolveILP(inst, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig2GraphSizeRandom regenerates the Figure 2 series point at
// n=100 on the random topology (one run per heuristic per iteration).
func BenchmarkFig2GraphSizeRandom(b *testing.B) {
	benchHeuristics(b, benchInstance(b, false, 100, 100))
}

// BenchmarkFig3GraphSizeTransitStub is the Figure 3 counterpart on the
// transit-stub topology.
func BenchmarkFig3GraphSizeTransitStub(b *testing.B) {
	benchHeuristics(b, benchInstance(b, true, 100, 100))
}

// BenchmarkFig4ReceiverDensity regenerates a Figure 4 point: sparse
// receivers, where the bandwidth heuristic's caution pays off.
func BenchmarkFig4ReceiverDensity(b *testing.B) {
	g, err := ocd.RandomTopology(100, ocd.DefaultCaps, 42)
	if err != nil {
		b.Fatal(err)
	}
	inst := ocd.ReceiverDensity(g, 100, 0.3, 7)
	benchHeuristics(b, inst)
}

// BenchmarkFig5NumFiles regenerates a Figure 5 point: 8 files subdivided
// from one source's tokens.
func BenchmarkFig5NumFiles(b *testing.B) {
	g, err := ocd.RandomTopology(100, ocd.DefaultCaps, 42)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := ocd.MultiFile(g, 128, 8)
	if err != nil {
		b.Fatal(err)
	}
	benchHeuristics(b, inst)
}

// BenchmarkFig6MultiSender regenerates a Figure 6 point: the same
// subdivision with random per-file sources.
func BenchmarkFig6MultiSender(b *testing.B) {
	g, err := ocd.RandomTopology(100, ocd.DefaultCaps, 42)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := ocd.MultiSender(g, 128, 8, 11)
	if err != nil {
		b.Fatal(err)
	}
	benchHeuristics(b, inst)
}

// BenchmarkFig7Reduction regenerates the Figure 7 validation: reduce a
// 5-vertex graph and decide FOCD-in-2-steps exactly.
func BenchmarkFig7Reduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := ocd.ExperimentFigure7(1, 5, 0.4, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkThm4Competitive regenerates the Theorem 4 adversarial family
// measurement.
func BenchmarkThm4Competitive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ocd.ExperimentTheorem4(1, []int{1, 8, 64}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkILPvsBnB regenerates the §3.4 solver cross-check.
func BenchmarkILPvsBnB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ocd.ExperimentILPvsBnB(2, 4, 2, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md "key design decisions") ---

// BenchmarkPrune measures the §5.1 pruning post-pass on a flooded
// schedule — the post-pass design keeps the hot simulation loop free of
// bookkeeping.
func BenchmarkPrune(b *testing.B) {
	inst := benchInstance(b, false, 100, 100)
	res, err := ocd.RunHeuristic(inst, "random", ocd.RunOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ocd.Prune(inst, res.Schedule)
	}
}

// BenchmarkGlobalGreedy isolates the Global heuristic's greedy coordinated
// planner (the paper trades exhaustive diversity matching for this greedy
// sweep to function at scale).
func BenchmarkGlobalGreedy(b *testing.B) {
	inst := benchInstance(b, false, 200, 100)
	for i := 0; i < b.N; i++ {
		res, err := ocd.RunHeuristic(inst, "global", ocd.RunOptions{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkLowerBounds measures the §5.1 bound estimators that gate the
// exact solvers' pruning.
func BenchmarkLowerBounds(b *testing.B) {
	inst := benchInstance(b, false, 200, 100)
	b.Run("makespan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ocd.MakespanLowerBound(inst)
		}
	})
	b.Run("bandwidth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ocd.BandwidthLowerBound(inst)
		}
	})
}

// BenchmarkSteinerSerial measures the §3.3 serial Steiner schedule that
// anchors the bandwidth-optimality discussion.
func BenchmarkSteinerSerial(b *testing.B) {
	g, err := ocd.RandomTopology(60, ocd.DefaultCaps, 42)
	if err != nil {
		b.Fatal(err)
	}
	inst := ocd.SingleFile(g, 16)
	for i := 0; i < b.N; i++ {
		if _, err := ocd.SteinerSchedule(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicModels measures the §6 changing-conditions engine under
// each capacity model.
func BenchmarkDynamicModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ocd.ExperimentDynamicConditions(20, 12, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncoding measures the §6 coding-under-loss comparison.
func BenchmarkEncoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ocd.ExperimentLossCoding(12, 32, 0.3, []float64{1.5}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnderlay measures the §6 shared-physical-links comparison.
func BenchmarkUnderlay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ocd.ExperimentUnderlay(60, 8, 16, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKnowledgeDelay measures the §5.1 staleness ablation.
func BenchmarkKnowledgeDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ocd.ExperimentKnowledgeDelay(20, 16, 4, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTradeoffCurve measures the §3.4 hybrid-objective sweep on the
// Figure 1 gadget.
func BenchmarkTradeoffCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ocd.ExperimentTradeoffCurve(ocd.Figure1Instance()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocolLocal measures the message-passing Local realization
// (per-turn gossip of versioned knowledge tables).
func BenchmarkProtocolLocal(b *testing.B) {
	inst := benchInstance(b, false, 100, 50)
	for i := 0; i < b.N; i++ {
		res, err := ocd.RunStrategy(inst, ocd.ProtocolLocalFactory(),
			ocd.RunOptions{Seed: int64(i), IdlePatience: 10})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkArchitectures measures the §2 tree/forest baselines.
func BenchmarkArchitectures(b *testing.B) {
	inst := benchInstance(b, false, 100, 50)
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ocd.RunStrategy(inst, ocd.TreeFactory(), ocd.RunOptions{Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("forest-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ocd.RunStrategy(inst, ocd.ForestFactory(4), ocd.RunOptions{Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFlowBound measures the min-cut makespan bound (§2 relaxation).
func BenchmarkFlowBound(b *testing.B) {
	inst := benchInstance(b, false, 60, 30)
	for i := 0; i < b.N; i++ {
		if _, err := ocd.FlowMakespanLowerBound(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyGeneration measures both graph generators.
func BenchmarkTopologyGeneration(b *testing.B) {
	b.Run("random-200", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ocd.RandomTopology(200, ocd.DefaultCaps, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("transit-stub-200", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ocd.TransitStubTopology(200, ocd.DefaultCaps, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
