package ocd_test

import (
	"fmt"

	"ocd"
)

// ExampleSolveFOCD certifies the Figure 1 gadget's minimum makespan.
func ExampleSolveFOCD() {
	inst := ocd.Figure1Instance()
	sched, err := ocd.SolveFOCD(inst, ocd.ExactOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("optimal makespan: %d timesteps\n", sched.Makespan())
	// Output:
	// optimal makespan: 2 timesteps
}

// ExampleSolveEOCD shows the Figure 1 bandwidth/time tension: the
// minimum-bandwidth schedule is cheaper but slower than the fast one.
func ExampleSolveEOCD() {
	inst := ocd.Figure1Instance()
	cheap, err := ocd.SolveEOCD(inst, 0, ocd.ExactOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fast, err := ocd.SolveEOCD(inst, 2, ocd.ExactOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("min bandwidth: %d moves in %d timesteps\n", cheap.Moves(), cheap.Makespan())
	fmt.Printf("at tau=2:      %d moves\n", fast.Moves())
	// Output:
	// min bandwidth: 4 moves in 3 timesteps
	// at tau=2:      6 moves
}

// ExampleSolveILP cross-checks the §3.4 time-indexed integer program
// against the branch-and-bound optimum.
func ExampleSolveILP() {
	inst := ocd.Figure1Instance()
	_, moves, err := ocd.SolveILP(inst, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("ILP optimum at tau=3: %d moves\n", moves)
	// Output:
	// ILP optimum at tau=3: 4 moves
}

// ExampleValidate demonstrates the §3.1 constraint checker.
func ExampleValidate() {
	g := ocd.NewGraph(3)
	_ = g.AddArc(0, 1, 1)
	_ = g.AddArc(1, 2, 1)
	inst := ocd.NewInstance(g, 1)
	inst.Have[0].Add(0)
	inst.Want[2].Add(0)

	good := &ocd.Schedule{Steps: []ocd.Step{
		{{From: 0, To: 1, Token: 0}},
		{{From: 1, To: 2, Token: 0}},
	}}
	fmt.Println("two-step relay:", ocd.Validate(inst, good))

	// Forwarding in the same timestep as receipt violates Possession.
	bad := &ocd.Schedule{Steps: []ocd.Step{
		{{From: 0, To: 1, Token: 0}, {From: 1, To: 2, Token: 0}},
	}}
	fmt.Println("same-step relay valid:", ocd.Validate(inst, bad) == nil)
	// Output:
	// two-step relay: <nil>
	// same-step relay valid: false
}

// ExampleRunHeuristic distributes a file with the Local heuristic and
// reports the paper's two metrics.
func ExampleRunHeuristic() {
	g := ocd.NewGraph(4)
	for i := 0; i < 4; i++ {
		_ = g.AddEdge(i, (i+1)%4, 2)
	}
	inst := ocd.SingleFile(g, 4)
	res, err := ocd.RunHeuristic(inst, "local", ocd.RunOptions{Seed: 1, Prune: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("completed=%v bandwidth=%d pruned=%d\n",
		res.Completed, res.Moves, res.PrunedMoves)
	// Output:
	// completed=true bandwidth=12 pruned=12
}

// ExampleBandwidthLowerBound shows the §5.1 remaining-bandwidth bound.
func ExampleBandwidthLowerBound() {
	g := ocd.NewGraph(3)
	_ = g.AddEdge(0, 1, 2)
	_ = g.AddEdge(1, 2, 2)
	inst := ocd.SingleFile(g, 5)
	// Two receivers each missing five tokens: at least ten deliveries.
	fmt.Println(ocd.BandwidthLowerBound(inst))
	// Output:
	// 10
}
