package ocd_test

import (
	"testing"

	"ocd"
)

func TestPublicAPIFaultedRun(t *testing.T) {
	g, err := ocd.RandomTopology(16, ocd.DefaultCaps, 9)
	if err != nil {
		t.Fatal(err)
	}
	inst := ocd.SingleFile(g, 48)
	plan := ocd.FaultPlan{
		Crashes: ocd.CrashSchedule{Events: []ocd.CrashEvent{
			{V: 0, At: 1, RecoverAt: -1}, // the sole source crash-stops
		}},
		StateLoss: ocd.KeepState,
	}
	res, err := ocd.RunFaulted(inst, "local", plan, ocd.RunOptions{Seed: 4, IdlePatience: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || !res.Graceful {
		t.Fatalf("want graceful termination, got completed=%v graceful=%v", res.Completed, res.Graceful)
	}
	if res.Steps >= inst.TheoremOneHorizon() {
		t.Errorf("graceful stop at step %d did not beat the horizon %d", res.Steps, inst.TheoremOneHorizon())
	}
	if len(res.Unsatisfiable) == 0 || res.DeliveredFraction >= 1 {
		t.Errorf("degradation report empty: unsat=%d delivered=%v",
			len(res.Unsatisfiable), res.DeliveredFraction)
	}
	if err := ocd.ValidateFaulted(inst, res.Schedule, plan); err != nil {
		t.Errorf("plan replay validation: %v", err)
	}
	if err := ocd.ValidateConstraints(inst, res.Schedule); err != nil {
		t.Errorf("constraint validation: %v", err)
	}
}

func TestPublicAPIRetryHeuristicName(t *testing.T) {
	g, err := ocd.RandomTopology(14, ocd.DefaultCaps, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst := ocd.SingleFile(g, 12)
	plan := ocd.FaultPlan{Loss: ocd.BernoulliLoss(0.3, 7)}
	res, err := ocd.RunFaulted(inst, "retry-local", plan, ocd.RunOptions{Seed: 4, IdlePatience: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("retry-local did not complete under 30% loss")
	}
	if res.Lost == 0 {
		t.Error("no losses recorded under 30% loss")
	}
	if _, err := ocd.HeuristicFactory("retry-nope"); err == nil {
		t.Error("retry- wrapper around unknown heuristic accepted")
	}
}

func TestPublicAPIChaosExperiments(t *testing.T) {
	tab, err := ocd.ExperimentChaos(12, 6, []float64{0, 0.5}, []string{"local", "retry-local"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("chaos rows = %d, want 4", len(tab.Rows))
	}
	if tab.ASCII() == "" || tab.CSV() == "" {
		t.Error("empty rendering")
	}
	crash, err := ocd.ExperimentCrashedSource(12, 36, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(crash.Rows) != 5 {
		t.Fatalf("crashed-source rows = %d, want 5", len(crash.Rows))
	}
}
