package ocd_test

import (
	"math/rand"
	"strings"
	"testing"

	"ocd"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := ocd.RandomTopology(30, ocd.DefaultCaps, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst := ocd.SingleFile(g, 20)
	for _, name := range ocd.Heuristics() {
		res, err := ocd.RunHeuristic(inst, name, ocd.RunOptions{Seed: 2, Prune: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed {
			t.Fatalf("%s incomplete", name)
		}
		if err := ocd.Validate(inst, res.Schedule); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
		if res.Steps < ocd.MakespanLowerBound(inst) {
			t.Fatalf("%s beat the makespan bound", name)
		}
		if res.PrunedMoves < ocd.BandwidthLowerBound(inst) {
			t.Fatalf("%s beat the bandwidth bound", name)
		}
	}
}

func TestPublicAPIUnknownHeuristic(t *testing.T) {
	if _, err := ocd.HeuristicFactory("nope"); err == nil {
		t.Error("unknown heuristic accepted")
	}
	g, err := ocd.RandomTopology(10, ocd.DefaultCaps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ocd.RunHeuristic(ocd.SingleFile(g, 2), "nope", ocd.RunOptions{}); err == nil {
		t.Error("run with unknown heuristic accepted")
	}
}

func TestPublicAPIManualInstance(t *testing.T) {
	// Build an instance entirely through the public surface.
	g := ocd.NewGraph(3)
	if err := g.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	inst := ocd.NewInstance(g, 3)
	inst.Have[0].AddRange(0, 3)
	inst.Want[2].AddRange(0, 3)

	sched, err := ocd.SolveFOCD(inst, ocd.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Makespan(); got != 3 {
		t.Errorf("optimum = %d steps, want 3 (2 hops + pipeline)", got)
	}

	set := ocd.NewTokenSet(5)
	set.Add(3)
	if !set.Has(3) || set.Count() != 1 {
		t.Error("NewTokenSet misbehaves")
	}
}

func TestPublicAPIFigure1(t *testing.T) {
	inst := ocd.Figure1Instance()
	fast, err := ocd.SolveFOCD(inst, ocd.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := ocd.SolveEOCD(inst, 0, ocd.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sched, obj, err := ocd.SolveILP(inst, cheap.Makespan())
	if err != nil {
		t.Fatal(err)
	}
	if fast.Makespan() != 2 || cheap.Moves() != 4 || obj != 4 {
		t.Errorf("figure 1 optima: tau*=%d bw*=%d ilp=%d", fast.Makespan(), cheap.Moves(), obj)
	}
	if err := ocd.Validate(inst, sched); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIOracle(t *testing.T) {
	g, err := ocd.RandomTopology(20, ocd.DefaultCaps, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst := ocd.SingleFile(g, 10)
	res, err := ocd.RunOracle(inst, "global", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Error("oracle incomplete")
	}
	if !strings.HasPrefix(res.Strategy, "oracle(") {
		t.Errorf("strategy = %q", res.Strategy)
	}
}

func TestPublicAPISteiner(t *testing.T) {
	g, err := ocd.RandomTopology(15, ocd.DefaultCaps, 4)
	if err != nil {
		t.Fatal(err)
	}
	inst := ocd.SingleFile(g, 3)
	sched, err := ocd.SteinerSchedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := ocd.Validate(inst, sched); err != nil {
		t.Fatalf("steiner schedule invalid: %v", err)
	}
}

func TestPublicAPIExperimentsSmall(t *testing.T) {
	tab, err := ocd.ExperimentGraphSize(false, []int{12}, 8, 1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Errorf("rows = %d, want 5 heuristics", len(tab.Rows))
	}
	if !strings.Contains(tab.ASCII(), "Figure 2") {
		t.Error("title missing")
	}

	fig1, err := ocd.ExperimentFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig1.ASCII(), "min bandwidth") {
		t.Error("figure 1 table malformed")
	}
}

func TestPublicAPICustomStrategy(t *testing.T) {
	// The extension point: run a user-defined strategy through the engine.
	g := ocd.NewGraph(2)
	if err := g.AddArc(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	inst := ocd.NewInstance(g, 2)
	inst.Have[0].AddRange(0, 2)
	inst.Want[1].AddRange(0, 2)

	factory := func(_ *ocd.Instance, _ *rand.Rand) (ocd.Strategy, error) {
		return pushEverything{}, nil
	}
	res, err := ocd.RunStrategy(inst, factory, ocd.RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Steps != 1 {
		t.Errorf("custom strategy: completed=%v steps=%d", res.Completed, res.Steps)
	}
}

// pushEverything sends every useful token to every successor up to
// capacity — the minimal correct custom strategy.
type pushEverything struct{}

func (pushEverything) Name() string { return "push-everything" }

func (pushEverything) Plan(st *ocd.PlanState) []ocd.Move {
	var moves []ocd.Move
	for u := 0; u < st.Inst.N(); u++ {
		for _, a := range st.Inst.G.Out(u) {
			sent := 0
			st.Possess[u].ForEach(func(tok int) bool {
				if sent >= a.Cap {
					return false
				}
				if !st.Possess[a.To].Has(tok) {
					moves = append(moves, ocd.Move{From: u, To: a.To, Token: tok})
					sent++
				}
				return true
			})
		}
	}
	return moves
}
