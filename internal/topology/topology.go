// Package topology generates the network graphs used in the paper's
// evaluation (§5.2–5.3): Erdős–Rényi random graphs with connection
// probability 2·ln n/n, and transit-stub graphs in the style of the GT-ITM
// generator the authors used. GT-ITM itself is 1990s C code with
// unpublished parameters, so we re-implement the transit-stub *model*:
// a connected random core of transit domains, each transit node sponsoring
// several stub domains, with all arcs capacitated uniformly in [MinCap,
// MaxCap] (the paper draws weights "randomly between 3 and 15").
//
// All generators are deterministic given a seed and always return strongly
// connected graphs (the paper's instances must be satisfiable for every
// receiver set, which requires reachability).
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"ocd/internal/graph"
)

// CapRange is the inclusive range from which edge capacities are drawn.
// Defaults mirror the paper's 3..15 tokens per timestep.
type CapRange struct {
	Min int
	Max int
}

// DefaultCaps is the capacity range used throughout the paper's evaluation.
var DefaultCaps = CapRange{Min: 3, Max: 15}

func (c CapRange) draw(rng *rand.Rand) int {
	if c.Max <= c.Min {
		return c.Min
	}
	return c.Min + rng.Intn(c.Max-c.Min+1)
}

func (c CapRange) validate() error {
	if c.Min <= 0 {
		return fmt.Errorf("topology: capacity min %d must be positive", c.Min)
	}
	if c.Max < c.Min {
		return fmt.Errorf("topology: capacity range [%d,%d] inverted", c.Min, c.Max)
	}
	return nil
}

// Random generates an undirected Erdős–Rényi graph G(n, p) with
// p = 2·ln n / n (the paper's choice, keeping the edge count O(n·ln n) and
// the graph connected w.h.p.), realized as symmetric directed arcs with a
// shared random capacity per edge. If the sampled graph is disconnected the
// components are stitched with extra random edges so the returned graph is
// always strongly connected.
func Random(n int, caps CapRange, seed int64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: random graph needs n >= 2, got %d", n)
	}
	if err := caps.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	p := 2 * math.Log(float64(n)) / float64(n)
	if p > 1 {
		p = 1
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if err := g.AddEdge(u, v, caps.draw(rng)); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := connect(g, caps, rng); err != nil {
		return nil, err
	}
	return g, nil
}

// connect stitches undirected components together until the graph is
// strongly connected. Because every edge is symmetric, weak connectivity
// equals strong connectivity here.
func connect(g *graph.Graph, caps CapRange, rng *rand.Rand) error {
	n := g.N()
	comp := components(g)
	for len(comp) > 1 {
		// Join each subsequent component to the first with one random edge.
		a := comp[0][rng.Intn(len(comp[0]))]
		b := comp[1][rng.Intn(len(comp[1]))]
		if err := g.AddEdge(a, b, caps.draw(rng)); err != nil {
			return err
		}
		comp = components(g)
	}
	_ = n
	return nil
}

// components returns the weakly connected components as vertex lists.
func components(g *graph.Graph) [][]int {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, a := range g.Out(u) {
				if !seen[a.To] {
					seen[a.To] = true
					queue = append(queue, a.To)
				}
			}
			for _, a := range g.In(u) {
				if !seen[a.From] {
					seen[a.From] = true
					queue = append(queue, a.From)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// TransitStubParams controls the transit-stub generator. The defaults are
// chosen so that TransitStubN can hit an arbitrary target vertex count.
type TransitStubParams struct {
	// TransitDomains is the number of transit (backbone) domains.
	TransitDomains int
	// TransitSize is the number of routers per transit domain.
	TransitSize int
	// StubsPerTransit is the number of stub domains attached to each
	// transit router.
	StubsPerTransit int
	// StubSize is the number of hosts per stub domain.
	StubSize int
	// IntraP is the probability of extra intra-domain edges beyond the
	// spanning structure.
	IntraP float64
	// ExtraStubEdgeP is the probability a stub domain gets a second,
	// redundant link into the transit core.
	ExtraStubEdgeP float64
	// Caps is the capacity range for every edge.
	Caps CapRange
}

// DefaultTransitStub returns parameters that produce a graph of roughly n
// vertices with a realistic transit/stub ratio (~1 transit router per 10
// hosts, mirroring GT-ITM's canonical configurations).
func DefaultTransitStub(n int) TransitStubParams {
	p := TransitStubParams{
		TransitDomains:  1,
		TransitSize:     4,
		StubsPerTransit: 3,
		StubSize:        3,
		IntraP:          0.3,
		ExtraStubEdgeP:  0.25,
		Caps:            DefaultCaps,
	}
	// One transit domain of size t sponsors t·s stub domains of size z:
	// total = t + t·s·z per domain. Scale domain count then transit size.
	perDomain := p.TransitSize + p.TransitSize*p.StubsPerTransit*p.StubSize
	if n > perDomain {
		p.TransitDomains = (n + perDomain - 1) / perDomain
	}
	return p
}

// TransitStub generates a hierarchical transit-stub graph:
//
//   - Each transit domain is a connected random subgraph of TransitSize
//     routers; domains are chained and randomly cross-linked so the core is
//     connected.
//   - Each transit router sponsors StubsPerTransit stub domains; each stub
//     domain is a connected random subgraph of StubSize hosts with one
//     (sometimes two) uplinks into the core.
//
// All edges are symmetric with shared random capacities.
func TransitStub(p TransitStubParams, seed int64) (*graph.Graph, error) {
	if p.TransitDomains < 1 || p.TransitSize < 1 || p.StubsPerTransit < 0 || p.StubSize < 1 {
		return nil, fmt.Errorf("topology: invalid transit-stub params %+v", p)
	}
	if err := p.Caps.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	total := p.TransitDomains*p.TransitSize +
		p.TransitDomains*p.TransitSize*p.StubsPerTransit*p.StubSize
	g := graph.New(total)
	next := 0
	alloc := func(k int) []int {
		ids := make([]int, k)
		for i := range ids {
			ids[i] = next
			next++
		}
		return ids
	}

	var transitAll []int
	var domains [][]int
	for d := 0; d < p.TransitDomains; d++ {
		dom := alloc(p.TransitSize)
		if err := randomConnected(g, dom, p.IntraP, p.Caps, rng); err != nil {
			return nil, err
		}
		domains = append(domains, dom)
		transitAll = append(transitAll, dom...)
	}
	// Chain transit domains plus occasional extra cross links.
	for d := 1; d < len(domains); d++ {
		a := domains[d-1][rng.Intn(len(domains[d-1]))]
		b := domains[d][rng.Intn(len(domains[d]))]
		if err := g.AddEdge(a, b, p.Caps.draw(rng)); err != nil {
			return nil, err
		}
		if len(domains) > 2 && rng.Float64() < 0.5 {
			c := domains[rng.Intn(d)][0]
			e := domains[d][rng.Intn(len(domains[d]))]
			if c != e && !g.HasArc(c, e) {
				if err := g.AddEdge(c, e, p.Caps.draw(rng)); err != nil {
					return nil, err
				}
			}
		}
	}
	// Stub domains.
	for _, router := range transitAll {
		for s := 0; s < p.StubsPerTransit; s++ {
			stub := alloc(p.StubSize)
			if err := randomConnected(g, stub, p.IntraP, p.Caps, rng); err != nil {
				return nil, err
			}
			up := stub[rng.Intn(len(stub))]
			if err := g.AddEdge(up, router, p.Caps.draw(rng)); err != nil {
				return nil, err
			}
			if rng.Float64() < p.ExtraStubEdgeP {
				other := transitAll[rng.Intn(len(transitAll))]
				from := stub[rng.Intn(len(stub))]
				if other != from && !g.HasArc(from, other) {
					if err := g.AddEdge(from, other, p.Caps.draw(rng)); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return g, nil
}

// TransitStubN generates a transit-stub graph with approximately n vertices
// using DefaultTransitStub parameters.
func TransitStubN(n int, caps CapRange, seed int64) (*graph.Graph, error) {
	p := DefaultTransitStub(n)
	p.Caps = caps
	return TransitStub(p, seed)
}

// randomConnected wires the given vertex IDs into a connected random
// subgraph: a random spanning tree plus extra edges with probability p.
func randomConnected(g *graph.Graph, ids []int, p float64, caps CapRange, rng *rand.Rand) error {
	if len(ids) <= 1 {
		return nil
	}
	perm := rng.Perm(len(ids))
	for i := 1; i < len(perm); i++ {
		u := ids[perm[i]]
		v := ids[perm[rng.Intn(i)]]
		if err := g.AddEdge(u, v, caps.draw(rng)); err != nil {
			return err
		}
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if !g.HasArc(ids[i], ids[j]) && rng.Float64() < p {
				if err := g.AddEdge(ids[i], ids[j], caps.draw(rng)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Line returns a path graph 0–1–…–(n−1) with uniform capacity.
func Line(n, capacity int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: line needs n >= 1, got %d", n)
	}
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1, capacity); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Ring returns a cycle graph with uniform capacity.
func Ring(n, capacity int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs n >= 3, got %d", n)
	}
	g, err := Line(n, capacity)
	if err != nil {
		return nil, err
	}
	if err := g.AddEdge(n-1, 0, capacity); err != nil {
		return nil, err
	}
	return g, nil
}

// Star returns a star with vertex 0 at the center and uniform capacity.
func Star(n, capacity int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs n >= 2, got %d", n)
	}
	g := graph.New(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(0, i, capacity); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Complete returns the complete graph K_n with uniform capacity.
func Complete(n, capacity int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: complete graph needs n >= 2, got %d", n)
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if err := g.AddEdge(u, v, capacity); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Grid returns a rows×cols 4-neighbour mesh with uniform capacity.
func Grid(rows, cols, capacity int) (*graph.Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topology: grid needs positive dims, got %dx%d", rows, cols)
	}
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddEdge(id(r, c), id(r, c+1), capacity); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddEdge(id(r, c), id(r+1, c), capacity); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
