package topology

import (
	"math"
	"testing"
)

func TestRandomStronglyConnected(t *testing.T) {
	for _, n := range []int{2, 5, 20, 100} {
		for seed := int64(0); seed < 3; seed++ {
			g, err := Random(n, DefaultCaps, seed)
			if err != nil {
				t.Fatalf("Random(%d, seed=%d): %v", n, seed, err)
			}
			if g.N() != n {
				t.Errorf("n=%d: got %d vertices", n, g.N())
			}
			if !g.StronglyConnected() {
				t.Errorf("Random(%d, seed=%d) not strongly connected", n, seed)
			}
		}
	}
}

func TestRandomCapacitiesInRange(t *testing.T) {
	g, err := Random(50, CapRange{Min: 3, Max: 15}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range g.Arcs() {
		if a.Cap < 3 || a.Cap > 15 {
			t.Errorf("capacity %d outside [3,15]", a.Cap)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random(40, DefaultCaps, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(40, DefaultCaps, 99)
	if err != nil {
		t.Fatal(err)
	}
	arcsA, arcsB := a.Arcs(), b.Arcs()
	if len(arcsA) != len(arcsB) {
		t.Fatalf("arc counts differ: %d vs %d", len(arcsA), len(arcsB))
	}
	for i := range arcsA {
		if arcsA[i] != arcsB[i] {
			t.Fatalf("arc %d differs: %v vs %v", i, arcsA[i], arcsB[i])
		}
	}
}

func TestRandomEdgeDensity(t *testing.T) {
	// The paper chooses p = 2·ln n/n so the expected undirected edge count
	// is n·ln n; allow a generous band.
	n := 200
	g, err := Random(n, DefaultCaps, 5)
	if err != nil {
		t.Fatal(err)
	}
	undirected := g.NumArcs() / 2
	expected := float64(n) * math.Log(float64(n))
	if float64(undirected) < expected/2 || float64(undirected) > expected*2 {
		t.Errorf("edge count %d far from expected %.0f", undirected, expected)
	}
}

func TestRandomErrors(t *testing.T) {
	if _, err := Random(1, DefaultCaps, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Random(10, CapRange{Min: 0, Max: 5}, 1); err == nil {
		t.Error("zero min capacity accepted")
	}
	if _, err := Random(10, CapRange{Min: 5, Max: 2}, 1); err == nil {
		t.Error("inverted capacity range accepted")
	}
}

func TestTransitStub(t *testing.T) {
	for _, n := range []int{20, 50, 150} {
		g, err := TransitStubN(n, DefaultCaps, 3)
		if err != nil {
			t.Fatalf("TransitStubN(%d): %v", n, err)
		}
		if !g.StronglyConnected() {
			t.Errorf("TransitStubN(%d) not strongly connected", n)
		}
		// Target size is approximate: within 2x.
		if g.N() < n/2 || g.N() > 2*n+20 {
			t.Errorf("TransitStubN(%d) produced %d vertices", n, g.N())
		}
		for _, a := range g.Arcs() {
			if a.Cap < DefaultCaps.Min || a.Cap > DefaultCaps.Max {
				t.Errorf("capacity %d outside range", a.Cap)
			}
		}
	}
}

func TestTransitStubDeterministic(t *testing.T) {
	a, _ := TransitStubN(60, DefaultCaps, 11)
	b, _ := TransitStubN(60, DefaultCaps, 11)
	if a.N() != b.N() || a.NumArcs() != b.NumArcs() {
		t.Fatal("transit-stub generation not deterministic")
	}
}

func TestTransitStubParamErrors(t *testing.T) {
	if _, err := TransitStub(TransitStubParams{TransitDomains: 0, TransitSize: 1, StubSize: 1, Caps: DefaultCaps}, 1); err == nil {
		t.Error("zero transit domains accepted")
	}
	p := DefaultTransitStub(50)
	p.Caps = CapRange{Min: -1, Max: 3}
	if _, err := TransitStub(p, 1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestFixtures(t *testing.T) {
	tests := []struct {
		name      string
		build     func() (int, error)
		wantArcs  int
		connected bool
	}{
		{"line", func() (int, error) {
			g, err := Line(5, 2)
			if err != nil {
				return 0, err
			}
			if !g.StronglyConnected() {
				t.Error("line not strongly connected")
			}
			return g.NumArcs(), nil
		}, 8, true},
		{"ring", func() (int, error) {
			g, err := Ring(5, 1)
			if err != nil {
				return 0, err
			}
			if got := g.Diameter(); got != 2 {
				t.Errorf("ring diameter = %d, want 2", got)
			}
			return g.NumArcs(), nil
		}, 10, true},
		{"star", func() (int, error) {
			g, err := Star(5, 1)
			if err != nil {
				return 0, err
			}
			if got := g.Diameter(); got != 2 {
				t.Errorf("star diameter = %d, want 2", got)
			}
			return g.NumArcs(), nil
		}, 8, true},
		{"complete", func() (int, error) {
			g, err := Complete(4, 1)
			if err != nil {
				return 0, err
			}
			if got := g.Diameter(); got != 1 {
				t.Errorf("complete diameter = %d, want 1", got)
			}
			return g.NumArcs(), nil
		}, 12, true},
		{"grid", func() (int, error) {
			g, err := Grid(3, 3, 1)
			if err != nil {
				return 0, err
			}
			if got := g.Diameter(); got != 4 {
				t.Errorf("grid diameter = %d, want 4", got)
			}
			return g.NumArcs(), nil
		}, 24, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			arcs, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			if arcs != tc.wantArcs {
				t.Errorf("arcs = %d, want %d", arcs, tc.wantArcs)
			}
		})
	}
}

func TestFixtureErrors(t *testing.T) {
	if _, err := Line(0, 1); err == nil {
		t.Error("Line(0) accepted")
	}
	if _, err := Ring(2, 1); err == nil {
		t.Error("Ring(2) accepted")
	}
	if _, err := Star(1, 1); err == nil {
		t.Error("Star(1) accepted")
	}
	if _, err := Complete(1, 1); err == nil {
		t.Error("Complete(1) accepted")
	}
	if _, err := Grid(0, 3, 1); err == nil {
		t.Error("Grid(0,3) accepted")
	}
}
