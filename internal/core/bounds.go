package core

import "ocd/internal/tokenset"

// BandwidthLowerBound returns the §5.1 remaining-bandwidth bound: every
// token that is wanted but not possessed requires at least one move, so the
// bound is Σ_v |w(v) \ p(v)|. With possess == nil the instance's initial
// possession is used.
func BandwidthLowerBound(inst *Instance, possess []tokenset.Set) int {
	if possess == nil {
		possess = inst.Have
	}
	total := 0
	for v := 0; v < inst.N(); v++ {
		total += inst.Want[v].DifferenceCount(possess[v])
	}
	return total
}

// MakespanLowerBound returns the §5.1 radius-closure bound on the remaining
// number of timesteps. For a vertex v and radius i, let k_i be the number of
// tokens v wants that no vertex within distance i of v possesses. Those
// tokens cannot start arriving before timestep i+1, and all of v's missing
// tokens must cross v's in-arcs at no more than InCapacity(v) per step, so
//
//	M_i(v) = i + ceil(k_i / InCapacity(v))
//
// is admissible (the paper divides by indegree; dividing by in-capacity
// keeps the bound admissible when capacities exceed one). The bound is
// max over v and i with k_i > 0. With possess == nil the initial possession
// is used.
func MakespanLowerBound(inst *Instance, possess []tokenset.Set) int {
	if possess == nil {
		possess = inst.Have
	}
	best := 0
	for v := 0; v < inst.N(); v++ {
		missing := inst.Want[v].Difference(possess[v])
		if missing.Empty() {
			continue
		}
		inCap := inst.G.InCapacity(v)
		if inCap == 0 {
			// Unsatisfiable vertex; no finite bound, report the horizon.
			return inst.TheoremOneHorizon()
		}
		if m := vertexRadiusBound(inst, possess, v, missing, inCap); m > best {
			best = m
		}
	}
	return best
}

// vertexRadiusBound computes max_i (i + ceil(k_i / inCap)) for one vertex.
func vertexRadiusBound(inst *Instance, possess []tokenset.Set, v int, missing tokenset.Set, inCap int) int {
	dist := inst.G.BFSTo(v)
	maxDist := 0
	for _, d := range dist {
		if d > maxDist {
			maxDist = d
		}
	}
	// within[i] = tokens possessed at distance ≤ i of v. Build incrementally.
	within := tokenset.New(inst.NumTokens)
	// Bucket vertices by distance.
	buckets := make([][]int, maxDist+1)
	for u, d := range dist {
		if d >= 0 {
			buckets[d] = append(buckets[d], u)
		}
	}
	best := 0
	for i := 0; i <= maxDist; i++ {
		for _, u := range buckets[i] {
			within.UnionWith(possess[u])
		}
		k := missing.DifferenceCount(within)
		if k == 0 {
			break
		}
		m := i + (k+inCap-1)/inCap
		if m > best {
			best = m
		}
	}
	// Tokens beyond every radius (unreachable) are caught by Satisfiable;
	// here they simply stop contributing once within saturates.
	return best
}

// OneStepRetrievable returns, for vertex v, the tokens that could arrive in
// a single timestep given current possession: the union of the possession
// of v's in-neighbors. This is the "one-hop-knowledge" notion of §5.1 used
// by the Bandwidth heuristic and the special-case one-step lookahead bound.
func OneStepRetrievable(inst *Instance, possess []tokenset.Set, v int) tokenset.Set {
	out := tokenset.New(inst.NumTokens)
	for _, a := range inst.G.In(v) {
		out.UnionWith(possess[a.From])
	}
	return out
}
