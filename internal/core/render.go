package core

import (
	"fmt"
	"strings"
)

// RenderTimeline formats a schedule as a per-timestep text timeline with a
// running completion percentage, the human-readable view used by the
// examples and ocdsim:
//
//	step 1 [ 33%]  0-[2]->1  0-[0]->3
//	step 2 [100%]  1-[2]->4
//
// Completion is the fraction of (vertex, wanted token) pairs satisfied at
// the end of each step. maxMovesPerLine truncates wide steps (0 = no
// truncation).
func RenderTimeline(inst *Instance, sched *Schedule, maxMovesPerLine int) string {
	totalWants := 0
	for v := 0; v < inst.N(); v++ {
		totalWants += inst.Want[v].Count()
	}
	possess := inst.InitialPossession()
	satisfied := func() int {
		n := 0
		for v := 0; v < inst.N(); v++ {
			n += inst.Want[v].IntersectionCount(possess[v])
		}
		return n
	}

	var b strings.Builder
	for i, st := range sched.Steps {
		for _, mv := range st {
			possess[mv.To].Add(mv.Token)
		}
		pct := 100
		if totalWants > 0 {
			pct = satisfied() * 100 / totalWants
		}
		fmt.Fprintf(&b, "step %d [%3d%%] ", i+1, pct)
		for j, mv := range st {
			if maxMovesPerLine > 0 && j >= maxMovesPerLine {
				fmt.Fprintf(&b, " … +%d more", len(st)-j)
				break
			}
			fmt.Fprintf(&b, " %v", mv)
		}
		if len(st) == 0 {
			b.WriteString(" (idle)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
