package core

import (
	"errors"
	"fmt"

	"ocd/internal/tokenset"
)

// Move assigns one token to one arc for one timestep (§3.1).
type Move struct {
	From  int
	To    int
	Token int
}

func (m Move) String() string {
	return fmt.Sprintf("%d-[%d]->%d", m.From, m.Token, m.To)
}

// Step is the set of simultaneous moves of one timestep.
type Step []Move

// Schedule is a distribution schedule: a sequence of timesteps.
type Schedule struct {
	Steps []Step
}

// Makespan returns the number of timesteps (τ, the FOCD objective).
func (s *Schedule) Makespan() int { return len(s.Steps) }

// Moves returns the total number of moves (bandwidth, the EOCD objective).
func (s *Schedule) Moves() int {
	n := 0
	for _, st := range s.Steps {
		n += len(st)
	}
	return n
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{Steps: make([]Step, len(s.Steps))}
	for i, st := range s.Steps {
		c.Steps[i] = append(Step(nil), st...)
	}
	return c
}

// Append adds a timestep to the end of the schedule.
func (s *Schedule) Append(st Step) {
	s.Steps = append(s.Steps, st)
}

// ValidationError describes a constraint violation found by Validate.
type ValidationError struct {
	Step   int
	Move   Move
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("core: step %d move %v: %s", e.Step, e.Move, e.Reason)
}

// ErrUnsuccessful is returned by Validate when the schedule obeys all move
// constraints but leaves some want set unsatisfied.
var ErrUnsuccessful = errors.New("core: schedule does not satisfy all wants")

// Simulate plays the schedule from the instance's initial possession and
// returns the possession sets after every timestep: result[i] is p_{i}
// with result[0] = h. It does not check constraints; use Validate for that.
func Simulate(inst *Instance, sched *Schedule) [][]tokenset.Set {
	history := make([][]tokenset.Set, 0, len(sched.Steps)+1)
	cur := inst.InitialPossession()
	history = append(history, clonePossession(cur))
	for _, st := range sched.Steps {
		for _, mv := range st {
			cur[mv.To].Add(mv.Token)
		}
		history = append(history, clonePossession(cur))
	}
	return history
}

func clonePossession(p []tokenset.Set) []tokenset.Set {
	c := make([]tokenset.Set, len(p))
	for i := range p {
		c[i] = p[i].Clone()
	}
	return c
}

// Validate checks the schedule against the §3.1 constraints:
//
//   - every move uses an existing arc,
//   - Capacity: at most c(u,v) tokens per arc per timestep,
//   - Possession: a vertex only sends tokens it possesses at the start of
//     the timestep,
//
// and finally that the schedule is successful (w(v) ⊆ p_t(v) for all v).
// The first violated constraint is reported.
func Validate(inst *Instance, sched *Schedule) error {
	cur, err := replayConstraints(inst, sched)
	if err != nil {
		return err
	}
	if !Done(inst, cur) {
		return ErrUnsuccessful
	}
	return nil
}

// ValidateConstraints checks the same move-level constraints as Validate
// but does not require the schedule to satisfy every want. Partial
// schedules — a faulted run that terminated gracefully with unsatisfiable
// receivers, or a run cut off at a step limit — must still be legal move
// sequences under the static model; this is the check they pass.
func ValidateConstraints(inst *Instance, sched *Schedule) error {
	_, err := replayConstraints(inst, sched)
	return err
}

// replayConstraints replays the schedule checking arc existence, capacity,
// and possession, returning the final possession.
func replayConstraints(inst *Instance, sched *Schedule) ([]tokenset.Set, error) {
	if err := inst.Check(); err != nil {
		return nil, err
	}
	cur := inst.InitialPossession()
	used := make(map[[2]int]int)
	for i, st := range sched.Steps {
		for k := range used {
			delete(used, k)
		}
		for _, mv := range st {
			if mv.Token < 0 || mv.Token >= inst.NumTokens {
				return nil, &ValidationError{Step: i, Move: mv, Reason: "token out of range"}
			}
			capacity := inst.G.Cap(mv.From, mv.To)
			if capacity == 0 {
				return nil, &ValidationError{Step: i, Move: mv, Reason: "arc does not exist"}
			}
			key := [2]int{mv.From, mv.To}
			used[key]++
			if used[key] > capacity {
				return nil, &ValidationError{
					Step: i, Move: mv,
					Reason: fmt.Sprintf("capacity %d exceeded", capacity),
				}
			}
			if !cur[mv.From].Has(mv.Token) {
				return nil, &ValidationError{
					Step: i, Move: mv,
					Reason: "sender does not possess token at start of timestep",
				}
			}
		}
		for _, mv := range st {
			cur[mv.To].Add(mv.Token)
		}
	}
	return cur, nil
}

// Successful reports whether playing the schedule satisfies every want set,
// without checking move-level constraints.
func Successful(inst *Instance, sched *Schedule) bool {
	cur := inst.InitialPossession()
	for _, st := range sched.Steps {
		for _, mv := range st {
			cur[mv.To].Add(mv.Token)
		}
	}
	return Done(inst, cur)
}
