// Package core defines the Overlay Content Distribution problem exactly as
// formalized in §3.1 of the paper: a weighted directed graph, a token
// universe, per-vertex have/want sets, and distribution schedules made of
// per-timestep move sets subject to the Capacity and Possession constraints.
//
// It also implements the schedule machinery the evaluation section relies
// on: validation, metrics (makespan and bandwidth), the §5.1 pruning
// post-pass, and the §5.1 lower-bound estimators for remaining bandwidth
// and remaining timesteps.
package core

import (
	"errors"
	"fmt"

	"ocd/internal/graph"
	"ocd/internal/tokenset"
)

// Instance is an OCD problem instance (G, T, h, w).
type Instance struct {
	// G is the overlay graph; arc weights are per-timestep capacities.
	G *graph.Graph
	// NumTokens is |T|; tokens are identified by integers in [0, NumTokens).
	NumTokens int
	// Have holds h(v): the tokens vertex v initially possesses.
	Have []tokenset.Set
	// Want holds w(v): the tokens vertex v must eventually possess.
	Want []tokenset.Set
}

// NewInstance returns an instance over g with m tokens and empty have/want
// sets.
func NewInstance(g *graph.Graph, m int) *Instance {
	n := g.N()
	inst := &Instance{
		G:         g,
		NumTokens: m,
		Have:      make([]tokenset.Set, n),
		Want:      make([]tokenset.Set, n),
	}
	for v := 0; v < n; v++ {
		inst.Have[v] = tokenset.New(m)
		inst.Want[v] = tokenset.New(m)
	}
	return inst
}

// Clone returns a deep copy of the instance (sharing the immutable graph).
func (in *Instance) Clone() *Instance {
	c := &Instance{
		G:         in.G,
		NumTokens: in.NumTokens,
		Have:      make([]tokenset.Set, len(in.Have)),
		Want:      make([]tokenset.Set, len(in.Want)),
	}
	for v := range in.Have {
		c.Have[v] = in.Have[v].Clone()
		c.Want[v] = in.Want[v].Clone()
	}
	return c
}

// N returns the number of vertices.
func (in *Instance) N() int { return in.G.N() }

// Check verifies internal consistency: set universes match NumTokens and
// every token is initially possessed by at least one vertex if wanted.
func (in *Instance) Check() error {
	if in.G == nil {
		return errors.New("core: instance has nil graph")
	}
	if len(in.Have) != in.N() || len(in.Want) != in.N() {
		return fmt.Errorf("core: have/want length %d/%d != n=%d",
			len(in.Have), len(in.Want), in.N())
	}
	holders := tokenset.New(in.NumTokens)
	wanted := tokenset.New(in.NumTokens)
	for v := 0; v < in.N(); v++ {
		if in.Have[v].Universe() != in.NumTokens || in.Want[v].Universe() != in.NumTokens {
			return fmt.Errorf("core: vertex %d set universe != %d tokens", v, in.NumTokens)
		}
		holders.UnionWith(in.Have[v])
		wanted.UnionWith(in.Want[v])
	}
	if !wanted.SubsetOf(holders) {
		missing := wanted.Difference(holders)
		return fmt.Errorf("core: wanted tokens %v are held by no vertex", missing)
	}
	return nil
}

// Satisfiable reports whether every wanted token can reach every wanter,
// i.e. for each vertex v and token t ∈ w(v)\h(v) some holder of t reaches v.
func (in *Instance) Satisfiable() bool {
	for v := 0; v < in.N(); v++ {
		need := in.Want[v].Difference(in.Have[v])
		if need.Empty() {
			continue
		}
		dist := in.G.BFSTo(v)
		reachable := tokenset.New(in.NumTokens)
		for u := 0; u < in.N(); u++ {
			if dist[u] >= 0 {
				reachable.UnionWith(in.Have[u])
			}
		}
		if !need.SubsetOf(reachable) {
			return false
		}
	}
	return true
}

// Done reports whether possession already satisfies every want set.
func Done(inst *Instance, possess []tokenset.Set) bool {
	for v := range possess {
		if !inst.Want[v].SubsetOf(possess[v]) {
			return false
		}
	}
	return true
}

// InitialPossession returns a fresh copy of the have sets, the p_0 function
// of §3.1.
func (in *Instance) InitialPossession() []tokenset.Set {
	p := make([]tokenset.Set, in.N())
	for v := range p {
		p[v] = in.Have[v].Clone()
	}
	return p
}

// TheoremOneHorizon returns m·(n−1), the move (and hence timestep) horizon
// within which any satisfiable instance completes (Theorem 1).
func (in *Instance) TheoremOneHorizon() int {
	return in.NumTokens * (in.N() - 1)
}
