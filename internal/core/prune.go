package core

import "ocd/internal/tokenset"

// Prune implements the §5.1 post-pass: "Pruning first removes all moves
// that deliver a token repeatedly to the same vertex, and then works back
// from the last move to the first, removing moves that deliver tokens which
// were never used by the destination vertex."
//
// A delivered token is "used" if the destination wants it or if a kept
// later move sends it onward. Pruning never invalidates a valid schedule,
// never increases the move count, and preserves success; trailing and
// interior timesteps left empty are dropped (possession is monotone, so
// compressing empty steps keeps every constraint satisfied).
func Prune(inst *Instance, sched *Schedule) *Schedule {
	// Pass 1: drop duplicate deliveries. A move is redundant if the
	// destination already possesses the token at the moment of delivery
	// (including an earlier kept move in the same timestep).
	cur := inst.InitialPossession()
	kept := make([]Step, len(sched.Steps))
	for i, st := range sched.Steps {
		var arrivals []Move
		for _, mv := range st {
			if cur[mv.To].Has(mv.Token) {
				continue // duplicate delivery
			}
			dup := false
			for _, a := range arrivals {
				if a.To == mv.To && a.Token == mv.Token {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			arrivals = append(arrivals, mv)
			kept[i] = append(kept[i], mv)
		}
		for _, mv := range kept[i] {
			cur[mv.To].Add(mv.Token)
		}
	}

	// Pass 2: backward sweep. needed[v] holds the tokens vertex v must
	// possess because it wants them or because a kept later move sends
	// them from v.
	needed := make([]tokenset.Set, inst.N())
	for v := range needed {
		needed[v] = inst.Want[v].Clone()
	}
	final := make([]Step, len(kept))
	for i := len(kept) - 1; i >= 0; i-- {
		for _, mv := range kept[i] {
			if !needed[mv.To].Has(mv.Token) {
				continue // delivery never used downstream
			}
			final[i] = append(final[i], mv)
		}
		for _, mv := range final[i] {
			// The sender must possess the token before this step; protect
			// its (unique, by pass 1) earlier delivery or initial copy.
			needed[mv.From].Add(mv.Token)
		}
	}

	out := &Schedule{}
	for _, st := range final {
		if len(st) > 0 {
			out.Steps = append(out.Steps, st)
		}
	}
	return out
}
