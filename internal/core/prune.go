package core

import "ocd/internal/tokenset"

// Prune implements the §5.1 post-pass: "Pruning first removes all moves
// that deliver a token repeatedly to the same vertex, and then works back
// from the last move to the first, removing moves that deliver tokens which
// were never used by the destination vertex."
//
// A delivered token is "used" if the destination wants it or if a kept
// later move sends it onward. Pruning never invalidates a valid schedule,
// never increases the move count, and preserves success; trailing and
// interior timesteps left empty are dropped (possession is monotone, so
// compressing empty steps keeps every constraint satisfied).
func Prune(inst *Instance, sched *Schedule) *Schedule {
	// Pass 1: drop duplicate deliveries. A move is redundant if the
	// destination already possesses the token at the moment of delivery
	// (including an earlier kept move in the same timestep). Marking the
	// possession as each move is kept makes the within-step duplicate check
	// the same O(1) set probe as the cross-step one: pass 1 never reads
	// cur[v] for anything except (destination, token) membership, so the
	// early add is indistinguishable from the end-of-step add.
	cur := inst.InitialPossession()
	kept := make([]Step, len(sched.Steps))
	for i, st := range sched.Steps {
		for _, mv := range st {
			if cur[mv.To].Has(mv.Token) {
				continue // duplicate delivery
			}
			cur[mv.To].Add(mv.Token)
			kept[i] = append(kept[i], mv)
		}
	}

	// Pass 2: backward sweep. needed[v] holds the tokens vertex v must
	// possess because it wants them or because a kept later move sends
	// them from v.
	needed := make([]tokenset.Set, inst.N())
	for v := range needed {
		needed[v] = inst.Want[v].Clone()
	}
	final := make([]Step, len(kept))
	for i := len(kept) - 1; i >= 0; i-- {
		for _, mv := range kept[i] {
			if !needed[mv.To].Has(mv.Token) {
				continue // delivery never used downstream
			}
			final[i] = append(final[i], mv)
		}
		for _, mv := range final[i] {
			// The sender must possess the token before this step; protect
			// its (unique, by pass 1) earlier delivery or initial copy.
			needed[mv.From].Add(mv.Token)
		}
	}

	out := &Schedule{}
	for _, st := range final {
		if len(st) > 0 {
			out.Steps = append(out.Steps, st)
		}
	}
	return out
}
