package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ocd/internal/graph"
)

// instSpec is a generatable instance description for property tests.
type instSpec struct {
	Seed   int64
	N      uint8
	Tokens uint8
}

// build materializes a connected random instance from the spec.
func (s instSpec) build() *Instance {
	n := int(s.N%5) + 3      // 3..7 vertices
	m := int(s.Tokens%3) + 1 // 1..3 tokens
	rng := rand.New(rand.NewSource(s.Seed))
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(perm[i], perm[rng.Intn(i)], 1+rng.Intn(2))
	}
	inst := NewInstance(g, m)
	for t := 0; t < m; t++ {
		inst.Have[rng.Intn(n)].Add(t)
		inst.Want[rng.Intn(n)].Add(t)
	}
	return inst
}

// floodSchedule is a deterministic valid successful schedule: every arc
// forwards every useful token up to capacity each step.
func floodSchedule(inst *Instance) *Schedule {
	sched := &Schedule{}
	possess := inst.InitialPossession()
	for step := 0; step < inst.TheoremOneHorizon()+1 && !Done(inst, possess); step++ {
		var st Step
		for _, a := range inst.G.Arcs() {
			sent := 0
			possess[a.From].ForEach(func(t int) bool {
				if sent >= a.Cap {
					return false
				}
				if !possess[a.To].Has(t) {
					st = append(st, Move{From: a.From, To: a.To, Token: t})
					sent++
				}
				return true
			})
		}
		if len(st) == 0 {
			break
		}
		for _, mv := range st {
			possess[mv.To].Add(mv.Token)
		}
		sched.Append(st)
	}
	return sched
}

func TestQuickFloodingSatisfiesAndValidates(t *testing.T) {
	f := func(spec instSpec) bool {
		inst := spec.build()
		sched := floodSchedule(inst)
		return Validate(inst, sched) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickPruneInvariants(t *testing.T) {
	f := func(spec instSpec) bool {
		inst := spec.build()
		sched := floodSchedule(inst)
		pruned := Prune(inst, sched)
		if pruned.Moves() > sched.Moves() {
			return false
		}
		if Validate(inst, pruned) != nil {
			return false
		}
		// Idempotence: pruning a pruned schedule changes nothing.
		again := Prune(inst, pruned)
		return again.Moves() == pruned.Moves() && again.Makespan() == pruned.Makespan()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickBoundsAdmissible(t *testing.T) {
	// Bounds from the initial state never exceed what flooding achieves
	// (flooding is an upper bound on both optima).
	f := func(spec instSpec) bool {
		inst := spec.build()
		sched := floodSchedule(inst)
		if !Successful(inst, sched) {
			return true // vacuous (cannot happen on connected builds)
		}
		pruned := Prune(inst, sched)
		if MakespanLowerBound(inst, nil) > sched.Makespan() {
			return false
		}
		return BandwidthLowerBound(inst, nil) <= pruned.Moves()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickSimulateMonotone(t *testing.T) {
	// Possession only ever grows along a schedule.
	f := func(spec instSpec) bool {
		inst := spec.build()
		hist := Simulate(inst, floodSchedule(inst))
		for i := 1; i < len(hist); i++ {
			for v := range hist[i] {
				if !hist[i-1][v].SubsetOf(hist[i][v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
