package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"ocd/internal/graph"
)

// lineInstance builds 0→1→…→(n−1) with capacity c; vertex 0 has all m
// tokens, the last vertex wants them all.
func lineInstance(t *testing.T, n, m, c int) *Instance {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddArc(i, i+1, c); err != nil {
			t.Fatal(err)
		}
	}
	inst := NewInstance(g, m)
	inst.Have[0].AddRange(0, m)
	inst.Want[n-1].AddRange(0, m)
	return inst
}

func TestInstanceCheck(t *testing.T) {
	inst := lineInstance(t, 3, 2, 1)
	if err := inst.Check(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	// A wanted token that nobody has.
	bad := lineInstance(t, 3, 2, 1)
	bad.Have[0].Remove(1)
	if err := bad.Check(); err == nil {
		t.Error("unheld wanted token accepted")
	}
}

func TestInstanceSatisfiable(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	if !inst.Satisfiable() {
		t.Error("line instance reported unsatisfiable")
	}
	// Reverse the demand: vertex 0 wants a token held at the end of a
	// one-way line.
	g := graph.New(3)
	if err := g.AddArc(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddArc(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	rev := NewInstance(g, 1)
	rev.Have[2].Add(0)
	rev.Want[0].Add(0)
	if rev.Satisfiable() {
		t.Error("unreachable demand reported satisfiable")
	}
}

func TestInstanceClone(t *testing.T) {
	inst := lineInstance(t, 3, 2, 1)
	c := inst.Clone()
	c.Have[0].Remove(0)
	c.Want[2].Remove(1)
	if !inst.Have[0].Has(0) || !inst.Want[2].Has(1) {
		t.Error("Clone shares sets with the original")
	}
}

func TestTheoremOneHorizon(t *testing.T) {
	inst := lineInstance(t, 5, 3, 1)
	if got := inst.TheoremOneHorizon(); got != 12 {
		t.Errorf("horizon = %d, want m(n-1) = 12", got)
	}
}

func TestValidateAcceptsCorrectSchedule(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	sched := &Schedule{Steps: []Step{
		{{From: 0, To: 1, Token: 0}},
		{{From: 1, To: 2, Token: 0}},
	}}
	if err := Validate(inst, sched); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestValidatePossessionViolation(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	// Vertex 1 sends before it has the token.
	sched := &Schedule{Steps: []Step{
		{{From: 0, To: 1, Token: 0}, {From: 1, To: 2, Token: 0}},
	}}
	err := Validate(inst, sched)
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("want ValidationError, got %v", err)
	}
	if verr.Reason == "" || verr.Step != 0 {
		t.Errorf("unexpected violation detail: %+v", verr)
	}
}

func TestValidateSameStepDeliveryNotSendable(t *testing.T) {
	// Receiving and forwarding in the same timestep is illegal: a token
	// may only be sent if possessed at the *start* of the timestep (§3.1).
	inst := lineInstance(t, 3, 1, 1)
	sched := &Schedule{Steps: []Step{
		{{From: 0, To: 1, Token: 0}},
		{{From: 1, To: 2, Token: 0}, {From: 0, To: 1, Token: 0}},
	}}
	if err := Validate(inst, sched); err != nil {
		t.Errorf("valid two-step schedule rejected: %v", err)
	}
}

func TestValidateCapacityViolation(t *testing.T) {
	inst := lineInstance(t, 2, 3, 2)
	sched := &Schedule{Steps: []Step{{
		{From: 0, To: 1, Token: 0},
		{From: 0, To: 1, Token: 1},
		{From: 0, To: 1, Token: 2}, // third token on a capacity-2 arc
	}}}
	err := Validate(inst, sched)
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("want ValidationError, got %v", err)
	}
}

func TestValidateMissingArc(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	sched := &Schedule{Steps: []Step{{{From: 0, To: 2, Token: 0}}}}
	if err := Validate(inst, sched); err == nil {
		t.Error("move on nonexistent arc accepted")
	}
}

func TestValidateTokenRange(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	sched := &Schedule{Steps: []Step{{{From: 0, To: 1, Token: 5}}}}
	if err := Validate(inst, sched); err == nil {
		t.Error("out-of-range token accepted")
	}
}

func TestValidateUnsuccessful(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	sched := &Schedule{Steps: []Step{{{From: 0, To: 1, Token: 0}}}}
	if err := Validate(inst, sched); !errors.Is(err, ErrUnsuccessful) {
		t.Errorf("want ErrUnsuccessful, got %v", err)
	}
}

func TestScheduleMetrics(t *testing.T) {
	sched := &Schedule{Steps: []Step{
		{{From: 0, To: 1, Token: 0}, {From: 0, To: 1, Token: 1}},
		{{From: 1, To: 2, Token: 0}},
	}}
	if got := sched.Makespan(); got != 2 {
		t.Errorf("Makespan = %d", got)
	}
	if got := sched.Moves(); got != 3 {
		t.Errorf("Moves = %d", got)
	}
	c := sched.Clone()
	c.Steps[0][0].Token = 9
	if sched.Steps[0][0].Token == 9 {
		t.Error("Clone shares move storage")
	}
}

func TestSimulateHistory(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	sched := &Schedule{Steps: []Step{
		{{From: 0, To: 1, Token: 0}},
		{{From: 1, To: 2, Token: 0}},
	}}
	hist := Simulate(inst, sched)
	if len(hist) != 3 {
		t.Fatalf("history length = %d, want 3", len(hist))
	}
	if hist[0][1].Has(0) {
		t.Error("token present before delivery")
	}
	if !hist[1][1].Has(0) || !hist[2][2].Has(0) {
		t.Error("deliveries not reflected in history")
	}
}

func TestPruneRemovesDuplicateDeliveries(t *testing.T) {
	// Diamond: 0→1, 0→2, 1→3, 2→3. Both paths deliver the token to 3.
	g := graph.New(4)
	for _, a := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddArc(a[0], a[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	inst := NewInstance(g, 1)
	inst.Have[0].Add(0)
	inst.Want[3].Add(0)
	sched := &Schedule{Steps: []Step{
		{{From: 0, To: 1, Token: 0}, {From: 0, To: 2, Token: 0}},
		{{From: 1, To: 3, Token: 0}, {From: 2, To: 3, Token: 0}},
	}}
	if err := Validate(inst, sched); err != nil {
		t.Fatalf("setup schedule invalid: %v", err)
	}
	pruned := Prune(inst, sched)
	// Only one branch should survive: 2 moves.
	if got := pruned.Moves(); got != 2 {
		t.Errorf("pruned moves = %d, want 2", got)
	}
	if err := Validate(inst, pruned); err != nil {
		t.Errorf("pruned schedule invalid: %v", err)
	}
}

func TestPruneRemovesUnusedDeliveries(t *testing.T) {
	// Token flooded to a vertex that neither wants nor forwards it.
	inst := lineInstance(t, 3, 2, 2)
	inst.Want[2].Remove(1) // token 1 is wanted by nobody downstream
	inst.Want[1].Clear()
	sched := &Schedule{Steps: []Step{
		{{From: 0, To: 1, Token: 0}, {From: 0, To: 1, Token: 1}},
		{{From: 1, To: 2, Token: 0}},
	}}
	if err := Validate(inst, sched); err != nil {
		t.Fatalf("setup: %v", err)
	}
	pruned := Prune(inst, sched)
	if got := pruned.Moves(); got != 2 {
		t.Errorf("pruned moves = %d, want 2 (token 1 delivery dropped)", got)
	}
}

func TestPruneKeepsRelayChains(t *testing.T) {
	// The relay vertex does not want the token but must keep receiving it
	// because it forwards it later.
	inst := lineInstance(t, 4, 1, 1)
	sched := &Schedule{Steps: []Step{
		{{From: 0, To: 1, Token: 0}},
		{{From: 1, To: 2, Token: 0}},
		{{From: 2, To: 3, Token: 0}},
	}}
	pruned := Prune(inst, sched)
	if got := pruned.Moves(); got != 3 {
		t.Errorf("pruned moves = %d, want 3 (chain must survive)", got)
	}
	if err := Validate(inst, pruned); err != nil {
		t.Errorf("pruned chain invalid: %v", err)
	}
}

func TestPruneDropsEmptySteps(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	sched := &Schedule{Steps: []Step{
		{{From: 0, To: 1, Token: 0}},
		{}, // idle step
		{{From: 1, To: 2, Token: 0}},
	}}
	pruned := Prune(inst, sched)
	if got := pruned.Makespan(); got != 2 {
		t.Errorf("pruned makespan = %d, want 2", got)
	}
}

// randomValidSchedule floods tokens randomly to build a messy but valid
// successful schedule for property testing.
func randomValidSchedule(t *testing.T, inst *Instance, rng *rand.Rand) *Schedule {
	t.Helper()
	sched := &Schedule{}
	possess := inst.InitialPossession()
	for step := 0; step < 200 && !Done(inst, possess); step++ {
		var st Step
		for _, a := range inst.G.Arcs() {
			useful := possess[a.From].Clone()
			sent := 0
			useful.ForEach(func(tok int) bool {
				if sent >= a.Cap {
					return false
				}
				if rng.Intn(2) == 0 {
					st = append(st, Move{From: a.From, To: a.To, Token: tok})
					sent++
				}
				return true
			})
		}
		for _, mv := range st {
			possess[mv.To].Add(mv.Token)
		}
		sched.Append(st)
	}
	if !Done(inst, possess) {
		t.Skip("random schedule did not complete (flaky seed)")
	}
	return sched
}

func TestPruneProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(5)
		m := 1 + rng.Intn(3)
		g := graph.New(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			if err := g.AddEdge(perm[i], perm[rng.Intn(i)], 1+rng.Intn(2)); err != nil {
				t.Fatal(err)
			}
		}
		inst := NewInstance(g, m)
		for tok := 0; tok < m; tok++ {
			inst.Have[rng.Intn(n)].Add(tok)
			inst.Want[rng.Intn(n)].Add(tok)
		}
		sched := randomValidSchedule(t, inst, rng)
		if err := Validate(inst, sched); err != nil {
			t.Fatalf("trial %d: random schedule invalid: %v", trial, err)
		}
		pruned := Prune(inst, sched)
		if pruned.Moves() > sched.Moves() {
			t.Errorf("trial %d: pruning increased moves %d → %d", trial, sched.Moves(), pruned.Moves())
		}
		if err := Validate(inst, pruned); err != nil {
			t.Errorf("trial %d: pruned schedule invalid: %v", trial, err)
		}
		if pruned.Moves() < BandwidthLowerBound(inst, nil) {
			t.Errorf("trial %d: pruned below the bandwidth lower bound", trial)
		}
	}
}

func TestBandwidthLowerBound(t *testing.T) {
	inst := lineInstance(t, 4, 3, 1)
	// Only vertex 3 wants the 3 tokens → 3 deliveries minimum.
	if got := BandwidthLowerBound(inst, nil); got != 3 {
		t.Errorf("bandwidth LB = %d, want 3", got)
	}
	// With possession updated to complete, the bound drops to zero.
	possess := inst.InitialPossession()
	possess[3].AddRange(0, 3)
	if got := BandwidthLowerBound(inst, possess); got != 0 {
		t.Errorf("bandwidth LB after completion = %d, want 0", got)
	}
}

func TestMakespanLowerBoundLine(t *testing.T) {
	// Distance bound: token must travel n−1 hops.
	inst := lineInstance(t, 5, 1, 1)
	if got := MakespanLowerBound(inst, nil); got != 4 {
		t.Errorf("makespan LB = %d, want 4 (path length)", got)
	}
}

func TestMakespanLowerBoundCapacity(t *testing.T) {
	// Two vertices, 6 tokens, capacity 2: at least 3 steps.
	inst := lineInstance(t, 2, 6, 2)
	if got := MakespanLowerBound(inst, nil); got != 3 {
		t.Errorf("makespan LB = %d, want 3 (ceil(6/2))", got)
	}
}

func TestMakespanLowerBoundMixed(t *testing.T) {
	// Line of 3 with capacity 1 and 4 tokens: radius-1 term gives
	// 1 + ceil(4/1) is wrong (tokens at distance 2); the i=1 bucket has
	// everything at distance 2: bound = max_i(i + ceil(k_i/cap)).
	inst := lineInstance(t, 3, 4, 1)
	// k_0 = 4 (v=2 has nothing, in-cap 1): 0+4 = 4; k_1 = 4 (distance-1
	// vertex 1 has nothing): 1+4 = 5; k_2 = 0. Want 5.
	if got := MakespanLowerBound(inst, nil); got != 5 {
		t.Errorf("makespan LB = %d, want 5", got)
	}
}

func TestOneStepRetrievable(t *testing.T) {
	inst := lineInstance(t, 3, 2, 1)
	possess := inst.InitialPossession()
	got := OneStepRetrievable(inst, possess, 1)
	if got.Count() != 2 {
		t.Errorf("vertex 1 one-step set = %v", got)
	}
	if !OneStepRetrievable(inst, possess, 2).Empty() {
		t.Error("vertex 2 should retrieve nothing in one step")
	}
}

func TestDone(t *testing.T) {
	inst := lineInstance(t, 2, 1, 1)
	possess := inst.InitialPossession()
	if Done(inst, possess) {
		t.Error("Done before delivery")
	}
	possess[1].Add(0)
	if !Done(inst, possess) {
		t.Error("not Done after delivery")
	}
}

func TestSetsAreIndependentPerVertex(t *testing.T) {
	inst := NewInstance(graph.New(3), 4)
	inst.Have[0].Add(1)
	if inst.Have[1].Has(1) || inst.Want[0].Has(1) {
		t.Error("instance sets alias each other")
	}
}

func TestRenderTimeline(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	sched := &Schedule{Steps: []Step{
		{{From: 0, To: 1, Token: 0}},
		{},
		{{From: 1, To: 2, Token: 0}},
	}}
	out := RenderTimeline(inst, sched, 0)
	for _, want := range []string{"step 1 [  0%]", "(idle)", "step 3 [100%]", "1-[0]->2"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// Truncation.
	wide := &Schedule{Steps: []Step{{
		{From: 0, To: 1, Token: 0}, {From: 0, To: 1, Token: 0}, {From: 0, To: 1, Token: 0},
	}}}
	out = RenderTimeline(inst, wide, 1)
	if !strings.Contains(out, "+2 more") {
		t.Errorf("truncation marker missing:\n%s", out)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for x, want := range cases {
		if got := ceilLog2(x); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestTheoremTwoDescriptionBound(t *testing.T) {
	// Theorem 2: a successful schedule exists within the canonical-bit
	// budget. Any schedule whose duplicate deliveries have been pruned has
	// at most m(n−1) moves (Theorem 1), so its encoding fits.
	inst := lineInstance(t, 5, 3, 2)
	sched := &Schedule{Steps: []Step{
		{{From: 0, To: 1, Token: 0}, {From: 0, To: 1, Token: 1}},
		{{From: 1, To: 2, Token: 0}, {From: 1, To: 2, Token: 1}, {From: 0, To: 1, Token: 2}},
		{{From: 2, To: 3, Token: 0}, {From: 2, To: 3, Token: 1}, {From: 1, To: 2, Token: 2}},
		{{From: 3, To: 4, Token: 0}, {From: 3, To: 4, Token: 1}, {From: 2, To: 3, Token: 2}},
		{{From: 3, To: 4, Token: 2}},
	}}
	if err := Validate(inst, sched); err != nil {
		t.Fatalf("setup: %v", err)
	}
	bitsUsed := DescriptionBits(inst, sched)
	if bitsUsed <= 0 {
		t.Fatal("no bits counted")
	}
	if bound := TheoremTwoBound(inst); bitsUsed > bound {
		t.Errorf("canonical encoding %d bits exceeds the Theorem 2 budget %d", bitsUsed, bound)
	}
	// A pruned flooding schedule also fits (it has ≤ m(n−1) moves).
	flood := floodSchedule(inst)
	pruned := Prune(inst, flood)
	if got := DescriptionBits(inst, pruned); got > TheoremTwoBound(inst) {
		t.Errorf("pruned flooding encoding %d bits exceeds budget %d", got, TheoremTwoBound(inst))
	}
}
