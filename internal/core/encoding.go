package core

import "math/bits"

// DescriptionBits returns the size in bits of the Theorem 2 canonical
// encoding of a schedule: each move is a token plus an arc
// (2·⌈log n⌉ + ⌈log m⌉ bits), and the move sequence is segmented into
// timesteps by per-step move counts (⌈log nm⌉ bits each). Theorem 2 states
// that any satisfiable FOCD instance admits a successful schedule of
// O(nm·(log n + log m)) bits; TheoremTwoBound gives that budget explicitly
// so the two can be compared in tests and experiments.
func DescriptionBits(inst *Instance, sched *Schedule) int {
	n, m := inst.N(), inst.NumTokens
	moveBits := 2*ceilLog2(n) + ceilLog2(m)
	stepBits := ceilLog2(n * m)
	total := 0
	for _, st := range sched.Steps {
		total += stepBits + len(st)*moveBits
	}
	return total
}

// TheoremTwoBound returns the Theorem 2 budget: m(n−1) moves of
// 2⌈log n⌉+⌈log m⌉ bits plus m(n−1) step counters of ⌈log nm⌉ bits — the
// explicit constant behind O(nm·(log n + log m)).
func TheoremTwoBound(inst *Instance) int {
	n, m := inst.N(), inst.NumTokens
	maxMoves := m * (n - 1)
	if maxMoves < 0 {
		maxMoves = 0
	}
	return maxMoves * (2*ceilLog2(n) + ceilLog2(m) + ceilLog2(n*m))
}

// ceilLog2 returns ⌈log₂ x⌉ for x ≥ 1 (0 for smaller inputs).
func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}
