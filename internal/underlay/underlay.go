// Package underlay implements the paper's §6 "Realistic topologies" open
// problem: overlay links are logical paths over a shared physical network,
// so their capacities are not independent. Routers forward but do not
// participate in the overlay.
//
// A Network maps each overlay arc onto the shortest physical path. The
// overlay graph advertises the optimistic per-link capacity (the
// bottleneck along the path, what an overlay-only model assumes); the
// underlay-constrained engine charges every move against each physical
// link it traverses, exposing how much the overlay-only estimate
// overpromises when logical links share wires.
package underlay

import (
	"errors"
	"fmt"
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
)

// Network couples a physical topology with an overlay built on top of it.
type Network struct {
	// Phys is the physical graph; all vertices can forward.
	Phys *graph.Graph
	// Hosts are the physical vertices participating in the overlay;
	// overlay vertex i is physical vertex Hosts[i].
	Hosts []int
	// Overlay is the logical graph on len(Hosts) vertices. Capacities are
	// the per-path bottlenecks (the optimistic overlay-only view).
	Overlay *graph.Graph
	// paths maps each overlay arc (i,j) to the physical arcs of its route.
	paths map[[2]int][][2]int
}

// ErrNoPath indicates an overlay edge between physically disconnected
// hosts.
var ErrNoPath = errors.New("underlay: no physical path for overlay edge")

// Build constructs a network: each overlay edge (i, j) — indices into
// hosts — is routed over the shortest physical path in both directions.
func Build(phys *graph.Graph, hosts []int, overlayEdges [][2]int) (*Network, error) {
	for _, h := range hosts {
		if h < 0 || h >= phys.N() {
			return nil, fmt.Errorf("underlay: host %d outside physical graph", h)
		}
	}
	n := &Network{
		Phys:    phys,
		Hosts:   append([]int(nil), hosts...),
		Overlay: graph.New(len(hosts)),
		paths:   make(map[[2]int][][2]int),
	}
	for _, e := range overlayEdges {
		for _, dir := range [][2]int{{e[0], e[1]}, {e[1], e[0]}} {
			if err := n.addOverlayArc(dir[0], dir[1]); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

func (n *Network) addOverlayArc(i, j int) error {
	if i < 0 || i >= len(n.Hosts) || j < 0 || j >= len(n.Hosts) || i == j {
		return fmt.Errorf("underlay: overlay edge (%d,%d) out of range", i, j)
	}
	if n.Overlay.HasArc(i, j) {
		return nil
	}
	src, dst := n.Hosts[i], n.Hosts[j]
	path, bottleneck, err := shortestPath(n.Phys, src, dst)
	if err != nil {
		return fmt.Errorf("%w: hosts %d→%d", ErrNoPath, src, dst)
	}
	n.paths[[2]int{i, j}] = path
	return n.Overlay.AddArc(i, j, bottleneck)
}

// shortestPath returns the physical arcs of a BFS shortest path and the
// minimum capacity along it.
func shortestPath(g *graph.Graph, src, dst int) ([][2]int, int, error) {
	prev := make([]int, g.N())
	for i := range prev {
		prev[i] = -2
	}
	prev[src] = -1
	queue := []int{src}
	for len(queue) > 0 && prev[dst] == -2 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.Out(u) {
			if prev[a.To] == -2 {
				prev[a.To] = u
				queue = append(queue, a.To)
			}
		}
	}
	if prev[dst] == -2 {
		return nil, 0, ErrNoPath
	}
	var path [][2]int
	bottleneck := 0
	for v := dst; prev[v] != -1; v = prev[v] {
		u := prev[v]
		path = append(path, [2]int{u, v})
		if c := g.Cap(u, v); bottleneck == 0 || c < bottleneck {
			bottleneck = c
		}
	}
	// Reverse into src→dst order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path, bottleneck, nil
}

// Path returns the physical arcs of overlay arc (i, j).
func (n *Network) Path(i, j int) [][2]int { return n.paths[[2]int{i, j}] }

// SharingFactor reports how oversubscribed the physical network is: the
// maximum, over physical arcs, of (sum of overlay bottleneck capacities
// routed across the arc) / (physical capacity). Values above 1 mean the
// overlay-only view overpromises.
func (n *Network) SharingFactor() float64 {
	load := make(map[[2]int]int)
	for key, path := range n.paths {
		c := n.Overlay.Cap(key[0], key[1])
		for _, pa := range path {
			load[pa] += c
		}
	}
	worst := 0.0
	for pa, l := range load {
		phys := n.Phys.Cap(pa[0], pa[1])
		if phys == 0 {
			continue
		}
		if f := float64(l) / float64(phys); f > worst {
			worst = f
		}
	}
	return worst
}

// Run executes a strategy over the overlay instance while charging every
// move against the physical links its overlay arc traverses. The instance
// must be built over n.Overlay.
func (n *Network) Run(inst *core.Instance, factory sim.Factory, opts sim.Options) (*sim.Result, error) {
	if inst.G != n.Overlay {
		return nil, errors.New("underlay: instance not built over this network's overlay")
	}
	if err := inst.Check(); err != nil {
		return nil, err
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 4*inst.TheoremOneHorizon() + opts.IdlePatience
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	strat, err := factory(inst, rng)
	if err != nil {
		return nil, fmt.Errorf("underlay: create strategy: %w", err)
	}

	st := &sim.State{Inst: inst, Possess: inst.InitialPossession(), Rand: rng}
	res := &sim.Result{Strategy: strat.Name(), Schedule: &core.Schedule{}}
	// The kernel's own admission covers token range, overlay arc existence,
	// overlay capacity, and possession; the Admit hook layers the shared
	// physical-link charging on top. This engine deliberately ignores
	// opts.Done and opts.LossRate, as it always has: completion is the
	// static predicate and transport is lossless.
	eng := sim.Engine{
		MaxSteps:     maxSteps,
		IdlePatience: opts.IdlePatience,
		Done:         core.Done,
		Admit:        n.newAdmitter().admit,
		Observer:     opts.Observer,
	}
	reason, stepAt := eng.Run(inst, strat, st, res)
	if reason == sim.StopStalled {
		return res, fmt.Errorf("%w: step %d on shared underlay", sim.ErrStalled, stepAt)
	}
	res.Finalize(inst, st.Possess, core.Done, opts.Prune)
	return res, nil
}

// admitter charges accepted moves against the physical links their overlay
// arc traverses. Physical usage lives in a dense slice indexed by the
// physical graph's arc IDs, cleared lazily on the first admission of each
// step; paths are pre-resolved to physical arc IDs per overlay arc ID. One
// admitter serves one run — Network itself stays read-only and safe for
// concurrent runs.
type admitter struct {
	pathIDs  [][]int32 // overlay arc ID → physical arc IDs along its route
	physCaps []int
	physUsed []int
	lastStep int
}

func (n *Network) newAdmitter() *admitter {
	a := &admitter{
		pathIDs:  make([][]int32, n.Overlay.NumArcs()),
		physCaps: n.Phys.CapsByID(),
		physUsed: make([]int, n.Phys.NumArcs()),
		lastStep: -1,
	}
	//ocd:orderinvariant — each path lands in its own dense slot.
	for key, path := range n.paths {
		ids := make([]int32, len(path))
		for i, pa := range path {
			ids[i] = int32(n.Phys.ArcID(pa[0], pa[1]))
		}
		a.pathIDs[n.Overlay.ArcID(key[0], key[1])] = ids
	}
	return a
}

// admit is the kernel Admit hook: every physical link along the overlay
// arc's route must have residual capacity, and an accepted move charges
// them all.
func (a *admitter) admit(step int, _ core.Move, id int) bool {
	if step != a.lastStep {
		clear(a.physUsed)
		a.lastStep = step
	}
	path := a.pathIDs[id]
	for _, pid := range path {
		if a.physUsed[pid] >= a.physCaps[pid] {
			return false
		}
	}
	for _, pid := range path {
		a.physUsed[pid]++
	}
	return true
}

// admit checks one move against possession, overlay capacity, and the
// shared physical capacities, committing its usage if accepted.
func (n *Network) admit(inst *core.Instance, possess []tokenset.Set, physUsed, overlayUsed map[[2]int]int, mv core.Move) bool {
	if mv.Token < 0 || mv.Token >= inst.NumTokens {
		return false
	}
	key := [2]int{mv.From, mv.To}
	path, ok := n.paths[key]
	if !ok {
		return false
	}
	if overlayUsed[key] >= n.Overlay.Cap(mv.From, mv.To) {
		return false
	}
	if !possess[mv.From].Has(mv.Token) {
		return false
	}
	for _, pa := range path {
		if physUsed[pa]+1 > n.Phys.Cap(pa[0], pa[1]) {
			return false
		}
	}
	overlayUsed[key]++
	for _, pa := range path {
		physUsed[pa]++
	}
	return true
}

// Validate replays a schedule under the shared-physical-capacity
// semantics.
func (n *Network) Validate(inst *core.Instance, sched *core.Schedule) error {
	possess := inst.InitialPossession()
	for i, st := range sched.Steps {
		physUsed := make(map[[2]int]int)
		overlayUsed := make(map[[2]int]int)
		for _, mv := range st {
			if !n.admit(inst, possess, physUsed, overlayUsed, mv) {
				return fmt.Errorf("underlay: step %d move %v violates shared capacity or possession", i, mv)
			}
		}
		for _, mv := range st {
			possess[mv.To].Add(mv.Token)
		}
	}
	if !core.Done(inst, possess) {
		return core.ErrUnsuccessful
	}
	return nil
}
