package underlay

import (
	"fmt"
	"math/rand"

	"ocd/internal/topology"
)

// RandomNetwork builds a transit-stub physical topology of roughly physN
// vertices, selects numHosts random overlay participants, and wires each
// host to meshDegree random peers (a typical random overlay mesh over a
// real network).
func RandomNetwork(physN, numHosts, meshDegree int, caps topology.CapRange, seed int64) (*Network, error) {
	if numHosts < 2 {
		return nil, fmt.Errorf("underlay: need at least 2 hosts, got %d", numHosts)
	}
	phys, err := topology.TransitStubN(physN, caps, seed)
	if err != nil {
		return nil, err
	}
	if numHosts > phys.N() {
		return nil, fmt.Errorf("underlay: %d hosts exceed %d physical vertices", numHosts, phys.N())
	}
	rng := rand.New(rand.NewSource(seed + 1))
	perm := rng.Perm(phys.N())
	hosts := append([]int(nil), perm[:numHosts]...)

	// Ring for connectivity plus random chords for the mesh.
	var edges [][2]int
	for i := 0; i < numHosts; i++ {
		edges = append(edges, [2]int{i, (i + 1) % numHosts})
	}
	for i := 0; i < numHosts; i++ {
		for d := 0; d < meshDegree; d++ {
			j := rng.Intn(numHosts)
			if j != i {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return Build(phys, hosts, edges)
}
