package underlay

import (
	"errors"
	"testing"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

// dumbbell builds the classic shared-bottleneck topology: hosts a, b on
// the left, c, d on the right, joined by a single physical link r1–r2.
//
//	a          c
//	 \        /
//	  r1 -- r2
//	 /        \
//	b          d
func dumbbell(t *testing.T, bottleneckCap int) (*graph.Graph, []int) {
	t.Helper()
	g := graph.New(6)
	const (
		a, b, r1, r2, c, d = 0, 1, 2, 3, 4, 5
	)
	for _, e := range [][3]int{
		{a, r1, 10}, {b, r1, 10}, {r1, r2, 0}, {r2, c, 10}, {r2, d, 10},
	} {
		cp := e[2]
		if cp == 0 {
			cp = bottleneckCap
		}
		if err := g.AddEdge(e[0], e[1], cp); err != nil {
			t.Fatal(err)
		}
	}
	return g, []int{a, b, c, d}
}

func TestBuildRoutesShortestPaths(t *testing.T) {
	phys, hosts := dumbbell(t, 4)
	// Overlay: a–c and b–d, both crossing the bottleneck.
	net, err := Build(phys, hosts, [][2]int{{0, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if net.Overlay.N() != 4 {
		t.Errorf("overlay vertices = %d", net.Overlay.N())
	}
	// Nominal overlay capacity is the path bottleneck (4).
	if got := net.Overlay.Cap(0, 2); got != 4 {
		t.Errorf("overlay cap = %d, want bottleneck 4", got)
	}
	path := net.Path(0, 2)
	if len(path) != 3 {
		t.Errorf("path length = %d arcs, want 3", len(path))
	}
	// Both overlay links share the physical bottleneck: sharing factor 2.
	if got := net.SharingFactor(); got != 2.0 {
		t.Errorf("sharing factor = %.2f, want 2.0", got)
	}
}

func TestBuildErrors(t *testing.T) {
	phys, hosts := dumbbell(t, 4)
	if _, err := Build(phys, []int{0, 99}, nil); err == nil {
		t.Error("out-of-range host accepted")
	}
	if _, err := Build(phys, hosts, [][2]int{{0, 9}}); err == nil {
		t.Error("out-of-range overlay edge accepted")
	}
	// Disconnected physical graph.
	iso := graph.New(3)
	if _, err := Build(iso, []int{0, 1}, [][2]int{{0, 1}}); !errors.Is(err, ErrNoPath) {
		t.Errorf("want ErrNoPath, got %v", err)
	}
}

func TestSharedBottleneckEnforced(t *testing.T) {
	phys, hosts := dumbbell(t, 2)
	net, err := Build(phys, hosts, [][2]int{{0, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Both a and b hold 4 tokens for c and d respectively. Overlay caps
	// claim 2 per link; the shared bottleneck allows only 2 total per step.
	inst := core.NewInstance(net.Overlay, 8)
	inst.Have[0].AddRange(0, 4)
	inst.Want[2].AddRange(0, 4)
	inst.Have[1].AddRange(4, 8)
	inst.Want[3].AddRange(4, 8)

	logical, err := sim.Run(inst, heuristics.Local, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	physical, err := net.Run(inst, heuristics.Local, sim.Options{Seed: 1, IdlePatience: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !physical.Completed {
		t.Fatal("underlay run incomplete")
	}
	// Logical: 8 deliveries at 2+2 per step = 2 steps. Physical: 2 per
	// step total = 4 steps.
	if logical.Steps >= physical.Steps {
		t.Errorf("shared bottleneck not binding: logical %d steps, physical %d",
			logical.Steps, physical.Steps)
	}
	if physical.Steps != 4 {
		t.Errorf("physical steps = %d, want 4 (8 tokens over a cap-2 wire)", physical.Steps)
	}
	if err := net.Validate(inst, physical.Schedule); err != nil {
		t.Fatalf("underlay schedule invalid: %v", err)
	}
}

func TestValidateRejectsOversharing(t *testing.T) {
	phys, hosts := dumbbell(t, 1)
	net, err := Build(phys, hosts, [][2]int{{0, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	inst := core.NewInstance(net.Overlay, 2)
	inst.Have[0].Add(0)
	inst.Want[2].Add(0)
	inst.Have[1].Add(1)
	inst.Want[3].Add(1)
	// Both moves in one step exceed the shared physical capacity 1.
	sched := &core.Schedule{Steps: []core.Step{{
		{From: 0, To: 2, Token: 0},
		{From: 1, To: 3, Token: 1},
	}}}
	if err := net.Validate(inst, sched); err == nil {
		t.Error("oversharing schedule accepted")
	}
	// Spread over two steps it is fine.
	ok := &core.Schedule{Steps: []core.Step{
		{{From: 0, To: 2, Token: 0}},
		{{From: 1, To: 3, Token: 1}},
	}}
	if err := net.Validate(inst, ok); err != nil {
		t.Errorf("sequential schedule rejected: %v", err)
	}
}

func TestRunRejectsForeignInstance(t *testing.T) {
	phys, hosts := dumbbell(t, 2)
	net, err := Build(phys, hosts, [][2]int{{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.Line(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(workload.SingleFile(g, 1), heuristics.Local, sim.Options{}); err == nil {
		t.Error("foreign instance accepted")
	}
}

func TestRandomNetwork(t *testing.T) {
	net, err := RandomNetwork(60, 10, 2, topology.DefaultCaps, 5)
	if err != nil {
		t.Fatal(err)
	}
	if net.Overlay.N() != 10 {
		t.Errorf("overlay size = %d", net.Overlay.N())
	}
	if !net.Overlay.StronglyConnected() {
		t.Error("overlay not strongly connected")
	}
	inst := workload.SingleFile(net.Overlay, 6)
	res, err := net.Run(inst, heuristics.Local, sim.Options{Seed: 2, IdlePatience: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("random network run incomplete")
	}
	if err := net.Validate(inst, res.Schedule); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if _, err := RandomNetwork(60, 1, 2, topology.DefaultCaps, 5); err == nil {
		t.Error("single host accepted")
	}
}
