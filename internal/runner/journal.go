package runner

// The crash-safety journal: a JSONL file recording each completed cell's
// key and result as one appended line, so a sweep killed mid-flight can be
// re-invoked with the same journal and skip straight past the cells that
// already finished. Because Map assembles results in submission order from
// the journal and fresh runs alike, a resumed sweep's canonical output is
// byte-identical to an uninterrupted one — provided the cell result type
// round-trips through JSON, which the experiment drivers' row structs do.
//
// The journal is deliberately append-only: a line is written only after
// its cell succeeded, a torn final line (the process died mid-write) is
// skipped on reload, and failed cells are never recorded — they re-run on
// resume.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// journalMagic identifies the header line of a runner journal.
const journalMagic = "ocd-runner"

// journalHeader is the first line of every journal: the magic tag and the
// experiment base seed, so a journal cannot silently resume a different
// experiment.
type journalHeader struct {
	Journal string `json:"journal"`
	Base    int64  `json:"base"`
}

// journalEntry is one completed cell.
type journalEntry struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Journal is the persistent completed-cell store behind Options.Journal.
// One Journal may span several Map calls (multi-table sweeps journal into
// one file); it is safe for concurrent use by Map's workers.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	base      int64
	haveBase  bool
	completed map[string]json.RawMessage
}

// OpenJournal opens or creates the journal at path, loading every
// well-formed completed-cell line already present. A torn trailing line —
// the signature of a killed run — is skipped, not an error; any
// well-formed lines after it still count. For duplicate keys the last
// line wins.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: open journal: %w", err)
	}
	j := &Journal{f: f, completed: make(map[string]json.RawMessage)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var h journalHeader
			if err := json.Unmarshal(line, &h); err != nil || h.Journal != journalMagic {
				f.Close()
				return nil, fmt.Errorf("runner: %s is not a runner journal", path)
			}
			j.base, j.haveBase = h.Base, true
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			// Torn or foreign line: skip. Its cell simply re-runs.
			continue
		}
		j.completed[e.Key] = e.Value
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: read journal: %w", err)
	}
	return j, nil
}

// Len reports the number of completed cells currently recorded.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.completed)
}

// Close releases the journal file. The journal must not be used afterwards.
func (j *Journal) Close() error { return j.f.Close() }

// bind pins the journal to an experiment base seed: the first Map call
// writes the header, later calls (and resumed runs) must match it.
func (j *Journal) bind(base int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.haveBase {
		if j.base != base {
			return fmt.Errorf("runner: journal was recorded with base seed %d, not %d", j.base, base)
		}
		return nil
	}
	line, err := json.Marshal(journalHeader{Journal: journalMagic, Base: base})
	if err != nil {
		return fmt.Errorf("runner: journal header: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("runner: journal header: %w", err)
	}
	j.base, j.haveBase = base, true
	return nil
}

// lookup returns the recorded result for key, if any.
func (j *Journal) lookup(key string) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, ok := j.completed[key]
	return raw, ok
}

// record appends one completed cell. The line is buffered into a single
// Write so a kill can only tear the final line, never interleave two.
func (j *Journal) record(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: journal cell %q: %w", key, err)
	}
	line, err := json.Marshal(journalEntry{Key: key, Value: raw})
	if err != nil {
		return fmt.Errorf("runner: journal cell %q: %w", key, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("runner: journal cell %q: %w", key, err)
	}
	j.completed[key] = raw
	return nil
}
