package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// randomWalk is a deliberately PRNG-heavy cell body: any leakage of worker
// identity or completion order into the seed shows up as a different sum.
func randomWalk(seed int64) (int64, error) {
	rng := rand.New(rand.NewSource(seed))
	var sum int64
	for i := 0; i < 1000; i++ {
		sum += rng.Int63n(1 << 30)
	}
	return sum, nil
}

func walkCells(n int) []Cell[int64] {
	cells := make([]Cell[int64], n)
	for i := range cells {
		cells[i] = Cell[int64]{Key: fmt.Sprintf("cell/%03d", i), Run: randomWalk}
	}
	return cells
}

func TestParallelMatchesSerial(t *testing.T) {
	cells := walkCells(64)
	serial, err := Map(42, cells, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 8, runtime.GOMAXPROCS(0)} {
		parallel, err := Map(42, walkCells(64), Options{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("parallelism %d diverged from serial", p)
		}
	}
}

func TestSeedDerivation(t *testing.T) {
	if Seed(1, "a") == Seed(1, "b") {
		t.Error("distinct keys collided")
	}
	if Seed(1, "a") == Seed(2, "a") {
		t.Error("distinct bases collided")
	}
	if Seed(7, "gs0/r1") != Seed(7, "gs0/r1") {
		t.Error("seed derivation not pure")
	}
}

// TestSeedKeyPairsCells checks the paired-comparison contract: cells with
// the same SeedKey receive identical seeds even though their Keys differ.
func TestSeedKeyPairsCells(t *testing.T) {
	seeds := make([]int64, 2)
	cells := []Cell[int64]{
		{Key: "gs0/local/r1", SeedKey: "gs0/r1", Run: func(s int64) (int64, error) { seeds[0] = s; return 0, nil }},
		{Key: "gs0/global/r1", SeedKey: "gs0/r1", Run: func(s int64) (int64, error) { seeds[1] = s; return 0, nil }},
	}
	if _, err := Map(3, cells, Options{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	if seeds[0] != seeds[1] {
		t.Errorf("paired cells got different seeds: %d vs %d", seeds[0], seeds[1])
	}
}

// TestFirstErrorByCanonicalIndex checks that the reported failure is the
// lowest-indexed failing cell regardless of scheduling.
func TestFirstErrorByCanonicalIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for trial := 0; trial < 20; trial++ {
		cells := walkCells(32)
		cells[19].Run = func(int64) (int64, error) { return 0, errB }
		cells[5].Run = func(int64) (int64, error) { return 0, errA }
		_, err := Map(1, cells, Options{Parallelism: 8})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: want lowest-indexed error %v, got %v", trial, errA, err)
		}
	}
}

func TestDuplicateKeysRejected(t *testing.T) {
	cells := walkCells(4)
	cells[3].Key = cells[0].Key
	if _, err := Map(1, cells, Options{}); err == nil {
		t.Error("duplicate keys accepted")
	}
}

func TestEmptyAndDefaults(t *testing.T) {
	if res, err := Map[int64](1, nil, Options{}); err != nil || len(res) != 0 {
		t.Errorf("empty cell list: res=%v err=%v", res, err)
	}
	// Parallelism 0 → GOMAXPROCS; must still match serial.
	serial, _ := Map(9, walkCells(10), Options{Parallelism: 1})
	auto, err := Map(9, walkCells(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, auto) {
		t.Error("default parallelism diverged from serial")
	}
}
