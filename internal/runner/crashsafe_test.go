package runner

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestPanicBecomesStructuredError(t *testing.T) {
	cells := []Cell[int64]{
		{Key: "ok", Run: randomWalk},
		{Key: "boom", Run: func(int64) (int64, error) { panic("kaboom") }},
		{Key: "ok2", Run: randomWalk},
	}
	results, err := Map(1, cells, Options{Parallelism: 2})
	if err == nil {
		t.Fatal("panicking cell reported no error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a PanicError", err)
	}
	if pe.Key != "boom" || pe.Value != "kaboom" || !strings.Contains(pe.Stack, "crashsafe_test") {
		t.Errorf("PanicError = key %q value %v, stack captured=%v", pe.Key, pe.Value, pe.Stack != "")
	}
	// The other cells still completed: the sweep survived the panic.
	want, _ := randomWalk(Seed(1, "ok"))
	if results[0] != want {
		t.Error("healthy cell before the panic lost its result")
	}
	want, _ = randomWalk(Seed(1, "ok2"))
	if results[2] != want {
		t.Error("healthy cell after the panic lost its result")
	}
}

func TestCellDeadline(t *testing.T) {
	cells := []Cell[int]{
		{Key: "fast", Run: func(int64) (int, error) { return 7, nil }},
		{Key: "stuck", Run: func(int64) (int, error) {
			time.Sleep(10 * time.Second)
			return 0, nil
		}},
	}
	results, err := Map(1, cells, Options{Parallelism: 2, CellTimeout: 50 * time.Millisecond})
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("error %v is not a DeadlineError", err)
	}
	if de.Key != "stuck" || de.Timeout != 50*time.Millisecond {
		t.Errorf("DeadlineError = %+v", de)
	}
	if results[0] != 7 {
		t.Error("fast cell lost its result to the slow cell's deadline")
	}
}

// row mirrors the experiment drivers' JSON-round-trippable result shape.
type row struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

func rowCells(n int) []Cell[row] {
	cells := make([]Cell[row], n)
	for i := range cells {
		key := fmt.Sprintf("cell/%03d", i)
		cells[i] = Cell[row]{Key: key, Run: func(seed int64) (row, error) {
			w, _ := randomWalk(seed)
			return row{Key: key, Value: float64(w)}, nil
		}}
	}
	return cells
}

func TestJournalResumeByteIdentical(t *testing.T) {
	base := int64(42)
	clean, err := Map(base, rowCells(12), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	// First attempt: the process dies after the first five cells landed in
	// the journal — simulated by running only that prefix.
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Map(base, rowCells(12)[:5], Options{Parallelism: 1, Journal: j}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume with a fresh Journal value, as a re-invoked process would.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 5 {
		t.Fatalf("journal holds %d cells, want the 5 completed before the crash", j2.Len())
	}
	reran := 0
	cells := rowCells(12)
	for i := range cells {
		inner := cells[i].Run
		cells[i].Run = func(seed int64) (row, error) { reran++; return inner(seed) }
	}
	resumed, err := Map(base, cells, Options{Parallelism: 1, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if reran != 7 {
		t.Errorf("resume re-ran %d cells, want only the 7 not journaled", reran)
	}
	if !reflect.DeepEqual(clean, resumed) {
		t.Fatal("resumed sweep output differs from the uninterrupted run")
	}
}

func TestJournalSkipsTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Map(7, rowCells(3), Options{Parallelism: 1, Journal: j}); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-write: append half a line.
	if _, err := j.f.WriteString(`{"key":"cell/9`); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn journal failed to load: %v", err)
	}
	defer j2.Close()
	if j2.Len() != 3 {
		t.Errorf("journal holds %d cells after the torn line, want 3", j2.Len())
	}
}

func TestJournalRejectsBaseSeedMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := Map(1, rowCells(2), Options{Parallelism: 1, Journal: j}); err != nil {
		t.Fatal(err)
	}
	if _, err := Map(2, rowCells(2), Options{Parallelism: 1, Journal: j}); err == nil {
		t.Fatal("journal accepted a different base seed")
	}
}

func TestJournalParallelResumeMatchesSerial(t *testing.T) {
	base := int64(9)
	clean, err := Map(base, rowCells(32), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cells := rowCells(32)
	cells[20].Run = func(int64) (row, error) { return row{}, errors.New("killed") }
	_, _ = Map(base, cells, Options{Parallelism: 4, Journal: j})
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed, err := Map(base, rowCells(32), Options{Parallelism: 4, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, resumed) {
		t.Fatal("parallel resumed sweep diverged from the clean serial run")
	}
}
