// Package runner is the deterministic worker-pool engine behind every grid
// experiment: it fans independent (instance × heuristic × seed) cells out
// across GOMAXPROCS goroutines and reassembles the results in canonical
// cell order, so the output of a parallel run is byte-identical to a serial
// run of the same cells.
//
// Determinism rests on two rules:
//
//  1. A cell's PRNG seed is derived only from the experiment's base seed
//     and the cell's stable seed key — never from worker identity, queue
//     position, or completion order. Two cells with the same seed key get
//     the same seed regardless of how work was scheduled; this is how the
//     paired-comparison experiments give every heuristic the same random
//     workload draw.
//  2. Results land in a slice indexed by the cell's submission position,
//     and errors are reported for the lowest-indexed failing cell, so even
//     failure output is independent of scheduling.
//
// Cells must be self-contained: a cell's Run function owns everything it
// mutates (strategy state, PRNGs, stateful fault/dynamic models must be
// constructed inside Run, per cell) and may share only read-only data such
// as instances and graphs with other cells.
package runner

import (
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ocd/internal/telemetry"
)

// Cell is one independent unit of experiment work producing a T.
type Cell[T any] struct {
	// Key identifies the cell uniquely within one Map call; it names the
	// cell in error messages and anchors the canonical order (cells are
	// returned in submission order, whatever the workers did).
	Key string
	// SeedKey is the stable string the cell's PRNG seed is derived from.
	// Empty means Key. Distinct cells may deliberately share a SeedKey:
	// the grid experiments give every heuristic in the same (graph,
	// repeat) point the same seed so comparisons stay paired.
	SeedKey string
	// Run executes the cell with the derived seed.
	Run func(seed int64) (T, error)
}

// Options configures a Map call.
type Options struct {
	// Parallelism is the number of worker goroutines. Zero or negative
	// means GOMAXPROCS. Parallelism 1 is exact serial execution.
	Parallelism int
	// CellTimeout, when positive, bounds each cell's wall-clock run time;
	// a cell exceeding it fails with a DeadlineError instead of hanging
	// the sweep. The overrunning cell's goroutine is abandoned (cells have
	// no cancellation channel), so a timeout trades a leaked goroutine for
	// a live sweep — acceptable for runaway cells that are genuinely stuck.
	CellTimeout time.Duration
	// Journal, when non-nil, records each completed cell's result as one
	// JSONL line and skips cells the journal already holds, so a killed
	// sweep resumes from its completed cells with byte-identical output.
	// The cell result type must round-trip through encoding/json. Failed
	// cells are never journaled; they re-run on resume.
	Journal *Journal
	// Metrics, when non-nil, records per-cell wall-clock latency, worker
	// occupancy, executed-cell and journal-skip counts. Recording never
	// affects results: the deterministic counters are identical at every
	// parallelism, and a nil Metrics costs one nil check per cell.
	Metrics *telemetry.RunnerMetrics
}

// PanicError is a cell panic converted into a structured error: one
// panicking cell fails its own cell, not the whole sweep's process.
type PanicError struct {
	// Key names the panicking cell; Value is the recovered panic value.
	Key   string
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("cell %q panicked: %v\n%s", e.Key, e.Value, e.Stack)
}

// DeadlineError reports a cell that exceeded Options.CellTimeout.
type DeadlineError struct {
	Key     string
	Timeout time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("cell %q exceeded its %v deadline", e.Key, e.Timeout)
}

// seedPrime/seedOffset are the FNV-1a 64-bit parameters used for seed
// derivation.
const (
	seedOffset uint64 = 14695981039346656037
	seedPrime  uint64 = 1099511628211
)

// Seed derives a cell's PRNG seed from the experiment base seed and the
// cell's seed key: the FNV-1a hash of the key XORed with the base. The
// derivation is pure — equal inputs give equal seeds on every platform and
// schedule — and changing either the base seed or any byte of the key
// decorrelates the stream.
func Seed(base int64, key string) int64 {
	h := seedOffset
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= seedPrime
	}
	return base ^ int64(h)
}

// Map runs every cell and returns their results in submission order. Work
// is distributed across opts.Parallelism goroutines; scheduling cannot
// affect the output (see the package comment). If any cells fail, the
// error of the lowest-indexed failing cell is returned alongside the
// partial results. Duplicate cell keys are rejected before any cell runs.
func Map[T any](base int64, cells []Cell[T], opts Options) ([]T, error) {
	seen := make(map[string]struct{}, len(cells))
	for _, c := range cells {
		if _, dup := seen[c.Key]; dup {
			return nil, fmt.Errorf("runner: duplicate cell key %q", c.Key)
		}
		seen[c.Key] = struct{}{}
	}

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	results := make([]T, len(cells))
	errs := make([]error, len(cells))
	skip := make([]bool, len(cells))

	if opts.Journal != nil {
		if err := opts.Journal.bind(base); err != nil {
			return nil, err
		}
		for i, c := range cells {
			raw, ok := opts.Journal.lookup(c.Key)
			if !ok {
				continue
			}
			if json.Unmarshal(raw, &results[i]) == nil {
				skip[i] = true
				opts.Metrics.CellSkipped()
			} else {
				// A journal recorded by an older driver whose row shape no
				// longer matches: re-run the cell rather than resume wrong.
				var zero T
				results[i] = zero
			}
		}
	}

	exec := func(i int) {
		c := cells[i]
		start := opts.Metrics.CellStart()
		results[i], errs[i] = runCell(c, cellSeed(base, c), opts.CellTimeout)
		opts.Metrics.CellDone(start)
		if errs[i] == nil && opts.Journal != nil {
			errs[i] = opts.Journal.record(c.Key, results[i])
		}
	}

	if workers <= 1 {
		for i := range cells {
			if !skip[i] {
				exec(i)
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cells) {
						return
					}
					if !skip[i] {
						exec(i)
					}
				}
			}()
		}
		wg.Wait()
	}

	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("runner: cell %q: %w", cells[i].Key, err)
		}
	}
	return results, nil
}

func cellSeed[T any](base int64, c Cell[T]) int64 {
	key := c.SeedKey
	if key == "" {
		key = c.Key
	}
	return Seed(base, key)
}

// runCell executes one cell with panic isolation and the optional
// per-cell deadline.
func runCell[T any](c Cell[T], seed int64, timeout time.Duration) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	run := func() (out outcome) {
		defer func() {
			if r := recover(); r != nil {
				out.err = &PanicError{Key: c.Key, Value: r, Stack: string(debug.Stack())}
			}
		}()
		out.v, out.err = c.Run(seed)
		return
	}
	if timeout <= 0 {
		o := run()
		return o.v, o.err
	}
	ch := make(chan outcome, 1)
	go func() { ch <- run() }()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-timer.C:
		var zero T
		return zero, &DeadlineError{Key: c.Key, Timeout: timeout}
	}
}
