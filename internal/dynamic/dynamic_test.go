package dynamic

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func testInstance(t *testing.T, n, tokens int) *core.Instance {
	t.Helper()
	g, err := topology.Random(n, topology.DefaultCaps, 7)
	if err != nil {
		t.Fatal(err)
	}
	return workload.SingleFile(g, tokens)
}

func arc(from, to, c int) graph.Arc { return graph.Arc{From: from, To: to, Cap: c} }

func TestStaticModelIsIdentity(t *testing.T) {
	m := Static{}
	if got := m.Cap(3, arc(0, 1, 7)); got != 7 {
		t.Errorf("static cap = %d", got)
	}
}

func TestCrossTrafficBounds(t *testing.T) {
	m := CrossTraffic{MaxShare: 0.8, Seed: 1}
	varies := false
	for step := 0; step < 50; step++ {
		c := m.Cap(step, arc(0, 1, 10))
		if c < 1 || c > 10 {
			t.Fatalf("cross traffic cap %d outside [1,10]", c)
		}
		if c != 10 {
			varies = true
		}
		// Determinism.
		if c != m.Cap(step, arc(0, 1, 10)) {
			t.Fatal("cross traffic not deterministic")
		}
	}
	if !varies {
		t.Error("cross traffic never reduced capacity")
	}
}

func TestLinkFailureRate(t *testing.T) {
	m := LinkFailure{P: 0.5, Seed: 2}
	down := 0
	const trials = 400
	for step := 0; step < trials; step++ {
		if m.Cap(step, arc(0, 1, 3)) == 0 {
			down++
		}
	}
	if down < trials/4 || down > 3*trials/4 {
		t.Errorf("failure rate %d/%d far from 0.5", down, trials)
	}
}

func TestPeriodicDipsAndRecovers(t *testing.T) {
	m := Periodic{Period: 10, Floor: 0.2}
	peak := m.Cap(0, arc(0, 1, 10))
	trough := m.Cap(5, arc(0, 1, 10))
	if peak != 10 {
		t.Errorf("peak cap = %d, want 10", peak)
	}
	if trough >= peak || trough < 1 {
		t.Errorf("trough cap = %d", trough)
	}
	if m.Cap(10, arc(0, 1, 10)) != 10 {
		t.Error("capacity did not recover at the period boundary")
	}
}

func TestChurnRespectsAlwaysUp(t *testing.T) {
	m := Churn{P: 1.0, Seed: 3, AlwaysUp: []int{0, 1}}
	if m.Cap(4, arc(0, 1, 5)) != 5 {
		t.Error("always-up pair still churned")
	}
	if m.Cap(4, arc(0, 2, 5)) != 0 {
		t.Error("churning vertex kept its arc")
	}
}

func TestAdversaryCutsUsefulArcs(t *testing.T) {
	g, err := topology.Star(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 4)
	adv := NewAdversary(inst, 1)
	adv.Observe(0, inst.InitialPossession())
	// The useful frontier at step 0 is {0→1, 0→2}; with budget 1 the
	// adversary cuts exactly one of them, and never a useless arc.
	cut := 0
	for _, a := range [][2]int{{0, 1}, {0, 2}} {
		if adv.Cap(0, arc(a[0], a[1], 2)) == 0 {
			cut++
		}
	}
	if cut != 1 {
		t.Errorf("adversary cut %d frontier arcs, want exactly 1", cut)
	}
	if adv.Cap(0, arc(1, 0, 2)) != 2 {
		t.Error("adversary cut a useless arc")
	}
}

func TestAdversaryNeverCutsWholeFrontier(t *testing.T) {
	// Even with an absurd budget, at least half the useful frontier
	// survives, so progress is always possible.
	g, err := topology.Star(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 4)
	adv := NewAdversary(inst, 1000)
	adv.Observe(0, inst.InitialPossession())
	alive := 0
	for v := 1; v < 5; v++ {
		if adv.Cap(0, arc(0, v, 2)) > 0 {
			alive++
		}
	}
	if alive < 2 {
		t.Errorf("only %d frontier arcs survived an unbounded budget", alive)
	}
}

func TestRunUnderEachModel(t *testing.T) {
	inst := testInstance(t, 20, 12)
	models := []Model{
		Static{},
		CrossTraffic{MaxShare: 0.6, Seed: 5},
		LinkFailure{P: 0.25, Seed: 5},
		Periodic{Period: 6, Floor: 0.3},
		Churn{P: 0.15, Seed: 5, AlwaysUp: []int{0}},
	}
	for _, m := range models {
		t.Run(m.Name(), func(t *testing.T) {
			res, err := Run(inst, heuristics.Local, m, sim.Options{Seed: 9, IdlePatience: 25})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatal("run incomplete")
			}
			if err := Validate(inst, res.Schedule, m); err != nil {
				t.Fatalf("dynamic schedule invalid: %v", err)
			}
		})
	}
}

func TestRunStaticMatchesPlainEngine(t *testing.T) {
	inst := testInstance(t, 15, 8)
	plain, err := sim.Run(inst, heuristics.Local, sim.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(inst, heuristics.Local, Static{}, sim.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Steps != dyn.Steps || plain.Moves != dyn.Moves {
		t.Errorf("static dynamic run (%d,%d) differs from plain engine (%d,%d)",
			dyn.Steps, dyn.Moves, plain.Steps, plain.Moves)
	}
}

func TestRunDegradesUnderStress(t *testing.T) {
	inst := testInstance(t, 20, 16)
	base, err := Run(inst, heuristics.Local, Static{}, sim.Options{Seed: 6, IdlePatience: 25})
	if err != nil {
		t.Fatal(err)
	}
	stressed, err := Run(inst, heuristics.Local, LinkFailure{P: 0.5, Seed: 6},
		sim.Options{Seed: 6, IdlePatience: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !stressed.Completed {
		t.Fatal("stressed run incomplete")
	}
	if stressed.Steps < base.Steps {
		t.Errorf("heavy link failure sped distribution up (%d < %d)", stressed.Steps, base.Steps)
	}
}

func TestRunAdversaryStillCompletes(t *testing.T) {
	inst := testInstance(t, 15, 8)
	adv := NewAdversary(inst, 2)
	res, err := Run(inst, heuristics.Local, adv, sim.Options{Seed: 8, IdlePatience: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("adversarial run incomplete")
	}
	// Validation replays the adversary deterministically.
	fresh := NewAdversary(inst, 2)
	if err := Validate(inst, res.Schedule, fresh); err != nil {
		t.Fatalf("adversarial schedule failed replay validation: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	g, err := topology.Line(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 1)
	// A schedule that is legal statically but illegal when the link fails
	// every step.
	sched := &core.Schedule{Steps: []core.Step{
		{{From: 0, To: 1, Token: 0}},
		{{From: 1, To: 2, Token: 0}},
	}}
	if err := Validate(inst, sched, Static{}); err != nil {
		t.Fatalf("static validation failed: %v", err)
	}
	if err := Validate(inst, sched, LinkFailure{P: 1.0, Seed: 1}); err == nil {
		t.Error("validation accepted moves over failed links")
	}
}

// capTrace renders a model's effective capacities over a step window as a
// string, so replay comparisons are byte-exact.
func capTrace(m Model, steps int, arcs []graph.Arc) string {
	var b strings.Builder
	for step := 0; step < steps; step++ {
		for _, a := range arcs {
			fmt.Fprintf(&b, "%d,", m.Cap(step, a))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestModelsReplayByteIdentical is the determinism property every model
// advertises: two freshly-built models with the same parameters must yield
// byte-identical capacity traces, or post-hoc Validate replay would lie.
func TestModelsReplayByteIdentical(t *testing.T) {
	inst := testInstance(t, 24, 12)
	arcs := inst.G.Arcs()
	build := []func() Model{
		func() Model { return Static{} },
		func() Model { return CrossTraffic{MaxShare: 0.7, Seed: 5} },
		func() Model { return LinkFailure{P: 0.3, Seed: 5} },
		func() Model { return Periodic{Period: 7, Floor: 0.2} },
		func() Model { return Churn{P: 0.25, Seed: 5, AlwaysUp: []int{0}} },
	}
	for _, mk := range build {
		a, b := mk(), mk()
		ta, tb := capTrace(a, 40, arcs), capTrace(b, 40, arcs)
		if ta != tb {
			t.Errorf("%s: fresh replay diverged", a.Name())
		}
		if ta != capTrace(a, 40, arcs) {
			t.Errorf("%s: second query pass diverged", a.Name())
		}
	}
}

// TestAdversaryReplayByteIdentical covers the possession-aware model: fed
// the same observation sequence, two adversaries cut the same arcs.
func TestAdversaryReplayByteIdentical(t *testing.T) {
	inst := testInstance(t, 16, 8)
	arcs := inst.G.Arcs()
	a := NewAdversary(inst, 4)
	b := NewAdversary(inst, 4)
	possess := inst.InitialPossession()
	for step := 0; step < 10; step++ {
		a.Observe(step, possess)
		b.Observe(step, possess)
		for _, arc := range arcs {
			if a.Cap(step, arc) != b.Cap(step, arc) {
				t.Fatalf("step %d arc %v: adversary replay diverged", step, arc)
			}
		}
		// Advance possession a little so observations vary across steps.
		if step < len(possess)-1 {
			possess[step+1].UnionWith(inst.Have[0])
		}
	}
}

// TestLossStreamDecoupledInDynamicRun mirrors the sim regression: a
// never-dropping loss rate must not change the dynamic engine's schedule.
func TestLossStreamDecoupledInDynamicRun(t *testing.T) {
	inst := testInstance(t, 20, 10)
	model := CrossTraffic{MaxShare: 0.5, Seed: 3}
	run := func(loss float64) *Result {
		res, err := Run(inst, heuristics.Local, model, sim.Options{
			Seed: 11, LossRate: loss, IdlePatience: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(0)
	lossy := run(1e-12)
	if lossy.Lost != 0 {
		t.Fatalf("wanted a drop-free lossy run, lost %d", lossy.Lost)
	}
	if !reflect.DeepEqual(plain.Schedule, lossy.Schedule) {
		t.Error("enabling LossRate changed the dynamic run's schedule for the same seed")
	}
}
