// Package dynamic implements the paper's §6 "Changing network conditions"
// and "Arrivals and departures" open problems: arc capacities vary between
// turns under pluggable models (cross traffic, link failures, periodic
// load, node churn, and a possession-aware adversary), and the engine
// enforces the per-step effective capacities.
//
// All models are deterministic functions of (seed, step, arc), so a
// dynamic run can be validated after the fact by replaying the model.
package dynamic

import (
	"fmt"
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
)

// Model yields the effective capacity of an arc at a timestep. Returning 0
// removes the arc for that step.
type Model interface {
	Name() string
	Cap(step int, a graph.Arc) int
}

// PossessionAware is implemented by models (e.g. the adversary) that react
// to the current distribution state. Observe is called once per timestep
// before any Cap query for that step.
type PossessionAware interface {
	Observe(step int, possess []tokenset.Set)
}

// Static leaves every capacity unchanged — the baseline model.
type Static struct{}

// Name implements Model.
func (Static) Name() string { return "static" }

// Cap implements Model.
func (Static) Cap(_ int, a graph.Arc) int { return a.Cap }

// hash64 mixes (seed, step, from, to) into a uniform-ish 64-bit value, the
// deterministic randomness source shared by the stochastic models.
func hash64(seed int64, step, from, to int) uint64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for _, x := range [3]int{step, from, to} {
		h ^= uint64(x) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xff51afd7ed558ccd
	}
	h ^= h >> 33
	return h
}

// frac converts a hash to [0,1).
func frac(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// CrossTraffic reduces each arc's capacity each step by a random share of
// competing traffic, never below 1 (the link stays usable, just congested).
type CrossTraffic struct {
	// MaxShare is the largest fraction of capacity cross traffic may
	// consume, in [0,1].
	MaxShare float64
	// Seed makes the model deterministic.
	Seed int64
}

// Name implements Model.
func (m CrossTraffic) Name() string { return fmt.Sprintf("cross-traffic(%.2f)", m.MaxShare) }

// Cap implements Model.
func (m CrossTraffic) Cap(step int, a graph.Arc) int {
	share := frac(hash64(m.Seed, step, a.From, a.To)) * m.MaxShare
	eff := int(float64(a.Cap) * (1 - share))
	if eff < 1 {
		eff = 1
	}
	return eff
}

// LinkFailure removes each arc independently with probability P each step
// (dynamic channel conditions / denial-of-service in §6's list).
type LinkFailure struct {
	P    float64
	Seed int64
}

// Name implements Model.
func (m LinkFailure) Name() string { return fmt.Sprintf("link-failure(%.2f)", m.P) }

// Cap implements Model.
func (m LinkFailure) Cap(step int, a graph.Arc) int {
	if frac(hash64(m.Seed, step, a.From, a.To)) < m.P {
		return 0
	}
	return a.Cap
}

// Periodic models diurnal load: capacity dips to Floor×cap at the trough
// of each period and recovers linearly.
type Periodic struct {
	Period int
	// Floor is the minimum remaining fraction of capacity, in (0,1].
	Floor float64
}

// Name implements Model.
func (m Periodic) Name() string { return fmt.Sprintf("periodic(%d)", m.Period) }

// Cap implements Model.
func (m Periodic) Cap(step int, a graph.Arc) int {
	if m.Period <= 1 {
		return a.Cap
	}
	pos := step % m.Period
	half := m.Period / 2
	var depth float64 // 0 at peak, 1 at trough
	if pos <= half {
		depth = float64(pos) / float64(half)
	} else {
		depth = float64(m.Period-pos) / float64(m.Period-half)
	}
	factor := 1 - depth*(1-m.Floor)
	eff := int(float64(a.Cap) * factor)
	if eff < 1 {
		eff = 1
	}
	return eff
}

// Churn models node arrivals and departures: each vertex is down with
// probability P in any step (capacities to and from it drop to zero, §6's
// framing), except vertices listed in AlwaysUp — typically the sources —
// which never leave.
type Churn struct {
	P        float64
	Seed     int64
	AlwaysUp []int
}

// Name implements Model.
func (m Churn) Name() string { return fmt.Sprintf("churn(%.2f)", m.P) }

func (m Churn) down(step, v int) bool {
	for _, u := range m.AlwaysUp {
		if u == v {
			return false
		}
	}
	return frac(hash64(m.Seed, step, v, -1)) < m.P
}

// Cap implements Model.
func (m Churn) Cap(step int, a graph.Arc) int {
	if m.down(step, a.From) || m.down(step, a.To) {
		return 0
	}
	return a.Cap
}

// Adversary cuts the arcs it predicts are most useful each step: the arcs
// that could carry the most new tokens. It is the §6 "adversarial network
// conditions" scenario. The adversary is budgeted at K arcs per step but
// never cuts more than half of the useful frontier — an unbounded
// omniscient adversary can trivially cut every useful arc and deadlock any
// algorithm, which demonstrates nothing.
type Adversary struct {
	K    int
	inst *core.Instance
	cut  map[[2]int]bool
}

// NewAdversary builds an adversary cutting k arcs per step against inst.
func NewAdversary(inst *core.Instance, k int) *Adversary {
	return &Adversary{K: k, inst: inst, cut: make(map[[2]int]bool)}
}

// Name implements Model.
func (a *Adversary) Name() string { return fmt.Sprintf("adversary(%d)", a.K) }

// Observe implements PossessionAware: pick the K arcs with the highest
// immediate value = |useful tokens| the arc could carry this step.
func (a *Adversary) Observe(_ int, possess []tokenset.Set) {
	type scored struct {
		key   [2]int
		value int
	}
	var best []scored
	for _, arc := range a.inst.G.Arcs() {
		v := possess[arc.From].DifferenceCount(possess[arc.To])
		if v == 0 {
			continue
		}
		best = append(best, scored{key: [2]int{arc.From, arc.To}, value: v})
	}
	// Partial selection of the top K.
	for i := 0; i < len(best); i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].value > best[i].value {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	for k := range a.cut {
		delete(a.cut, k)
	}
	budget := a.K
	if half := len(best) / 2; budget > half {
		budget = half
	}
	for i := 0; i < budget; i++ {
		a.cut[best[i].key] = true
	}
}

// Cap implements Model.
func (a *Adversary) Cap(_ int, arc graph.Arc) int {
	if a.cut[[2]int{arc.From, arc.To}] {
		return 0
	}
	return arc.Cap
}

// Result augments the engine result with the model used.
type Result struct {
	*sim.Result
	Model string
}

// Run executes a strategy under a capacity model. Each timestep the
// strategy plans against the step's effective graph, and the kernel
// enforces the effective capacities. MaxSteps in opts bounds the run
// (0 = 4× the Theorem 1 horizon — dynamic conditions legitimately slow
// distribution down).
func Run(inst *core.Instance, factory sim.Factory, model Model, opts sim.Options) (*Result, error) {
	if err := inst.Check(); err != nil {
		return nil, err
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 4*inst.TheoremOneHorizon() + opts.IdlePatience
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	strat, err := factory(inst, rng)
	if err != nil {
		return nil, fmt.Errorf("dynamic: create strategy: %w", err)
	}
	done := opts.Done
	if done == nil {
		done = core.Done
	}

	st := &sim.State{Inst: inst, Possess: inst.InitialPossession(), Rand: rng}
	res := &Result{
		Result: &sim.Result{Strategy: strat.Name(), Schedule: &core.Schedule{}},
		Model:  model.Name(),
	}
	eng := sim.Engine{
		MaxSteps:     maxSteps,
		IdlePatience: opts.IdlePatience,
		Done:         done,
		Capacity:     newCapacityModel(inst, model),
		Loss:         sim.RateLossPolicy(opts.LossRate, opts.Seed),
		Observer:     opts.Observer,
	}
	reason, stepAt := eng.Run(inst, strat, st, res.Result)
	if reason == sim.StopStalled {
		return res, fmt.Errorf("%w: step %d under %s", sim.ErrStalled, stepAt, model.Name())
	}
	res.Finalize(inst, st.Possess, done, opts.Prune)
	return res, nil
}

// capacityModel adapts a Model (plus its optional PossessionAware side) to
// the kernel's CapacityModel: each step it materializes the effective
// capacities into the dense arc-ID slice and builds the instance view the
// strategy plans against. Arcs are added in the base graph's sorted
// (From, To) order so the view's adjacency and arc-ID assignment are
// deterministic and identical to the pre-kernel engine's.
type capacityModel struct {
	inst  *core.Instance
	model Model
	aware PossessionAware
	arcs  []graph.Arc // base arcs, sorted by (From, To), cached per run
	ids   []int       // base arc ID per arcs[i]
}

func newCapacityModel(inst *core.Instance, model Model) *capacityModel {
	arcs := inst.G.Arcs()
	ids := make([]int, len(arcs))
	for i, a := range arcs {
		ids[i] = inst.G.ArcID(a.From, a.To)
	}
	aware, _ := model.(PossessionAware)
	return &capacityModel{inst: inst, model: model, aware: aware, arcs: arcs, ids: ids}
}

// StepView implements sim.CapacityModel.
func (c *capacityModel) StepView(step int, st *sim.State, eff []int) *core.Instance {
	if c.aware != nil {
		c.aware.Observe(step, st.Possess)
	}
	g := graph.New(c.inst.N())
	for i, a := range c.arcs {
		cap := c.model.Cap(step, a)
		if cap < 0 {
			cap = 0
		}
		eff[c.ids[i]] = cap
		if cap > 0 {
			_ = g.AddArc(a.From, a.To, cap) // arcs are valid by construction
		}
	}
	return &core.Instance{G: g, NumTokens: c.inst.NumTokens, Have: c.inst.Have, Want: c.inst.Want}
}

// Validate replays a dynamic schedule against the instance and model,
// checking possession and the per-step effective capacities, and that the
// schedule satisfies every want.
func Validate(inst *core.Instance, sched *core.Schedule, model Model) error {
	possess := inst.InitialPossession()
	aware, _ := model.(PossessionAware)
	for i, st := range sched.Steps {
		if aware != nil {
			aware.Observe(i, possess)
		}
		used := make(map[[2]int]int)
		for _, mv := range st {
			base := inst.G.Cap(mv.From, mv.To)
			if base == 0 {
				return fmt.Errorf("dynamic: step %d move %v: arc does not exist", i, mv)
			}
			capacity := model.Cap(i, graph.Arc{From: mv.From, To: mv.To, Cap: base})
			used[[2]int{mv.From, mv.To}]++
			if used[[2]int{mv.From, mv.To}] > capacity {
				return fmt.Errorf("dynamic: step %d move %v: effective capacity %d exceeded", i, mv, capacity)
			}
			if !possess[mv.From].Has(mv.Token) {
				return fmt.Errorf("dynamic: step %d move %v: sender lacks token", i, mv)
			}
		}
		for _, mv := range st {
			possess[mv.To].Add(mv.Token)
		}
	}
	if !core.Done(inst, possess) {
		return core.ErrUnsuccessful
	}
	return nil
}
