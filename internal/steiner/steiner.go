// Package steiner implements the Steiner-tree machinery §3.3 relates to
// EOCD: distributing one token with minimum bandwidth is exactly a
// generalized Steiner tree from the token's sources to its wanters over
// unit-cost arcs (multiple sources are handled with the paper's 0-cost
// merge trick, realized here as a virtual root).
//
// The package provides the classical metric-closure 2-approximation and a
// serial per-token schedule builder that realizes §3.3's observation that
// optimal bandwidth is achievable by distributing each token serially over
// its tree (at the price of many timesteps).
package steiner

import (
	"errors"
	"fmt"
	"sort"

	"ocd/internal/core"
	"ocd/internal/graph"
)

// ErrUnreachable indicates some terminal cannot be reached from any source.
var ErrUnreachable = errors.New("steiner: terminal unreachable from sources")

// Tree is a set of arcs forming an out-tree (or forest rooted at the
// sources) covering all terminals.
type Tree struct {
	Arcs []graph.Arc
}

// Cost returns the number of arcs (unit-cost bandwidth of one token).
func (t *Tree) Cost() int { return len(t.Arcs) }

// Approximate computes a Steiner tree connecting sources to every terminal
// using the metric-closure 2-approximation: build shortest-path distances
// from the (virtually merged) sources and between terminals, take a minimum
// spanning tree of the metric closure over {root} ∪ terminals, and expand
// its edges into shortest paths, de-duplicating shared arcs.
func Approximate(g *graph.Graph, sources, terminals []int) (*Tree, error) {
	if len(sources) == 0 {
		return nil, errors.New("steiner: no sources")
	}
	// Hop distances from the merged source set.
	srcDist, srcPrev := multiSourceBFS(g, sources)
	for _, t := range terminals {
		if srcDist[t] < 0 {
			return nil, fmt.Errorf("%w: terminal %d", ErrUnreachable, t)
		}
	}

	// Nodes of the metric closure: virtual root (−1) plus terminals.
	type edge struct {
		u, v int // closure endpoints; −1 is the root
		w    int
	}
	var edges []edge
	for _, t := range terminals {
		edges = append(edges, edge{u: -1, v: t, w: srcDist[t]})
	}
	termDist := make(map[int][]int, len(terminals))
	termPrev := make(map[int][]int, len(terminals))
	for _, t := range terminals {
		d, prev := singleSourceBFS(g, t)
		termDist[t] = d
		termPrev[t] = prev
	}
	for i, a := range terminals {
		for _, b := range terminals[i+1:] {
			if d := termDist[a][b]; d >= 0 {
				edges = append(edges, edge{u: a, v: b, w: d})
			}
			if d := termDist[b][a]; d >= 0 {
				edges = append(edges, edge{u: b, v: a, w: d})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })

	// Prim-like growth from the root over the closure, directed outward.
	inTree := map[int]bool{-1: true}
	arcSet := make(map[[2]int]bool)
	for len(inTree) < len(terminals)+1 {
		grown := false
		for _, e := range edges {
			if inTree[e.u] && !inTree[e.v] {
				// Expand e into graph arcs along the shortest path.
				var path [][2]int
				if e.u == -1 {
					path = walk(srcPrev, e.v)
				} else {
					path = walkFrom(termPrev[e.u], e.v)
				}
				for _, arc := range path {
					arcSet[arc] = true
				}
				inTree[e.v] = true
				grown = true
				break
			}
		}
		if !grown {
			return nil, fmt.Errorf("%w: closure disconnected", ErrUnreachable)
		}
	}

	arcs := make([]graph.Arc, 0, len(arcSet))
	for arc := range arcSet {
		arcs = append(arcs, graph.Arc{From: arc[0], To: arc[1], Cap: g.Cap(arc[0], arc[1])})
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		return arcs[i].To < arcs[j].To
	})
	return &Tree{Arcs: arcs}, nil
}

// multiSourceBFS returns distances and BFS predecessors from a merged
// source set, following arc direction.
func multiSourceBFS(g *graph.Graph, sources []int) (dist, prev []int) {
	n := g.N()
	dist = make([]int, n)
	prev = make([]int, n)
	for i := range dist {
		dist[i] = -1
		prev[i] = -1
	}
	var queue []int
	for _, s := range sources {
		if dist[s] == -1 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.Out(u) {
			if dist[a.To] == -1 {
				dist[a.To] = dist[u] + 1
				prev[a.To] = u
				queue = append(queue, a.To)
			}
		}
	}
	return dist, prev
}

func singleSourceBFS(g *graph.Graph, src int) (dist, prev []int) {
	return multiSourceBFS(g, []int{src})
}

// walk reconstructs the arc list from a BFS predecessor array down to v.
func walk(prev []int, v int) [][2]int {
	var arcs [][2]int
	for prev[v] != -1 {
		arcs = append(arcs, [2]int{prev[v], v})
		v = prev[v]
	}
	return arcs
}

func walkFrom(prev []int, v int) [][2]int { return walk(prev, v) }

// SerialSchedule realizes §3.3: distribute each token serially over its
// (approximate) Steiner tree — bandwidth near-optimal, makespan awful. The
// returned schedule moves one token along one tree level per timestep,
// token after token.
func SerialSchedule(inst *core.Instance) (*core.Schedule, error) {
	sched := &core.Schedule{}
	for t := 0; t < inst.NumTokens; t++ {
		var sources, terminals []int
		for v := 0; v < inst.N(); v++ {
			if inst.Have[v].Has(t) {
				sources = append(sources, v)
			}
			if inst.Want[v].Has(t) && !inst.Have[v].Has(t) {
				terminals = append(terminals, v)
			}
		}
		if len(terminals) == 0 {
			continue
		}
		tree, err := Approximate(inst.G, sources, terminals)
		if err != nil {
			return nil, fmt.Errorf("token %d: %w", t, err)
		}
		appendTreeSchedule(sched, inst, tree, t, sources)
	}
	return sched, nil
}

// appendTreeSchedule appends the level-by-level distribution of token t
// over the tree to the schedule.
func appendTreeSchedule(sched *core.Schedule, inst *core.Instance, tree *Tree, t int, sources []int) {
	has := make([]bool, inst.N())
	for _, s := range sources {
		has[s] = true
	}
	remaining := append([]graph.Arc(nil), tree.Arcs...)
	for len(remaining) > 0 {
		var step core.Step
		var rest []graph.Arc
		for _, a := range remaining {
			if has[a.From] && !has[a.To] {
				step = append(step, core.Move{From: a.From, To: a.To, Token: t})
			} else {
				rest = append(rest, a)
			}
		}
		if len(step) == 0 {
			// Arcs whose heads are already covered (shared-path overlap) or
			// unreachable leftovers; drop them.
			break
		}
		for _, mv := range step {
			has[mv.To] = true
		}
		sched.Append(step)
		remaining = rest
	}
}

// TokenBandwidthLB sums, over all tokens, the merged-source BFS distance
// based lower bound on tree cost: a Steiner tree for k terminals costs at
// least max(farthest terminal distance, k). This is a quick certified
// lower bound on EOCD used to sanity-check the approximation.
func TokenBandwidthLB(inst *core.Instance) int {
	total := 0
	for t := 0; t < inst.NumTokens; t++ {
		var sources []int
		var terminals []int
		for v := 0; v < inst.N(); v++ {
			if inst.Have[v].Has(t) {
				sources = append(sources, v)
			}
			if inst.Want[v].Has(t) && !inst.Have[v].Has(t) {
				terminals = append(terminals, v)
			}
		}
		if len(terminals) == 0 || len(sources) == 0 {
			continue
		}
		dist, _ := multiSourceBFS(inst.G, sources)
		far := 0
		for _, term := range terminals {
			if dist[term] > far {
				far = dist[term]
			}
		}
		lb := len(terminals)
		if far > lb {
			lb = far
		}
		total += lb
	}
	return total
}
