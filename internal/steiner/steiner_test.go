package steiner

import (
	"errors"
	"math/rand"
	"testing"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func TestApproximateLine(t *testing.T) {
	g, err := topology.Line(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Approximate(g, []int{0}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Cost(); got != 4 {
		t.Errorf("path tree cost = %d, want 4", got)
	}
}

func TestApproximateStar(t *testing.T) {
	g, err := topology.Star(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Approximate(g, []int{0}, []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Cost(); got != 5 {
		t.Errorf("star tree cost = %d, want 5", got)
	}
}

func TestApproximateSharedPath(t *testing.T) {
	// 0→1→2 with terminals {1,2}: the shared prefix must not be counted
	// twice — optimal tree is the whole path, cost 2.
	g, err := topology.Line(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Approximate(g, []int{0}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Cost(); got != 2 {
		t.Errorf("shared-path cost = %d, want 2", got)
	}
}

func TestApproximateMultiSource(t *testing.T) {
	// Terminals adjacent to different sources: each side serves its own.
	g, err := topology.Line(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Approximate(g, []int{0, 3}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Cost(); got != 2 {
		t.Errorf("multi-source cost = %d, want 2", got)
	}
}

func TestApproximateUnreachable(t *testing.T) {
	g := graph.New(3)
	if err := g.AddArc(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Approximate(g, []int{0}, []int{2}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("want ErrUnreachable, got %v", err)
	}
	if _, err := Approximate(g, nil, []int{1}); err == nil {
		t.Error("no sources accepted")
	}
}

func TestApproximateCoversTerminals(t *testing.T) {
	// Property on random graphs: every terminal is reachable from some
	// source using only tree arcs.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g, err := topology.Random(15+rng.Intn(10), topology.DefaultCaps, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		var terminals []int
		for v := 1; v < g.N(); v += 1 + rng.Intn(3) {
			terminals = append(terminals, v)
		}
		tree, err := Approximate(g, []int{0}, terminals)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Rebuild reachability over tree arcs only.
		sub := graph.New(g.N())
		for _, a := range tree.Arcs {
			if err := sub.AddArc(a.From, a.To, 1); err != nil {
				t.Fatal(err)
			}
		}
		dist := sub.BFSFrom(0)
		for _, term := range terminals {
			if dist[term] < 0 {
				t.Errorf("trial %d: terminal %d not covered by tree", trial, term)
			}
		}
	}
}

func TestSerialScheduleValidAndCheap(t *testing.T) {
	g, err := topology.Random(12, topology.DefaultCaps, 5)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 4)
	sched, err := SerialSchedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(inst, sched); err != nil {
		t.Fatalf("serial schedule invalid: %v", err)
	}
	// §3.3: bandwidth is near-optimal. The 2-approximation guarantee means
	// pruned moves ≤ 2 × the per-token lower bound.
	pruned := core.Prune(inst, sched)
	if lb := TokenBandwidthLB(inst); pruned.Moves() > 2*lb {
		t.Errorf("serial schedule pruned bandwidth %d exceeds 2×LB %d", pruned.Moves(), 2*lb)
	}
}

func TestTokenBandwidthLB(t *testing.T) {
	// Line of 4, one token at 0 wanted by 3: the farthest distance (3)
	// dominates the terminal count (1).
	g, err := topology.Line(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst := core.NewInstance(g, 1)
	inst.Have[0].Add(0)
	inst.Want[3].Add(0)
	if got := TokenBandwidthLB(inst); got != 3 {
		t.Errorf("LB = %d, want 3", got)
	}
	// Star: 5 terminals at distance 1 → terminal count dominates.
	s, err := topology.Star(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst2 := workload.SingleFile(s, 1)
	if got := TokenBandwidthLB(inst2); got != 5 {
		t.Errorf("star LB = %d, want 5", got)
	}
}
