package ilp_test

import (
	"testing"

	"ocd/internal/core"
	"ocd/internal/exact"
	"ocd/internal/experiments"
	"ocd/internal/ilp"
)

// TestParityWithExactSolvers is the ILP↔exact cross-check on a seeded
// grid of small instances (this package is in the CI -race set). For each
// instance both optimum notions must agree between the two independent
// solvers: the minimum makespan (time-indexed program's binary search vs
// schedule-space iterative deepening) and the minimum bandwidth within a
// fixed horizon (branch-and-bound over the LP relaxation vs
// branch-and-bound over move subsets). Every extracted schedule must
// validate against the instance.
func TestParityWithExactSolvers(t *testing.T) {
	grid := []struct {
		seed        int64
		count, n, m int
	}{
		{seed: 3, count: 3, n: 4, m: 2},
		{seed: 5, count: 3, n: 5, m: 2},
		{seed: 9, count: 2, n: 6, m: 3},
	}
	for _, g := range grid {
		insts := experiments.RandomTinyInstances(g.seed, g.count, g.n, g.m)
		for i, inst := range insts {
			fast, err := exact.SolveFOCD(inst, exact.Options{})
			if err != nil {
				t.Fatalf("seed %d inst %d: exact focd: %v", g.seed, i, err)
			}
			ipSched, ipTau, err := ilp.SolveFOCD(inst, ilp.Options{})
			if err != nil {
				t.Fatalf("seed %d inst %d: ilp focd: %v", g.seed, i, err)
			}
			if ipTau != fast.Makespan() {
				t.Errorf("seed %d inst %d: ILP makespan %d, exact makespan %d",
					g.seed, i, ipTau, fast.Makespan())
			}
			if err := core.Validate(inst, ipSched); err != nil {
				t.Errorf("seed %d inst %d: ILP focd schedule invalid: %v", g.seed, i, err)
			}

			tau := fast.Makespan() + 1 // one slack step lets cheaper plans surface
			bnb, err := exact.SolveEOCD(inst, tau, exact.Options{})
			if err != nil {
				t.Fatalf("seed %d inst %d: exact eocd: %v", g.seed, i, err)
			}
			prog, err := ilp.Build(inst, tau)
			if err != nil {
				t.Fatalf("seed %d inst %d: build: %v", g.seed, i, err)
			}
			sched, obj, err := prog.Solve(ilp.Options{})
			if err != nil {
				t.Fatalf("seed %d inst %d: ilp solve: %v", g.seed, i, err)
			}
			if obj != bnb.Moves() {
				t.Errorf("seed %d inst %d: ILP bandwidth %d, exact bandwidth %d",
					g.seed, i, obj, bnb.Moves())
			}
			if err := core.Validate(inst, sched); err != nil {
				t.Errorf("seed %d inst %d: ILP schedule invalid: %v", g.seed, i, err)
			}
			if sched.Moves() != obj {
				t.Errorf("seed %d inst %d: schedule has %d moves but objective is %d",
					g.seed, i, sched.Moves(), obj)
			}
		}
	}
}
