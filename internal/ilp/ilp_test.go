package ilp

import (
	"errors"
	"math/rand"
	"testing"

	"ocd/internal/core"
	"ocd/internal/exact"
	"ocd/internal/graph"
	"ocd/internal/workload"
)

func lineInstance(t *testing.T, n, m, c int) *core.Instance {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddArc(i, i+1, c); err != nil {
			t.Fatal(err)
		}
	}
	inst := core.NewInstance(g, m)
	inst.Have[0].AddRange(0, m)
	inst.Want[n-1].AddRange(0, m)
	return inst
}

func TestBuildDimensions(t *testing.T) {
	inst := lineInstance(t, 3, 2, 1)
	prog, err := Build(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Real arcs: 2 arcs × 2 tokens × 2 steps = 8.
	// Self arcs: 3 vertices × 2 tokens × 3 steps = 18.
	if got := prog.NumVariables(); got != 26 {
		t.Errorf("variables = %d, want 26", got)
	}
	if prog.NumConstraints() == 0 {
		t.Error("no constraints built")
	}
}

func TestBuildErrors(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	if _, err := Build(inst, 0); err == nil {
		t.Error("tau=0 accepted")
	}
	bad := lineInstance(t, 3, 1, 1)
	bad.Have[0].Clear()
	if _, err := Build(bad, 2); err == nil {
		t.Error("inconsistent instance accepted")
	}
}

func TestSolveLineExact(t *testing.T) {
	// One token over 2 hops: 2 moves at tau=2.
	inst := lineInstance(t, 3, 1, 1)
	prog, err := Build(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched, obj, err := prog.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if obj != 2 {
		t.Errorf("objective = %d, want 2", obj)
	}
	if err := core.Validate(inst, sched); err != nil {
		t.Errorf("decoded schedule invalid: %v", err)
	}
}

func TestSolveInfeasibleHorizon(t *testing.T) {
	inst := lineInstance(t, 4, 1, 1) // needs 3 steps
	prog, err := Build(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := prog.Solve(Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestSolveFigure1BothHorizons(t *testing.T) {
	inst := workload.Figure1()
	for _, tc := range []struct{ tau, wantBW int }{{2, 6}, {3, 4}, {4, 4}} {
		prog, err := Build(inst, tc.tau)
		if err != nil {
			t.Fatal(err)
		}
		sched, obj, err := prog.Solve(Options{})
		if err != nil {
			t.Fatalf("tau=%d: %v", tc.tau, err)
		}
		if obj != tc.wantBW {
			t.Errorf("tau=%d: objective = %d, want %d", tc.tau, obj, tc.wantBW)
		}
		if err := core.Validate(inst, sched); err != nil {
			t.Errorf("tau=%d: schedule invalid: %v", tc.tau, err)
		}
	}
}

func TestSolveAgreesWithBranchAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(2)
		m := 1 + rng.Intn(2)
		g := graph.New(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			if err := g.AddEdge(perm[i], perm[rng.Intn(i)], 1); err != nil {
				t.Fatal(err)
			}
		}
		inst := core.NewInstance(g, m)
		for tok := 0; tok < m; tok++ {
			inst.Have[rng.Intn(n)].Add(tok)
			inst.Want[rng.Intn(n)].Add(tok)
		}
		fast, err := exact.SolveFOCD(inst, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d focd: %v", trial, err)
		}
		tau := fast.Makespan() + 1
		if tau < 2 {
			tau = 2
		}
		bnb, err := exact.SolveEOCD(inst, tau, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d eocd: %v", trial, err)
		}
		prog, err := Build(inst, tau)
		if err != nil {
			t.Fatal(err)
		}
		_, obj, err := prog.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d ilp: %v", trial, err)
		}
		if obj != bnb.Moves() {
			t.Errorf("trial %d: ILP %d != branch-and-bound %d", trial, obj, bnb.Moves())
		}
	}
}

func TestSolveBudget(t *testing.T) {
	inst := workload.Figure1()
	prog, err := Build(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Budget 0 means default; budget must be enforced when tiny. The root
	// relaxation may already be integral, so allow either success or the
	// budget error — but never a wrong answer.
	sched, obj, err := prog.Solve(Options{MaxNodes: 1})
	if err != nil {
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	if obj != 4 {
		t.Errorf("objective = %d, want 4", obj)
	}
	if err := core.Validate(inst, sched); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}
