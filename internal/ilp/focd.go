package ilp

import (
	"errors"
	"fmt"

	"ocd/internal/core"
)

// SolveFOCD finds the minimum makespan via the time-indexed program:
// the Decisional FOCD problem (§3.2) asks whether a schedule of length τ*
// exists, which is exactly the feasibility of the τ*-horizon program.
// Starting from the admissible §5.1 lower bound, the horizon grows
// geometrically until feasible and the answer is then pinned by binary
// search — O(log τ*) ILP feasibility probes in total.
//
// It returns a schedule of optimal length together with the optimum. The
// schedule additionally has minimum bandwidth among schedules of that
// length (the program's objective), which SolveFOCD reports as well.
func SolveFOCD(inst *core.Instance, opts Options) (*core.Schedule, int, error) {
	if err := inst.Check(); err != nil {
		return nil, 0, err
	}
	if core.Done(inst, inst.InitialPossession()) {
		return &core.Schedule{}, 0, nil
	}
	if !inst.Satisfiable() {
		return nil, 0, fmt.Errorf("ilp: %w", errUnsat)
	}
	lo := core.MakespanLowerBound(inst, nil)
	if lo < 1 {
		lo = 1
	}
	horizon := inst.TheoremOneHorizon()

	// Geometric search for a feasible horizon.
	hi := lo
	var hiSched *core.Schedule
	for {
		sched, _, err := solveAt(inst, hi, opts)
		if err == nil {
			hiSched = sched
			break
		}
		if !errors.Is(err, ErrInfeasible) {
			return nil, 0, err
		}
		if hi >= horizon {
			return nil, 0, fmt.Errorf("ilp: infeasible within the Theorem 1 horizon %d", horizon)
		}
		lo = hi + 1
		hi *= 2
		if hi > horizon {
			hi = horizon
		}
	}
	// Binary search for the smallest feasible τ in [lo, hi].
	for lo < hi {
		mid := (lo + hi) / 2
		sched, _, err := solveAt(inst, mid, opts)
		switch {
		case err == nil:
			hi = mid
			hiSched = sched
		case errors.Is(err, ErrInfeasible):
			lo = mid + 1
		default:
			return nil, 0, err
		}
	}
	return hiSched, hi, nil
}

var errUnsat = errors.New("instance unsatisfiable")

func solveAt(inst *core.Instance, tau int, opts Options) (*core.Schedule, int, error) {
	prog, err := Build(inst, tau)
	if err != nil {
		return nil, 0, err
	}
	return prog.Solve(opts)
}
