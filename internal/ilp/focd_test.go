package ilp

import (
	"math/rand"
	"testing"

	"ocd/internal/core"
	"ocd/internal/exact"
	"ocd/internal/graph"
	"ocd/internal/workload"
)

func TestSolveFOCDLine(t *testing.T) {
	inst := lineInstance(t, 4, 1, 1)
	sched, tau, err := SolveFOCD(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tau != 3 {
		t.Errorf("optimum tau = %d, want 3", tau)
	}
	if sched.Makespan() != 3 {
		t.Errorf("schedule makespan = %d", sched.Makespan())
	}
	if err := core.Validate(inst, sched); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
}

func TestSolveFOCDFigure1(t *testing.T) {
	inst := workload.Figure1()
	sched, tau, err := SolveFOCD(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tau != 2 {
		t.Errorf("Figure 1 ILP optimum tau = %d, want 2", tau)
	}
	// At the fast optimum the minimum bandwidth is 6 (the Figure 1 claim).
	if sched.Moves() != 6 {
		t.Errorf("bandwidth at tau* = %d, want 6", sched.Moves())
	}
}

func TestSolveFOCDTrivialAndUnsat(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	inst.Want[2].Clear()
	_, tau, err := SolveFOCD(inst, Options{})
	if err != nil || tau != 0 {
		t.Errorf("trivial instance: tau=%d err=%v", tau, err)
	}

	g := graph.New(2)
	if err := g.AddArc(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	bad := core.NewInstance(g, 1)
	bad.Have[1].Add(0)
	bad.Want[0].Add(0)
	if _, _, err := SolveFOCD(bad, Options{}); err == nil {
		t.Error("unsatisfiable instance accepted")
	}
}

func TestSolveFOCDAgreesWithBranchAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		n := 3 + rng.Intn(2)
		g := graph.New(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			if err := g.AddEdge(perm[i], perm[rng.Intn(i)], 1); err != nil {
				t.Fatal(err)
			}
		}
		inst := core.NewInstance(g, 2)
		for tok := 0; tok < 2; tok++ {
			inst.Have[rng.Intn(n)].Add(tok)
			inst.Want[rng.Intn(n)].Add(tok)
		}
		bnb, err := exact.SolveFOCD(inst, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d bnb: %v", trial, err)
		}
		_, tau, err := SolveFOCD(inst, Options{})
		if err != nil {
			t.Fatalf("trial %d ilp: %v", trial, err)
		}
		if tau != bnb.Makespan() {
			t.Errorf("trial %d: ILP tau %d != branch-and-bound %d", trial, tau, bnb.Makespan())
		}
	}
}
