// Package ilp builds and solves the paper's §3.4 time-indexed integer
// program for the Efficient Overlay Content Distribution problem.
//
// For a horizon τ, a 0/1 variable x^i_{(u,v),t} says token t crosses arc
// (u,v) at timestep i. The graph is extended with a self-arc at every
// vertex (storage); self-arcs carry no cost and no capacity. Constraints:
//
//	possession:  x^i_{(u,v),t} ≤ Σ_{w:(w,u)∈E'} x^{i−1}_{(w,u),t}
//	capacity:    Σ_t x^i_{(u,v),t} ≤ c(u,v)      (real arcs only)
//	final:       x^{τ+1}_{(v,v),t} ≥ w_{vt}
//
// with initial conditions x^0_{(v,v),t} = [t ∈ h(v)] folded into the i = 1
// possession rows. The objective minimizes the number of real-arc moves.
// Solving is branch-and-bound on the LP relaxation from internal/lp.
package ilp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/lp"
)

// ErrInfeasible is returned when no schedule of length τ exists.
var ErrInfeasible = errors.New("ilp: infeasible within horizon")

// ErrBudget is returned when branch-and-bound exceeds its node budget.
var ErrBudget = errors.New("ilp: node budget exhausted")

// Options controls the solver.
type Options struct {
	// MaxNodes caps branch-and-bound nodes (0 = 10000).
	MaxNodes int
}

func (o Options) nodes() int {
	if o.MaxNodes <= 0 {
		return 10000
	}
	return o.MaxNodes
}

// variable identifies one x^i_{(u,v),t}.
type variable struct {
	from, to int // from == to means self-arc
	token    int
	step     int // 1-based
}

// Program is the constructed integer program plus the decoding metadata.
type Program struct {
	inst *core.Instance
	tau  int
	vars []variable
	// index maps (from,to,token,step) → variable position.
	index map[variable]int
	prob  *lp.Problem
	// realArcs are the graph arcs (cost carriers).
	realArcs []graph.Arc
}

// Build constructs the time-indexed program for the given horizon.
func Build(inst *core.Instance, tau int) (*Program, error) {
	if err := inst.Check(); err != nil {
		return nil, err
	}
	if tau < 1 {
		return nil, fmt.Errorf("ilp: horizon %d must be >= 1", tau)
	}
	p := &Program{
		inst:     inst,
		tau:      tau,
		index:    make(map[variable]int),
		realArcs: inst.G.Arcs(),
	}
	n := inst.N()
	m := inst.NumTokens

	add := func(v variable) {
		p.index[v] = len(p.vars)
		p.vars = append(p.vars, v)
	}
	// Real-arc variables: steps 1..τ.
	for _, a := range p.realArcs {
		for t := 0; t < m; t++ {
			for i := 1; i <= tau; i++ {
				add(variable{from: a.From, to: a.To, token: t, step: i})
			}
		}
	}
	// Self-arc variables: steps 1..τ+1.
	for v := 0; v < n; v++ {
		for t := 0; t < m; t++ {
			for i := 1; i <= tau+1; i++ {
				add(variable{from: v, to: v, token: t, step: i})
			}
		}
	}

	nv := len(p.vars)
	prob := &lp.Problem{C: make([]float64, nv)}
	for idx, v := range p.vars {
		if v.from != v.to {
			prob.C[idx] = 1
		}
	}

	addRow := func(row []float64, rhs float64) {
		prob.A = append(prob.A, row)
		prob.B = append(prob.B, rhs)
	}

	// Possession rows: x^i_{(u,v),t} − Σ_{w:(w,u)∈E'} x^{i−1}_{(w,u),t} ≤ init
	// where init = 1 if i == 1 and t ∈ h(u), else 0 (the x^0 constants).
	for idx, v := range p.vars {
		row := make([]float64, nv)
		row[idx] = 1
		rhs := 0.0
		if v.step == 1 {
			if p.inst.Have[v.from].Has(v.token) {
				rhs = 1
			}
		} else {
			prev := v.step - 1
			// Incoming real arcs into v.from (only exist for prev ≤ τ).
			if prev <= tau {
				for _, a := range inst.G.In(v.from) {
					j := p.index[variable{from: a.From, to: a.To, token: v.token, step: prev}]
					row[j] -= 1
				}
			}
			// Self-arc at v.from.
			j := p.index[variable{from: v.from, to: v.from, token: v.token, step: prev}]
			row[j] -= 1
		}
		addRow(row, rhs)
	}

	// Capacity rows: real arcs only.
	for _, a := range p.realArcs {
		for i := 1; i <= tau; i++ {
			row := make([]float64, nv)
			for t := 0; t < m; t++ {
				row[p.index[variable{from: a.From, to: a.To, token: t, step: i}]] = 1
			}
			addRow(row, float64(a.Cap))
		}
	}

	// Final rows: x^{τ+1}_{(v,v),t} ≥ w_{vt}  ⇔  −x ≤ −1 when wanted.
	for v := 0; v < n; v++ {
		for t := 0; t < m; t++ {
			if !inst.Want[v].Has(t) {
				continue
			}
			row := make([]float64, nv)
			row[p.index[variable{from: v, to: v, token: t, step: tau + 1}]] = -1
			addRow(row, -1)
		}
	}

	// Upper bounds x ≤ 1.
	for idx := 0; idx < nv; idx++ {
		row := make([]float64, nv)
		row[idx] = 1
		addRow(row, 1)
	}

	p.prob = prob
	return p, nil
}

// NumVariables returns the number of 0/1 variables in the program.
func (p *Program) NumVariables() int { return len(p.vars) }

// NumConstraints returns the number of inequality rows (including x ≤ 1
// bounds).
func (p *Program) NumConstraints() int { return len(p.prob.A) }

// Solve runs branch-and-bound on the LP relaxation and returns a schedule
// of length ≤ τ with the minimum number of moves, along with that optimum.
func (p *Program) Solve(opts Options) (*core.Schedule, int, error) {
	s := &solver{p: p, budget: opts.nodes(), bestObj: math.Inf(1)}
	if err := s.branch(map[int]int{}); err != nil {
		return nil, 0, err
	}
	if s.bestX == nil {
		return nil, 0, ErrInfeasible
	}
	sched := p.decode(s.bestX)
	return sched, int(math.Round(s.bestObj)), nil
}

type solver struct {
	p       *Program
	budget  int
	nodes   int
	bestObj float64
	bestX   []float64
}

const intTol = 1e-6

// branch solves the LP with the given variable fixings and recurses on the
// most fractional variable.
func (s *solver) branch(fixed map[int]int) error {
	s.nodes++
	if s.nodes > s.budget {
		return ErrBudget
	}
	prob := s.p.withFixings(fixed)
	sol, err := lp.Solve(prob)
	if err != nil {
		return fmt.Errorf("ilp: lp relaxation: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil // infeasible subproblem (unbounded cannot occur: c ≥ 0, x bounded)
	}
	// Integral objective: can round the bound up.
	if math.Ceil(sol.Objective-intTol) >= s.bestObj {
		return nil
	}
	// Find most fractional variable.
	frac := -1
	fracDist := 0.0
	for j, x := range sol.X {
		d := math.Abs(x - math.Round(x))
		if d > intTol && d > fracDist {
			frac = j
			fracDist = d
		}
	}
	if frac == -1 {
		// Integral solution.
		if sol.Objective < s.bestObj {
			s.bestObj = math.Round(sol.Objective)
			s.bestX = append([]float64(nil), sol.X...)
		}
		return nil
	}
	for _, val := range []int{1, 0} { // try 1 first: progress-making branch
		fixed[frac] = val
		if err := s.branch(fixed); err != nil {
			return err
		}
		delete(fixed, frac)
	}
	return nil
}

// withFixings returns a copy of the base problem with x_j = v rows added.
func (p *Program) withFixings(fixed map[int]int) *lp.Problem {
	base := p.prob
	nv := len(base.C)
	prob := &lp.Problem{
		C: base.C,
		A: append([][]float64(nil), base.A...),
		B: append([]float64(nil), base.B...),
	}
	// Emit fixing rows in ascending variable order: the constraint-row
	// order steers simplex pivoting, so map order here would make
	// branch-and-bound results vary run to run.
	vars := make([]int, 0, len(fixed))
	for j := range fixed {
		vars = append(vars, j)
	}
	sort.Ints(vars)
	for _, j := range vars {
		row := make([]float64, nv)
		if fixed[j] == 0 {
			row[j] = 1 // x_j ≤ 0
			prob.A = append(prob.A, row)
			prob.B = append(prob.B, 0)
		} else {
			row[j] = -1 // −x_j ≤ −1, with x_j ≤ 1 already present
			prob.A = append(prob.A, row)
			prob.B = append(prob.B, -1)
		}
	}
	return prob
}

// decode converts an integral solution into a schedule, dropping self-arc
// storage pseudo-moves.
func (p *Program) decode(x []float64) *core.Schedule {
	sched := &core.Schedule{Steps: make([]core.Step, p.tau)}
	for idx, v := range p.vars {
		if v.from == v.to || x[idx] < 0.5 {
			continue
		}
		sched.Steps[v.step-1] = append(sched.Steps[v.step-1],
			core.Move{From: v.from, To: v.to, Token: v.token})
	}
	// Drop empty trailing steps.
	for len(sched.Steps) > 0 && len(sched.Steps[len(sched.Steps)-1]) == 0 {
		sched.Steps = sched.Steps[:len(sched.Steps)-1]
	}
	return sched
}
