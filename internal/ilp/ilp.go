// Package ilp builds and solves the paper's §3.4 time-indexed integer
// program for the Efficient Overlay Content Distribution problem.
//
// For a horizon τ, a 0/1 variable x^i_{(u,v),t} says token t crosses arc
// (u,v) at timestep i. The graph is extended with a self-arc at every
// vertex (storage); self-arcs carry no cost and no capacity. Constraints:
//
//	possession:  x^i_{(u,v),t} ≤ Σ_{w:(w,u)∈E'} x^{i−1}_{(w,u),t}
//	capacity:    Σ_t x^i_{(u,v),t} ≤ c(u,v)      (real arcs only)
//	final:       x^{τ+1}_{(v,v),t} ≥ w_{vt}
//
// with initial conditions x^0_{(v,v),t} = [t ∈ h(v)] folded into the i = 1
// possession rows. The x ≤ 1 bounds are NOT constraint rows: they ride as
// implicit variable bounds of the bounded-variable simplex in internal/lp,
// which removes T·|A| dense rows from every relaxation.
//
// The objective minimizes the number of real-arc moves. Solving is
// warm-started branch-and-bound: nodes are ordered best-bound-first, each
// node re-solves its LP by dual simplex from the parent's optimal basis
// (a Basis snapshot, not a phase-1 from scratch), branching fixes a
// variable by tightening its bounds in place, and the incumbent is pruned
// against the §5.1 bandwidth lower bound from internal/core — once the
// incumbent meets that certified bound the search stops early.
package ilp

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/lp"
)

// ErrInfeasible is returned when no schedule of length τ exists.
var ErrInfeasible = errors.New("ilp: infeasible within horizon")

// ErrBudget is returned when branch-and-bound exceeds its node budget.
var ErrBudget = errors.New("ilp: node budget exhausted")

// Options controls the solver.
type Options struct {
	// MaxNodes caps branch-and-bound nodes (0 = 10000).
	MaxNodes int
}

func (o Options) nodes() int {
	if o.MaxNodes <= 0 {
		return 10000
	}
	return o.MaxNodes
}

// Stats reports the work a Solve performed; it feeds the ocdbench solver
// section and the perf-regression gate.
type Stats struct {
	// Nodes is the number of LP relaxations solved (the root plus every
	// expanded branch-and-bound node; nodes pruned by bound before their
	// LP is touched are free and not counted).
	Nodes int
	// SimplexIterations is the total pivot count across all relaxations
	// (primal, dual, and bound flips).
	SimplexIterations int
	// WarmStarts counts node LPs re-solved from a restored parent basis
	// (every node except the root).
	WarmStarts int
	// BoundFlips is the subset of SimplexIterations where the entering
	// variable reached its other bound without a basis change — the
	// bounded-variable simplex's cheap pivot.
	BoundFlips int
	// DualRestorations counts dual-simplex warm-start restorations
	// (Resolve calls on the shared solver).
	DualRestorations int
}

// variable identifies one x^i_{(u,v),t}.
type variable struct {
	from, to int // from == to means self-arc
	token    int
	step     int // 1-based
}

// Program is the constructed integer program plus the decoding metadata.
type Program struct {
	inst *core.Instance
	tau  int
	vars []variable
	// index maps (from,to,token,step) → variable position.
	index map[variable]int
	prob  *lp.Problem
	// realArcs are the graph arcs (cost carriers).
	realArcs []graph.Arc
}

// Build constructs the time-indexed program for the given horizon.
func Build(inst *core.Instance, tau int) (*Program, error) {
	if err := inst.Check(); err != nil {
		return nil, err
	}
	if tau < 1 {
		return nil, fmt.Errorf("ilp: horizon %d must be >= 1", tau)
	}
	p := &Program{
		inst:     inst,
		tau:      tau,
		index:    make(map[variable]int),
		realArcs: inst.G.Arcs(),
	}
	n := inst.N()
	m := inst.NumTokens

	add := func(v variable) {
		p.index[v] = len(p.vars)
		p.vars = append(p.vars, v)
	}
	// Real-arc variables: steps 1..τ.
	for _, a := range p.realArcs {
		for t := 0; t < m; t++ {
			for i := 1; i <= tau; i++ {
				add(variable{from: a.From, to: a.To, token: t, step: i})
			}
		}
	}
	// Self-arc variables: steps 1..τ+1.
	for v := 0; v < n; v++ {
		for t := 0; t < m; t++ {
			for i := 1; i <= tau+1; i++ {
				add(variable{from: v, to: v, token: t, step: i})
			}
		}
	}

	nv := len(p.vars)
	prob := &lp.Problem{C: make([]float64, nv), Up: make([]float64, nv)}
	for idx, v := range p.vars {
		if v.from != v.to {
			prob.C[idx] = 1
		}
		prob.Up[idx] = 1 // binary relaxation: x ∈ [0, 1] as implicit bounds
	}

	addRow := func(row []float64, rhs float64) {
		prob.A = append(prob.A, row)
		prob.B = append(prob.B, rhs)
	}

	// Possession rows: x^i_{(u,v),t} − Σ_{w:(w,u)∈E'} x^{i−1}_{(w,u),t} ≤ init
	// where init = 1 if i == 1 and t ∈ h(u), else 0 (the x^0 constants).
	for idx, v := range p.vars {
		row := make([]float64, nv)
		row[idx] = 1
		rhs := 0.0
		if v.step == 1 {
			if p.inst.Have[v.from].Has(v.token) {
				rhs = 1
			}
		} else {
			prev := v.step - 1
			// Incoming real arcs into v.from (only exist for prev ≤ τ).
			if prev <= tau {
				for _, a := range inst.G.In(v.from) {
					j := p.index[variable{from: a.From, to: a.To, token: v.token, step: prev}]
					row[j] -= 1
				}
			}
			// Self-arc at v.from.
			j := p.index[variable{from: v.from, to: v.from, token: v.token, step: prev}]
			row[j] -= 1
		}
		addRow(row, rhs)
	}

	// Capacity rows: real arcs only.
	for _, a := range p.realArcs {
		for i := 1; i <= tau; i++ {
			row := make([]float64, nv)
			for t := 0; t < m; t++ {
				row[p.index[variable{from: a.From, to: a.To, token: t, step: i}]] = 1
			}
			addRow(row, float64(a.Cap))
		}
	}

	// Final rows: x^{τ+1}_{(v,v),t} ≥ w_{vt}  ⇔  −x ≤ −1 when wanted.
	for v := 0; v < n; v++ {
		for t := 0; t < m; t++ {
			if !inst.Want[v].Has(t) {
				continue
			}
			row := make([]float64, nv)
			row[p.index[variable{from: v, to: v, token: t, step: tau + 1}]] = -1
			addRow(row, -1)
		}
	}

	p.prob = prob
	return p, nil
}

// NumVariables returns the number of 0/1 variables in the program.
func (p *Program) NumVariables() int { return len(p.vars) }

// NumConstraints returns the number of inequality rows. The x ≤ 1 bounds
// are implicit in the simplex and add no rows.
func (p *Program) NumConstraints() int { return len(p.prob.A) }

// Solve runs branch-and-bound on the LP relaxation and returns a schedule
// of length ≤ τ with the minimum number of moves, along with that optimum.
func (p *Program) Solve(opts Options) (*core.Schedule, int, error) {
	sched, obj, _, err := p.SolveStats(opts)
	return sched, obj, err
}

// SolveStats is Solve plus solver work counters.
func (p *Program) SolveStats(opts Options) (*core.Schedule, int, Stats, error) {
	sv, err := lp.NewSolver(p.prob)
	if err != nil {
		return nil, 0, Stats{}, fmt.Errorf("ilp: lp relaxation: %w", err)
	}
	s := &solver{
		p:       p,
		sv:      sv,
		budget:  opts.nodes(),
		bestObj: math.Inf(1),
		cur:     map[int]int{},
		// The §5.1 bandwidth bound certifies optimality early: no schedule
		// can use fewer moves, so an incumbent that reaches it ends the
		// search without draining the node queue.
		globalLB: float64(core.BandwidthLowerBound(p.inst, nil)),
	}
	if err := s.run(); err != nil {
		return nil, 0, s.stats(), err
	}
	if s.bestX == nil {
		return nil, 0, s.stats(), ErrInfeasible
	}
	sched := p.decode(s.bestX)
	return sched, int(math.Round(s.bestObj)), s.stats(), nil
}

const intTol = 1e-6

type solver struct {
	p        *Program
	sv       *lp.Solver
	budget   int
	nodes    int
	warm     int
	bestObj  float64
	bestX    []float64
	globalLB float64
	cur      map[int]int // fixings currently installed in sv
	queue    nodeQueue
	seq      int
}

func (s *solver) stats() Stats {
	st := s.sv.Stats()
	return Stats{
		Nodes:             s.nodes,
		SimplexIterations: st.Iterations,
		WarmStarts:        s.warm,
		BoundFlips:        st.BoundFlips,
		DualRestorations:  st.DualRestorations,
	}
}

// bbNode is one open branch-and-bound subproblem: the branching decision
// it adds (fixVar = fixVal) on top of its parent's, and the parent's
// optimal basis to warm-start from. Fixings are reconstructed by walking
// the parent chain; sibling nodes share the same Basis snapshot.
type bbNode struct {
	bound  float64 // parent LP objective: a lower bound for the subtree
	depth  int
	seq    int
	fixVar int
	fixVal int
	parent *bbNode
	basis  lp.Basis
}

// nodeQueue pops the node with the least lower bound (best-bound-first);
// ties prefer the deeper node (diving finds incumbents sooner) and then
// insertion order, which keeps the search deterministic.
type nodeQueue []*bbNode

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	if q[i].depth != q[j].depth {
		return q[i].depth > q[j].depth
	}
	return q[i].seq < q[j].seq
}
func (q nodeQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)   { *q = append(*q, x.(*bbNode)) }
func (q *nodeQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return x
}

func (s *solver) run() error {
	// Root: a cold solve (the only one), counted like any other node.
	s.nodes++
	sol, err := s.sv.Solve()
	if err != nil {
		return fmt.Errorf("ilp: lp relaxation: %w", err)
	}
	if sol.Status == lp.Optimal {
		s.expand(sol, nil, 0)
	}

	for s.queue.Len() > 0 {
		if s.bestObj <= s.globalLB+intTol {
			break // incumbent meets the certified lower bound
		}
		node := heap.Pop(&s.queue).(*bbNode)
		// The bound was computed at push time; the incumbent may have
		// improved since, making the node prunable without an LP solve.
		if math.Ceil(node.bound-intTol) >= s.bestObj {
			continue
		}
		s.nodes++
		if s.nodes > s.budget {
			return ErrBudget
		}
		if err := s.sv.Restore(node.basis); err != nil {
			return fmt.Errorf("ilp: warm start: %w", err)
		}
		if err := s.applyFixings(node.fixings()); err != nil {
			return fmt.Errorf("ilp: warm start: %w", err)
		}
		s.warm++
		sol, err := s.sv.Resolve()
		if err != nil {
			return fmt.Errorf("ilp: lp relaxation: %w", err)
		}
		if sol.Status != lp.Optimal {
			continue // infeasible subproblem (unbounded cannot occur: c ≥ 0, x bounded)
		}
		s.expand(sol, node, node.depth)
	}
	return nil
}

// expand prunes, records an integral incumbent, or branches on the most
// fractional variable, pushing both children with the node's optimal
// basis as their warm start.
func (s *solver) expand(sol *lp.Solution, parent *bbNode, depth int) {
	// Integral objective: the bound can be rounded up before comparing.
	if math.Ceil(sol.Objective-intTol) >= s.bestObj {
		return
	}
	frac := -1
	fracDist := 0.0
	for j, x := range sol.X {
		d := math.Abs(x - math.Round(x))
		if d > intTol && d > fracDist {
			frac = j
			fracDist = d
		}
	}
	if frac == -1 {
		s.bestObj = math.Round(sol.Objective)
		s.bestX = append(s.bestX[:0], sol.X...)
		return
	}
	basis := s.sv.Snapshot()
	for _, val := range []int{1, 0} { // the val=1 dive gets the earlier seq
		heap.Push(&s.queue, &bbNode{
			bound: sol.Objective, depth: depth + 1, seq: s.seq,
			fixVar: frac, fixVal: val, parent: parent, basis: basis,
		})
		s.seq++
	}
}

// fixings reconstructs the node's full fixing set from the parent chain.
func (n *bbNode) fixings() map[int]int {
	out := make(map[int]int, n.depth)
	for cur := n; cur != nil; cur = cur.parent {
		out[cur.fixVar] = cur.fixVal
	}
	return out
}

// applyFixings reconciles the solver's variable bounds with the target
// fixing set: released variables go back to [0, 1], new or changed
// fixings pin [v, v]. Each SetBounds shifts values independently, so the
// outcome is order-free; the sort just keeps the pivot trail replayable.
func (s *solver) applyFixings(target map[int]int) error {
	changed := make([]int, 0, len(s.cur)+len(target))
	for j := range s.cur {
		if _, ok := target[j]; !ok {
			changed = append(changed, j)
		}
	}
	sort.Ints(changed)
	for _, j := range changed {
		if err := s.sv.SetBounds(j, 0, 1); err != nil {
			return err
		}
	}
	changed = changed[:0]
	for j, v := range target {
		if cv, ok := s.cur[j]; !ok || cv != v {
			changed = append(changed, j)
		}
	}
	sort.Ints(changed)
	for _, j := range changed {
		v := float64(target[j])
		if err := s.sv.SetBounds(j, v, v); err != nil {
			return err
		}
	}
	s.cur = target
	return nil
}

// decode converts an integral solution into a schedule, dropping self-arc
// storage pseudo-moves.
func (p *Program) decode(x []float64) *core.Schedule {
	sched := &core.Schedule{Steps: make([]core.Step, p.tau)}
	for idx, v := range p.vars {
		if v.from == v.to || x[idx] < 0.5 {
			continue
		}
		sched.Steps[v.step-1] = append(sched.Steps[v.step-1],
			core.Move{From: v.from, To: v.to, Token: v.token})
	}
	// Drop empty trailing steps.
	for len(sched.Steps) > 0 && len(sched.Steps[len(sched.Steps)-1]) == 0 {
		sched.Steps = sched.Steps[:len(sched.Steps)-1]
	}
	return sched
}
