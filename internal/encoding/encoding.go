// Package encoding implements the paper's §6 "Encoding" open problem: a
// file of k tokens is expanded into n ≥ k coded tokens, any k of which
// reconstruct the file (the behaviour of MDS erasure codes and rateless
// codes; we simulate the combinatorics, not the finite-field arithmetic,
// since only the distribution schedule is under study).
//
// Coding changes the completion predicate — a receiver is done once it
// holds any k coded tokens of each file it wants — and it pays for that
// flexibility with a larger token universe. Under lossy channels
// (sim.Options.LossRate) the redundancy lets receivers finish without
// waiting for retransmission of specific tokens, which is exactly the
// tradeoff §6 anticipates.
package encoding

import (
	"fmt"

	"ocd/internal/core"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
)

// File is a contiguous token group [Lo, Hi) in the coded universe, of
// which Threshold tokens suffice to reconstruct the original file.
type File struct {
	Lo, Hi    int
	Threshold int
}

// Coded is an OCD instance under (k, n) coding.
type Coded struct {
	// Inst is the expanded instance: each original file of k tokens is
	// replaced by n coded tokens; wants name the full coded group (so the
	// flooding heuristics keep working unchanged) but completion only
	// requires Threshold of them.
	Inst *core.Instance
	// Files lists the coded groups.
	Files []File
}

// Expand builds a coded instance from an uncoded one. The original token
// universe is partitioned into files of size k (the last file may be
// smaller; its threshold shrinks accordingly); each file becomes n coded
// tokens. Vertices holding any token of an original file are assumed to be
// able to produce all its coded tokens (they are sources); vertices wanting
// any of the file's tokens want the coded group.
func Expand(orig *core.Instance, k, n int) (*Coded, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("encoding: need n >= k >= 1, got k=%d n=%d", k, n)
	}
	if err := orig.Check(); err != nil {
		return nil, err
	}
	numFiles := (orig.NumTokens + k - 1) / k
	coded := core.NewInstance(orig.G, numFiles*n)
	var files []File
	for f := 0; f < numFiles; f++ {
		lo, hi := f*n, (f+1)*n
		origLo := f * k
		origHi := origLo + k
		if origHi > orig.NumTokens {
			origHi = orig.NumTokens
		}
		files = append(files, File{Lo: lo, Hi: hi, Threshold: origHi - origLo})
		for v := 0; v < orig.N(); v++ {
			holds, wants := false, false
			for t := origLo; t < origHi; t++ {
				holds = holds || orig.Have[v].Has(t)
				wants = wants || orig.Want[v].Has(t)
			}
			if holds {
				coded.Have[v].AddRange(lo, hi)
			}
			if wants {
				coded.Want[v].AddRange(lo, hi)
			}
		}
	}
	return &Coded{Inst: coded, Files: files}, nil
}

// Done reports coded completion: every vertex holds at least Threshold
// tokens of every coded group it wants.
func (c *Coded) Done(inst *core.Instance, possess []tokenset.Set) bool {
	for v := range possess {
		for _, f := range c.Files {
			if !wantsGroup(inst, v, f) {
				continue
			}
			if countInRange(possess[v], f.Lo, f.Hi) < f.Threshold {
				return false
			}
		}
	}
	return true
}

func wantsGroup(inst *core.Instance, v int, f File) bool {
	return inst.Want[v].Has(f.Lo)
}

func countInRange(s tokenset.Set, lo, hi int) int {
	n := 0
	for t := s.NextAfter(lo - 1); t >= 0 && t < hi; t = s.NextAfter(t) {
		n++
	}
	return n
}

// Run executes a heuristic on the coded instance with the threshold
// completion predicate layered onto the engine.
func (c *Coded) Run(factory sim.Factory, opts sim.Options) (*sim.Result, error) {
	opts.Done = c.Done
	// Pruning against the full coded want sets would keep deliveries the
	// threshold semantics never needed; skip it.
	opts.Prune = false
	return sim.Run(c.Inst, factory, opts)
}

// Overhead returns the token-universe expansion factor n/k aggregated over
// files, the price paid for loss resilience.
func (c *Coded) Overhead() float64 {
	coded, orig := 0, 0
	for _, f := range c.Files {
		coded += f.Hi - f.Lo
		orig += f.Threshold
	}
	if orig == 0 {
		return 0
	}
	return float64(coded) / float64(orig)
}
