package encoding

import (
	"testing"

	"ocd/internal/core"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func TestExpandShape(t *testing.T) {
	g, err := topology.Ring(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	orig := workload.SingleFile(g, 8) // one 8-token file
	coded, err := Expand(orig, 4, 6)  // two files of 4 → 6 coded each
	if err != nil {
		t.Fatal(err)
	}
	if coded.Inst.NumTokens != 12 {
		t.Errorf("coded universe = %d, want 12", coded.Inst.NumTokens)
	}
	if len(coded.Files) != 2 {
		t.Fatalf("files = %d, want 2", len(coded.Files))
	}
	for _, f := range coded.Files {
		if f.Threshold != 4 || f.Hi-f.Lo != 6 {
			t.Errorf("file %+v, want threshold 4 size 6", f)
		}
	}
	// Source holds all coded tokens; receivers want all coded tokens.
	if coded.Inst.Have[0].Count() != 12 {
		t.Error("source does not hold the coded universe")
	}
	if coded.Inst.Want[1].Count() != 12 {
		t.Error("receiver wants wrong coded set")
	}
	if got := coded.Overhead(); got != 1.5 {
		t.Errorf("overhead = %f, want 1.5", got)
	}
}

func TestExpandRaggedLastFile(t *testing.T) {
	g, err := topology.Ring(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	orig := workload.SingleFile(g, 10)
	coded, err := Expand(orig, 4, 5) // files of 4,4,2 → threshold 4,4,2
	if err != nil {
		t.Fatal(err)
	}
	if len(coded.Files) != 3 {
		t.Fatalf("files = %d, want 3", len(coded.Files))
	}
	if coded.Files[2].Threshold != 2 {
		t.Errorf("last threshold = %d, want 2", coded.Files[2].Threshold)
	}
}

func TestExpandErrors(t *testing.T) {
	g, err := topology.Ring(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	orig := workload.SingleFile(g, 8)
	if _, err := Expand(orig, 0, 4); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Expand(orig, 4, 3); err == nil {
		t.Error("n < k accepted")
	}
}

func TestCodedDonePredicate(t *testing.T) {
	g, err := topology.Line(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	orig := workload.SingleFile(g, 4)
	coded, err := Expand(orig, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	possess := coded.Inst.InitialPossession()
	if coded.Done(coded.Inst, possess) {
		t.Error("done before any delivery")
	}
	// Deliver 3 of 6 coded tokens: not enough.
	for tok := 0; tok < 3; tok++ {
		possess[1].Add(tok)
	}
	if coded.Done(coded.Inst, possess) {
		t.Error("done below threshold")
	}
	possess[1].Add(3) // 4th token reaches the threshold
	if !coded.Done(coded.Inst, possess) {
		t.Error("not done at threshold")
	}
}

func TestCodedRunFinishesEarly(t *testing.T) {
	// Without loss, a coded run must finish after threshold deliveries —
	// strictly fewer moves than flooding the entire coded universe.
	g, err := topology.Line(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	orig := workload.SingleFile(g, 8)
	coded, err := Expand(orig, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coded.Run(heuristics.Local, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("coded run incomplete")
	}
	if res.Moves != 8 {
		t.Errorf("moves = %d, want exactly the threshold 8", res.Moves)
	}
}

func TestCodedBeatsUncodedUnderLoss(t *testing.T) {
	// Coding pays off for knowledge-free senders: when a loss hits a
	// specific token, uncoded Round Robin waits a full cycle for that
	// token to come around again, while the coded receiver accepts any k
	// of n arrivals. Aggregate turns over several seeds.
	g, err := topology.Line(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	orig := workload.SingleFile(g, 16)
	coded, err := Expand(orig, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	uncodedTotal, codedTotal := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		uncoded, err := sim.Run(orig, heuristics.RoundRobin, sim.Options{
			Seed: seed, LossRate: 0.5, IdlePatience: 5, MaxSteps: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := coded.Run(heuristics.RoundRobin, sim.Options{
			Seed: seed, LossRate: 0.5, IdlePatience: 5, MaxSteps: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !uncoded.Completed || !res.Completed {
			t.Fatal("runs incomplete")
		}
		uncodedTotal += uncoded.Steps
		codedTotal += res.Steps
	}
	if codedTotal >= uncodedTotal {
		t.Errorf("coded (%d total turns) not faster than uncoded (%d) under loss",
			codedTotal, uncodedTotal)
	}
}

func TestCodedValidatableSubSchedule(t *testing.T) {
	// The recorded coded schedule obeys capacity/possession even though it
	// does not satisfy the full coded want sets; only ErrUnsuccessful is
	// acceptable from the strict validator.
	g, err := topology.Ring(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	orig := workload.SingleFile(g, 6)
	coded, err := Expand(orig, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coded.Run(heuristics.Global, sim.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(coded.Inst, res.Schedule); err != nil && err != core.ErrUnsuccessful {
		t.Fatalf("coded schedule violates move constraints: %v", err)
	}
}
