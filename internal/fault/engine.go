package fault

import (
	"errors"
	"fmt"
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/dynamic"
	"ocd/internal/graph"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
)

// Receiver reports one vertex's outcome under faults.
type Receiver struct {
	V int
	// Wanted is |w(v)|; Got is |w(v) ∩ p(v)| at termination.
	Wanted, Got int
	// Undeliverable is the number of missing tokens proven unreachable —
	// held by no vertex that can still reach v.
	Undeliverable int
}

// Liveness classifies a run's terminal state beyond the binary Completed:
// faults introduce the third outcome — blocked now, satisfiable later.
type Liveness string

const (
	// LivenessComplete: every want was satisfied.
	LivenessComplete Liveness = "complete"
	// LivenessHealable: wants remain, but at least one missing token is
	// still held by a live (or transiently absent) vertex that can reach
	// its receiver once transient partitions heal and churned members
	// rejoin — the run stalled or timed out on a recoverable fault, it
	// did not fail.
	LivenessHealable Liveness = "healable"
	// LivenessUnsatisfiable: every remaining missing token is provably
	// undeliverable — extinct or permanently cut off. Healing changes
	// nothing.
	LivenessUnsatisfiable Liveness = "unsatisfiable"
)

// Result summarizes a faulted run: the base engine metrics plus the
// degradation report.
type Result struct {
	*sim.Result
	// Plan names the fault plan the run executed under.
	Plan string
	// Graceful reports that the run terminated because every remaining
	// unsatisfied want was proven undeliverable — the principled outcome
	// the paper's static model has no need for. Completed and Graceful are
	// mutually exclusive; a run that is neither hit the step limit or the
	// IdlePatience stall.
	Graceful bool
	// Liveness distinguishes a run stalled behind transient faults
	// (healable — satisfiable once partitions heal and members rejoin)
	// from one whose remaining wants are proven undeliverable.
	Liveness Liveness
	// Unsatisfiable lists the receivers with undeliverable wants, in
	// vertex order.
	Unsatisfiable []Receiver
	// DeliveredFraction is (Σ_v |w(v) ∩ p(v)|) / (Σ_v |w(v)|) at
	// termination — 1.0 exactly when Completed.
	DeliveredFraction float64
	// Retransmissions counts deliveries of a token to a vertex that had
	// already received it once (retry traffic and crash re-downloads).
	Retransmissions int
	// WastedMoves counts deliveries whose effect was later destroyed by a
	// crash state wipe.
	WastedMoves int
	// Crashes counts up→down transitions; DownSteps the total vertex-down
	// timesteps. Churn departures count separately below.
	Crashes, DownSteps int
	// Departures counts churn leave events (each wipes the member's
	// state); AwaySteps the total member-absent timesteps.
	Departures, AwaySteps int
}

// Run executes the strategy produced by factory on inst under the fault
// plan. It extends the static engine with crash/recovery semantics, the
// plan's deterministic loss model, and live-holder reachability detection:
// instead of stalling until IdlePatience expires, a run whose remaining
// wants are provably undeliverable (sole holders crashed forever, receivers
// permanently partitioned) terminates gracefully with the degradation
// metrics filled in.
//
// MaxSteps of 0 defaults to 4× the Theorem 1 horizon plus IdlePatience —
// faults legitimately slow distribution down.
func Run(inst *core.Instance, factory sim.Factory, plan Plan, opts sim.Options) (*Result, error) {
	if err := inst.Check(); err != nil {
		return nil, err
	}
	plan = plan.normalized()
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 4*inst.TheoremOneHorizon() + opts.IdlePatience
		if maxSteps < 1 {
			maxSteps = 1
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	strat, err := factory(inst, rng)
	if err != nil {
		return nil, fmt.Errorf("fault: create strategy: %w", err)
	}
	done := opts.Done
	if done == nil {
		done = core.Done
	}

	st := &sim.State{Inst: inst, Possess: inst.InitialPossession(), Rand: rng}
	res := &Result{
		Result: &sim.Result{Strategy: strat.Name(), Schedule: &core.Schedule{}},
		Plan:   plan.Name(),
	}
	fk := newFaultKernel(inst, plan, res)

	finish := func(graceful bool) *Result {
		res.Completed = done(inst, st.Possess)
		res.Graceful = graceful && !res.Completed
		res.Steps = res.Schedule.Makespan()
		res.Moves = res.Schedule.Moves() + res.Lost
		res.DeliveredFraction = deliveredFraction(inst, st.Possess)
		if res.Completed {
			res.Liveness = LivenessComplete
		} else {
			// Classification needs the undeliverable sets current as of
			// the final step: detection normally runs only on crash
			// events, but permanent partitions shift reachability with no
			// vertex transition to trigger it.
			detect(inst, st.Possess, fk.perm, fk.permSevered, fk.unsat)
			res.Liveness = classifyLiveness(inst, st.Possess, fk.unsat)
		}
		res.Unsatisfiable = receiverReports(inst, st.Possess, fk.unsat)
		if opts.Prune && res.Completed {
			res.PrunedMoves = core.Prune(inst, res.Schedule).Moves()
		}
		return res
	}

	eng := sim.Engine{
		MaxSteps:     maxSteps,
		IdlePatience: opts.IdlePatience,
		Done:         done,
		Capacity:     fk,
		Loss:         fk,
		Interceptor:  fk,
		Observer:     opts.Observer,
	}
	reason, stepAt := eng.Run(inst, strat, st, res.Result)
	switch reason {
	case sim.StopEarly:
		// Every remaining want is proven undeliverable: the graceful
		// outcome, reported well before the horizon.
		return finish(true), nil
	case sim.StopStalled:
		// Unlike the other engines, a faulted run finalizes its metrics
		// even on a stall — partial degradation reports are the point.
		err := fmt.Errorf("%w: step %d under %s", sim.ErrStalled, stepAt, plan.Name())
		if fs, ok := strat.(sim.Failer); ok {
			if ferr := fs.Err(); ferr != nil {
				// The stall has a named cause — e.g. the retry wrapper
				// exhausted its attempts. Keep ErrStalled as the head
				// error so errors.Is classification is unchanged.
				err = errors.Join(err, ferr)
			}
		}
		return finish(false), err
	default:
		return finish(false), nil
	}
}

// classifyLiveness folds the per-receiver undeliverable sets into the
// run-level verdict: healable when any remaining missing token is not
// proven undeliverable (so healing transient faults could still satisfy
// it), unsatisfiable when every one is. The classification reads the raw
// want sets, not a custom Done predicate.
func classifyLiveness(inst *core.Instance, possess []tokenset.Set, unsat []tokenset.Set) Liveness {
	missingAny := false
	for v := range possess {
		missing := inst.Want[v].Difference(possess[v])
		if missing.Empty() {
			continue
		}
		missingAny = true
		if !missing.SubsetOf(unsat[v]) {
			return LivenessHealable
		}
	}
	if !missingAny {
		return LivenessComplete
	}
	return LivenessUnsatisfiable
}

// faultKernel is the fault plan's hook bundle: one value implements the
// kernel's CapacityModel (crash- and plan-adjusted capacities),
// StepInterceptor (crash transitions, reachability detection, graceful
// settlement, retransmission accounting), and LossPolicy (the plan's
// deterministic per-arc draws).
type faultKernel struct {
	inst  *core.Instance
	plan  Plan
	res   *Result
	aware dynamic.PossessionAware

	arcs []graph.Arc // base arcs, sorted by (From, To), cached per run
	ids  []int       // base arc ID per arcs[i]

	prevDown, down, perm []bool
	// everDelivered tracks first deliveries for the retransmission count;
	// unsat accumulates each receiver's proven-undeliverable tokens.
	everDelivered []tokenset.Set
	unsat         []tokenset.Set
	needDetect    bool
	// step is the current timestep, recorded by PreStep so the
	// permanently-severed closure handed to detect queries the partition
	// model at the right moment (permanence is monotone in step).
	step int

	// lossK holds the per-arc draw index k within the current step; the
	// plan's loss model replaces Options.LossRate and every accepted move
	// gets its own deterministic draw.
	lossK    []int
	lossStep int
}

func newFaultKernel(inst *core.Instance, plan Plan, res *Result) *faultKernel {
	n := inst.N()
	arcs := inst.G.Arcs()
	ids := make([]int, len(arcs))
	for i, a := range arcs {
		ids[i] = inst.G.ArcID(a.From, a.To)
	}
	aware, _ := plan.Capacity.(dynamic.PossessionAware)
	fk := &faultKernel{
		inst:          inst,
		plan:          plan,
		res:           res,
		aware:         aware,
		arcs:          arcs,
		ids:           ids,
		prevDown:      make([]bool, n),
		down:          make([]bool, n),
		perm:          make([]bool, n),
		everDelivered: make([]tokenset.Set, n),
		unsat:         make([]tokenset.Set, n),
		needDetect:    true, // always vet reachability before the first step
		lossK:         make([]int, inst.G.NumArcs()),
		lossStep:      -1,
	}
	for v := 0; v < n; v++ {
		fk.everDelivered[v] = tokenset.New(inst.NumTokens)
		fk.unsat[v] = tokenset.New(inst.NumTokens)
	}
	return fk
}

// permSevered is the arc-level analogue of the perm vertex flags, handed
// to detect as a closure: permanence is monotone in step, so querying at
// the current step sees every cut that will never heal.
func (f *faultKernel) permSevered(from, to int) bool {
	return f.plan.Partitions.Permanent(f.step, from, to)
}

// PreStep implements sim.StepInterceptor: fault transitions first — a
// vertex that is down this step (crashed or churned away) cannot send,
// receive, or plan, and its state-loss policy applies at the moment it
// goes down — then reachability detection if any transition occurred.
// When a crash and a departure coincide, churn semantics win: leaving the
// overlay always wipes everything, whatever the crash StateLoss says.
func (f *faultKernel) PreStep(step int, st *sim.State) {
	f.step = step
	wiped := false
	for v := range f.down {
		crashed := f.plan.Crashes.Down(step, v)
		away := f.plan.Churn.Away(step, v)
		f.down[v] = crashed || away
		if crashed {
			f.res.DownSteps++
			f.perm[v] = f.perm[v] || f.plan.Crashes.Permanent(step, v)
		}
		if away {
			if !crashed {
				f.res.AwaySteps++
			}
			f.perm[v] = f.perm[v] || f.plan.Churn.Gone(step, v)
		}
		if f.down[v] && !f.prevDown[v] {
			f.needDetect = true
			if away {
				f.res.Departures++
				f.res.WastedMoves += st.Possess[v].DifferenceCount(f.inst.Have[v])
				st.Possess[v].Clear()
				wiped = true
			} else {
				f.res.Crashes++
				switch f.plan.StateLoss {
				case DropDownloads:
					f.res.WastedMoves += st.Possess[v].DifferenceCount(f.inst.Have[v])
					st.Possess[v].CopyFrom(f.inst.Have[v])
					wiped = true
				case DropAll:
					f.res.WastedMoves += st.Possess[v].DifferenceCount(f.inst.Have[v])
					st.Possess[v].Clear()
					wiped = true
				}
			}
		}
		f.prevDown[v] = f.down[v]
	}
	if wiped {
		st.InvalidateCounts()
	}
	if f.needDetect {
		detect(f.inst, st.Possess, f.perm, f.permSevered, f.unsat)
		f.needDetect = false
	}
}

// StopEarly implements sim.StepInterceptor: the graceful-settlement check.
func (f *faultKernel) StopEarly(_ int, st *sim.State) bool {
	return settled(f.inst, st.Possess, f.unsat)
}

// OnDeliver implements sim.StepInterceptor: retransmission accounting.
func (f *faultKernel) OnDeliver(_ int, mv core.Move) {
	if f.everDelivered[mv.To].Has(mv.Token) {
		f.res.Retransmissions++
	} else {
		f.everDelivered[mv.To].Add(mv.Token)
	}
}

// OnIdleLimit implements sim.StepInterceptor: re-check reachability before
// declaring a stall — the strategy may be idle precisely because nothing
// deliverable remains.
func (f *faultKernel) OnIdleLimit(_ int, st *sim.State) bool {
	detect(f.inst, st.Possess, f.perm, f.permSevered, f.unsat)
	return settled(f.inst, st.Possess, f.unsat)
}

// StepView implements sim.CapacityModel: the capacity model's output with
// crashed vertices' arcs removed, plus the instance view strategies plan
// against.
func (f *faultKernel) StepView(step int, st *sim.State, eff []int) *core.Instance {
	if f.aware != nil {
		f.aware.Observe(step, st.Possess)
	}
	g := graph.New(f.inst.N())
	for i, a := range f.arcs {
		c := 0
		if !f.down[a.From] && !f.down[a.To] && !f.plan.Partitions.Severed(step, a.From, a.To) {
			c = f.plan.Capacity.Cap(step, a)
			if c < 0 {
				c = 0
			}
		}
		eff[f.ids[i]] = c
		if c > 0 {
			_ = g.AddArc(a.From, a.To, c) // arcs are valid by construction
		}
	}
	return &core.Instance{G: g, NumTokens: f.inst.NumTokens, Have: f.inst.Have, Want: f.inst.Want}
}

// Lost implements sim.LossPolicy via the plan's deterministic loss model;
// the per-arc k index advances for every accepted move, dropped or not.
func (f *faultKernel) Lost(step int, mv core.Move, arcID int) bool {
	if step != f.lossStep {
		clear(f.lossK)
		f.lossStep = step
	}
	k := f.lossK[arcID]
	f.lossK[arcID]++
	return f.plan.Loss.Drop(step, mv.From, mv.To, k)
}

// detect grows the per-receiver undeliverable-token sets: a missing token
// is undeliverable when no copy survives on any vertex that is not
// permanently down, or when no surviving holder reaches the receiver
// through the subgraph of non-permanently-down vertices and
// non-permanently-severed arcs. All conditions are monotone — permanent
// failures accumulate and extinct tokens stay extinct — so the sets only
// ever grow and detection need only run when a fault transition occurs
// (plus once at finalization, to pick up permanent partitions that sever
// arcs without any vertex transition).
//
// Transiently-down vertices keep their place in the reachability graph:
// they will return (with whatever possession the state-loss policy left
// them), so their wants and holdings still count. Likewise transiently
// severed arcs stay: they will heal.
func detect(inst *core.Instance, possess []tokenset.Set, perm []bool, severed func(from, to int) bool, unsat []tokenset.Set) {
	n := inst.N()
	g := graph.New(n)
	for _, a := range inst.G.Arcs() {
		if !perm[a.From] && !perm[a.To] && !severed(a.From, a.To) {
			_ = g.AddArc(a.From, a.To, a.Cap) // valid by construction
		}
	}
	reachable := tokenset.New(inst.NumTokens)
	for v := 0; v < n; v++ {
		missing := inst.Want[v].Difference(possess[v])
		if missing.Empty() {
			continue
		}
		if perm[v] {
			// A permanently-dead receiver can never take delivery.
			unsat[v].UnionWith(missing)
			continue
		}
		dist := g.BFSTo(v)
		reachable.Clear()
		for u := 0; u < n; u++ {
			if dist[u] >= 0 && !perm[u] {
				reachable.UnionWith(possess[u])
			}
		}
		missing.DifferenceWith(reachable)
		unsat[v].UnionWith(missing)
	}
}

// settled reports whether every remaining missing token is proven
// undeliverable — the graceful-termination condition.
func settled(inst *core.Instance, possess []tokenset.Set, unsat []tokenset.Set) bool {
	any := false
	for v := range possess {
		missing := inst.Want[v].Difference(possess[v])
		if missing.Empty() {
			continue
		}
		if !missing.SubsetOf(unsat[v]) {
			return false
		}
		any = true
	}
	return any
}

// deliveredFraction is the fraction of all want-set entries satisfied.
func deliveredFraction(inst *core.Instance, possess []tokenset.Set) float64 {
	wanted, got := 0, 0
	for v := range possess {
		wanted += inst.Want[v].Count()
		got += inst.Want[v].IntersectionCount(possess[v])
	}
	if wanted == 0 {
		return 1
	}
	return float64(got) / float64(wanted)
}

// receiverReports lists receivers left with undeliverable wants.
func receiverReports(inst *core.Instance, possess []tokenset.Set, unsat []tokenset.Set) []Receiver {
	var out []Receiver
	for v := range possess {
		missing := inst.Want[v].Difference(possess[v])
		undeliverable := missing.IntersectionCount(unsat[v])
		if undeliverable == 0 {
			continue
		}
		out = append(out, Receiver{
			V:             v,
			Wanted:        inst.Want[v].Count(),
			Got:           inst.Want[v].IntersectionCount(possess[v]),
			Undeliverable: undeliverable,
		})
	}
	return out
}

// Validate replays a faulted schedule against the instance and plan,
// checking that every recorded move used an existing arc within the step's
// effective capacity (crashes and the capacity model applied), that no
// move touched a crashed or churned-away vertex or crossed a severed arc,
// and that every sender possessed the token at the start of the timestep —
// with the plan's crash/churn transitions and state-loss policies replayed
// on possession. Unlike core.Validate it does not require the schedule to
// satisfy every want: faulted runs may legitimately end partial. Lost
// moves are not recorded in the schedule, so delivered traffic is a lower
// bound on each arc's usage.
func Validate(inst *core.Instance, sched *core.Schedule, plan Plan) error {
	plan = plan.normalized()
	n := inst.N()
	possess := inst.InitialPossession()
	prevDown := make([]bool, n)
	down := make([]bool, n)
	aware, _ := plan.Capacity.(dynamic.PossessionAware)
	used := make(map[[2]int]int)

	for i, st := range sched.Steps {
		for v := 0; v < n; v++ {
			crashed := plan.Crashes.Down(i, v)
			away := plan.Churn.Away(i, v)
			down[v] = crashed || away
			if down[v] && !prevDown[v] {
				if away {
					possess[v].Clear()
				} else {
					switch plan.StateLoss {
					case DropDownloads:
						possess[v].CopyFrom(inst.Have[v])
					case DropAll:
						possess[v].Clear()
					}
				}
			}
			prevDown[v] = down[v]
		}
		if aware != nil {
			aware.Observe(i, possess)
		}
		for k := range used {
			delete(used, k)
		}
		for _, mv := range st {
			if down[mv.From] || down[mv.To] {
				return fmt.Errorf("fault: step %d move %v: endpoint crashed or away", i, mv)
			}
			if plan.Partitions.Severed(i, mv.From, mv.To) {
				return fmt.Errorf("fault: step %d move %v: arc severed by partition", i, mv)
			}
			base := inst.G.Cap(mv.From, mv.To)
			if base == 0 {
				return fmt.Errorf("fault: step %d move %v: arc does not exist", i, mv)
			}
			capacity := plan.Capacity.Cap(i, graph.Arc{From: mv.From, To: mv.To, Cap: base})
			key := [2]int{mv.From, mv.To}
			used[key]++
			if used[key] > capacity {
				return fmt.Errorf("fault: step %d move %v: effective capacity %d exceeded", i, mv, capacity)
			}
			if !possess[mv.From].Has(mv.Token) {
				return fmt.Errorf("fault: step %d move %v: sender lacks token", i, mv)
			}
		}
		for _, mv := range st {
			possess[mv.To].Add(mv.Token)
		}
	}
	return nil
}
