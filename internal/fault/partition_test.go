package fault

import (
	"errors"
	"reflect"
	"testing"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/sim"
)

func TestPartitionScheduleDelaysButCompletes(t *testing.T) {
	inst := lineInstance(t, 3, 2, 2)
	plan := Plan{Partitions: PartitionSchedule{Events: CutEdge(1, 2, 0, 3)}}
	opts := sim.Options{Seed: 1, IdlePatience: 10}

	res, err := Run(inst, pusherFactory, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Liveness != LivenessComplete {
		t.Fatalf("completed=%v liveness=%q, want completion once the cut heals",
			res.Completed, res.Liveness)
	}
	base, err := Run(inst, pusherFactory, Plan{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps <= base.Steps {
		t.Errorf("partitioned run took %d steps, not more than fault-free %d",
			res.Steps, base.Steps)
	}
	if err := Validate(inst, res.Schedule, plan); err != nil {
		t.Errorf("partitioned schedule fails plan replay: %v", err)
	}
}

func TestPermanentPartitionSettlesUnsatisfiable(t *testing.T) {
	// Sever the only path into the tail forever: the wants behind the cut
	// are provably undeliverable, so the run must settle gracefully well
	// before the horizon and classify as unsatisfiable.
	inst := lineInstance(t, 3, 4, 2)
	plan := Plan{Partitions: PartitionSchedule{Events: CutEdge(1, 2, 1, -1)}}
	res, err := Run(inst, pusherFactory, plan, sim.Options{Seed: 1, IdlePatience: 5})
	if err != nil {
		t.Fatalf("graceful settlement expected, got %v", err)
	}
	if res.Completed || !res.Graceful {
		t.Fatalf("completed=%v graceful=%v, want graceful partial", res.Completed, res.Graceful)
	}
	if res.Liveness != LivenessUnsatisfiable {
		t.Errorf("liveness %q, want %q", res.Liveness, LivenessUnsatisfiable)
	}
	if len(res.Unsatisfiable) != 1 || res.Unsatisfiable[0].V != 2 {
		t.Errorf("unsatisfiable receivers %+v, want vertex 2", res.Unsatisfiable)
	}
}

func TestTransientPartitionStallIsHealable(t *testing.T) {
	// A long-but-healing cut with short patience: the run stalls, but the
	// classifier must report the stall as healable — the missing tokens are
	// still held by live vertices that the healed overlay can reach.
	inst := lineInstance(t, 3, 4, 2)
	plan := Plan{Partitions: PartitionSchedule{Events: CutEdge(1, 2, 1, 1000)}}
	res, err := Run(inst, pusherFactory, plan, sim.Options{Seed: 1, IdlePatience: 3, MaxSteps: 40})
	if !errors.Is(err, sim.ErrStalled) {
		t.Fatalf("expected a stall behind the transient cut, got %v", err)
	}
	if res.Liveness != LivenessHealable {
		t.Errorf("liveness %q, want %q", res.Liveness, LivenessHealable)
	}
	if res.Graceful {
		t.Error("a healable stall must not be reported as graceful settlement")
	}
}

func TestChurnWipesStateAndRejoinsEmpty(t *testing.T) {
	// The middle relay leaves with downloads in hand and rejoins empty;
	// the pusher re-sends and the run still completes. Even under the
	// state-preserving crash policy (KeepState), churn must wipe.
	inst := lineInstance(t, 3, 3, 1)
	plan := Plan{
		StateLoss: KeepState,
		Churn:     ChurnSchedule{Events: []ChurnEvent{{V: 1, At: 2, RejoinAt: 4}}},
	}
	res, err := Run(inst, pusherFactory, plan, sim.Options{Seed: 1, IdlePatience: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete after the churned member rejoined")
	}
	if res.Departures != 1 {
		t.Errorf("Departures = %d, want 1", res.Departures)
	}
	if res.AwaySteps != 2 {
		t.Errorf("AwaySteps = %d, want 2", res.AwaySteps)
	}
	if res.Crashes != 0 {
		t.Errorf("Crashes = %d, want 0 — departures must not count as crashes", res.Crashes)
	}
	if res.WastedMoves == 0 {
		t.Error("wiped downloads were not charged as wasted moves")
	}
	if res.Retransmissions == 0 {
		t.Error("re-downloads after the wipe were not counted as retransmissions")
	}
	if err := Validate(inst, res.Schedule, plan); err != nil {
		t.Errorf("churned schedule fails plan replay: %v", err)
	}
}

func TestPermanentChurnOfSoleHolderIsUnsatisfiable(t *testing.T) {
	inst := lineInstance(t, 3, 4, 2)
	plan := Plan{Churn: ChurnSchedule{Events: []ChurnEvent{{V: 0, At: 1, RejoinAt: -1}}}}
	res, err := Run(inst, pusherFactory, plan, sim.Options{Seed: 1, IdlePatience: 5})
	if err != nil {
		t.Fatalf("graceful settlement expected, got %v", err)
	}
	if !res.Graceful || res.Liveness != LivenessUnsatisfiable {
		t.Fatalf("graceful=%v liveness=%q, want graceful unsatisfiable",
			res.Graceful, res.Liveness)
	}
}

func TestValidateRejectsSeveredMove(t *testing.T) {
	inst := lineInstance(t, 2, 1, 1)
	sched := &core.Schedule{Steps: []core.Step{{{From: 0, To: 1, Token: 0}}}}
	plan := Plan{Partitions: PartitionSchedule{Events: []PartitionEvent{{From: 0, To: 1, At: 0, HealAt: -1}}}}
	if err := Validate(inst, sched, plan); err == nil {
		t.Fatal("Validate accepted a move across a severed arc")
	}
}

func TestRandomPartitionsSidesAndEpisodes(t *testing.T) {
	m := NewRandomPartitions(3, 0.2, 4, 7)
	sides := make(map[int]bool)
	for v := 0; v < 64; v++ {
		s := m.Side(v)
		if s < 0 || s >= 3 {
			t.Fatalf("Side(%d) = %d, outside [0,3)", v, s)
		}
		sides[s] = true
		if m.Side(v) != s {
			t.Fatal("Side is not stable")
		}
	}
	if len(sides) < 2 {
		t.Fatal("64 vertices hashed onto fewer than 2 sides")
	}
	// Same-side arcs never sever; cross-side arcs sever exactly during
	// episodes, and every episode runs HealAfter consecutive steps.
	var u, v int
	for v = 1; v < 64 && m.Side(0) == m.Side(v); v++ {
	}
	for u = 1; u < 64 && m.Side(0) != m.Side(u); u++ {
	}
	run := 0
	sawEpisode := false
	for step := 0; step < 400; step++ {
		if m.Severed(step, 0, u) {
			t.Fatalf("same-side arc severed at step %d", step)
		}
		if m.Severed(step, 0, v) {
			run++
			sawEpisode = true
		} else {
			if run != 0 && run%4 != 0 {
				t.Fatalf("episode ending at step %d lasted %d steps, want a multiple of 4", step, run)
			}
			run = 0
		}
		if m.Permanent(step, 0, v) {
			t.Fatalf("healing model reported a permanent cut at step %d", step)
		}
	}
	if !sawEpisode {
		t.Fatal("no partition episode in 400 steps at StartP=0.2")
	}
}

func TestRandomPartitionsPermanentNeverHeals(t *testing.T) {
	m := NewRandomPartitions(2, 0.3, -1, 11)
	var v int
	for v = 1; v < 64 && m.Side(0) == m.Side(v); v++ {
	}
	started := -1
	for step := 0; step < 200; step++ {
		if m.Severed(step, 0, v) {
			started = step
			break
		}
	}
	if started < 0 {
		t.Fatal("no episode started in 200 steps at StartP=0.3")
	}
	for step := started; step < started+50; step++ {
		if !m.Severed(step, 0, v) {
			t.Fatalf("permanent partition healed at step %d", step)
		}
		if !m.Permanent(step, 0, v) {
			t.Fatalf("permanent cut not reported as permanent at step %d", step)
		}
	}
}

func TestRandomChurnReplayAndProtect(t *testing.T) {
	a := NewRandomChurn(0.2, 0.3, 5, 0)
	b := NewRandomChurn(0.2, 0.3, 5, 0)
	anyAway := false
	for step := 0; step < 100; step++ {
		for v := 0; v < 8; v++ {
			if a.Away(step, v) != b.Away(step, v) {
				t.Fatalf("same-seed churn diverged at step %d vertex %d", step, v)
			}
			if v == 0 && a.Away(step, v) {
				t.Fatalf("protected vertex 0 left at step %d", step)
			}
			anyAway = anyAway || a.Away(step, v)
			if a.Gone(step, v) {
				t.Fatalf("RejoinP>0 churn reported a permanent exit at step %d", step)
			}
		}
	}
	if !anyAway {
		t.Fatal("no departures in 100 steps at LeaveP=0.2")
	}
	// Churn and crashes from the same seed must stay independent streams.
	c := NewRandomCrashes(0.2, 0.3, 5)
	identical := true
	for step := 0; step < 100 && identical; step++ {
		for v := 1; v < 8; v++ {
			if a.Away(step, v) != c.Down(step, v) {
				identical = false
				break
			}
		}
	}
	if identical {
		t.Fatal("same-seed churn and crash trajectories are identical — streams not salted apart")
	}
}

func TestPlanDownAtAndEffectiveCapacity(t *testing.T) {
	plan := Plan{
		Crashes:    CrashSchedule{Events: []CrashEvent{{V: 1, At: 0, RecoverAt: 2}}},
		Churn:      ChurnSchedule{Events: []ChurnEvent{{V: 2, At: 0, RejoinAt: 3}}},
		Partitions: PartitionSchedule{Events: []PartitionEvent{{From: 3, To: 4, At: 0, HealAt: 1}}},
	}
	if !plan.DownAt(0, 1) || !plan.DownAt(0, 2) || plan.DownAt(0, 3) {
		t.Error("DownAt must cover crashes and churn, and only them")
	}
	if plan.DownAt(2, 1) || plan.DownAt(3, 2) {
		t.Error("DownAt must clear after recovery/rejoin")
	}
	arc := graph.Arc{From: 3, To: 4, Cap: 2}
	if got := plan.EffectiveCapacity(0, arc); got != 0 {
		t.Errorf("severed arc capacity = %d, want 0", got)
	}
	if got := plan.EffectiveCapacity(1, arc); got != 2 {
		t.Errorf("healed arc capacity = %d, want 2", got)
	}
	if got := plan.EffectiveCapacity(0, graph.Arc{From: 1, To: 3, Cap: 5}); got != 0 {
		t.Errorf("crashed-endpoint arc capacity = %d, want 0", got)
	}
}

// TestPartitionChurnReplayByteIdentical is the golden determinism check
// from the issue: the same seeded partition+churn plan, run twice, must
// produce byte-identical schedules and identical degradation metrics.
func TestPartitionChurnReplayByteIdentical(t *testing.T) {
	inst := lineInstance(t, 5, 4, 2)
	mk := func() Plan {
		return Plan{
			Partitions: NewRandomPartitions(2, 0.1, 3, 42),
			Churn:      NewRandomChurn(0.05, 0.5, 42, 0),
			Crashes:    NewRandomCrashes(0.03, 0.5, 42),
			Loss:       Bernoulli{P: 0.05, Seed: 42},
		}
	}
	opts := sim.Options{Seed: 9, IdlePatience: 25}
	a, errA := Run(inst, pusherFactory, mk(), opts)
	b, errB := Run(inst, pusherFactory, mk(), opts)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("replay error mismatch: %v vs %v", errA, errB)
	}
	if !reflect.DeepEqual(a.Schedule, b.Schedule) {
		t.Fatal("identical seeded partition+churn plans produced different schedules")
	}
	if a.Departures != b.Departures || a.Crashes != b.Crashes ||
		a.AwaySteps != b.AwaySteps || a.DownSteps != b.DownSteps ||
		a.Liveness != b.Liveness || a.DeliveredFraction != b.DeliveredFraction {
		t.Fatalf("replay metrics diverged: %+v vs %+v", a, b)
	}
	if errA == nil {
		if err := Validate(inst, a.Schedule, mk()); err != nil {
			t.Errorf("replayed schedule fails plan validation: %v", err)
		}
	}
}
