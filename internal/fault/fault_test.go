package fault

import (
	"fmt"
	"testing"
)

// trace renders a loss model's drop decisions over a window as a string,
// so replay comparisons are byte-exact.
func lossTrace(m LossModel, steps, n, k int) string {
	s := ""
	for step := 0; step < steps; step++ {
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				for i := 0; i < k; i++ {
					if m.Drop(step, from, to, i) {
						s += "1"
					} else {
						s += "0"
					}
				}
			}
		}
	}
	return s
}

func crashTrace(m CrashModel, steps, n int) string {
	s := ""
	for step := 0; step < steps; step++ {
		for v := 0; v < n; v++ {
			switch {
			case m.Permanent(step, v):
				s += "P"
			case m.Down(step, v):
				s += "D"
			default:
				s += "."
			}
		}
	}
	return s
}

func TestLossModelsReplayByteIdentical(t *testing.T) {
	build := []func() LossModel{
		func() LossModel { return Bernoulli{P: 0.3, Seed: 7} },
		func() LossModel {
			return PerArc{Rates: map[[2]int]float64{{0, 1}: 0.9}, Default: 0.1, Seed: 7}
		},
		func() LossModel { return NewGilbertElliott(0.2, 0.3, 0.05, 0.8, 7) },
	}
	for _, b := range build {
		a, c := b(), b()
		ta := lossTrace(a, 30, 4, 3)
		tc := lossTrace(c, 30, 4, 3)
		if ta != tc {
			t.Errorf("%s: fresh replay diverged", a.Name())
		}
		// Replaying the same (memoizing) value must also be stable.
		if ta != lossTrace(a, 30, 4, 3) {
			t.Errorf("%s: second query pass diverged", a.Name())
		}
	}
}

func TestGilbertElliottRandomAccessMatchesSequential(t *testing.T) {
	a := NewGilbertElliott(0.3, 0.2, 0.0, 1.0, 11)
	b := NewGilbertElliott(0.3, 0.2, 0.0, 1.0, 11)
	// Query b out of order; per-arc chain memoization must not depend on
	// query order.
	outOfOrder := []int{25, 3, 17, 0, 25, 9}
	for _, step := range outOfOrder {
		b.Drop(step, 1, 2, 0)
	}
	for step := 0; step < 30; step++ {
		if a.Drop(step, 1, 2, 0) != b.Drop(step, 1, 2, 0) {
			t.Fatalf("step %d: query order changed the trajectory", step)
		}
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	// LossGood=0, LossBad=1 makes drops exactly the bad-state trajectory:
	// check losses come in runs rather than isolated coin flips.
	m := NewGilbertElliott(0.1, 0.3, 0, 1, 3)
	runs, lossSteps := 0, 0
	inRun := false
	for step := 0; step < 2000; step++ {
		d := m.Drop(step, 0, 1, 0)
		if d {
			lossSteps++
			if !inRun {
				runs++
			}
		}
		inRun = d
	}
	if lossSteps == 0 {
		t.Fatal("bad state never entered over 2000 steps")
	}
	meanRun := float64(lossSteps) / float64(runs)
	if meanRun < 2 {
		t.Errorf("mean burst length %.2f; want >= 2 (1/PBadGood ≈ 3.3)", meanRun)
	}
}

func TestCrashScheduleSemantics(t *testing.T) {
	m := CrashSchedule{Events: []CrashEvent{
		{V: 1, At: 2, RecoverAt: 5},  // crash-recovery
		{V: 2, At: 3, RecoverAt: -1}, // crash-stop
	}}
	cases := []struct {
		step, v    int
		down, perm bool
	}{
		{0, 1, false, false},
		{2, 1, true, false},
		{4, 1, true, false},
		{5, 1, false, false},
		{2, 2, false, false},
		{3, 2, true, true},
		{100, 2, true, true},
		{3, 0, false, false},
	}
	for _, c := range cases {
		if got := m.Down(c.step, c.v); got != c.down {
			t.Errorf("Down(%d, %d) = %v, want %v", c.step, c.v, got, c.down)
		}
		if got := m.Permanent(c.step, c.v); got != c.perm {
			t.Errorf("Permanent(%d, %d) = %v, want %v", c.step, c.v, got, c.perm)
		}
	}
}

func TestRandomCrashesReplayAndProtect(t *testing.T) {
	a := NewRandomCrashes(0.2, 0.3, 5, 0)
	b := NewRandomCrashes(0.2, 0.3, 5, 0)
	if ta, tb := crashTrace(a, 50, 6), crashTrace(b, 50, 6); ta != tb {
		t.Error("fresh replay diverged")
	}
	downs := 0
	for step := 0; step < 200; step++ {
		if a.Down(step, 0) {
			t.Fatalf("protected vertex 0 down at step %d", step)
		}
		for v := 1; v < 6; v++ {
			if a.Down(step, v) {
				downs++
			}
			if a.Permanent(step, v) {
				t.Fatalf("RecoverP > 0 but Permanent(%d, %d)", step, v)
			}
		}
	}
	if downs == 0 {
		t.Error("no vertex ever crashed at CrashP=0.2")
	}
}

func TestRandomCrashesZeroRecoverIsPermanent(t *testing.T) {
	m := NewRandomCrashes(0.5, 0, 9)
	found := false
	for step := 0; step < 50 && !found; step++ {
		for v := 0; v < 4; v++ {
			if m.Down(step, v) {
				if !m.Permanent(step, v) {
					t.Fatalf("down vertex %d at step %d not permanent with RecoverP=0", v, step)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("nobody crashed at CrashP=0.5 over 50 steps")
	}
}

func TestPlanNameAndIntensity(t *testing.T) {
	if (Plan{}).Name() == "" {
		t.Error("zero plan has empty name")
	}
	p := AtIntensity(0.5, 1, 0)
	if p.Loss == nil || p.Crashes == nil || p.Gossip == nil {
		t.Fatal("intensity 0.5 plan missing models")
	}
	if p.Crashes.Down(10, 0) {
		// Statistically possible only if Protect was dropped; vertex 0 is
		// protected so this must never fire.
		t.Error("protected source crashed in canonical plan")
	}
	if z := AtIntensity(0, 1); z.Loss != nil || z.Crashes != nil {
		t.Error("intensity 0 should be the fault-free plan")
	}
	// Plans are replayable: same intensity and seed → identical traces.
	q := AtIntensity(0.5, 1, 0)
	if lossTrace(p.Loss, 20, 3, 2) != lossTrace(q.Loss, 20, 3, 2) ||
		crashTrace(p.Crashes, 20, 3) != crashTrace(q.Crashes, 20, 3) {
		t.Error("canonical plan replay diverged")
	}
}

func TestGossipLossDeterministic(t *testing.T) {
	a, b := GossipLoss{P: 0.4, Seed: 2}, GossipLoss{P: 0.4, Seed: 2}
	drops := 0
	for step := 0; step < 50; step++ {
		for u := 0; u < 4; u++ {
			for v := 0; v < 4; v++ {
				if a.Drop(step, u, v) != b.Drop(step, u, v) {
					t.Fatal("gossip replay diverged")
				}
				if a.Drop(step, u, v) {
					drops++
				}
			}
		}
	}
	if drops == 0 {
		t.Error("no gossip ever dropped at P=0.4")
	}
}

func TestStateLossString(t *testing.T) {
	for policy, want := range map[StateLoss]string{
		KeepState: "keep-state", DropDownloads: "drop-downloads", DropAll: "drop-all",
	} {
		if got := fmt.Sprint(policy); got != want {
			t.Errorf("StateLoss(%d) = %q, want %q", policy, got, want)
		}
	}
}
