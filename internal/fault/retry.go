package fault

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"ocd/internal/core"
	"ocd/internal/sim"
)

// ErrRetriesExhausted marks a request the retry wrapper gave up on: every
// allowed attempt was spent and the token never arrived. The wrapper keeps
// planning after exhaustion — other requests may still succeed — but
// records the first exhaustion and surfaces it through Err, so a stalled
// run's error explains which delivery the wrapper abandoned.
var ErrRetriesExhausted = errors.New("retries exhausted")

// RetryOptions configures the retry-with-backoff wrapper.
type RetryOptions struct {
	// MaxAttempts caps the retries per (receiver, token) request; 0 means
	// the default of 4. The original send does not count as an attempt.
	MaxAttempts int
	// BackoffBase is the delay in steps before the first retry; each
	// further retry doubles it, capped at BackoffCap. Zeros mean the
	// defaults of 1 and 8.
	BackoffBase, BackoffCap int
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 1
	}
	if o.BackoffCap == 0 {
		o.BackoffCap = 8
	}
	return o
}

// pending is one outstanding request: a move whose token has not yet shown
// up at its destination.
type pending struct {
	from     int
	attempts int
	due      int
}

// retryStrategy wraps an inner strategy and re-requests tokens lost in
// transit. It watches possession between turns: a move proposed at step s
// whose token is still absent from the receiver at a later step was either
// rejected or lost, so the wrapper re-issues it with exponential backoff —
// from the original sender if it still holds the token on a live arc, else
// from any current in-neighbor holder. Retries are emitted ahead of the
// inner strategy's fresh moves so they get first claim on arc capacity.
type retryStrategy struct {
	inner   sim.Strategy
	opts    RetryOptions
	pending map[[2]int]*pending // (to, token) → request
	err     error               // first exhaustion, reported via Err
}

// WithRetry wraps a strategy factory with the retry-with-backoff layer.
// The facade name composes as retry(<inner>) — experiment tables key on it.
func WithRetry(inner sim.Factory, opts RetryOptions) sim.Factory {
	return sim.WrapStrategy(inner, func(_ *core.Instance, s sim.Strategy) (sim.Strategy, error) {
		return &retryStrategy{
			inner:   s,
			opts:    opts.withDefaults(),
			pending: make(map[[2]int]*pending),
		}, nil
	})
}

func (r *retryStrategy) Name() string { return fmt.Sprintf("retry(%s)", r.inner.Name()) }

var _ sim.Failer = (*retryStrategy)(nil)

func (r *retryStrategy) Plan(st *sim.State) []core.Move {
	// Reap delivered and exhausted requests. Map iteration order is
	// randomized, so collect keys and sort to keep runs replayable.
	keys := make([][2]int, 0, len(r.pending))
	for key := range r.pending {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	var moves []core.Move
	claimed := make(map[[2]int]bool, len(r.pending))
	for _, key := range keys {
		p := r.pending[key]
		to, token := key[0], key[1]
		if st.Possess[to].Has(token) {
			delete(r.pending, key)
			continue
		}
		if p.attempts >= r.opts.MaxAttempts {
			if r.err == nil {
				r.err = fmt.Errorf("%w: token %d never reached vertex %d after %d attempts (strategy %s)",
					ErrRetriesExhausted, token, to, p.attempts, r.inner.Name())
			}
			delete(r.pending, key)
			continue
		}
		if p.due > st.Step {
			continue
		}
		from := r.pickSender(st, to, token, p.from)
		if from < 0 {
			// No live holder adjacent right now; check again next step
			// without burning an attempt.
			p.due = st.Step + 1
			continue
		}
		p.from = from
		p.attempts++
		p.due = st.Step + r.backoff(p.attempts)
		claimed[key] = true
		moves = append(moves, core.Move{From: from, To: to, Token: token})
	}

	// Fresh moves from the inner strategy, registered for tracking; skip
	// any (to, token) a retry already covers this turn.
	for _, mv := range r.inner.Plan(st) {
		key := [2]int{mv.To, mv.Token}
		if claimed[key] {
			continue
		}
		if _, ok := r.pending[key]; !ok {
			r.pending[key] = &pending{from: mv.From, due: st.Step + r.backoff(1)}
		}
		moves = append(moves, mv)
	}
	return moves
}

// Err reports the first exhausted request, if any. It implements
// sim.Failer: the engines join it onto a stall error so the failure names
// the abandoned delivery and the wrapped strategy.
func (r *retryStrategy) Err() error { return r.err }

// backoff is the delay before the attempt-th retry: base·2^(attempt−1),
// capped. One shift instead of a doubling loop; the Len guard keeps the
// shift in range, since any shift past the cap's bit length saturates
// anyway.
func (r *retryStrategy) backoff(attempt int) int {
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift >= bits.Len(uint(r.opts.BackoffCap)) || r.opts.BackoffBase<<shift > r.opts.BackoffCap {
		return r.opts.BackoffCap
	}
	return r.opts.BackoffBase << shift
}

// pickSender returns a vertex currently holding token with a live arc into
// to, preferring the previous sender; -1 if none exists this step.
// st.Inst is the step's effective view, so crashed vertices and failed
// links are already excluded.
func (r *retryStrategy) pickSender(st *sim.State, to, token, prev int) int {
	if prev >= 0 && st.Inst.G.Cap(prev, to) > 0 && st.Possess[prev].Has(token) {
		return prev
	}
	for _, a := range st.Inst.G.In(to) {
		if st.Possess[a.From].Has(token) {
			return a.From
		}
	}
	return -1
}
