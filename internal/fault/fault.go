// Package fault implements the paper's §6 failure scenarios as composable,
// deterministic fault plans: per-arc heterogeneous message loss (uniform
// Bernoulli, per-arc rates, and a bursty Gilbert–Elliott channel),
// crash-stop and crash-recovery vertex failures with a configurable
// state-loss policy, and gossip loss for the message-passing protocol.
//
// Every model is a pure function of (seed, step) — stochastic trajectories
// such as the Gilbert–Elliott channel state or the crash/recover chain are
// derived by hashing (seed, step, identity) and memoized, never drawn from
// a shared mutable PRNG — so a faulted run is exactly replayable from its
// plan: identical seeds produce identical fault traces and therefore
// identical schedules, and a recorded schedule can be post-validated
// against the plan (see Validate in this package).
package fault

import (
	"fmt"

	"ocd/internal/dynamic"
	"ocd/internal/graph"
)

// mix hashes (seed, a, b, c, d) into a uniform 64-bit value — the
// deterministic randomness source for every model in this package. Each
// operand is folded in through a full murmur3 fmix64 round: per-move draws
// (the k operand) must be independent even when every other operand is
// identical, which weaker boost-style accumulation does not deliver.
func mix(seed int64, a, b, c, d int) uint64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, x := range [4]int{a, b, c, d} {
		h ^= uint64(x)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
		h ^= h >> 33
	}
	return h
}

// frac converts a hash to [0,1).
func frac(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// LossModel decides, deterministically, whether a move is lost in transit.
type LossModel interface {
	Name() string
	// Drop reports whether the k-th accepted move on arc from→to at the
	// given step is lost. k indexes the accepted moves of that arc within
	// the step (including moves that are themselves dropped), so each move
	// gets an independent deterministic draw.
	Drop(step, from, to, k int) bool
}

// NoLoss delivers everything — the fault-free baseline.
type NoLoss struct{}

// Name implements LossModel.
func (NoLoss) Name() string { return "no-loss" }

// Drop implements LossModel.
func (NoLoss) Drop(int, int, int, int) bool { return false }

// Bernoulli drops each move independently with probability P — the uniform
// model Options.LossRate already provides, recast as a replayable plan.
type Bernoulli struct {
	P    float64
	Seed int64
}

// Name implements LossModel.
func (m Bernoulli) Name() string { return fmt.Sprintf("bernoulli(%.2f)", m.P) }

// Drop implements LossModel.
func (m Bernoulli) Drop(step, from, to, k int) bool {
	return frac(mix(m.Seed, step, from^(to<<16), to, k)) < m.P
}

// PerArc drops moves with a per-arc probability, modelling heterogeneous
// link quality: lossy access links next to clean backbone links.
type PerArc struct {
	// Rates maps [2]int{from, to} to that arc's loss probability.
	Rates map[[2]int]float64
	// Default applies to arcs absent from Rates.
	Default float64
	Seed    int64
}

// Name implements LossModel.
func (m PerArc) Name() string {
	return fmt.Sprintf("per-arc(%d arcs, default %.2f)", len(m.Rates), m.Default)
}

// Drop implements LossModel.
func (m PerArc) Drop(step, from, to, k int) bool {
	p, ok := m.Rates[[2]int{from, to}]
	if !ok {
		p = m.Default
	}
	return frac(mix(m.Seed, step, from^(to<<16), to, k)) < p
}

// chain is a deterministic two-state Markov trajectory per identity pair:
// state false→true with probability p01, true→false with probability p10,
// transitions driven by hashed (seed, step, id) draws. Trajectories are
// memoized so arbitrary-step queries stay amortized O(1); two chains built
// with the same parameters produce byte-identical trajectories.
type chain struct {
	seed     int64
	p01, p10 float64
	states   map[[2]int][]bool
}

func newChain(seed int64, p01, p10 float64) *chain {
	return &chain{seed: seed, p01: p01, p10: p10, states: make(map[[2]int][]bool)}
}

// state returns the chain state at step for identity (a, b). All chains
// start in state false at step 0.
func (c *chain) state(step, a, b int) bool {
	if step < 0 {
		return false
	}
	key := [2]int{a, b}
	s := c.states[key]
	if s == nil {
		s = append(s, false)
	}
	for len(s) <= step {
		t := len(s) - 1
		cur := s[t]
		var next bool
		if cur {
			next = frac(mix(c.seed, t, a, b, 1)) >= c.p10
		} else {
			next = frac(mix(c.seed, t, a, b, 0)) < c.p01
		}
		s = append(s, next)
	}
	c.states[key] = s
	return s[step]
}

// GilbertElliott is the classic bursty-loss channel: each arc carries an
// independent two-state Markov chain (good/bad); moves are dropped with
// LossGood in the good state and LossBad in the bad state. Bursts model
// §6's "dynamic channel conditions (as in wireless networks)" far better
// than uniform Bernoulli loss. Construct with NewGilbertElliott; the value
// memoizes per-arc trajectories and is not safe for concurrent use.
type GilbertElliott struct {
	// PGoodBad is the per-step probability of entering the bad state;
	// PBadGood of leaving it. LossGood/LossBad are the per-move drop
	// probabilities in each state.
	PGoodBad, PBadGood float64
	LossGood, LossBad  float64
	Seed               int64
	c                  *chain
}

// NewGilbertElliott returns a bursty loss channel with the given transition
// and loss parameters.
func NewGilbertElliott(pGoodBad, pBadGood, lossGood, lossBad float64, seed int64) *GilbertElliott {
	return &GilbertElliott{
		PGoodBad: pGoodBad, PBadGood: pBadGood,
		LossGood: lossGood, LossBad: lossBad,
		Seed: seed,
		c:    newChain(seed, pGoodBad, pBadGood),
	}
}

// Name implements LossModel.
func (m *GilbertElliott) Name() string {
	return fmt.Sprintf("gilbert-elliott(%.2f→bad, loss %.2f/%.2f)", m.PGoodBad, m.LossGood, m.LossBad)
}

// Drop implements LossModel.
func (m *GilbertElliott) Drop(step, from, to, k int) bool {
	p := m.LossGood
	if m.c.state(step, from, to) {
		p = m.LossBad
	}
	return frac(mix(m.Seed, step, from^(to<<16), to, 2+k)) < p
}

// CrashModel decides, deterministically, which vertices are down at each
// step and whether a down vertex will ever return.
type CrashModel interface {
	Name() string
	// Down reports whether v is crashed (unable to send, receive, or plan)
	// at step.
	Down(step, v int) bool
	// Permanent reports whether v is down at step and will never recover —
	// crash-stop semantics. The engine's unsatisfiability detection removes
	// permanently-down vertices from the reachability graph.
	Permanent(step, v int) bool
}

// NoCrashes keeps every vertex up.
type NoCrashes struct{}

// Name implements CrashModel.
func (NoCrashes) Name() string { return "no-crashes" }

// Down implements CrashModel.
func (NoCrashes) Down(int, int) bool { return false }

// Permanent implements CrashModel.
func (NoCrashes) Permanent(int, int) bool { return false }

// CrashEvent scripts one failure: vertex V goes down at step At and
// recovers at step RecoverAt (exclusive). RecoverAt < 0 means crash-stop:
// the vertex never returns.
type CrashEvent struct {
	V         int
	At        int
	RecoverAt int
}

// CrashSchedule is an explicit scripted crash plan — the deterministic
// ground truth for targeted scenarios (kill the sole holder, partition a
// cluster) and regression tests.
type CrashSchedule struct {
	Events []CrashEvent
}

// Name implements CrashModel.
func (m CrashSchedule) Name() string { return fmt.Sprintf("scripted(%d events)", len(m.Events)) }

// Down implements CrashModel.
func (m CrashSchedule) Down(step, v int) bool {
	for _, e := range m.Events {
		if e.V == v && step >= e.At && (e.RecoverAt < 0 || step < e.RecoverAt) {
			return true
		}
	}
	return false
}

// Permanent implements CrashModel.
func (m CrashSchedule) Permanent(step, v int) bool {
	for _, e := range m.Events {
		if e.V == v && e.RecoverAt < 0 && step >= e.At {
			return true
		}
	}
	return false
}

// RandomCrashes fails vertices by an independent two-state chain: an up
// vertex crashes with probability CrashP per step, a down vertex recovers
// with probability RecoverP per step (RecoverP = 0 turns every crash into
// a crash-stop). Vertices in Protect — typically the sources — never fail.
// Construct with NewRandomCrashes; the value memoizes per-vertex
// trajectories and is not safe for concurrent use.
type RandomCrashes struct {
	CrashP, RecoverP float64
	Seed             int64
	Protect          []int
	c                *chain
}

// NewRandomCrashes returns the stochastic crash-recovery model.
func NewRandomCrashes(crashP, recoverP float64, seed int64, protect ...int) *RandomCrashes {
	return &RandomCrashes{
		CrashP: crashP, RecoverP: recoverP, Seed: seed,
		Protect: append([]int(nil), protect...),
		c:       newChain(seed, crashP, recoverP),
	}
}

// Name implements CrashModel.
func (m *RandomCrashes) Name() string {
	return fmt.Sprintf("random-crashes(%.3f up→down, %.2f down→up)", m.CrashP, m.RecoverP)
}

// Down implements CrashModel.
func (m *RandomCrashes) Down(step, v int) bool {
	for _, u := range m.Protect {
		if u == v {
			return false
		}
	}
	return m.c.state(step, v, -1)
}

// Permanent implements CrashModel.
func (m *RandomCrashes) Permanent(step, v int) bool {
	return m.RecoverP == 0 && m.Down(step, v)
}

// StateLoss selects what a vertex's possession looks like after a crash —
// the §6 "arrivals and departures" question of whether a rejoining peer
// still has what it downloaded.
type StateLoss int

const (
	// KeepState freezes possession across downtime: the vertex returns
	// with everything it had (durable storage).
	KeepState StateLoss = iota
	// DropDownloads reverts the vertex to its initial have set on crash:
	// downloaded tokens were volatile, the original content survives on
	// disk. The engine charges the destroyed deliveries to WastedMoves.
	DropDownloads
	// DropAll wipes possession entirely on crash — the vertex rejoins
	// empty. A sole holder crashing under DropAll makes its tokens
	// extinct, the strongest unsatisfiability scenario.
	DropAll
)

// String names the policy for tables and logs.
func (s StateLoss) String() string {
	switch s {
	case DropDownloads:
		return "drop-downloads"
	case DropAll:
		return "drop-all"
	default:
		return "keep-state"
	}
}

// GossipModel decides, deterministically, whether one per-turn knowledge
// exchange between neighbors is lost. It is consumed by the protocol
// strategies (internal/protocol), not by the engine: token moves and
// gossip messages fail independently.
type GossipModel interface {
	Name() string
	// Drop reports whether the knowledge message from→to at step is lost.
	Drop(step, from, to int) bool
}

// GossipLoss drops each knowledge exchange independently with
// probability P.
type GossipLoss struct {
	P    float64
	Seed int64
}

// Name implements GossipModel.
func (m GossipLoss) Name() string { return fmt.Sprintf("gossip-loss(%.2f)", m.P) }

// Drop implements GossipModel.
func (m GossipLoss) Drop(step, from, to int) bool {
	return frac(mix(m.Seed, step, from, to, 3)) < m.P
}

// Plan composes the fault dimensions of one run. The zero value is the
// fault-free plan; nil fields mean "no faults of that kind".
type Plan struct {
	// Loss drops token moves in transit.
	Loss LossModel
	// Crashes takes vertices down (and possibly back up).
	Crashes CrashModel
	// StateLoss is applied to a vertex's possession at the moment it
	// crashes. Churn departures ignore it: members always rejoin empty.
	StateLoss StateLoss
	// Partitions severs arcs while both endpoints stay up.
	Partitions PartitionModel
	// Churn removes members, who lose all state and rejoin empty.
	Churn ChurnModel
	// Capacity varies arc capacities between turns (the internal/dynamic
	// models); nil leaves capacities static. Crashed or churned-out
	// vertices and severed arcs override whatever the capacity model
	// says — they carry nothing.
	Capacity dynamic.Model
	// Gossip is carried along for protocol strategies (see
	// protocol.LocalWithGossipLoss); the engine itself does not consult it.
	Gossip GossipModel
}

// normalized returns the plan with nil models replaced by the fault-free
// defaults, so the engine never branches on nil.
func (p Plan) normalized() Plan {
	if p.Loss == nil {
		p.Loss = NoLoss{}
	}
	if p.Crashes == nil {
		p.Crashes = NoCrashes{}
	}
	if p.Partitions == nil {
		p.Partitions = NoPartitions{}
	}
	if p.Churn == nil {
		p.Churn = NoChurn{}
	}
	if p.Capacity == nil {
		p.Capacity = dynamic.Static{}
	}
	return p
}

// Name renders the plan for tables and logs.
func (p Plan) Name() string {
	q := p.normalized()
	s := fmt.Sprintf("%s + %s + %s", q.Loss.Name(), q.Crashes.Name(), p.StateLoss)
	if p.Partitions != nil {
		s += " + " + q.Partitions.Name()
	}
	if p.Churn != nil {
		s += " + " + q.Churn.Name()
	}
	if q.Capacity.Name() != (dynamic.Static{}).Name() {
		s += " + " + q.Capacity.Name()
	}
	if p.Gossip != nil {
		s += " + " + p.Gossip.Name()
	}
	return s
}

// DownAt reports whether v is out of service at step under the plan —
// crashed or churned out. It is the predicate the invariant monitor's
// down-vertex silence check consumes (trace.InvariantConfig.Down).
func (p Plan) DownAt(step, v int) bool {
	q := p.normalized()
	return q.Crashes.Down(step, v) || q.Churn.Away(step, v)
}

// EffectiveCapacity returns the plan's effective capacity for base arc a
// at step: zero when an endpoint is down or the arc is severed, else the
// capacity model's (clamped) value — exactly the admission bound the
// engine enforces. It is the hook the invariant monitor's capacity check
// consumes (trace.InvariantConfig.Capacity).
func (p Plan) EffectiveCapacity(step int, a graph.Arc) int {
	q := p.normalized()
	if q.Crashes.Down(step, a.From) || q.Crashes.Down(step, a.To) ||
		q.Churn.Away(step, a.From) || q.Churn.Away(step, a.To) ||
		q.Partitions.Severed(step, a.From, a.To) {
		return 0
	}
	c := q.Capacity.Cap(step, a)
	if c < 0 {
		c = 0
	}
	return c
}

// AtIntensity builds the canonical chaos plan at intensity x ∈ [0,1]: a
// Gilbert–Elliott channel whose bad state appears and bites more often as
// x grows, plus crash-recovery failures with volatile downloads. Vertices
// in protect (typically the sources) never crash, so the sweep measures
// degradation rather than trivial extinction; pair it with a
// CrashSchedule for the sole-holder scenarios. Intensity 0 is fault-free.
func AtIntensity(x float64, seed int64, protect ...int) Plan {
	if x <= 0 {
		return Plan{}
	}
	return Plan{
		Loss:      NewGilbertElliott(0.10*x, 0.25, 0.05*x, 0.4+0.5*x, seed),
		Crashes:   NewRandomCrashes(0.03*x, 0.25, seed+1, protect...),
		StateLoss: DropDownloads,
		Gossip:    GossipLoss{P: 0.5 * x, Seed: seed + 2},
	}
}
