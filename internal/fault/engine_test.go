package fault

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ocd/internal/core"
	"ocd/internal/dynamic"
	"ocd/internal/graph"
	"ocd/internal/sim"
)

// lineInstance is 0→1→…→n−1 with capacity c; vertex 0 holds m tokens, the
// tail wants them all.
func lineInstance(t *testing.T, n, m, c int) *core.Instance {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddArc(i, i+1, c); err != nil {
			t.Fatal(err)
		}
	}
	inst := core.NewInstance(g, m)
	inst.Have[0].AddRange(0, m)
	inst.Want[n-1].AddRange(0, m)
	return inst
}

// pusher sends every useful token to each successor up to capacity — a
// minimal correct strategy that retries implicitly (it re-sends whatever
// the receiver still lacks).
type pusher struct{}

func (pusher) Name() string { return "pusher" }

func (pusher) Plan(st *sim.State) []core.Move {
	var moves []core.Move
	for u := 0; u < st.Inst.N(); u++ {
		for _, a := range st.Inst.G.Out(u) {
			sent := 0
			st.Possess[u].ForEach(func(tok int) bool {
				if sent >= a.Cap {
					return false
				}
				if !st.Possess[a.To].Has(tok) {
					moves = append(moves, core.Move{From: u, To: a.To, Token: tok})
					sent++
				}
				return true
			})
		}
	}
	return moves
}

func pusherFactory(_ *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
	return pusher{}, nil
}

func TestFaultFreePlanMatchesStaticEngine(t *testing.T) {
	inst := lineInstance(t, 4, 3, 2)
	res, err := Run(inst, pusherFactory, Plan{}, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.Run(inst, pusherFactory, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Graceful {
		t.Fatalf("fault-free run: completed=%v graceful=%v", res.Completed, res.Graceful)
	}
	if !reflect.DeepEqual(res.Schedule, base.Schedule) {
		t.Error("fault-free plan diverged from the static engine")
	}
	if res.DeliveredFraction != 1 {
		t.Errorf("delivered fraction %v, want 1", res.DeliveredFraction)
	}
}

// TestCrashedSoleHolderTerminatesGracefully is the acceptance scenario:
// the sole holder crash-stops mid-run; the run must end well before the
// Theorem 1 horizon with an explicit unsatisfiable-receivers report and a
// partial delivered fraction — no patience-timeout stall — and identical
// seeds must reproduce the identical faulted schedule.
func TestCrashedSoleHolderTerminatesGracefully(t *testing.T) {
	inst := lineInstance(t, 3, 6, 2)
	plan := Plan{Crashes: CrashSchedule{Events: []CrashEvent{{V: 0, At: 1, RecoverAt: -1}}}}
	opts := sim.Options{Seed: 1, IdlePatience: 50}

	res, err := Run(inst, pusherFactory, plan, opts)
	if err != nil {
		t.Fatalf("graceful termination expected, got error %v", err)
	}
	if res.Completed {
		t.Fatal("run completed despite the source crashing with 4 tokens undelivered")
	}
	if !res.Graceful {
		t.Fatal("run did not terminate gracefully")
	}
	if res.Steps >= inst.TheoremOneHorizon() {
		t.Errorf("took %d steps, not before the horizon %d", res.Steps, inst.TheoremOneHorizon())
	}
	if len(res.Unsatisfiable) != 1 || res.Unsatisfiable[0].V != 2 {
		t.Fatalf("unsatisfiable receivers = %+v, want vertex 2", res.Unsatisfiable)
	}
	r := res.Unsatisfiable[0]
	if r.Wanted != 6 || r.Got != 2 || r.Undeliverable != 4 {
		t.Errorf("receiver report %+v, want 2/6 delivered with 4 undeliverable", r)
	}
	if want := 2.0 / 6.0; res.DeliveredFraction != want {
		t.Errorf("delivered fraction %v, want %v", res.DeliveredFraction, want)
	}
	if err := core.ValidateConstraints(inst, res.Schedule); err != nil {
		t.Errorf("partial schedule violates static constraints: %v", err)
	}
	if err := Validate(inst, res.Schedule, plan); err != nil {
		t.Errorf("partial schedule fails plan replay: %v", err)
	}

	again, err := Run(inst, pusherFactory, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Schedule, again.Schedule) {
		t.Error("identical seeds produced different faulted schedules")
	}
}

func TestInitialPartitionStopsImmediately(t *testing.T) {
	// 0→1 and 2→3 are separate components; 1 and 3 both want the file
	// held by 0. Receiver 3 is unsatisfiable from step 0; receiver 1 is
	// fine. The run must satisfy 1, then stop gracefully.
	g := graph.New(4)
	if err := g.AddArc(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddArc(2, 3, 2); err != nil {
		t.Fatal(err)
	}
	inst := core.NewInstance(g, 4)
	inst.Have[0].AddRange(0, 4)
	inst.Want[1].AddRange(0, 4)
	inst.Want[3].AddRange(0, 4)

	res, err := Run(inst, pusherFactory, Plan{}, sim.Options{Seed: 1, IdlePatience: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graceful || res.Completed {
		t.Fatalf("partitioned run: graceful=%v completed=%v", res.Graceful, res.Completed)
	}
	if len(res.Unsatisfiable) != 1 || res.Unsatisfiable[0].V != 3 {
		t.Fatalf("unsatisfiable = %+v, want vertex 3 only", res.Unsatisfiable)
	}
	if res.Unsatisfiable[0].Undeliverable != 4 {
		t.Errorf("undeliverable = %d, want 4", res.Unsatisfiable[0].Undeliverable)
	}
	if want := 0.5; res.DeliveredFraction != want {
		t.Errorf("delivered fraction %v, want %v (vertex 1 satisfied)", res.DeliveredFraction, want)
	}
}

func TestCrashRecoveryKeepStateCompletes(t *testing.T) {
	// The middle vertex goes down for a while with frozen state; the run
	// just takes longer.
	inst := lineInstance(t, 3, 4, 2)
	plan := Plan{
		Crashes:   CrashSchedule{Events: []CrashEvent{{V: 1, At: 1, RecoverAt: 5}}},
		StateLoss: KeepState,
	}
	res, err := Run(inst, pusherFactory, plan, sim.Options{Seed: 1, IdlePatience: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("crash-recovery run did not complete")
	}
	if res.Crashes != 1 || res.DownSteps != 4 {
		t.Errorf("crashes=%d downSteps=%d, want 1 and 4", res.Crashes, res.DownSteps)
	}
	if err := Validate(inst, res.Schedule, plan); err != nil {
		t.Errorf("replay validation: %v", err)
	}
}

func TestStateLossChargesWastedMoves(t *testing.T) {
	inst := lineInstance(t, 3, 4, 2)
	plan := Plan{
		Crashes:   CrashSchedule{Events: []CrashEvent{{V: 1, At: 2, RecoverAt: 3}}},
		StateLoss: DropDownloads,
	}
	res, err := Run(inst, pusherFactory, plan, sim.Options{Seed: 1, IdlePatience: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete after transient wipe")
	}
	if res.WastedMoves == 0 {
		t.Error("vertex 1 lost downloads but WastedMoves = 0")
	}
	if res.Retransmissions == 0 {
		t.Error("wiped tokens were re-delivered but Retransmissions = 0")
	}
	if err := Validate(inst, res.Schedule, plan); err != nil {
		t.Errorf("replay validation: %v", err)
	}
}

func TestDropAllMakesSoleTokensExtinct(t *testing.T) {
	// Vertex 0 is the sole holder and crashes with full state loss, then
	// recovers empty: the tokens are extinct even though every vertex is
	// eventually up. The run must detect extinction and stop gracefully.
	inst := lineInstance(t, 3, 4, 1)
	plan := Plan{
		Crashes:   CrashSchedule{Events: []CrashEvent{{V: 0, At: 1, RecoverAt: 3}}},
		StateLoss: DropAll,
	}
	res, err := Run(inst, pusherFactory, plan, sim.Options{Seed: 1, IdlePatience: 30})
	if err != nil {
		t.Fatalf("expected graceful stop, got %v", err)
	}
	if res.Completed {
		t.Fatal("completed despite token extinction")
	}
	if !res.Graceful {
		t.Fatal("extinction not detected; run was not graceful")
	}
	if res.DeliveredFraction >= 1 || res.DeliveredFraction < 0 {
		t.Errorf("delivered fraction %v out of range", res.DeliveredFraction)
	}
}

func TestLossModelAccounting(t *testing.T) {
	inst := lineInstance(t, 2, 20, 4)
	plan := Plan{Loss: Bernoulli{P: 0.5, Seed: 3}}
	res, err := Run(inst, pusherFactory, plan, sim.Options{Seed: 9, IdlePatience: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("lossy run incomplete")
	}
	if res.Lost == 0 {
		t.Error("no losses at 50% loss")
	}
	if res.Moves != res.Schedule.Moves()+res.Lost {
		t.Errorf("bandwidth accounting: %d != %d + %d", res.Moves, res.Schedule.Moves(), res.Lost)
	}
	if err := core.Validate(inst, res.Schedule); err != nil {
		t.Errorf("lossy schedule invalid: %v", err)
	}
}

func TestCapacityModelComposesWithCrashes(t *testing.T) {
	inst := lineInstance(t, 4, 4, 3)
	plan := Plan{
		Loss:      NewGilbertElliott(0.2, 0.4, 0.02, 0.6, 7),
		Crashes:   CrashSchedule{Events: []CrashEvent{{V: 2, At: 3, RecoverAt: 6}}},
		StateLoss: DropDownloads,
		Capacity:  dynamic.CrossTraffic{MaxShare: 0.6, Seed: 7},
	}
	res, err := Run(inst, pusherFactory, plan, sim.Options{Seed: 4, IdlePatience: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("composed-fault run incomplete")
	}
	// Replay against a freshly-built identical plan: the memoizing models
	// must reproduce the same trajectories from scratch.
	fresh := Plan{
		Loss:      NewGilbertElliott(0.2, 0.4, 0.02, 0.6, 7),
		Crashes:   CrashSchedule{Events: []CrashEvent{{V: 2, At: 3, RecoverAt: 6}}},
		StateLoss: DropDownloads,
		Capacity:  dynamic.CrossTraffic{MaxShare: 0.6, Seed: 7},
	}
	if err := Validate(inst, res.Schedule, fresh); err != nil {
		t.Errorf("fresh-plan replay validation: %v", err)
	}
	if err := core.ValidateConstraints(inst, res.Schedule); err != nil {
		t.Errorf("static constraint check: %v", err)
	}
}

// silent never proposes anything; without any fault to explain the idling,
// the engine must still report a stall.
type silent struct{}

func (silent) Name() string                { return "silent" }
func (silent) Plan(*sim.State) []core.Move { return nil }

func TestStallStillDetectedWhenSatisfiable(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	_, err := Run(inst, func(*core.Instance, *rand.Rand) (sim.Strategy, error) {
		return silent{}, nil
	}, Plan{}, sim.Options{Seed: 1, IdlePatience: 2})
	if !errors.Is(err, sim.ErrStalled) {
		t.Errorf("want ErrStalled, got %v", err)
	}
}

func TestValidateRejectsMoveFromCrashedVertex(t *testing.T) {
	inst := lineInstance(t, 3, 2, 2)
	plan := Plan{Crashes: CrashSchedule{Events: []CrashEvent{{V: 0, At: 0, RecoverAt: -1}}}}
	sched := &core.Schedule{}
	sched.Append(core.Step{{From: 0, To: 1, Token: 0}})
	if err := Validate(inst, sched, plan); err == nil {
		t.Error("move from a crashed vertex validated")
	}
}
