package fault

// Arc-level partitions and membership churn — the second robustness ring
// on top of the crash/loss models in fault.go. Partitions sever arcs
// without touching the vertices behind them (the endpoints keep planning
// and keep their state); churn removes whole members, who lose everything
// and rejoin empty. Both follow the package contract: every model is a
// pure function of (seed, step, identity), memoized where a trajectory is
// sequential, so a partitioned or churned run replays byte-identically
// from its plan.

import "fmt"

// PartitionModel decides, deterministically, which arcs are severed at
// each step and whether a cut will ever heal.
type PartitionModel interface {
	Name() string
	// Severed reports whether the arc from→to carries nothing at step.
	// Partitions are directed: severing from→to says nothing about
	// to→from (sever both directions for a full link cut).
	Severed(step, from, to int) bool
	// Permanent reports whether the arc from→to is severed at step and
	// will never heal. The engine's reachability detection removes
	// permanently severed arcs from the liveness graph, exactly as it
	// removes permanently crashed vertices.
	Permanent(step, from, to int) bool
}

// NoPartitions keeps every arc connected.
type NoPartitions struct{}

// Name implements PartitionModel.
func (NoPartitions) Name() string { return "no-partitions" }

// Severed implements PartitionModel.
func (NoPartitions) Severed(int, int, int) bool { return false }

// Permanent implements PartitionModel.
func (NoPartitions) Permanent(int, int, int) bool { return false }

// PartitionEvent scripts one cut: the arc From→To is severed from step At
// until step HealAt (exclusive). HealAt < 0 means the cut never heals.
type PartitionEvent struct {
	From, To int
	At       int
	HealAt   int
}

// PartitionSchedule is an explicit scripted partition plan — the
// deterministic ground truth for targeted scenarios (cut the only path to
// a receiver, isolate a cluster for exactly k steps) and regression tests.
type PartitionSchedule struct {
	Events []PartitionEvent
}

// Name implements PartitionModel.
func (m PartitionSchedule) Name() string {
	return fmt.Sprintf("partition-schedule(%d events)", len(m.Events))
}

// Severed implements PartitionModel.
func (m PartitionSchedule) Severed(step, from, to int) bool {
	for _, e := range m.Events {
		if e.From == from && e.To == to && step >= e.At && (e.HealAt < 0 || step < e.HealAt) {
			return true
		}
	}
	return false
}

// Permanent implements PartitionModel.
func (m PartitionSchedule) Permanent(step, from, to int) bool {
	for _, e := range m.Events {
		if e.From == from && e.To == to && e.HealAt < 0 && step >= e.At {
			return true
		}
	}
	return false
}

// CutEdge scripts a full bidirectional link cut: both directions of the
// edge u—v severed over [at, healAt).
func CutEdge(u, v, at, healAt int) []PartitionEvent {
	return []PartitionEvent{
		{From: u, To: v, At: at, HealAt: healAt},
		{From: v, To: u, At: at, HealAt: healAt},
	}
}

// RandomPartitions splits the overlay into K sides (a seeded hash of the
// vertex ID picks each vertex's side) and severs every cross-side arc
// during partition episodes. When no episode is active, one starts with
// probability StartP per step and lasts HealAfter steps; HealAfter < 0
// makes the first episode permanent — the network never re-merges.
// Construct with NewRandomPartitions; the value memoizes the episode
// trajectory and is not safe for concurrent use.
type RandomPartitions struct {
	K         int
	StartP    float64
	HealAfter int
	Seed      int64

	// active memoizes the episode trajectory: active[t] reports whether a
	// partition episode covers step t. rem is the internal state after
	// step len(active)-1: remaining severed steps (-1 = permanent).
	active []bool
	rem    int
}

// NewRandomPartitions returns the stochastic k-way partition model. k < 2
// is clamped to 2 (a 1-way partition severs nothing).
func NewRandomPartitions(k int, startP float64, healAfter int, seed int64) *RandomPartitions {
	if k < 2 {
		k = 2
	}
	return &RandomPartitions{K: k, StartP: startP, HealAfter: healAfter, Seed: seed}
}

// Name implements PartitionModel.
func (m *RandomPartitions) Name() string {
	heal := fmt.Sprintf("heal %d", m.HealAfter)
	if m.HealAfter < 0 {
		heal = "never heals"
	}
	return fmt.Sprintf("random-partitions(k=%d, start %.2f, %s)", m.K, m.StartP, heal)
}

// Side returns the side vertex v lands on, in [0, K).
func (m *RandomPartitions) Side(v int) int {
	return int(mix(m.Seed, v, -2, 0, 5) % uint64(m.K))
}

// activeAt extends the memoized episode trajectory up to step and reports
// whether an episode covers it. The trajectory is computed strictly
// sequentially from step 0, so query order never changes it.
func (m *RandomPartitions) activeAt(step int) bool {
	if step < 0 {
		return false
	}
	for len(m.active) <= step {
		t := len(m.active)
		if m.rem != 0 {
			m.active = append(m.active, true)
			if m.rem > 0 {
				m.rem--
			}
			continue
		}
		if frac(mix(m.Seed, t, -1, 0, 4)) < m.StartP {
			m.active = append(m.active, true)
			if m.HealAfter < 0 {
				m.rem = -1
			} else {
				m.rem = m.HealAfter - 1
				if m.rem < 0 {
					m.rem = 0
				}
			}
		} else {
			m.active = append(m.active, false)
		}
	}
	return m.active[step]
}

// Severed implements PartitionModel.
func (m *RandomPartitions) Severed(step, from, to int) bool {
	return m.activeAt(step) && m.Side(from) != m.Side(to)
}

// Permanent implements PartitionModel.
func (m *RandomPartitions) Permanent(step, from, to int) bool {
	return m.HealAfter < 0 && m.Severed(step, from, to)
}

// ChurnModel decides, deterministically, which vertices have left the
// overlay at each step and whether a departure is final. Churn differs
// from crashes in its state semantics: a member that leaves loses
// everything it downloaded and rejoins empty (DropAll), regardless of the
// plan's crash StateLoss — the modelling of anonymous peers that
// reinstall, not servers that reboot.
type ChurnModel interface {
	Name() string
	// Away reports whether v has left the overlay at step (unable to
	// send, receive, or plan — identical to a crashed vertex in-flight).
	Away(step, v int) bool
	// Gone reports whether v has left at step and will never rejoin.
	Gone(step, v int) bool
}

// NoChurn keeps every member in the overlay.
type NoChurn struct{}

// Name implements ChurnModel.
func (NoChurn) Name() string { return "no-churn" }

// Away implements ChurnModel.
func (NoChurn) Away(int, int) bool { return false }

// Gone implements ChurnModel.
func (NoChurn) Gone(int, int) bool { return false }

// ChurnEvent scripts one membership session gap: vertex V leaves at step
// At and rejoins (empty) at step RejoinAt (exclusive). RejoinAt < 0 means
// the member never returns.
type ChurnEvent struct {
	V        int
	At       int
	RejoinAt int
}

// ChurnSchedule is an explicit scripted churn plan.
type ChurnSchedule struct {
	Events []ChurnEvent
}

// Name implements ChurnModel.
func (m ChurnSchedule) Name() string {
	return fmt.Sprintf("churn-schedule(%d events)", len(m.Events))
}

// Away implements ChurnModel.
func (m ChurnSchedule) Away(step, v int) bool {
	for _, e := range m.Events {
		if e.V == v && step >= e.At && (e.RejoinAt < 0 || step < e.RejoinAt) {
			return true
		}
	}
	return false
}

// Gone implements ChurnModel.
func (m ChurnSchedule) Gone(step, v int) bool {
	for _, e := range m.Events {
		if e.V == v && e.RejoinAt < 0 && step >= e.At {
			return true
		}
	}
	return false
}

// RandomChurn models session churn by an independent two-state chain per
// vertex: a present member leaves with probability LeaveP per step, an
// absent one rejoins (empty) with probability RejoinP per step (RejoinP =
// 0 turns every departure into a permanent exit). Vertices in Protect —
// typically the sources — never leave. Construct with NewRandomChurn; the
// value memoizes per-vertex trajectories and is not safe for concurrent
// use. The chain identity is salted differently from RandomCrashes, so a
// plan composing both from the same seed keeps them independent.
type RandomChurn struct {
	LeaveP, RejoinP float64
	Seed            int64
	Protect         []int
	c               *chain
}

// NewRandomChurn returns the stochastic membership churn model.
func NewRandomChurn(leaveP, rejoinP float64, seed int64, protect ...int) *RandomChurn {
	return &RandomChurn{
		LeaveP: leaveP, RejoinP: rejoinP, Seed: seed,
		Protect: append([]int(nil), protect...),
		c:       newChain(seed, leaveP, rejoinP),
	}
}

// Name implements ChurnModel.
func (m *RandomChurn) Name() string {
	return fmt.Sprintf("random-churn(%.3f leave, %.2f rejoin)", m.LeaveP, m.RejoinP)
}

// Away implements ChurnModel.
func (m *RandomChurn) Away(step, v int) bool {
	for _, u := range m.Protect {
		if u == v {
			return false
		}
	}
	return m.c.state(step, v, -2)
}

// Gone implements ChurnModel.
func (m *RandomChurn) Gone(step, v int) bool {
	return m.RejoinP == 0 && m.Away(step, v)
}
