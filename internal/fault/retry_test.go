package fault

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/sim"
)

// once proposes each (receiver, token) move at most once ever — the
// worst-case sender for lossy channels, since anything dropped in transit
// is never re-offered. It isolates the retry wrapper's contribution.
type once struct {
	proposed map[[2]int]bool
}

func (*once) Name() string { return "once" }

func (o *once) Plan(st *sim.State) []core.Move {
	var moves []core.Move
	for u := 0; u < st.Inst.N(); u++ {
		for _, a := range st.Inst.G.Out(u) {
			sent := 0
			st.Possess[u].ForEach(func(tok int) bool {
				if sent >= a.Cap {
					return false
				}
				key := [2]int{a.To, tok}
				if !st.Possess[a.To].Has(tok) && !o.proposed[key] {
					o.proposed[key] = true
					moves = append(moves, core.Move{From: u, To: a.To, Token: tok})
					sent++
				}
				return true
			})
		}
	}
	return moves
}

func onceFactory(_ *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
	return &once{proposed: make(map[[2]int]bool)}, nil
}

func TestRetryRecoversLostMoves(t *testing.T) {
	inst := lineInstance(t, 2, 12, 3)
	plan := Plan{Loss: Bernoulli{P: 0.4, Seed: 5}}
	opts := sim.Options{Seed: 2, IdlePatience: 25, MaxSteps: 400}

	// Without the wrapper the one-shot sender cannot complete: losses are
	// never re-offered.
	bare, err := Run(inst, onceFactory, plan, opts)
	if err == nil && bare.Completed {
		t.Fatal("one-shot sender completed under 40% loss; loss model broken")
	}

	res, err := Run(inst, WithRetry(onceFactory, RetryOptions{MaxAttempts: 30}), plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("retry wrapper did not recover the lost moves")
	}
	if res.Lost == 0 {
		t.Error("no losses recorded at 40% loss")
	}
	if err := core.Validate(inst, res.Schedule); err != nil {
		t.Errorf("retried schedule invalid: %v", err)
	}
}

func TestRetryIsDeterministic(t *testing.T) {
	inst := lineInstance(t, 3, 8, 2)
	plan := Plan{Loss: Bernoulli{P: 0.3, Seed: 11}}
	opts := sim.Options{Seed: 6, IdlePatience: 25, MaxSteps: 400}
	factory := WithRetry(onceFactory, RetryOptions{MaxAttempts: 30})

	a, err := Run(inst, factory, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(inst, factory, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Schedule, b.Schedule) {
		t.Error("retry wrapper broke schedule determinism")
	}
}

func TestRetryFallsBackToAnotherHolder(t *testing.T) {
	// Diamond 0→{1,2}→3. Token flows down both sides; vertex 1 crash-stops
	// after seeding, so retries destined through 1 must re-route via 2.
	g := newDiamond(t)
	inst := core.NewInstance(g, 4)
	inst.Have[0].AddRange(0, 4)
	inst.Want[3].AddRange(0, 4)
	plan := Plan{
		Loss:    Bernoulli{P: 0.35, Seed: 8},
		Crashes: CrashSchedule{Events: []CrashEvent{{V: 1, At: 4, RecoverAt: -1}}},
	}
	res, err := Run(inst, WithRetry(pusherFactory, RetryOptions{MaxAttempts: 30}), plan,
		sim.Options{Seed: 3, IdlePatience: 25, MaxSteps: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("retry did not re-route around the crashed sender")
	}
	if err := Validate(inst, res.Schedule, plan); err != nil {
		t.Errorf("replay validation: %v", err)
	}
}

func newDiamond(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4)
	for _, a := range [][3]int{{0, 1, 2}, {0, 2, 2}, {1, 3, 2}, {2, 3, 2}} {
		if err := g.AddArc(a[0], a[1], a[2]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestBackoffSchedule(t *testing.T) {
	r := &retryStrategy{opts: RetryOptions{BackoffBase: 1, BackoffCap: 8, MaxAttempts: 10}}
	want := []int{1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := r.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
	// Saturation stays exact far past the cap's bit length (shift overflow
	// territory) and when the base already exceeds the cap.
	for _, attempt := range []int{20, 40, 70} {
		if got := r.backoff(attempt); got != 8 {
			t.Errorf("backoff(%d) = %d, want cap 8", attempt, got)
		}
	}
	r = &retryStrategy{opts: RetryOptions{BackoffBase: 3, BackoffCap: 8}}
	for i, w := range []int{3, 6, 8, 8} {
		if got := r.backoff(i + 1); got != w {
			t.Errorf("base 3: backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
	r = &retryStrategy{opts: RetryOptions{BackoffBase: 10, BackoffCap: 8}}
	if got := r.backoff(1); got != 8 {
		t.Errorf("base over cap: backoff(1) = %d, want 8", got)
	}
}

func TestRetryExhaustionNamesStrategyInStall(t *testing.T) {
	// Total loss: nothing ever arrives, so every request burns through its
	// attempts. The run stalls (holders stay live and reachable, so the
	// engine cannot prove unsatisfiability), and the stall error must carry
	// the wrapper's exhaustion report naming the wrapped strategy.
	inst := lineInstance(t, 2, 4, 2)
	plan := Plan{Loss: Bernoulli{P: 1, Seed: 1}}
	res, err := Run(inst, WithRetry(onceFactory, RetryOptions{MaxAttempts: 3}), plan,
		sim.Options{Seed: 2, IdlePatience: 10, MaxSteps: 200})
	if err == nil {
		t.Fatalf("run under total loss did not stall (completed=%v)", res.Completed)
	}
	if !errors.Is(err, sim.ErrStalled) {
		t.Errorf("error %v is not a stall", err)
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("stall error %v does not carry ErrRetriesExhausted", err)
	}
	if !strings.Contains(err.Error(), "strategy once") {
		t.Errorf("exhaustion error does not name the wrapped strategy: %v", err)
	}
}
