// Package telemetry is the deterministic-friendly metrics layer behind
// the -telemetry flag and the ocdbench telemetry section: named counters,
// gauges, and duration histograms registered on a Registry, recorded
// lock-free on the hot path, and emitted as a JSONL stream plus a human
// Summary table.
//
// Every metric carries a Class, and the split is enforced by
// construction:
//
//   - Counters are Deterministic: step counts, pivots, retries, cache
//     hits — pure functions of the seed, identical between parallel and
//     serial runs (atomic addition is order-free), safe to golden-test
//     and to gate in CI.
//   - Gauges and Histograms are WallClock: cell latency, worker
//     occupancy, queue wait — honest measurements of this machine and
//     this schedule, reported for humans but never folded into
//     experiment tables or byte-identity comparisons.
//
// This package is the only place in the repository allowed to read the
// wall clock inside the deterministic package set; each time.Now call
// site carries an //ocd:wallclock directive for the detrand analyzer
// (see internal/analysis/detrand). Experiment output must stay
// byte-identical whether a Registry is attached or not — the golden
// tests in internal/experiments pin that.
//
// Every handle method is nil-safe: a nil *Registry hands out nil
// *Counter/*Gauge/*Histogram handles whose methods are no-ops, so
// instrumented code records unconditionally and "telemetry off" costs
// one predictable nil check per event, with zero allocations either way.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Class separates metrics that are pure functions of the seed from
// measurements of this machine and this schedule.
type Class int

const (
	// Deterministic metrics are identical across parallel and serial
	// runs of the same seed and may be golden-tested.
	Deterministic Class = iota
	// WallClock metrics depend on the hardware and the scheduler; they
	// are reported but never compared byte-for-byte.
	WallClock
)

func (c Class) String() string {
	if c == WallClock {
		return "wallclock"
	}
	return "deterministic"
}

// Counter is a monotonically increasing Deterministic metric. The zero
// handle (nil) discards records.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe for concurrent use; no-op on a
// nil handle.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a WallClock high-watermark: Observe keeps the maximum value
// seen. The zero handle (nil) discards records.
type Gauge struct {
	max atomic.Int64
}

// Observe records v, retaining the maximum. Safe for concurrent use;
// no-op on a nil handle.
func (g *Gauge) Observe(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the maximum observed so far (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// histBuckets is the number of power-of-two duration buckets: bucket i
// counts observations in [2^i ns, 2^(i+1) ns), with the last bucket
// open-ended (~34 s and beyond all land in bucket 35).
const histBuckets = 36

// Histogram is a WallClock duration distribution: count, sum, max, and
// power-of-two nanosecond buckets. The zero handle (nil) discards
// records.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration. Safe for concurrent use; no-op on a nil
// handle.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Registry is a named set of metrics. Handles are interned: asking for
// the same name twice returns the same handle, so instrumented code
// resolves names once at wiring time and records through the handle on
// the hot path. All methods are safe for concurrent use and nil-safe (a
// nil Registry hands out nil no-op handles).
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// New returns an empty Registry.
func New() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the Deterministic counter registered under name,
// creating it on first use. Returns a nil (no-op) handle on a nil
// Registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the WallClock high-watermark gauge registered under
// name, creating it on first use. Returns a nil (no-op) handle on a nil
// Registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the WallClock duration histogram registered under
// name, creating it on first use. Returns a nil (no-op) handle on a nil
// Registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Metric is one registry entry in export form — the schema of the JSONL
// stream and the unit of Snapshot.
type Metric struct {
	// Name is the metric's registered name (e.g. "kernel.sim.delivered").
	Name string `json:"metric"`
	// Type is "counter", "gauge", or "histogram".
	Type string `json:"type"`
	// Class is "deterministic" or "wallclock".
	Class string `json:"class"`
	// Value is the counter total or gauge high-watermark.
	Value int64 `json:"value,omitempty"`
	// Count/SumNS/MaxNS summarize a histogram's observations.
	Count int64 `json:"count,omitempty"`
	SumNS int64 `json:"sum_ns,omitempty"`
	MaxNS int64 `json:"max_ns,omitempty"`
}

// IsDeterministic reports whether the metric belongs to the
// golden-testable class.
func (m Metric) IsDeterministic() bool { return m.Class == Deterministic.String() }

// Snapshot returns every registered metric sorted by (class, name):
// deterministic metrics first, each group alphabetical, so the JSONL
// stream and Summary table are stable and the deterministic prefix can
// be compared directly. A nil Registry snapshots empty.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counts)+len(r.gauges)+len(r.hists))
	for name, c := range r.counts {
		out = append(out, Metric{Name: name, Type: "counter", Class: Deterministic.String(), Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Type: "gauge", Class: WallClock.String(), Value: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, Metric{
			Name: name, Type: "histogram", Class: WallClock.String(),
			Count: h.count.Load(), SumNS: h.sumNS.Load(), MaxNS: h.maxNS.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class == Deterministic.String()
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// DeterministicSnapshot returns only the Deterministic metrics, sorted
// by name — the slice experiment gates and byte-identity tests compare.
func (r *Registry) DeterministicSnapshot() []Metric {
	all := r.Snapshot()
	out := make([]Metric, 0, len(all))
	for _, m := range all {
		if m.IsDeterministic() {
			out = append(out, m)
		}
	}
	return out
}

// streamMagic identifies the header line of a telemetry JSONL stream.
const streamMagic = "ocd-telemetry/v1"

// streamHeader is the first line of the stream.
type streamHeader struct {
	Telemetry string `json:"telemetry"`
}

// WriteJSONL writes the registry as a JSONL stream: one header line
// {"telemetry":"ocd-telemetry/v1"}, then one Metric object per line in
// Snapshot order.
func (r *Registry) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(streamHeader{Telemetry: streamMagic}); err != nil {
		return fmt.Errorf("telemetry: write header: %w", err)
	}
	for _, m := range r.Snapshot() {
		if err := enc.Encode(m); err != nil {
			return fmt.Errorf("telemetry: write %s: %w", m.Name, err)
		}
	}
	return nil
}

// DecodeJSONL parses and validates a telemetry stream produced by
// WriteJSONL: the magic header must come first and every following line
// must be a well-formed Metric with a known type and class. The CI
// telemetry-smoke job and the stream round-trip tests run on this.
func DecodeJSONL(rd io.Reader) ([]Metric, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("telemetry: read stream: %w", err)
		}
		return nil, fmt.Errorf("telemetry: empty stream")
	}
	var h streamHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.Telemetry != streamMagic {
		return nil, fmt.Errorf("telemetry: stream does not start with the %q header", streamMagic)
	}
	var out []Metric
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var m Metric
		if err := json.Unmarshal(line, &m); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", len(out)+2, err)
		}
		switch {
		case m.Name == "":
			return nil, fmt.Errorf("telemetry: line %d: metric has no name", len(out)+2)
		case m.Type != "counter" && m.Type != "gauge" && m.Type != "histogram":
			return nil, fmt.Errorf("telemetry: metric %s has unknown type %q", m.Name, m.Type)
		case m.Class != Deterministic.String() && m.Class != WallClock.String():
			return nil, fmt.Errorf("telemetry: metric %s has unknown class %q", m.Name, m.Class)
		case m.Count < 0 || m.SumNS < 0 || m.MaxNS < 0:
			return nil, fmt.Errorf("telemetry: metric %s has negative histogram fields", m.Name)
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read stream: %w", err)
	}
	return out, nil
}

// Summary renders the registry as an aligned human-readable table,
// deterministic metrics first. Wall-clock histograms report count, mean,
// and max. An empty registry renders a single note line.
func (r *Registry) Summary() string {
	ms := r.Snapshot()
	if len(ms) == 0 {
		return "telemetry: no metrics recorded\n"
	}
	rows := make([][4]string, 0, len(ms))
	for _, m := range ms {
		var val string
		switch m.Type {
		case "histogram":
			mean := time.Duration(0)
			if m.Count > 0 {
				mean = time.Duration(m.SumNS / m.Count)
			}
			val = fmt.Sprintf("n=%d mean=%v max=%v", m.Count, mean, time.Duration(m.MaxNS))
		default:
			val = fmt.Sprintf("%d", m.Value)
		}
		rows = append(rows, [4]string{m.Name, m.Type, m.Class, val})
	}
	head := [4]string{"metric", "type", "class", "value"}
	width := [4]int{}
	for c := 0; c < 4; c++ {
		width[c] = len(head[c])
		for _, row := range rows {
			if len(row[c]) > width[c] {
				width[c] = len(row[c])
			}
		}
	}
	var b strings.Builder
	writeRow := func(row [4]string) {
		for c := 0; c < 4; c++ {
			b.WriteString(row[c])
			if c < 3 {
				b.WriteString(strings.Repeat(" ", width[c]-len(row[c])+2))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(head)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
