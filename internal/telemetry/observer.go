package telemetry

// The wiring structs for the two hot seams the metrics layer instruments:
// the step-kernel Observer seat (per-engine step-phase counters) and the
// experiment runner's worker pool (per-cell latency and occupancy).

import (
	"sync/atomic"
	"time"

	"ocd/internal/core"
	"ocd/internal/sim"
)

// KernelObserver counts step-phase work through the kernel's Observer
// hooks: steps executed (idle ones tallied separately), moves planned
// (admitted + rejected), admitted, lost in transit, and delivered. All
// counters are Deterministic — the kernel invokes the hooks in admission
// order, and atomic addition makes the totals order-free — and the
// observer is obspure-clean: it never reads or writes the *sim.State it
// is handed. One observer may be shared by concurrent cells.
type KernelObserver struct {
	steps     *Counter
	idleSteps *Counter
	planned   *Counter
	admitted  *Counter
	delivered *Counter
	lost      *Counter
	rejected  *Counter
}

var _ sim.Observer = (*KernelObserver)(nil)

// NewKernelObserver registers the kernel.<engine>.* counters on reg and
// returns an observer feeding them. engine names the engine composition
// being observed ("sim", "fault", ...), keeping multi-engine runs
// separable in one registry. A nil registry returns a nil observer, so
// callers can assign the result to an Observer seat unconditionally via
// Observer().
func NewKernelObserver(reg *Registry, engine string) *KernelObserver {
	if reg == nil {
		return nil
	}
	p := "kernel." + engine + "."
	return &KernelObserver{
		steps:     reg.Counter(p + "steps"),
		idleSteps: reg.Counter(p + "idle_steps"),
		planned:   reg.Counter(p + "planned"),
		admitted:  reg.Counter(p + "admitted"),
		delivered: reg.Counter(p + "delivered"),
		lost:      reg.Counter(p + "lost"),
		rejected:  reg.Counter(p + "rejected"),
	}
}

// Observer converts the handle to the kernel's Observer seat: a typed
// nil becomes an untyped nil interface, which the kernel treats as "no
// observer" at zero cost.
func (o *KernelObserver) Observer() sim.Observer {
	if o == nil {
		return nil
	}
	return o
}

// OnStep counts one executed timestep (idle when delivered is nil).
func (o *KernelObserver) OnStep(step int, delivered core.Step, st *sim.State) {
	o.steps.Inc()
	if delivered == nil {
		o.idleSteps.Inc()
	}
}

// OnMove counts one admitted move and its transit outcome.
func (o *KernelObserver) OnMove(step int, mv core.Move, arcID int, lost bool, st *sim.State) {
	o.planned.Inc()
	o.admitted.Inc()
	if lost {
		o.lost.Inc()
	} else {
		o.delivered.Inc()
	}
}

// OnReject counts one proposed move the kernel discarded.
func (o *KernelObserver) OnReject(step int, mv core.Move, st *sim.State) {
	o.planned.Inc()
	o.rejected.Inc()
}

// RunnerMetrics instruments runner.Map's worker pool. Cells and
// journal-skipped cells are Deterministic counters (the same cell set
// runs at every parallelism); per-cell latency and worker occupancy are
// WallClock. A nil *RunnerMetrics (from a nil registry) records nothing.
type RunnerMetrics struct {
	cells     *Counter
	skipped   *Counter
	cellTime  *Histogram
	occupancy *Gauge
	active    atomic.Int64
}

// NewRunnerMetrics registers the runner.* metrics on reg and returns the
// instrument the runner records through. A nil registry returns nil,
// which every method treats as "telemetry off".
func NewRunnerMetrics(reg *Registry) *RunnerMetrics {
	if reg == nil {
		return nil
	}
	return &RunnerMetrics{
		cells:     reg.Counter("runner.cells"),
		skipped:   reg.Counter("runner.journal_skips"),
		cellTime:  reg.Histogram("runner.cell_seconds"),
		occupancy: reg.Gauge("runner.worker_occupancy"),
	}
}

// CellSkipped counts a cell satisfied from the crash-safety journal.
func (m *RunnerMetrics) CellSkipped() {
	if m == nil {
		return
	}
	m.skipped.Inc()
}

// CellStart marks one cell entering a worker and returns its start time.
// The occupancy gauge keeps the high-watermark of concurrently running
// cells.
func (m *RunnerMetrics) CellStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	m.occupancy.Observe(m.active.Add(1))
	return time.Now() //ocd:wallclock cell latency is a WallClock metric by contract
}

// CellDone records the cell's wall-clock latency and releases its
// occupancy slot.
func (m *RunnerMetrics) CellDone(start time.Time) {
	if m == nil {
		return
	}
	m.active.Add(-1)
	m.cells.Inc()
	m.cellTime.Observe(time.Since(start)) //ocd:wallclock cell latency is a WallClock metric by contract
}
