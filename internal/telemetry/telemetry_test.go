package telemetry

import (
	"bytes"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryHandsOutNoOpHandles(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles, got %v %v %v", c, g, h)
	}
	// Every method must be a safe no-op on the nil handles.
	c.Add(3)
	c.Inc()
	g.Observe(7)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil handles must read zero, got %d %d %d", c.Value(), g.Value(), h.Count())
	}
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", s)
	}
	if got := r.Summary(); !strings.Contains(got, "no metrics recorded") {
		t.Fatalf("nil registry summary = %q", got)
	}
}

func TestHandlesAreInterned(t *testing.T) {
	r := New()
	if r.Counter("x") != r.Counter("x") {
		t.Error("counter handles not interned")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("gauge handles not interned")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Error("histogram handles not interned")
	}
}

func TestCounterSemantics(t *testing.T) {
	r := New()
	c := r.Counter("steps")
	c.Add(40)
	c.Inc()
	c.Inc()
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGaugeKeepsHighWatermark(t *testing.T) {
	r := New()
	g := r.Gauge("occupancy")
	for _, v := range []int64{3, 9, 4, 9, 1} {
		g.Observe(v)
	}
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge = %d, want high-watermark 9", got)
	}
}

func TestHistogramSemantics(t *testing.T) {
	r := New()
	h := r.Histogram("latency")
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	h.Observe(-time.Second) // clamped to zero, still counted
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := h.sumNS.Load(); got != int64(40*time.Millisecond) {
		t.Fatalf("sum = %d, want %d", got, int64(40*time.Millisecond))
	}
	if got := h.maxNS.Load(); got != int64(30*time.Millisecond) {
		t.Fatalf("max = %d, want %d", got, int64(30*time.Millisecond))
	}
	// A huge observation lands in the open-ended last bucket.
	h.Observe(200 * time.Hour)
	if got := h.buckets[histBuckets-1].Load(); got != 1 {
		t.Fatalf("overflow bucket = %d, want 1", got)
	}
}

func TestSnapshotOrdersDeterministicFirstThenByName(t *testing.T) {
	r := New()
	r.Histogram("z.hist").Observe(time.Millisecond)
	r.Counter("b.count").Inc()
	r.Gauge("a.gauge").Observe(5)
	r.Counter("a.count").Add(2)
	ms := r.Snapshot()
	var got []string
	for _, m := range ms {
		got = append(got, m.Class+"/"+m.Name)
	}
	want := []string{
		"deterministic/a.count",
		"deterministic/b.count",
		"wallclock/a.gauge",
		"wallclock/z.hist",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot order = %v, want %v", got, want)
	}
	if !ms[0].IsDeterministic() || ms[3].IsDeterministic() {
		t.Error("IsDeterministic misclassifies snapshot entries")
	}
}

func TestDeterministicSnapshotExcludesWallClock(t *testing.T) {
	r := New()
	r.Counter("kernel.sim.steps").Add(7)
	r.Histogram("runner.cell_seconds").Observe(time.Second)
	r.Gauge("runner.worker_occupancy").Observe(4)
	ms := r.DeterministicSnapshot()
	if len(ms) != 1 || ms[0].Name != "kernel.sim.steps" || ms[0].Value != 7 {
		t.Fatalf("deterministic snapshot = %+v", ms)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := New()
	r.Counter("kernel.sim.delivered").Add(120)
	r.Gauge("runner.worker_occupancy").Observe(8)
	r.Histogram("runner.cell_seconds").Observe(3 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r.Snapshot()) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r.Snapshot())
	}
}

func TestDecodeJSONLRejectsMalformedStreams(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "empty stream"},
		{"bad header", `{"telemetry":"other/v9"}` + "\n", "header"},
		{"no header", `{"metric":"x","type":"counter","class":"deterministic"}` + "\n", "header"},
		{"nameless", "{\"telemetry\":\"ocd-telemetry/v1\"}\n{\"type\":\"counter\",\"class\":\"deterministic\"}\n", "no name"},
		{"unknown type", "{\"telemetry\":\"ocd-telemetry/v1\"}\n{\"metric\":\"x\",\"type\":\"timer\",\"class\":\"wallclock\"}\n", "unknown type"},
		{"unknown class", "{\"telemetry\":\"ocd-telemetry/v1\"}\n{\"metric\":\"x\",\"type\":\"counter\",\"class\":\"fuzzy\"}\n", "unknown class"},
		{"negative histogram", "{\"telemetry\":\"ocd-telemetry/v1\"}\n{\"metric\":\"x\",\"type\":\"histogram\",\"class\":\"wallclock\",\"count\":-1}\n", "negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeJSONL(strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("DecodeJSONL error = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestSummaryRendersAlignedTable(t *testing.T) {
	r := New()
	r.Counter("kernel.sim.steps").Add(50)
	r.Histogram("runner.cell_seconds").Observe(2 * time.Millisecond)
	got := r.Summary()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("summary has %d lines, want 3:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[0], "metric") || !strings.Contains(lines[0], "class") {
		t.Errorf("summary header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "kernel.sim.steps") || !strings.Contains(lines[1], "50") {
		t.Errorf("counter row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "n=1 mean=2ms max=2ms") {
		t.Errorf("histogram row = %q", lines[2])
	}
	// Columns align: "type" starts at the same offset in every line.
	col := strings.Index(lines[0], "type")
	for _, ln := range lines[1:] {
		if len(ln) < col {
			t.Fatalf("row shorter than header: %q", ln)
		}
	}
}

func TestConcurrentCountersAreExact(t *testing.T) {
	r := New()
	c := r.Counter("c")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				r.Gauge("g").Observe(int64(i))
				r.Histogram("h").Observe(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("h").Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestValidateTelemetryFile is the CI hook: when OCD_TELEMETRY_FILE names
// a stream written by a CLI's -telemetry flag, validate it end to end —
// well-formed JSONL with the magic header, and at least one kernel.* and
// one runner.* metric present. Skipped when the variable is unset.
func TestValidateTelemetryFile(t *testing.T) {
	path := os.Getenv("OCD_TELEMETRY_FILE")
	if path == "" {
		t.Skip("OCD_TELEMETRY_FILE not set")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ms, err := DecodeJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("telemetry stream has no metrics")
	}
	var names []string
	var kernel, runner bool
	for _, m := range ms {
		names = append(names, m.Name)
		kernel = kernel || strings.HasPrefix(m.Name, "kernel.")
		runner = runner || strings.HasPrefix(m.Name, "runner.")
	}
	if !kernel || !runner {
		t.Fatalf("stream must carry kernel.* and runner.* metrics, got %v", names)
	}
	if !sort.SliceIsSorted(ms, func(i, j int) bool {
		if ms[i].Class != ms[j].Class {
			return ms[i].Class == Deterministic.String()
		}
		return ms[i].Name < ms[j].Name
	}) {
		t.Error("stream is not in snapshot order (deterministic first, then by name)")
	}
}
