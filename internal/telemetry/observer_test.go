package telemetry

import (
	"testing"
	"time"

	"ocd/internal/core"
)

func TestNewKernelObserverNilRegistry(t *testing.T) {
	o := NewKernelObserver(nil, "sim")
	if o != nil {
		t.Fatalf("nil registry must yield nil observer, got %v", o)
	}
	// The typed nil must convert to an untyped nil interface so the
	// kernel's "no observer" fast path engages.
	if o.Observer() != nil {
		t.Fatal("nil *KernelObserver.Observer() must be a nil interface")
	}
}

func TestKernelObserverCounts(t *testing.T) {
	r := New()
	o := NewKernelObserver(r, "sim")
	mv := core.Move{}
	// Two steps, one idle; three planned moves: one delivered, one lost,
	// one rejected. The st parameter is nil on purpose — the observer must
	// never touch it (obspure pins this at lint time, nil pins it here).
	o.OnStep(0, nil, nil)
	o.OnStep(1, core.Step{mv}, nil)
	o.OnMove(1, mv, 0, false, nil)
	o.OnMove(1, mv, 1, true, nil)
	o.OnReject(1, mv, nil)
	want := map[string]int64{
		"kernel.sim.steps":      2,
		"kernel.sim.idle_steps": 1,
		"kernel.sim.planned":    3,
		"kernel.sim.admitted":   2,
		"kernel.sim.delivered":  1,
		"kernel.sim.lost":       1,
		"kernel.sim.rejected":   1,
	}
	for name, v := range want {
		if got := r.Counter(name).Value(); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}

func TestRunnerMetricsNilSafe(t *testing.T) {
	var m *RunnerMetrics
	if got := NewRunnerMetrics(nil); got != nil {
		t.Fatalf("nil registry must yield nil metrics, got %v", got)
	}
	start := m.CellStart()
	m.CellDone(start)
	m.CellSkipped()
	if !start.IsZero() {
		t.Error("nil metrics CellStart must return the zero time")
	}
}

func TestRunnerMetricsCounts(t *testing.T) {
	r := New()
	m := NewRunnerMetrics(r)
	s1 := m.CellStart()
	s2 := m.CellStart() // two cells in flight: occupancy watermark 2
	m.CellDone(s1)
	m.CellDone(s2)
	m.CellSkipped()
	if got := r.Counter("runner.cells").Value(); got != 2 {
		t.Errorf("runner.cells = %d, want 2", got)
	}
	if got := r.Counter("runner.journal_skips").Value(); got != 1 {
		t.Errorf("runner.journal_skips = %d, want 1", got)
	}
	if got := r.Gauge("runner.worker_occupancy").Value(); got != 2 {
		t.Errorf("runner.worker_occupancy = %d, want 2", got)
	}
	if got := r.Histogram("runner.cell_seconds").Count(); got != 2 {
		t.Errorf("runner.cell_seconds count = %d, want 2", got)
	}
	if time.Since(s1) < 0 { //ocd:wallclock asserting CellStart returned a real wall-clock time
		t.Error("CellStart must return a real wall-clock start time")
	}
}
