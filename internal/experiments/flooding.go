package experiments

import (
	"fmt"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/heuristics"
	"ocd/internal/runner"
	"ocd/internal/sim"
	"ocd/internal/stats"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

// GraphKind selects the topology family of §5.2.
type GraphKind int

const (
	// RandomGraph is the Erdős–Rényi G(n, 2·ln n/n) family.
	RandomGraph GraphKind = iota + 1
	// TransitStubGraph is the GT-ITM-style hierarchical family.
	TransitStubGraph
)

func (k GraphKind) String() string {
	if k == TransitStubGraph {
		return "transit-stub"
	}
	return "random"
}

// SweepConfig configures the §5.2/§5.3 heuristic sweeps.
type SweepConfig struct {
	// Kind selects the topology family.
	Kind GraphKind
	// Tokens is the number of tokens in the (initial) file.
	Tokens int
	// Caps is the capacity range (paper: 3..15).
	Caps topology.CapRange
	// GraphSeeds is the number of graph instances per sweep point.
	GraphSeeds int
	// Repeats is the number of heuristic repetitions per graph (paper: 3).
	Repeats int
	// Heuristics restricts the strategies (nil = all five).
	Heuristics []string
	// MaxSteps bounds each run (0 = Theorem 1 horizon).
	MaxSteps int
	// BaseSeed decorrelates repeated invocations.
	BaseSeed int64
	// Parallelism is the worker count for fanning the (graph × heuristic ×
	// repeat) cells across goroutines (0 = GOMAXPROCS, 1 = serial). The
	// output is identical at every setting: each cell's seed is derived
	// from its stable key, never from scheduling.
	Parallelism int
}

// DefaultSweep mirrors the paper's settings: 200-token file, capacities
// U[3,15], several graph instances, three repeats.
func DefaultSweep(kind GraphKind) SweepConfig {
	return SweepConfig{
		Kind:       kind,
		Tokens:     200,
		Caps:       topology.DefaultCaps,
		GraphSeeds: 3,
		Repeats:    3,
	}
}

func (c SweepConfig) factories() ([]string, []sim.Factory, error) {
	names := c.Heuristics
	if len(names) == 0 {
		names = heuristics.Names()
	}
	fs := make([]sim.Factory, len(names))
	for i, name := range names {
		f, ok := heuristics.Named(name)
		if !ok {
			return nil, nil, fmt.Errorf("experiments: unknown heuristic %q", name)
		}
		fs[i] = f
	}
	return names, fs, nil
}

func (c SweepConfig) graph(n int, seed int64) (*graph.Graph, error) {
	if c.Kind == TransitStubGraph {
		return topology.TransitStubN(n, c.Caps, seed)
	}
	return topology.Random(n, c.Caps, seed)
}

// point aggregates the runs of one heuristic at one sweep point.
type point struct {
	steps    []int
	bw       []int
	pruned   []int
	failures int
}

// cellResult is the outcome of one (graph, heuristic, repeat) cell.
type cellResult struct {
	steps  int
	bw     int
	pruned int
	failed bool
}

// runPoint executes all repeats of every heuristic on the instances
// produced by build (one per graph seed) and returns per-heuristic
// aggregates plus the mean lower bounds. The instances are built serially
// (they are shared read-only by every cell touching that graph seed); the
// independent simulation cells then fan out through the runner. Each cell's
// seed derives from its (graph seed, repeat) key, so every heuristic sees
// the same draw at the same grid point — the paired-comparison structure of
// the paper's figures — and the result table is identical at any
// parallelism.
func (c SweepConfig) runPoint(build func(seed int64) (*core.Instance, error)) (map[string]*point, stats.Summary, stats.Summary, error) {
	names, fs, err := c.factories()
	if err != nil {
		return nil, stats.Summary{}, stats.Summary{}, err
	}
	insts := make([]*core.Instance, c.GraphSeeds)
	var stepLBs, bwLBs []int
	for gs := 0; gs < c.GraphSeeds; gs++ {
		inst, err := build(c.BaseSeed + int64(gs))
		if err != nil {
			return nil, stats.Summary{}, stats.Summary{}, err
		}
		insts[gs] = inst
		stepLBs = append(stepLBs, core.MakespanLowerBound(inst, nil))
		bwLBs = append(bwLBs, core.BandwidthLowerBound(inst, nil))
	}

	var cells []runner.Cell[cellResult]
	for gs := 0; gs < c.GraphSeeds; gs++ {
		inst := insts[gs]
		for i := range fs {
			f := fs[i]
			for r := 0; r < c.Repeats; r++ {
				cells = append(cells, runner.Cell[cellResult]{
					Key:     fmt.Sprintf("gs%d/%s/r%d", gs, names[i], r),
					SeedKey: fmt.Sprintf("gs%d/r%d", gs, r),
					Run: func(seed int64) (cellResult, error) {
						res, err := sim.Run(inst, f, sim.Options{
							MaxSteps: c.MaxSteps,
							Seed:     seed,
							Prune:    true,
						})
						if err != nil || !res.Completed {
							return cellResult{failed: true}, nil
						}
						return cellResult{steps: res.Steps, bw: res.Moves, pruned: res.PrunedMoves}, nil
					},
				})
			}
		}
	}
	results, err := runner.Map(c.BaseSeed, cells, runner.Options{Parallelism: c.Parallelism})
	if err != nil {
		return nil, stats.Summary{}, stats.Summary{}, err
	}

	points := make(map[string]*point, len(names))
	for _, name := range names {
		points[name] = &point{}
	}
	idx := 0
	for gs := 0; gs < c.GraphSeeds; gs++ {
		for i := range fs {
			p := points[names[i]]
			for r := 0; r < c.Repeats; r++ {
				res := results[idx]
				idx++
				if res.failed {
					p.failures++
					continue
				}
				p.steps = append(p.steps, res.steps)
				p.bw = append(p.bw, res.bw)
				p.pruned = append(p.pruned, res.pruned)
			}
		}
	}
	return points, stats.SummarizeInts(stepLBs), stats.SummarizeInts(bwLBs), nil
}

// GraphSize reproduces Figures 2 and 3: single source distributing one
// file to all receivers, sweeping the graph size. Columns report the
// paper's two metrics — "moves" (turns/makespan) and bandwidth — plus the
// pruned bandwidth and the two §5.1 lower bounds.
func GraphSize(c SweepConfig, sizes []int) (*Table, error) {
	title := fmt.Sprintf("Figure 2 (%s): moves and bandwidth vs graph size", c.Kind)
	if c.Kind == TransitStubGraph {
		title = fmt.Sprintf("Figure 3 (%s): moves and bandwidth vs graph size", c.Kind)
	}
	t := &Table{
		Title: title,
		Columns: []string{"n", "heuristic", "moves", "bandwidth", "pruned-bw",
			"movesLB", "bwLB", "fails"},
	}
	for _, n := range sizes {
		points, stepLB, bwLB, err := c.runPoint(func(seed int64) (*core.Instance, error) {
			g, err := c.graph(n, seed)
			if err != nil {
				return nil, err
			}
			return workload.SingleFile(g, c.Tokens), nil
		})
		if err != nil {
			return nil, err
		}
		names, _, _ := c.factories()
		for _, name := range names {
			p := points[name]
			t.AddRow(n, name,
				stats.SummarizeInts(p.steps).Mean,
				stats.SummarizeInts(p.bw).Mean,
				stats.SummarizeInts(p.pruned).Mean,
				stepLB.Mean, bwLB.Mean, p.failures)
		}
	}
	t.Notes = append(t.Notes,
		"paper: moves (turns) do not correlate with n; bandwidth grows roughly linearly with n",
		"paper: round robin completes but is much slower; random stays within a constant factor of the smarter heuristics")
	return t, nil
}

// ReceiverDensity reproduces Figure 4: single source, 200 tokens, sweeping
// the want-set score threshold on a fixed-size graph.
func ReceiverDensity(c SweepConfig, n int, thresholds []float64) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Figure 4 (%s, n=%d): moves and bandwidth vs receiver density", c.Kind, n),
		Columns: []string{"threshold", "heuristic", "moves", "bandwidth", "pruned-bw",
			"movesLB", "bwLB", "fails"},
	}
	for _, th := range thresholds {
		th := th
		points, stepLB, bwLB, err := c.runPoint(func(seed int64) (*core.Instance, error) {
			g, err := c.graph(n, seed)
			if err != nil {
				return nil, err
			}
			return workload.ReceiverDensity(g, c.Tokens, th, seed+7919), nil
		})
		if err != nil {
			return nil, err
		}
		names, _, _ := c.factories()
		for _, name := range names {
			p := points[name]
			t.AddRow(fmt.Sprintf("%.2f", th), name,
				stats.SummarizeInts(p.steps).Mean,
				stats.SummarizeInts(p.bw).Mean,
				stats.SummarizeInts(p.pruned).Mean,
				stepLB.Mean, bwLB.Mean, p.failures)
		}
	}
	t.Notes = append(t.Notes,
		"paper: flooding heuristics consume near-constant bandwidth regardless of density",
		"paper: the bandwidth heuristic is slightly slower but uses far less bandwidth at low densities",
		"paper: pruned bandwidth of the flooding heuristics is roughly optimal")
	return t, nil
}

// NumFiles reproduces Figures 5 and 6: a fixed token mass subdivided into
// 1..maxFiles files wanted by disjoint vertex groups, sourced at a single
// vertex (multiSender=false, Figure 5) or at random non-wanting vertices
// (multiSender=true, Figure 6).
func NumFiles(c SweepConfig, n int, fileCounts []int, multiSender bool) (*Table, error) {
	fig := "Figure 5 (single source)"
	if multiSender {
		fig = "Figure 6 (multiple senders)"
	}
	t := &Table{
		Title: fmt.Sprintf("%s (%s, n=%d, %d tokens): moves and bandwidth vs number of files", fig, c.Kind, n, c.Tokens),
		Columns: []string{"files", "heuristic", "moves", "bandwidth", "pruned-bw",
			"movesLB", "bwLB", "fails"},
	}
	for _, files := range fileCounts {
		files := files
		points, stepLB, bwLB, err := c.runPoint(func(seed int64) (*core.Instance, error) {
			g, err := c.graph(n, seed)
			if err != nil {
				return nil, err
			}
			if multiSender {
				return workload.MultiSender(g, c.Tokens, files, seed+104729)
			}
			return workload.MultiFile(g, c.Tokens, files)
		})
		if err != nil {
			return nil, err
		}
		names, _, _ := c.factories()
		for _, name := range names {
			p := points[name]
			t.AddRow(files, name,
				stats.SummarizeInts(p.steps).Mean,
				stats.SummarizeInts(p.bw).Mean,
				stats.SummarizeInts(p.pruned).Mean,
				stepLB.Mean, bwLB.Mean, p.failures)
		}
	}
	t.Notes = append(t.Notes,
		"paper: after an initial descent, flooding heuristics level off regardless of subdivision",
		"paper: only the bandwidth heuristic improves as wants become more constrained, tracking the lower bound and the pruned flooding bandwidth")
	return t, nil
}
