package experiments

import (
	"fmt"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/heuristics"
	"ocd/internal/runner"
	"ocd/internal/sim"
	"ocd/internal/stats"
	"ocd/internal/telemetry"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

// GraphKind selects the topology family of §5.2.
type GraphKind int

const (
	// RandomGraph is the Erdős–Rényi G(n, 2·ln n/n) family.
	RandomGraph GraphKind = iota + 1
	// TransitStubGraph is the GT-ITM-style hierarchical family.
	TransitStubGraph
)

func (k GraphKind) String() string {
	if k == TransitStubGraph {
		return "transit-stub"
	}
	return "random"
}

// SweepConfig configures the §5.2/§5.3 heuristic sweeps.
type SweepConfig struct {
	// Kind selects the topology family.
	Kind GraphKind
	// Tokens is the number of tokens in the (initial) file.
	Tokens int
	// Caps is the capacity range (paper: 3..15).
	Caps topology.CapRange
	// GraphSeeds is the number of graph instances per sweep point.
	GraphSeeds int
	// Repeats is the number of heuristic repetitions per graph (paper: 3).
	Repeats int
	// Heuristics restricts the strategies (nil = all five).
	Heuristics []string
	// MaxSteps bounds each run (0 = Theorem 1 horizon).
	MaxSteps int
	// BaseSeed decorrelates repeated invocations.
	BaseSeed int64
	// Parallelism is the worker count for fanning the (graph × heuristic ×
	// repeat) cells across goroutines (0 = GOMAXPROCS, 1 = serial). The
	// output is identical at every setting: each cell's seed is derived
	// from its stable key, never from scheduling.
	Parallelism int
	// Telemetry, when non-nil, receives kernel step-phase counters and
	// runner cell metrics from the sweep. It never affects the results.
	Telemetry *telemetry.Registry
}

// DefaultSweep mirrors the paper's settings: 200-token file, capacities
// U[3,15], several graph instances, three repeats.
func DefaultSweep(kind GraphKind) SweepConfig {
	return SweepConfig{
		Kind:       kind,
		Tokens:     200,
		Caps:       topology.DefaultCaps,
		GraphSeeds: 3,
		Repeats:    3,
	}
}

func (c SweepConfig) factories() ([]string, []sim.Factory, error) {
	names := c.Heuristics
	if len(names) == 0 {
		names = heuristics.Names()
	}
	fs := make([]sim.Factory, len(names))
	for i, name := range names {
		f, ok := heuristics.Named(name)
		if !ok {
			return nil, nil, fmt.Errorf("experiments: unknown heuristic %q", name)
		}
		fs[i] = f
	}
	return names, fs, nil
}

func (c SweepConfig) graph(n int, seed int64) (*graph.Graph, error) {
	if c.Kind == TransitStubGraph {
		return topology.TransitStubN(n, c.Caps, seed)
	}
	return topology.Random(n, c.Caps, seed)
}

// point aggregates the runs of one heuristic at one sweep point.
type point struct {
	steps    []int
	bw       []int
	pruned   []int
	failures int
}

// cellResult is the outcome of one (graph, heuristic, repeat) cell.
type cellResult struct {
	steps  int
	bw     int
	pruned int
	failed bool
}

// runPoint executes all repeats of every heuristic on the instances
// produced by build (one per graph seed) and returns per-heuristic
// aggregates plus the mean lower bounds. The instances are built serially
// (they are shared read-only by every cell touching that graph seed); the
// independent simulation cells then fan out through the runner. Each cell's
// seed derives from its (graph seed, repeat) key, so every heuristic sees
// the same draw at the same grid point — the paired-comparison structure of
// the paper's figures — and the result table is identical at any
// parallelism.
func (c SweepConfig) runPoint(build func(seed int64) (*core.Instance, error)) (map[string]*point, stats.Summary, stats.Summary, error) {
	names, fs, err := c.factories()
	if err != nil {
		return nil, stats.Summary{}, stats.Summary{}, err
	}
	insts := make([]*core.Instance, c.GraphSeeds)
	var stepLBs, bwLBs []int
	for gs := 0; gs < c.GraphSeeds; gs++ {
		inst, err := build(c.BaseSeed + int64(gs))
		if err != nil {
			return nil, stats.Summary{}, stats.Summary{}, err
		}
		insts[gs] = inst
		stepLBs = append(stepLBs, core.MakespanLowerBound(inst, nil))
		bwLBs = append(bwLBs, core.BandwidthLowerBound(inst, nil))
	}

	// One shared observer for every cell: the counters are atomic and the
	// observer never touches per-run state, so concurrent cells may feed it.
	obs := telemetry.NewKernelObserver(c.Telemetry, "sim").Observer()
	var cells []runner.Cell[cellResult]
	for gs := 0; gs < c.GraphSeeds; gs++ {
		inst := insts[gs]
		for i := range fs {
			f := fs[i]
			for r := 0; r < c.Repeats; r++ {
				cells = append(cells, runner.Cell[cellResult]{
					Key:     fmt.Sprintf("gs%d/%s/r%d", gs, names[i], r),
					SeedKey: fmt.Sprintf("gs%d/r%d", gs, r),
					Run: func(seed int64) (cellResult, error) {
						res, err := sim.Run(inst, f, sim.Options{
							MaxSteps: c.MaxSteps,
							Seed:     seed,
							Prune:    true,
							Observer: obs,
						})
						if err != nil || !res.Completed {
							return cellResult{failed: true}, nil
						}
						return cellResult{steps: res.Steps, bw: res.Moves, pruned: res.PrunedMoves}, nil
					},
				})
			}
		}
	}
	results, err := runner.Map(c.BaseSeed, cells, runner.Options{
		Parallelism: c.Parallelism,
		Metrics:     telemetry.NewRunnerMetrics(c.Telemetry),
	})
	if err != nil {
		return nil, stats.Summary{}, stats.Summary{}, err
	}

	points := make(map[string]*point, len(names))
	for _, name := range names {
		points[name] = &point{}
	}
	idx := 0
	for gs := 0; gs < c.GraphSeeds; gs++ {
		for i := range fs {
			p := points[names[i]]
			for r := 0; r < c.Repeats; r++ {
				res := results[idx]
				idx++
				if res.failed {
					p.failures++
					continue
				}
				p.steps = append(p.steps, res.steps)
				p.bw = append(p.bw, res.bw)
				p.pruned = append(p.pruned, res.pruned)
			}
		}
	}
	return points, stats.SummarizeInts(stepLBs), stats.SummarizeInts(bwLBs), nil
}

// checkTopology admits the two §5.2 topology family names.
func checkTopology(v any) error {
	if s := v.(string); s != "random" && s != "transit-stub" {
		return fmt.Errorf("must be \"random\" or \"transit-stub\", got %q", s)
	}
	return nil
}

// sweepParams is the shared parameter-schema tail of the §5.2/§5.3 sweep
// specs — everything SweepConfig holds besides the per-figure axis.
func sweepParams() []Param {
	return []Param{
		{Name: "tokens", Kind: Int, Default: 200, Doc: "number of tokens in the (initial) file", Check: checkPositive},
		{Name: "graph-seeds", Kind: Int, Default: 3, Doc: "number of graph instances per sweep point", Check: checkPositive},
		{Name: "repeats", Kind: Int, Default: 3, Doc: "number of heuristic repetitions per graph", Check: checkPositive},
		{Name: "heuristics", Kind: Strings, Default: []string(nil), Doc: "paper heuristic names; empty = all five", Check: checkSweepHeuristics},
		{Name: "max-steps", Kind: Int, Default: 0, Doc: "timestep limit per run (0 = Theorem 1 horizon)", Check: checkNonNegative},
		{Name: "parallelism", Kind: Int, Default: 0, Doc: "runner worker count (0 = GOMAXPROCS); output is identical at every setting", Check: checkNonNegative},
		{Name: "seed", Kind: Int64, Default: int64(0), Doc: "base seed decorrelating repeated invocations"},
	}
}

// sweepFromArgs assembles a SweepConfig from the sweepParams tail.
func sweepFromArgs(a Args, kind GraphKind) SweepConfig {
	return SweepConfig{
		Kind:        kind,
		Tokens:      a.Int("tokens"),
		Caps:        topology.DefaultCaps,
		GraphSeeds:  a.Int("graph-seeds"),
		Repeats:     a.Int("repeats"),
		Heuristics:  a.Strings("heuristics"),
		MaxSteps:    a.Int("max-steps"),
		BaseSeed:    a.Int64("seed"),
		Parallelism: a.Int("parallelism"),
	}
}

func init() {
	Register(Spec{
		Name:       "graph-size",
		Facade:     "ExperimentGraphSize",
		Doc:        "Figures 2/3: moves and bandwidth vs graph size on random or transit-stub graphs",
		SeedPolicy: SeedDerived,
		Params: append([]Param{
			{Name: "topology", Kind: String, Default: "random", Doc: "topology family: random | transit-stub", Check: checkTopology},
			{Name: "sizes", Kind: Ints, Default: []int{25, 50, 100}, Doc: "graph sizes to sweep", Check: checkAll(checkNonEmpty, checkPositive)},
		}, sweepParams()...),
		Smoke: map[string]string{"sizes": "12,16", "tokens": "8", "graph-seeds": "1", "repeats": "1"},
		Run: func(a Args, em *Emitter) error {
			kind := RandomGraph
			if a.String("topology") == "transit-stub" {
				kind = TransitStubGraph
			}
			c := sweepFromArgs(a, kind)
			c.Telemetry = em.Telemetry()
			return graphSizeImpl(c, a.Ints("sizes"), em)
		},
	})
	Register(Spec{
		Name:       "receiver-density",
		Facade:     "ExperimentReceiverDensity",
		Doc:        "Figure 4: moves and bandwidth vs receiver density on a fixed-size graph",
		SeedPolicy: SeedDerived,
		Params: append([]Param{
			{Name: "n", Kind: Int, Default: 100, Doc: "number of vertices", Check: checkPositive},
			{Name: "thresholds", Kind: Floats, Default: []float64{0.1, 0.3, 0.5, 0.7, 0.9},
				Doc: "want-set score thresholds in [0,1]", Check: checkAll(checkNonEmpty, checkUnit)},
		}, sweepParams()...),
		Smoke: map[string]string{"n": "12", "thresholds": "0.5", "tokens": "8", "graph-seeds": "1", "repeats": "1"},
		Run: func(a Args, em *Emitter) error {
			c := sweepFromArgs(a, RandomGraph)
			c.Telemetry = em.Telemetry()
			return receiverDensityImpl(c, a.Int("n"), a.Floats("thresholds"), em)
		},
	})
	Register(Spec{
		Name:       "num-files",
		Facade:     "ExperimentNumFiles",
		Doc:        "Figures 5/6: moves and bandwidth vs number of files, single source or multiple senders",
		SeedPolicy: SeedDerived,
		Params: append([]Param{
			{Name: "n", Kind: Int, Default: 100, Doc: "number of vertices", Check: checkPositive},
			{Name: "files", Kind: Ints, Default: []int{1, 2, 4, 8}, Doc: "file counts to sweep", Check: checkAll(checkNonEmpty, checkPositive)},
			{Name: "multi-sender", Kind: Bool, Default: false, Doc: "source each file at a random non-wanting vertex (Figure 6)"},
		}, sweepParams()...),
		Smoke: map[string]string{"n": "12", "files": "1,2", "tokens": "8", "graph-seeds": "1", "repeats": "1"},
		Run: func(a Args, em *Emitter) error {
			c := sweepFromArgs(a, RandomGraph)
			c.Telemetry = em.Telemetry()
			return numFilesImpl(c, a.Int("n"), a.Ints("files"), a.Bool("multi-sender"), em)
		},
	})
}

// GraphSize reproduces Figures 2 and 3; see graphSizeImpl. Kept for direct
// callers (custom Caps) — the facade routes through the registry.
func GraphSize(c SweepConfig, sizes []int) (*Table, error) {
	return run1(func(em *Emitter) error {
		return graphSizeImpl(c, sizes, em)
	})
}

// graphSizeImpl reproduces Figures 2 and 3: single source distributing one
// file to all receivers, sweeping the graph size. Columns report the
// paper's two metrics — "moves" (turns/makespan) and bandwidth — plus the
// pruned bandwidth and the two §5.1 lower bounds.
func graphSizeImpl(c SweepConfig, sizes []int, em *Emitter) error {
	title := fmt.Sprintf("Figure 2 (%s): moves and bandwidth vs graph size", c.Kind)
	if c.Kind == TransitStubGraph {
		title = fmt.Sprintf("Figure 3 (%s): moves and bandwidth vs graph size", c.Kind)
	}
	em.Head(title,
		"n", "heuristic", "moves", "bandwidth", "pruned-bw",
		"movesLB", "bwLB", "fails")
	for _, n := range sizes {
		points, stepLB, bwLB, err := c.runPoint(func(seed int64) (*core.Instance, error) {
			g, err := c.graph(n, seed)
			if err != nil {
				return nil, err
			}
			return workload.SingleFile(g, c.Tokens), nil
		})
		if err != nil {
			return err
		}
		names, _, _ := c.factories()
		for _, name := range names {
			p := points[name]
			em.Emit(n, name,
				stats.SummarizeInts(p.steps).Mean,
				stats.SummarizeInts(p.bw).Mean,
				stats.SummarizeInts(p.pruned).Mean,
				stepLB.Mean, bwLB.Mean, p.failures)
		}
	}
	em.Note("paper: moves (turns) do not correlate with n; bandwidth grows roughly linearly with n")
	em.Note("paper: round robin completes but is much slower; random stays within a constant factor of the smarter heuristics")
	return nil
}

// ReceiverDensity reproduces Figure 4; see receiverDensityImpl. Kept for
// direct callers — the facade routes through the registry.
func ReceiverDensity(c SweepConfig, n int, thresholds []float64) (*Table, error) {
	return run1(func(em *Emitter) error {
		return receiverDensityImpl(c, n, thresholds, em)
	})
}

// receiverDensityImpl reproduces Figure 4: single source, 200 tokens,
// sweeping the want-set score threshold on a fixed-size graph.
func receiverDensityImpl(c SweepConfig, n int, thresholds []float64, em *Emitter) error {
	em.Head(fmt.Sprintf("Figure 4 (%s, n=%d): moves and bandwidth vs receiver density", c.Kind, n),
		"threshold", "heuristic", "moves", "bandwidth", "pruned-bw",
		"movesLB", "bwLB", "fails")
	for _, th := range thresholds {
		th := th
		points, stepLB, bwLB, err := c.runPoint(func(seed int64) (*core.Instance, error) {
			g, err := c.graph(n, seed)
			if err != nil {
				return nil, err
			}
			return workload.ReceiverDensity(g, c.Tokens, th, seed+7919), nil
		})
		if err != nil {
			return err
		}
		names, _, _ := c.factories()
		for _, name := range names {
			p := points[name]
			em.Emit(fmt.Sprintf("%.2f", th), name,
				stats.SummarizeInts(p.steps).Mean,
				stats.SummarizeInts(p.bw).Mean,
				stats.SummarizeInts(p.pruned).Mean,
				stepLB.Mean, bwLB.Mean, p.failures)
		}
	}
	em.Note("paper: flooding heuristics consume near-constant bandwidth regardless of density")
	em.Note("paper: the bandwidth heuristic is slightly slower but uses far less bandwidth at low densities")
	em.Note("paper: pruned bandwidth of the flooding heuristics is roughly optimal")
	return nil
}

// NumFiles reproduces Figures 5 and 6; see numFilesImpl. Kept for direct
// callers — the facade routes through the registry.
func NumFiles(c SweepConfig, n int, fileCounts []int, multiSender bool) (*Table, error) {
	return run1(func(em *Emitter) error {
		return numFilesImpl(c, n, fileCounts, multiSender, em)
	})
}

// numFilesImpl reproduces Figures 5 and 6: a fixed token mass subdivided
// into 1..maxFiles files wanted by disjoint vertex groups, sourced at a
// single vertex (multiSender=false, Figure 5) or at random non-wanting
// vertices (multiSender=true, Figure 6).
func numFilesImpl(c SweepConfig, n int, fileCounts []int, multiSender bool, em *Emitter) error {
	fig := "Figure 5 (single source)"
	if multiSender {
		fig = "Figure 6 (multiple senders)"
	}
	em.Head(fmt.Sprintf("%s (%s, n=%d, %d tokens): moves and bandwidth vs number of files", fig, c.Kind, n, c.Tokens),
		"files", "heuristic", "moves", "bandwidth", "pruned-bw",
		"movesLB", "bwLB", "fails")
	for _, files := range fileCounts {
		files := files
		points, stepLB, bwLB, err := c.runPoint(func(seed int64) (*core.Instance, error) {
			g, err := c.graph(n, seed)
			if err != nil {
				return nil, err
			}
			if multiSender {
				return workload.MultiSender(g, c.Tokens, files, seed+104729)
			}
			return workload.MultiFile(g, c.Tokens, files)
		})
		if err != nil {
			return err
		}
		names, _, _ := c.factories()
		for _, name := range names {
			p := points[name]
			em.Emit(files, name,
				stats.SummarizeInts(p.steps).Mean,
				stats.SummarizeInts(p.bw).Mean,
				stats.SummarizeInts(p.pruned).Mean,
				stepLB.Mean, bwLB.Mean, p.failures)
		}
	}
	em.Note("paper: after an initial descent, flooding heuristics level off regardless of subdivision")
	em.Note("paper: only the bandwidth heuristic improves as wants become more constrained, tracking the lower bound and the pruned flooding bandwidth")
	return nil
}
