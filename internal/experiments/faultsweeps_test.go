package experiments

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestPartitionSweepSmall(t *testing.T) {
	tab, err := Partition(14, 6, 2, []int{0, 4, -1}, []string{"local", "retry-local"}, 3,
		FaultSweepOptions{Monitor: true})
	if err != nil {
		t.Fatal(err)
	}
	out := tab.ASCII()
	for _, want := range []string{"heal", "liveness", "never", "invariant monitor"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in table:\n%s", want, out)
		}
	}
	if len(tab.Rows) != 6 {
		t.Errorf("got %d rows, want 3 heal times × 2 heuristics", len(tab.Rows))
	}
}

func TestChurnSweepSmall(t *testing.T) {
	tab, err := ChurnSweep(14, 6, []float64{0, 0.05}, 0.5, []string{"local"}, 3,
		FaultSweepOptions{Monitor: true})
	if err != nil {
		t.Fatal(err)
	}
	out := tab.ASCII()
	for _, want := range []string{"leave", "departures", "rejoin empty"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in table:\n%s", want, out)
		}
	}
	// The zero-churn column must complete: churn at rate 0 is a no-op plan.
	if !strings.Contains(out, "completed") {
		t.Errorf("zero-churn column did not complete:\n%s", out)
	}
}

func TestFaultSweepsRejectUnknownHeuristic(t *testing.T) {
	if _, err := Partition(10, 4, 2, []int{0}, []string{"nope"}, 1, FaultSweepOptions{}); err == nil {
		t.Error("partition sweep accepted an unknown heuristic")
	}
	if _, err := ChurnSweep(10, 4, []float64{0}, 0.5, []string{"nope"}, 1, FaultSweepOptions{}); err == nil {
		t.Error("churn sweep accepted an unknown heuristic")
	}
}

// TestChurnSweepParallelMatchesSerial is the parallel-determinism guarantee
// for the churn axis: every cell derives its randomness from (base seed,
// cell key) alone, so the worker count must not show up in the table. Run
// under -race this also exercises the sweep's concurrency for data races.
func TestChurnSweepParallelMatchesSerial(t *testing.T) {
	run := func(parallelism int) *Table {
		t.Helper()
		tab, err := ChurnSweep(14, 6, []float64{0, 0.05, 0.1}, 0.5,
			[]string{"local", "bandwidth"}, 7, FaultSweepOptions{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel churn sweep diverged from serial:\nserial:\n%s\nparallel:\n%s",
			serial.ASCII(), parallel.ASCII())
	}
}

func TestPartitionSweepJournalResume(t *testing.T) {
	heals := []int{0, 4}
	names := []string{"local"}
	clean, err := Partition(14, 6, 2, heals, names, 5, FaultSweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "partition.jsonl")
	first, err := Partition(14, 6, 2, heals, names, 5, FaultSweepOptions{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Partition(14, 6, 2, heals, names, 5, FaultSweepOptions{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, first) || !reflect.DeepEqual(clean, resumed) {
		t.Fatal("journaled partition sweep diverged from the plain run")
	}
}
