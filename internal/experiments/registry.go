package experiments

// The package Registry: every experiment file registers its Spec(s) from
// init, so importing this package is enough to see the full catalogue.
// Lookup is by kebab-case name; Specs() and Describe() iterate in sorted
// order so listings and error messages are deterministic.

import (
	"fmt"
	"io"
	"sort"

	"ocd/internal/telemetry"
)

var registry = make(map[string]*Spec)

// Register adds a spec to the package registry. It panics on an invalid
// declaration or a duplicate name — both are init-time programming errors.
func Register(s Spec) {
	if err := s.validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("experiments: duplicate spec %q", s.Name))
	}
	registry[s.Name] = &s
}

// Lookup returns the spec registered under name.
func Lookup(name string) (*Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered spec names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Specs returns every registered spec, sorted by name.
func Specs() []*Spec {
	names := Names()
	out := make([]*Spec, len(names))
	for i, name := range names {
		out[i] = registry[name]
	}
	return out
}

// Run resolves typed values against the named spec and executes it — the
// one-line body of every ocd.Experiment* facade function.
func Run(name string, vals Values) (*Table, error) {
	return RunTelemetry(name, vals, nil)
}

// RunTelemetry is Run with a metric registry attached to the run (nil =
// telemetry off). The table is unaffected by tel.
func RunTelemetry(name string, vals Values, tel *telemetry.Registry) (*Table, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, unknownSpec(name)
	}
	a, err := s.ResolveValues(vals)
	if err != nil {
		return nil, err
	}
	return s.ExecTelemetry(a, tel)
}

// RunStrings resolves string overrides against the named spec and executes
// it, streaming into the given sinks — the CLI and spec-file path.
func RunStrings(name string, overrides map[string]string, sinks ...Sink) (*Table, error) {
	return RunStringsTelemetry(name, overrides, nil, sinks...)
}

// RunStringsTelemetry is RunStrings with a metric registry attached to the
// run (nil = telemetry off). Sharing one registry across calls accumulates
// a single process-wide stream, which is how the CLIs aggregate multi-spec
// sweep files. The table is unaffected by tel.
func RunStringsTelemetry(name string, overrides map[string]string, tel *telemetry.Registry, sinks ...Sink) (*Table, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, unknownSpec(name)
	}
	a, err := s.ResolveStrings(overrides)
	if err != nil {
		return nil, err
	}
	return s.ExecTelemetry(a, tel, sinks...)
}

func unknownSpec(name string) error {
	return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
}

// Describe writes the registry listing — every spec with its parameter
// schema — in sorted order.
func Describe(w io.Writer) error {
	for i, s := range Specs() {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s — %s\n  facade: ocd.%s  seeds: %s\n", s.Name, s.Doc, s.Facade, s.SeedPolicy); err != nil {
			return err
		}
		for _, p := range s.Params {
			if _, err := fmt.Fprintf(w, "  -param %s=<%v>  (default %s)  %s\n",
				p.Name, p.Kind, formatDefault(p), p.Doc); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatDefault renders a parameter default the way it would be typed on
// the command line.
func formatDefault(p Param) string {
	switch v := p.Default.(type) {
	case nil:
		return `""`
	case string:
		if v == "" {
			return `""`
		}
		return v
	case []int:
		if len(v) == 0 {
			return `"" (all)`
		}
		s := ""
		for i, x := range v {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%d", x)
		}
		return s
	case []float64:
		s := ""
		for i, x := range v {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%v", x)
		}
		return s
	case []string:
		if len(v) == 0 {
			return `"" (all)`
		}
		s := ""
		for i, x := range v {
			if i > 0 {
				s += ","
			}
			s += x
		}
		return s
	default:
		return fmt.Sprintf("%v", v)
	}
}
