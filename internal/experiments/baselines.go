package experiments

import (
	"fmt"

	"ocd/internal/baselines"
	"ocd/internal/core"
	"ocd/internal/heuristics"
	"ocd/internal/runner"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

// ArchitectureComparison reproduces the §2 narrative as an experiment: the
// tree and striped-forest architectures the paper surveys (Overcast,
// SplitStream/CoopNet) versus its mesh heuristics, on the single-file
// workload. Trees conserve bandwidth exactly (every token crosses each
// tree edge once); meshes exploit cross-links to finish faster.
func ArchitectureComparison(n, tokens int, seed int64) (*Table, error) {
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return nil, err
	}
	inst := workload.SingleFile(g, tokens)
	t := &Table{
		Title: fmt.Sprintf("§2 architectures vs mesh heuristics (n=%d, %d tokens)", n, tokens),
		Columns: []string{"architecture", "moves", "bandwidth", "pruned-bw",
			"bw-optimal"},
	}
	bwLB := core.BandwidthLowerBound(inst, nil)

	type entry struct {
		name    string
		factory sim.Factory
	}
	entries := []entry{
		{"tree", baselines.Tree},
		{"forest-2", baselines.Forest(2)},
		{"forest-4", baselines.Forest(4)},
		{"local", heuristics.Local},
		{"global", heuristics.Global},
		{"random", heuristics.Random},
	}
	type archCell struct {
		steps, moves, pruned int
	}
	cells := make([]runner.Cell[archCell], len(entries))
	for i, e := range entries {
		e := e
		cells[i] = runner.Cell[archCell]{
			Key:     "arch/" + e.name,
			SeedKey: "arch-workload",
			Run: func(cellSeed int64) (archCell, error) {
				res, err := sim.Run(inst, e.factory, sim.Options{Seed: cellSeed, Prune: true})
				if err != nil {
					return archCell{}, fmt.Errorf("architecture %s: %w", e.name, err)
				}
				return archCell{steps: res.Steps, moves: res.Moves, pruned: res.PrunedMoves}, nil
			},
		}
	}
	results, err := runner.Map(seed, cells, runner.Options{})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		t.AddRow(entries[i].name, res.steps, res.moves, res.pruned, res.moves == bwLB)
	}
	t.Notes = append(t.Notes,
		"§2: spanning trees were the traditional topology, meshes came into favor for speed",
		"trees hit the bandwidth lower bound exactly; meshes trade duplicate-free delivery for parallel paths")
	return t, nil
}
