package experiments

import (
	"fmt"

	"ocd/internal/baselines"
	"ocd/internal/core"
	"ocd/internal/heuristics"
	"ocd/internal/runner"
	"ocd/internal/sim"
	"ocd/internal/telemetry"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func init() {
	Register(Spec{
		Name:       "architectures",
		Facade:     "ExperimentArchitectures",
		Doc:        "§2 architectures: tree and striped-forest overlays vs the paper's mesh heuristics",
		SeedPolicy: SeedDerived,
		Params: []Param{
			{Name: "n", Kind: Int, Default: 30, Doc: "number of vertices", Check: checkPositive},
			{Name: "tokens", Kind: Int, Default: 24, Doc: "number of tokens in the file", Check: checkPositive},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed"},
		},
		Smoke: map[string]string{"n": "12", "tokens": "6"},
		Run: func(a Args, em *Emitter) error {
			return architectureComparisonImpl(a.Int("n"), a.Int("tokens"), a.Int64("seed"), em)
		},
	})
}

// ArchitectureComparison reproduces the §2 narrative as an experiment; see
// architectureComparisonImpl. Kept for direct callers — the facade routes
// through the registry.
func ArchitectureComparison(n, tokens int, seed int64) (*Table, error) {
	return run1(func(em *Emitter) error {
		return architectureComparisonImpl(n, tokens, seed, em)
	})
}

// architectureComparisonImpl reproduces the §2 narrative as an experiment:
// the tree and striped-forest architectures the paper surveys (Overcast,
// SplitStream/CoopNet) versus its mesh heuristics, on the single-file
// workload. Trees conserve bandwidth exactly (every token crosses each
// tree edge once); meshes exploit cross-links to finish faster.
func architectureComparisonImpl(n, tokens int, seed int64, em *Emitter) error {
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return err
	}
	inst := workload.SingleFile(g, tokens)
	em.Head(fmt.Sprintf("§2 architectures vs mesh heuristics (n=%d, %d tokens)", n, tokens),
		"architecture", "moves", "bandwidth", "pruned-bw",
		"bw-optimal")
	bwLB := core.BandwidthLowerBound(inst, nil)

	type entry struct {
		name    string
		factory sim.Factory
	}
	entries := []entry{
		{"tree", baselines.Tree},
		{"forest-2", baselines.Forest(2)},
		{"forest-4", baselines.Forest(4)},
		{"local", heuristics.Local},
		{"global", heuristics.Global},
		{"random", heuristics.Random},
	}
	type archCell struct {
		steps, moves, pruned int
	}
	cells := make([]runner.Cell[archCell], len(entries))
	for i, e := range entries {
		e := e
		cells[i] = runner.Cell[archCell]{
			Key:     "arch/" + e.name,
			SeedKey: "arch-workload",
			Run: func(cellSeed int64) (archCell, error) {
				res, err := sim.Run(inst, e.factory, sim.Options{Seed: cellSeed, Prune: true})
				if err != nil {
					return archCell{}, fmt.Errorf("architecture %s: %w", e.name, err)
				}
				return archCell{steps: res.Steps, moves: res.Moves, pruned: res.PrunedMoves}, nil
			},
		}
	}
	results, err := runner.Map(seed, cells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return err
	}
	for i, res := range results {
		em.Emit(entries[i].name, res.steps, res.moves, res.pruned, res.moves == bwLB)
	}
	em.Note("§2: spanning trees were the traditional topology, meshes came into favor for speed")
	em.Note("trees hit the bandwidth lower bound exactly; meshes trade duplicate-free delivery for parallel paths")
	return nil
}
