package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestSpecDefaultsResolve requires every registered spec to resolve with no
// overrides: defaults must coerce and pass their own checks.
func TestSpecDefaultsResolve(t *testing.T) {
	for _, s := range Specs() {
		if _, err := s.ResolveStrings(nil); err != nil {
			t.Errorf("%s: defaults do not resolve: %v", s.Name, err)
		}
	}
}

// TestSpecSmokeResolves requires every spec's smoke overrides (the tiny
// configuration CI runs under -race) to resolve.
func TestSpecSmokeResolves(t *testing.T) {
	for _, s := range Specs() {
		if _, err := s.ResolveStrings(s.Smoke); err != nil {
			t.Errorf("%s: smoke overrides do not resolve: %v", s.Name, err)
		}
	}
}

// TestSpecSmokeRuns executes every registered experiment at its smoke
// configuration end to end and requires a titled table with rows.
func TestSpecSmokeRuns(t *testing.T) {
	for _, s := range Specs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			tab, err := RunStrings(s.Name, s.Smoke)
			if err != nil {
				t.Fatalf("smoke run: %v", err)
			}
			if tab.Title == "" || len(tab.Rows) == 0 {
				t.Fatalf("smoke run produced an empty table: title=%q rows=%d", tab.Title, len(tab.Rows))
			}
		})
	}
}

func TestSpecRejectsUnknownAndMalformedParams(t *testing.T) {
	for _, s := range Specs() {
		if _, err := s.ResolveStrings(map[string]string{"definitely-not-a-param": "1"}); err == nil {
			t.Errorf("%s: unknown parameter accepted", s.Name)
		}
	}
	// A numeric parameter must reject garbage with the parameter's name in
	// the message.
	spec, ok := Lookup("chaos")
	if !ok {
		t.Fatal("chaos spec missing")
	}
	if _, err := spec.ResolveStrings(map[string]string{"n": "abc"}); err == nil || !strings.Contains(err.Error(), "n") {
		t.Errorf("chaos: n=abc accepted or unclear: %v", err)
	}
}

// TestSpecChecks exercises the per-parameter validators through the string
// surface the CLIs use.
func TestSpecChecks(t *testing.T) {
	bad := []struct {
		spec  string
		param string
		value string
	}{
		{"chaos", "n", "0"},
		{"chaos", "intensities", "1.5"},
		{"chaos", "intensities", ""},
		{"chaos", "heuristics", "nope"},
		{"chaos", "heuristics", ""},
		{"crashed-source", "crash-at", "-1"},
		{"partition", "k", "1"},
		{"partition", "heal", ""},
		{"churn", "leave", "2"},
		{"churn", "rejoin", "-0.5"},
		{"graph-size", "topology", "nope"},
		{"graph-size", "sizes", ""},
		{"graph-size", "heuristics", "nope"},
		{"receiver-density", "thresholds", "1.5"},
		{"loss-coding", "redundancies", "0"},
		{"theorem4", "decoys", "-1"},
		{"figure7", "edge-p", "2"},
		{"tradeoff-curve", "instance", "/does/not/exist.json"},
	}
	for _, tc := range bad {
		spec, ok := Lookup(tc.spec)
		if !ok {
			t.Fatalf("spec %s missing", tc.spec)
		}
		if _, err := spec.ResolveStrings(map[string]string{tc.param: tc.value}); err == nil {
			t.Errorf("%s: %s=%q accepted", tc.spec, tc.param, tc.value)
		}
	}
	// The sweep heuristic domain accepts the empty list (meaning all
	// heuristics) that the chaos domain rejects.
	spec, _ := Lookup("graph-size")
	if _, err := spec.ResolveStrings(map[string]string{"heuristics": ""}); err != nil {
		t.Errorf("graph-size: empty heuristics (= all) rejected: %v", err)
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := RunStrings("nope", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want unknown-experiment error, got %v", err)
	}
	// The error names the catalogue so a typo is self-correcting.
	if !strings.Contains(err.Error(), "figure1") {
		t.Errorf("error does not list the registry: %v", err)
	}
}

func TestDescribeListsEverySpec(t *testing.T) {
	var buf bytes.Buffer
	if err := Describe(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range Specs() {
		if !strings.Contains(out, s.Name+" — ") {
			t.Errorf("Describe output missing spec %q", s.Name)
		}
		if !strings.Contains(out, "ocd."+s.Facade) {
			t.Errorf("Describe output missing facade ocd.%s", s.Facade)
		}
	}
}

// TestSinksStreamRows runs one tiny experiment with both streaming sinks
// attached and checks they observed the same rows as the canonical table.
func TestSinksStreamRows(t *testing.T) {
	var csv, jsonl bytes.Buffer
	tab, err := RunStrings("theorem4", map[string]string{"decoys": "1,4"},
		&CSVSink{W: &csv}, &JSONLSink{W: &jsonl})
	if err != nil {
		t.Fatal(err)
	}
	if got := csv.String(); got != tab.CSV() {
		t.Errorf("CSV sink diverged from Table.CSV():\n--- sink ---\n%s--- table ---\n%s", got, tab.CSV())
	}
	lines := strings.Split(strings.TrimRight(jsonl.String(), "\n"), "\n")
	// One head line, one line per row, one per note.
	want := 1 + len(tab.Rows) + len(tab.Notes)
	if len(lines) != want {
		t.Errorf("JSONL sink wrote %d lines, want %d:\n%s", len(lines), want, jsonl.String())
	}
	if !strings.Contains(lines[0], `"title"`) || !strings.Contains(lines[0], `"columns"`) {
		t.Errorf("JSONL head line malformed: %s", lines[0])
	}
}

func TestParseSpecFile(t *testing.T) {
	invs, err := ParseSpecFile([]byte(`[
		{"experiment": "figure1"},
		{"experiment": "theorem4", "params": {"decoys": "1,4"}}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 2 || invs[0].Experiment != "figure1" || invs[1].Params["decoys"] != "1,4" {
		t.Fatalf("bad parse: %+v", invs)
	}
	// A single bare invocation object is also accepted.
	if invs, err := ParseSpecFile([]byte(`{"experiment": "figure1"}`)); err != nil || len(invs) != 1 {
		t.Fatalf("single-object spec: got %v, %v", invs, err)
	}
	for _, bad := range []string{
		`[{"experment": "figure1"}]`,              // misspelled key
		`[{"experiment": "figure1", "extra": 1}]`, // unknown key
		`[{"params": {"decoys": "1"}}]`,           // missing name
		`[{"experiment": "figure1"}] trailing`,    // trailing garbage
		`[{"experiment": "figure1"}] {}`,          // trailing JSON
		`[]`,                                      // no experiments
	} {
		if _, err := ParseSpecFile([]byte(bad)); err == nil {
			t.Errorf("ParseSpecFile accepted %s", bad)
		}
	}
}

// TestRunValuesTypeMismatch ensures the typed Values surface the facade
// uses rejects wrongly-typed injections instead of panicking downstream.
func TestRunValuesTypeMismatch(t *testing.T) {
	if _, err := Run("chaos", Values{"n": "twelve"}); err == nil {
		t.Error("string for int param accepted")
	}
	if _, err := Run("chaos", Values{"intensities": 3}); err == nil {
		t.Error("int for floats param accepted")
	}
}
