package experiments

// The driver layer of the spec → cells → sinks pipeline. Experiment
// drivers no longer hand-assemble a *Table: they write their header, rows,
// and notes through an Emitter, which maintains the canonical in-memory
// Table and simultaneously streams every row into any number of pluggable
// Sinks (CSV to a live writer, JSONL row logs, ...). The rows themselves
// are produced by runner.Cell fan-out inside each driver, so the pipeline
// is: Spec (declarative parameters) → cells (parallel, journaled,
// crash-safe execution) → sinks (presentation).

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"ocd/internal/telemetry"
)

// Sink consumes an experiment's output as it is produced: the header once,
// then every row in emission order, then the notes. Errors are collected by
// the Emitter and surfaced when the run finishes.
type Sink interface {
	// Head announces the table title and column names before any row.
	Head(title string, columns []string) error
	// Row receives one formatted row (len matches the columns).
	Row(cells []string) error
	// Note receives one qualitative note after the rows.
	Note(note string) error
	// Flush finalizes the sink after the last note.
	Flush() error
}

// Emitter is the write side every experiment driver receives: it builds
// the canonical Table and fans each call out to the attached sinks.
type Emitter struct {
	t     *Table
	tel   *telemetry.Registry
	sinks []Sink
	err   error
}

// newEmitter returns an Emitter streaming into sinks (which may be empty).
func newEmitter(sinks []Sink) *Emitter {
	return &Emitter{t: &Table{}, sinks: sinks}
}

// Telemetry returns the run's metric registry, nil when telemetry is off.
// Drivers pass it to the instrumented seams (kernel observer, runner
// metrics, solver counters); a nil registry makes every recording call a
// no-op, so drivers attach instrumentation unconditionally. Telemetry
// never feeds the Table — the table of a telemetry-on run is byte-
// identical to a telemetry-off run.
func (e *Emitter) Telemetry() *telemetry.Registry { return e.tel }

// Head sets the table title and columns and announces them to the sinks.
func (e *Emitter) Head(title string, columns ...string) {
	e.t.Title = title
	e.t.Columns = columns
	for _, s := range e.sinks {
		e.keep(s.Head(title, columns))
	}
}

// Emit appends one row, formatting cells with the Table's rules (%.1f for
// float64, %v otherwise), and streams it to the sinks.
func (e *Emitter) Emit(cells ...any) {
	e.t.AddRow(cells...)
	row := e.t.Rows[len(e.t.Rows)-1]
	for _, s := range e.sinks {
		e.keep(s.Row(row))
	}
}

// Note appends one qualitative note verbatim.
func (e *Emitter) Note(note string) {
	e.t.Notes = append(e.t.Notes, note)
	for _, s := range e.sinks {
		e.keep(s.Note(note))
	}
}

// Notef appends one formatted qualitative note.
func (e *Emitter) Notef(format string, args ...any) {
	e.Note(fmt.Sprintf(format, args...))
}

func (e *Emitter) keep(err error) {
	if err != nil && e.err == nil {
		e.err = err
	}
}

// finish flushes the sinks and returns the assembled table together with
// the first sink error, if any.
func (e *Emitter) finish() (*Table, error) {
	for _, s := range e.sinks {
		e.keep(s.Flush())
	}
	if e.err != nil {
		return nil, fmt.Errorf("experiments: sink: %w", e.err)
	}
	return e.t, nil
}

// run1 executes one driver body with a sink-less emitter — the adapter the
// legacy exported experiment functions use to keep their (*Table, error)
// signatures.
func run1(f func(em *Emitter) error) (*Table, error) {
	em := newEmitter(nil)
	if err := f(em); err != nil {
		return nil, err
	}
	return em.finish()
}

// flusher is the optional interface a sink's underlying writer may
// implement (e.g. *bufio.Writer); sinks flush it from their own Flush so
// buffered tail rows are never silently dropped.
type flusher interface{ Flush() error }

// flushWriter flushes w when it buffers.
func flushWriter(w io.Writer) error {
	if f, ok := w.(flusher); ok {
		return f.Flush()
	}
	return nil
}

// CSVSink streams the experiment as RFC-4180 CSV via encoding/csv: a
// header line, then one line per row as it completes, with cells quoted
// whenever they contain a comma, quote, or newline. Records end in a bare
// \n (no CRLF), so outputs whose cells need no quoting are byte-identical
// to the historical join-with-comma format. Notes are dropped (matching
// Table.CSV).
type CSVSink struct {
	W io.Writer

	cw *csv.Writer
}

func (c *CSVSink) write(record []string) error {
	if c.cw == nil {
		c.cw = csv.NewWriter(c.W)
	}
	if err := c.cw.Write(record); err != nil {
		return err
	}
	// Flush per record so the stream tails correctly mid-sweep; the
	// write error (if any) surfaces here or in Flush via cw.Error().
	c.cw.Flush()
	return c.cw.Error()
}

func (c *CSVSink) Head(_ string, columns []string) error { return c.write(columns) }

func (c *CSVSink) Row(cells []string) error { return c.write(cells) }

func (c *CSVSink) Note(string) error { return nil }

func (c *CSVSink) Flush() error {
	if c.cw != nil {
		c.cw.Flush()
		if err := c.cw.Error(); err != nil {
			return err
		}
	}
	return flushWriter(c.W)
}

// JSONLSink streams the experiment as JSONL: one {"title","columns"}
// object, then one {"row"} object per row, then {"note"} objects — a
// machine-readable row log that tails correctly while a sweep is running.
type JSONLSink struct {
	W io.Writer
}

type jsonlHead struct {
	Title   string   `json:"title"`
	Columns []string `json:"columns"`
}

func (j *JSONLSink) Head(title string, columns []string) error {
	return json.NewEncoder(j.W).Encode(jsonlHead{Title: title, Columns: columns})
}

func (j *JSONLSink) Row(cells []string) error {
	return json.NewEncoder(j.W).Encode(struct {
		Row []string `json:"row"`
	}{Row: cells})
}

func (j *JSONLSink) Note(note string) error {
	return json.NewEncoder(j.W).Encode(struct {
		Note string `json:"note"`
	}{Note: note})
}

func (j *JSONLSink) Flush() error { return flushWriter(j.W) }
