package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// goldenCases map each committed fixture onto the RunStrings overrides that
// reproduce the facade call which generated it before the registry refactor.
// Byte identity here is the refactor's acceptance bar: lowering an
// experiment through spec → args → impl must not perturb a single cell.
var goldenCases = []struct {
	name   string
	params map[string]string
}{
	{"figure1", nil},
	{"theorem4", map[string]string{"decoys": "1,4,16"}},
	{"graph-size", map[string]string{
		"sizes": "12,20", "tokens": "16", "graph-seeds": "1", "repeats": "1", "seed": "5",
	}},
	{"chaos", map[string]string{
		"n": "16", "tokens": "8", "intensities": "0,0.5", "heuristics": "local,retry-local", "seed": "3",
	}},
	{"partition", map[string]string{
		"n": "16", "tokens": "8", "heal": "0,-1", "heuristics": "local", "seed": "3",
	}},
	{"churn", map[string]string{
		"n": "16", "tokens": "8", "leave": "0,0.05", "heuristics": "local", "seed": "3",
	}},
	{"knowledge-delay", map[string]string{
		"n": "12", "tokens": "8", "max-delay": "2", "seed": "2",
	}},
	{"architectures", map[string]string{
		"n": "14", "tokens": "8", "seed": "2",
	}},
}

func TestGoldenByteIdentity(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			want, err := os.ReadFile(filepath.Join("testdata", "golden", tc.name+".txt"))
			if err != nil {
				t.Fatalf("fixture: %v", err)
			}
			tab, err := RunStrings(tc.name, tc.params)
			if err != nil {
				t.Fatalf("RunStrings(%q): %v", tc.name, err)
			}
			if got := tab.ASCII(); got != string(want) {
				t.Errorf("output diverged from the pre-refactor fixture\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
