package experiments

import (
	"fmt"

	"ocd/internal/core"
	"ocd/internal/dynamic"
	"ocd/internal/encoding"
	"ocd/internal/exact"
	"ocd/internal/heuristics"
	"ocd/internal/runner"
	"ocd/internal/sim"
	"ocd/internal/telemetry"
	"ocd/internal/topology"
	"ocd/internal/underlay"
	"ocd/internal/workload"
)

func init() {
	Register(Spec{
		Name:       "dynamic-conditions",
		Facade:     "ExperimentDynamicConditions",
		Doc:        "§6 changing network conditions: every heuristic under time-varying capacity models",
		SeedPolicy: SeedDerived,
		Params: []Param{
			{Name: "n", Kind: Int, Default: 30, Doc: "number of vertices", Check: checkPositive},
			{Name: "tokens", Kind: Int, Default: 24, Doc: "number of tokens in the file", Check: checkPositive},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed (topology, models, strategies)"},
		},
		Smoke: map[string]string{"n": "12", "tokens": "6"},
		Run: func(a Args, em *Emitter) error {
			return dynamicConditionsImpl(a.Int("n"), a.Int("tokens"), a.Int64("seed"), em)
		},
	})
	Register(Spec{
		Name:       "loss-coding",
		Facade:     "ExperimentLossCoding",
		Doc:        "§6 encoding: uncoded vs (k,n)-coded distribution under per-move loss",
		SeedPolicy: SeedDerived,
		Params: []Param{
			{Name: "n", Kind: Int, Default: 30, Doc: "number of vertices", Check: checkPositive},
			{Name: "tokens", Kind: Int, Default: 24, Doc: "number of tokens in the file", Check: checkPositive},
			{Name: "loss", Kind: Float, Default: 0.2, Doc: "per-move loss probability in [0,1]", Check: checkUnit},
			{Name: "redundancies", Kind: Floats, Default: []float64{1, 1.25, 1.5, 2},
				Doc: "coding redundancy factors (n/k)", Check: checkAll(checkNonEmpty, checkPositive)},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed"},
		},
		Smoke: map[string]string{"n": "12", "tokens": "8", "redundancies": "1,1.5"},
		Run: func(a Args, em *Emitter) error {
			return lossCodingImpl(a.Int("n"), a.Int("tokens"), a.Float("loss"), a.Floats("redundancies"), a.Int64("seed"), em)
		},
	})
	Register(Spec{
		Name:       "underlay",
		Facade:     "ExperimentUnderlay",
		Doc:        "§6 realistic topologies: overlay-only capacities vs shared physical links",
		SeedPolicy: SeedDerived,
		Params: []Param{
			{Name: "phys-n", Kind: Int, Default: 30, Doc: "physical network size (approximate)", Check: checkPositive},
			{Name: "hosts", Kind: Int, Default: 12, Doc: "number of overlay hosts", Check: checkPositive},
			{Name: "tokens", Kind: Int, Default: 16, Doc: "number of tokens in the file", Check: checkPositive},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed"},
		},
		Smoke: map[string]string{"phys-n": "12", "hosts": "6", "tokens": "6"},
		Run: func(a Args, em *Emitter) error {
			return underlayComparisonImpl(a.Int("phys-n"), a.Int("hosts"), a.Int("tokens"), a.Int64("seed"), em)
		},
	})
	Register(Spec{
		Name:       "knowledge-delay",
		Facade:     "ExperimentKnowledgeDelay",
		Doc:        "§5.1 ablation: the Local heuristic with peer views 0..max-delay turns stale",
		SeedPolicy: SeedDerived,
		Params: []Param{
			{Name: "n", Kind: Int, Default: 30, Doc: "number of vertices", Check: checkPositive},
			{Name: "tokens", Kind: Int, Default: 16, Doc: "number of tokens in the file", Check: checkPositive},
			{Name: "max-delay", Kind: Int, Default: 3, Doc: "largest staleness to ablate", Check: checkNonNegative},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed"},
		},
		Smoke: map[string]string{"n": "12", "tokens": "6", "max-delay": "1"},
		Run: func(a Args, em *Emitter) error {
			return knowledgeDelayImpl(a.Int("n"), a.Int("tokens"), a.Int("max-delay"), a.Int64("seed"), em)
		},
	})
	Register(Spec{
		Name:       "tradeoff-curve",
		Facade:     "ExperimentTradeoffCurve",
		Doc:        "§3.4 hybrid objective: certified minimum bandwidth at every makespan bound",
		SeedPolicy: SeedNone,
		Params: []Param{
			{Name: "instance", Kind: Instance, Default: "figure1",
				Doc: "problem instance: \"figure1\" or a path to an instance JSON file"},
		},
		Run: func(a Args, em *Emitter) error {
			return tradeoffCurveImpl(a.Instance("instance"), exact.Options{}, em)
		},
	})
}

// DynamicConditions reproduces the §6 "Changing network conditions"
// scenario; see dynamicConditionsImpl. Kept for direct callers — the
// facade routes through the registry.
func DynamicConditions(n, tokens int, seed int64) (*Table, error) {
	return run1(func(em *Emitter) error {
		return dynamicConditionsImpl(n, tokens, seed, em)
	})
}

// dynamicConditionsImpl reproduces the §6 "Changing network conditions"
// scenario: the same workload under static capacities, cross traffic,
// random link failures, periodic load, node churn, and a possession-aware
// adversary, for each heuristic.
func dynamicConditionsImpl(n, tokens int, seed int64, em *Emitter) error {
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return err
	}
	inst := workload.SingleFile(g, tokens)
	// Models are built per cell: the possession-aware adversary mutates
	// internal state while running, and giving every heuristic a freshly
	// constructed model with the same seed keeps the comparison paired.
	makeModels := []func(seed int64) dynamic.Model{
		func(int64) dynamic.Model { return dynamic.Static{} },
		func(s int64) dynamic.Model { return dynamic.CrossTraffic{MaxShare: 0.7, Seed: s} },
		func(s int64) dynamic.Model { return dynamic.LinkFailure{P: 0.3, Seed: s} },
		func(int64) dynamic.Model { return dynamic.Periodic{Period: 8, Floor: 0.2} },
		func(s int64) dynamic.Model { return dynamic.Churn{P: 0.2, Seed: s, AlwaysUp: []int{0}} },
		func(int64) dynamic.Model { return dynamic.NewAdversary(inst, g.NumArcs()/10) },
	}
	modelNames := make([]string, len(makeModels))
	for i, mk := range makeModels {
		modelNames[i] = mk(seed).Name() // names do not depend on the seed
	}
	em.Head(fmt.Sprintf("§6 changing network conditions (n=%d, %d tokens)", n, tokens),
		"model", "heuristic", "moves", "bandwidth", "completed")
	type dynCell struct {
		steps, moves int
		completed    bool
		failed       bool
	}
	var cells []runner.Cell[dynCell]
	for mi := range makeModels {
		mk := makeModels[mi]
		for i, factory := range heuristics.All() {
			factory := factory
			cells = append(cells, runner.Cell[dynCell]{
				Key:     modelNames[mi] + "/" + heuristics.Names()[i],
				SeedKey: "dyn-workload",
				Run: func(cellSeed int64) (dynCell, error) {
					res, err := dynamic.Run(inst, factory, mk(cellSeed), sim.Options{
						Seed: cellSeed, IdlePatience: 30,
					})
					if err != nil {
						return dynCell{failed: true}, nil
					}
					return dynCell{steps: res.Steps, moves: res.Moves, completed: res.Completed}, nil
				},
			})
		}
	}
	results, err := runner.Map(seed, cells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return err
	}
	idx := 0
	for mi := range makeModels {
		for i := range heuristics.All() {
			res := results[idx]
			idx++
			if res.failed {
				em.Emit(modelNames[mi], heuristics.Names()[i], "-", "-", false)
				continue
			}
			em.Emit(modelNames[mi], heuristics.Names()[i], res.steps, res.moves, res.completed)
		}
	}
	em.Note("§6: capacities varying between turns model cross traffic, channel dynamics, mobility, and DoS")
	em.Note("churn keeps the source up; the adversary cuts the most useful tenth of the arcs each turn")
	return nil
}

// LossCoding reproduces the §6 "Encoding" scenario; see lossCodingImpl.
// Kept for direct callers — the facade routes through the registry.
func LossCoding(n, tokens int, lossRate float64, redundancies []float64, seed int64) (*Table, error) {
	return run1(func(em *Emitter) error {
		return lossCodingImpl(n, tokens, lossRate, redundancies, seed, em)
	})
}

// lossCodingImpl reproduces the §6 "Encoding" scenario: under per-move
// loss, compare the uncoded instance against (k, n) coded expansions with
// increasing redundancy.
func lossCodingImpl(n, tokens int, lossRate float64, redundancies []float64, seed int64, em *Emitter) error {
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return err
	}
	inst := workload.SingleFile(g, tokens)
	em.Head(fmt.Sprintf("§6 encoding under %.0f%% loss (n=%d, %d tokens)",
		lossRate*100, n, tokens),
		"scheme", "overhead", "moves", "bandwidth", "lost", "completed")
	// Round Robin is the knowledge-free sender for which coding matters:
	// a lost specific token costs it a full cycle, while a coded receiver
	// accepts any k-of-n arrivals.
	k := 8
	if tokens < k {
		k = tokens
	}
	type codedCell struct {
		scheme, overhead   string
		steps, moves, lost int
		completed          bool
	}
	cells := []runner.Cell[codedCell]{{
		Key:     "uncoded",
		SeedKey: "loss-workload",
		Run: func(cellSeed int64) (codedCell, error) {
			base, err := sim.Run(inst, heuristics.RoundRobin, sim.Options{
				Seed: cellSeed, LossRate: lossRate, IdlePatience: 10,
			})
			if err != nil {
				return codedCell{}, fmt.Errorf("uncoded run: %w", err)
			}
			return codedCell{scheme: "uncoded", overhead: "1.00",
				steps: base.Steps, moves: base.Moves, lost: base.Lost, completed: base.Completed}, nil
		},
	}}
	for _, r := range redundancies {
		nCoded := int(float64(k)*r + 0.5)
		if nCoded < k {
			nCoded = k
		}
		cells = append(cells, runner.Cell[codedCell]{
			Key:     fmt.Sprintf("coded(%d/%d)@r%.2f", k, nCoded, r),
			SeedKey: "loss-workload",
			Run: func(cellSeed int64) (codedCell, error) {
				coded, err := encoding.Expand(inst, k, nCoded)
				if err != nil {
					return codedCell{}, err
				}
				res, err := coded.Run(heuristics.RoundRobin, sim.Options{
					Seed: cellSeed, LossRate: lossRate, IdlePatience: 10,
				})
				if err != nil {
					return codedCell{}, fmt.Errorf("coded run r=%.2f: %w", r, err)
				}
				return codedCell{scheme: fmt.Sprintf("coded(%d/%d)", k, nCoded),
					overhead: fmt.Sprintf("%.2f", coded.Overhead()),
					steps:    res.Steps, moves: res.Moves, lost: res.Lost, completed: res.Completed}, nil
			},
		})
	}
	results, err := runner.Map(seed, cells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return err
	}
	for _, res := range results {
		em.Emit(res.scheme, res.overhead, res.steps, res.moves, res.lost, res.completed)
	}
	em.Note("§6: sub-token redundancy trades bandwidth overhead for loss resilience")
	em.Note("completion under coding requires any k of n coded tokens per file")
	return nil
}

// UnderlayComparison reproduces the §6 "Realistic topologies" scenario;
// see underlayComparisonImpl. Kept for direct callers — the facade routes
// through the registry.
func UnderlayComparison(physN, hosts, tokens int, seed int64) (*Table, error) {
	return run1(func(em *Emitter) error {
		return underlayComparisonImpl(physN, hosts, tokens, seed, em)
	})
}

// underlayComparisonImpl reproduces the §6 "Realistic topologies"
// scenario: the same overlay workload run with independent logical
// capacities (the paper's model) versus shared physical capacities.
func underlayComparisonImpl(physN, hosts, tokens int, seed int64, em *Emitter) error {
	net, err := underlay.RandomNetwork(physN, hosts, 2, topology.DefaultCaps, seed)
	if err != nil {
		return err
	}
	inst := workload.SingleFile(net.Overlay, tokens)
	em.Head(fmt.Sprintf("§6 realistic topologies: overlay-only vs shared underlay (phys≈%d, hosts=%d, sharing=%.1fx)",
		physN, hosts, net.SharingFactor()),
		"heuristic", "overlay-moves", "underlay-moves", "slowdown", "overlay-bw", "underlay-bw")
	// One cell per heuristic runs both the logical and the physical
	// simulation so the slowdown ratio is computed from a single seed draw.
	type underlayCell struct {
		logicalSteps, physicalSteps int
		logicalMoves, physicalMoves int
	}
	factories := heuristics.All()
	cells := make([]runner.Cell[underlayCell], len(factories))
	for i, factory := range factories {
		factory := factory
		name := heuristics.Names()[i]
		cells[i] = runner.Cell[underlayCell]{
			Key:     "underlay/" + name,
			SeedKey: "underlay-workload",
			Run: func(cellSeed int64) (underlayCell, error) {
				logical, err := sim.Run(inst, factory, sim.Options{Seed: cellSeed})
				if err != nil {
					return underlayCell{}, fmt.Errorf("logical %s: %w", name, err)
				}
				physical, err := net.Run(inst, factory, sim.Options{Seed: cellSeed, IdlePatience: 20})
				if err != nil {
					return underlayCell{}, fmt.Errorf("physical %s: %w", name, err)
				}
				return underlayCell{
					logicalSteps: logical.Steps, physicalSteps: physical.Steps,
					logicalMoves: logical.Moves, physicalMoves: physical.Moves,
				}, nil
			},
		}
	}
	results, err := runner.Map(seed, cells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return err
	}
	for i, res := range results {
		slow := "-"
		if res.logicalSteps > 0 {
			slow = fmt.Sprintf("%.2f", float64(res.physicalSteps)/float64(res.logicalSteps))
		}
		em.Emit(heuristics.Names()[i], res.logicalSteps, res.physicalSteps, slow,
			res.logicalMoves, res.physicalMoves)
	}
	em.Note("§6: logical links sharing physical links make overlay capacities dependent; the overlay-only model is optimistic")
	return nil
}

// KnowledgeDelay is the §5.1 relaxation ablation; see knowledgeDelayImpl.
// Kept for direct callers — the facade routes through the registry.
func KnowledgeDelay(n, tokens, maxDelay int, seed int64) (*Table, error) {
	return run1(func(em *Emitter) error {
		return knowledgeDelayImpl(n, tokens, maxDelay, seed, em)
	})
}

// knowledgeDelayImpl is the §5.1 relaxation ablation: the Local heuristic
// with peer state views 0..maxDelay turns stale.
func knowledgeDelayImpl(n, tokens, maxDelay int, seed int64, em *Emitter) error {
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return err
	}
	inst := workload.SingleFile(g, tokens)
	em.Head(fmt.Sprintf("§5.1 knowledge-delay ablation for the Local heuristic (n=%d)", n),
		"delay", "moves", "bandwidth", "pruned-bw")
	type delayCell struct {
		steps, moves, pruned int
	}
	cells := make([]runner.Cell[delayCell], maxDelay+1)
	for d := 0; d <= maxDelay; d++ {
		d := d
		cells[d] = runner.Cell[delayCell]{
			Key:     fmt.Sprintf("delay%d", d),
			SeedKey: "delay-workload",
			Run: func(cellSeed int64) (delayCell, error) {
				res, err := sim.Run(inst, heuristics.LocalDelayed(d), sim.Options{
					Seed: cellSeed, Prune: true, IdlePatience: d + 1,
				})
				if err != nil {
					return delayCell{}, fmt.Errorf("delay %d: %w", d, err)
				}
				return delayCell{steps: res.Steps, moves: res.Moves, pruned: res.PrunedMoves}, nil
			},
		}
	}
	results, err := runner.Map(seed, cells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return err
	}
	for d, res := range results {
		em.Emit(d, res.steps, res.moves, res.pruned)
	}
	em.Note("stale peer views cost duplicate deliveries (bandwidth) and extra turns; delay 0 is the paper's Local heuristic")
	return nil
}

// TradeoffCurve realizes the §3.4 hybrid objective; see tradeoffCurveImpl.
// Kept for direct callers (custom exact.Options) — the facade routes
// through the registry.
func TradeoffCurve(inst *core.Instance, opts exact.Options) (*Table, error) {
	return run1(func(em *Emitter) error {
		return tradeoffCurveImpl(inst, opts, em)
	})
}

// tradeoffCurveImpl realizes the §3.4 hybrid objective: the minimum
// bandwidth achievable at every makespan from the FOCD optimum up to the
// EOCD optimum's natural length, certified by the exact solver. The
// endpoints are the two poles of Figure 1.
func tradeoffCurveImpl(inst *core.Instance, opts exact.Options, em *Emitter) error {
	fast, err := exact.SolveFOCD(inst, opts)
	if err != nil {
		return fmt.Errorf("tradeoff focd: %w", err)
	}
	cheap, err := exact.SolveEOCD(inst, 0, opts)
	if err != nil {
		return fmt.Errorf("tradeoff eocd: %w", err)
	}
	em.Head("§3.4 hybrid objective: bandwidth-optimal subject to a makespan bound",
		"tau", "min-bandwidth", "at-focd-optimum", "at-eocd-optimum")
	last := cheap.Makespan()
	if last < fast.Makespan() {
		last = fast.Makespan()
	}
	// The exact solver is deterministic (no PRNG), so the cells ignore their
	// derived seeds; the runner still parallelizes the independent solves.
	var cells []runner.Cell[int]
	for tau := fast.Makespan(); tau <= last; tau++ {
		tau := tau
		cells = append(cells, runner.Cell[int]{
			Key: fmt.Sprintf("tau%d", tau),
			Run: func(int64) (int, error) {
				sched, err := exact.SolveEOCD(inst, tau, opts)
				if err != nil {
					return 0, fmt.Errorf("tradeoff tau=%d: %w", tau, err)
				}
				return sched.Moves(), nil
			},
		})
	}
	moves, err := runner.Map(0, cells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return err
	}
	for i, mv := range moves {
		tau := fast.Makespan() + i
		em.Emit(tau, mv, tau == fast.Makespan(), tau == last)
	}
	em.Note("the curve is non-increasing in tau; its endpoints are the Figure 1 poles")
	return nil
}
