package experiments

import (
	"fmt"

	"ocd/internal/core"
	"ocd/internal/dynamic"
	"ocd/internal/encoding"
	"ocd/internal/exact"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/underlay"
	"ocd/internal/workload"
)

// DynamicConditions reproduces the §6 "Changing network conditions"
// scenario: the same workload under static capacities, cross traffic,
// random link failures, periodic load, node churn, and a possession-aware
// adversary, for each heuristic.
func DynamicConditions(n, tokens int, seed int64) (*Table, error) {
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return nil, err
	}
	inst := workload.SingleFile(g, tokens)
	models := []dynamic.Model{
		dynamic.Static{},
		dynamic.CrossTraffic{MaxShare: 0.7, Seed: seed},
		dynamic.LinkFailure{P: 0.3, Seed: seed},
		dynamic.Periodic{Period: 8, Floor: 0.2},
		dynamic.Churn{P: 0.2, Seed: seed, AlwaysUp: []int{0}},
		dynamic.NewAdversary(inst, g.NumArcs()/10),
	}
	t := &Table{
		Title:   fmt.Sprintf("§6 changing network conditions (n=%d, %d tokens)", n, tokens),
		Columns: []string{"model", "heuristic", "moves", "bandwidth", "completed"},
	}
	for _, model := range models {
		for i, factory := range heuristics.All() {
			res, err := dynamic.Run(inst, factory, model, sim.Options{
				Seed: seed, IdlePatience: 30,
			})
			if err != nil {
				t.AddRow(model.Name(), heuristics.Names()[i], "-", "-", false)
				continue
			}
			t.AddRow(model.Name(), heuristics.Names()[i], res.Steps, res.Moves, res.Completed)
		}
	}
	t.Notes = append(t.Notes,
		"§6: capacities varying between turns model cross traffic, channel dynamics, mobility, and DoS",
		"churn keeps the source up; the adversary cuts the most useful tenth of the arcs each turn")
	return t, nil
}

// LossCoding reproduces the §6 "Encoding" scenario: under per-move loss,
// compare the uncoded instance against (k, n) coded expansions with
// increasing redundancy.
func LossCoding(n, tokens int, lossRate float64, redundancies []float64, seed int64) (*Table, error) {
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return nil, err
	}
	inst := workload.SingleFile(g, tokens)
	t := &Table{
		Title: fmt.Sprintf("§6 encoding under %.0f%% loss (n=%d, %d tokens)",
			lossRate*100, n, tokens),
		Columns: []string{"scheme", "overhead", "moves", "bandwidth", "lost", "completed"},
	}
	// Round Robin is the knowledge-free sender for which coding matters:
	// a lost specific token costs it a full cycle, while a coded receiver
	// accepts any k-of-n arrivals.
	base, err := sim.Run(inst, heuristics.RoundRobin, sim.Options{
		Seed: seed, LossRate: lossRate, IdlePatience: 10,
	})
	if err != nil {
		return nil, fmt.Errorf("uncoded run: %w", err)
	}
	t.AddRow("uncoded", "1.00", base.Steps, base.Moves, base.Lost, base.Completed)

	k := 8
	if tokens < k {
		k = tokens
	}
	for _, r := range redundancies {
		nCoded := int(float64(k)*r + 0.5)
		if nCoded < k {
			nCoded = k
		}
		coded, err := encoding.Expand(inst, k, nCoded)
		if err != nil {
			return nil, err
		}
		res, err := coded.Run(heuristics.RoundRobin, sim.Options{
			Seed: seed, LossRate: lossRate, IdlePatience: 10,
		})
		if err != nil {
			return nil, fmt.Errorf("coded run r=%.2f: %w", r, err)
		}
		t.AddRow(fmt.Sprintf("coded(%d/%d)", k, nCoded),
			fmt.Sprintf("%.2f", coded.Overhead()),
			res.Steps, res.Moves, res.Lost, res.Completed)
	}
	t.Notes = append(t.Notes,
		"§6: sub-token redundancy trades bandwidth overhead for loss resilience",
		"completion under coding requires any k of n coded tokens per file")
	return t, nil
}

// UnderlayComparison reproduces the §6 "Realistic topologies" scenario:
// the same overlay workload run with independent logical capacities (the
// paper's model) versus shared physical capacities.
func UnderlayComparison(physN, hosts, tokens int, seed int64) (*Table, error) {
	net, err := underlay.RandomNetwork(physN, hosts, 2, topology.DefaultCaps, seed)
	if err != nil {
		return nil, err
	}
	inst := workload.SingleFile(net.Overlay, tokens)
	t := &Table{
		Title: fmt.Sprintf("§6 realistic topologies: overlay-only vs shared underlay (phys≈%d, hosts=%d, sharing=%.1fx)",
			physN, hosts, net.SharingFactor()),
		Columns: []string{"heuristic", "overlay-moves", "underlay-moves", "slowdown", "overlay-bw", "underlay-bw"},
	}
	for i, factory := range heuristics.All() {
		logical, err := sim.Run(inst, factory, sim.Options{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("logical %s: %w", heuristics.Names()[i], err)
		}
		physical, err := net.Run(inst, factory, sim.Options{Seed: seed, IdlePatience: 20})
		if err != nil {
			return nil, fmt.Errorf("physical %s: %w", heuristics.Names()[i], err)
		}
		slow := "-"
		if logical.Steps > 0 {
			slow = fmt.Sprintf("%.2f", float64(physical.Steps)/float64(logical.Steps))
		}
		t.AddRow(heuristics.Names()[i], logical.Steps, physical.Steps, slow,
			logical.Moves, physical.Moves)
	}
	t.Notes = append(t.Notes,
		"§6: logical links sharing physical links make overlay capacities dependent; the overlay-only model is optimistic")
	return t, nil
}

// KnowledgeDelay is the §5.1 relaxation ablation: the Local heuristic with
// peer state views 0..maxDelay turns stale.
func KnowledgeDelay(n, tokens, maxDelay int, seed int64) (*Table, error) {
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return nil, err
	}
	inst := workload.SingleFile(g, tokens)
	t := &Table{
		Title:   fmt.Sprintf("§5.1 knowledge-delay ablation for the Local heuristic (n=%d)", n),
		Columns: []string{"delay", "moves", "bandwidth", "pruned-bw"},
	}
	for d := 0; d <= maxDelay; d++ {
		res, err := sim.Run(inst, heuristics.LocalDelayed(d), sim.Options{
			Seed: seed, Prune: true, IdlePatience: d + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("delay %d: %w", d, err)
		}
		t.AddRow(d, res.Steps, res.Moves, res.PrunedMoves)
	}
	t.Notes = append(t.Notes,
		"stale peer views cost duplicate deliveries (bandwidth) and extra turns; delay 0 is the paper's Local heuristic")
	return t, nil
}

// TradeoffCurve realizes the §3.4 hybrid objective: the minimum bandwidth
// achievable at every makespan from the FOCD optimum up to the EOCD
// optimum's natural length, certified by the exact solver. The endpoints
// are the two poles of Figure 1.
func TradeoffCurve(inst *core.Instance, opts exact.Options) (*Table, error) {
	fast, err := exact.SolveFOCD(inst, opts)
	if err != nil {
		return nil, fmt.Errorf("tradeoff focd: %w", err)
	}
	cheap, err := exact.SolveEOCD(inst, 0, opts)
	if err != nil {
		return nil, fmt.Errorf("tradeoff eocd: %w", err)
	}
	t := &Table{
		Title:   "§3.4 hybrid objective: bandwidth-optimal subject to a makespan bound",
		Columns: []string{"tau", "min-bandwidth", "at-focd-optimum", "at-eocd-optimum"},
	}
	last := cheap.Makespan()
	if last < fast.Makespan() {
		last = fast.Makespan()
	}
	for tau := fast.Makespan(); tau <= last; tau++ {
		sched, err := exact.SolveEOCD(inst, tau, opts)
		if err != nil {
			return nil, fmt.Errorf("tradeoff tau=%d: %w", tau, err)
		}
		t.AddRow(tau, sched.Moves(), tau == fast.Makespan(), tau == last)
	}
	t.Notes = append(t.Notes,
		"the curve is non-increasing in tau; its endpoints are the Figure 1 poles")
	return t, nil
}
