package experiments

import (
	"fmt"

	"ocd/internal/heuristics"
	"ocd/internal/locd"
	"ocd/internal/protocol"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

// ProtocolComparison quantifies the price of honest knowledge: the
// message-passing realization of the Local heuristic (every vertex learns
// only through per-turn neighbor gossip, §4.1) versus the idealized
// instant-aggregate version §5.1 assumes. The extra turns stay in the
// order of the knowledge diameter — the propagation delay the idealized
// model hides.
func ProtocolComparison(sizes []int, tokens int, seed int64) (*Table, error) {
	t := &Table{
		Title: "§4.1/§5.1: idealized Local vs message-passing protocol Local",
		Columns: []string{"n", "diameter", "ideal-moves", "protocol-moves", "extra",
			"ideal-bw", "protocol-bw"},
	}
	for _, n := range sizes {
		g, err := topology.Random(n, topology.DefaultCaps, seed)
		if err != nil {
			return nil, err
		}
		inst := workload.SingleFile(g, tokens)
		ideal, err := sim.Run(inst, heuristics.Local, sim.Options{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("ideal n=%d: %w", n, err)
		}
		proto, err := sim.Run(inst, protocol.Local, sim.Options{
			Seed: seed, IdlePatience: locd.KnowledgeDiameter(g) + 2,
		})
		if err != nil {
			return nil, fmt.Errorf("protocol n=%d: %w", n, err)
		}
		t.AddRow(n, locd.KnowledgeDiameter(g), ideal.Steps, proto.Steps,
			proto.Steps-ideal.Steps, ideal.Moves, proto.Moves)
	}
	t.Notes = append(t.Notes,
		"the protocol variant learns only via per-turn neighbor gossip; its first turn is necessarily idle",
		"extra turns are the §4.1 knowledge-propagation delay the idealized aggregates hide")
	return t, nil
}
