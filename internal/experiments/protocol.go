package experiments

import (
	"fmt"

	"ocd/internal/heuristics"
	"ocd/internal/locd"
	"ocd/internal/protocol"
	"ocd/internal/runner"
	"ocd/internal/sim"
	"ocd/internal/telemetry"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func init() {
	Register(Spec{
		Name:       "protocol-comparison",
		Facade:     "ExperimentProtocolComparison",
		Doc:        "§4.1: idealized instant-aggregate Local vs the message-passing protocol realization",
		SeedPolicy: SeedDerived,
		Params: []Param{
			{Name: "sizes", Kind: Ints, Default: []int{16, 32, 64}, Doc: "graph sizes to sweep", Check: checkAll(checkNonEmpty, checkPositive)},
			{Name: "tokens", Kind: Int, Default: 16, Doc: "number of tokens in the file", Check: checkPositive},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed"},
		},
		Smoke: map[string]string{"sizes": "12", "tokens": "6"},
		Run: func(a Args, em *Emitter) error {
			return protocolComparisonImpl(a.Ints("sizes"), a.Int("tokens"), a.Int64("seed"), em)
		},
	})
}

// ProtocolComparison quantifies the price of honest knowledge; see
// protocolComparisonImpl. Kept for direct callers — the facade routes
// through the registry.
func ProtocolComparison(sizes []int, tokens int, seed int64) (*Table, error) {
	return run1(func(em *Emitter) error {
		return protocolComparisonImpl(sizes, tokens, seed, em)
	})
}

// protocolComparisonImpl quantifies the price of honest knowledge: the
// message-passing realization of the Local heuristic (every vertex learns
// only through per-turn neighbor gossip, §4.1) versus the idealized
// instant-aggregate version §5.1 assumes. The extra turns stay in the
// order of the knowledge diameter — the propagation delay the idealized
// model hides.
func protocolComparisonImpl(sizes []int, tokens int, seed int64, em *Emitter) error {
	em.Head("§4.1/§5.1: idealized Local vs message-passing protocol Local",
		"n", "diameter", "ideal-moves", "protocol-moves", "extra",
		"ideal-bw", "protocol-bw")
	// Each cell owns one graph size end to end: it builds the graph, runs
	// the idealized and the protocol variant on the same seed, and returns
	// the whole row.
	type protoCell struct {
		diameter               int
		idealSteps, protoSteps int
		idealMoves, protoMoves int
	}
	cells := make([]runner.Cell[protoCell], len(sizes))
	for i, n := range sizes {
		n := n
		cells[i] = runner.Cell[protoCell]{
			Key: fmt.Sprintf("n%d", n),
			Run: func(cellSeed int64) (protoCell, error) {
				g, err := topology.Random(n, topology.DefaultCaps, cellSeed)
				if err != nil {
					return protoCell{}, err
				}
				inst := workload.SingleFile(g, tokens)
				ideal, err := sim.Run(inst, heuristics.Local, sim.Options{Seed: cellSeed})
				if err != nil {
					return protoCell{}, fmt.Errorf("ideal n=%d: %w", n, err)
				}
				proto, err := sim.Run(inst, protocol.Local, sim.Options{
					Seed: cellSeed, IdlePatience: locd.KnowledgeDiameter(g) + 2,
				})
				if err != nil {
					return protoCell{}, fmt.Errorf("protocol n=%d: %w", n, err)
				}
				return protoCell{
					diameter:   locd.KnowledgeDiameter(g),
					idealSteps: ideal.Steps, protoSteps: proto.Steps,
					idealMoves: ideal.Moves, protoMoves: proto.Moves,
				}, nil
			},
		}
	}
	results, err := runner.Map(seed, cells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return err
	}
	for i, res := range results {
		em.Emit(sizes[i], res.diameter, res.idealSteps, res.protoSteps,
			res.protoSteps-res.idealSteps, res.idealMoves, res.protoMoves)
	}
	em.Note("the protocol variant learns only via per-turn neighbor gossip; its first turn is necessarily idle")
	em.Note("extra turns are the §4.1 knowledge-propagation delay the idealized aggregates hide")
	return nil
}
