package experiments

import (
	"fmt"

	"ocd/internal/heuristics"
	"ocd/internal/locd"
	"ocd/internal/protocol"
	"ocd/internal/runner"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

// ProtocolComparison quantifies the price of honest knowledge: the
// message-passing realization of the Local heuristic (every vertex learns
// only through per-turn neighbor gossip, §4.1) versus the idealized
// instant-aggregate version §5.1 assumes. The extra turns stay in the
// order of the knowledge diameter — the propagation delay the idealized
// model hides.
func ProtocolComparison(sizes []int, tokens int, seed int64) (*Table, error) {
	t := &Table{
		Title: "§4.1/§5.1: idealized Local vs message-passing protocol Local",
		Columns: []string{"n", "diameter", "ideal-moves", "protocol-moves", "extra",
			"ideal-bw", "protocol-bw"},
	}
	// Each cell owns one graph size end to end: it builds the graph, runs
	// the idealized and the protocol variant on the same seed, and returns
	// the whole row.
	type protoCell struct {
		diameter               int
		idealSteps, protoSteps int
		idealMoves, protoMoves int
	}
	cells := make([]runner.Cell[protoCell], len(sizes))
	for i, n := range sizes {
		n := n
		cells[i] = runner.Cell[protoCell]{
			Key: fmt.Sprintf("n%d", n),
			Run: func(cellSeed int64) (protoCell, error) {
				g, err := topology.Random(n, topology.DefaultCaps, cellSeed)
				if err != nil {
					return protoCell{}, err
				}
				inst := workload.SingleFile(g, tokens)
				ideal, err := sim.Run(inst, heuristics.Local, sim.Options{Seed: cellSeed})
				if err != nil {
					return protoCell{}, fmt.Errorf("ideal n=%d: %w", n, err)
				}
				proto, err := sim.Run(inst, protocol.Local, sim.Options{
					Seed: cellSeed, IdlePatience: locd.KnowledgeDiameter(g) + 2,
				})
				if err != nil {
					return protoCell{}, fmt.Errorf("protocol n=%d: %w", n, err)
				}
				return protoCell{
					diameter:   locd.KnowledgeDiameter(g),
					idealSteps: ideal.Steps, protoSteps: proto.Steps,
					idealMoves: ideal.Moves, protoMoves: proto.Moves,
				}, nil
			},
		}
	}
	results, err := runner.Map(seed, cells, runner.Options{})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		t.AddRow(sizes[i], res.diameter, res.idealSteps, res.protoSteps,
			res.protoSteps-res.idealSteps, res.idealMoves, res.protoMoves)
	}
	t.Notes = append(t.Notes,
		"the protocol variant learns only via per-turn neighbor gossip; its first turn is necessarily idle",
		"extra turns are the §4.1 knowledge-propagation delay the idealized aggregates hide")
	return t, nil
}
