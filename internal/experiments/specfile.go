package experiments

// Reproducible sweep files: a JSON description of one or more registry
// invocations, runnable via `ocdsim -spec file.json` (or ocdchaos). The
// file pins the experiment names and every parameter override, so a sweep
// can be archived, diffed, and re-run to byte-identical tables.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Invocation is one experiment run in a spec file: the registry name plus
// string parameter overrides (exactly what -param would pass).
type Invocation struct {
	// Experiment is the registry name (see Names()).
	Experiment string `json:"experiment"`
	// Params overrides the spec's defaults; keys must be declared params.
	Params map[string]string `json:"params,omitempty"`
}

// LoadSpecFile reads a spec file holding either a single invocation object
// or an array of them, and validates every experiment name against the
// registry (parameter values are validated at run time by ResolveStrings).
func LoadSpecFile(path string) ([]Invocation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpecFile(data)
}

// ParseSpecFile parses spec-file bytes; see LoadSpecFile.
func ParseSpecFile(data []byte) ([]Invocation, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("experiments: spec file is empty")
	}
	var invs []Invocation
	if trimmed[0] == '[' {
		if err := strictUnmarshal(trimmed, &invs); err != nil {
			return nil, fmt.Errorf("experiments: spec file: %w", err)
		}
	} else {
		var one Invocation
		if err := strictUnmarshal(trimmed, &one); err != nil {
			return nil, fmt.Errorf("experiments: spec file: %w", err)
		}
		invs = []Invocation{one}
	}
	if len(invs) == 0 {
		return nil, fmt.Errorf("experiments: spec file names no experiments")
	}
	for i, inv := range invs {
		if _, ok := Lookup(inv.Experiment); !ok {
			return nil, fmt.Errorf("experiments: spec file entry %d: %w", i, unknownSpec(inv.Experiment))
		}
	}
	return invs, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields, so a typo like
// "parms" fails loudly instead of silently running defaults.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Only a clean EOF may follow: trailing JSON decodes without error and
	// trailing garbage fails with a syntax error, so both are rejected.
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return fmt.Errorf("trailing data after the spec document")
	}
	return nil
}
