package experiments

import (
	"bytes"
	"encoding/csv"
	"errors"
	"reflect"
	"strings"
	"testing"

	"ocd/internal/telemetry"
	"ocd/internal/topology"
)

// TestTelemetryDoesNotPerturbTables is the tentpole invariant: attaching a
// metric registry to a run must not change a single output byte. Each case
// is rendered with telemetry off and on; the tables must match exactly,
// and the telemetry-on run must actually have recorded something (so the
// test cannot pass vacuously with disconnected instrumentation).
func TestTelemetryDoesNotPerturbTables(t *testing.T) {
	cases := []struct {
		name   string
		params map[string]string
	}{
		{"figure1", nil},
		{"graph-size", map[string]string{
			"sizes": "12,20", "tokens": "16", "graph-seeds": "1", "repeats": "1", "seed": "5",
		}},
		{"partition", map[string]string{
			"n": "16", "tokens": "8", "heal": "0,-1", "heuristics": "local", "seed": "3",
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			off, err := RunStrings(tc.name, tc.params)
			if err != nil {
				t.Fatalf("telemetry off: %v", err)
			}
			reg := telemetry.New()
			on, err := RunStringsTelemetry(tc.name, tc.params, reg)
			if err != nil {
				t.Fatalf("telemetry on: %v", err)
			}
			if on.ASCII() != off.ASCII() {
				t.Errorf("telemetry perturbed the table\n--- on ---\n%s--- off ---\n%s", on.ASCII(), off.ASCII())
			}
			if len(reg.Snapshot()) == 0 {
				t.Error("telemetry-on run recorded no metrics; instrumentation is disconnected")
			}
		})
	}
}

// TestTelemetryCountersMatchAcrossParallelism pins the Deterministic class
// contract: counters are pure functions of the seed, so the deterministic
// snapshot of a parallel sweep must equal the serial one exactly. Runs
// under -race in CI, so shared-observer races fail even when the totals
// happen to agree.
func TestTelemetryCountersMatchAcrossParallelism(t *testing.T) {
	snapshot := func(parallelism int) []telemetry.Metric {
		reg := telemetry.New()
		cfg := SweepConfig{
			Kind:        TransitStubGraph,
			Tokens:      16,
			Caps:        topology.DefaultCaps,
			GraphSeeds:  2,
			Repeats:     2,
			BaseSeed:    7,
			Parallelism: parallelism,
			Telemetry:   reg,
		}
		if _, err := GraphSize(cfg, []int{12, 20}); err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return reg.DeterministicSnapshot()
	}
	serial := snapshot(1)
	if len(serial) == 0 {
		t.Fatal("serial sweep recorded no deterministic metrics")
	}
	var kernel, runner bool
	for _, m := range serial {
		kernel = kernel || strings.HasPrefix(m.Name, "kernel.")
		runner = runner || strings.HasPrefix(m.Name, "runner.")
	}
	if !kernel || !runner {
		t.Fatalf("sweep must record kernel.* and runner.* counters, got %+v", serial)
	}
	for _, p := range []int{2, 4, 0} {
		if got := snapshot(p); !reflect.DeepEqual(got, serial) {
			t.Errorf("parallelism %d deterministic counters diverged:\n got %+v\nwant %+v", p, got, serial)
		}
	}
}

// TestSolverCountersRecorded checks the ILP seam: an optimal-schedule
// experiment must surface branch-and-bound and simplex work through the
// solver.* counters.
func TestSolverCountersRecorded(t *testing.T) {
	reg := telemetry.New()
	if _, err := RunStringsTelemetry("figure1", nil, reg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"solver.nodes", "solver.simplex_iterations"} {
		if got := reg.Counter(name).Value(); got <= 0 {
			t.Errorf("%s = %d, want > 0", name, got)
		}
	}
	// Breakdown counters exist even when the pinned instances never flip a
	// bound; they must simply be non-negative and registered.
	for _, name := range []string{"solver.warm_starts", "solver.bound_flips", "solver.dual_restorations"} {
		if got := reg.Counter(name).Value(); got < 0 {
			t.Errorf("%s = %d, want >= 0", name, got)
		}
	}
}

// TestCSVSinkQuotesSpecials pins the RFC-4180 behaviour the historical
// join-with-comma sink lacked: cells containing commas, quotes, or
// newlines round-trip through a CSV reader intact.
func TestCSVSinkQuotesSpecials(t *testing.T) {
	var buf bytes.Buffer
	sink := &CSVSink{W: &buf}
	head := []string{"graph", "note"}
	row := []string{`transit,stub`, "a \"quoted\" cell\nwith a newline"}
	if err := sink.Head("t", head); err != nil {
		t.Fatal(err)
	}
	if err := sink.Row(row); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("sink output is not valid CSV: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(records, [][]string{head, row}) {
		t.Errorf("round trip mismatch: %q", records)
	}
}

// TestCSVSinkPlainCellsKeepHistoricalBytes pins byte identity for the
// common case: cells without specials must render exactly as the old
// strings.Join(cells, ",") + "\n" did (no quoting, no CRLF).
func TestCSVSinkPlainCellsKeepHistoricalBytes(t *testing.T) {
	var buf bytes.Buffer
	sink := &CSVSink{W: &buf}
	if err := sink.Head("t", []string{"n", "makespan"}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Row([]string{"20", "41.5"}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if want := "n,makespan\n20,41.5\n"; buf.String() != want {
		t.Errorf("plain cells rendered %q, want %q", buf.String(), want)
	}
}

// errFlusher is an io.Writer whose Flush fails, standing in for a
// buffered writer over a full disk.
type errFlusher struct{ err error }

func (f *errFlusher) Write(p []byte) (int, error) { return len(p), nil }
func (f *errFlusher) Flush() error                { return f.err }

// TestSinkFlushPropagatesWriterErrors pins the fix for the silent-loss
// bug: a sink over a buffered writer must surface the writer's Flush
// error through Emitter.finish instead of dropping tail rows.
func TestSinkFlushPropagatesWriterErrors(t *testing.T) {
	werr := errors.New("disk full")
	sinks := []Sink{
		&CSVSink{W: &errFlusher{err: werr}},
		&JSONLSink{W: &errFlusher{err: werr}},
	}
	for _, s := range sinks {
		if err := s.Flush(); !errors.Is(err, werr) {
			t.Errorf("%T.Flush() = %v, want %v", s, err, werr)
		}
	}
	// And through the emitter: finish must report the sink error.
	em := newEmitter([]Sink{&CSVSink{W: &errFlusher{err: werr}}})
	em.Head("t", "a")
	em.Emit("1")
	if _, err := em.finish(); !errors.Is(err, werr) {
		t.Errorf("finish() = %v, want wrapped %v", err, werr)
	}
}
