package experiments

import (
	"fmt"
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/exact"
	"ocd/internal/flow"
	"ocd/internal/heuristics"
	"ocd/internal/runner"
	"ocd/internal/sim"
	"ocd/internal/telemetry"
)

func init() {
	Register(Spec{
		Name:       "bounds-quality",
		Facade:     "ExperimentBoundsQuality",
		Doc:        "heuristic makespan/bandwidth as ratios to certified optima on random small instances",
		SeedPolicy: SeedDerived,
		Params: []Param{
			{Name: "instances", Kind: Int, Default: 5, Doc: "number of random instances", Check: checkPositive},
			{Name: "n", Kind: Int, Default: 5, Doc: "vertices per instance", Check: checkPositive},
			{Name: "m", Kind: Int, Default: 3, Doc: "tokens per instance", Check: checkPositive},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed for the instance stream"},
		},
		Smoke: map[string]string{"instances": "2", "n": "4", "m": "2"},
		Run: func(a Args, em *Emitter) error {
			return boundsQualityImpl(a.Int("instances"), a.Int("n"), a.Int("m"), a.Int64("seed"), em)
		},
	})
}

// BoundsQuality delivers the paper's §1 bound-quality promise; see
// boundsQualityImpl. Kept for direct callers — the facade routes through
// the registry.
func BoundsQuality(instances, n, m int, seed int64) (*Table, error) {
	return run1(func(em *Emitter) error {
		return boundsQualityImpl(instances, n, m, seed, em)
	})
}

// boundsQualityImpl delivers the paper's §1 promise to "calculate bounds
// (not necessarily tight) to provide a rough notion of the quality of our
// local and global heuristics": on random small instances where the exact
// optima are computable, it reports each heuristic's makespan and pruned
// bandwidth as ratios to the certified optimum, alongside the §5.1 lower
// bounds' own tightness.
func boundsQualityImpl(instances, n, m int, seed int64, em *Emitter) error {
	em.Head(fmt.Sprintf("heuristic quality vs certified optima (%d random instances, n=%d, m=%d)",
		instances, n, m),
		"instance", "heuristic", "moves/opt", "bw/opt",
		"movesLB/opt", "flowLB/opt", "bwLB/opt")
	// The tiny instances are drawn serially from one RNG stream (each draw
	// depends on the previous); the expensive exact solves and heuristic
	// runs then fan out with one cell per instance.
	rng := rand.New(rand.NewSource(seed))
	insts := make([]*core.Instance, instances)
	for i := range insts {
		insts[i] = randomTinyInstance(rng, n, m)
	}
	type heurOutcome struct {
		steps, pruned int
		failed        bool
	}
	type boundsCell struct {
		optSteps, optBW, stepLB, flowLB, bwLB int
		heur                                  []heurOutcome
	}
	obs := telemetry.NewKernelObserver(em.Telemetry(), "sim").Observer()
	cells := make([]runner.Cell[boundsCell], instances)
	for i := range insts {
		i := i
		inst := insts[i]
		cells[i] = runner.Cell[boundsCell]{
			Key: fmt.Sprintf("inst%d", i),
			Run: func(cellSeed int64) (boundsCell, error) {
				fast, err := exact.SolveFOCD(inst, exact.Options{})
				if err != nil {
					return boundsCell{}, fmt.Errorf("instance %d focd: %w", i, err)
				}
				cheap, err := exact.SolveEOCD(inst, 0, exact.Options{})
				if err != nil {
					return boundsCell{}, fmt.Errorf("instance %d eocd: %w", i, err)
				}
				flowLB, err := flow.FlowMakespanLowerBound(inst)
				if err != nil {
					return boundsCell{}, fmt.Errorf("instance %d flow bound: %w", i, err)
				}
				cell := boundsCell{
					optSteps: fast.Makespan(), optBW: cheap.Moves(),
					stepLB: core.MakespanLowerBound(inst, nil),
					flowLB: flowLB,
					bwLB:   core.BandwidthLowerBound(inst, nil),
					heur:   make([]heurOutcome, len(heuristics.All())),
				}
				for h, factory := range heuristics.All() {
					res, err := sim.Run(inst, factory, sim.Options{Seed: cellSeed, Prune: true, Observer: obs})
					if err != nil || !res.Completed {
						cell.heur[h] = heurOutcome{failed: true}
						continue
					}
					cell.heur[h] = heurOutcome{steps: res.Steps, pruned: res.PrunedMoves}
				}
				return cell, nil
			},
		}
	}
	results, err := runner.Map(seed, cells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return err
	}
	for i, cell := range results {
		for h, out := range cell.heur {
			if out.failed {
				em.Emit(i, heuristics.Names()[h], "-", "-", "-", "-", "-")
				continue
			}
			em.Emit(i, heuristics.Names()[h],
				ratio(out.steps, cell.optSteps), ratio(out.pruned, cell.optBW),
				ratio(cell.stepLB, cell.optSteps), ratio(cell.flowLB, cell.optSteps), ratio(cell.bwLB, cell.optBW))
		}
	}
	em.Note("ratios are to the certified optimum: 1.00 is optimal; lower-bound ratios below 1.00 measure bound looseness")
	return nil
}

func ratio(x, opt int) string {
	if opt == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(x)/float64(opt))
}
