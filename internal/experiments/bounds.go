package experiments

import (
	"fmt"
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/exact"
	"ocd/internal/flow"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
)

// BoundsQuality delivers the paper's §1 promise to "calculate bounds (not
// necessarily tight) to provide a rough notion of the quality of our local
// and global heuristics": on random small instances where the exact optima
// are computable, it reports each heuristic's makespan and pruned
// bandwidth as ratios to the certified optimum, alongside the §5.1 lower
// bounds' own tightness.
func BoundsQuality(instances, n, m int, seed int64) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("heuristic quality vs certified optima (%d random instances, n=%d, m=%d)",
			instances, n, m),
		Columns: []string{"instance", "heuristic", "moves/opt", "bw/opt",
			"movesLB/opt", "flowLB/opt", "bwLB/opt"},
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < instances; i++ {
		inst := randomTinyInstance(rng, n, m)
		fast, err := exact.SolveFOCD(inst, exact.Options{})
		if err != nil {
			return nil, fmt.Errorf("instance %d focd: %w", i, err)
		}
		cheap, err := exact.SolveEOCD(inst, 0, exact.Options{})
		if err != nil {
			return nil, fmt.Errorf("instance %d eocd: %w", i, err)
		}
		optSteps, optBW := fast.Makespan(), cheap.Moves()
		stepLB := core.MakespanLowerBound(inst, nil)
		flowLB, err := flow.FlowMakespanLowerBound(inst)
		if err != nil {
			return nil, fmt.Errorf("instance %d flow bound: %w", i, err)
		}
		bwLB := core.BandwidthLowerBound(inst, nil)
		for h, factory := range heuristics.All() {
			res, err := sim.Run(inst, factory, sim.Options{Seed: seed + int64(i), Prune: true})
			if err != nil || !res.Completed {
				t.AddRow(i, heuristics.Names()[h], "-", "-", "-", "-", "-")
				continue
			}
			t.AddRow(i, heuristics.Names()[h],
				ratio(res.Steps, optSteps), ratio(res.PrunedMoves, optBW),
				ratio(stepLB, optSteps), ratio(flowLB, optSteps), ratio(bwLB, optBW))
		}
	}
	t.Notes = append(t.Notes,
		"ratios are to the certified optimum: 1.00 is optimal; lower-bound ratios below 1.00 measure bound looseness")
	return t, nil
}

func ratio(x, opt int) string {
	if opt == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(x)/float64(opt))
}
