package experiments

import (
	"runtime"
	"testing"

	"ocd/internal/topology"
)

// TestParallelSweepMatchesSerial is the end-to-end determinism golden test:
// the full heuristic grid on seeded transit-stub graphs must render to a
// byte-identical table at every parallelism. This is the user-visible form
// of the runner's contract (seeds derive from cell keys, results reassemble
// in canonical order) and it runs under -race in CI, so a data race between
// cells fails the build even when it does not corrupt the table.
func TestParallelSweepMatchesSerial(t *testing.T) {
	cfg := SweepConfig{
		Kind:       TransitStubGraph,
		Tokens:     24,
		Caps:       topology.DefaultCaps,
		GraphSeeds: 2,
		Repeats:    2,
		BaseSeed:   7,
	}
	sizes := []int{20, 30}

	render := func(parallelism int) string {
		cfg.Parallelism = parallelism
		tab, err := GraphSize(cfg, sizes)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return tab.CSV()
	}

	serial := render(1)
	// 2 and 4 exercise real worker pools even when GOMAXPROCS is 1;
	// 0 is the default (GOMAXPROCS) production path.
	for _, p := range []int{2, 4, 0, runtime.GOMAXPROCS(0)} {
		if got := render(p); got != serial {
			t.Errorf("parallelism %d table diverged from serial:\nserial:\n%s\nparallel:\n%s", p, serial, got)
		}
	}
}

// TestParallelChaosMatchesRepeatRun checks the stateful-model discipline:
// chaos cells construct their fault plans (Gilbert–Elliott loss, crash
// models — each owning a PRNG) inside Run, so two invocations must agree
// exactly even though cells run concurrently.
func TestParallelChaosMatchesRepeatRun(t *testing.T) {
	run := func() string {
		tab, err := Chaos(14, 8, []float64{0, 0.5}, []string{"local", "random"}, 3)
		if err != nil {
			t.Fatal(err)
		}
		return tab.CSV()
	}
	first := run()
	for i := 0; i < 2; i++ {
		if got := run(); got != first {
			t.Errorf("chaos run %d diverged:\n%s\nvs\n%s", i+1, first, got)
		}
	}
}
