package experiments

import (
	"errors"
	"fmt"
	"strings"

	"ocd/internal/fault"
	"ocd/internal/heuristics"
	"ocd/internal/protocol"
	"ocd/internal/runner"
	"ocd/internal/sim"
	"ocd/internal/telemetry"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

// chaosFactory resolves a heuristic name for the chaos harness: the five
// paper heuristics, "protocol-local", and any of those wrapped in the
// retry-with-backoff strategy via a "retry-" prefix. The plan is consulted
// so protocol strategies gossip over the plan's lossy channel — the engine
// applies the plan's other models itself.
func chaosFactory(name string, plan fault.Plan) (sim.Factory, error) {
	if inner, ok := strings.CutPrefix(name, "retry-"); ok {
		f, err := chaosFactory(inner, plan)
		if err != nil {
			return nil, err
		}
		return fault.WithRetry(f, fault.RetryOptions{}), nil
	}
	if f, ok := heuristics.Named(name); ok {
		return f, nil
	}
	if name == "protocol-local" {
		if plan.Gossip != nil {
			return protocol.LocalWithGossipLoss(plan.Gossip.Drop), nil
		}
		return protocol.Local, nil
	}
	return nil, fmt.Errorf("chaos: unknown heuristic %q (have %v, protocol-local, retry-<name>)",
		name, heuristics.Names())
}

// ResolveHeuristics resolves every name through the chaos naming scheme
// (paper heuristics, protocol-local, retry-<name>) against plan. It is the
// single validation point for the fault-layer sweeps (Chaos, Partition,
// ChurnSweep) and the spec layer's heuristic-list checks, so an unknown
// name produces one canonical error everywhere.
func ResolveHeuristics(names []string, plan fault.Plan) ([]sim.Factory, error) {
	fs := make([]sim.Factory, len(names))
	for i, name := range names {
		f, err := chaosFactory(name, plan)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return fs, nil
}

// chaosCell carries a faulted run's result through the runner; a stall is
// row data ("stalled" outcome), not a cell failure.
type chaosCell struct {
	res *fault.Result
	err error
}

// outcome folds a faulted run into one word for the table. Only a genuine
// stall reads as "stalled"; any other error is the cell's failure and must
// surface as one (see the drivers), never masquerade as a stall.
func outcome(res *fault.Result, err error) string {
	switch {
	case errors.Is(err, sim.ErrStalled):
		return "stalled"
	case err != nil:
		return "error"
	case res.Completed:
		return "completed"
	case res.Graceful:
		return "graceful"
	default:
		return "timeout"
	}
}

func init() {
	Register(Spec{
		Name:       "chaos",
		Facade:     "ExperimentChaos",
		Doc:        "fault intensity × heuristic sweep under the canonical chaos plan",
		SeedPolicy: SeedDerived,
		Params: []Param{
			{Name: "n", Kind: Int, Default: 30, Doc: "number of vertices", Check: checkPositive},
			{Name: "tokens", Kind: Int, Default: 24, Doc: "number of tokens in the file", Check: checkPositive},
			{Name: "intensities", Kind: Floats, Default: []float64{0, 0.25, 0.5, 0.75, 1},
				Doc: "fault intensities in [0,1]", Check: checkAll(checkNonEmpty, checkUnit)},
			{Name: "heuristics", Kind: Strings, Default: []string{"local", "bandwidth", "retry-local"},
				Doc: "heuristic names; retry-<name> wraps in the backoff sender", Check: checkChaosHeuristics},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed (topology, fault plan, strategies)"},
		},
		Smoke: map[string]string{"n": "12", "tokens": "6", "intensities": "0,0.5", "heuristics": "local,retry-local"},
		Run: func(a Args, em *Emitter) error {
			return chaosImpl(a.Int("n"), a.Int("tokens"), a.Floats("intensities"), a.Strings("heuristics"), a.Int64("seed"), em)
		},
	})
	Register(Spec{
		Name:       "crashed-source",
		Facade:     "ExperimentCrashedSource",
		Doc:        "crash-stop the sole source mid-distribution; graceful unsatisfiability report",
		SeedPolicy: SeedDerived,
		Params: []Param{
			{Name: "n", Kind: Int, Default: 30, Doc: "number of vertices", Check: checkPositive},
			{Name: "tokens", Kind: Int, Default: 24, Doc: "number of tokens in the file", Check: checkPositive},
			{Name: "crash-at", Kind: Int, Default: 2, Doc: "step at which the sole source crash-stops", Check: checkNonNegative},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed"},
		},
		Smoke: map[string]string{"n": "12", "tokens": "6", "crash-at": "1"},
		Run: func(a Args, em *Emitter) error {
			return crashedSourceImpl(a.Int("n"), a.Int("tokens"), a.Int("crash-at"), a.Int64("seed"), em)
		},
	})
}

// Chaos sweeps fault intensity × heuristic on one workload; see chaosImpl.
// Kept for direct callers — the facade routes through the registry.
func Chaos(n, tokens int, intensities []float64, heuristicNames []string, seed int64) (*Table, error) {
	return run1(func(em *Emitter) error {
		return chaosImpl(n, tokens, intensities, heuristicNames, seed, em)
	})
}

// chaosImpl sweeps fault intensity × heuristic on one workload: each cell
// runs the heuristic under the canonical composite plan fault.AtIntensity
// (bursty Gilbert–Elliott loss, random crash/recovery churn with download
// loss, gossip loss) and reports the degradation metrics next to a
// fault-free baseline of the same heuristic, so the "inflation" column is
// makespan under faults relative to makespan without.
func chaosImpl(n, tokens int, intensities []float64, heuristicNames []string, seed int64, em *Emitter) error {
	// Validate every name up front so an unknown heuristic fails before any
	// cell runs.
	if _, err := ResolveHeuristics(heuristicNames, fault.Plan{}); err != nil {
		return err
	}
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return err
	}
	inst := workload.SingleFile(g, tokens)
	em.Head(fmt.Sprintf("chaos sweep: fault intensity × heuristic (n=%d, %d tokens)",
		n, tokens),
		"intensity", "heuristic", "outcome", "delivered",
		"moves", "lost", "retrans", "wasted", "crashes", "inflation")

	// Every chaos cell shares one seed key: the original harness ran the
	// whole table off a single seed, and the intensity-0 cells must replay
	// the baseline run exactly for the inflation column to read 1.00.
	const chaosSeedKey = "chaos-workload"

	// Fault-free baselines give the inflation denominator per heuristic.
	baseCells := make([]runner.Cell[int], len(heuristicNames))
	for i, name := range heuristicNames {
		name := name
		baseCells[i] = runner.Cell[int]{
			Key:     "baseline/" + name,
			SeedKey: chaosSeedKey,
			Run: func(cellSeed int64) (int, error) {
				f, _ := chaosFactory(name, fault.Plan{}) // validated above
				res, err := fault.Run(inst, f, fault.Plan{}, sim.Options{Seed: cellSeed, IdlePatience: 40})
				if err != nil || !res.Completed {
					return 0, fmt.Errorf("fault-free baseline did not complete (err=%v)", err)
				}
				return res.Steps, nil
			},
		}
	}
	baseSteps, err := runner.Map(seed, baseCells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	baseline := make(map[string]int, len(heuristicNames))
	for i, name := range heuristicNames {
		baseline[name] = baseSteps[i]
	}

	// Grid cells: plans hold stateful loss/crash models (each owns a PRNG
	// advanced during the run), so every cell constructs its own plan inside
	// Run rather than sharing one per intensity.
	var cells []runner.Cell[chaosCell]
	for xi, x := range intensities {
		x := x
		for _, name := range heuristicNames {
			name := name
			cells = append(cells, runner.Cell[chaosCell]{
				Key:     fmt.Sprintf("x%d=%.2f/%s", xi, x, name),
				SeedKey: chaosSeedKey,
				Run: func(cellSeed int64) (chaosCell, error) {
					plan := fault.AtIntensity(x, cellSeed, 0) // vertex 0 is the source: protect it
					f, _ := chaosFactory(name, plan)          // validated above
					res, err := fault.Run(inst, f, plan, sim.Options{Seed: cellSeed, IdlePatience: 40})
					// A stall is row data; anything else fails the cell so it
					// reaches the process exit code.
					if err != nil && !errors.Is(err, sim.ErrStalled) {
						return chaosCell{}, fmt.Errorf("intensity %.2f: %w", x, err)
					}
					return chaosCell{res: res, err: err}, nil
				},
			})
		}
	}
	results, err := runner.Map(seed, cells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}

	idx := 0
	for _, x := range intensities {
		for _, name := range heuristicNames {
			cell := results[idx]
			idx++
			res := cell.res
			inflation := "-"
			if res.Completed && baseline[name] > 0 {
				inflation = fmt.Sprintf("%.2f", float64(res.Steps)/float64(baseline[name]))
			}
			em.Emit(fmt.Sprintf("%.2f", x), name, outcome(res, cell.err),
				fmt.Sprintf("%.0f%%", res.DeliveredFraction*100),
				res.Moves, res.Lost, res.Retransmissions, res.WastedMoves,
				res.Crashes, inflation)
		}
	}
	em.Note("intensity x scales the canonical plan: Gilbert–Elliott loss, crash/recovery churn (source protected), download loss on crash, gossip loss")
	em.Note("inflation is faulted makespan over the same heuristic's fault-free makespan; '-' when the faulted run did not complete")
	em.Note("retry-<name> wraps a heuristic in the retry-with-backoff sender")
	return nil
}

// CrashedSource demonstrates graceful degradation on the harshest fault;
// see crashedSourceImpl. Kept for direct callers — the facade routes
// through the registry.
func CrashedSource(n, tokens, crashAt int, seed int64) (*Table, error) {
	return run1(func(em *Emitter) error {
		return crashedSourceImpl(n, tokens, crashAt, seed, em)
	})
}

// crashedSourceImpl demonstrates graceful degradation on the harshest
// fault: the sole holder of the file crash-stops mid-distribution.
// Whatever the source pushed out before dying keeps spreading; every token
// it still held exclusively becomes provably undeliverable, and the run
// terminates with an explicit unsatisfiable-receiver report instead of
// idling to the Theorem 1 horizon.
func crashedSourceImpl(n, tokens, crashAt int, seed int64, em *Emitter) error {
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return err
	}
	inst := workload.SingleFile(g, tokens)
	em.Head(fmt.Sprintf("crashed sole source: crash-stop at step %d (n=%d, %d tokens, horizon %d)",
		crashAt, n, tokens, inst.TheoremOneHorizon()),
		"heuristic", "outcome", "steps", "delivered",
		"unsatisfiable", "moves", "lost")
	factories := heuristics.All()
	cells := make([]runner.Cell[chaosCell], len(factories))
	for i, f := range factories {
		f := f
		cells[i] = runner.Cell[chaosCell]{
			Key:     "crash/" + heuristics.Names()[i],
			SeedKey: "crash-workload",
			Run: func(cellSeed int64) (chaosCell, error) {
				plan := fault.Plan{
					Crashes: fault.CrashSchedule{Events: []fault.CrashEvent{
						{V: 0, At: crashAt, RecoverAt: -1},
					}},
				}
				res, err := fault.Run(inst, f, plan, sim.Options{Seed: cellSeed, IdlePatience: 40})
				if err != nil && !errors.Is(err, sim.ErrStalled) {
					return chaosCell{}, err
				}
				return chaosCell{res: res, err: err}, nil
			},
		}
	}
	results, err := runner.Map(seed, cells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return fmt.Errorf("crashed source: %w", err)
	}
	for i := range factories {
		res := results[i].res
		em.Emit(heuristics.Names()[i], outcome(res, results[i].err), res.Steps,
			fmt.Sprintf("%.0f%%", res.DeliveredFraction*100),
			len(res.Unsatisfiable), res.Moves, res.Lost)
	}
	em.Note("the source crash-stops holding every token not yet pushed out; those become provably undeliverable")
	em.Note("'graceful' rows terminated via live-holder reachability detection, well before the m(n-1) horizon and without an IdlePatience stall")
	return nil
}
