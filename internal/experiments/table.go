// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) plus the analytical results (Figure 1, Figure 7,
// Theorem 4, and the §3.4 integer program): one configurable runner per
// experiment, each emitting the same data series the paper plots.
//
// A note on terminology: §5 uses "moves" for the number of *turns*
// (timesteps, the makespan) a heuristic needs and "bandwidth" for the
// number of token transfers. Tables below follow the paper's usage.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the series a paper figure plots.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries qualitative observations to compare against the
	// paper's claims.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// ASCII renders the table with aligned columns.
func (t *Table) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells are numeric or
// simple identifiers, so no quoting is needed).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
