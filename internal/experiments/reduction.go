package experiments

import (
	"fmt"
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/exact"
	"ocd/internal/npc"
)

func init() {
	Register(Spec{
		Name:       "figure7",
		Facade:     "ExperimentFigure7",
		Doc:        "Figure 7 / Theorem 5: the Dominating Set → FOCD reduction on random graphs",
		SeedPolicy: SeedDerived,
		Params: []Param{
			{Name: "graphs", Kind: Int, Default: 3, Doc: "number of random graphs", Check: checkPositive},
			{Name: "n", Kind: Int, Default: 6, Doc: "vertices per graph", Check: checkPositive},
			{Name: "edge-p", Kind: Float, Default: 0.4, Doc: "edge probability in [0,1]", Check: checkUnit},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed for the graph stream"},
		},
		Smoke: map[string]string{"graphs": "1", "n": "5"},
		Run: func(a Args, em *Emitter) error {
			return figure7Impl(a.Int("graphs"), a.Int("n"), a.Float("edge-p"), a.Int64("seed"), em)
		},
	})
}

// Figure7 exercises the appendix reduction (Theorem 5); see figure7Impl.
// Kept for direct callers — the facade routes through the registry.
func Figure7(graphs, n int, edgeP float64, seed int64) (*Table, error) {
	return run1(func(em *Emitter) error {
		return figure7Impl(graphs, n, edgeP, seed, em)
	})
}

// figure7Impl exercises the appendix reduction (Theorem 5): for random
// small undirected graphs and every k, it checks that G has a dominating
// set of size ≤ k if and only if the reduced FOCD instance completes in two
// timesteps. The forward direction is certified constructively (the proof's
// two-step schedule is built and validated); the reverse direction is
// certified with the exact FOCD solver.
func figure7Impl(graphs, n int, edgeP float64, seed int64, em *Emitter) error {
	em.Head("Figure 7: Dominating Set -> FOCD reduction (Theorem 5)",
		"graph", "n", "edges", "minDS", "k", "ds<=k", "focd-tau", "agree")
	rng := rand.New(rand.NewSource(seed))
	for gi := 0; gi < graphs; gi++ {
		ug := randomUGraph(rng, n, edgeP)
		minDS, err := npc.MinDominatingSet(ug)
		if err != nil {
			return err
		}
		for k := 0; k <= n; k++ {
			red, err := npc.Reduce(ug, k)
			if err != nil {
				return err
			}
			hasDS := len(minDS) <= k
			var tau int
			if hasDS {
				// Constructive direction: build and validate the proof's
				// two-step schedule.
				sched, err := red.ScheduleFromDominatingSet(ug, minDS)
				if err != nil {
					return fmt.Errorf("graph %d k=%d: %w", gi, k, err)
				}
				if verr := core.Validate(red.Inst, sched); verr != nil {
					return fmt.Errorf("graph %d k=%d: constructed schedule invalid: %w", gi, k, verr)
				}
				tau = sched.Makespan()
			} else {
				// Soundness direction: the exact solver must need > 2 steps.
				sched, err := exact.SolveFOCD(red.Inst, exact.Options{MaxNodes: 2_000_000})
				if err != nil {
					return fmt.Errorf("graph %d k=%d focd: %w", gi, k, err)
				}
				tau = sched.Makespan()
			}
			agree := hasDS == (tau <= 2)
			em.Emit(gi, n, len(ug.Edges), len(minDS), k, hasDS, tau, agree)
		}
	}
	em.Note("Theorem 5: dominating set of size <= k exists iff the reduced FOCD instance completes in 2 timesteps")
	return nil
}

func randomUGraph(rng *rand.Rand, n int, p float64) *npc.UGraph {
	g := &npc.UGraph{N: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.Edges = append(g.Edges, [2]int{u, v})
			}
		}
	}
	return g
}
