package experiments

// Partition and churn sweeps: the robustness-layer drivers. Both sweep a
// fault-severity axis × heuristic under the deterministic partition/churn
// models, optionally with the kernel invariant monitor attached (any
// violation fails the cell, and therefore the process) and with a crash-
// safety journal so a killed sweep resumes from its completed cells.

import (
	"errors"
	"fmt"

	"ocd/internal/core"
	"ocd/internal/fault"
	"ocd/internal/runner"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/trace"
	"ocd/internal/workload"
)

// FaultSweepOptions configures the partition/churn sweeps' harness ring —
// everything orthogonal to the experimental axes.
type FaultSweepOptions struct {
	// JournalPath, when non-empty, journals completed cells to this JSONL
	// file and resumes from it (see runner.Journal).
	JournalPath string
	// Monitor attaches the kernel invariant monitor to every run; a
	// violation fails the cell.
	Monitor bool
	// Parallelism is forwarded to the runner. Zero means GOMAXPROCS.
	Parallelism int
}

// faultRow is one sweep cell's outcome. Every field is JSON-round-trippable
// so journaled cells resume to byte-identical tables.
type faultRow struct {
	Outcome    string  `json:"outcome"`
	Liveness   string  `json:"liveness"`
	Delivered  float64 `json:"delivered"`
	Steps      int     `json:"steps"`
	Moves      int     `json:"moves"`
	Lost       int     `json:"lost"`
	Retrans    int     `json:"retrans"`
	Wasted     int     `json:"wasted"`
	Crashes    int     `json:"crashes"`
	Departures int     `json:"departures"`
}

// runFaultCell executes one sweep cell: build the plan, optionally attach
// the monitor, run, classify. Genuine failures (anything but a stall, plus
// any invariant violation) fail the cell.
func runFaultCell(c sweepCell) (faultRow, error) {
	plan := c.plan()
	f, err := chaosFactory(c.heuristic, plan)
	if err != nil {
		return faultRow{}, err
	}
	opts := sim.Options{Seed: c.seed, IdlePatience: 40}
	var mon *trace.InvariantMonitor
	if c.monitor {
		mon = trace.NewInvariantMonitor(c.inst, trace.InvariantConfig{
			Down: plan.DownAt, Capacity: plan.EffectiveCapacity,
		})
		opts.Observer = mon
	}
	res, err := fault.Run(c.inst, f, plan, opts)
	if err != nil && !errors.Is(err, sim.ErrStalled) {
		return faultRow{}, err
	}
	if mon != nil {
		if merr := mon.Err(); merr != nil {
			return faultRow{}, merr
		}
	}
	return faultRow{
		Outcome:    outcome(res, err),
		Liveness:   string(res.Liveness),
		Delivered:  res.DeliveredFraction,
		Steps:      res.Steps,
		Moves:      res.Moves,
		Lost:       res.Lost,
		Retrans:    res.Retransmissions,
		Wasted:     res.WastedMoves,
		Crashes:    res.Crashes,
		Departures: res.Departures,
	}, nil
}

// sweepCell bundles runFaultCell's inputs.
type sweepCell struct {
	inst      *core.Instance
	heuristic string
	seed      int64
	monitor   bool
	plan      func() fault.Plan
}

// partitionStartP is the per-step episode start probability of the
// partition sweep. Makespans here are short (single-digit steps on the
// default workloads), so a modest rate would often let a run finish before
// any episode begins and the heal-time axis would read as eight identical
// baselines; a high rate guarantees cuts bite within the first steps.
const partitionStartP = 0.5

// Partition sweeps partition heal time × heuristic: the overlay is split
// into k sides by the seeded RandomPartitions model, cross-side arcs sever
// during episodes, and each column of the sweep gives the episodes a
// different heal time (negative: the first episode never heals). The
// liveness column separates "stalled but satisfiable once healed" from
// proven unsatisfiability.
func Partition(n, tokens, k int, healAfters []int, heuristicNames []string, seed int64, opts FaultSweepOptions) (*Table, error) {
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return nil, err
	}
	inst := workload.SingleFile(g, tokens)
	t := &Table{
		Title: fmt.Sprintf("partition sweep: heal time × heuristic (n=%d, %d tokens, k=%d sides)",
			n, tokens, k),
		Columns: []string{"heal", "heuristic", "outcome", "liveness", "delivered",
			"steps", "moves", "lost", "retrans"},
	}
	for _, name := range heuristicNames {
		if _, err := chaosFactory(name, fault.Plan{}); err != nil {
			return nil, err
		}
	}

	var cells []runner.Cell[faultRow]
	for hi, heal := range healAfters {
		heal := heal
		for _, name := range heuristicNames {
			name := name
			cells = append(cells, runner.Cell[faultRow]{
				Key:     fmt.Sprintf("heal%d=%d/%s", hi, heal, name),
				SeedKey: "partition-workload",
				Run: func(cellSeed int64) (faultRow, error) {
					return runFaultCell(sweepCell{
						inst: inst, heuristic: name, seed: cellSeed, monitor: opts.Monitor,
						plan: func() fault.Plan {
							return fault.Plan{
								Partitions: fault.NewRandomPartitions(k, partitionStartP, heal, cellSeed),
							}
						},
					})
				},
			})
		}
	}
	rows, err := mapWithJournal(seed, cells, opts)
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}

	idx := 0
	for _, heal := range healAfters {
		label := fmt.Sprintf("%d", heal)
		if heal < 0 {
			label = "never"
		}
		for _, name := range heuristicNames {
			r := rows[idx]
			idx++
			t.AddRow(label, name, r.Outcome, r.Liveness,
				fmt.Sprintf("%.0f%%", r.Delivered*100),
				r.Steps, r.Moves, r.Lost, r.Retrans)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("RandomPartitions splits the overlay into %d seeded sides; episodes start with p=%.2f per step and last the heal time", k, partitionStartP),
		"liveness 'healable' marks runs stalled behind transient cuts — satisfiable once healed; 'unsatisfiable' marks proven dead wants")
	if opts.Monitor {
		t.Notes = append(t.Notes, "kernel invariant monitor attached: any violation fails the sweep")
	}
	return t, nil
}

// ChurnSweep sweeps membership churn rate × heuristic: members leave with
// the per-step probability of the column (losing all state) and rejoin
// empty with probability rejoinP; the source is protected. rejoinP of 0
// makes every departure permanent.
func ChurnSweep(n, tokens int, leaveRates []float64, rejoinP float64, heuristicNames []string, seed int64, opts FaultSweepOptions) (*Table, error) {
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return nil, err
	}
	inst := workload.SingleFile(g, tokens)
	t := &Table{
		Title: fmt.Sprintf("churn sweep: leave rate × heuristic (n=%d, %d tokens, rejoin %.2f)",
			n, tokens, rejoinP),
		Columns: []string{"leave", "heuristic", "outcome", "liveness", "delivered",
			"steps", "departures", "retrans", "wasted"},
	}
	for _, name := range heuristicNames {
		if _, err := chaosFactory(name, fault.Plan{}); err != nil {
			return nil, err
		}
	}

	var cells []runner.Cell[faultRow]
	for li, leave := range leaveRates {
		leave := leave
		for _, name := range heuristicNames {
			name := name
			cells = append(cells, runner.Cell[faultRow]{
				Key:     fmt.Sprintf("leave%d=%.3f/%s", li, leave, name),
				SeedKey: "churn-workload",
				Run: func(cellSeed int64) (faultRow, error) {
					return runFaultCell(sweepCell{
						inst: inst, heuristic: name, seed: cellSeed, monitor: opts.Monitor,
						plan: func() fault.Plan {
							return fault.Plan{
								Churn: fault.NewRandomChurn(leave, rejoinP, cellSeed, 0),
							}
						},
					})
				},
			})
		}
	}
	rows, err := mapWithJournal(seed, cells, opts)
	if err != nil {
		return nil, fmt.Errorf("churn: %w", err)
	}

	idx := 0
	for _, leave := range leaveRates {
		for _, name := range heuristicNames {
			r := rows[idx]
			idx++
			t.AddRow(fmt.Sprintf("%.3f", leave), name, r.Outcome, r.Liveness,
				fmt.Sprintf("%.0f%%", r.Delivered*100),
				r.Steps, r.Departures, r.Retrans, r.Wasted)
		}
	}
	t.Notes = append(t.Notes,
		"departing members lose everything they downloaded and rejoin empty; the source (vertex 0) never leaves",
		"liveness 'healable' marks runs stalled behind transient absences; 'unsatisfiable' marks proven dead wants")
	if opts.Monitor {
		t.Notes = append(t.Notes, "kernel invariant monitor attached: any violation fails the sweep")
	}
	return t, nil
}

// mapWithJournal forwards a sweep to the runner, wiring up the optional
// crash-safety journal.
func mapWithJournal(seed int64, cells []runner.Cell[faultRow], opts FaultSweepOptions) ([]faultRow, error) {
	ropts := runner.Options{Parallelism: opts.Parallelism}
	if opts.JournalPath != "" {
		j, err := runner.OpenJournal(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		ropts.Journal = j
	}
	return runner.Map(seed, cells, ropts)
}
