package experiments

// Partition and churn sweeps: the robustness-layer drivers. Both sweep a
// fault-severity axis × heuristic under the deterministic partition/churn
// models, optionally with the kernel invariant monitor attached (any
// violation fails the cell, and therefore the process) and with a crash-
// safety journal so a killed sweep resumes from its completed cells.

import (
	"errors"
	"fmt"

	"ocd/internal/core"
	"ocd/internal/fault"
	"ocd/internal/runner"
	"ocd/internal/sim"
	"ocd/internal/telemetry"
	"ocd/internal/topology"
	"ocd/internal/trace"
	"ocd/internal/workload"
)

// FaultSweepOptions configures the partition/churn sweeps' harness ring —
// everything orthogonal to the experimental axes.
type FaultSweepOptions struct {
	// JournalPath, when non-empty, journals completed cells to this JSONL
	// file and resumes from it (see runner.Journal).
	JournalPath string
	// Monitor attaches the kernel invariant monitor to every run; a
	// violation fails the cell.
	Monitor bool
	// Parallelism is forwarded to the runner. Zero means GOMAXPROCS.
	Parallelism int
	// Telemetry, when non-nil, receives runner cell metrics from the
	// sweep. Kernel step-phase counters are not collected here: the
	// invariant monitor occupies the single kernel Observer seat when
	// -monitor is set, and fault cells keep that seat free for it.
	Telemetry *telemetry.Registry
}

// harnessParams is the shared parameter-schema tail of every spec whose
// driver takes FaultSweepOptions: the crash-safety journal, the invariant
// monitor, and runner parallelism.
func harnessParams() []Param {
	return []Param{
		{Name: "journal", Kind: String, Default: "", Doc: "crash-safety journal path; re-invoking with the same journal resumes from completed cells"},
		{Name: "monitor", Kind: Bool, Default: false, Doc: "attach the kernel invariant monitor; any violation fails the run"},
		{Name: "parallelism", Kind: Int, Default: 0, Doc: "runner worker count (0 = GOMAXPROCS); output is identical at every setting", Check: checkNonNegative},
	}
}

// harnessOptions reads the harnessParams tail back out of resolved args.
func harnessOptions(a Args) FaultSweepOptions {
	return FaultSweepOptions{
		JournalPath: a.String("journal"),
		Monitor:     a.Bool("monitor"),
		Parallelism: a.Int("parallelism"),
	}
}

// faultRow is one sweep cell's outcome. Every field is JSON-round-trippable
// so journaled cells resume to byte-identical tables.
type faultRow struct {
	Outcome    string  `json:"outcome"`
	Liveness   string  `json:"liveness"`
	Delivered  float64 `json:"delivered"`
	Steps      int     `json:"steps"`
	Moves      int     `json:"moves"`
	Lost       int     `json:"lost"`
	Retrans    int     `json:"retrans"`
	Wasted     int     `json:"wasted"`
	Crashes    int     `json:"crashes"`
	Departures int     `json:"departures"`
}

// runFaultCell executes one sweep cell: build the plan, optionally attach
// the monitor, run, classify. Genuine failures (anything but a stall, plus
// any invariant violation) fail the cell.
func runFaultCell(c sweepCell) (faultRow, error) {
	plan := c.plan()
	f, err := chaosFactory(c.heuristic, plan)
	if err != nil {
		return faultRow{}, err
	}
	opts := sim.Options{Seed: c.seed, IdlePatience: 40}
	var mon *trace.InvariantMonitor
	if c.monitor {
		mon = trace.NewInvariantMonitor(c.inst, trace.InvariantConfig{
			Down: plan.DownAt, Capacity: plan.EffectiveCapacity,
		})
		opts.Observer = mon
	}
	res, err := fault.Run(c.inst, f, plan, opts)
	if err != nil && !errors.Is(err, sim.ErrStalled) {
		return faultRow{}, err
	}
	if mon != nil {
		if merr := mon.Err(); merr != nil {
			return faultRow{}, merr
		}
	}
	return faultRow{
		Outcome:    outcome(res, err),
		Liveness:   string(res.Liveness),
		Delivered:  res.DeliveredFraction,
		Steps:      res.Steps,
		Moves:      res.Moves,
		Lost:       res.Lost,
		Retrans:    res.Retransmissions,
		Wasted:     res.WastedMoves,
		Crashes:    res.Crashes,
		Departures: res.Departures,
	}, nil
}

// sweepCell bundles runFaultCell's inputs.
type sweepCell struct {
	inst      *core.Instance
	heuristic string
	seed      int64
	monitor   bool
	plan      func() fault.Plan
}

// partitionStartP is the per-step episode start probability of the
// partition sweep. Makespans here are short (single-digit steps on the
// default workloads), so a modest rate would often let a run finish before
// any episode begins and the heal-time axis would read as eight identical
// baselines; a high rate guarantees cuts bite within the first steps.
const partitionStartP = 0.5

// checkPartitionSides requires at least two partition sides — one side
// would make every "partition" a no-op.
func checkPartitionSides(v any) error {
	if k := v.(int); k < 2 {
		return fmt.Errorf("must be at least 2, got %d", k)
	}
	return nil
}

func init() {
	Register(Spec{
		Name:       "partition",
		Facade:     "ExperimentPartition",
		Doc:        "partition heal time × heuristic under the k-way RandomPartitions model",
		SeedPolicy: SeedDerived,
		Params: append([]Param{
			{Name: "n", Kind: Int, Default: 30, Doc: "number of vertices", Check: checkPositive},
			{Name: "tokens", Kind: Int, Default: 24, Doc: "number of tokens in the file", Check: checkPositive},
			{Name: "k", Kind: Int, Default: 2, Doc: "number of partition sides", Check: checkPartitionSides},
			{Name: "heal", Kind: Ints, Default: []int{0, 4, 16, -1},
				Doc: "partition heal times in steps; negative = never heals", Check: checkNonEmpty},
			{Name: "heuristics", Kind: Strings, Default: []string{"local", "bandwidth", "retry-local"},
				Doc: "heuristic names; retry-<name> wraps in the backoff sender", Check: checkChaosHeuristics},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed (topology, partition model, strategies)"},
		}, harnessParams()...),
		Smoke: map[string]string{"n": "12", "tokens": "6", "heal": "0,-1", "heuristics": "local"},
		Run: func(a Args, em *Emitter) error {
			opts := harnessOptions(a)
			opts.Telemetry = em.Telemetry()
			return partitionImpl(a.Int("n"), a.Int("tokens"), a.Int("k"), a.Ints("heal"),
				a.Strings("heuristics"), a.Int64("seed"), opts, em)
		},
	})
	Register(Spec{
		Name:       "churn",
		Facade:     "ExperimentChurn",
		Doc:        "membership churn rate × heuristic; members leave losing all state and rejoin empty",
		SeedPolicy: SeedDerived,
		Params: append([]Param{
			{Name: "n", Kind: Int, Default: 30, Doc: "number of vertices", Check: checkPositive},
			{Name: "tokens", Kind: Int, Default: 24, Doc: "number of tokens in the file", Check: checkPositive},
			{Name: "leave", Kind: Floats, Default: []float64{0, 0.02, 0.05, 0.1},
				Doc: "per-step leave probabilities in [0,1]", Check: checkAll(checkNonEmpty, checkUnit)},
			{Name: "rejoin", Kind: Float, Default: 0.5,
				Doc: "per-step rejoin probability for absent members; 0 = departures are permanent", Check: checkUnit},
			{Name: "heuristics", Kind: Strings, Default: []string{"local", "bandwidth", "retry-local"},
				Doc: "heuristic names; retry-<name> wraps in the backoff sender", Check: checkChaosHeuristics},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed (topology, churn model, strategies)"},
		}, harnessParams()...),
		Smoke: map[string]string{"n": "12", "tokens": "6", "leave": "0,0.05", "heuristics": "local"},
		Run: func(a Args, em *Emitter) error {
			opts := harnessOptions(a)
			opts.Telemetry = em.Telemetry()
			return churnImpl(a.Int("n"), a.Int("tokens"), a.Floats("leave"), a.Float("rejoin"),
				a.Strings("heuristics"), a.Int64("seed"), opts, em)
		},
	})
}

// Partition sweeps partition heal time × heuristic; see partitionImpl.
// Kept for direct callers — the facade routes through the registry.
func Partition(n, tokens, k int, healAfters []int, heuristicNames []string, seed int64, opts FaultSweepOptions) (*Table, error) {
	return run1(func(em *Emitter) error {
		return partitionImpl(n, tokens, k, healAfters, heuristicNames, seed, opts, em)
	})
}

// partitionImpl sweeps partition heal time × heuristic: the overlay is
// split into k sides by the seeded RandomPartitions model, cross-side arcs
// sever during episodes, and each column of the sweep gives the episodes a
// different heal time (negative: the first episode never heals). The
// liveness column separates "stalled but satisfiable once healed" from
// proven unsatisfiability.
func partitionImpl(n, tokens, k int, healAfters []int, heuristicNames []string, seed int64, opts FaultSweepOptions, em *Emitter) error {
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return err
	}
	inst := workload.SingleFile(g, tokens)
	em.Head(fmt.Sprintf("partition sweep: heal time × heuristic (n=%d, %d tokens, k=%d sides)",
		n, tokens, k),
		"heal", "heuristic", "outcome", "liveness", "delivered",
		"steps", "moves", "lost", "retrans")
	if _, err := ResolveHeuristics(heuristicNames, fault.Plan{}); err != nil {
		return err
	}

	var cells []runner.Cell[faultRow]
	for hi, heal := range healAfters {
		heal := heal
		for _, name := range heuristicNames {
			name := name
			cells = append(cells, runner.Cell[faultRow]{
				Key:     fmt.Sprintf("heal%d=%d/%s", hi, heal, name),
				SeedKey: "partition-workload",
				Run: func(cellSeed int64) (faultRow, error) {
					return runFaultCell(sweepCell{
						inst: inst, heuristic: name, seed: cellSeed, monitor: opts.Monitor,
						plan: func() fault.Plan {
							return fault.Plan{
								Partitions: fault.NewRandomPartitions(k, partitionStartP, heal, cellSeed),
							}
						},
					})
				},
			})
		}
	}
	rows, err := mapWithJournal(seed, cells, opts)
	if err != nil {
		return fmt.Errorf("partition: %w", err)
	}

	idx := 0
	for _, heal := range healAfters {
		label := fmt.Sprintf("%d", heal)
		if heal < 0 {
			label = "never"
		}
		for _, name := range heuristicNames {
			r := rows[idx]
			idx++
			em.Emit(label, name, r.Outcome, r.Liveness,
				fmt.Sprintf("%.0f%%", r.Delivered*100),
				r.Steps, r.Moves, r.Lost, r.Retrans)
		}
	}
	em.Notef("RandomPartitions splits the overlay into %d seeded sides; episodes start with p=%.2f per step and last the heal time", k, partitionStartP)
	em.Note("liveness 'healable' marks runs stalled behind transient cuts — satisfiable once healed; 'unsatisfiable' marks proven dead wants")
	if opts.Monitor {
		em.Note("kernel invariant monitor attached: any violation fails the sweep")
	}
	return nil
}

// ChurnSweep sweeps membership churn rate × heuristic; see churnImpl. Kept
// for direct callers — the facade routes through the registry.
func ChurnSweep(n, tokens int, leaveRates []float64, rejoinP float64, heuristicNames []string, seed int64, opts FaultSweepOptions) (*Table, error) {
	return run1(func(em *Emitter) error {
		return churnImpl(n, tokens, leaveRates, rejoinP, heuristicNames, seed, opts, em)
	})
}

// churnImpl sweeps membership churn rate × heuristic: members leave with
// the per-step probability of the column (losing all state) and rejoin
// empty with probability rejoinP; the source is protected. rejoinP of 0
// makes every departure permanent.
func churnImpl(n, tokens int, leaveRates []float64, rejoinP float64, heuristicNames []string, seed int64, opts FaultSweepOptions, em *Emitter) error {
	g, err := topology.Random(n, topology.DefaultCaps, seed)
	if err != nil {
		return err
	}
	inst := workload.SingleFile(g, tokens)
	em.Head(fmt.Sprintf("churn sweep: leave rate × heuristic (n=%d, %d tokens, rejoin %.2f)",
		n, tokens, rejoinP),
		"leave", "heuristic", "outcome", "liveness", "delivered",
		"steps", "departures", "retrans", "wasted")
	if _, err := ResolveHeuristics(heuristicNames, fault.Plan{}); err != nil {
		return err
	}

	var cells []runner.Cell[faultRow]
	for li, leave := range leaveRates {
		leave := leave
		for _, name := range heuristicNames {
			name := name
			cells = append(cells, runner.Cell[faultRow]{
				Key:     fmt.Sprintf("leave%d=%.3f/%s", li, leave, name),
				SeedKey: "churn-workload",
				Run: func(cellSeed int64) (faultRow, error) {
					return runFaultCell(sweepCell{
						inst: inst, heuristic: name, seed: cellSeed, monitor: opts.Monitor,
						plan: func() fault.Plan {
							return fault.Plan{
								Churn: fault.NewRandomChurn(leave, rejoinP, cellSeed, 0),
							}
						},
					})
				},
			})
		}
	}
	rows, err := mapWithJournal(seed, cells, opts)
	if err != nil {
		return fmt.Errorf("churn: %w", err)
	}

	idx := 0
	for _, leave := range leaveRates {
		for _, name := range heuristicNames {
			r := rows[idx]
			idx++
			em.Emit(fmt.Sprintf("%.3f", leave), name, r.Outcome, r.Liveness,
				fmt.Sprintf("%.0f%%", r.Delivered*100),
				r.Steps, r.Departures, r.Retrans, r.Wasted)
		}
	}
	em.Note("departing members lose everything they downloaded and rejoin empty; the source (vertex 0) never leaves")
	em.Note("liveness 'healable' marks runs stalled behind transient absences; 'unsatisfiable' marks proven dead wants")
	if opts.Monitor {
		em.Note("kernel invariant monitor attached: any violation fails the sweep")
	}
	return nil
}

// mapWithJournal forwards a sweep to the runner, wiring up the optional
// crash-safety journal. The journal's close error is propagated: a
// journal that cannot flush its tail would silently lose completed cells
// on the next resume.
func mapWithJournal(seed int64, cells []runner.Cell[faultRow], opts FaultSweepOptions) ([]faultRow, error) {
	ropts := runner.Options{
		Parallelism: opts.Parallelism,
		Metrics:     telemetry.NewRunnerMetrics(opts.Telemetry),
	}
	var j *runner.Journal
	if opts.JournalPath != "" {
		var err error
		j, err = runner.OpenJournal(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		ropts.Journal = j
	}
	rows, err := runner.Map(seed, cells, ropts)
	if j != nil {
		if cerr := j.Close(); cerr != nil && err == nil {
			return nil, fmt.Errorf("journal close: %w", cerr)
		}
	}
	return rows, err
}
