package experiments

import (
	"fmt"

	"ocd/internal/competitive"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

// Theorem4 demonstrates that no c-competitive online algorithm exists for
// FOCD: on the adversarial family (a path whose far endpoint wants one of
// m tokens), the worst-case makespan of the knowledge-free online
// algorithm grows linearly in the number of decoy tokens while the offline
// optimum stays at the path length, so the ratio is unbounded.
func Theorem4(pathLen int, decoySweep []int, capacity int) (*Table, error) {
	t := &Table{
		Title:   "Theorem 4: unbounded competitive ratio on the adversarial family",
		Columns: []string{"decoys", "path", "online-makespan", "offline-optimum", "ratio"},
	}
	for _, d := range decoySweep {
		pt, err := competitive.WorstCaseRatio(pathLen, d+1, capacity)
		if err != nil {
			return nil, fmt.Errorf("theorem4 decoys=%d: %w", d, err)
		}
		t.AddRow(pt.Decoys, pt.PathLen, pt.Online, pt.Offline, fmt.Sprintf("%.2f", pt.Ratio))
	}
	t.Notes = append(t.Notes,
		"Theorem 4: the ratio grows without bound in the decoy count, so no fixed c suffices")
	return t, nil
}

// OracleAdditive demonstrates the §4.2 upper bound: an online algorithm
// that first lets knowledge propagate for diameter steps and then follows
// a globally planned schedule finishes within an additive diameter of that
// plan. Measured on random graphs with a single-file workload.
func OracleAdditive(sizes []int, tokens int, seed int64) (*Table, error) {
	t := &Table{
		Title:   "§4.2: propagate-then-plan oracle is within an additive diameter",
		Columns: []string{"n", "diameter", "oracle-makespan", "planned-makespan", "additive-gap", "within-diameter"},
	}
	for _, n := range sizes {
		g, err := topology.Random(n, topology.DefaultCaps, seed)
		if err != nil {
			return nil, err
		}
		inst := workload.SingleFile(g, tokens)
		planned, err := sim.Run(inst, heuristics.Global, sim.Options{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("oracle additive n=%d planned: %w", n, err)
		}
		oracle, err := competitive.RunOracle(inst, heuristics.Global, seed)
		if err != nil {
			return nil, fmt.Errorf("oracle additive n=%d oracle: %w", n, err)
		}
		diam := g.Diameter()
		gap := oracle.Steps - planned.Steps
		t.AddRow(n, diam, oracle.Steps, planned.Steps, gap, gap <= diam)
	}
	return t, nil
}
