package experiments

import (
	"fmt"

	"ocd/internal/competitive"
	"ocd/internal/heuristics"
	"ocd/internal/runner"
	"ocd/internal/sim"
	"ocd/internal/telemetry"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func init() {
	Register(Spec{
		Name:       "theorem4",
		Facade:     "ExperimentTheorem4",
		Doc:        "Theorem 4: unbounded competitive ratio on the adversarial decoy family",
		SeedPolicy: SeedNone,
		Params: []Param{
			{Name: "path", Kind: Int, Default: 1, Doc: "length of the adversarial path", Check: checkPositive},
			{Name: "decoys", Kind: Ints, Default: []int{1, 4, 16, 64}, Doc: "decoy token counts to sweep", Check: checkAll(checkNonEmpty, checkPositive)},
			{Name: "capacity", Kind: Int, Default: 1, Doc: "arc capacity on the path", Check: checkPositive},
		},
		Smoke: map[string]string{"decoys": "1,4"},
		Run: func(a Args, em *Emitter) error {
			return theorem4Impl(a.Int("path"), a.Ints("decoys"), a.Int("capacity"), em)
		},
	})
	Register(Spec{
		Name:       "oracle-additive",
		Facade:     "ExperimentOracleAdditive",
		Doc:        "§4.2: the propagate-then-plan oracle finishes within an additive graph diameter",
		SeedPolicy: SeedDerived,
		Params: []Param{
			{Name: "sizes", Kind: Ints, Default: []int{20, 40, 80}, Doc: "graph sizes to sweep", Check: checkAll(checkNonEmpty, checkPositive)},
			{Name: "tokens", Kind: Int, Default: 20, Doc: "number of tokens in the file", Check: checkPositive},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed"},
		},
		Smoke: map[string]string{"sizes": "12", "tokens": "6"},
		Run: func(a Args, em *Emitter) error {
			return oracleAdditiveImpl(a.Ints("sizes"), a.Int("tokens"), a.Int64("seed"), em)
		},
	})
}

// Theorem4 demonstrates the unbounded competitive ratio; see theorem4Impl.
// Kept for direct callers — the facade routes through the registry.
func Theorem4(pathLen int, decoySweep []int, capacity int) (*Table, error) {
	return run1(func(em *Emitter) error {
		return theorem4Impl(pathLen, decoySweep, capacity, em)
	})
}

// theorem4Impl demonstrates that no c-competitive online algorithm exists
// for FOCD: on the adversarial family (a path whose far endpoint wants one
// of m tokens), the worst-case makespan of the knowledge-free online
// algorithm grows linearly in the number of decoy tokens while the offline
// optimum stays at the path length, so the ratio is unbounded.
func theorem4Impl(pathLen int, decoySweep []int, capacity int, em *Emitter) error {
	em.Head("Theorem 4: unbounded competitive ratio on the adversarial family",
		"decoys", "path", "online-makespan", "offline-optimum", "ratio")
	// The adversarial construction is deterministic; the runner only
	// parallelizes the independent decoy counts.
	cells := make([]runner.Cell[competitive.RatioPoint], len(decoySweep))
	for i, d := range decoySweep {
		d := d
		cells[i] = runner.Cell[competitive.RatioPoint]{
			Key: fmt.Sprintf("decoys%d", d),
			Run: func(int64) (competitive.RatioPoint, error) {
				pt, err := competitive.WorstCaseRatio(pathLen, d+1, capacity)
				if err != nil {
					return competitive.RatioPoint{}, fmt.Errorf("theorem4 decoys=%d: %w", d, err)
				}
				return pt, nil
			},
		}
	}
	results, err := runner.Map(0, cells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return err
	}
	for _, pt := range results {
		em.Emit(pt.Decoys, pt.PathLen, pt.Online, pt.Offline, fmt.Sprintf("%.2f", pt.Ratio))
	}
	em.Note("Theorem 4: the ratio grows without bound in the decoy count, so no fixed c suffices")
	return nil
}

// OracleAdditive demonstrates the §4.2 upper bound; see oracleAdditiveImpl.
// Kept for direct callers — the facade routes through the registry.
func OracleAdditive(sizes []int, tokens int, seed int64) (*Table, error) {
	return run1(func(em *Emitter) error {
		return oracleAdditiveImpl(sizes, tokens, seed, em)
	})
}

// oracleAdditiveImpl demonstrates the §4.2 upper bound: an online
// algorithm that first lets knowledge propagate for diameter steps and
// then follows a globally planned schedule finishes within an additive
// diameter of that plan. Measured on random graphs with a single-file
// workload.
func oracleAdditiveImpl(sizes []int, tokens int, seed int64, em *Emitter) error {
	em.Head("§4.2: propagate-then-plan oracle is within an additive diameter",
		"n", "diameter", "oracle-makespan", "planned-makespan", "additive-gap", "within-diameter")
	type oracleCell struct {
		diameter, oracleSteps, plannedSteps int
	}
	cells := make([]runner.Cell[oracleCell], len(sizes))
	for i, n := range sizes {
		n := n
		cells[i] = runner.Cell[oracleCell]{
			Key: fmt.Sprintf("n%d", n),
			Run: func(cellSeed int64) (oracleCell, error) {
				g, err := topology.Random(n, topology.DefaultCaps, cellSeed)
				if err != nil {
					return oracleCell{}, err
				}
				inst := workload.SingleFile(g, tokens)
				planned, err := sim.Run(inst, heuristics.Global, sim.Options{Seed: cellSeed})
				if err != nil {
					return oracleCell{}, fmt.Errorf("oracle additive n=%d planned: %w", n, err)
				}
				oracle, err := competitive.RunOracle(inst, heuristics.Global, cellSeed)
				if err != nil {
					return oracleCell{}, fmt.Errorf("oracle additive n=%d oracle: %w", n, err)
				}
				return oracleCell{diameter: g.Diameter(), oracleSteps: oracle.Steps, plannedSteps: planned.Steps}, nil
			},
		}
	}
	results, err := runner.Map(seed, cells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return err
	}
	for i, res := range results {
		gap := res.oracleSteps - res.plannedSteps
		em.Emit(sizes[i], res.diameter, res.oracleSteps, res.plannedSteps, gap, gap <= res.diameter)
	}
	return nil
}
