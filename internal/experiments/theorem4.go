package experiments

import (
	"fmt"

	"ocd/internal/competitive"
	"ocd/internal/heuristics"
	"ocd/internal/runner"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

// Theorem4 demonstrates that no c-competitive online algorithm exists for
// FOCD: on the adversarial family (a path whose far endpoint wants one of
// m tokens), the worst-case makespan of the knowledge-free online
// algorithm grows linearly in the number of decoy tokens while the offline
// optimum stays at the path length, so the ratio is unbounded.
func Theorem4(pathLen int, decoySweep []int, capacity int) (*Table, error) {
	t := &Table{
		Title:   "Theorem 4: unbounded competitive ratio on the adversarial family",
		Columns: []string{"decoys", "path", "online-makespan", "offline-optimum", "ratio"},
	}
	// The adversarial construction is deterministic; the runner only
	// parallelizes the independent decoy counts.
	cells := make([]runner.Cell[competitive.RatioPoint], len(decoySweep))
	for i, d := range decoySweep {
		d := d
		cells[i] = runner.Cell[competitive.RatioPoint]{
			Key: fmt.Sprintf("decoys%d", d),
			Run: func(int64) (competitive.RatioPoint, error) {
				pt, err := competitive.WorstCaseRatio(pathLen, d+1, capacity)
				if err != nil {
					return competitive.RatioPoint{}, fmt.Errorf("theorem4 decoys=%d: %w", d, err)
				}
				return pt, nil
			},
		}
	}
	results, err := runner.Map(0, cells, runner.Options{})
	if err != nil {
		return nil, err
	}
	for _, pt := range results {
		t.AddRow(pt.Decoys, pt.PathLen, pt.Online, pt.Offline, fmt.Sprintf("%.2f", pt.Ratio))
	}
	t.Notes = append(t.Notes,
		"Theorem 4: the ratio grows without bound in the decoy count, so no fixed c suffices")
	return t, nil
}

// OracleAdditive demonstrates the §4.2 upper bound: an online algorithm
// that first lets knowledge propagate for diameter steps and then follows
// a globally planned schedule finishes within an additive diameter of that
// plan. Measured on random graphs with a single-file workload.
func OracleAdditive(sizes []int, tokens int, seed int64) (*Table, error) {
	t := &Table{
		Title:   "§4.2: propagate-then-plan oracle is within an additive diameter",
		Columns: []string{"n", "diameter", "oracle-makespan", "planned-makespan", "additive-gap", "within-diameter"},
	}
	type oracleCell struct {
		diameter, oracleSteps, plannedSteps int
	}
	cells := make([]runner.Cell[oracleCell], len(sizes))
	for i, n := range sizes {
		n := n
		cells[i] = runner.Cell[oracleCell]{
			Key: fmt.Sprintf("n%d", n),
			Run: func(cellSeed int64) (oracleCell, error) {
				g, err := topology.Random(n, topology.DefaultCaps, cellSeed)
				if err != nil {
					return oracleCell{}, err
				}
				inst := workload.SingleFile(g, tokens)
				planned, err := sim.Run(inst, heuristics.Global, sim.Options{Seed: cellSeed})
				if err != nil {
					return oracleCell{}, fmt.Errorf("oracle additive n=%d planned: %w", n, err)
				}
				oracle, err := competitive.RunOracle(inst, heuristics.Global, cellSeed)
				if err != nil {
					return oracleCell{}, fmt.Errorf("oracle additive n=%d oracle: %w", n, err)
				}
				return oracleCell{diameter: g.Diameter(), oracleSteps: oracle.Steps, plannedSteps: planned.Steps}, nil
			},
		}
	}
	results, err := runner.Map(seed, cells, runner.Options{})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		gap := res.oracleSteps - res.plannedSteps
		t.AddRow(sizes[i], res.diameter, res.oracleSteps, res.plannedSteps, gap, gap <= res.diameter)
	}
	return t, nil
}
