package experiments

import (
	"strings"
	"testing"

	"ocd/internal/fault"
)

func TestChaosSweepSmall(t *testing.T) {
	n, tokens := 14, 8
	intensities := []float64{0, 0.3, 0.7}
	names := []string{"local", "random", "retry-local"}
	if testing.Short() {
		intensities = []float64{0, 0.5}
		names = []string{"local", "retry-local"}
	}
	tab, err := Chaos(n, tokens, intensities, names, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(intensities) * len(names); len(tab.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), want)
	}
	for _, row := range tab.Rows {
		// intensity 0 is the fault-free plan: every heuristic must complete
		// with full delivery and unit inflation.
		if row[0] == "0.00" {
			if row[2] != "completed" || row[3] != "100%" || row[9] != "1.00" {
				t.Errorf("fault-free row degraded: %v", row)
			}
		}
		if row[2] == "" || row[3] == "" {
			t.Errorf("empty outcome/delivered cell: %v", row)
		}
	}
}

func TestChaosRejectsUnknownHeuristic(t *testing.T) {
	if _, err := Chaos(10, 4, []float64{0}, []string{"nope"}, 1); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	if _, err := chaosFactory("retry-nope", fault.Plan{}); err == nil {
		t.Fatal("retry- wrapper around unknown heuristic accepted")
	}
}

func TestCrashedSourceTerminatesGracefully(t *testing.T) {
	// 48 tokens and a crash after one step: the source cannot have pushed
	// every token out, so some must be provably undeliverable.
	tab, err := CrashedSource(14, 48, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	graceful := 0
	for _, row := range tab.Rows {
		switch row[1] {
		case "graceful":
			graceful++
			if row[4] == "0" {
				t.Errorf("graceful row with no unsatisfiable receivers: %v", row)
			}
		case "completed":
			// A heuristic that pushed everything out before step 3 is fine,
			// but with 10 tokens that is not expected for all of them.
		default:
			t.Errorf("run neither graceful nor completed: %v", row)
		}
	}
	if graceful == 0 {
		t.Error("no heuristic terminated gracefully after the source crash")
	}
	if !strings.Contains(tab.Title, "crash-stop") {
		t.Errorf("title: %q", tab.Title)
	}
}
