package experiments

import (
	"strconv"
	"testing"

	"ocd/internal/exact"
	"ocd/internal/workload"
)

func TestDynamicConditionsSmall(t *testing.T) {
	tab, err := DynamicConditions(15, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 6 models × 5 heuristics.
	if len(tab.Rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(tab.Rows))
	}
	completed := 0
	for _, row := range tab.Rows {
		if row[len(row)-1] == "true" {
			completed++
		}
	}
	// The vast majority of runs must complete despite the dynamics.
	if completed < 25 {
		t.Errorf("only %d/30 runs completed", completed)
	}
}

func TestLossCodingSmall(t *testing.T) {
	tab, err := LossCoding(10, 16, 0.3, []float64{1.5, 2.0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (uncoded + 2 codings)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("run incomplete: %v", row)
		}
	}
}

func TestUnderlayComparisonSmall(t *testing.T) {
	tab, err := UnderlayComparison(50, 8, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		logical, err1 := strconv.Atoi(row[1])
		physical, err2 := strconv.Atoi(row[2])
		if err1 != nil || err2 != nil {
			t.Fatalf("non-numeric row %v", row)
		}
		if physical < logical {
			t.Errorf("%s: shared underlay faster than logical view (%d < %d)",
				row[0], physical, logical)
		}
	}
}

func TestKnowledgeDelaySmall(t *testing.T) {
	tab, err := KnowledgeDelay(15, 12, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (delays 0..3)", len(tab.Rows))
	}
}

func TestTradeoffCurveFigure1(t *testing.T) {
	tab, err := TradeoffCurve(workload.Figure1(), exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (tau 2..3)", len(tab.Rows))
	}
	// Non-increasing bandwidth, endpoints 6 and 4.
	if tab.Rows[0][1] != "6" || tab.Rows[1][1] != "4" {
		t.Errorf("curve endpoints wrong: %v", tab.Rows)
	}
}

func TestBoundsQualitySmall(t *testing.T) {
	tab, err := BoundsQuality(2, 4, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 (2 instances x 5 heuristics)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// Heuristics can never beat the optimum: ratios >= 1.00; lower
		// bounds can never exceed it: ratios <= 1.00.
		if row[2] != "-" && row[2] < "1" {
			t.Errorf("makespan ratio below 1: %v", row)
		}
		if row[4] != "-" && row[4] > "1.00" && row[4] < "9" {
			t.Errorf("makespan lower bound above optimum: %v", row)
		}
	}
}

func TestProtocolComparisonSmall(t *testing.T) {
	tab, err := ProtocolComparison([]int{15}, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Extra turns must be non-negative.
	if tab.Rows[0][4][0] == '-' {
		t.Errorf("protocol beat the idealized variant: %v", tab.Rows[0])
	}
}

func TestArchitectureComparisonSmall(t *testing.T) {
	tab, err := ArchitectureComparison(20, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	// The tree rows must be bandwidth-optimal.
	for _, row := range tab.Rows {
		if (row[0] == "tree" || row[0] == "forest-2" || row[0] == "forest-4") &&
			row[len(row)-1] != "true" {
			t.Errorf("architecture %s not bandwidth-optimal: %v", row[0], row)
		}
	}
}
