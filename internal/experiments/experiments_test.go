package experiments

import (
	"strings"
	"testing"

	"ocd/internal/topology"
)

func smallSweep(kind GraphKind) SweepConfig {
	return SweepConfig{
		Kind:       kind,
		Tokens:     16,
		Caps:       topology.DefaultCaps,
		GraphSeeds: 1,
		Repeats:    1,
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"hello"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "y")
	ascii := tab.ASCII()
	for _, want := range []string{"== demo ==", "a", "bb", "2.5", "note: hello"} {
		if !strings.Contains(ascii, want) {
			t.Errorf("ASCII missing %q:\n%s", want, ascii)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") || !strings.Contains(csv, "1,2.5\n") {
		t.Errorf("CSV malformed:\n%s", csv)
	}
}

func TestGraphSizeSmall(t *testing.T) {
	for _, kind := range []GraphKind{RandomGraph, TransitStubGraph} {
		tab, err := GraphSize(smallSweep(kind), []int{12, 20})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		// 2 sizes × 5 heuristics.
		if len(tab.Rows) != 10 {
			t.Errorf("%v: %d rows, want 10", kind, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			if row[len(row)-1] != "0" {
				t.Errorf("%v: failures recorded in row %v", kind, row)
			}
		}
	}
}

func TestGraphSizeUnknownHeuristic(t *testing.T) {
	cfg := smallSweep(RandomGraph)
	cfg.Heuristics = []string{"nope"}
	if _, err := GraphSize(cfg, []int{10}); err == nil {
		t.Error("unknown heuristic accepted")
	}
}

func TestReceiverDensitySmall(t *testing.T) {
	cfg := smallSweep(RandomGraph)
	cfg.Heuristics = []string{"random", "bandwidth"}
	tab, err := ReceiverDensity(cfg, 15, []float64{0.2, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("%d rows, want 4", len(tab.Rows))
	}
}

func TestNumFilesSmall(t *testing.T) {
	cfg := smallSweep(RandomGraph)
	cfg.Heuristics = []string{"local", "bandwidth"}
	for _, multi := range []bool{false, true} {
		tab, err := NumFiles(cfg, 17, []int{1, 4}, multi)
		if err != nil {
			t.Fatalf("multi=%v: %v", multi, err)
		}
		if len(tab.Rows) != 4 {
			t.Errorf("multi=%v: %d rows, want 4", multi, len(tab.Rows))
		}
	}
}

func TestFigure1ExactNumbers(t *testing.T) {
	tab, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	var gotFast, gotCheap bool
	for _, row := range tab.Rows {
		if row[0] == "min time" && row[2] == "2" && row[3] == "6" {
			gotFast = true
		}
		if row[0] == "min bandwidth" && row[2] == "3" && row[3] == "4" {
			gotCheap = true
		}
	}
	if !gotFast || !gotCheap {
		t.Errorf("Figure 1 optima not reproduced:\n%s", tab.ASCII())
	}
}

func TestFigure7AllAgree(t *testing.T) {
	tab, err := Figure7(2, 5, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2*6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("reduction disagreement in row %v", row)
		}
	}
}

func TestTheorem4Monotone(t *testing.T) {
	tab, err := Theorem4(1, []int{1, 4, 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	prev := ""
	for _, row := range tab.Rows {
		if prev != "" && row[2] <= prev {
			// string compare is fine: zero-padded? No — compare lengths
			// first to be safe.
			if len(row[2]) < len(prev) || (len(row[2]) == len(prev) && row[2] <= prev) {
				t.Errorf("online makespan not growing: %s after %s", row[2], prev)
			}
		}
		prev = row[2]
	}
}

func TestOracleAdditiveSmall(t *testing.T) {
	tab, err := OracleAdditive([]int{15}, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("oracle exceeded additive diameter: %v", row)
		}
	}
}

func TestILPvsBnBAgree(t *testing.T) {
	tab, err := ILPvsBnB(3, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("solver disagreement: %v", row)
		}
	}
}
