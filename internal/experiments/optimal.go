package experiments

import (
	"fmt"
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/exact"
	"ocd/internal/graph"
	"ocd/internal/ilp"
	"ocd/internal/runner"
	"ocd/internal/telemetry"
	"ocd/internal/workload"
)

// solverCtrs accumulates ilp.Stats into a registry's solver.* counters.
// The counts are deterministic functions of the solve sequence, and the
// atomic additions are order-free, so cells running concurrently record
// the same totals as a serial run. A nil *solverCtrs records nothing.
type solverCtrs struct {
	nodes, iters, warm, flips, restor *telemetry.Counter
}

func newSolverCtrs(reg *telemetry.Registry) *solverCtrs {
	if reg == nil {
		return nil
	}
	return &solverCtrs{
		nodes:  reg.Counter("solver.nodes"),
		iters:  reg.Counter("solver.simplex_iterations"),
		warm:   reg.Counter("solver.warm_starts"),
		flips:  reg.Counter("solver.bound_flips"),
		restor: reg.Counter("solver.dual_restorations"),
	}
}

func (c *solverCtrs) record(st ilp.Stats) {
	if c == nil {
		return
	}
	c.nodes.Add(int64(st.Nodes))
	c.iters.Add(int64(st.SimplexIterations))
	c.warm.Add(int64(st.WarmStarts))
	c.flips.Add(int64(st.BoundFlips))
	c.restor.Add(int64(st.DualRestorations))
}

func init() {
	Register(Spec{
		Name:       "figure1",
		Facade:     "ExperimentFigure1",
		Doc:        "Figure 1: time vs bandwidth tension on the gadget, certified by both exact solvers",
		SeedPolicy: SeedNone,
		Run: func(_ Args, em *Emitter) error {
			return figure1Impl(em)
		},
	})
	Register(Spec{
		Name:       "ilp-vs-bnb",
		Facade:     "ExperimentILPvsBnB",
		Doc:        "§3.4 cross-check: time-indexed ILP vs schedule branch-and-bound on random tiny instances",
		SeedPolicy: SeedDerived,
		Params: []Param{
			{Name: "instances", Kind: Int, Default: 10, Doc: "number of random instances", Check: checkPositive},
			{Name: "n", Kind: Int, Default: 5, Doc: "vertices per instance", Check: checkPositive},
			{Name: "m", Kind: Int, Default: 3, Doc: "tokens per instance", Check: checkPositive},
			{Name: "seed", Kind: Int64, Default: int64(1), Doc: "random seed for the instance stream"},
		},
		Smoke: map[string]string{"instances": "2", "n": "4", "m": "2"},
		Run: func(a Args, em *Emitter) error {
			return ilpVsBnBImpl(a.Int("instances"), a.Int("n"), a.Int("m"), a.Int64("seed"), em)
		},
	})
}

// Figure1 reproduces the paper's Figure 1 narrative; see figure1Impl. Kept
// for direct callers — the facade routes through the registry.
func Figure1() (*Table, error) {
	return run1(figure1Impl)
}

// figure1Impl reproduces the paper's Figure 1 narrative with certified
// optima: on the reconstructed gadget, the minimum-time schedule takes 2
// timesteps and 6 units of bandwidth, while the minimum-bandwidth schedule
// takes 4 units of bandwidth but 3 timesteps. Both the schedule-space
// branch-and-bound and the §3.4 time-indexed ILP certify each point.
func figure1Impl(em *Emitter) error {
	inst := workload.Figure1()
	em.Head("Figure 1: time vs bandwidth tension (certified optima)",
		"objective", "solver", "timesteps", "bandwidth")

	fast, err := exact.SolveFOCD(inst, exact.Options{})
	if err != nil {
		return fmt.Errorf("figure1 focd: %w", err)
	}
	// Minimum bandwidth achievable at the fast makespan.
	fastCheap, err := exact.SolveEOCD(inst, fast.Makespan(), exact.Options{})
	if err != nil {
		return fmt.Errorf("figure1 eocd@fast: %w", err)
	}
	em.Emit("min time", "branch&bound", fast.Makespan(), fastCheap.Moves())

	cheap, err := exact.SolveEOCD(inst, 0, exact.Options{})
	if err != nil {
		return fmt.Errorf("figure1 eocd: %w", err)
	}
	em.Emit("min bandwidth", "branch&bound", cheap.Makespan(), cheap.Moves())

	ctrs := newSolverCtrs(em.Telemetry())
	for _, tau := range []int{fast.Makespan(), cheap.Makespan()} {
		prog, err := ilp.Build(inst, tau)
		if err != nil {
			return err
		}
		sched, obj, st, err := prog.SolveStats(ilp.Options{})
		if err != nil {
			return fmt.Errorf("figure1 ilp tau=%d: %w", tau, err)
		}
		ctrs.record(st)
		em.Emit(fmt.Sprintf("min bandwidth @ tau=%d", tau), "time-indexed ILP",
			sched.Makespan(), obj)
	}
	em.Note("paper: minimum time = 2 timesteps / 6 bandwidth; minimum bandwidth = 4 bandwidth / 3 timesteps")
	return nil
}

// ILPvsBnB cross-validates the two exact solvers; see ilpVsBnBImpl. Kept
// for direct callers — the facade routes through the registry.
func ILPvsBnB(instances, n, m int, seed int64) (*Table, error) {
	return run1(func(em *Emitter) error {
		return ilpVsBnBImpl(instances, n, m, seed, em)
	})
}

// ilpVsBnBImpl cross-validates the two exact solvers on random small
// instances: for each instance the §3.4 ILP optimum must equal the
// schedule-space branch-and-bound optimum for the same horizon.
func ilpVsBnBImpl(instances, n, m int, seed int64, em *Emitter) error {
	em.Head("§3.4 cross-check: time-indexed ILP vs schedule branch-and-bound",
		"instance", "n", "tokens", "tau", "ilp-bw", "bnb-bw", "agree")
	// Instances are drawn serially from one RNG stream; the two exact
	// solves per instance (deterministic, seed-free) fan out as cells.
	insts := RandomTinyInstances(seed, instances, n, m)
	type crossCell struct {
		n, tokens, tau, ilpBW, bnbBW int
	}
	ctrs := newSolverCtrs(em.Telemetry())
	cells := make([]runner.Cell[crossCell], instances)
	for i := range insts {
		i := i
		inst := insts[i]
		cells[i] = runner.Cell[crossCell]{
			Key: fmt.Sprintf("inst%d", i),
			Run: func(int64) (crossCell, error) {
				fast, err := exact.SolveFOCD(inst, exact.Options{})
				if err != nil {
					return crossCell{}, fmt.Errorf("instance %d focd: %w", i, err)
				}
				tau := fast.Makespan() + 1 // give one slack step for cheaper plans
				bnb, err := exact.SolveEOCD(inst, tau, exact.Options{})
				if err != nil {
					return crossCell{}, fmt.Errorf("instance %d eocd: %w", i, err)
				}
				prog, err := ilp.Build(inst, tau)
				if err != nil {
					return crossCell{}, err
				}
				_, obj, st, err := prog.SolveStats(ilp.Options{})
				if err != nil {
					return crossCell{}, fmt.Errorf("instance %d ilp: %w", i, err)
				}
				ctrs.record(st)
				return crossCell{n: inst.N(), tokens: inst.NumTokens, tau: tau, ilpBW: obj, bnbBW: bnb.Moves()}, nil
			},
		}
	}
	results, err := runner.Map(seed, cells, runner.Options{Metrics: telemetry.NewRunnerMetrics(em.Telemetry())})
	if err != nil {
		return err
	}
	for i, res := range results {
		em.Emit(i, res.n, res.tokens, res.tau, res.ilpBW, res.bnbBW, res.ilpBW == res.bnbBW)
	}
	return nil
}

// RandomTinyInstances draws count seeded instances from a single RNG
// stream. The solver benchmark in cmd/ocdbench and the ILP↔exact parity
// tests share this generator, so "the pinned solver bench set" names the
// same instances everywhere; changing it invalidates committed solver
// baselines.
func RandomTinyInstances(seed int64, count, n, m int) []*core.Instance {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*core.Instance, count)
	for i := range out {
		out[i] = randomTinyInstance(rng, n, m)
	}
	return out
}

// randomTinyInstance builds a connected random instance small enough for
// both exact solvers.
func randomTinyInstance(rng *rand.Rand, n, m int) *core.Instance {
	g := graph.New(n)
	// Random spanning tree plus a few extra arcs, capacities 1..2.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u, v := perm[i], perm[rng.Intn(i)]
		_ = g.AddEdge(u, v, 1+rng.Intn(2))
	}
	for e := 0; e < n/2; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasArc(u, v) {
			_ = g.AddEdge(u, v, 1+rng.Intn(2))
		}
	}
	inst := core.NewInstance(g, m)
	for t := 0; t < m; t++ {
		inst.Have[rng.Intn(n)].Add(t)
		// Each token is wanted by one or two vertices.
		for w := 0; w < 1+rng.Intn(2); w++ {
			inst.Want[rng.Intn(n)].Add(t)
		}
	}
	return inst
}
