package experiments

// The declarative spec layer: every experiment in this package registers a
// Spec — its name, a self-describing parameter schema with defaults and
// validation, and a driver body — in the package Registry. Callers run
// experiments as data: resolve a parameter map (typed values from the
// facade, strings from a CLI or a JSON sweep file) against the schema and
// execute. The facade's Experiment* functions, the ocdsim/ocdchaos
// -experiment modes, and reproducible -spec sweep files all lower to the
// same path, which is also the layer sharded or distributed sweeps plug
// into: a (spec name, params) pair is a complete, serializable description
// of a run.

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"ocd/internal/core"
	"ocd/internal/fault"
	"ocd/internal/heuristics"
	"ocd/internal/telemetry"
	"ocd/internal/trace"
	"ocd/internal/workload"
)

// Kind is the value type of one experiment parameter.
type Kind int

const (
	// Int is a single integer.
	Int Kind = iota + 1
	// Int64 is a single 64-bit integer (seeds).
	Int64
	// Float is a single float64.
	Float
	// Bool is a boolean.
	Bool
	// String is a free-form string.
	String
	// Ints is a comma-separated integer list.
	Ints
	// Floats is a comma-separated float list.
	Floats
	// Strings is a comma-separated string list.
	Strings
	// Instance is a problem instance: the literal "figure1", a path to an
	// instance JSON file, or (from the facade) an injected *core.Instance.
	Instance
)

func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Int64:
		return "int64"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case String:
		return "string"
	case Ints:
		return "ints"
	case Floats:
		return "floats"
	case Strings:
		return "strings"
	case Instance:
		return "instance"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Param is one declared experiment parameter.
type Param struct {
	// Name is the parameter's key (kebab-case, as typed on a CLI).
	Name string
	// Kind is the value type.
	Kind Kind
	// Default is the value used when the parameter is not supplied; its
	// dynamic type must match Kind.
	Default any
	// Doc is the one-line description shown by -list.
	Doc string
	// Check optionally validates the resolved value.
	Check func(any) error
}

// Seed policies, reported by -list: how a spec consumes randomness.
const (
	// SeedDerived marks specs whose cells derive their PRNG streams from
	// (base seed, cell key) through the runner — parallel-safe and
	// reproducible from the seed parameter alone.
	SeedDerived = "derived"
	// SeedNone marks fully deterministic specs with no seed parameter.
	SeedNone = "none"
)

// Spec declares one runnable experiment: its identity, parameter schema,
// seed policy, and driver body.
type Spec struct {
	// Name is the registry key (kebab-case).
	Name string
	// Facade is the ocd.Experiment* function this spec powers; the
	// registry-completeness test reconciles the two sets.
	Facade string
	// Doc is the one-line description shown by -list.
	Doc string
	// SeedPolicy is SeedDerived or SeedNone.
	SeedPolicy string
	// Params is the parameter schema, in display order.
	Params []Param
	// Smoke holds tiny string overrides for the CI smoke run of this spec;
	// nil means the defaults are already smoke-sized.
	Smoke map[string]string
	// Run is the driver body.
	Run func(a Args, em *Emitter) error
}

// Values carries typed parameter overrides (the facade path).
type Values map[string]any

// Args is a fully resolved parameter set: every declared parameter is
// present with its final typed value. The accessors panic on a missing
// name or kind mismatch — both are driver programming errors, impossible
// for resolved args.
type Args struct {
	spec *Spec
	vals map[string]any
}

func (a Args) get(name string, kind Kind) any {
	v, ok := a.vals[name]
	if !ok {
		panic(fmt.Sprintf("experiments: spec %s has no param %q", a.spec.Name, name))
	}
	if p, _ := a.spec.ParamNamed(name); p.Kind != kind {
		panic(fmt.Sprintf("experiments: spec %s param %q is %v, read as %v", a.spec.Name, name, p.Kind, kind))
	}
	return v
}

// Int returns an Int parameter.
func (a Args) Int(name string) int { return a.get(name, Int).(int) }

// Int64 returns an Int64 parameter.
func (a Args) Int64(name string) int64 { return a.get(name, Int64).(int64) }

// Float returns a Float parameter.
func (a Args) Float(name string) float64 { return a.get(name, Float).(float64) }

// Bool returns a Bool parameter.
func (a Args) Bool(name string) bool { return a.get(name, Bool).(bool) }

// String returns a String parameter.
func (a Args) String(name string) string { return a.get(name, String).(string) }

// Ints returns an Ints parameter.
func (a Args) Ints(name string) []int { return a.get(name, Ints).([]int) }

// Floats returns a Floats parameter.
func (a Args) Floats(name string) []float64 { return a.get(name, Floats).([]float64) }

// Strings returns a Strings parameter.
func (a Args) Strings(name string) []string { return a.get(name, Strings).([]string) }

// Instance returns an Instance parameter, already loaded.
func (a Args) Instance(name string) *core.Instance { return a.get(name, Instance).(*core.Instance) }

// ParamNamed returns the declared parameter with that name.
func (s *Spec) ParamNamed(name string) (Param, bool) {
	for _, p := range s.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// HasParam reports whether the schema declares name.
func (s *Spec) HasParam(name string) bool {
	_, ok := s.ParamNamed(name)
	return ok
}

// validate checks the spec declaration itself: used by Register and by the
// registry self-tests.
func (s *Spec) validate() error {
	if s.Name == "" || s.Run == nil {
		return fmt.Errorf("experiments: spec %q incomplete (name and run are required)", s.Name)
	}
	if s.Facade == "" || !strings.HasPrefix(s.Facade, "Experiment") {
		return fmt.Errorf("experiments: spec %s: facade %q does not name an Experiment* function", s.Name, s.Facade)
	}
	if s.SeedPolicy != SeedDerived && s.SeedPolicy != SeedNone {
		return fmt.Errorf("experiments: spec %s: seed policy %q", s.Name, s.SeedPolicy)
	}
	seen := make(map[string]bool, len(s.Params))
	for _, p := range s.Params {
		if p.Name == "" || p.Doc == "" {
			return fmt.Errorf("experiments: spec %s: param %q must have a name and a doc line", s.Name, p.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("experiments: spec %s: duplicate param %q", s.Name, p.Name)
		}
		seen[p.Name] = true
		if _, err := coerce(p, p.Default); err != nil {
			return fmt.Errorf("experiments: spec %s: default for %s: %w", s.Name, p.Name, err)
		}
	}
	if s.HasParam("seed") != (s.SeedPolicy == SeedDerived) {
		return fmt.Errorf("experiments: spec %s: seed policy %q inconsistent with a %v seed param",
			s.Name, s.SeedPolicy, s.HasParam("seed"))
	}
	return nil
}

// coerce kind-checks (and for Instance, loads) one typed value, then runs
// the param's Check.
func coerce(p Param, v any) (any, error) {
	out, err := coerceKind(p, v)
	if err != nil {
		return nil, err
	}
	if p.Check != nil {
		if err := p.Check(out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func coerceKind(p Param, v any) (any, error) {
	switch p.Kind {
	case Int:
		if x, ok := v.(int); ok {
			return x, nil
		}
	case Int64:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		}
	case Float:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int:
			return float64(x), nil
		}
	case Bool:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	case String:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case Ints:
		if x, ok := v.([]int); ok {
			return x, nil
		}
		if v == nil {
			return []int(nil), nil
		}
	case Floats:
		if x, ok := v.([]float64); ok {
			return x, nil
		}
		if v == nil {
			return []float64(nil), nil
		}
	case Strings:
		if x, ok := v.([]string); ok {
			return x, nil
		}
		if v == nil {
			return []string(nil), nil
		}
	case Instance:
		switch x := v.(type) {
		case *core.Instance:
			return x, nil
		case string:
			return loadInstance(x)
		}
	}
	return nil, fmt.Errorf("want %v, got %T", p.Kind, v)
}

// parse converts one CLI/spec-file string into the param's kind.
func parse(p Param, s string) (any, error) {
	switch p.Kind {
	case Int:
		return strconv.Atoi(s)
	case Int64:
		return strconv.ParseInt(s, 10, 64)
	case Float:
		return strconv.ParseFloat(s, 64)
	case Bool:
		return strconv.ParseBool(s)
	case String, Instance:
		return s, nil
	case Ints:
		return parseIntList(s)
	case Floats:
		return parseFloatList(s)
	case Strings:
		return splitList(s), nil
	}
	return nil, fmt.Errorf("unhandled kind %v", p.Kind)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseIntList(s string) ([]int, error) {
	parts := splitList(s)
	out := make([]int, len(parts))
	for i, part := range parts {
		x, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out[i] = x
	}
	return out, nil
}

func parseFloatList(s string) ([]float64, error) {
	parts := splitList(s)
	out := make([]float64, len(parts))
	for i, part := range parts {
		x, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out[i] = x
	}
	return out, nil
}

// loadInstance resolves an Instance parameter given as a string: the
// built-in "figure1" gadget or a path to an instance JSON file.
func loadInstance(s string) (*core.Instance, error) {
	if s == "figure1" {
		return workload.Figure1(), nil
	}
	f, err := os.Open(s)
	if err != nil {
		return nil, fmt.Errorf("instance %q is not \"figure1\" and not a readable file: %w", s, err)
	}
	defer f.Close()
	return trace.DecodeInstance(f)
}

// ResolveValues resolves typed overrides (the facade path) against the
// schema: every declared parameter gets its override or default, every
// override must be declared, and all checks must pass.
func (s *Spec) ResolveValues(vals Values) (Args, error) {
	if err := s.checkKnown(len(vals), func(name string) bool { _, ok := vals[name]; return ok }); err != nil {
		return Args{}, err
	}
	return s.resolve(func(name string) (any, bool) {
		v, ok := vals[name]
		return v, ok
	})
}

// ResolveStrings resolves string overrides (the CLI and spec-file path).
func (s *Spec) ResolveStrings(overrides map[string]string) (Args, error) {
	if err := s.checkKnown(len(overrides), func(name string) bool { _, ok := overrides[name]; return ok }); err != nil {
		return Args{}, err
	}
	var firstErr error
	a, err := s.resolve(func(name string) (any, bool) {
		raw, ok := overrides[name]
		if !ok {
			return nil, false
		}
		p, _ := s.ParamNamed(name)
		v, err := parse(p, raw)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("experiments: %s: param %s: %w", s.Name, name, err)
		}
		return v, true
	})
	if firstErr != nil {
		return Args{}, firstErr
	}
	return a, err
}

// checkKnown rejects overrides whose keys the schema does not declare.
// The caller supplies a membership probe instead of the map itself so the
// two override map types share one deterministic implementation (declared
// params are probed in schema order; no map iteration).
func (s *Spec) checkKnown(count int, has func(string) bool) error {
	known := 0
	for _, p := range s.Params {
		if has(p.Name) {
			known++
		}
	}
	if known != count {
		return fmt.Errorf("experiments: %s: unknown param (schema has %s)",
			s.Name, strings.Join(s.paramNames(), ", "))
	}
	return nil
}

func (s *Spec) resolve(lookup func(string) (any, bool)) (Args, error) {
	vals := make(map[string]any, len(s.Params))
	for _, p := range s.Params {
		v, ok := lookup(p.Name)
		if !ok {
			v = p.Default
		}
		out, err := coerce(p, v)
		if err != nil {
			return Args{}, fmt.Errorf("experiments: %s: param %s: %w", s.Name, p.Name, err)
		}
		vals[p.Name] = out
	}
	return Args{spec: s, vals: vals}, nil
}

func (s *Spec) paramNames() []string {
	names := make([]string, len(s.Params))
	for i, p := range s.Params {
		names[i] = p.Name
	}
	return names
}

// Exec runs the spec with resolved args, streaming into the given sinks
// and returning the assembled table.
func (s *Spec) Exec(a Args, sinks ...Sink) (*Table, error) {
	return s.exec(a, nil, sinks)
}

// ExecTelemetry is Exec with a metric registry attached to the run: the
// driver's instrumented seams record into tel, which may be shared across
// runs to accumulate one process-wide stream. The table is byte-identical
// to an Exec of the same args — telemetry never feeds the table. A nil
// tel is exactly Exec.
func (s *Spec) ExecTelemetry(a Args, tel *telemetry.Registry, sinks ...Sink) (*Table, error) {
	return s.exec(a, tel, sinks)
}

func (s *Spec) exec(a Args, tel *telemetry.Registry, sinks []Sink) (*Table, error) {
	em := newEmitter(sinks)
	em.tel = tel
	if err := s.Run(a, em); err != nil {
		return nil, err
	}
	return em.finish()
}

// Parameter checks, applied element-wise to list kinds.

func eachNumber(v any, f func(float64) error) error {
	switch x := v.(type) {
	case int:
		return f(float64(x))
	case int64:
		return f(float64(x))
	case float64:
		return f(x)
	case []int:
		for _, e := range x {
			if err := f(float64(e)); err != nil {
				return err
			}
		}
		return nil
	case []float64:
		for _, e := range x {
			if err := f(e); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("not numeric: %T", v)
}

// checkPositive requires every element to be > 0.
func checkPositive(v any) error {
	return eachNumber(v, func(x float64) error {
		if x <= 0 {
			return fmt.Errorf("must be positive, got %v", x)
		}
		return nil
	})
}

// checkNonNegative requires every element to be >= 0.
func checkNonNegative(v any) error {
	return eachNumber(v, func(x float64) error {
		if x < 0 {
			return fmt.Errorf("must be non-negative, got %v", x)
		}
		return nil
	})
}

// checkUnit requires every element to lie in [0, 1].
func checkUnit(v any) error {
	return eachNumber(v, func(x float64) error {
		if x < 0 || x > 1 {
			return fmt.Errorf("must be in [0,1], got %v", x)
		}
		return nil
	})
}

// checkNonEmpty requires a list parameter to have at least one element.
func checkNonEmpty(v any) error {
	n := 0
	switch x := v.(type) {
	case []int:
		n = len(x)
	case []float64:
		n = len(x)
	case []string:
		n = len(x)
	default:
		return fmt.Errorf("not a list: %T", v)
	}
	if n == 0 {
		return fmt.Errorf("must not be empty")
	}
	return nil
}

// checkAll chains several checks.
func checkAll(checks ...func(any) error) func(any) error {
	return func(v any) error {
		for _, c := range checks {
			if err := c(v); err != nil {
				return err
			}
		}
		return nil
	}
}

// checkChaosHeuristics validates heuristic names against the chaos-harness
// naming scheme (paper heuristics, protocol-local, retry-<name>).
func checkChaosHeuristics(v any) error {
	names := v.([]string)
	if len(names) == 0 {
		return fmt.Errorf("must name at least one heuristic")
	}
	_, err := ResolveHeuristics(names, fault.Plan{})
	return err
}

// checkSweepHeuristics validates heuristic names against the five paper
// heuristics; an empty list means all five.
func checkSweepHeuristics(v any) error {
	for _, name := range v.([]string) {
		if _, ok := heuristics.Named(name); !ok {
			return fmt.Errorf("experiments: unknown heuristic %q (have %v)", name, heuristics.Names())
		}
	}
	return nil
}
