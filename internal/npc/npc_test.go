package npc

import (
	"testing"

	"ocd/internal/core"
	"ocd/internal/exact"
)

func star(n int) *UGraph {
	g := &UGraph{N: n}
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, [2]int{0, i})
	}
	return g
}

func path(n int) *UGraph {
	g := &UGraph{N: n}
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, [2]int{i, i + 1})
	}
	return g
}

func complete(n int) *UGraph {
	g := &UGraph{N: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.Edges = append(g.Edges, [2]int{i, j})
		}
	}
	return g
}

func TestMinDominatingSetKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *UGraph
		want int
	}{
		{"star5", star(5), 1},
		{"complete4", complete(4), 1},
		{"path2", path(2), 1},
		{"path3", path(3), 1},
		{"path4", path(4), 2},
		{"path7", path(7), 3}, // ceil(7/3)
		{"isolated3", &UGraph{N: 3}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds, err := MinDominatingSet(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if len(ds) != tc.want {
				t.Errorf("|DS| = %d (%v), want %d", len(ds), ds, tc.want)
			}
			// Verify domination.
			adj := tc.g.adjacency()
			for v := 0; v < tc.g.N; v++ {
				dominated := false
				for _, d := range ds {
					if d == v || adj[d][v] {
						dominated = true
						break
					}
				}
				if !dominated {
					t.Errorf("vertex %d not dominated by %v", v, ds)
				}
			}
		})
	}
}

func TestMinDominatingSetErrors(t *testing.T) {
	if _, err := MinDominatingSet(&UGraph{N: 30}); err == nil {
		t.Error("oversized graph accepted")
	}
	if _, err := MinDominatingSet(&UGraph{N: 2, Edges: [][2]int{{0, 5}}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := MinDominatingSet(&UGraph{N: 2, Edges: [][2]int{{1, 1}}}); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestHasDominatingSet(t *testing.T) {
	ok, ds, err := HasDominatingSet(path(4), 2)
	if err != nil || !ok || len(ds) > 2 {
		t.Errorf("path4 k=2: ok=%v ds=%v err=%v", ok, ds, err)
	}
	ok, _, err = HasDominatingSet(path(4), 1)
	if err != nil || ok {
		t.Errorf("path4 k=1 should fail: ok=%v err=%v", ok, err)
	}
}

func TestReduceShape(t *testing.T) {
	g := path(4)
	red, err := Reduce(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst := red.Inst
	if inst.N() != 2*4+2 {
		t.Errorf("reduction has %d vertices, want 10", inst.N())
	}
	if inst.NumTokens != 1+(4-2) {
		t.Errorf("reduction has %d tokens, want 3", inst.NumTokens)
	}
	if err := inst.Check(); err != nil {
		t.Fatalf("reduced instance inconsistent: %v", err)
	}
	// s holds everything, t wants the relay tokens, satellites want 0.
	if inst.Have[red.S].Count() != inst.NumTokens {
		t.Error("source does not hold all tokens")
	}
	if inst.Want[red.T].Count() != inst.NumTokens-1 {
		t.Error("collector wants wrong token count")
	}
	for _, vp := range red.VPrime {
		if !inst.Want[vp].Has(0) || inst.Want[vp].Count() != 1 {
			t.Error("satellite wants wrong set")
		}
	}
}

func TestReduceErrors(t *testing.T) {
	if _, err := Reduce(path(3), -1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := Reduce(path(3), 4); err == nil {
		t.Error("k > n accepted")
	}
}

func TestConstructiveDirection(t *testing.T) {
	// For graphs with known dominating sets, the proof's 2-step schedule
	// must validate.
	for _, tc := range []struct {
		name string
		g    *UGraph
	}{
		{"star6", star(6)}, {"path5", path(5)}, {"complete4", complete(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds, err := MinDominatingSet(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			red, err := Reduce(tc.g, len(ds))
			if err != nil {
				t.Fatal(err)
			}
			sched, err := red.ScheduleFromDominatingSet(tc.g, ds)
			if err != nil {
				t.Fatal(err)
			}
			if sched.Makespan() != 2 {
				t.Errorf("constructed schedule takes %d steps, want 2", sched.Makespan())
			}
			if err := core.Validate(red.Inst, sched); err != nil {
				t.Errorf("constructed schedule invalid: %v", err)
			}
		})
	}
}

func TestTheorem5BothDirectionsExhaustive(t *testing.T) {
	// Exhaustively check the iff on every 4-vertex undirected graph
	// (64 edge subsets) for every k: DS(G) ≤ k ⇔ FOCD(reduce(G,k)) ≤ 2.
	allEdges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for mask := 0; mask < 1<<6; mask++ {
		g := &UGraph{N: 4}
		for i, e := range allEdges {
			if mask&(1<<i) != 0 {
				g.Edges = append(g.Edges, e)
			}
		}
		minDS, err := MinDominatingSet(g)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= 4; k++ {
			red, err := Reduce(g, k)
			if err != nil {
				t.Fatal(err)
			}
			hasDS := len(minDS) <= k
			if hasDS {
				sched, err := red.ScheduleFromDominatingSet(g, minDS)
				if err != nil {
					t.Fatalf("mask=%d k=%d: construct: %v", mask, k, err)
				}
				if err := core.Validate(red.Inst, sched); err != nil {
					t.Fatalf("mask=%d k=%d: constructed schedule invalid: %v", mask, k, err)
				}
			} else {
				// Soundness: no 2-step schedule may exist.
				sched, err := exact.SolveFOCD(red.Inst, exact.Options{MaxNodes: 3_000_000})
				if err != nil {
					t.Fatalf("mask=%d k=%d: focd: %v", mask, k, err)
				}
				if sched.Makespan() <= 2 {
					t.Errorf("mask=%d k=%d: FOCD completed in %d steps but no DS of size %d exists",
						mask, k, sched.Makespan(), k)
				}
			}
		}
	}
}
