// Package npc implements the paper's NP-hardness apparatus: a brute-force
// Dominating Set solver and the appendix reduction from Dominating Set to
// the Fast Overlay Content Distribution problem (Theorem 5, Figure 7).
//
// Given an undirected graph G on n vertices and an integer k, the reduction
// builds a FOCD instance on 2n+2 vertices distributing tokens
// {0} ∪ {1,…,n−k} such that G has a dominating set of size ≤ k iff the
// instance completes in two timesteps. Both directions are exercised in the
// tests and the Figure 7 experiment.
package npc

import (
	"errors"
	"fmt"

	"ocd/internal/core"
	"ocd/internal/graph"
)

// UGraph is a simple undirected graph given as an adjacency structure,
// the input format of the Dominating Set problem.
type UGraph struct {
	N     int
	Edges [][2]int
}

// Validate checks vertex ranges and rejects self-loops.
func (g *UGraph) Validate() error {
	for _, e := range g.Edges {
		if e[0] < 0 || e[0] >= g.N || e[1] < 0 || e[1] >= g.N {
			return fmt.Errorf("npc: edge %v out of range n=%d", e, g.N)
		}
		if e[0] == e[1] {
			return fmt.Errorf("npc: self-loop %v", e)
		}
	}
	return nil
}

func (g *UGraph) adjacency() [][]bool {
	adj := make([][]bool, g.N)
	for i := range adj {
		adj[i] = make([]bool, g.N)
	}
	for _, e := range g.Edges {
		adj[e[0]][e[1]] = true
		adj[e[1]][e[0]] = true
	}
	return adj
}

// ErrTooLarge guards the exponential brute-force solver.
var ErrTooLarge = errors.New("npc: graph too large for brute force")

// MinDominatingSet returns a minimum dominating set of g by exhaustive
// subset search (n ≤ 24).
func MinDominatingSet(g *UGraph) ([]int, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.N > 24 {
		return nil, fmt.Errorf("%w: n=%d", ErrTooLarge, g.N)
	}
	adj := g.adjacency()
	full := (uint32(1) << uint(g.N)) - 1
	// cover[v] = bitmask of v and its neighbours.
	cover := make([]uint32, g.N)
	for v := 0; v < g.N; v++ {
		cover[v] = 1 << uint(v)
		for u := 0; u < g.N; u++ {
			if adj[v][u] {
				cover[v] |= 1 << uint(u)
			}
		}
	}
	best := []int(nil)
	for mask := uint32(0); mask <= full; mask++ {
		if best != nil && popcount(mask) >= len(best) {
			continue
		}
		var covered uint32
		for v := 0; v < g.N; v++ {
			if mask&(1<<uint(v)) != 0 {
				covered |= cover[v]
			}
		}
		if covered == full {
			set := make([]int, 0, popcount(mask))
			for v := 0; v < g.N; v++ {
				if mask&(1<<uint(v)) != 0 {
					set = append(set, v)
				}
			}
			best = set
		}
	}
	return best, nil
}

// HasDominatingSet reports whether g has a dominating set of size ≤ k.
func HasDominatingSet(g *UGraph, k int) (bool, []int, error) {
	min, err := MinDominatingSet(g)
	if err != nil {
		return false, nil, err
	}
	if len(min) <= k {
		return true, min, nil
	}
	return false, nil, nil
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Reduction holds the FOCD instance built from (G, k) together with the
// vertex layout used by the appendix proof.
type Reduction struct {
	Inst *core.Instance
	// S is the token source, T the collector of tokens {1..n−k}.
	S, T int
	// V[i] is the intermediary for original vertex i, VPrime[i] its
	// satellite wanting token 0.
	V, VPrime []int
	// K is the dominating-set size bound.
	K int
}

// Reduce builds the Theorem 5 instance: vertices {s, t} ∪ V ∪ V′, tokens
// {0} ∪ {1,…,n−k}; s holds everything; t wants {1,…,n−k}; every v′_i wants
// {0}; arcs s→v_i, v_i→t, v_i→v′_i (capacity 1) and v_i→v′_j for every
// original edge (v_i, v_j).
func Reduce(g *UGraph, k int) (*Reduction, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if k < 0 || k > g.N {
		return nil, fmt.Errorf("npc: k=%d out of range for n=%d", k, g.N)
	}
	n := g.N
	numTokens := 1 + (n - k) // token 0 plus {1..n−k}
	fg := graph.New(2*n + 2)
	s, t := 0, 1
	vs := make([]int, n)
	vps := make([]int, n)
	for i := 0; i < n; i++ {
		vs[i] = 2 + i
		vps[i] = 2 + n + i
	}
	for i := 0; i < n; i++ {
		if err := fg.AddArc(s, vs[i], 1); err != nil {
			return nil, err
		}
		if err := fg.AddArc(vs[i], t, 1); err != nil {
			return nil, err
		}
		if err := fg.AddArc(vs[i], vps[i], 1); err != nil {
			return nil, err
		}
	}
	for _, e := range g.Edges {
		if err := fg.AddArc(vs[e[0]], vps[e[1]], 1); err != nil {
			return nil, err
		}
		if err := fg.AddArc(vs[e[1]], vps[e[0]], 1); err != nil {
			return nil, err
		}
	}
	inst := core.NewInstance(fg, numTokens)
	inst.Have[s].AddRange(0, numTokens)
	for tok := 1; tok < numTokens; tok++ {
		inst.Want[t].Add(tok)
	}
	for i := 0; i < n; i++ {
		inst.Want[vps[i]].Add(0)
	}
	return &Reduction{Inst: inst, S: s, T: t, V: vs, VPrime: vps, K: k}, nil
}

// ScheduleFromDominatingSet constructs the two-timestep schedule of the
// completeness direction: dominating-set vertices receive token 0 in step
// one and fan it out to the satellites in step two, while the remaining
// n−k intermediaries relay tokens {1..n−k} to t.
func (r *Reduction) ScheduleFromDominatingSet(g *UGraph, ds []int) (*core.Schedule, error) {
	n := g.N
	inDS := make([]bool, n)
	for _, v := range ds {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("npc: dominating set vertex %d out of range", v)
		}
		inDS[v] = true
	}
	adj := g.adjacency()

	var step1, step2 core.Step
	tok := 1
	for i := 0; i < n; i++ {
		if inDS[i] {
			step1 = append(step1, core.Move{From: r.S, To: r.V[i], Token: 0})
		} else {
			if tok > n-r.K {
				// More non-DS vertices than relay tokens (|ds| < k): the
				// extra intermediaries stay idle in step one.
				continue
			}
			step1 = append(step1, core.Move{From: r.S, To: r.V[i], Token: tok})
			step2 = append(step2, core.Move{From: r.V[i], To: r.T, Token: tok})
			tok++
		}
	}
	// Step two: every satellite pulls token 0 from a dominating neighbour
	// (or its own intermediary if dominated by itself).
	for i := 0; i < n; i++ {
		from := -1
		if inDS[i] {
			from = r.V[i]
		} else {
			for j := 0; j < n; j++ {
				if inDS[j] && adj[j][i] {
					from = r.V[j]
					break
				}
			}
		}
		if from == -1 {
			return nil, fmt.Errorf("npc: vertex %d not dominated", i)
		}
		step2 = append(step2, core.Move{From: from, To: r.VPrime[i], Token: 0})
	}
	sched := &core.Schedule{}
	sched.Append(step1)
	sched.Append(step2)
	return sched, nil
}
