package protocol

import (
	"testing"

	"ocd/internal/core"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func TestProtocolLocalCompletesAndValidates(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g, err := topology.Random(25, topology.DefaultCaps, seed)
		if err != nil {
			t.Fatal(err)
		}
		inst := workload.SingleFile(g, 20)
		res, err := sim.Run(inst, Local, sim.Options{
			Seed: seed, Prune: true, IdlePatience: g.Diameter() + 2,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: incomplete", seed)
		}
		if err := core.Validate(inst, res.Schedule); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", seed, err)
		}
		if res.Rejected != 0 {
			t.Errorf("seed %d: %d rejected moves — stale beliefs should always be valid (possession is monotone)",
				seed, res.Rejected)
		}
	}
}

func TestProtocolLocalFirstTurnIsIdle(t *testing.T) {
	// At turn 0 no vertex has heard from any neighbor yet, so nothing can
	// be requested: the first turn must be idle (the §4.1 bootstrap).
	g, err := topology.Line(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 4)
	res, err := sim.Run(inst, Local, sim.Options{Seed: 1, IdlePatience: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Steps) == 0 || len(res.Schedule.Steps[0]) != 0 {
		t.Errorf("first turn was not idle: %v", res.Schedule.Steps[0])
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
}

func TestProtocolLagsIdealizedLocal(t *testing.T) {
	// The honest message-passing variant can never beat the idealized
	// instant-aggregate Local on turns (aggregate over seeds), and the gap
	// stays within a small multiple of the knowledge diameter.
	g, err := topology.Random(30, topology.DefaultCaps, 4)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 24)
	idealTotal, protoTotal := 0, 0
	for seed := int64(0); seed < 3; seed++ {
		ideal, err := sim.Run(inst, heuristics.Local, sim.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		proto, err := sim.Run(inst, Local, sim.Options{
			Seed: seed, IdlePatience: g.Diameter() + 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		idealTotal += ideal.Steps
		protoTotal += proto.Steps
	}
	if protoTotal < idealTotal {
		t.Errorf("protocol variant (%d total turns) beat the idealized one (%d)",
			protoTotal, idealTotal)
	}
}

func TestProtocolLocalSparseWants(t *testing.T) {
	g, err := topology.TransitStubN(25, topology.DefaultCaps, 7)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.ReceiverDensity(g, 12, 0.3, 9)
	res, err := sim.Run(inst, Local, sim.Options{
		Seed: 2, IdlePatience: g.Diameter() + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete on sparse wants")
	}
}
