package protocol

import (
	"errors"
	"reflect"
	"testing"

	"ocd/internal/core"
	"ocd/internal/fault"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func TestProtocolLocalCompletesAndValidates(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g, err := topology.Random(25, topology.DefaultCaps, seed)
		if err != nil {
			t.Fatal(err)
		}
		inst := workload.SingleFile(g, 20)
		res, err := sim.Run(inst, Local, sim.Options{
			Seed: seed, Prune: true, IdlePatience: g.Diameter() + 2,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: incomplete", seed)
		}
		if err := core.Validate(inst, res.Schedule); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", seed, err)
		}
		if res.Rejected != 0 {
			t.Errorf("seed %d: %d rejected moves — stale beliefs should always be valid (possession is monotone)",
				seed, res.Rejected)
		}
	}
}

func TestProtocolLocalFirstTurnIsIdle(t *testing.T) {
	// At turn 0 no vertex has heard from any neighbor yet, so nothing can
	// be requested: the first turn must be idle (the §4.1 bootstrap).
	g, err := topology.Line(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 4)
	res, err := sim.Run(inst, Local, sim.Options{Seed: 1, IdlePatience: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Steps) == 0 || len(res.Schedule.Steps[0]) != 0 {
		t.Errorf("first turn was not idle: %v", res.Schedule.Steps[0])
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
}

func TestProtocolLagsIdealizedLocal(t *testing.T) {
	// The honest message-passing variant can never beat the idealized
	// instant-aggregate Local on turns (aggregate over seeds), and the gap
	// stays within a small multiple of the knowledge diameter.
	g, err := topology.Random(30, topology.DefaultCaps, 4)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 24)
	idealTotal, protoTotal := 0, 0
	for seed := int64(0); seed < 3; seed++ {
		ideal, err := sim.Run(inst, heuristics.Local, sim.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		proto, err := sim.Run(inst, Local, sim.Options{
			Seed: seed, IdlePatience: g.Diameter() + 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		idealTotal += ideal.Steps
		protoTotal += proto.Steps
	}
	if protoTotal < idealTotal {
		t.Errorf("protocol variant (%d total turns) beat the idealized one (%d)",
			protoTotal, idealTotal)
	}
}

func TestProtocolLocalSparseWants(t *testing.T) {
	g, err := topology.TransitStubN(25, topology.DefaultCaps, 7)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.ReceiverDensity(g, 12, 0.3, 9)
	res, err := sim.Run(inst, Local, sim.Options{
		Seed: 2, IdlePatience: g.Diameter() + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete on sparse wants")
	}
}

func TestGossipLossStillCompletes(t *testing.T) {
	// Dropping 30% of knowledge messages only delays convergence: the
	// versioned tables stay stale until an exchange succeeds. The run must
	// still complete (with more patience) and stay deterministic.
	g, err := topology.Random(20, topology.DefaultCaps, 4)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 15)
	drop := fault.GossipLoss{P: 0.3, Seed: 9}
	opts := sim.Options{Seed: 4, IdlePatience: 4 * (g.Diameter() + 2)}

	res, err := sim.Run(inst, LocalWithGossipLoss(drop.Drop), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run under 30% gossip loss incomplete")
	}
	if err := core.Validate(inst, res.Schedule); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}

	again, err := sim.Run(inst, LocalWithGossipLoss(fault.GossipLoss{P: 0.3, Seed: 9}.Drop), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Schedule, again.Schedule) {
		t.Error("gossip loss broke schedule determinism")
	}
}

func TestGossipLossSlowsConvergence(t *testing.T) {
	g, err := topology.Random(20, topology.DefaultCaps, 7)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 15)
	opts := sim.Options{Seed: 7, IdlePatience: 6 * (g.Diameter() + 2)}
	clean, err := sim.Run(inst, Local, opts)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := sim.Run(inst, LocalWithGossipLoss(fault.GossipLoss{P: 0.6, Seed: 7}.Drop), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !lossy.Completed {
		t.Fatal("run under 60% gossip loss incomplete")
	}
	if lossy.Steps < clean.Steps {
		t.Errorf("gossip loss accelerated the protocol: %d < %d steps", lossy.Steps, clean.Steps)
	}
}

func TestTotalGossipLossStalls(t *testing.T) {
	// With every knowledge message dropped, vertices only ever know
	// themselves and no request can be formed: the run must stall rather
	// than loop forever.
	g, err := topology.Random(12, topology.DefaultCaps, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 6)
	_, err = sim.Run(inst, LocalWithGossipLoss(func(int, int, int) bool { return true }),
		sim.Options{Seed: 2, IdlePatience: 5, MaxSteps: 100})
	if !errors.Is(err, sim.ErrStalled) {
		t.Errorf("want ErrStalled under total gossip loss, got %v", err)
	}
}
