// Package protocol realizes the Local heuristic as a genuinely
// message-passing distributed algorithm, closing the gap §5.1 leaves open
// ("How a vertex would know this information is an implementation
// problem"): instead of assuming per-turn global aggregates, every vertex
// maintains a versioned knowledge table about every other vertex and
// gossips it to its neighbors once per turn — exactly the §4.1 LOCD model,
// where k_{i+1}(v) is a function of k_i(v) and the neighbors' k_i.
//
// Knowledge therefore lags reality by graph distance: a vertex's view of a
// peer d hops away is at least d turns stale. The protocol variant of
// Local pays for this honesty with extra turns relative to the idealized
// instant-aggregate version; the comparison experiment quantifies the gap
// against the knowledge diameter.
package protocol

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
)

// Local returns the message-passing Local (rarest-random) strategy.
// Run it with IdlePatience of at least the graph diameter: early turns can
// be idle while want/have knowledge is still propagating.
var Local sim.Factory = newProtocolLocal

// LocalWithGossipLoss returns protocol-local with lossy knowledge
// exchange: the per-turn table message from→to is suppressed whenever drop
// returns true (see fault.GossipLoss for the deterministic model). Dropped
// gossip only delays knowledge — the versioned tables simply stay stale
// until a later exchange gets through — so the strategy degrades to extra
// turns rather than wrong moves. Run with IdlePatience scaled up
// accordingly: the effective knowledge diameter grows with the drop rate.
func LocalWithGossipLoss(drop func(step, from, to int) bool) sim.Factory {
	return func(inst *core.Instance, rng *rand.Rand) (sim.Strategy, error) {
		s, err := newProtocolLocal(inst, rng)
		if err != nil {
			return nil, err
		}
		p := s.(*protocolLocal)
		p.drop = drop
		return p, nil
	}
}

// entry is one row of a vertex's knowledge table: what it believes some
// vertex possesses and wants, and how fresh that belief is.
type entry struct {
	have    tokenset.Set
	want    tokenset.Set
	version int // turn the information was current at; -1 = never heard
}

// nodeState is the per-vertex protocol state.
type nodeState struct {
	table []entry
}

type protocolLocal struct {
	nodes []nodeState
	m     int
	// drop, when non-nil, suppresses the knowledge message from→to for the
	// step (lossy gossip).
	drop func(step, from, to int) bool
	// scratch for the per-turn exchange snapshot.
	snapshot []nodeState
}

func newProtocolLocal(inst *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
	n := inst.N()
	p := &protocolLocal{m: inst.NumTokens, nodes: make([]nodeState, n)}
	for v := 0; v < n; v++ {
		table := make([]entry, n)
		for u := 0; u < n; u++ {
			table[u] = entry{version: -1}
		}
		// k_0(v): own neighbors, capacities, h(v), w(v) — here the own row.
		table[v] = entry{
			have:    inst.Have[v].Clone(),
			want:    inst.Want[v].Clone(),
			version: 0,
		}
		p.nodes[v] = nodeState{table: table}
	}
	return p, nil
}

func (p *protocolLocal) Name() string { return "protocol-local" }

func (p *protocolLocal) Plan(st *sim.State) []core.Move {
	inst := st.Inst
	n := inst.N()

	// Phase 1 — knowledge exchange (§4.1): k_i(v) is computed from the
	// k_{i−1} of v and its neighbors (bidirectional, as the model allows
	// want information to flow against arc direction), so no exchange has
	// happened yet when timestep 0 is planned — vertices start from
	// self-knowledge only and the first turn is necessarily idle.
	// A snapshot keeps the exchange simultaneous.
	if st.Step > 0 {
		p.snapshot = append(p.snapshot[:0], make([]nodeState, n)...)
		for v := 0; v < n; v++ {
			tbl := make([]entry, n)
			copy(tbl, p.nodes[v].table)
			p.snapshot[v] = nodeState{table: tbl}
		}
		for v := 0; v < n; v++ {
			merge := func(u int) {
				if p.drop != nil && p.drop(st.Step, u, v) {
					return
				}
				for w := 0; w < n; w++ {
					their := p.snapshot[u].table[w]
					if their.version > p.nodes[v].table[w].version {
						p.nodes[v].table[w] = their
					}
				}
			}
			for _, a := range inst.G.In(v) {
				merge(a.From)
			}
			for _, a := range inst.G.Out(v) {
				merge(a.To)
			}
		}
	}
	// Refresh own row with ground truth (a vertex always knows itself).
	for v := 0; v < n; v++ {
		p.nodes[v].table[v] = entry{
			have:    st.Possess[v].Clone(),
			want:    inst.Want[v].Clone(),
			version: st.Step + 1,
		}
	}

	// Phase 2 — requests, exactly like Local but from believed state:
	// rarity from the believed have-vectors, holders from the believed
	// neighbor rows, own lacking set from ground truth (self-knowledge).
	rem := make(map[[2]int]int, inst.G.NumArcs())
	for _, a := range inst.G.Arcs() {
		rem[[2]int{a.From, a.To}] = a.Cap
	}
	var moves []core.Move
	order := st.Rand.Perm(n)
	for _, v := range order {
		in := inst.G.In(v)
		if len(in) == 0 {
			continue
		}
		counts := p.believedCounts(v)
		wanted := st.Missing(v)
		other := st.Lacking(v)
		other.DifferenceWith(wanted)
		for _, class := range []tokenset.Set{wanted, other} {
			tokens := class.Slice()
			st.Rand.Shuffle(len(tokens), func(i, j int) {
				tokens[i], tokens[j] = tokens[j], tokens[i]
			})
			sortByBelievedRarity(tokens, counts)
			for _, t := range tokens {
				best := -1
				seen := 0
				for _, a := range in {
					believed := p.nodes[v].table[a.From]
					if believed.version < 0 || !believed.have.Has(t) {
						continue
					}
					if rem[[2]int{a.From, v}] <= 0 {
						continue
					}
					seen++
					if st.Rand.Intn(seen) == 0 {
						best = a.From
					}
				}
				if best == -1 {
					continue
				}
				rem[[2]int{best, v}]--
				moves = append(moves, core.Move{From: best, To: v, Token: t})
			}
		}
	}
	return moves
}

// believedCounts computes v's rarity estimate: how many vertices v
// believes possess each token, from its knowledge table.
func (p *protocolLocal) believedCounts(v int) []int {
	counts := make([]int, p.m)
	for _, e := range p.nodes[v].table {
		if e.version < 0 {
			continue
		}
		e.have.ForEach(func(t int) bool {
			counts[t]++
			return true
		})
	}
	return counts
}

// sortByBelievedRarity insertion-sorts tokens ascending by believed count,
// preserving the pre-shuffled order among ties.
func sortByBelievedRarity(tokens []int, counts []int) {
	for i := 1; i < len(tokens); i++ {
		t := tokens[i]
		j := i - 1
		for j >= 0 && counts[tokens[j]] > counts[t] {
			tokens[j+1] = tokens[j]
			j--
		}
		tokens[j+1] = t
	}
}
