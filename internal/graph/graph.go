// Package graph implements the simple weighted directed graphs over which
// the Overlay Content Distribution problem is defined (paper §3.1).
//
// Arc weights are capacities: the number of tokens that can cross the arc in
// a single timestep. Multi-arcs are merged by summing capacities, as the
// paper permits. The package also provides the reachability machinery the
// heuristics and lower bounds need: BFS distance fields, all-pairs
// distances, diameter, and radius closures.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Arc is a directed capacitated edge.
type Arc struct {
	From int
	To   int
	Cap  int
}

// Graph is a simple directed graph with integer arc capacities.
// Construct with New and AddArc; the accessor methods are read-only and
// safe for concurrent use once construction is complete.
//
// Every distinct arc is assigned a dense arc ID in [0, NumArcs()) at
// insertion time. The IDs let per-timestep engines keep arc-indexed state
// (residual capacity, usage counters) in flat slices instead of maps — the
// simulation hot path allocates nothing per arc lookup. IDs are stable for
// the lifetime of the graph and deterministic for a deterministic
// construction order.
type Graph struct {
	n        int
	out      [][]Arc
	in       [][]Arc
	outID    [][]int32
	inID     [][]int32
	ids      map[[2]int]int32
	capsByID []int
}

// ErrVertexRange indicates an arc endpoint outside [0, n).
var ErrVertexRange = errors.New("graph: vertex out of range")

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		n:     n,
		out:   make([][]Arc, n),
		in:    make([][]Arc, n),
		outID: make([][]int32, n),
		inID:  make([][]int32, n),
		ids:   make(map[[2]int]int32),
	}
}

// AddArc inserts the directed arc u→v with the given capacity. Adding an arc
// that already exists merges capacities by summation (multi-arc rule, §3.1).
// Self-loops and non-positive capacities are rejected.
func (g *Graph) AddArc(u, v, capacity int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop (%d,%d) not allowed", u, v)
	}
	if capacity <= 0 {
		return fmt.Errorf("graph: capacity %d on (%d,%d) must be positive", capacity, u, v)
	}
	key := [2]int{u, v}
	if id, ok := g.ids[key]; ok {
		merged := g.capsByID[id] + capacity
		g.capsByID[id] = merged
		g.setListCap(u, v, merged)
		return nil
	}
	id := int32(len(g.capsByID))
	g.ids[key] = id
	g.capsByID = append(g.capsByID, capacity)
	g.out[u] = append(g.out[u], Arc{From: u, To: v, Cap: capacity})
	g.in[v] = append(g.in[v], Arc{From: u, To: v, Cap: capacity})
	g.outID[u] = append(g.outID[u], id)
	g.inID[v] = append(g.inID[v], id)
	return nil
}

// AddEdge inserts both u→v and v→u with the same capacity.
func (g *Graph) AddEdge(u, v, capacity int) error {
	if err := g.AddArc(u, v, capacity); err != nil {
		return err
	}
	return g.AddArc(v, u, capacity)
}

func (g *Graph) setListCap(u, v, capacity int) {
	for i := range g.out[u] {
		if g.out[u][i].To == v {
			g.out[u][i].Cap = capacity
			break
		}
	}
	for i := range g.in[v] {
		if g.in[v][i].From == u {
			g.in[v][i].Cap = capacity
			break
		}
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// NumArcs returns the number of distinct directed arcs.
func (g *Graph) NumArcs() int { return len(g.capsByID) }

// Cap returns the capacity of arc u→v, or 0 if the arc does not exist.
func (g *Graph) Cap(u, v int) int {
	id, ok := g.ids[[2]int{u, v}]
	if !ok {
		return 0
	}
	return g.capsByID[id]
}

// HasArc reports whether the arc u→v exists.
func (g *Graph) HasArc(u, v int) bool {
	_, ok := g.ids[[2]int{u, v}]
	return ok
}

// ArcID returns the dense arc ID of u→v in [0, NumArcs()), or -1 if the
// arc does not exist. IDs are assigned in insertion order and never change.
func (g *Graph) ArcID(u, v int) int {
	id, ok := g.ids[[2]int{u, v}]
	if !ok {
		return -1
	}
	return int(id)
}

// CapByID returns the capacity of the arc with the given dense ID.
func (g *Graph) CapByID(id int) int { return g.capsByID[id] }

// CapsByID returns the capacities of all arcs indexed by arc ID. The
// returned slice is the graph's own storage: callers must copy it (e.g.
// into a per-timestep residual buffer) and must not modify it.
func (g *Graph) CapsByID() []int { return g.capsByID }

// OutArcIDs returns the dense arc IDs of u's outgoing arcs, parallel to
// Out(u). The returned slice must not be modified.
func (g *Graph) OutArcIDs(u int) []int32 { return g.outID[u] }

// InArcIDs returns the dense arc IDs of v's incoming arcs, parallel to
// In(v). The returned slice must not be modified.
func (g *Graph) InArcIDs(v int) []int32 { return g.inID[v] }

// Out returns the outgoing arcs of u. The returned slice must not be
// modified.
func (g *Graph) Out(u int) []Arc { return g.out[u] }

// In returns the incoming arcs of v. The returned slice must not be
// modified.
func (g *Graph) In(v int) []Arc { return g.in[v] }

// OutDegree returns the number of outgoing arcs of u.
func (g *Graph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the number of incoming arcs of v.
func (g *Graph) InDegree(v int) int { return len(g.in[v]) }

// InCapacity returns the total capacity of arcs entering v.
func (g *Graph) InCapacity(v int) int {
	total := 0
	for _, a := range g.in[v] {
		total += a.Cap
	}
	return total
}

// OutCapacity returns the total capacity of arcs leaving u.
func (g *Graph) OutCapacity(u int) int {
	total := 0
	for _, a := range g.out[u] {
		total += a.Cap
	}
	return total
}

// Arcs returns all arcs sorted by (From, To). The slice is freshly
// allocated.
func (g *Graph) Arcs() []Arc {
	arcs := make([]Arc, 0, len(g.capsByID))
	for u := 0; u < g.n; u++ {
		arcs = append(arcs, g.out[u]...)
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		return arcs[i].To < arcs[j].To
	})
	return arcs
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, a := range g.Arcs() {
		_ = c.AddArc(a.From, a.To, a.Cap) // valid arcs by construction
	}
	return c
}

// BFSFrom returns the hop distance from src to every vertex following arc
// direction; unreachable vertices get -1.
func (g *Graph) BFSFrom(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.out[u] {
			if dist[a.To] == -1 {
				dist[a.To] = dist[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return dist
}

// BFSTo returns the hop distance from every vertex to dst following arc
// direction (i.e. BFS over reversed arcs); unreachable vertices get -1.
func (g *Graph) BFSTo(dst int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if dst < 0 || dst >= g.n {
		return dist
	}
	dist[dst] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, dst)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.in[v] {
			if dist[a.From] == -1 {
				dist[a.From] = dist[v] + 1
				queue = append(queue, a.From)
			}
		}
	}
	return dist
}

// MultiSourceBFSTo returns, for every vertex v, the hop distance from v to
// the nearest vertex in targets (following arc direction). Unreachable
// vertices get -1.
func (g *Graph) MultiSourceBFSTo(targets []int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, g.n)
	for _, t := range targets {
		if t >= 0 && t < g.n && dist[t] == -1 {
			dist[t] = 0
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.in[v] {
			if dist[a.From] == -1 {
				dist[a.From] = dist[v] + 1
				queue = append(queue, a.From)
			}
		}
	}
	return dist
}

// AllPairs returns the full hop-distance matrix d[u][v]; -1 marks
// unreachable pairs. O(n·(n+m)).
func (g *Graph) AllPairs() [][]int {
	d := make([][]int, g.n)
	for u := 0; u < g.n; u++ {
		d[u] = g.BFSFrom(u)
	}
	return d
}

// Diameter returns the longest finite shortest-path distance in the graph;
// if any ordered pair is unreachable it returns -1.
func (g *Graph) Diameter() int {
	diam := 0
	for u := 0; u < g.n; u++ {
		dist := g.BFSFrom(u)
		for v, dv := range dist {
			if v == u {
				continue
			}
			if dv == -1 {
				return -1
			}
			if dv > diam {
				diam = dv
			}
		}
	}
	return diam
}

// StronglyConnected reports whether every vertex can reach every other
// vertex following arc directions.
func (g *Graph) StronglyConnected() bool {
	if g.n == 0 {
		return true
	}
	for _, dv := range g.BFSFrom(0) {
		if dv == -1 {
			return false
		}
	}
	for _, dv := range g.BFSTo(0) {
		if dv == -1 {
			return false
		}
	}
	return true
}

// InClosure returns the set of vertices u with dist(u → v) ≤ radius, i.e.
// the vertices whose tokens could reach v within radius timesteps ignoring
// capacities. Used by the radius move lower bound (§5.1).
func (g *Graph) InClosure(v, radius int) []int {
	dist := g.BFSTo(v)
	closure := make([]int, 0, g.n)
	for u, du := range dist {
		if du >= 0 && du <= radius {
			closure = append(closure, u)
		}
	}
	return closure
}

// DOT renders the graph in Graphviz DOT format with capacities as labels.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", name)
	for _, a := range g.Arcs() {
		fmt.Fprintf(&b, "  %d -> %d [label=%d];\n", a.From, a.To, a.Cap)
	}
	b.WriteString("}\n")
	return b.String()
}
