package graph

import (
	"testing"
	"testing/quick"
)

// arcSpec is a generatable arc description for property tests.
type arcSpec struct {
	U, V uint8
	Cap  uint8
}

// buildFromSpecs inserts the valid specs into a graph and a reference map
// model, returning both.
func buildFromSpecs(n int, specs []arcSpec) (*Graph, map[[2]int]int) {
	g := New(n)
	ref := make(map[[2]int]int)
	for _, s := range specs {
		u, v, c := int(s.U)%n, int(s.V)%n, int(s.Cap%9)+1
		if u == v {
			continue
		}
		if err := g.AddArc(u, v, c); err != nil {
			continue
		}
		ref[[2]int{u, v}] += c
	}
	return g, ref
}

func TestQuickAdjacencyMatchesModel(t *testing.T) {
	f := func(specs []arcSpec) bool {
		const n = 12
		g, ref := buildFromSpecs(n, specs)
		if g.NumArcs() != len(ref) {
			return false
		}
		for key, c := range ref {
			if g.Cap(key[0], key[1]) != c {
				return false
			}
		}
		// Out/In lists agree with the map in both directions.
		outCount, inCount := 0, 0
		for v := 0; v < n; v++ {
			outCount += g.OutDegree(v)
			inCount += g.InDegree(v)
			for _, a := range g.Out(v) {
				if ref[[2]int{a.From, a.To}] != a.Cap {
					return false
				}
			}
			for _, a := range g.In(v) {
				if ref[[2]int{a.From, a.To}] != a.Cap {
					return false
				}
			}
		}
		return outCount == len(ref) && inCount == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickBFSTriangleInequality(t *testing.T) {
	f := func(specs []arcSpec) bool {
		const n = 10
		g, _ := buildFromSpecs(n, specs)
		d := g.AllPairs()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				for w := 0; w < n; w++ {
					if d[u][v] < 0 || d[v][w] < 0 {
						continue
					}
					if d[u][w] == -1 || d[u][w] > d[u][v]+d[v][w] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickBFSToMirrorsBFSFrom(t *testing.T) {
	// dist(u→v) computed forward must equal dist computed backward.
	f := func(specs []arcSpec) bool {
		const n = 10
		g, _ := buildFromSpecs(n, specs)
		for v := 0; v < n; v++ {
			back := g.BFSTo(v)
			for u := 0; u < n; u++ {
				if g.BFSFrom(u)[v] != back[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneEquivalent(t *testing.T) {
	f := func(specs []arcSpec) bool {
		const n = 8
		g, _ := buildFromSpecs(n, specs)
		c := g.Clone()
		if c.NumArcs() != g.NumArcs() {
			return false
		}
		for _, a := range g.Arcs() {
			if c.Cap(a.From, a.To) != a.Cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
