package graph

import (
	"errors"
	"strings"
	"testing"
)

func mustAdd(t *testing.T, g *Graph, u, v, c int) {
	t.Helper()
	if err := g.AddArc(u, v, c); err != nil {
		t.Fatalf("AddArc(%d,%d,%d): %v", u, v, c, err)
	}
}

func TestAddArcBasics(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1, 5)
	if !g.HasArc(0, 1) || g.HasArc(1, 0) {
		t.Error("arc direction wrong")
	}
	if got := g.Cap(0, 1); got != 5 {
		t.Errorf("Cap = %d, want 5", got)
	}
	if got := g.NumArcs(); got != 1 {
		t.Errorf("NumArcs = %d, want 1", got)
	}
	if got := g.OutDegree(0); got != 1 {
		t.Errorf("OutDegree(0) = %d", got)
	}
	if got := g.InDegree(1); got != 1 {
		t.Errorf("InDegree(1) = %d", got)
	}
}

func TestMultiArcMergesCapacity(t *testing.T) {
	g := New(2)
	mustAdd(t, g, 0, 1, 3)
	mustAdd(t, g, 0, 1, 4)
	if got := g.Cap(0, 1); got != 7 {
		t.Errorf("merged Cap = %d, want 7", got)
	}
	if got := g.NumArcs(); got != 1 {
		t.Errorf("NumArcs after merge = %d, want 1", got)
	}
	// The adjacency lists must agree with the merged capacity.
	if got := g.Out(0)[0].Cap; got != 7 {
		t.Errorf("Out list Cap = %d, want 7", got)
	}
	if got := g.In(1)[0].Cap; got != 7 {
		t.Errorf("In list Cap = %d, want 7", got)
	}
}

func TestAddArcErrors(t *testing.T) {
	g := New(3)
	if err := g.AddArc(0, 3, 1); !errors.Is(err, ErrVertexRange) {
		t.Errorf("out-of-range arc: err = %v", err)
	}
	if err := g.AddArc(-1, 0, 1); !errors.Is(err, ErrVertexRange) {
		t.Errorf("negative vertex: err = %v", err)
	}
	if err := g.AddArc(1, 1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddArc(0, 1, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := g.AddArc(0, 1, -2); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestAddEdgeSymmetric(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	if g.Cap(0, 1) != 4 || g.Cap(1, 0) != 4 {
		t.Error("AddEdge not symmetric")
	}
}

// line returns 0→1→…→n−1 (directed one way only).
func line(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i+1 < n; i++ {
		mustAdd(t, g, i, i+1, 1)
	}
	return g
}

func TestBFSFrom(t *testing.T) {
	g := line(t, 4)
	dist := g.BFSFrom(0)
	want := []int{0, 1, 2, 3}
	for v, d := range want {
		if dist[v] != d {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
	// Reverse direction is unreachable.
	if d := g.BFSFrom(3); d[0] != -1 {
		t.Errorf("BFSFrom(3)[0] = %d, want -1", d[0])
	}
}

func TestBFSTo(t *testing.T) {
	g := line(t, 4)
	dist := g.BFSTo(3)
	want := []int{3, 2, 1, 0}
	for v, d := range want {
		if dist[v] != d {
			t.Errorf("distTo[%d] = %d, want %d", v, dist[v], d)
		}
	}
}

func TestMultiSourceBFSTo(t *testing.T) {
	g := line(t, 5)
	dist := g.MultiSourceBFSTo([]int{2, 4})
	want := []int{2, 1, 0, 1, 0}
	for v, d := range want {
		if dist[v] != d {
			t.Errorf("multi distTo[%d] = %d, want %d", v, dist[v], d)
		}
	}
	// Empty target list: all unreachable.
	for _, d := range g.MultiSourceBFSTo(nil) {
		if d != -1 {
			t.Error("empty targets produced finite distance")
		}
	}
}

func TestDiameterAndConnectivity(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if got := g.Diameter(); got != 2 {
		t.Errorf("Diameter = %d, want 2", got)
	}
	if !g.StronglyConnected() {
		t.Error("bidirectional path not strongly connected")
	}
	// One-way line is not strongly connected and has no finite diameter.
	l := line(t, 3)
	if l.StronglyConnected() {
		t.Error("one-way line reported strongly connected")
	}
	if got := l.Diameter(); got != -1 {
		t.Errorf("one-way line Diameter = %d, want -1", got)
	}
}

func TestInClosure(t *testing.T) {
	g := line(t, 5)
	got := g.InClosure(3, 2)
	want := map[int]bool{1: true, 2: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("InClosure = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Errorf("InClosure contains %d", v)
		}
	}
}

func TestInOutCapacity(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 2, 3)
	mustAdd(t, g, 1, 2, 4)
	mustAdd(t, g, 2, 0, 5)
	if got := g.InCapacity(2); got != 7 {
		t.Errorf("InCapacity(2) = %d, want 7", got)
	}
	if got := g.OutCapacity(2); got != 5 {
		t.Errorf("OutCapacity(2) = %d, want 5", got)
	}
}

func TestArcsSortedAndClone(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 2, 0, 1)
	mustAdd(t, g, 0, 1, 2)
	mustAdd(t, g, 0, 2, 3)
	arcs := g.Arcs()
	if arcs[0].From != 0 || arcs[0].To != 1 || arcs[2].From != 2 {
		t.Errorf("Arcs not sorted: %v", arcs)
	}
	c := g.Clone()
	if c.NumArcs() != g.NumArcs() || c.Cap(0, 2) != 3 {
		t.Error("Clone lost arcs")
	}
	mustAdd(t, c, 1, 2, 1)
	if g.HasArc(1, 2) {
		t.Error("Clone shares state with original")
	}
}

func TestDOT(t *testing.T) {
	g := New(2)
	mustAdd(t, g, 0, 1, 9)
	dot := g.DOT("test")
	if !strings.Contains(dot, "digraph test") || !strings.Contains(dot, "0 -> 1 [label=9]") {
		t.Errorf("DOT output malformed:\n%s", dot)
	}
}

func TestAllPairsMatchesBFS(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 2, 3, 1)
	mustAdd(t, g, 3, 0, 1)
	ap := g.AllPairs()
	for u := 0; u < 4; u++ {
		bfs := g.BFSFrom(u)
		for v := 0; v < 4; v++ {
			if ap[u][v] != bfs[v] {
				t.Errorf("AllPairs[%d][%d] = %d, BFS = %d", u, v, ap[u][v], bfs[v])
			}
		}
	}
}
