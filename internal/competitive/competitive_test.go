package competitive

import (
	"testing"

	"ocd/internal/core"
	"ocd/internal/heuristics"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func TestAdversarialInstanceShape(t *testing.T) {
	inst, err := AdversarialInstance(4, 10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if inst.N() != 5 || inst.NumTokens != 10 {
		t.Errorf("instance n=%d m=%d", inst.N(), inst.NumTokens)
	}
	if !inst.Have[0].Has(3) || !inst.Want[4].Has(3) || inst.Want[4].Count() != 1 {
		t.Error("have/want layout wrong")
	}
	if err := inst.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAdversarialInstanceErrors(t *testing.T) {
	if _, err := AdversarialInstance(0, 1, 0, 1); err == nil {
		t.Error("pathLen=0 accepted")
	}
	if _, err := AdversarialInstance(2, 3, 5, 1); err == nil {
		t.Error("wanted token out of range accepted")
	}
}

func TestWorstCaseRatioGrowsWithDecoys(t *testing.T) {
	// Theorem 4: the ratio must grow without bound in the decoy count.
	prev := 0.0
	for _, m := range []int{2, 8, 32} {
		pt, err := WorstCaseRatio(1, m, 1)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Offline != 1 {
			t.Errorf("offline optimum = %d, want 1", pt.Offline)
		}
		if pt.Ratio <= prev {
			t.Errorf("ratio %f did not grow beyond %f at m=%d", pt.Ratio, prev, m)
		}
		prev = pt.Ratio
	}
	// With capacity 1 and a single link, the knowledge-free online
	// algorithm needs exactly m steps against an offline optimum of 1.
	pt, err := WorstCaseRatio(1, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Online != 16 {
		t.Errorf("online makespan = %d, want 16", pt.Online)
	}
}

func TestWorstCaseRatioLongPath(t *testing.T) {
	pt, err := WorstCaseRatio(5, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Offline != 5 {
		t.Errorf("offline = %d, want path length 5", pt.Offline)
	}
	if pt.Online < pt.Offline {
		t.Error("online beat the offline optimum")
	}
}

func TestOracleWithinAdditiveDiameter(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		g, err := topology.Random(25, topology.DefaultCaps, seed)
		if err != nil {
			t.Fatal(err)
		}
		inst := workload.SingleFile(g, 20)
		planned, err := RunOracle(inst, heuristics.Global, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !planned.Completed {
			t.Fatal("oracle run incomplete")
		}
		if err := core.Validate(inst, planned.Schedule); err != nil {
			t.Fatalf("oracle schedule invalid: %v", err)
		}
		// The first diameter steps must be idle (knowledge propagation).
		diam := g.Diameter()
		for i := 0; i < diam && i < len(planned.Schedule.Steps); i++ {
			if len(planned.Schedule.Steps[i]) != 0 {
				t.Errorf("seed %d: oracle moved during listening step %d", seed, i)
			}
		}
	}
}

func TestOracleNamePropagates(t *testing.T) {
	g, err := topology.Line(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 1)
	res, err := RunOracle(inst, heuristics.Local, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "oracle(local)" {
		t.Errorf("strategy name = %q", res.Strategy)
	}
}
