// Package competitive realizes §4 of the paper: the Local-knowledge
// Overlay Content Distribution (LOCD) setting, the Theorem 4 family showing
// that no c-competitive online algorithm exists for FOCD, and the §4.2
// "propagate knowledge, then plan" oracle that is always within an additive
// diameter of the offline optimum.
package competitive

import (
	"fmt"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/heuristics"
	"ocd/internal/locd"
	"ocd/internal/sim"
	"ocd/internal/topology"
)

// AdversarialInstance builds the Theorem 4 family: a bidirectional path of
// length pathLen with all arcs at capacity cap; vertex 0 (the sender) holds
// m tokens, and the far endpoint wants exactly one of them — which one, a
// knowledge-free online algorithm cannot know. The offline optimum delivers
// the wanted token in exactly pathLen timesteps.
func AdversarialInstance(pathLen, m, wantedToken, cap int) (*core.Instance, error) {
	if pathLen < 1 || m < 1 || wantedToken < 0 || wantedToken >= m {
		return nil, fmt.Errorf("competitive: bad family parameters L=%d m=%d t=%d", pathLen, m, wantedToken)
	}
	g, err := topology.Line(pathLen+1, cap)
	if err != nil {
		return nil, err
	}
	inst := core.NewInstance(g, m)
	inst.Have[0].AddRange(0, m)
	inst.Want[pathLen].Add(wantedToken)
	return inst, nil
}

// RatioPoint is one measurement of the online/offline makespan ratio.
type RatioPoint struct {
	Decoys  int
	PathLen int
	// Online is the worst-case (over the adversary's choice of wanted
	// token) makespan of the knowledge-free online algorithm.
	Online int
	// Offline is the prescient optimum (= PathLen).
	Offline int
	// Ratio is Online / Offline.
	Ratio float64
}

// WorstCaseRatio measures the competitive ratio of the knowledge-free
// Round Robin algorithm on the Theorem 4 family. Round Robin's behaviour
// is independent of the want sets, so the adversary simply picks the token
// that arrives at the receiver last; we run once with every token wanted
// and read off the latest arrival. The ratio grows without bound in the
// number of decoy tokens, demonstrating Theorem 4.
func WorstCaseRatio(pathLen, m, cap int) (RatioPoint, error) {
	inst, err := AdversarialInstance(pathLen, m, 0, cap)
	if err != nil {
		return RatioPoint{}, err
	}
	// Make the far endpoint want everything: Round Robin ignores wants,
	// and completion then records the last token's arrival step.
	inst.Want[pathLen].Clear()
	inst.Want[pathLen].AddRange(0, m)
	res, err := sim.Run(inst, heuristics.RoundRobin, sim.Options{Seed: 1})
	if err != nil {
		return RatioPoint{}, err
	}
	if !res.Completed {
		return RatioPoint{}, fmt.Errorf("competitive: round robin did not complete within horizon")
	}
	return RatioPoint{
		Decoys:  m - 1,
		PathLen: pathLen,
		Online:  res.Steps,
		Offline: pathLen,
		Ratio:   float64(res.Steps) / float64(pathLen),
	}, nil
}

// Oracle wraps any strategy with the §4.2 construction: stay idle until
// complete knowledge of the initial graph state has propagated to every
// vertex (the §4.1 knowledge model lets information travel both ways along
// every edge, so this is the bidirectional knowledge diameter), then follow
// a globally planned strategy. Its makespan is therefore within an additive
// diameter of the optimal offline schedule, the best general guarantee
// available (§4.2).
func Oracle(inner sim.Factory) sim.Factory {
	// The facade name composes as oracle(<inner>) — experiment tables key
	// on it.
	return sim.WrapStrategy(inner, func(inst *core.Instance, s sim.Strategy) (sim.Strategy, error) {
		return &oracleStrategy{inner: s, wait: knowledgeWait(inst.G)}, nil
	})
}

type oracleStrategy struct {
	inner sim.Strategy
	wait  int
}

func (o *oracleStrategy) Name() string { return "oracle(" + o.inner.Name() + ")" }

func (o *oracleStrategy) Plan(st *sim.State) []core.Move {
	if st.Step < o.wait {
		return nil // listening phase: knowledge propagates, nothing moves
	}
	return o.inner.Plan(st)
}

// RunOracle executes the oracle wrapper with enough idle patience for its
// listening phase.
func RunOracle(inst *core.Instance, inner sim.Factory, seed int64) (*sim.Result, error) {
	return sim.Run(inst, Oracle(inner), sim.Options{
		Seed:         seed,
		IdlePatience: knowledgeWait(inst.G) + 1,
		Prune:        true,
	})
}

// knowledgeWait is the number of listening steps the oracle needs: the
// §4.1 full-knowledge propagation time.
func knowledgeWait(g *graph.Graph) int {
	d := locd.FullKnowledgeStep(g)
	if d < 0 {
		return g.N() // disconnected knowledge graph: trivial bound
	}
	return d
}
