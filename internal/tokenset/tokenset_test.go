package tokenset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Error("new set not empty")
	}
	if got := s.Count(); got != 0 {
		t.Errorf("Count() = %d, want 0", got)
	}
	if got := s.Universe(); got != 100 {
		t.Errorf("Universe() = %d, want 100", got)
	}
	if s.Has(0) || s.Has(99) {
		t.Error("empty set reports membership")
	}
}

func TestAddRemoveHas(t *testing.T) {
	s := New(130)
	for _, tok := range []int{0, 1, 63, 64, 65, 127, 129} {
		s.Add(tok)
		if !s.Has(tok) {
			t.Errorf("Has(%d) = false after Add", tok)
		}
	}
	if got := s.Count(); got != 7 {
		t.Errorf("Count() = %d, want 7", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("Has(64) = true after Remove")
	}
	if got := s.Count(); got != 6 {
		t.Errorf("Count() = %d, want 6", got)
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	s := New(10)
	s.Add(-1)
	s.Add(10)
	s.Add(1000)
	if !s.Empty() {
		t.Error("out-of-range Add modified the set")
	}
	if s.Has(-1) || s.Has(10) {
		t.Error("out-of-range Has returned true")
	}
	s.Remove(-1) // must not panic
	s.Remove(99)
}

func TestFull(t *testing.T) {
	for _, universe := range []int{1, 63, 64, 65, 128, 200} {
		f := Full(universe)
		if got := f.Count(); got != universe {
			t.Errorf("Full(%d).Count() = %d", universe, got)
		}
		if f.Has(universe) {
			t.Errorf("Full(%d) contains %d", universe, universe)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice(10, []int{1, 2, 3, 4})
	b := FromSlice(10, []int{3, 4, 5, 6})

	if got := a.Union(b).Slice(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5, 6}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Slice(); !reflect.DeepEqual(got, []int{3, 4}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Difference(b).Slice(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Difference = %v", got)
	}
	if a.Equal(b) {
		t.Error("distinct sets reported Equal")
	}
	if !a.Intersects(b) {
		t.Error("overlapping sets reported disjoint")
	}
	if got := a.IntersectionCount(b); got != 2 {
		t.Errorf("IntersectionCount = %d, want 2", got)
	}
	if got := a.DifferenceCount(b); got != 2 {
		t.Errorf("DifferenceCount = %d, want 2", got)
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromSlice(10, []int{2, 5})
	b := FromSlice(10, []int{1, 2, 5, 7})
	if !a.SubsetOf(b) {
		t.Error("a ⊆ b reported false")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊆ a reported true")
	}
	if !New(10).SubsetOf(a) {
		t.Error("∅ ⊆ a reported false")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(10, []int{1, 2})
	c := a.Clone()
	c.Add(9)
	if a.Has(9) {
		t.Error("mutating clone changed the original")
	}
	a.Remove(1)
	if !c.Has(1) {
		t.Error("mutating original changed the clone")
	}
}

func TestFirstNextAfter(t *testing.T) {
	s := FromSlice(200, []int{5, 64, 130})
	if got := s.First(); got != 5 {
		t.Errorf("First = %d, want 5", got)
	}
	if got := s.NextAfter(5); got != 64 {
		t.Errorf("NextAfter(5) = %d, want 64", got)
	}
	if got := s.NextAfter(64); got != 130 {
		t.Errorf("NextAfter(64) = %d, want 130", got)
	}
	if got := s.NextAfter(130); got != -1 {
		t.Errorf("NextAfter(130) = %d, want -1", got)
	}
	if got := s.NextAfter(-5); got != 5 {
		t.Errorf("NextAfter(-5) = %d, want 5", got)
	}
	if got := New(10).First(); got != -1 {
		t.Errorf("empty First = %d, want -1", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice(100, []int{1, 2, 3, 4, 5})
	var seen []int
	s.ForEach(func(tok int) bool {
		seen = append(seen, tok)
		return len(seen) < 3
	})
	if !reflect.DeepEqual(seen, []int{1, 2, 3}) {
		t.Errorf("early stop visited %v", seen)
	}
}

func TestAddRangeClear(t *testing.T) {
	s := New(100)
	s.AddRange(10, 20)
	if got := s.Count(); got != 10 {
		t.Errorf("AddRange count = %d, want 10", got)
	}
	if s.Has(9) || s.Has(20) || !s.Has(10) || !s.Has(19) {
		t.Error("AddRange boundaries wrong")
	}
	s.Clear()
	if !s.Empty() {
		t.Error("Clear left tokens")
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int{1, 5, 9}).String(); got != "{1, 5, 9}" {
		t.Errorf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestHashDistinguishes(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3})
	b := FromSlice(100, []int{1, 2, 4})
	if a.Hash() == b.Hash() {
		t.Error("different sets hash equal (collision on trivial case)")
	}
	if a.Hash() != a.Clone().Hash() {
		t.Error("clone hashes differently")
	}
}

// randomSet builds a pseudo-random set plus its reference map model.
func randomSet(rng *rand.Rand, universe int) (Set, map[int]bool) {
	s := New(universe)
	ref := make(map[int]bool)
	for i := 0; i < universe/2; i++ {
		tok := rng.Intn(universe)
		s.Add(tok)
		ref[tok] = true
	}
	return s, ref
}

func TestQuickAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		universe := 1 + rng.Intn(300)
		s, ref := randomSet(rng, universe)
		if s.Count() != len(ref) {
			t.Fatalf("trial %d: Count %d != model %d", trial, s.Count(), len(ref))
		}
		for tok := range ref {
			if !s.Has(tok) {
				t.Fatalf("trial %d: missing %d", trial, tok)
			}
		}
		for _, tok := range s.Slice() {
			if !ref[tok] {
				t.Fatalf("trial %d: extra %d", trial, tok)
			}
		}
	}
}

func TestQuickUnionCommutes(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := New(1 << 16)
		b := New(1 << 16)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// |A ∪ B| = |A| + |B| − |A ∩ B| and A \ B = A ∩ ¬B.
	f := func(xs, ys []uint8) bool {
		a := New(256)
		b := New(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		if a.Union(b).Count() != a.Count()+b.Count()-a.IntersectionCount(b) {
			return false
		}
		notB := Full(256)
		notB.DifferenceWith(b)
		return a.Difference(b).Equal(a.Intersect(notB))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetAfterDifference(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := New(256)
		b := New(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		d := a.Difference(b)
		return d.SubsetOf(a) && !d.Intersects(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTokenSetOps(b *testing.B) {
	// Ablation: bitset vs map[int]bool for the hot difference operation.
	const universe = 512
	x := New(universe)
	y := New(universe)
	for i := 0; i < universe; i += 2 {
		x.Add(i)
	}
	for i := 0; i < universe; i += 3 {
		y.Add(i)
	}
	b.Run("bitset-difference-count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = x.DifferenceCount(y)
		}
	})
	b.Run("map-difference-count", func(b *testing.B) {
		mx := make(map[int]bool)
		my := make(map[int]bool)
		for i := 0; i < universe; i += 2 {
			mx[i] = true
		}
		for i := 0; i < universe; i += 3 {
			my[i] = true
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			for k := range mx {
				if !my[k] {
					n++
				}
			}
			_ = n
		}
	})
}
