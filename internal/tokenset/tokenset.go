// Package tokenset provides a dense bitset over token identifiers.
//
// The Overlay Content Distribution model (paper §3.1) manipulates sets of
// unit-sized tokens constantly: every vertex tracks which tokens it has and
// wants, every heuristic intersects and differences those sets each
// timestep. A packed bitset keeps those operations O(m/64) and allocation
// free on the hot path.
package tokenset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bitset over token IDs in [0, Universe). The zero value is an
// empty set with universe 0; use New to create a set with capacity.
type Set struct {
	words    []uint64
	universe int
}

// New returns an empty set able to hold tokens in [0, universe).
func New(universe int) Set {
	if universe < 0 {
		universe = 0
	}
	return Set{
		words:    make([]uint64, (universe+wordBits-1)/wordBits),
		universe: universe,
	}
}

// FromSlice returns a set over [0, universe) containing the given tokens.
func FromSlice(universe int, tokens []int) Set {
	s := New(universe)
	for _, t := range tokens {
		s.Add(t)
	}
	return s
}

// Full returns the set containing every token in [0, universe).
func Full(universe int) Set {
	s := New(universe)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// Universe reports the exclusive upper bound on token IDs.
func (s Set) Universe() int { return s.universe }

// trim clears bits beyond the universe in the last word.
func (s Set) trim() {
	if s.universe%wordBits == 0 || len(s.words) == 0 {
		return
	}
	s.words[len(s.words)-1] &= (uint64(1) << uint(s.universe%wordBits)) - 1
}

// Add inserts token t. Tokens outside [0, Universe) are ignored.
func (s Set) Add(t int) {
	if t < 0 || t >= s.universe {
		return
	}
	s.words[t/wordBits] |= uint64(1) << uint(t%wordBits)
}

// Remove deletes token t if present.
func (s Set) Remove(t int) {
	if t < 0 || t >= s.universe {
		return
	}
	s.words[t/wordBits] &^= uint64(1) << uint(t%wordBits)
}

// Has reports whether token t is in the set.
func (s Set) Has(t int) bool {
	if t < 0 || t >= s.universe {
		return false
	}
	return s.words[t/wordBits]&(uint64(1)<<uint(t%wordBits)) != 0
}

// Count returns the number of tokens in the set.
func (s Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no tokens.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{words: make([]uint64, len(s.words)), universe: s.universe}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites the receiver's contents with o's. Universes must match.
func (s Set) CopyFrom(o Set) {
	copy(s.words, o.words)
}

// UnionWith adds every token of o to s in place.
func (s Set) UnionWith(o Set) {
	for i := range o.words {
		s.words[i] |= o.words[i]
	}
}

// IntersectWith removes tokens not in o, in place.
func (s Set) IntersectWith(o Set) {
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// DifferenceWith removes every token of o from s in place.
func (s Set) DifferenceWith(o Set) {
	for i := range o.words {
		s.words[i] &^= o.words[i]
	}
}

// SetDifference overwrites the receiver with a \ b without allocating.
// All three universes must match.
func (s Set) SetDifference(a, b Set) {
	for i := range s.words {
		s.words[i] = a.words[i] &^ b.words[i]
	}
}

// SetIntersection overwrites the receiver with a ∩ b without allocating.
// All three universes must match.
func (s Set) SetIntersection(a, b Set) {
	for i := range s.words {
		s.words[i] = a.words[i] & b.words[i]
	}
}

// Fill adds every token in [0, Universe) to the set in place.
func (s Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// Union returns a new set with all tokens in s or o.
func (s Set) Union(o Set) Set {
	c := s.Clone()
	c.UnionWith(o)
	return c
}

// Intersect returns a new set with the tokens present in both s and o.
func (s Set) Intersect(o Set) Set {
	c := s.Clone()
	c.IntersectWith(o)
	return c
}

// Difference returns a new set with the tokens of s that are not in o.
func (s Set) Difference(o Set) Set {
	c := s.Clone()
	c.DifferenceWith(o)
	return c
}

// Equal reports whether s and o contain exactly the same tokens.
func (s Set) Equal(o Set) bool {
	if s.universe != o.universe {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every token of s is also in o.
func (s Set) SubsetOf(o Set) bool {
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share at least one token.
func (s Set) Intersects(o Set) bool {
	for i := range s.words {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ o| without allocating.
func (s Set) IntersectionCount(o Set) int {
	n := 0
	for i := range s.words {
		n += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return n
}

// DifferenceCount returns |s \ o| without allocating.
func (s Set) DifferenceCount(o Set) int {
	n := 0
	for i := range s.words {
		n += bits.OnesCount64(s.words[i] &^ o.words[i])
	}
	return n
}

// First returns the smallest token in the set, or -1 if empty.
func (s Set) First() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextAfter returns the smallest token strictly greater than t, or -1.
func (s Set) NextAfter(t int) int {
	if t < -1 {
		t = -1
	}
	start := t + 1
	if start >= s.universe {
		return -1
	}
	i := start / wordBits
	w := s.words[i] >> uint(start%wordBits)
	if w != 0 {
		return start + bits.TrailingZeros64(w)
	}
	for i++; i < len(s.words); i++ {
		if s.words[i] != 0 {
			return i*wordBits + bits.TrailingZeros64(s.words[i])
		}
	}
	return -1
}

// ForEach calls fn for every token in ascending order. Iteration stops early
// if fn returns false.
func (s Set) ForEach(fn func(t int) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(i*wordBits + b) {
				return
			}
			w &^= uint64(1) << uint(b)
		}
	}
}

// Slice returns the tokens in ascending order.
func (s Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(t int) bool {
		out = append(out, t)
		return true
	})
	return out
}

// AppendTo appends the tokens in ascending order to buf and returns the
// extended slice. Reusing buf[:0] across calls keeps the hot path
// allocation free once the buffer has grown to its steady-state size.
func (s Set) AppendTo(buf []int) []int {
	s.ForEach(func(t int) bool {
		buf = append(buf, t)
		return true
	})
	return buf
}

// Clear removes every token from the set.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// AddRange inserts every token in [lo, hi).
func (s Set) AddRange(lo, hi int) {
	for t := lo; t < hi; t++ {
		s.Add(t)
	}
}

// Hash returns a 64-bit FNV-style hash of the set contents, suitable for
// memoization keys in the exact solvers.
func (s Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s.words {
		h ^= w
		h *= prime
	}
	return h
}

// String renders the set as "{1, 5, 9}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(t int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", t)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
