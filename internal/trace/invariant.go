package trace

// Runtime invariant monitor: a sanitizer for engine refactors. Attached as
// the kernel's Observer, it independently re-checks the model invariants
// the kernel is supposed to enforce — sender possession, per-arc capacity,
// down-vertex silence, token conservation — every step, and reports
// breaches as structured InvariantViolation records. A nil Observer costs
// the kernel nothing, so the monitor is strictly opt-in; with it attached,
// a zero-violation run is machine-checkable evidence that an engine change
// preserved the §3.1 semantics.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
)

// Violation kinds reported by the InvariantMonitor.
const (
	// ViolationPossession: a move was admitted whose sender did not possess
	// the token at admission time.
	ViolationPossession = "possession"
	// ViolationCapacity: an arc carried more accepted moves in one step
	// than its effective capacity.
	ViolationCapacity = "capacity"
	// ViolationDownSilence: a move was admitted with a down (crashed or
	// churned-away) endpoint.
	ViolationDownSilence = "down-silence"
	// ViolationConservation: a vertex possesses a token it neither started
	// with nor ever took delivery of — tokens appeared out of nothing.
	ViolationConservation = "conservation"
)

// InvariantViolation is one structured breach record, JSONL-serializable
// alongside the step traces.
type InvariantViolation struct {
	Step int    `json:"step"`
	Kind string `json:"kind"`
	// From/To/Token identify the offending move for the per-move kinds;
	// conservation breaches set To to the hoarding vertex and Token to one
	// offending token, with From = -1.
	From   int    `json:"from"`
	To     int    `json:"to"`
	Token  int    `json:"token"`
	Detail string `json:"detail,omitempty"`
}

func (v InvariantViolation) String() string {
	return fmt.Sprintf("step %d %s (%d→%d tok %d): %s", v.Step, v.Kind, v.From, v.To, v.Token, v.Detail)
}

// InvariantConfig adapts the monitor to an engine's fault semantics. The
// zero value checks against the static model: base-graph capacities,
// nothing down.
type InvariantConfig struct {
	// Down, when non-nil, reports whether vertex v is out of service at
	// step; any admitted move touching a down endpoint is a violation.
	// Fault-engine runs pass fault.Plan.DownAt.
	Down func(step, v int) bool
	// Capacity, when non-nil, returns the effective capacity of base arc a
	// at step (fault-engine runs pass fault.Plan.EffectiveCapacity);
	// nil means the arc's static capacity.
	Capacity func(step int, a graph.Arc) int
}

// maxViolations caps the retained records so a badly broken engine cannot
// balloon memory; further breaches only bump Dropped.
const maxViolations = 100

// InvariantMonitor implements sim.Observer. One monitor serves one run.
// Construct with NewInvariantMonitor.
type InvariantMonitor struct {
	inst *core.Instance
	cfg  InvariantConfig

	arcsByID []graph.Arc // dense arc ID → base arc
	//ocd:scratch accepted moves per arc ID, this step
	used []int
	//ocd:scratch arc IDs with non-zero usage, for O(touched) reset
	touched  []int
	lastStep int

	// everDelivered[v] accumulates every token v took delivery of; the
	// conservation invariant is possess[v] ⊆ have[v] ∪ everDelivered[v],
	// which state-loss wipes (they only remove tokens) cannot break.
	everDelivered []tokenset.Set
	scratch       tokenset.Set

	// Violations holds the first maxViolations breaches in detection
	// order; Dropped counts the rest.
	Violations []InvariantViolation
	Dropped    int
}

var _ sim.Observer = (*InvariantMonitor)(nil)

// NewInvariantMonitor builds a monitor for runs of inst (the base instance
// the engine was invoked with).
func NewInvariantMonitor(inst *core.Instance, cfg InvariantConfig) *InvariantMonitor {
	arcs := inst.G.Arcs()
	byID := make([]graph.Arc, inst.G.NumArcs())
	for _, a := range arcs {
		byID[inst.G.ArcID(a.From, a.To)] = a
	}
	n := inst.N()
	m := &InvariantMonitor{
		inst:          inst,
		cfg:           cfg,
		arcsByID:      byID,
		used:          make([]int, inst.G.NumArcs()),
		lastStep:      -1,
		everDelivered: make([]tokenset.Set, n),
		scratch:       tokenset.New(inst.NumTokens),
	}
	for v := 0; v < n; v++ {
		m.everDelivered[v] = tokenset.New(inst.NumTokens)
	}
	return m
}

func (m *InvariantMonitor) report(v InvariantViolation) {
	if len(m.Violations) >= maxViolations {
		m.Dropped++
		return
	}
	m.Violations = append(m.Violations, v)
}

// OnMove implements sim.Observer: possession, capacity, and down-silence
// checks at admission time. Lost moves consumed capacity, so they count
// toward the per-arc usage exactly as delivered ones do.
func (m *InvariantMonitor) OnMove(step int, mv core.Move, arcID int, _ bool, st *sim.State) {
	if step != m.lastStep {
		for _, id := range m.touched {
			m.used[id] = 0
		}
		m.touched = m.touched[:0]
		m.lastStep = step
	}
	if !st.Possess[mv.From].Has(mv.Token) {
		m.report(InvariantViolation{
			Step: step, Kind: ViolationPossession, From: mv.From, To: mv.To, Token: mv.Token,
			Detail: "sender did not possess the token at admission",
		})
	}
	if m.used[arcID] == 0 {
		m.touched = append(m.touched, arcID)
	}
	m.used[arcID]++
	arc := m.arcsByID[arcID]
	capacity := arc.Cap
	if m.cfg.Capacity != nil {
		capacity = m.cfg.Capacity(step, arc)
	}
	if m.used[arcID] > capacity {
		m.report(InvariantViolation{
			Step: step, Kind: ViolationCapacity, From: mv.From, To: mv.To, Token: mv.Token,
			Detail: fmt.Sprintf("arc carried %d accepted moves, capacity %d", m.used[arcID], capacity),
		})
	}
	if m.cfg.Down != nil && (m.cfg.Down(step, mv.From) || m.cfg.Down(step, mv.To)) {
		m.report(InvariantViolation{
			Step: step, Kind: ViolationDownSilence, From: mv.From, To: mv.To, Token: mv.Token,
			Detail: "move admitted with a down endpoint",
		})
	}
}

// OnReject implements sim.Observer: rejected moves break no invariant.
func (m *InvariantMonitor) OnReject(int, core.Move, *sim.State) {}

// OnStep implements sim.Observer: the token-conservation sweep after the
// step's deliveries have applied.
func (m *InvariantMonitor) OnStep(step int, delivered core.Step, st *sim.State) {
	for _, mv := range delivered {
		m.everDelivered[mv.To].Add(mv.Token)
	}
	for v, p := range st.Possess {
		m.scratch.SetDifference(p, m.inst.Have[v])
		m.scratch.DifferenceWith(m.everDelivered[v])
		if m.scratch.Empty() {
			continue
		}
		tok := -1
		m.scratch.ForEach(func(t int) bool { tok = t; return false })
		m.report(InvariantViolation{
			Step: step, Kind: ViolationConservation, From: -1, To: v, Token: tok,
			Detail: fmt.Sprintf("%d token(s) possessed but never held initially nor delivered", m.scratch.Count()),
		})
	}
}

// Err returns nil when the run broke no invariant, and otherwise an error
// summarizing the breach count and quoting the first violation.
func (m *InvariantMonitor) Err() error {
	total := len(m.Violations) + m.Dropped
	if total == 0 {
		return nil
	}
	return fmt.Errorf("trace: %d invariant violation(s), first: %s", total, m.Violations[0])
}

// EncodeViolationsJSONL writes one violation per line.
func EncodeViolationsJSONL(w io.Writer, recs []InvariantViolation) error {
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("trace: encode violations: %w", err)
		}
	}
	return nil
}

// DecodeViolationsJSONL reads a violation log back, rejecting records with
// an unknown kind or negative step.
func DecodeViolationsJSONL(r io.Reader) ([]InvariantViolation, error) {
	dec := json.NewDecoder(r)
	var out []InvariantViolation
	for {
		var rec InvariantViolation
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("trace: decode violations: %w", err)
		}
		switch rec.Kind {
		case ViolationPossession, ViolationCapacity, ViolationDownSilence, ViolationConservation:
		default:
			return nil, fmt.Errorf("trace: violation line %d has unknown kind %q", len(out), rec.Kind)
		}
		if rec.Step < 0 {
			return nil, fmt.Errorf("trace: violation line %d has negative step", len(out))
		}
		out = append(out, rec)
	}
}
