package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/telemetry"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

// collectRun executes a lossy reference run with a StepCollector attached
// and returns both, so tests can cross-check the trace against the result.
func collectRun(t *testing.T) (*StepCollector, *sim.Result) {
	t.Helper()
	g, err := topology.Random(40, topology.DefaultCaps, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 30)
	col := NewStepCollector(inst)
	res, err := sim.Run(inst, heuristics.Local, sim.Options{
		Seed: 5, LossRate: 0.2, IdlePatience: 20, Observer: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col, res
}

// TestObserverDoesNotPerturbRun is the runtime half of the obspure
// contract: attaching a collector must leave the schedule byte-identical
// to an unobserved run of the same (instance, strategy, seed).
func TestObserverDoesNotPerturbRun(t *testing.T) {
	g, err := topology.Random(40, topology.DefaultCaps, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 30)
	opts := sim.Options{Seed: 5, LossRate: 0.2, IdlePatience: 20}
	bare, err := sim.Run(inst, heuristics.Local, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Observer = NewStepCollector(inst)
	observed, err := sim.Run(inst, heuristics.Local, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare.Schedule.Steps, observed.Schedule.Steps) {
		t.Error("attaching a StepCollector changed the schedule")
	}
	if bare.Lost != observed.Lost || bare.Steps != observed.Steps {
		t.Errorf("observer changed run stats: bare %d lost/%d steps, observed %d lost/%d steps",
			bare.Lost, bare.Steps, observed.Lost, observed.Steps)
	}

	// Same contract for the telemetry observer in the other seat: counting
	// step-phase work must not perturb the run, and the counters must agree
	// with the result they counted.
	reg := telemetry.New()
	opts.Observer = telemetry.NewKernelObserver(reg, "sim").Observer()
	counted, err := sim.Run(inst, heuristics.Local, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare.Schedule.Steps, counted.Schedule.Steps) {
		t.Error("attaching a telemetry KernelObserver changed the schedule")
	}
	if got := reg.Counter("kernel.sim.delivered").Value(); got != int64(counted.Schedule.Moves()) {
		t.Errorf("kernel.sim.delivered = %d, schedule has %d moves", got, counted.Schedule.Moves())
	}
	if got := reg.Counter("kernel.sim.lost").Value(); got != int64(counted.Lost) {
		t.Errorf("kernel.sim.lost = %d, result lost %d", got, counted.Lost)
	}
	if got := reg.Counter("kernel.sim.steps").Value(); got != int64(counted.Steps) {
		t.Errorf("kernel.sim.steps = %d, result ran %d steps", got, counted.Steps)
	}
}

func TestStepCollectorMatchesResult(t *testing.T) {
	col, res := collectRun(t)
	if len(col.Records) != res.Schedule.Makespan() {
		t.Fatalf("collected %d records for makespan %d", len(col.Records), res.Schedule.Makespan())
	}
	moves, losses := 0, 0
	for i, rec := range col.Records {
		if rec.Step != i {
			t.Fatalf("record %d has step %d", i, rec.Step)
		}
		if got := len(res.Schedule.Steps[i]); rec.Moves != got {
			t.Errorf("step %d: record says %d moves, schedule has %d", i, rec.Moves, got)
		}
		if rec.MaxArcLoad > 0 && rec.ArcsUsed == 0 {
			t.Errorf("step %d: max arc load %d with no arcs used", i, rec.MaxArcLoad)
		}
		if rec.MinHolders > rec.MaxHolders || rec.MeanHolders < float64(rec.MinHolders) ||
			rec.MeanHolders > float64(rec.MaxHolders) {
			t.Errorf("step %d: holder spread inconsistent: %+v", i, rec)
		}
		moves += rec.Moves
		losses += rec.Losses
	}
	if moves != res.Schedule.Moves() {
		t.Errorf("trace delivered %d moves, schedule has %d", moves, res.Schedule.Moves())
	}
	if losses != res.Lost {
		t.Errorf("trace recorded %d losses, result has %d", losses, res.Lost)
	}
	if losses == 0 {
		t.Error("reference run lost no moves; the lossy path went unexercised")
	}
}

func TestStepTraceJSONLRoundTrip(t *testing.T) {
	col, _ := collectRun(t)
	var buf bytes.Buffer
	if err := EncodeStepTraceJSONL(&buf, col.Records); err != nil {
		t.Fatal(err)
	}
	// JSONL: exactly one JSON object per non-empty line.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(col.Records) {
		t.Fatalf("encoded %d lines for %d records", len(lines), len(col.Records))
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("line %d is not a single JSON object: %q", i, line)
		}
	}
	got, err := DecodeStepTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, col.Records) {
		t.Error("decoded step trace differs from the encoded records")
	}
}

func TestDecodeStepTraceJSONLRejectsBrokenInput(t *testing.T) {
	cases := map[string]string{
		"not json":            "garbage\n",
		"non-contiguous step": `{"step":1,"moves":0}` + "\n",
		"negative counter":    `{"step":0,"moves":-3}` + "\n",
	}
	for name, input := range cases {
		if _, err := DecodeStepTraceJSONL(strings.NewReader(input)); err == nil {
			t.Errorf("%s: decode accepted %q", name, input)
		}
	}
	// Empty input is a valid, empty trace.
	if recs, err := DecodeStepTraceJSONL(strings.NewReader("")); err != nil || len(recs) != 0 {
		t.Errorf("empty input: got %v, %v; want empty trace", recs, err)
	}
}
