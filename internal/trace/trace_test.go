package trace

import (
	"bytes"
	"strings"
	"testing"

	"ocd/internal/core"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func TestInstanceRoundTrip(t *testing.T) {
	g, err := topology.Random(15, topology.DefaultCaps, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.ReceiverDensity(g, 9, 0.5, 4)

	var buf bytes.Buffer
	if err := EncodeInstance(&buf, inst); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != inst.N() || got.NumTokens != inst.NumTokens {
		t.Fatalf("dimensions changed: %d/%d vs %d/%d",
			got.N(), got.NumTokens, inst.N(), inst.NumTokens)
	}
	if got.G.NumArcs() != inst.G.NumArcs() {
		t.Error("arc count changed")
	}
	for _, a := range inst.G.Arcs() {
		if got.G.Cap(a.From, a.To) != a.Cap {
			t.Errorf("cap(%d,%d) changed", a.From, a.To)
		}
	}
	for v := 0; v < inst.N(); v++ {
		if !got.Have[v].Equal(inst.Have[v]) || !got.Want[v].Equal(inst.Want[v]) {
			t.Errorf("vertex %d sets changed", v)
		}
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	g, err := topology.Random(12, topology.DefaultCaps, 5)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 6)
	res, err := sim.Run(inst, heuristics.Local, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := EncodeSchedule(&buf, res.Schedule); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan() != res.Schedule.Makespan() || got.Moves() != res.Schedule.Moves() {
		t.Fatal("schedule metrics changed in round trip")
	}
	// The decoded schedule must still validate against the instance.
	if err := core.Validate(inst, got); err != nil {
		t.Fatalf("round-tripped schedule invalid: %v", err)
	}
}

func TestDecodeInstanceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"negative dims":   `{"vertices":-1,"numTokens":2,"arcs":[],"have":[],"want":[]}`,
		"mismatched have": `{"vertices":2,"numTokens":1,"arcs":[],"have":[[0]],"want":[[],[]]}`,
		"bad arc":         `{"vertices":2,"numTokens":1,"arcs":[{"from":0,"to":5,"cap":1}],"have":[[0],[]],"want":[[],[]]}`,
		"bad token":       `{"vertices":2,"numTokens":1,"arcs":[{"from":0,"to":1,"cap":1}],"have":[[7],[]],"want":[[],[]]}`,
		"orphan want":     `{"vertices":2,"numTokens":1,"arcs":[{"from":0,"to":1,"cap":1}],"have":[[],[]],"want":[[],[0]]}`,
	}
	for name, body := range cases {
		if _, err := DecodeInstance(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDecodeScheduleRejectsGarbage(t *testing.T) {
	if _, err := DecodeSchedule(strings.NewReader("[")); err == nil {
		t.Error("malformed schedule accepted")
	}
}

func TestEncodeInstanceRejectsBroken(t *testing.T) {
	g, err := topology.Line(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst := core.NewInstance(g, 1)
	inst.Want[1].Add(0) // wanted but held by nobody
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, inst); err == nil {
		t.Error("inconsistent instance encoded")
	}
}
