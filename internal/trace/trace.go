// Package trace serializes OCD instances and schedules to a stable JSON
// format, so generated workloads can be archived, diffed, and replayed
// across runs and tools (ocdgen → ocdsim → analysis).
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"ocd/internal/core"
	"ocd/internal/graph"
)

// instanceJSON is the on-disk representation of an instance.
type instanceJSON struct {
	Vertices  int       `json:"vertices"`
	NumTokens int       `json:"numTokens"`
	Arcs      []arcJSON `json:"arcs"`
	Have      [][]int   `json:"have"`
	Want      [][]int   `json:"want"`
}

type arcJSON struct {
	From int `json:"from"`
	To   int `json:"to"`
	Cap  int `json:"cap"`
}

type moveJSON struct {
	From  int `json:"from"`
	To    int `json:"to"`
	Token int `json:"token"`
}

type scheduleJSON struct {
	Steps [][]moveJSON `json:"steps"`
}

// EncodeInstance writes the instance as JSON.
func EncodeInstance(w io.Writer, inst *core.Instance) error {
	if err := inst.Check(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	out := instanceJSON{
		Vertices:  inst.N(),
		NumTokens: inst.NumTokens,
		Have:      make([][]int, inst.N()),
		Want:      make([][]int, inst.N()),
	}
	for _, a := range inst.G.Arcs() {
		out.Arcs = append(out.Arcs, arcJSON{From: a.From, To: a.To, Cap: a.Cap})
	}
	for v := 0; v < inst.N(); v++ {
		out.Have[v] = inst.Have[v].Slice()
		out.Want[v] = inst.Want[v].Slice()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeInstance reads an instance from JSON and validates it.
func DecodeInstance(r io.Reader) (*core.Instance, error) {
	var in instanceJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decode instance: %w", err)
	}
	if in.Vertices < 0 || in.NumTokens < 0 {
		return nil, fmt.Errorf("trace: negative dimensions (%d vertices, %d tokens)",
			in.Vertices, in.NumTokens)
	}
	if len(in.Have) != in.Vertices || len(in.Want) != in.Vertices {
		return nil, fmt.Errorf("trace: have/want arrays sized %d/%d for %d vertices",
			len(in.Have), len(in.Want), in.Vertices)
	}
	g := graph.New(in.Vertices)
	for _, a := range in.Arcs {
		if err := g.AddArc(a.From, a.To, a.Cap); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	inst := core.NewInstance(g, in.NumTokens)
	for v := 0; v < in.Vertices; v++ {
		for _, t := range in.Have[v] {
			if t < 0 || t >= in.NumTokens {
				return nil, fmt.Errorf("trace: have token %d out of range at vertex %d", t, v)
			}
			inst.Have[v].Add(t)
		}
		for _, t := range in.Want[v] {
			if t < 0 || t >= in.NumTokens {
				return nil, fmt.Errorf("trace: want token %d out of range at vertex %d", t, v)
			}
			inst.Want[v].Add(t)
		}
	}
	if err := inst.Check(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return inst, nil
}

// EncodeSchedule writes the schedule as JSON.
func EncodeSchedule(w io.Writer, sched *core.Schedule) error {
	out := scheduleJSON{Steps: make([][]moveJSON, len(sched.Steps))}
	for i, st := range sched.Steps {
		out.Steps[i] = make([]moveJSON, len(st))
		for j, mv := range st {
			out.Steps[i][j] = moveJSON{From: mv.From, To: mv.To, Token: mv.Token}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeSchedule reads a schedule from JSON. Pair with core.Validate to
// check it against an instance.
func DecodeSchedule(r io.Reader) (*core.Schedule, error) {
	var in scheduleJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decode schedule: %w", err)
	}
	sched := &core.Schedule{Steps: make([]core.Step, len(in.Steps))}
	for i, st := range in.Steps {
		sched.Steps[i] = make(core.Step, len(st))
		for j, mv := range st {
			sched.Steps[i][j] = core.Move{From: mv.From, To: mv.To, Token: mv.Token}
		}
	}
	return sched, nil
}
