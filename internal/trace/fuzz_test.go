package trace

import (
	"bytes"
	"strings"
	"testing"

	"ocd/internal/topology"
	"ocd/internal/workload"
)

// FuzzDecodeInstance hardens the decoder against hostile input: it must
// never panic, and whenever it succeeds the result must satisfy the
// instance invariants (Check).
func FuzzDecodeInstance(f *testing.F) {
	f.Add(`{"vertices":2,"numTokens":1,"arcs":[{"from":0,"to":1,"cap":1}],"have":[[0],[]],"want":[[],[0]]}`)
	f.Add(`{"vertices":0,"numTokens":0,"arcs":[],"have":[],"want":[]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"vertices":-5}`)
	f.Add(`{"vertices":3,"numTokens":2,"arcs":[{"from":9,"to":1,"cap":1}],"have":[[],[],[]],"want":[[],[],[]]}`)
	// A real serialized instance as a corpus seed.
	g, err := topology.Random(6, topology.DefaultCaps, 1)
	if err == nil {
		var buf bytes.Buffer
		if EncodeInstance(&buf, workload.SingleFile(g, 3)) == nil {
			f.Add(buf.String())
		}
	}
	f.Fuzz(func(t *testing.T, body string) {
		inst, err := DecodeInstance(strings.NewReader(body))
		if err != nil {
			return
		}
		if cerr := inst.Check(); cerr != nil {
			t.Errorf("decoder accepted an inconsistent instance: %v", cerr)
		}
	})
}

// FuzzDecodeSchedule hardens the schedule decoder the same way.
func FuzzDecodeSchedule(f *testing.F) {
	f.Add(`{"steps":[[{"from":0,"to":1,"token":0}]]}`)
	f.Add(`{"steps":[]}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, body string) {
		sched, err := DecodeSchedule(strings.NewReader(body))
		if err != nil {
			return
		}
		// Metrics must be callable on anything the decoder accepts.
		_ = sched.Makespan()
		_ = sched.Moves()
	})
}
