package trace_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"ocd/internal/core"
	"ocd/internal/dynamic"
	"ocd/internal/fault"
	"ocd/internal/graph"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
	"ocd/internal/topology"
	"ocd/internal/trace"
	"ocd/internal/underlay"
	"ocd/internal/workload"
)

// TestInvariantMonitorZeroViolationsAcrossEngines is the acceptance check:
// the monitor, re-deriving every invariant independently, must find nothing
// on the golden-configuration runs of all four engines — including runs
// under partitions and churn.
func TestInvariantMonitorZeroViolationsAcrossEngines(t *testing.T) {
	size, tokens := 36, 24
	if testing.Short() {
		size, tokens = 20, 12
	}
	g, err := topology.TransitStubN(size, topology.DefaultCaps, 7)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, tokens)

	net, err := underlay.RandomNetwork(60, 14, 2, topology.DefaultCaps, 9)
	if err != nil {
		t.Fatal(err)
	}
	instU := workload.SingleFile(net.Overlay, 16)

	check := func(t *testing.T, name string, m *trace.InvariantMonitor) {
		t.Helper()
		if err := m.Err(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}

	for i, factory := range heuristics.All() {
		name := heuristics.Names()[i]

		m := trace.NewInvariantMonitor(inst, trace.InvariantConfig{})
		if _, err := sim.Run(inst, factory, sim.Options{Seed: 11, IdlePatience: 20, Observer: m}); err != nil {
			t.Fatalf("base/%s: %v", name, err)
		}
		check(t, "base/"+name, m)

		m = trace.NewInvariantMonitor(inst, trace.InvariantConfig{})
		if _, err := sim.Run(inst, factory, sim.Options{Seed: 11, LossRate: 0.15, IdlePatience: 30, Observer: m}); err != nil {
			t.Fatalf("base-lossy/%s: %v", name, err)
		}
		check(t, "base-lossy/"+name, m)

		model := dynamic.CrossTraffic{MaxShare: 0.6, Seed: 3}
		m = trace.NewInvariantMonitor(inst, trace.InvariantConfig{
			Capacity: func(step int, a graph.Arc) int {
				c := model.Cap(step, a)
				if c < 0 {
					c = 0
				}
				return c
			},
		})
		if _, err := dynamic.Run(inst, factory, model, sim.Options{Seed: 11, IdlePatience: 30, Observer: m}); err != nil {
			t.Fatalf("dynamic-cross/%s: %v", name, err)
		}
		check(t, "dynamic-cross/"+name, m)

		plan := fault.AtIntensity(0.35, 13, 0)
		m = trace.NewInvariantMonitor(inst, trace.InvariantConfig{
			Down: plan.DownAt, Capacity: plan.EffectiveCapacity,
		})
		if _, err := fault.Run(inst, factory, plan, sim.Options{Seed: 11, IdlePatience: 40, Observer: m}); err != nil {
			t.Fatalf("fault-chaos/%s: %v", name, err)
		}
		check(t, "fault-chaos/"+name, m)

		plan = fault.Plan{
			Partitions: fault.NewRandomPartitions(2, 0.1, 4, 21),
			Churn:      fault.NewRandomChurn(0.05, 0.5, 21, 0),
			Loss:       fault.Bernoulli{P: 0.05, Seed: 21},
		}
		m = trace.NewInvariantMonitor(inst, trace.InvariantConfig{
			Down: plan.DownAt, Capacity: plan.EffectiveCapacity,
		})
		if _, err := fault.Run(inst, factory, plan, sim.Options{Seed: 11, IdlePatience: 40, Observer: m}); err != nil {
			t.Fatalf("fault-partition-churn/%s: %v", name, err)
		}
		check(t, "fault-partition-churn/"+name, m)

		m = trace.NewInvariantMonitor(instU, trace.InvariantConfig{})
		if _, err := net.Run(instU, factory, sim.Options{Seed: 11, IdlePatience: 30, Observer: m}); err != nil {
			t.Fatalf("underlay/%s: %v", name, err)
		}
		check(t, "underlay/"+name, m)
	}
}

// violatingStrategy proposes a move the engine admits legitimately; the
// violation tests below drive the monitor's hooks directly instead, with
// states a correct kernel would never produce.
func monitorFixture(t *testing.T) (*core.Instance, *sim.State) {
	t.Helper()
	g := graph.New(2)
	if err := g.AddArc(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	inst := core.NewInstance(g, 2)
	inst.Have[0].AddRange(0, 2)
	inst.Want[1].AddRange(0, 2)
	st := &sim.State{Inst: inst, Possess: inst.InitialPossession(), Rand: rand.New(rand.NewSource(1))}
	return inst, st
}

func kinds(m *trace.InvariantMonitor) []string {
	var out []string
	for _, v := range m.Violations {
		out = append(out, v.Kind)
	}
	return out
}

func TestInvariantMonitorCatchesPossessionBreach(t *testing.T) {
	inst, st := monitorFixture(t)
	m := trace.NewInvariantMonitor(inst, trace.InvariantConfig{})
	// Vertex 1 never possessed token 0 — a kernel admitting 1→? would be
	// broken. Arc ID 0 is the only arc.
	m.OnMove(0, core.Move{From: 1, To: 0, Token: 0}, 0, false, st)
	if got := kinds(m); len(got) != 1 || got[0] != trace.ViolationPossession {
		t.Fatalf("violations = %v, want exactly one %s", got, trace.ViolationPossession)
	}
	if m.Err() == nil {
		t.Fatal("Err() returned nil despite a violation")
	}
}

func TestInvariantMonitorCatchesCapacityBreach(t *testing.T) {
	inst, st := monitorFixture(t)
	m := trace.NewInvariantMonitor(inst, trace.InvariantConfig{})
	mv := core.Move{From: 0, To: 1, Token: 0}
	m.OnMove(3, mv, 0, false, st)
	m.OnMove(3, core.Move{From: 0, To: 1, Token: 1}, 0, true, st) // lost moves consume capacity too
	if got := kinds(m); len(got) != 1 || got[0] != trace.ViolationCapacity {
		t.Fatalf("violations = %v, want exactly one %s", got, trace.ViolationCapacity)
	}
	// A new step resets the usage: no further violation.
	m.OnMove(4, mv, 0, false, st)
	if len(m.Violations) != 1 {
		t.Fatalf("per-step usage did not reset: %v", kinds(m))
	}
}

func TestInvariantMonitorCatchesDownSilenceBreach(t *testing.T) {
	inst, st := monitorFixture(t)
	m := trace.NewInvariantMonitor(inst, trace.InvariantConfig{
		Down: func(_, v int) bool { return v == 1 },
	})
	m.OnMove(0, core.Move{From: 0, To: 1, Token: 0}, 0, false, st)
	if got := kinds(m); len(got) != 1 || got[0] != trace.ViolationDownSilence {
		t.Fatalf("violations = %v, want exactly one %s", got, trace.ViolationDownSilence)
	}
}

func TestInvariantMonitorCatchesConservationBreach(t *testing.T) {
	inst, st := monitorFixture(t)
	m := trace.NewInvariantMonitor(inst, trace.InvariantConfig{})
	// Token 1 appears at vertex 1 with no delivery ever observed.
	st.Possess[1].Add(1)
	m.OnStep(0, nil, st)
	if got := kinds(m); len(got) != 1 || got[0] != trace.ViolationConservation {
		t.Fatalf("violations = %v, want exactly one %s", got, trace.ViolationConservation)
	}
	// After an observed delivery the same possession is legitimate.
	m2 := trace.NewInvariantMonitor(inst, trace.InvariantConfig{})
	m2.OnStep(0, core.Step{{From: 0, To: 1, Token: 1}}, st)
	if len(m2.Violations) != 0 {
		t.Fatalf("delivered token flagged as conservation breach: %v", kinds(m2))
	}
	// State wipes only remove tokens: still clean.
	st.Possess[1] = tokenset.New(inst.NumTokens)
	m2.OnStep(1, nil, st)
	if len(m2.Violations) != 0 {
		t.Fatalf("state wipe flagged as conservation breach: %v", kinds(m2))
	}
}

func TestViolationsJSONLRoundTrip(t *testing.T) {
	recs := []trace.InvariantViolation{
		{Step: 0, Kind: trace.ViolationPossession, From: 1, To: 0, Token: 3, Detail: "x"},
		{Step: 7, Kind: trace.ViolationConservation, From: -1, To: 4, Token: 0},
	}
	var buf bytes.Buffer
	if err := trace.EncodeViolationsJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := trace.DecodeViolationsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := trace.DecodeViolationsJSONL(strings.NewReader(`{"step":0,"kind":"nonsense"}`)); err == nil {
		t.Fatal("decoder accepted an unknown violation kind")
	}
}
