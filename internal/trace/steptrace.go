package trace

// Step traces: the first consumer of the simulation kernel's Observer
// hooks. A StepCollector rides along a run and condenses each timestep into
// one StepRecord — traffic counters, arc-utilization summary, and the
// per-token holder spread — which serializes as JSONL (one JSON object per
// line), the append-friendly format downstream analysis tooling streams.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"ocd/internal/core"
	"ocd/internal/sim"
)

// StepRecord is one JSONL line of a step trace: the condensed view of a
// single executed timestep. Idle timesteps are recorded too (all-zero
// traffic, possibly non-zero rejects).
type StepRecord struct {
	// Step is the 0-based timestep index; records are contiguous from 0.
	Step int `json:"step"`
	// Moves counts delivered moves; Losses the accepted moves dropped in
	// transit; Rejects the proposed moves the engine discarded.
	Moves   int `json:"moves"`
	Losses  int `json:"losses"`
	Rejects int `json:"rejects"`
	// ArcsUsed is the number of distinct arcs that carried accepted
	// traffic; MaxArcLoad the heaviest single arc's accepted moves.
	ArcsUsed   int `json:"arcs_used"`
	MaxArcLoad int `json:"max_arc_load"`
	// Utilization is accepted traffic (delivered + lost, both consume
	// capacity) over the base graph's total capacity. Under a dynamic
	// capacity model the denominator stays the base capacity, so dips in
	// effective capacity read as dips in utilization.
	Utilization float64 `json:"utilization"`
	// MinHolders/MeanHolders/MaxHolders summarize the per-token holder
	// spread |{v : t ∈ p(v)}| at the end of the step — the rarity signal
	// the rarest-first heuristics steer by.
	MinHolders  int     `json:"min_holders"`
	MeanHolders float64 `json:"mean_holders"`
	MaxHolders  int     `json:"max_holders"`
}

// StepCollector implements sim.Observer, accumulating one StepRecord per
// executed timestep into Records. One collector serves one run.
type StepCollector struct {
	totalCap int
	//ocd:scratch accepted moves per base arc ID, this step
	arcLoad []int
	//ocd:scratch arc IDs with non-zero load, for O(touched) reset
	touched []int
	moves   int
	losses  int
	rejects int
	// Records holds the finished per-step records in step order.
	Records []StepRecord
}

var _ sim.Observer = (*StepCollector)(nil)

// NewStepCollector builds a collector for runs over inst (the base
// instance the engine was invoked with).
func NewStepCollector(inst *core.Instance) *StepCollector {
	total := 0
	for _, c := range inst.G.CapsByID() {
		total += c
	}
	return &StepCollector{
		totalCap: total,
		arcLoad:  make([]int, inst.G.NumArcs()),
	}
}

// OnMove implements sim.Observer.
func (c *StepCollector) OnMove(_ int, _ core.Move, arcID int, lost bool, _ *sim.State) {
	if c.arcLoad[arcID] == 0 {
		c.touched = append(c.touched, arcID)
	}
	c.arcLoad[arcID]++
	if lost {
		c.losses++
	} else {
		c.moves++
	}
}

// OnReject implements sim.Observer.
func (c *StepCollector) OnReject(int, core.Move, *sim.State) { c.rejects++ }

// OnStep implements sim.Observer: it closes out the step's record.
func (c *StepCollector) OnStep(step int, _ core.Step, st *sim.State) {
	rec := StepRecord{
		Step:     step,
		Moves:    c.moves,
		Losses:   c.losses,
		Rejects:  c.rejects,
		ArcsUsed: len(c.touched),
	}
	for _, id := range c.touched {
		if c.arcLoad[id] > rec.MaxArcLoad {
			rec.MaxArcLoad = c.arcLoad[id]
		}
		c.arcLoad[id] = 0
	}
	if c.totalCap > 0 {
		rec.Utilization = float64(c.moves+c.losses) / float64(c.totalCap)
	}
	if counts := st.HaveCounts(); len(counts) > 0 {
		rec.MinHolders = counts[0]
		sum := 0
		for _, n := range counts {
			if n < rec.MinHolders {
				rec.MinHolders = n
			}
			if n > rec.MaxHolders {
				rec.MaxHolders = n
			}
			sum += n
		}
		rec.MeanHolders = float64(sum) / float64(len(counts))
	}
	c.Records = append(c.Records, rec)
	c.touched = c.touched[:0]
	c.moves, c.losses, c.rejects = 0, 0, 0
}

// EncodeStepTraceJSONL writes one JSON object per line — the JSONL format
// streaming consumers expect.
func EncodeStepTraceJSONL(w io.Writer, recs []StepRecord) error {
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("trace: encode step trace: %w", err)
		}
	}
	return nil
}

// DecodeStepTraceJSONL reads a step trace back, rejecting structurally
// broken input: records must be contiguous from step 0 with non-negative
// counters.
func DecodeStepTraceJSONL(r io.Reader) ([]StepRecord, error) {
	dec := json.NewDecoder(r)
	var out []StepRecord
	for {
		var rec StepRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("trace: decode step trace: %w", err)
		}
		if rec.Step != len(out) {
			return nil, fmt.Errorf("trace: step trace line %d has step %d, want contiguous steps from 0",
				len(out), rec.Step)
		}
		if rec.Moves < 0 || rec.Losses < 0 || rec.Rejects < 0 || rec.ArcsUsed < 0 || rec.MaxArcLoad < 0 {
			return nil, fmt.Errorf("trace: step trace line %d has negative counters: %+v", len(out), rec)
		}
		out = append(out, rec)
	}
}
