// Package baselines implements the overlay architectures the paper's
// survey (§2) positions OCD against, as strategies over the same formal
// model:
//
//   - Tree: a single bandwidth-optimized distribution tree rooted at the
//     source (the Overcast architecture): every parent streams tokens to
//     its children, so each token crosses exactly n−1 arcs — bandwidth
//     optimal for all-want workloads — but the deepest path and the
//     narrowest uplink bound the makespan.
//   - Forest: k striped trees (the SplitStream/CoopNet architecture): the
//     token space is split into k stripes, each pushed down its own tree;
//     trees are built with different random tie-breaking so interior load
//     spreads (true interior-node-disjointness, like the real systems,
//     is approximated, not guaranteed).
//
// Comparing these against the paper's mesh heuristics reproduces the §2
// narrative: trees conserve bandwidth, meshes finish faster.
package baselines

import (
	"errors"
	"fmt"
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/sim"
)

// ErrNoSource indicates the workload has no vertex holding tokens.
var ErrNoSource = errors.New("baselines: no source vertex holds any token")

// Tree returns the single-tree (Overcast-style) strategy factory.
var Tree sim.Factory = newTree

// Forest returns a k-stripe striped-forest (SplitStream-style) factory.
func Forest(k int) sim.Factory {
	return func(inst *core.Instance, rng *rand.Rand) (sim.Strategy, error) {
		if k < 1 {
			return nil, fmt.Errorf("baselines: forest needs k >= 1, got %d", k)
		}
		return newForest(inst, rng, k)
	}
}

func newTree(inst *core.Instance, rng *rand.Rand) (sim.Strategy, error) {
	return newForest(inst, rng, 1)
}

// treeStrategy pushes each stripe of tokens down its tree: a parent sends
// its child the lowest-ID stripe tokens the child lacks, up to capacity.
type treeStrategy struct {
	k int
	// parent[i][v] is v's parent in tree i (-1 for the root or detached).
	parent [][]int
	// stripe[t] is the tree responsible for token t.
	stripe []int
}

func newForest(inst *core.Instance, rng *rand.Rand, k int) (sim.Strategy, error) {
	root := richestVertex(inst)
	if root == -1 {
		return nil, ErrNoSource
	}
	s := &treeStrategy{k: k, stripe: make([]int, inst.NumTokens)}
	for t := range s.stripe {
		s.stripe[t] = t % k
	}
	for i := 0; i < k; i++ {
		s.parent = append(s.parent, buildWideTree(inst.G, root, rng))
	}
	return s, nil
}

// richestVertex picks the vertex holding the most tokens as the tree root
// (the single source in the paper's workloads).
func richestVertex(inst *core.Instance) int {
	best, bestCount := -1, 0
	for v := 0; v < inst.N(); v++ {
		if c := inst.Have[v].Count(); c > bestCount {
			best, bestCount = v, c
		}
	}
	return best
}

// buildWideTree grows a spanning tree from root preferring high-capacity
// arcs (Overcast's bandwidth probing), breaking ties randomly so repeated
// builds differ — that randomness is what spreads the striped forest's
// interior load.
func buildWideTree(g *graph.Graph, root int, rng *rand.Rand) []int {
	n := g.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	inTree := make([]bool, n)
	inTree[root] = true
	// Prim-like growth: repeatedly attach the detached vertex reachable
	// over the widest arc from the tree.
	for {
		bestFrom, bestTo, bestCap, seen := -1, -1, 0, 0
		for u := 0; u < n; u++ {
			if !inTree[u] {
				continue
			}
			for _, a := range g.Out(u) {
				if inTree[a.To] {
					continue
				}
				switch {
				case a.Cap > bestCap:
					bestFrom, bestTo, bestCap, seen = u, a.To, a.Cap, 1
				case a.Cap == bestCap:
					seen++
					if rng.Intn(seen) == 0 {
						bestFrom, bestTo = u, a.To
					}
				}
			}
		}
		if bestTo == -1 {
			return parent // remaining vertices unreachable from root
		}
		parent[bestTo] = bestFrom
		inTree[bestTo] = true
	}
}

func (s *treeStrategy) Name() string {
	if s.k == 1 {
		return "tree"
	}
	return fmt.Sprintf("forest-%d", s.k)
}

func (s *treeStrategy) Plan(st *sim.State) []core.Move {
	inst := st.Inst
	var moves []core.Move
	// Trees may share arcs; track joint per-arc usage so the plan never
	// exceeds a capacity.
	used := make(map[[2]int]int)
	for i := 0; i < s.k; i++ {
		for child := 0; child < inst.N(); child++ {
			p := s.parent[i][child]
			if p == -1 {
				continue
			}
			// Stream the stripe down this edge: lowest missing stripe
			// tokens the parent can supply, within the arc's remaining
			// capacity.
			key := [2]int{p, child}
			capacity := inst.G.Cap(p, child) - used[key]
			if capacity <= 0 {
				continue
			}
			sent := 0
			childHas := st.Possess[child]
			st.Possess[p].ForEach(func(t int) bool {
				if sent >= capacity {
					return false
				}
				if s.stripe[t] != i || childHas.Has(t) {
					return true
				}
				moves = append(moves, core.Move{From: p, To: child, Token: t})
				sent++
				return true
			})
			used[key] += sent
		}
	}
	return moves
}
