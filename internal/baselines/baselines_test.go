package baselines

import (
	"testing"

	"ocd/internal/core"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func TestTreeCompletesWithOptimalBandwidth(t *testing.T) {
	g, err := topology.Random(30, topology.DefaultCaps, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 24)
	res, err := sim.Run(inst, Tree, sim.Options{Seed: 1, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("tree run incomplete")
	}
	if err := core.Validate(inst, res.Schedule); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	if res.Rejected != 0 {
		t.Errorf("%d rejected moves", res.Rejected)
	}
	// The tree never duplicates: every token crosses each tree edge once,
	// so raw bandwidth equals the lower bound m(n−1) exactly.
	if lb := core.BandwidthLowerBound(inst, nil); res.Moves != lb {
		t.Errorf("tree bandwidth = %d, want exactly the lower bound %d", res.Moves, lb)
	}
}

func TestForestStripesAndCompletes(t *testing.T) {
	g, err := topology.Random(30, topology.DefaultCaps, 5)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 24)
	for _, k := range []int{2, 4} {
		res, err := sim.Run(inst, Forest(k), sim.Options{Seed: 1, Prune: true})
		if err != nil {
			t.Fatalf("forest-%d: %v", k, err)
		}
		if !res.Completed {
			t.Fatalf("forest-%d incomplete", k)
		}
		if err := core.Validate(inst, res.Schedule); err != nil {
			t.Fatalf("forest-%d invalid: %v", k, err)
		}
		if res.Rejected != 0 {
			t.Errorf("forest-%d: %d rejected moves (shared-arc capacity bug)", k, res.Rejected)
		}
		if lb := core.BandwidthLowerBound(inst, nil); res.Moves != lb {
			t.Errorf("forest-%d bandwidth = %d, want %d", k, res.Moves, lb)
		}
	}
}

func TestMeshBeatsTreeOnSpeed(t *testing.T) {
	// The §2 narrative: meshes (the paper's heuristics) finish faster than
	// a single tree, which pays for its bandwidth optimality with a
	// pipeline bound. Aggregate over seeds.
	g, err := topology.Random(40, topology.DefaultCaps, 7)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 60)
	treeTotal, meshTotal := 0, 0
	for seed := int64(0); seed < 3; seed++ {
		tree, err := sim.Run(inst, Tree, sim.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		mesh, err := sim.Run(inst, heuristics.Local, sim.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		treeTotal += tree.Steps
		meshTotal += mesh.Steps
	}
	if meshTotal >= treeTotal {
		t.Errorf("mesh (%d total turns) not faster than tree (%d)", meshTotal, treeTotal)
	}
}

func TestForestFasterThanSingleTree(t *testing.T) {
	// Striping across k trees parallelizes the push (the SplitStream
	// motivation); on capacity-constrained graphs the forest should not be
	// slower than one tree. Aggregate over seeds.
	g, err := topology.Random(40, topology.DefaultCaps, 9)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 64)
	oneTotal, fourTotal := 0, 0
	for seed := int64(0); seed < 3; seed++ {
		one, err := sim.Run(inst, Tree, sim.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		four, err := sim.Run(inst, Forest(4), sim.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		oneTotal += one.Steps
		fourTotal += four.Steps
	}
	if fourTotal > oneTotal {
		t.Errorf("forest-4 (%d total turns) slower than single tree (%d)", fourTotal, oneTotal)
	}
}

func TestBaselineErrors(t *testing.T) {
	g, err := topology.Line(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	empty := core.NewInstance(g, 2) // nobody holds anything
	if _, err := Tree(empty, nil); err == nil {
		t.Error("sourceless instance accepted")
	}
	inst := workload.SingleFile(g, 2)
	if _, err := Forest(0)(inst, nil); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestTreeNames(t *testing.T) {
	g, err := topology.Line(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 2)
	s, err := Tree(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "tree" {
		t.Errorf("name = %q", s.Name())
	}
	f, err := Forest(3)(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "forest-3" {
		t.Errorf("name = %q", f.Name())
	}
}
