package heuristics

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
)

// Global builds the §5.1 global heuristic: the general case of Local where
// vertices coordinate within each timestep to maximize diversity. The
// coordination removes the need for requests — the planner sees everything
// and guarantees a destination receives a token at most once per turn.
//
// As in the paper, the planner is a greedy selection over tokens and edges
// rather than an exhaustive matching ("not guaranteed to maximize
// diversity … to allow the heuristic to function at large scale"): it runs
// interleaved rounds in which every destination claims one more token,
// choosing the token with the lowest effective rarity, where copies already
// scheduled this turn count heavily against a token. Wanted tokens are
// claimed before diversity-only tokens.
var Global sim.Factory = newGlobal

// globalStrategy owns the per-run scratch: the per-destination claim sets
// and the per-token in-flight counters are cleared and refilled at the top
// of every Plan call instead of being reallocated.
type globalStrategy struct {
	rem residual
	//ocd:scratch
	inFlight []int
	//ocd:scratch
	scheduled []tokenset.Set
	//ocd:scratch
	wantedLeft []tokenset.Set
	//ocd:scratch
	lackLeft []tokenset.Set
	//ocd:scratch
	obtainable tokenset.Set
	//ocd:scratch
	pickable tokenset.Set
	//ocd:scratch
	perm  []int
	moves []core.Move
}

func newGlobal(inst *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
	n := inst.N()
	g := &globalStrategy{
		inFlight:   make([]int, inst.NumTokens),
		scheduled:  make([]tokenset.Set, n),
		wantedLeft: make([]tokenset.Set, n),
		lackLeft:   make([]tokenset.Set, n),
		obtainable: tokenset.New(inst.NumTokens),
		pickable:   tokenset.New(inst.NumTokens),
	}
	for v := 0; v < n; v++ {
		g.scheduled[v] = tokenset.New(inst.NumTokens)
		g.wantedLeft[v] = tokenset.New(inst.NumTokens)
		g.lackLeft[v] = tokenset.New(inst.NumTokens)
	}
	return g, nil
}

func (g *globalStrategy) Name() string { return "global" }

func (g *globalStrategy) Plan(st *sim.State) []core.Move {
	inst := st.Inst
	n := inst.N()
	counts := st.HaveCounts()
	g.rem.reset(inst.G)
	clear(g.inFlight)
	g.moves = g.moves[:0]

	// scheduled[v] tracks tokens already planned for delivery to v this
	// turn; missing/lacking shrink as rounds assign tokens.
	for v := 0; v < n; v++ {
		g.scheduled[v].Clear()
		st.MissingInto(v, g.wantedLeft[v])
		st.LackingInto(v, g.lackLeft[v])
		g.lackLeft[v].DifferenceWith(g.wantedLeft[v])
	}

	g.perm = permInto(g.perm, st.Rand, n)
	for {
		assigned := false
		for _, v := range g.perm {
			// Tokens v could still pull this round: union of the
			// possession of in-neighbors with residual capacity.
			g.obtainable.Clear()
			anyCap := false
			in := inst.G.In(v)
			inIDs := inst.G.InArcIDs(v)
			for i, a := range in {
				if g.rem.leftID(inIDs[i]) > 0 {
					g.obtainable.UnionWith(st.Possess[a.From])
					anyCap = true
				}
			}
			if !anyCap {
				continue
			}
			g.obtainable.DifferenceWith(st.Possess[v])
			g.obtainable.DifferenceWith(g.scheduled[v])
			t := pickDiverse(g.pickable, g.obtainable, g.wantedLeft[v], g.lackLeft[v], counts, g.inFlight, n, st.Rand)
			if t == -1 {
				continue
			}
			// Claim t from the holder neighbor with the most spare capacity.
			best, bestLeft := -1, 0
			var bestID int32
			for i, a := range in {
				if !st.Possess[a.From].Has(t) {
					continue
				}
				if l := g.rem.leftID(inIDs[i]); l > bestLeft {
					best, bestLeft, bestID = a.From, l, inIDs[i]
				}
			}
			if best == -1 {
				continue
			}
			g.rem.takeID(bestID)
			g.scheduled[v].Add(t)
			g.wantedLeft[v].Remove(t)
			g.lackLeft[v].Remove(t)
			g.inFlight[t]++
			g.moves = append(g.moves, core.Move{From: best, To: v, Token: t})
			assigned = true
		}
		if !assigned {
			break
		}
	}
	return g.moves
}

// pickDiverse selects the next token for a destination: among wanted tokens
// if any are obtainable, otherwise among diversity tokens; within the class
// it minimizes counts[t] + n·inFlight[t], so a token already scheduled this
// turn is treated as more common than any unscheduled one. Returns -1 when
// nothing is obtainable. scratch is overwritten with class ∩ obtainable so
// the scoring loop only visits pickable tokens instead of probing
// obtainable.Has per class member.
func pickDiverse(scratch, obtainable, wanted, lack tokenset.Set, counts, inFlight []int, n int, rng *rand.Rand) int {
	for _, class := range []tokenset.Set{wanted, lack} {
		scratch.SetIntersection(class, obtainable)
		best, bestScore, seen := -1, 0, 0
		scratch.ForEach(func(t int) bool {
			score := counts[t] + n*inFlight[t]
			switch {
			case best == -1 || score < bestScore:
				best, bestScore, seen = t, score, 1
			case score == bestScore:
				// Reservoir-sample ties for the rarest-*random* behaviour.
				seen++
				if rng.Intn(seen) == 0 {
					best = t
				}
			}
			return true
		})
		if best != -1 {
			return best
		}
	}
	return -1
}
