package heuristics

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
)

// Global builds the §5.1 global heuristic: the general case of Local where
// vertices coordinate within each timestep to maximize diversity. The
// coordination removes the need for requests — the planner sees everything
// and guarantees a destination receives a token at most once per turn.
//
// As in the paper, the planner is a greedy selection over tokens and edges
// rather than an exhaustive matching ("not guaranteed to maximize
// diversity … to allow the heuristic to function at large scale"): it runs
// interleaved rounds in which every destination claims one more token,
// choosing the token with the lowest effective rarity, where copies already
// scheduled this turn count heavily against a token. Wanted tokens are
// claimed before diversity-only tokens.
var Global sim.Factory = newGlobal

type globalStrategy struct{}

func newGlobal(_ *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
	return globalStrategy{}, nil
}

func (globalStrategy) Name() string { return "global" }

func (globalStrategy) Plan(st *sim.State) []core.Move {
	inst := st.Inst
	n := inst.N()
	counts := haveCounts(st)
	rem := newResidual(inst)
	inFlight := make([]int, inst.NumTokens)
	var moves []core.Move

	// scheduled[v] tracks tokens already planned for delivery to v this
	// turn; missing/lacking shrink as rounds assign tokens.
	scheduled := make([]tokenset.Set, n)
	wantedLeft := make([]tokenset.Set, n)
	lackLeft := make([]tokenset.Set, n)
	for v := 0; v < n; v++ {
		scheduled[v] = tokenset.New(inst.NumTokens)
		wantedLeft[v] = st.Missing(v)
		lackLeft[v] = st.Lacking(v)
		lackLeft[v].DifferenceWith(wantedLeft[v])
	}

	order := st.Rand.Perm(n)
	obtainable := tokenset.New(inst.NumTokens)
	for {
		assigned := false
		for _, v := range order {
			// Tokens v could still pull this round: union of the
			// possession of in-neighbors with residual capacity.
			obtainable.Clear()
			anyCap := false
			for _, a := range inst.G.In(v) {
				if rem.left(a.From, v) > 0 {
					obtainable.UnionWith(st.Possess[a.From])
					anyCap = true
				}
			}
			if !anyCap {
				continue
			}
			obtainable.DifferenceWith(st.Possess[v])
			obtainable.DifferenceWith(scheduled[v])
			t := pickDiverse(obtainable, wantedLeft[v], lackLeft[v], counts, inFlight, n, st.Rand)
			if t == -1 {
				continue
			}
			// Claim t from the holder neighbor with the most spare capacity.
			best, bestLeft := -1, 0
			for _, a := range inst.G.In(v) {
				if !st.Possess[a.From].Has(t) {
					continue
				}
				if l := rem.left(a.From, v); l > bestLeft {
					best, bestLeft = a.From, l
				}
			}
			if best == -1 {
				continue
			}
			rem.take(best, v)
			scheduled[v].Add(t)
			wantedLeft[v].Remove(t)
			lackLeft[v].Remove(t)
			inFlight[t]++
			moves = append(moves, core.Move{From: best, To: v, Token: t})
			assigned = true
		}
		if !assigned {
			break
		}
	}
	return moves
}

// pickDiverse selects the next token for a destination: among wanted tokens
// if any are obtainable, otherwise among diversity tokens; within the class
// it minimizes counts[t] + n·inFlight[t], so a token already scheduled this
// turn is treated as more common than any unscheduled one. Returns -1 when
// nothing is obtainable.
func pickDiverse(obtainable, wanted, lack tokenset.Set, counts, inFlight []int, n int, rng *rand.Rand) int {
	for _, class := range []tokenset.Set{wanted, lack} {
		best, bestScore, seen := -1, 0, 0
		class.ForEach(func(t int) bool {
			if !obtainable.Has(t) {
				return true
			}
			score := counts[t] + n*inFlight[t]
			switch {
			case best == -1 || score < bestScore:
				best, bestScore, seen = t, score, 1
			case score == bestScore:
				// Reservoir-sample ties for the rarest-*random* behaviour.
				seen++
				if rng.Intn(seen) == 0 {
					best = t
				}
			}
			return true
		})
		if best != -1 {
			return best
		}
	}
	return -1
}
