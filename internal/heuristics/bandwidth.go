package heuristics

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/sim"
)

// Bandwidth builds the §5.1 bandwidth-conserving heuristic: an online
// strategy, albeit with global knowledge, that "more cautiously adds tokens
// to a move". A vertex obtains a token in the next turn only if it will
// eventually use it, meaning either
//
//  1. it needs (wants and lacks) the token, or
//  2. it is the closest one-hop-knowledge vertex to a node that needs it,
//     where a one-hop-knowledge vertex for token t is one that could obtain
//     t in a single turn (it lacks t but has an in-neighbor possessing it).
//
// "Closest" is resolved with one labeled multi-source BFS per token per
// turn (every one-hop vertex floods forward; each needer adopts the first
// one-hop vertex to reach it), keeping the per-turn cost at
// O(tokens · (n + arcs)) so the heuristic scales to the paper's
// 1000-vertex sweeps.
var Bandwidth sim.Factory = newBandwidth

type bandwidthStrategy struct {
	// Scratch buffers reused across turns.
	dist  []int
	label []int
	queue []int
}

func newBandwidth(inst *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
	n := inst.N()
	return &bandwidthStrategy{
		dist:  make([]int, n),
		label: make([]int, n),
		queue: make([]int, 0, n),
	}, nil
}

func (b *bandwidthStrategy) Name() string { return "bandwidth" }

func (b *bandwidthStrategy) Plan(st *sim.State) []core.Move {
	inst := st.Inst
	n := inst.N()
	rem := newResidual(inst)
	var moves []core.Move

	type request struct{ v, t int }
	var requests []request
	seen := make(map[[2]int]bool)

	for t := 0; t < inst.NumTokens; t++ {
		// Needers: vertices that want t and lack it.
		var needers []int
		for v := 0; v < n; v++ {
			if inst.Want[v].Has(t) && !st.Possess[v].Has(t) {
				needers = append(needers, v)
			}
		}
		if len(needers) == 0 {
			continue
		}
		// One-hop-knowledge vertices for t.
		var oneHop []int
		for v := 0; v < n; v++ {
			if st.Possess[v].Has(t) {
				continue
			}
			for _, a := range inst.G.In(v) {
				if st.Possess[a.From].Has(t) {
					oneHop = append(oneHop, v)
					break
				}
			}
		}
		if len(oneHop) == 0 {
			continue
		}
		// Labeled multi-source BFS: label[d] = the one-hop vertex that
		// reaches needer d first (sources seeded in ascending ID order, so
		// distance ties break toward lower IDs deterministically).
		for v := 0; v < n; v++ {
			b.dist[v] = -1
			b.label[v] = -1
		}
		b.queue = b.queue[:0]
		for _, v := range oneHop {
			b.dist[v] = 0
			b.label[v] = v
			b.queue = append(b.queue, v)
		}
		for head := 0; head < len(b.queue); head++ {
			u := b.queue[head]
			for _, a := range inst.G.Out(u) {
				if b.dist[a.To] == -1 {
					b.dist[a.To] = b.dist[u] + 1
					b.label[a.To] = b.label[u]
					b.queue = append(b.queue, a.To)
				}
			}
		}
		for _, d := range needers {
			target := b.label[d] // d itself if one-hop (dist 0), else its closest one-hop vertex
			if target == -1 {
				continue // no one-hop vertex reaches this needer yet
			}
			key := [2]int{target, t}
			if !seen[key] {
				seen[key] = true
				requests = append(requests, request{v: target, t: t})
			}
		}
	}

	// Assign each (vertex, token) request to a holder in-neighbor with
	// residual capacity, preferring the neighbor with the most spare
	// capacity so rare slots are saved for constrained arcs.
	for _, rq := range requests {
		best, bestLeft := -1, 0
		for _, a := range inst.G.In(rq.v) {
			if !st.Possess[a.From].Has(rq.t) {
				continue
			}
			if l := rem.left(a.From, rq.v); l > bestLeft {
				best, bestLeft = a.From, l
			}
		}
		if best == -1 {
			continue
		}
		rem.take(best, rq.v)
		moves = append(moves, core.Move{From: best, To: rq.v, Token: rq.t})
	}
	return moves
}
