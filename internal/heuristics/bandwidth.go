package heuristics

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/sim"
)

// Bandwidth builds the §5.1 bandwidth-conserving heuristic: an online
// strategy, albeit with global knowledge, that "more cautiously adds tokens
// to a move". A vertex obtains a token in the next turn only if it will
// eventually use it, meaning either
//
//  1. it needs (wants and lacks) the token, or
//  2. it is the closest one-hop-knowledge vertex to a node that needs it,
//     where a one-hop-knowledge vertex for token t is one that could obtain
//     t in a single turn (it lacks t but has an in-neighbor possessing it).
//
// "Closest" is resolved with one labeled multi-source BFS per token per
// turn (every one-hop vertex floods forward; each needer adopts the first
// one-hop vertex to reach it), keeping the per-turn cost at
// O(tokens · (n + arcs)) so the heuristic scales to the paper's
// 1000-vertex sweeps.
var Bandwidth sim.Factory = newBandwidth

// bandwidthRequest is a (destination, token) pair the planner decided is
// useful to obtain this turn.
type bandwidthRequest struct{ v, t int }

type bandwidthStrategy struct {
	// Scratch buffers reused across turns.
	rem residual
	//ocd:scratch
	dist []int
	//ocd:scratch
	label []int
	//ocd:scratch
	queue []int
	// needers/oneHop/requests/moves are per-turn work lists; seen is a
	// generation-stamped visited array (one generation per token per turn)
	// replacing the old per-turn map keyed by (target, token).
	//ocd:scratch
	needers []int
	//ocd:scratch
	oneHop []int
	//ocd:scratch
	requests []bandwidthRequest
	moves    []core.Move
	//ocd:scratch
	seen    []uint32
	seenGen uint32
}

func newBandwidth(inst *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
	n := inst.N()
	return &bandwidthStrategy{
		dist:  make([]int, n),
		label: make([]int, n),
		queue: make([]int, 0, n),
		seen:  make([]uint32, n),
	}, nil
}

func (b *bandwidthStrategy) Name() string { return "bandwidth" }

func (b *bandwidthStrategy) Plan(st *sim.State) []core.Move {
	inst := st.Inst
	n := inst.N()
	b.rem.reset(inst.G)
	b.moves = b.moves[:0]
	b.requests = b.requests[:0]

	for t := 0; t < inst.NumTokens; t++ {
		// Needers: vertices that want t and lack it.
		b.needers = b.needers[:0]
		for v := 0; v < n; v++ {
			if inst.Want[v].Has(t) && !st.Possess[v].Has(t) {
				b.needers = append(b.needers, v)
			}
		}
		if len(b.needers) == 0 {
			continue
		}
		// One-hop-knowledge vertices for t.
		b.oneHop = b.oneHop[:0]
		for v := 0; v < n; v++ {
			if st.Possess[v].Has(t) {
				continue
			}
			for _, a := range inst.G.In(v) {
				if st.Possess[a.From].Has(t) {
					b.oneHop = append(b.oneHop, v)
					break
				}
			}
		}
		if len(b.oneHop) == 0 {
			continue
		}
		// Labeled multi-source BFS: label[d] = the one-hop vertex that
		// reaches needer d first (sources seeded in ascending ID order, so
		// distance ties break toward lower IDs deterministically).
		for v := 0; v < n; v++ {
			b.dist[v] = -1
			b.label[v] = -1
		}
		b.queue = b.queue[:0]
		for _, v := range b.oneHop {
			b.dist[v] = 0
			b.label[v] = v
			b.queue = append(b.queue, v)
		}
		for head := 0; head < len(b.queue); head++ {
			u := b.queue[head]
			for _, a := range inst.G.Out(u) {
				if b.dist[a.To] == -1 {
					b.dist[a.To] = b.dist[u] + 1
					b.label[a.To] = b.label[u]
					b.queue = append(b.queue, a.To)
				}
			}
		}
		// Dedupe targets within this token's needer pass: bump the
		// generation instead of clearing (or allocating) a visited set.
		b.seenGen++
		if b.seenGen == 0 { // generation counter wrapped: reset stamps
			clear(b.seen)
			b.seenGen = 1
		}
		for _, d := range b.needers {
			target := b.label[d] // d itself if one-hop (dist 0), else its closest one-hop vertex
			if target == -1 {
				continue // no one-hop vertex reaches this needer yet
			}
			if b.seen[target] != b.seenGen {
				b.seen[target] = b.seenGen
				b.requests = append(b.requests, bandwidthRequest{v: target, t: t})
			}
		}
	}

	// Assign each (vertex, token) request to a holder in-neighbor with
	// residual capacity, preferring the neighbor with the most spare
	// capacity so rare slots are saved for constrained arcs.
	for _, rq := range b.requests {
		in := inst.G.In(rq.v)
		inIDs := inst.G.InArcIDs(rq.v)
		best, bestLeft := -1, 0
		var bestID int32
		for i, a := range in {
			if !st.Possess[a.From].Has(rq.t) {
				continue
			}
			if l := b.rem.leftID(inIDs[i]); l > bestLeft {
				best, bestLeft, bestID = a.From, l, inIDs[i]
			}
		}
		if best == -1 {
			continue
		}
		b.rem.takeID(bestID)
		b.moves = append(b.moves, core.Move{From: best, To: rq.v, Token: rq.t})
	}
	return b.moves
}
