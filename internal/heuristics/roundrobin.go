package heuristics

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/sim"
)

// RoundRobin builds the paper's simplest heuristic: each vertex cycles a
// circular queue of token IDs per outgoing arc, sending the next tokens it
// possesses up to the arc capacity. It needs no knowledge beyond the local
// token store and the per-arc cursor, and consequently re-sends tokens the
// peer already has and duplicates what other peers send (§5.1).
var RoundRobin sim.Factory = newRoundRobin

type roundRobin struct {
	// cursor holds, per arc, the token ID after the last one sent. It is
	// keyed by endpoints rather than arc ID because it persists across
	// timesteps, and the fault/dynamic engines rebuild the effective graph
	// (with fresh arc IDs) every step.
	cursor map[[2]int]int
	moves  []core.Move
}

func newRoundRobin(inst *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
	return &roundRobin{cursor: make(map[[2]int]int, inst.G.NumArcs())}, nil
}

func (r *roundRobin) Name() string { return "roundrobin" }

func (r *roundRobin) Plan(st *sim.State) []core.Move {
	m := st.Inst.NumTokens
	moves := r.moves[:0]
	for u := 0; u < st.Inst.N(); u++ {
		have := st.Possess[u]
		if have.Empty() {
			continue
		}
		for _, a := range st.Inst.G.Out(u) {
			key := [2]int{a.From, a.To}
			cur := r.cursor[key]
			sent := 0
			// One full cycle at most: skip tokens u does not have.
			for scanned := 0; scanned < m && sent < a.Cap; scanned++ {
				t := (cur + scanned) % m
				if !have.Has(t) {
					continue
				}
				moves = append(moves, core.Move{From: u, To: a.To, Token: t})
				sent++
				r.cursor[key] = (t + 1) % m
			}
		}
	}
	r.moves = moves
	return moves
}
