package heuristics

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
)

// LocalDelayed builds the §5.1 relaxation of the Local heuristic in which
// peers know each other's state as of `delay` turns ago instead of the
// current turn ("further exploration may also relax this requirement,
// instead allowing peers to know about the state 'k' turns ago").
//
// Possession is monotone, so a stale view is always a subset of the truth:
// requests planned from it remain valid, but rarity estimates lag and
// deliveries may duplicate what a peer already obtained meanwhile — the
// cost of stale knowledge that the delay ablation measures.
func LocalDelayed(delay int) sim.Factory {
	return func(_ *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
		if delay < 0 {
			delay = 0
		}
		return &localDelayed{delay: delay}, nil
	}
}

type localDelayed struct {
	delay   int
	history [][]tokenset.Set
}

func (l *localDelayed) Name() string {
	if l.delay == 0 {
		return "local"
	}
	return "local-delayed"
}

func (l *localDelayed) Plan(st *sim.State) []core.Move {
	// Record the current truth, then plan from the view `delay` turns old.
	snapshot := make([]tokenset.Set, len(st.Possess))
	for v := range st.Possess {
		snapshot[v] = st.Possess[v].Clone()
	}
	l.history = append(l.history, snapshot)
	idx := len(l.history) - 1 - l.delay
	if idx < 0 {
		idx = 0
	}
	view := l.history[idx]

	counts := make([]int, st.Inst.NumTokens)
	for v := range view {
		view[v].ForEach(func(t int) bool {
			counts[t]++
			return true
		})
	}

	rem := newResidual(st.Inst)
	var moves []core.Move
	for _, v := range st.Rand.Perm(st.Inst.N()) {
		in := st.Inst.G.In(v)
		if len(in) == 0 {
			continue
		}
		// Own state is always current; peer states come from the view.
		wanted := st.Missing(v)
		other := st.Lacking(v)
		other.DifferenceWith(wanted)
		for _, class := range []([]int){
			tokensByRarity(wanted, counts, st.Rand),
			tokensByRarity(other, counts, st.Rand),
		} {
			for _, t := range class {
				best := -1
				seen := 0
				for _, a := range in {
					if !view[a.From].Has(t) || rem.left(a.From, v) <= 0 {
						continue
					}
					seen++
					if st.Rand.Intn(seen) == 0 {
						best = a.From
					}
				}
				if best == -1 {
					continue
				}
				rem.take(best, v)
				moves = append(moves, core.Move{From: best, To: v, Token: t})
			}
		}
	}
	return moves
}
