package heuristics

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
)

// LocalDelayed builds the §5.1 relaxation of the Local heuristic in which
// peers know each other's state as of `delay` turns ago instead of the
// current turn ("further exploration may also relax this requirement,
// instead allowing peers to know about the state 'k' turns ago").
//
// Possession is monotone, so a stale view is always a subset of the truth:
// requests planned from it remain valid, but rarity estimates lag and
// deliveries may duplicate what a peer already obtained meanwhile — the
// cost of stale knowledge that the delay ablation measures.
func LocalDelayed(delay int) sim.Factory {
	return func(_ *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
		if delay < 0 {
			delay = 0
		}
		return &localDelayed{delay: delay}, nil
	}
}

type localDelayed struct {
	delay   int
	history [][]tokenset.Set

	// Per-turn scratch; the snapshots in history must stay fresh
	// allocations (they are the strategy's memory), but the planning
	// buffers are reused.
	rem    residual
	sorter raritySorter
	//ocd:scratch
	counts []int
	//ocd:scratch
	perm []int
	//ocd:scratch
	wanted tokenset.Set
	//ocd:scratch
	other tokenset.Set
	//ocd:scratch
	tokens []int
	moves  []core.Move
}

func (l *localDelayed) Name() string {
	if l.delay == 0 {
		return "local"
	}
	return "local-delayed"
}

func (l *localDelayed) Plan(st *sim.State) []core.Move {
	// Record the current truth, then plan from the view `delay` turns old.
	snapshot := make([]tokenset.Set, len(st.Possess))
	for v := range st.Possess {
		snapshot[v] = st.Possess[v].Clone()
	}
	l.history = append(l.history, snapshot)
	idx := len(l.history) - 1 - l.delay
	if idx < 0 {
		idx = 0
	}
	view := l.history[idx]

	// Rarity comes from the stale view, not the engine's live counts — a
	// delayed peer cannot know about deliveries it has not heard of yet.
	if l.counts == nil {
		l.counts = make([]int, st.Inst.NumTokens)
	}
	clear(l.counts)
	for v := range view {
		view[v].ForEach(func(t int) bool {
			l.counts[t]++
			return true
		})
	}
	if l.wanted.Universe() != st.Inst.NumTokens {
		l.wanted = tokenset.New(st.Inst.NumTokens)
		l.other = tokenset.New(st.Inst.NumTokens)
	}

	l.rem.reset(st.Inst.G)
	l.moves = l.moves[:0]
	l.perm = permInto(l.perm, st.Rand, st.Inst.N())
	for _, v := range l.perm {
		if len(st.Inst.G.In(v)) == 0 {
			continue
		}
		// Own state is always current; peer states come from the view.
		st.MissingInto(v, l.wanted)
		st.LackingInto(v, l.other)
		l.other.DifferenceWith(l.wanted)
		l.tokens = appendTokensByRarity(&l.sorter, l.tokens[:0], l.wanted, l.counts, st.Inst.N(), st.Rand)
		wantedEnd := len(l.tokens)
		l.tokens = appendTokensByRarity(&l.sorter, l.tokens, l.other, l.counts, st.Inst.N(), st.Rand)
		// Wanted before diversity, via plain calls so the scratch buffer
		// never lands in a composite literal (see localStrategy.requestClass).
		l.requestClass(st, view, v, l.tokens[:wantedEnd])
		l.requestClass(st, view, v, l.tokens[wantedEnd:])
	}
	return l.moves
}

// requestClass assigns each token in class to a random in-neighbor of v
// holding it in the stale view, with residual capacity, in class order.
func (l *localDelayed) requestClass(st *sim.State, view []tokenset.Set, v int, class []int) {
	in := st.Inst.G.In(v)
	inIDs := st.Inst.G.InArcIDs(v)
	for _, t := range class {
		best := -1
		var bestID int32
		seen := 0
		for i, a := range in {
			if !view[a.From].Has(t) || l.rem.leftID(inIDs[i]) <= 0 {
				continue
			}
			seen++
			if st.Rand.Intn(seen) == 0 {
				best, bestID = a.From, inIDs[i]
			}
		}
		if best == -1 {
			continue
		}
		l.rem.takeID(bestID)
		l.moves = append(l.moves, core.Move{From: best, To: v, Token: t})
	}
}
