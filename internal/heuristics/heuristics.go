// Package heuristics implements the five distribution strategies evaluated
// in §5.1 of the paper:
//
//   - Round Robin: per-arc circular token queue; purely local knowledge.
//   - Random: uniform random choice among tokens the peer lacks; requires
//     knowledge of each peer's possession at the start of the turn.
//   - Local: "rarest random" with per-step global aggregate vectors of what
//     vertices want and do not have, and per-peer request subdivision so two
//     peers do not send the same rare token to the same destination.
//   - Bandwidth: online but with global knowledge; a vertex obtains only
//     tokens it will eventually use — tokens it needs, or tokens for which
//     it is the closest one-hop-knowledge vertex to some needer.
//   - Global: coordinated greedy selection over all tokens and arcs that
//     maximizes diversity (the paper's large-scale greedy stand-in for
//     exhaustive matching).
//
// Every strategy is packaged as a sim.Factory; the engine in internal/sim
// enforces the model constraints on whatever the strategies propose.
package heuristics

import (
	"math/rand"

	"ocd/internal/graph"
	"ocd/internal/tokenset"

	"ocd/internal/sim"
)

// Named returns the factory registered under name, if any.
func Named(name string) (sim.Factory, bool) {
	switch name {
	case "roundrobin", "round-robin", "rr":
		return RoundRobin, true
	case "random", "rand":
		return Random, true
	case "local", "rarest", "rarest-random":
		return Local, true
	case "bandwidth", "bw":
		return Bandwidth, true
	case "global":
		return Global, true
	default:
		return nil, false
	}
}

// Names lists the canonical heuristic names in the order the paper
// introduces them.
func Names() []string {
	return []string{"roundrobin", "random", "local", "bandwidth", "global"}
}

// All returns the factories in the same order as Names.
func All() []sim.Factory {
	return []sim.Factory{RoundRobin, Random, Local, Bandwidth, Global}
}

// residual tracks per-arc remaining capacity within a single timestep as a
// dense slice indexed by the graph's arc IDs. Each strategy owns one as a
// scratch buffer and resets it at the top of every Plan call from the
// step's effective graph — the fault/dynamic engines rebuild the graph
// between steps, so arc IDs are only stable within a single Plan.
type residual struct {
	g *graph.Graph
	//ocd:scratch
	rem []int
}

// reset points the residual at g and restores every arc to full capacity.
func (r *residual) reset(g *graph.Graph) {
	r.g = g
	caps := g.CapsByID()
	if cap(r.rem) < len(caps) {
		r.rem = make([]int, len(caps))
	}
	r.rem = r.rem[:len(caps)]
	copy(r.rem, caps)
}

// takeID consumes one unit of the arc with the given dense ID.
func (r *residual) takeID(id int32) { r.rem[id]-- }

// leftID returns the remaining capacity of the arc with the given dense ID.
func (r *residual) leftID(id int32) int { return r.rem[id] }

// take consumes one unit of arc u→v if any capacity remains.
func (r *residual) take(u, v int) bool {
	id := r.g.ArcID(u, v)
	if id < 0 || r.rem[id] <= 0 {
		return false
	}
	r.rem[id]--
	return true
}

// left returns the remaining capacity of arc u→v (0 if absent).
func (r *residual) left(u, v int) int {
	id := r.g.ArcID(u, v)
	if id < 0 {
		return 0
	}
	return r.rem[id]
}

// raritySorter holds the reusable scratch for the stable sort-by-count on
// the per-vertex hot path: a counting-sort bucket array (have-counts are
// bounded by the vertex count) and a staging buffer. One lives in each
// rarest-random strategy so sorting allocates nothing in steady state.
type raritySorter struct {
	//ocd:scratch
	bucket []int
	//ocd:scratch
	tmp []int
}

// sortByCount stably sorts tokens ascending by counts[t]. Counts are vertex
// tallies, so they lie in [0, maxCount]; a two-pass counting sort is O(k +
// maxCount) and — being stable — preserves the pre-shuffled order among
// equal-rarity tokens exactly as the old insertion sort (and a
// sort.SliceStable) would. Small inputs fall back to a stable insertion
// sort to skip the bucket reset.
func (r *raritySorter) sortByCount(tokens []int, counts []int, maxCount int) {
	if len(tokens) < 16 {
		for i := 1; i < len(tokens); i++ {
			t := tokens[i]
			j := i - 1
			for j >= 0 && counts[tokens[j]] > counts[t] {
				tokens[j+1] = tokens[j]
				j--
			}
			tokens[j+1] = t
		}
		return
	}
	if cap(r.bucket) < maxCount+2 {
		r.bucket = make([]int, maxCount+2)
	}
	bucket := r.bucket[:maxCount+2]
	clear(bucket)
	for _, t := range tokens {
		bucket[counts[t]+1]++
	}
	for c := 1; c < len(bucket); c++ {
		bucket[c] += bucket[c-1]
	}
	if cap(r.tmp) < len(tokens) {
		r.tmp = make([]int, len(tokens))
	}
	tmp := r.tmp[:len(tokens)]
	for _, t := range tokens {
		tmp[bucket[counts[t]]] = t
		bucket[counts[t]]++
	}
	copy(tokens, tmp)
}

// appendTokensByRarity appends the tokens of set to buf ordered by ascending
// have-count (rarest first), and returns the extended buffer. The tokens
// are Fisher-Yates shuffled with rng before a single stable sort keyed by
// count — stability preserves the shuffled order among equal-rarity tokens,
// which is the tie-diversification the §5.1 rarest-random family relies on
// (replacing the old shuffle + O(k²) insertion sort over the full set).
func appendTokensByRarity(sorter *raritySorter, buf []int, set tokenset.Set, counts []int, maxCount int, rng *rand.Rand) []int {
	start := len(buf)
	buf = set.AppendTo(buf)
	tokens := buf[start:]
	for i := len(tokens) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		tokens[i], tokens[j] = tokens[j], tokens[i]
	}
	sorter.sortByCount(tokens, counts, maxCount)
	return buf
}

// permInto writes a random permutation of [0, n) into buf, growing it as
// needed, and returns it. It replicates math/rand.Perm's algorithm exactly
// so it consumes the identical rand stream while avoiding the per-call
// allocation.
func permInto(buf []int, rng *rand.Rand, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		buf[i] = buf[j]
		buf[j] = i
	}
	return buf
}
