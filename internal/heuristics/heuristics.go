// Package heuristics implements the five distribution strategies evaluated
// in §5.1 of the paper:
//
//   - Round Robin: per-arc circular token queue; purely local knowledge.
//   - Random: uniform random choice among tokens the peer lacks; requires
//     knowledge of each peer's possession at the start of the turn.
//   - Local: "rarest random" with per-step global aggregate vectors of what
//     vertices want and do not have, and per-peer request subdivision so two
//     peers do not send the same rare token to the same destination.
//   - Bandwidth: online but with global knowledge; a vertex obtains only
//     tokens it will eventually use — tokens it needs, or tokens for which
//     it is the closest one-hop-knowledge vertex to some needer.
//   - Global: coordinated greedy selection over all tokens and arcs that
//     maximizes diversity (the paper's large-scale greedy stand-in for
//     exhaustive matching).
//
// Every strategy is packaged as a sim.Factory; the engine in internal/sim
// enforces the model constraints on whatever the strategies propose.
package heuristics

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
)

// Named returns the factory registered under name, if any.
func Named(name string) (sim.Factory, bool) {
	switch name {
	case "roundrobin", "round-robin", "rr":
		return RoundRobin, true
	case "random", "rand":
		return Random, true
	case "local", "rarest", "rarest-random":
		return Local, true
	case "bandwidth", "bw":
		return Bandwidth, true
	case "global":
		return Global, true
	default:
		return nil, false
	}
}

// Names lists the canonical heuristic names in the order the paper
// introduces them.
func Names() []string {
	return []string{"roundrobin", "random", "local", "bandwidth", "global"}
}

// All returns the factories in the same order as Names.
func All() []sim.Factory {
	return []sim.Factory{RoundRobin, Random, Local, Bandwidth, Global}
}

// haveCounts returns, for every token, the number of vertices currently
// possessing it — the rarity signal of the rarest-random family.
func haveCounts(st *sim.State) []int {
	counts := make([]int, st.Inst.NumTokens)
	for v := range st.Possess {
		st.Possess[v].ForEach(func(t int) bool {
			counts[t]++
			return true
		})
	}
	return counts
}

// residual tracks per-arc remaining capacity within a single timestep.
type residual map[[2]int]int

func newResidual(inst *core.Instance) residual {
	r := make(residual, inst.G.NumArcs())
	for _, a := range inst.G.Arcs() {
		r[[2]int{a.From, a.To}] = a.Cap
	}
	return r
}

func (r residual) take(u, v int) bool {
	key := [2]int{u, v}
	if r[key] <= 0 {
		return false
	}
	r[key]--
	return true
}

func (r residual) left(u, v int) int { return r[[2]int{u, v}] }

// tokensByRarity returns the tokens of set ordered by ascending have-count
// (rarest first), shuffling ties with rng so repeated runs diversify.
func tokensByRarity(set tokenset.Set, counts []int, rng *rand.Rand) []int {
	tokens := set.Slice()
	rng.Shuffle(len(tokens), func(i, j int) {
		tokens[i], tokens[j] = tokens[j], tokens[i]
	})
	// Stable-ish insertion by rarity after the shuffle: simple sort by count.
	sortByCount(tokens, counts)
	return tokens
}

// sortByCount sorts token IDs ascending by counts[t] (insertion sort keeps
// the shuffled order among equals).
func sortByCount(tokens []int, counts []int) {
	for i := 1; i < len(tokens); i++ {
		t := tokens[i]
		j := i - 1
		for j >= 0 && counts[tokens[j]] > counts[t] {
			tokens[j+1] = tokens[j]
			j--
		}
		tokens[j+1] = t
	}
}
