package heuristics

import (
	"math/rand"
	"testing"

	"ocd/internal/core"
	"ocd/internal/fault"
	"ocd/internal/graph"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func TestNamedLookup(t *testing.T) {
	for _, name := range Names() {
		if _, ok := Named(name); !ok {
			t.Errorf("canonical name %q not registered", name)
		}
	}
	aliases := map[string]string{
		"rr": "roundrobin", "rand": "random", "rarest": "local",
		"rarest-random": "local", "bw": "bandwidth", "round-robin": "roundrobin",
	}
	for alias := range aliases {
		if _, ok := Named(alias); !ok {
			t.Errorf("alias %q not registered", alias)
		}
	}
	if _, ok := Named("nope"); ok {
		t.Error("unknown name resolved")
	}
	if len(All()) != len(Names()) {
		t.Error("All and Names disagree")
	}
}

// fixtures returns a diverse set of (name, instance) cases every heuristic
// must complete.
func fixtures(t *testing.T) map[string]*core.Instance {
	t.Helper()
	out := make(map[string]*core.Instance)

	mk := func(g *graph.Graph, err error) *graph.Graph {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	out["line"] = workload.SingleFile(mk(topology.Line(5, 2)), 6)
	out["ring"] = workload.SingleFile(mk(topology.Ring(6, 1)), 4)
	out["star"] = workload.SingleFile(mk(topology.Star(6, 3)), 8)
	out["complete"] = workload.SingleFile(mk(topology.Complete(5, 2)), 8)
	out["grid"] = workload.SingleFile(mk(topology.Grid(3, 3, 2)), 8)
	out["random"] = workload.SingleFile(mk(topology.Random(24, topology.DefaultCaps, 3)), 30)
	out["transit-stub"] = workload.SingleFile(mk(topology.TransitStubN(25, topology.DefaultCaps, 3)), 30)

	// Sparse wants: only two receivers.
	g := mk(topology.Random(16, topology.DefaultCaps, 9))
	sparse := core.NewInstance(g, 12)
	sparse.Have[0].AddRange(0, 12)
	sparse.Want[7].AddRange(0, 12)
	sparse.Want[13].AddRange(0, 6)
	out["sparse"] = sparse

	// Multiple senders, partial wants.
	ms, err := workload.MultiSender(mk(topology.Random(20, topology.DefaultCaps, 5)), 16, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	out["multisender"] = ms
	return out
}

func TestAllHeuristicsCompleteAndValidate(t *testing.T) {
	for fixtureName, inst := range fixtures(t) {
		for i, factory := range All() {
			name := Names()[i]
			t.Run(fixtureName+"/"+name, func(t *testing.T) {
				res, err := sim.Run(inst, factory, sim.Options{Seed: 42, Prune: true})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if !res.Completed {
					t.Fatal("did not complete")
				}
				if err := core.Validate(inst, res.Schedule); err != nil {
					t.Fatalf("invalid schedule: %v", err)
				}
				if res.Rejected != 0 {
					t.Errorf("%d proposed moves were illegal", res.Rejected)
				}
				if res.Steps < core.MakespanLowerBound(inst, nil) {
					t.Errorf("makespan %d below lower bound %d",
						res.Steps, core.MakespanLowerBound(inst, nil))
				}
				if res.PrunedMoves < core.BandwidthLowerBound(inst, nil) {
					t.Errorf("pruned bandwidth %d below lower bound %d",
						res.PrunedMoves, core.BandwidthLowerBound(inst, nil))
				}
			})
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g, err := topology.Random(20, topology.DefaultCaps, 4)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 20)
	for i, factory := range All() {
		a, err := sim.Run(inst, factory, sim.Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.Run(inst, factory, sim.Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if a.Steps != b.Steps || a.Moves != b.Moves {
			t.Errorf("%s not deterministic: (%d,%d) vs (%d,%d)",
				Names()[i], a.Steps, a.Moves, b.Steps, b.Moves)
		}
	}
}

func TestRoundRobinIgnoresWants(t *testing.T) {
	// Round Robin is knowledge-free: its move stream must not depend on
	// the want sets (§5.1). Compare the first planned step on two
	// instances differing only in wants.
	g, err := topology.Ring(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := workload.SingleFile(g, 8)
	b := workload.SingleFile(g, 8)
	for v := 1; v < 6; v++ {
		b.Want[v].Clear()
	}
	b.Want[3].Add(0)

	planFirst := func(inst *core.Instance) []core.Move {
		strat, err := newRoundRobin(inst, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		st := &sim.State{Inst: inst, Possess: inst.InitialPossession(),
			Rand: rand.New(rand.NewSource(1))}
		return strat.Plan(st)
	}
	ma, mb := planFirst(a), planFirst(b)
	if len(ma) != len(mb) {
		t.Fatalf("move counts differ: %d vs %d", len(ma), len(mb))
	}
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("move %d differs: %v vs %v", i, ma[i], mb[i])
		}
	}
}

func TestRoundRobinCyclesTokens(t *testing.T) {
	// On a 2-vertex link of capacity 1, round robin must deliver a new
	// token every step in ID order.
	g := graph.New(2)
	if err := g.AddArc(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	inst := core.NewInstance(g, 4)
	inst.Have[0].AddRange(0, 4)
	inst.Want[1].AddRange(0, 4)
	res, err := sim.Run(inst, RoundRobin, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 4 || res.Moves != 4 {
		t.Errorf("steps=%d moves=%d, want 4/4", res.Steps, res.Moves)
	}
	for i, st := range res.Schedule.Steps {
		if len(st) != 1 || st[0].Token != i {
			t.Errorf("step %d = %v, want token %d", i, st, i)
		}
	}
}

func TestRandomAvoidsKnownDuplicates(t *testing.T) {
	// Random only sends tokens the peer lacks, so on a single link the
	// bandwidth equals the token count exactly.
	g := graph.New(2)
	if err := g.AddArc(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	inst := core.NewInstance(g, 9)
	inst.Have[0].AddRange(0, 9)
	inst.Want[1].AddRange(0, 9)
	res, err := sim.Run(inst, Random, sim.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 9 {
		t.Errorf("moves = %d, want exactly 9 (no duplicates on one link)", res.Moves)
	}
	if res.Steps != 3 {
		t.Errorf("steps = %d, want 3 (capacity 3)", res.Steps)
	}
}

func TestLocalPrefersRarestFirst(t *testing.T) {
	// Source 0 connects to sink 2 via relay 1 (capacity 1 per arc).
	// Token 1 is already widespread (held by 1 and 2); token 0 is rare.
	// Local must move the rare token first on the 0→1 arc.
	g := graph.New(3)
	if err := g.AddArc(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddArc(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	inst := core.NewInstance(g, 2)
	inst.Have[0].AddRange(0, 2)
	inst.Have[1].Add(1)
	inst.Have[2].Add(1)
	inst.Want[2].AddRange(0, 2)

	strat, err := newLocal(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := &sim.State{Inst: inst, Possess: inst.InitialPossession(),
		Rand: rand.New(rand.NewSource(1))}
	moves := strat.Plan(st)
	for _, mv := range moves {
		if mv.From == 0 && mv.To == 1 && mv.Token != 0 {
			t.Errorf("local sent common token %d before rare token on 0→1", mv.Token)
		}
	}
}

func TestLocalSubdividesRequests(t *testing.T) {
	// Destination 2 has two in-neighbors both holding both tokens, each
	// arc capacity 1: coordination must fetch both tokens in one step
	// (one from each neighbor), not the same token twice.
	g := graph.New(3)
	if err := g.AddArc(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddArc(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	inst := core.NewInstance(g, 2)
	inst.Have[0].AddRange(0, 2)
	inst.Have[1].AddRange(0, 2)
	inst.Want[2].AddRange(0, 2)
	res, err := sim.Run(inst, Local, sim.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 {
		t.Errorf("steps = %d, want 1 (requests subdivided across peers)", res.Steps)
	}
	if res.Moves != 2 {
		t.Errorf("moves = %d, want 2", res.Moves)
	}
}

func TestBandwidthOnlySendsUseful(t *testing.T) {
	// A 10-vertex line where only the far end wants a 4-token file: the
	// bandwidth heuristic must not flood non-wanting side branches.
	g := graph.New(10)
	for i := 0; i+1 < 9; i++ {
		if err := g.AddEdge(i, i+1, 2); err != nil {
			t.Fatal(err)
		}
	}
	// A dead-end branch that flooding heuristics would fill.
	if err := g.AddEdge(4, 9, 2); err != nil {
		t.Fatal(err)
	}
	inst := core.NewInstance(g, 4)
	inst.Have[0].AddRange(0, 4)
	inst.Want[8].AddRange(0, 4)

	res, err := sim.Run(inst, Bandwidth, sim.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("bandwidth heuristic did not complete")
	}
	// Tokens must never be delivered to the dead-end vertex 9: it neither
	// wants them nor is it ever the closest one-hop vertex to the needer.
	for _, st := range res.Schedule.Steps {
		for _, mv := range st {
			if mv.To == 9 {
				t.Fatalf("bandwidth heuristic flooded dead-end vertex: %v", mv)
			}
		}
	}
	// Minimum useful bandwidth: 4 tokens × 8 hops.
	if res.Moves != 32 {
		t.Errorf("moves = %d, want exactly 32 (no waste)", res.Moves)
	}
}

func TestBandwidthBeatsFloodingOnSparseWants(t *testing.T) {
	g, err := topology.Random(40, topology.DefaultCaps, 8)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.ReceiverDensity(g, 30, 0.15, 99)
	bw, err := sim.Run(inst, Bandwidth, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := sim.Run(inst, Local, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bw.Moves >= fl.Moves {
		t.Errorf("bandwidth heuristic (%d moves) not cheaper than flooding local (%d moves)",
			bw.Moves, fl.Moves)
	}
}

func TestGlobalCoordinationAvoidsDuplicates(t *testing.T) {
	// Two holders, one destination, two tokens, capacity 1 per arc: the
	// coordinated planner must never schedule the same token twice to the
	// same destination in one turn.
	g := graph.New(3)
	if err := g.AddArc(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddArc(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	inst := core.NewInstance(g, 2)
	inst.Have[0].AddRange(0, 2)
	inst.Have[1].AddRange(0, 2)
	inst.Want[2].AddRange(0, 2)
	res, err := sim.Run(inst, Global, sim.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 || res.Moves != 2 {
		t.Errorf("steps=%d moves=%d, want 1/2", res.Steps, res.Moves)
	}
	seen := map[[2]int]bool{}
	for _, mv := range res.Schedule.Steps[0] {
		key := [2]int{mv.To, mv.Token}
		if seen[key] {
			t.Errorf("duplicate delivery scheduled: %v", mv)
		}
		seen[key] = true
	}
}

func TestFloodingOrderingRoundRobinSlowest(t *testing.T) {
	// The paper's headline qualitative claim (§5.2): round robin is much
	// slower than the peer-aware heuristics, and random is within a
	// constant factor of the smarter ones.
	g, err := topology.Random(30, topology.DefaultCaps, 12)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 40)
	steps := map[string]int{}
	for i, factory := range All() {
		res, err := sim.Run(inst, factory, sim.Options{Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		steps[Names()[i]] = res.Steps
	}
	if steps["roundrobin"] <= steps["local"] || steps["roundrobin"] <= steps["random"] {
		t.Errorf("round robin (%d) not slower than local (%d) / random (%d)",
			steps["roundrobin"], steps["local"], steps["random"])
	}
}

// TestAllHeuristicsSurviveTransientFaults drives every named heuristic
// through the fault engine under crash-recovery churn with frozen state
// plus mild bursty loss: each must still complete, and the faulted
// schedule must replay cleanly against the plan.
func TestAllHeuristicsSurviveTransientFaults(t *testing.T) {
	g, err := topology.Random(18, topology.DefaultCaps, 6)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 12)
	mkPlan := func() fault.Plan {
		return fault.Plan{
			Loss:      fault.NewGilbertElliott(0.05, 0.4, 0.01, 0.4, 6),
			Crashes:   fault.NewRandomCrashes(0.02, 0.4, 7, 0),
			StateLoss: fault.KeepState,
		}
	}
	for i, factory := range All() {
		name := Names()[i]
		res, err := fault.Run(inst, factory, mkPlan(), sim.Options{
			Seed: 6, IdlePatience: 40,
		})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !res.Completed {
			t.Errorf("%s: incomplete under transient faults (delivered %.2f)",
				name, res.DeliveredFraction)
			continue
		}
		if err := fault.Validate(inst, res.Schedule, mkPlan()); err != nil {
			t.Errorf("%s: faulted schedule fails plan replay: %v", name, err)
		}
		if err := core.ValidateConstraints(inst, res.Schedule); err != nil {
			t.Errorf("%s: faulted schedule violates static constraints: %v", name, err)
		}
	}
}
