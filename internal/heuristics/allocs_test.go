package heuristics

import (
	"testing"

	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

// allocCeilings are regression guards for the scratch-buffer architecture:
// whole-run allocation counts for each heuristic on the reference workload,
// set ~50% above the measured values so ordinary noise passes but a
// reintroduced per-step allocation (a map rebuilt per Plan, a sort closure,
// a fresh token buffer per vertex) trips the guard. Raising a ceiling is a
// deliberate act — it should accompany a change that knowingly adds
// allocation, not silence a regression.
var allocCeilings = map[string]float64{
	"roundrobin": 700,
	"random":     550,
	"local":      550,
	"bandwidth":  600,
	"global":     800,
}

// lossyAllocCeilings guard the loss-enabled kernel path: a loss draw per
// accepted move plus the exact-size delivered copy must not reintroduce
// per-step allocation. The absolute counts sit below the lossless ones
// because lossy runs skip the pruning pass; measured the same way, ~50%
// headroom above observed.
var lossyAllocCeilings = map[string]float64{
	"roundrobin": 250,
	"random":     250,
	"local":      250,
	"bandwidth":  250,
	"global":     500,
}

// BenchmarkHeuristicRun is the per-heuristic microbenchmark backing the
// ceilings above: -benchmem reports allocs/op for the same fixed workload.
func BenchmarkHeuristicRun(b *testing.B) {
	g, err := topology.Random(60, topology.DefaultCaps, 1)
	if err != nil {
		b.Fatal(err)
	}
	inst := workload.SingleFile(g, 40)
	for i, factory := range All() {
		factory := factory
		b.Run(Names()[i], func(b *testing.B) {
			b.ReportAllocs()
			for j := 0; j < b.N; j++ {
				if _, err := sim.Run(inst, factory, sim.Options{Seed: 1, Prune: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestAllocationCeilings runs every heuristic end to end on a fixed
// instance and fails if its total allocations exceed the recorded ceiling.
// The lossless and lossy kernel paths are guarded separately: the lossy
// path draws from the loss stream per accepted move and copies delivered
// moves out at exact size, both of which must stay amortized.
func TestAllocationCeilings(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	g, err := topology.Random(60, topology.DefaultCaps, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 40)
	for _, path := range []struct {
		label    string
		opts     sim.Options
		ceilings map[string]float64
	}{
		{"lossless", sim.Options{Seed: 1, Prune: true}, allocCeilings},
		{"lossy", sim.Options{Seed: 1, LossRate: 0.15, IdlePatience: 30}, lossyAllocCeilings},
	} {
		t.Run(path.label, func(t *testing.T) {
			for i, factory := range All() {
				name := Names()[i]
				ceiling, ok := path.ceilings[name]
				if !ok {
					t.Errorf("%s: no allocation ceiling recorded; add one", name)
					continue
				}
				allocs := testing.AllocsPerRun(5, func() {
					if _, err := sim.Run(inst, factory, path.opts); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
				})
				t.Logf("%s: %.0f allocs/run (ceiling %.0f)", name, allocs, ceiling)
				if allocs > ceiling {
					t.Errorf("%s allocated %.0f times per run, ceiling %.0f — a per-step allocation crept back in",
						name, allocs, ceiling)
				}
			}
		})
	}
}
