package heuristics

import (
	"reflect"
	"testing"

	"ocd/internal/core"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

// TestHeuristicsDeterministicOnTransitStub is the cross-heuristic half of
// the determinism contract (the fault-plan replay tests cover the faulted
// engine): every registered heuristic, run twice on the same seeded
// transit-stub instance, must produce byte-identical schedules and
// statistics. detrand and maporder enforce the property statically; this
// test catches whatever slips past them (e.g. order-sensitive use of an
// injected PRNG).
func TestHeuristicsDeterministicOnTransitStub(t *testing.T) {
	g, err := topology.TransitStubN(24, topology.CapRange{Min: 1, Max: 3}, 7)
	if err != nil {
		t.Fatalf("transit-stub topology: %v", err)
	}
	inst := workload.SingleFile(g, 12)

	type namedFactory struct {
		name    string
		factory sim.Factory
	}
	factories := make([]namedFactory, 0, len(Names())+1)
	for _, name := range Names() {
		f, ok := Named(name)
		if !ok {
			t.Fatalf("Named(%q) not registered", name)
		}
		factories = append(factories, namedFactory{name, f})
	}
	// The §5.1 knowledge-delay relaxation keeps per-run history; include
	// it so the stale-view path is covered too.
	factories = append(factories, namedFactory{"local-delayed-3", LocalDelayed(3)})

	for _, nf := range factories {
		nf := nf
		t.Run(nf.name, func(t *testing.T) {
			const seed = 42
			run := func() *sim.Result {
				res, err := sim.Run(inst.Clone(), nf.factory, sim.Options{Seed: seed, IdlePatience: 4})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return res
			}
			first, second := run(), run()
			if !reflect.DeepEqual(first.Schedule, second.Schedule) {
				t.Fatalf("heuristic %s is nondeterministic: two runs with seed %d diverge\nfirst:  %v\nsecond: %v",
					nf.name, seed, first.Schedule, second.Schedule)
			}
			for _, check := range []struct {
				what string
				a, b int
			}{
				{"makespan", first.Steps, second.Steps},
				{"moves", first.Moves, second.Moves},
				{"rejected", first.Rejected, second.Rejected},
			} {
				if check.a != check.b {
					t.Errorf("heuristic %s: %s differs across identical runs: %d vs %d",
						nf.name, check.what, check.a, check.b)
				}
			}
			if err := core.Validate(inst, first.Schedule); err != nil {
				t.Errorf("heuristic %s: schedule fails validation: %v", nf.name, err)
			}
		})
	}
}
