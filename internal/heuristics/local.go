package heuristics

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/sim"
)

// Local builds the §5.1 "rarest random" heuristic. At the start of every
// timestep the aggregate have/want vectors are distributed to all vertices
// (the paper assumes a multicast tree does this). Each vertex then requests
// the tokens it lacks from its in-neighbors, rarest first, subdividing its
// needs across distinct neighbors so that two peers do not send the same
// rare token to the same destination. Tokens the vertex actually wants are
// requested before tokens fetched only to increase diversity (the general-
// problem extension: both the want aggregate and the not-have aggregate are
// distributed).
var Local sim.Factory = newLocal

type localStrategy struct{}

func newLocal(_ *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
	return localStrategy{}, nil
}

func (localStrategy) Name() string { return "local" }

func (localStrategy) Plan(st *sim.State) []core.Move {
	counts := haveCounts(st)
	rem := newResidual(st.Inst)
	var moves []core.Move
	order := st.Rand.Perm(st.Inst.N())
	for _, v := range order {
		moves = appendRequests(st, counts, rem, v, moves)
	}
	return moves
}

// appendRequests assigns vertex v's missing tokens to in-neighbor holders
// with residual capacity, wanted tokens first, rarest first within each
// class, and returns the extended move list.
func appendRequests(st *sim.State, counts []int, rem residual, v int, moves []core.Move) []core.Move {
	in := st.Inst.G.In(v)
	if len(in) == 0 {
		return moves
	}
	wanted := st.Missing(v)
	other := st.Lacking(v)
	other.DifferenceWith(wanted)
	for _, class := range []([]int){
		tokensByRarity(wanted, counts, st.Rand),
		tokensByRarity(other, counts, st.Rand),
	} {
		for _, t := range class {
			// Pick a random holder among in-neighbors with spare capacity.
			best := -1
			seen := 0
			for _, a := range in {
				if !st.Possess[a.From].Has(t) || rem.left(a.From, v) <= 0 {
					continue
				}
				seen++
				if st.Rand.Intn(seen) == 0 {
					best = a.From
				}
			}
			if best == -1 {
				continue
			}
			rem.take(best, v)
			moves = append(moves, core.Move{From: best, To: v, Token: t})
		}
	}
	return moves
}
