package heuristics

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
)

// Local builds the §5.1 "rarest random" heuristic. At the start of every
// timestep the aggregate have/want vectors are distributed to all vertices
// (the paper assumes a multicast tree does this). Each vertex then requests
// the tokens it lacks from its in-neighbors, rarest first, subdividing its
// needs across distinct neighbors so that two peers do not send the same
// rare token to the same destination. Tokens the vertex actually wants are
// requested before tokens fetched only to increase diversity (the general-
// problem extension: both the want aggregate and the not-have aggregate are
// distributed).
var Local sim.Factory = newLocal

// localStrategy owns the per-run scratch buffers; everything below is
// overwritten at the top of each Plan call, so a run's steady state plans a
// whole timestep without heap allocation (beyond the returned moves growing
// once to their high-water mark).
type localStrategy struct {
	rem    residual
	sorter raritySorter
	//ocd:scratch
	perm []int
	//ocd:scratch
	wanted tokenset.Set
	//ocd:scratch
	other tokenset.Set
	//ocd:scratch
	tokens []int
	moves  []core.Move
}

func newLocal(inst *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
	return &localStrategy{
		wanted: tokenset.New(inst.NumTokens),
		other:  tokenset.New(inst.NumTokens),
	}, nil
}

func (l *localStrategy) Name() string { return "local" }

func (l *localStrategy) Plan(st *sim.State) []core.Move {
	counts := st.HaveCounts()
	l.rem.reset(st.Inst.G)
	l.moves = l.moves[:0]
	l.perm = permInto(l.perm, st.Rand, st.Inst.N())
	for _, v := range l.perm {
		l.appendRequests(st, counts, v)
	}
	return l.moves
}

// appendRequests assigns vertex v's missing tokens to in-neighbor holders
// with residual capacity, wanted tokens first, rarest first within each
// class.
func (l *localStrategy) appendRequests(st *sim.State, counts []int, v int) {
	if len(st.Inst.G.In(v)) == 0 {
		return
	}
	st.MissingInto(v, l.wanted)
	st.LackingInto(v, l.other)
	l.other.DifferenceWith(l.wanted)
	// Both classes are shuffled before any holder is drawn, matching the
	// rand-stream order of the original two-slice formulation.
	n := st.Inst.N()
	l.tokens = appendTokensByRarity(&l.sorter, l.tokens[:0], l.wanted, counts, n, st.Rand)
	wantedEnd := len(l.tokens)
	l.tokens = appendTokensByRarity(&l.sorter, l.tokens, l.other, counts, n, st.Rand)
	// Wanted tokens before diversity tokens. Passing the two reslices as
	// plain call arguments keeps the scratch buffer out of any composite
	// literal, which scratchalias cannot prove transient.
	l.requestClass(st, v, l.tokens[:wantedEnd])
	l.requestClass(st, v, l.tokens[wantedEnd:])
}

// requestClass assigns each token in class to a random in-neighbor holder
// of v with residual capacity, in class order.
func (l *localStrategy) requestClass(st *sim.State, v int, class []int) {
	in := st.Inst.G.In(v)
	inIDs := st.Inst.G.InArcIDs(v)
	for _, t := range class {
		// Pick a random holder among in-neighbors with spare capacity.
		best := -1
		var bestID int32
		seen := 0
		for i, a := range in {
			if !st.Possess[a.From].Has(t) || l.rem.leftID(inIDs[i]) <= 0 {
				continue
			}
			seen++
			if st.Rand.Intn(seen) == 0 {
				best, bestID = a.From, inIDs[i]
			}
		}
		if best == -1 {
			continue
		}
		l.rem.takeID(bestID)
		l.moves = append(l.moves, core.Move{From: best, To: v, Token: t})
	}
}
