package heuristics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/sim"
)

// workloadSpec is a generatable random workload for property testing.
type workloadSpec struct {
	Seed    int64
	N       uint8
	Tokens  uint8
	Wanters uint8
}

// build materializes a connected instance: 4..12 vertices, 1..8 tokens,
// random holders, and 1..n random wanters per token.
func (s workloadSpec) build() *core.Instance {
	n := int(s.N%9) + 4
	m := int(s.Tokens%8) + 1
	rng := rand.New(rand.NewSource(s.Seed))
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(perm[i], perm[rng.Intn(i)], 1+rng.Intn(3))
	}
	// A few chords for mesh structure.
	for e := 0; e < n/2; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasArc(u, v) {
			_ = g.AddEdge(u, v, 1+rng.Intn(3))
		}
	}
	inst := core.NewInstance(g, m)
	for t := 0; t < m; t++ {
		inst.Have[rng.Intn(n)].Add(t)
		for w := 0; w <= int(s.Wanters)%3; w++ {
			inst.Want[rng.Intn(n)].Add(t)
		}
	}
	return inst
}

// TestQuickEveryHeuristicSoundOnRandomWorkloads is the grand invariant:
// every heuristic, on any random connected workload, completes within the
// horizon, produces a schedule the strict validator accepts, never has a
// move rejected, and never beats the lower bounds.
func TestQuickEveryHeuristicSoundOnRandomWorkloads(t *testing.T) {
	for i, factory := range All() {
		name := Names()[i]
		f := func(spec workloadSpec) bool {
			inst := spec.build()
			res, err := sim.Run(inst, factory, sim.Options{Seed: spec.Seed, Prune: true})
			if err != nil || !res.Completed || res.Rejected != 0 {
				return false
			}
			if core.Validate(inst, res.Schedule) != nil {
				return false
			}
			if res.Steps < core.MakespanLowerBound(inst, nil) {
				return false
			}
			return res.PrunedMoves >= core.BandwidthLowerBound(inst, nil)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// delayedHorizon is the step budget for the stale-knowledge variant: every
// productive step of the current-knowledge argument behind Theorem 1 can be
// deferred by up to `delay` turns of staleness, so the m·(n−1) horizon is
// stretched by that factor. The default horizon is too tight when m·(n−1)
// is tiny (e.g. one token on four vertices with delay 3).
func delayedHorizon(inst *core.Instance, delay int) int {
	return (delay+1)*inst.TheoremOneHorizon() + delay
}

// TestQuickDelayedLocalSound extends the invariant to the stale-knowledge
// variant (with the idle patience its bootstrap needs).
func TestQuickDelayedLocalSound(t *testing.T) {
	f := func(spec workloadSpec, delay uint8) bool {
		d := int(delay % 4)
		inst := spec.build()
		res, err := sim.Run(inst, LocalDelayed(d), sim.Options{
			Seed: spec.Seed, IdlePatience: d + 1,
			MaxSteps: delayedHorizon(inst, d),
		})
		if err != nil || !res.Completed {
			return false
		}
		return core.Validate(inst, res.Schedule) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDelayedLocalTightHorizon pins a workload where the default Theorem 1
// horizon (m·(n−1) = 3 steps) is structurally too short for delay-3
// knowledge: a two-hop relay cannot even observe the intermediate holder
// until step 4. The stretched horizon must suffice.
func TestDelayedLocalTightHorizon(t *testing.T) {
	spec := workloadSpec{Seed: 1008803149138198884, N: 0x87, Tokens: 0xc0, Wanters: 0x25}
	const d = 3
	inst := spec.build()
	res, err := sim.Run(inst, LocalDelayed(d), sim.Options{
		Seed: spec.Seed, IdlePatience: d + 1,
		MaxSteps: delayedHorizon(inst, d),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("not completed in %d steps", res.Steps)
	}
	if verr := core.Validate(inst, res.Schedule); verr != nil {
		t.Fatal(verr)
	}
}
