package heuristics

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/sim"
)

// Random builds the basic random heuristic: each vertex knows, at the start
// of the turn, which tokens each out-neighbor possesses (§5.1 assumes peers
// exchange this at turn granularity), and independently picks a uniform
// random subset of the tokens the peer lacks, up to the arc capacity.
// Vertices do not coordinate, so two peers may send the same token to the
// same destination in the same turn.
var Random sim.Factory = newRandom

type randomStrategy struct{}

func newRandom(_ *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
	return randomStrategy{}, nil
}

func (randomStrategy) Name() string { return "random" }

func (randomStrategy) Plan(st *sim.State) []core.Move {
	var moves []core.Move
	for u := 0; u < st.Inst.N(); u++ {
		if st.Possess[u].Empty() {
			continue
		}
		for _, a := range st.Inst.G.Out(u) {
			candidates := st.Possess[u].Difference(st.Possess[a.To]).Slice()
			if len(candidates) == 0 {
				continue
			}
			st.Rand.Shuffle(len(candidates), func(i, j int) {
				candidates[i], candidates[j] = candidates[j], candidates[i]
			})
			k := a.Cap
			if k > len(candidates) {
				k = len(candidates)
			}
			for _, t := range candidates[:k] {
				moves = append(moves, core.Move{From: u, To: a.To, Token: t})
			}
		}
	}
	return moves
}
