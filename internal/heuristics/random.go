package heuristics

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/sim"
	"ocd/internal/tokenset"
)

// Random builds the basic random heuristic: each vertex knows, at the start
// of the turn, which tokens each out-neighbor possesses (§5.1 assumes peers
// exchange this at turn granularity), and independently picks a uniform
// random subset of the tokens the peer lacks, up to the arc capacity.
// Vertices do not coordinate, so two peers may send the same token to the
// same destination in the same turn.
var Random sim.Factory = newRandom

// randomStrategy reuses one candidate set and one token buffer for every
// arc it plans, instead of materializing a fresh difference set per arc.
type randomStrategy struct {
	//ocd:scratch
	cand tokenset.Set
	//ocd:scratch
	buf   []int
	moves []core.Move
}

func newRandom(inst *core.Instance, _ *rand.Rand) (sim.Strategy, error) {
	return &randomStrategy{cand: tokenset.New(inst.NumTokens)}, nil
}

func (r *randomStrategy) Name() string { return "random" }

func (r *randomStrategy) Plan(st *sim.State) []core.Move {
	r.moves = r.moves[:0]
	for u := 0; u < st.Inst.N(); u++ {
		if st.Possess[u].Empty() {
			continue
		}
		for _, a := range st.Inst.G.Out(u) {
			r.cand.SetDifference(st.Possess[u], st.Possess[a.To])
			r.buf = r.cand.AppendTo(r.buf[:0])
			if len(r.buf) == 0 {
				continue
			}
			st.Rand.Shuffle(len(r.buf), func(i, j int) {
				r.buf[i], r.buf[j] = r.buf[j], r.buf[i]
			})
			k := a.Cap
			if k > len(r.buf) {
				k = len(r.buf)
			}
			for _, t := range r.buf[:k] {
				r.moves = append(r.moves, core.Move{From: u, To: a.To, Token: t})
			}
		}
	}
	return r.moves
}
