//go:build race

package heuristics

// raceEnabled reports whether the race detector is compiled in; allocation
// guards skip under it because instrumentation changes allocation counts.
const raceEnabled = true
