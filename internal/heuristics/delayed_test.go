package heuristics

import (
	"testing"

	"ocd/internal/core"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func TestLocalDelayedZeroMatchesName(t *testing.T) {
	f := LocalDelayed(0)
	g, err := topology.Line(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := f(workload.SingleFile(g, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if strat.Name() != "local" {
		t.Errorf("delay-0 name = %q", strat.Name())
	}
	if s, _ := LocalDelayed(3)(workload.SingleFile(g, 1), nil); s.Name() != "local-delayed" {
		t.Errorf("delayed name = %q", s.Name())
	}
}

func TestLocalDelayedCompletesAndValidates(t *testing.T) {
	g, err := topology.Random(20, topology.DefaultCaps, 6)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 16)
	for _, delay := range []int{0, 1, 3, 6} {
		res, err := sim.Run(inst, LocalDelayed(delay), sim.Options{
			Seed: 2, Prune: true, IdlePatience: delay + 1,
		})
		if err != nil {
			t.Fatalf("delay %d: %v", delay, err)
		}
		if !res.Completed {
			t.Fatalf("delay %d: incomplete", delay)
		}
		if err := core.Validate(inst, res.Schedule); err != nil {
			t.Fatalf("delay %d: invalid schedule: %v", delay, err)
		}
	}
}

func TestLocalDelayedStalenessCosts(t *testing.T) {
	// Stale views must never beat fresh ones on makespan (aggregated over
	// seeds to smooth tie-breaking randomness).
	g, err := topology.Random(25, topology.DefaultCaps, 9)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 24)
	total := func(delay int) int {
		sum := 0
		for seed := int64(0); seed < 4; seed++ {
			res, err := sim.Run(inst, LocalDelayed(delay), sim.Options{
				Seed: seed, IdlePatience: delay + 1,
			})
			if err != nil {
				t.Fatalf("delay %d seed %d: %v", delay, seed, err)
			}
			sum += res.Steps
		}
		return sum
	}
	fresh, stale := total(0), total(5)
	if stale < fresh {
		t.Errorf("stale knowledge (%d total turns) beat fresh (%d)", stale, fresh)
	}
}
