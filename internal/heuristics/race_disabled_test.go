//go:build !race

package heuristics

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
