package exact

import (
	"errors"
	"math/rand"
	"testing"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/workload"
)

func lineInstance(t *testing.T, n, m, c int) *core.Instance {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddArc(i, i+1, c); err != nil {
			t.Fatal(err)
		}
	}
	inst := core.NewInstance(g, m)
	inst.Have[0].AddRange(0, m)
	inst.Want[n-1].AddRange(0, m)
	return inst
}

func TestFOCDLineOptimum(t *testing.T) {
	// One token over a 4-hop path: optimum is exactly 4 steps.
	inst := lineInstance(t, 5, 1, 1)
	sched, err := SolveFOCD(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Makespan(); got != 4 {
		t.Errorf("makespan = %d, want 4", got)
	}
	if err := core.Validate(inst, sched); err != nil {
		t.Errorf("optimal schedule invalid: %v", err)
	}
}

func TestFOCDPipelining(t *testing.T) {
	// 3 tokens over 2 hops at capacity 1: pipeline finishes in 2+3−1 = 4.
	inst := lineInstance(t, 3, 3, 1)
	sched, err := SolveFOCD(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Makespan(); got != 4 {
		t.Errorf("makespan = %d, want 4 (pipelined)", got)
	}
}

func TestFOCDCapacityBound(t *testing.T) {
	// 6 tokens over one capacity-2 arc: ceil(6/2) = 3 steps.
	inst := lineInstance(t, 2, 6, 2)
	sched, err := SolveFOCD(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Makespan(); got != 3 {
		t.Errorf("makespan = %d, want 3", got)
	}
}

func TestFOCDFigure1(t *testing.T) {
	inst := workload.Figure1()
	sched, err := SolveFOCD(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Makespan(); got != 2 {
		t.Errorf("Figure 1 optimal makespan = %d, want 2", got)
	}
	if err := core.Validate(inst, sched); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestFOCDAlreadyDone(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	inst.Want[2].Clear()
	sched, err := SolveFOCD(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan() != 0 {
		t.Errorf("trivial instance needed %d steps", sched.Makespan())
	}
}

func TestFOCDUnsatisfiable(t *testing.T) {
	g := graph.New(2)
	if err := g.AddArc(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	inst := core.NewInstance(g, 1)
	inst.Have[1].Add(0)
	inst.Want[0].Add(0) // against the arc direction
	if _, err := SolveFOCD(inst, Options{}); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("want ErrUnsatisfiable, got %v", err)
	}
}

func TestFOCDBudget(t *testing.T) {
	inst := workload.Figure1()
	if _, err := SolveFOCD(inst, Options{MaxNodes: 1, MaxSteps: 1}); err == nil {
		t.Error("expected failure under a 1-node budget")
	}
}

func TestEOCDFigure1(t *testing.T) {
	inst := workload.Figure1()
	cheap, err := SolveEOCD(inst, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := cheap.Moves(); got != 4 {
		t.Errorf("EOCD optimum = %d moves, want 4", got)
	}
	if got := cheap.Makespan(); got != 3 {
		t.Errorf("EOCD schedule takes %d steps, want 3", got)
	}
	atFast, err := SolveEOCD(inst, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := atFast.Moves(); got != 6 {
		t.Errorf("EOCD@tau=2 = %d moves, want 6", got)
	}
}

func TestEOCDLine(t *testing.T) {
	// 2 tokens over 2 hops: 4 moves regardless of horizon ≥ 3.
	inst := lineInstance(t, 3, 2, 2)
	sched, err := SolveEOCD(inst, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Moves(); got != 4 {
		t.Errorf("moves = %d, want 4", got)
	}
	if err := core.Validate(inst, sched); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestEOCDInfeasibleHorizon(t *testing.T) {
	inst := lineInstance(t, 4, 1, 1) // needs 3 steps
	if _, err := SolveEOCD(inst, 2, Options{}); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("want ErrUnsatisfiable for tight horizon, got %v", err)
	}
}

func TestExactDominatesHeuristics(t *testing.T) {
	// Property: the exact FOCD makespan never exceeds any heuristic's, and
	// exact EOCD bandwidth never exceeds any pruned heuristic bandwidth.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(3)
		m := 1 + rng.Intn(2)
		g := graph.New(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			if err := g.AddEdge(perm[i], perm[rng.Intn(i)], 1+rng.Intn(2)); err != nil {
				t.Fatal(err)
			}
		}
		inst := core.NewInstance(g, m)
		for tok := 0; tok < m; tok++ {
			inst.Have[rng.Intn(n)].Add(tok)
			inst.Want[rng.Intn(n)].Add(tok)
		}
		fast, err := SolveFOCD(inst, Options{})
		if err != nil {
			t.Fatalf("trial %d: focd: %v", trial, err)
		}
		cheap, err := SolveEOCD(inst, 0, Options{})
		if err != nil {
			t.Fatalf("trial %d: eocd: %v", trial, err)
		}
		if lb := core.MakespanLowerBound(inst, nil); fast.Makespan() < lb {
			t.Errorf("trial %d: optimum %d below lower bound %d", trial, fast.Makespan(), lb)
		}
		if lb := core.BandwidthLowerBound(inst, nil); cheap.Moves() < lb {
			t.Errorf("trial %d: optimum %d below bandwidth bound %d", trial, cheap.Moves(), lb)
		}
		for i, factory := range heuristics.All() {
			res, err := sim.Run(inst, factory, sim.Options{Seed: int64(trial), Prune: true})
			if err != nil || !res.Completed {
				continue // heuristic failures are caught elsewhere
			}
			if res.Steps < fast.Makespan() {
				t.Errorf("trial %d: heuristic %s beat the optimal makespan (%d < %d)",
					trial, heuristics.Names()[i], res.Steps, fast.Makespan())
			}
			if res.PrunedMoves < cheap.Moves() {
				t.Errorf("trial %d: heuristic %s beat the optimal bandwidth (%d < %d)",
					trial, heuristics.Names()[i], res.PrunedMoves, cheap.Moves())
			}
		}
	}
}

func TestTheoremOneHorizonSufficient(t *testing.T) {
	// Theorem 1: any satisfiable instance completes within m(n−1) moves,
	// hence within m(n−1) timesteps. The default EOCD horizon relies on
	// this; verify on random satisfiable instances.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5; trial++ {
		n := 3 + rng.Intn(2)
		g := graph.New(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			if err := g.AddEdge(perm[i], perm[rng.Intn(i)], 1); err != nil {
				t.Fatal(err)
			}
		}
		inst := core.NewInstance(g, 2)
		inst.Have[0].AddRange(0, 2)
		inst.Want[n-1].AddRange(0, 2)
		sched, err := SolveEOCD(inst, 0, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sched.Moves() > inst.TheoremOneHorizon() {
			t.Errorf("trial %d: optimum %d exceeds Theorem 1 horizon %d",
				trial, sched.Moves(), inst.TheoremOneHorizon())
		}
	}
}

func TestCombinations(t *testing.T) {
	got := combinations([]int{1, 2, 3, 4}, 2)
	if len(got) != 6 {
		t.Errorf("C(4,2) = %d subsets, want 6", len(got))
	}
	if len(combinations([]int{1, 2}, 2)) != 1 {
		t.Error("C(2,2) != 1")
	}
	if len(combinations([]int{1, 2, 3}, 1)) != 3 {
		t.Error("C(3,1) != 3")
	}
}
