package exact

import (
	"errors"
	"fmt"
	"sort"

	"ocd/internal/core"
	"ocd/internal/tokenset"
)

// errOptimal is an internal sentinel: the incumbent has met the global
// §5.1 bandwidth lower bound, so the rest of the search tree cannot
// improve on it and the whole search stops early. internal/ilp applies
// the same certificate to its branch-and-bound loop.
var errOptimal = errors.New("exact: incumbent meets global lower bound")

// SolveEOCD returns a successful schedule using the minimum number of moves
// (the EOCD optimum) among schedules of length at most horizon. With
// horizon ≥ the Theorem 1 bound m·(n−1) this is the unconstrained EOCD
// optimum; smaller horizons explore the §3.4 time/bandwidth tradeoff (the
// Figure 1 tension).
//
// The search branches per timestep over subsets of *useful and relevant*
// moves: a move (u,v,t) is relevant only if some vertex that still needs t
// is reachable from v (a static filter computed once per token). Cost is
// bounded below by the §5.1 remaining-bandwidth count, and the incumbent
// enables branch-and-bound pruning.
func SolveEOCD(inst *core.Instance, horizon int, opts Options) (*core.Schedule, error) {
	if err := inst.Check(); err != nil {
		return nil, err
	}
	if !inst.Satisfiable() {
		return nil, ErrUnsatisfiable
	}
	if horizon <= 0 {
		horizon = inst.TheoremOneHorizon()
	}
	s := &eocdSearch{
		inst:     inst,
		budget:   opts.nodes(),
		best:     nil,
		memo:     make(map[memoKey]int),
		relSink:  relevanceSets(inst),
		globalLB: core.BandwidthLowerBound(inst, nil),
	}
	start := inst.InitialPossession()
	if core.Done(inst, start) {
		return &core.Schedule{}, nil
	}
	s.cur = &core.Schedule{}
	if err := s.dfs(start, horizon, 0); err != nil && !errors.Is(err, errOptimal) {
		return nil, err
	}
	if s.best == nil {
		return nil, fmt.Errorf("%w within %d steps", ErrUnsatisfiable, horizon)
	}
	return s.best, nil
}

type memoKey struct {
	hash uint64
	left int
}

type eocdSearch struct {
	inst    *core.Instance
	budget  int
	nodes   int
	cur     *core.Schedule
	best    *core.Schedule
	bestLen int
	// memo maps (possession, stepsLeft) → best cost-so-far seen; states
	// revisited with equal or higher cost are pruned.
	memo map[memoKey]int
	// relSink[t] is the set of vertices from which some wanter of t is
	// reachable: moves delivering t elsewhere can never help.
	relSink []tokenset.Set
	// globalLB is the §5.1 bandwidth lower bound from the initial
	// possession — a certificate of optimality for any incumbent that
	// reaches it.
	globalLB int
}

// relevanceSets computes, per token, the set of vertices that can still be
// on a useful path: vertices from which at least one wanter of t is
// reachable. (Bitsets indexed by vertex, reusing tokenset.Set.)
func relevanceSets(inst *core.Instance) []tokenset.Set {
	n := inst.N()
	out := make([]tokenset.Set, inst.NumTokens)
	for t := 0; t < inst.NumTokens; t++ {
		set := tokenset.New(n)
		var wanters []int
		for v := 0; v < n; v++ {
			if inst.Want[v].Has(t) {
				wanters = append(wanters, v)
			}
		}
		dist := inst.G.MultiSourceBFSTo(wanters)
		for v := 0; v < n; v++ {
			if dist[v] >= 0 {
				set.Add(v)
			}
		}
		out[t] = set
	}
	return out
}

func (s *eocdSearch) dfs(possess []tokenset.Set, left, cost int) error {
	if core.Done(s.inst, possess) {
		if s.best == nil || cost < s.bestLen {
			s.best = s.cur.Clone()
			s.bestLen = cost
			if s.bestLen <= s.globalLB {
				return errOptimal
			}
		}
		return nil
	}
	if left == 0 {
		return nil
	}
	s.nodes++
	if s.nodes > s.budget {
		return ErrBudget
	}
	lb := core.BandwidthLowerBound(s.inst, possess)
	if s.best != nil && cost+lb >= s.bestLen {
		return nil
	}
	key := memoKey{hash: possessionHash(possess), left: left}
	if seen, ok := s.memo[key]; ok && seen <= cost {
		return nil
	}
	s.memo[key] = cost

	moves := s.usefulMoves(possess)
	if len(moves) == 0 {
		return nil
	}
	// Enumerate subsets of candidate moves respecting arc capacities,
	// largest subsets first so a good incumbent is found early. Empty
	// subsets are excluded: an idle step is never cheaper than skipping it.
	subsets := capacitySubsets(s.inst, moves)
	sort.Slice(subsets, func(i, j int) bool { return len(subsets[i]) > len(subsets[j]) })
	for _, st := range subsets {
		next := applyStep(possess, st)
		s.cur.Append(st)
		err := s.dfs(next, left-1, cost+len(st))
		s.cur.Steps = s.cur.Steps[:len(s.cur.Steps)-1]
		if err != nil {
			return err
		}
	}
	return nil
}

// usefulMoves lists moves (u,v,t) where u has t, v lacks it, and v can
// still forward t toward (or is itself) a wanter.
func (s *eocdSearch) usefulMoves(possess []tokenset.Set) []core.Move {
	var out []core.Move
	for _, a := range s.inst.G.Arcs() {
		useful := possess[a.From].Difference(possess[a.To])
		useful.ForEach(func(t int) bool {
			if s.relSink[t].Has(a.To) {
				out = append(out, core.Move{From: a.From, To: a.To, Token: t})
			}
			return true
		})
	}
	return out
}

// capacitySubsets enumerates every non-empty subset of moves that respects
// per-arc capacities.
func capacitySubsets(inst *core.Instance, moves []core.Move) []core.Step {
	var out []core.Step
	used := make(map[[2]int]int)
	cur := make(core.Step, 0, len(moves))
	var rec func(i int)
	rec = func(i int) {
		if i == len(moves) {
			if len(cur) > 0 {
				out = append(out, append(core.Step(nil), cur...))
			}
			return
		}
		mv := moves[i]
		key := [2]int{mv.From, mv.To}
		if used[key] < inst.G.Cap(mv.From, mv.To) {
			used[key]++
			cur = append(cur, mv)
			rec(i + 1)
			cur = cur[:len(cur)-1]
			used[key]--
		}
		rec(i + 1)
	}
	rec(0)
	return out
}
