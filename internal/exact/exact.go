// Package exact computes optimal solutions of the Overlay Content
// Distribution problem for small graphs, the "simple algorithm … and a
// branch-and-bound search strategy" the paper uses to calibrate its
// heuristics (§1, §3).
//
// SolveFOCD finds a minimum-makespan schedule by iterative deepening over
// the schedule length with memoized depth-first search; SolveEOCD finds a
// minimum-bandwidth schedule within a timestep horizon by branch-and-bound
// over per-step move subsets. Both are exponential — FOCD is NP-complete
// (Theorem 3) — so both take a search-node budget and fail cleanly when it
// is exhausted.
package exact

import (
	"errors"
	"fmt"

	"ocd/internal/core"
	"ocd/internal/tokenset"
)

// ErrBudget is returned when the search exceeds its node budget.
var ErrBudget = errors.New("exact: search budget exhausted")

// ErrUnsatisfiable is returned when no schedule can satisfy the instance.
var ErrUnsatisfiable = errors.New("exact: instance is unsatisfiable")

// Options bounds the search.
type Options struct {
	// MaxNodes caps the number of search nodes expanded (0 = 5e6).
	MaxNodes int
	// MaxSteps caps the makespan considered (0 = the Theorem 1 horizon).
	MaxSteps int
}

func (o Options) nodes() int {
	if o.MaxNodes <= 0 {
		return 5_000_000
	}
	return o.MaxNodes
}

// ----------------------------------------------------------------------
// FOCD: minimum makespan.

// SolveFOCD returns a successful schedule of minimum length (the FOCD
// optimum τ). It iteratively deepens on τ starting from the admissible
// radius-closure lower bound; each depth-limited search enumerates only
// maximal useful move sets (for makespan, possession is monotone: sending
// strictly more useful tokens never delays completion).
func SolveFOCD(inst *core.Instance, opts Options) (*core.Schedule, error) {
	if err := inst.Check(); err != nil {
		return nil, err
	}
	if !inst.Satisfiable() {
		return nil, ErrUnsatisfiable
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = inst.TheoremOneHorizon()
	}
	s := &focdSearch{
		inst:   inst,
		budget: opts.nodes(),
		memo:   make(map[uint64]int),
	}
	start := inst.InitialPossession()
	if core.Done(inst, start) {
		return &core.Schedule{}, nil
	}
	lb := core.MakespanLowerBound(inst, start)
	if lb < 1 {
		lb = 1
	}
	for tau := lb; tau <= maxSteps; tau++ {
		s.sched = &core.Schedule{}
		ok, err := s.dfs(start, tau)
		if err != nil {
			return nil, err
		}
		if ok {
			return s.sched, nil
		}
		// Memo entries record failure at a given remaining depth; they stay
		// valid across deepenings because we store the depth that failed.
	}
	return nil, fmt.Errorf("%w within %d steps", ErrUnsatisfiable, maxSteps)
}

type focdSearch struct {
	inst   *core.Instance
	budget int
	nodes  int
	// memo maps possession-hash → largest remaining-step count proven
	// insufficient from that possession.
	memo  map[uint64]int
	sched *core.Schedule
}

func possessionHash(p []tokenset.Set) uint64 {
	h := uint64(14695981039346656037)
	for _, s := range p {
		h ^= s.Hash()
		h *= 1099511628211
	}
	return h
}

// dfs reports whether the instance completes within `left` further steps.
func (s *focdSearch) dfs(possess []tokenset.Set, left int) (bool, error) {
	if core.Done(s.inst, possess) {
		return true, nil
	}
	if left == 0 {
		return false, nil
	}
	s.nodes++
	if s.nodes > s.budget {
		return false, ErrBudget
	}
	if core.MakespanLowerBound(s.inst, possess) > left {
		return false, nil
	}
	key := possessionHash(possess)
	if failed, ok := s.memo[key]; ok && failed >= left {
		return false, nil
	}

	steps := enumerateMaximalSteps(s.inst, possess)
	for _, st := range steps {
		next := applyStep(possess, st)
		s.sched.Append(st)
		ok, err := s.dfs(next, left-1)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
		s.sched.Steps = s.sched.Steps[:len(s.sched.Steps)-1]
	}
	if prev, ok := s.memo[key]; !ok || left > prev {
		s.memo[key] = left
	}
	return false, nil
}

func applyStep(possess []tokenset.Set, st core.Step) []tokenset.Set {
	next := make([]tokenset.Set, len(possess))
	for v := range possess {
		next[v] = possess[v].Clone()
	}
	for _, mv := range st {
		next[mv.To].Add(mv.Token)
	}
	return next
}

// enumerateMaximalSteps lists the candidate move sets for one timestep: for
// every arc, all ways to pick min(cap, |useful|) tokens from the useful set
// (useful = tokens the sender has and the receiver lacks), crossed over
// arcs. Arcs with |useful| ≤ cap contribute exactly one (forced) choice.
func enumerateMaximalSteps(inst *core.Instance, possess []tokenset.Set) []core.Step {
	type arcChoice struct {
		from, to int
		options  [][]int
	}
	var choices []arcChoice
	var forced core.Step
	for _, a := range inst.G.Arcs() {
		useful := possess[a.From].Difference(possess[a.To]).Slice()
		if len(useful) == 0 {
			continue
		}
		if len(useful) <= a.Cap {
			for _, t := range useful {
				forced = append(forced, core.Move{From: a.From, To: a.To, Token: t})
			}
			continue
		}
		choices = append(choices, arcChoice{
			from:    a.From,
			to:      a.To,
			options: combinations(useful, a.Cap),
		})
	}

	if len(forced) == 0 && len(choices) == 0 {
		return nil // no useful move exists; the search node is a dead end
	}
	steps := []core.Step{forced}
	for _, c := range choices {
		var grown []core.Step
		for _, base := range steps {
			for _, opt := range c.options {
				st := make(core.Step, len(base), len(base)+len(opt))
				copy(st, base)
				for _, t := range opt {
					st = append(st, core.Move{From: c.from, To: c.to, Token: t})
				}
				grown = append(grown, st)
			}
		}
		steps = grown
	}
	return steps
}

// combinations returns all k-subsets of items.
func combinations(items []int, k int) [][]int {
	var out [][]int
	cur := make([]int, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i <= len(items)-(k-len(cur)); i++ {
			cur = append(cur, items[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}
