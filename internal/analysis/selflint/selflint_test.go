package selflint

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestRepoSelfLint is the repo-wide self-lint driver: it builds
// cmd/ocdlint, runs it as a vettool over every package in the module,
// and reconciles the findings with the suppressions ledger. A finding
// without a ledger entry fails; a ledger entry without a finding fails.
// Skipped under -short (it compiles the whole tree).
func TestRepoSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds ocdlint and vets the whole module; skipped in -short mode")
	}
	root := moduleRoot(t)

	bin := filepath.Join(t.TempDir(), "ocdlint")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	build := exec.Command("go", "build", "-o", bin, "ocd/cmd/ocdlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ocdlint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-json", "-vettool="+bin, "./...")
	vet.Dir = root
	var stdout, stderr bytes.Buffer
	vet.Stdout = &stdout
	vet.Stderr = &stderr
	runErr := vet.Run()

	// With -json the diagnostics stream on stderr and stdout stays empty;
	// parse both so a toolchain that flips them still works.
	findings, err := ParseVetJSON(strings.NewReader(stderr.String()+stdout.String()), root)
	if err != nil {
		t.Fatalf("parsing vet output: %v\nstderr:\n%s\nstdout:\n%s", err, stderr.String(), stdout.String())
	}
	// A vet exit error with no parsed findings means the run itself broke
	// (build failure, bad flag), not that the analyzers found something.
	if runErr != nil && len(findings) == 0 {
		t.Fatalf("go vet failed: %v\nstderr:\n%s", runErr, stderr.String())
	}

	entries := loadLedger(t)
	unledgered, stale := Reconcile(findings, entries)
	for _, f := range unledgered {
		t.Errorf("unledgered finding: %s: %s [%s]\n\tfix it, or add %q to suppressions.txt with a justification",
			f.Pos, f.Message, f.Analyzer, f.Analyzer+" "+f.Pos)
	}
	for _, e := range stale {
		t.Errorf("stale suppression (line %d): %q no longer matches any finding; delete it", e.Line, e.Key())
	}
	t.Logf("self-lint: %d findings, %d suppressed", len(findings), len(entries)-len(stale))
}

// moduleRoot resolves the module root from this package's position in
// the tree (internal/analysis/selflint is three levels down).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %s has no go.mod: %v", root, err)
	}
	return root
}

func loadLedger(t *testing.T) []Entry {
	t.Helper()
	f, err := os.Open("suppressions.txt")
	if err != nil {
		t.Fatalf("opening suppressions ledger: %v", err)
	}
	defer f.Close()
	entries, err := ParseLedger(f)
	if err != nil {
		t.Fatalf("parsing suppressions ledger: %v", err)
	}
	return entries
}

// TestLedgerParses keeps the checked-in ledger syntactically valid even
// under -short, where the full self-lint is skipped.
func TestLedgerParses(t *testing.T) {
	loadLedger(t)
}

const sampleVetJSON = `# ocd/internal/fake
{
	"ocd/internal/fake": {
		"scratchalias": [
			{
				"posn": "/work/repo/internal/fake/fake.go:10:2",
				"message": "scratch buffer buf returned to caller"
			},
			{
				"posn": "/work/repo/internal/fake/fake.go:20:3",
				"message": "scratch buffer tmp stored in a composite literal"
			}
		]
	}
}
# ocd/internal/other
{
	"ocd/internal/other": {
		"prngshare": [
			{
				"posn": "/work/repo/internal/other/o.go:7:5",
				"message": "*rand.Rand rng captured by goroutine closure"
			}
		]
	}
}
`

func TestParseVetJSON(t *testing.T) {
	findings, err := ParseVetJSON(strings.NewReader(sampleVetJSON), "/work/repo")
	if err != nil {
		t.Fatal(err)
	}
	want := []Finding{
		{Analyzer: "prngshare", Pos: "internal/other/o.go:7", Message: "*rand.Rand rng captured by goroutine closure"},
		{Analyzer: "scratchalias", Pos: "internal/fake/fake.go:10", Message: "scratch buffer buf returned to caller"},
		{Analyzer: "scratchalias", Pos: "internal/fake/fake.go:20", Message: "scratch buffer tmp stored in a composite literal"},
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d: %+v", len(findings), len(want), findings)
	}
	for i := range want {
		if findings[i] != want[i] {
			t.Errorf("finding[%d] = %+v, want %+v", i, findings[i], want[i])
		}
	}
}

func TestParseVetJSONGarbage(t *testing.T) {
	if _, err := ParseVetJSON(strings.NewReader("not json at all"), ""); err == nil {
		t.Fatal("want error for non-JSON vet output")
	}
}

func TestParseLedger(t *testing.T) {
	ledger := `# header comment

scratchalias internal/fake/fake.go:10 vendored benchmark helper, buffer lifetime audited 2026-08
prngshare internal/other/o.go:7 goroutine joins before next use; see run loop
`
	entries, err := ParseLedger(strings.NewReader(ledger))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2: %+v", len(entries), entries)
	}
	if entries[0].Key() != "scratchalias internal/fake/fake.go:10" || entries[0].Line != 3 {
		t.Errorf("entry[0] = %+v", entries[0])
	}
	if entries[1].Justification != "goroutine joins before next use; see run loop" {
		t.Errorf("entry[1] justification = %q", entries[1].Justification)
	}
}

func TestParseLedgerRejectsBareEntry(t *testing.T) {
	if _, err := ParseLedger(strings.NewReader("scratchalias internal/fake/fake.go:10\n")); err == nil {
		t.Fatal("want error for ledger entry without justification")
	}
}

func TestReconcile(t *testing.T) {
	findings := []Finding{
		{Analyzer: "scratchalias", Pos: "a.go:1", Message: "m1"},
		{Analyzer: "prngshare", Pos: "b.go:2", Message: "m2"},
	}
	entries := []Entry{
		{Analyzer: "scratchalias", Pos: "a.go:1", Justification: "ok", Line: 3},
		{Analyzer: "maporder", Pos: "c.go:9", Justification: "gone", Line: 4},
	}
	unledgered, stale := Reconcile(findings, entries)
	if len(unledgered) != 1 || unledgered[0].Key() != "prngshare b.go:2" {
		t.Errorf("unledgered = %+v", unledgered)
	}
	if len(stale) != 1 || stale[0].Key() != "maporder c.go:9" {
		t.Errorf("stale = %+v", stale)
	}
}

func TestReconcileCleanTree(t *testing.T) {
	unledgered, stale := Reconcile(nil, nil)
	if len(unledgered) != 0 || len(stale) != 0 {
		t.Errorf("empty inputs should reconcile cleanly, got %+v / %+v", unledgered, stale)
	}
}
