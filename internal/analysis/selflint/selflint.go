// Package selflint reconciles the repository's own vettool findings
// with a checked-in suppressions ledger.
//
// The repo-wide acceptance criterion for the analyzers is not "zero
// findings" but "zero unexplained findings": every diagnostic the six
// analyzers produce over ./... must either be fixed or carry a ledger
// entry with a justification, and every ledger entry must still match a
// live finding (stale entries rot into blanket permissions). The test in
// this package builds cmd/ocdlint, runs `go vet -json -vettool` over the
// module, and fails on both unledgered findings and stale entries.
//
// The ledger is suppressions.txt next to this file. Lines are
//
//	<analyzer> <file:line> <justification>
//
// with #-comments and blank lines ignored. file is module-root-relative;
// the column is deliberately dropped so reformatting within a line does
// not invalidate entries. Prefer in-source directives (//ocd:scratchok,
// //ocd:prngok, //ocd:orderinvariant) where an analyzer offers them —
// the ledger is for findings with no directive, or for third-party code
// the directives cannot touch.
package selflint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Finding is one diagnostic from the vettool, normalized for ledger
// matching: Pos is module-root-relative file:line (no column).
type Finding struct {
	Analyzer string
	Pos      string
	Message  string
}

// Key is the identity findings and ledger entries are matched on.
func (f Finding) Key() string { return f.Analyzer + " " + f.Pos }

// Entry is one suppressions-ledger line.
type Entry struct {
	Analyzer      string
	Pos           string
	Justification string
	// Line is the entry's line number in the ledger, for error messages.
	Line int
}

// Key mirrors Finding.Key.
func (e Entry) Key() string { return e.Analyzer + " " + e.Pos }

// vetDiagnostic is the JSON shape `go vet -json` emits per diagnostic.
type vetDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// ParseVetJSON parses a `go vet -json` stream: '#' package-header lines
// interleaved with JSON objects mapping package path -> analyzer ->
// diagnostics. root (with trailing separator behavior handled here) is
// stripped from positions to make them module-relative.
func ParseVetJSON(r io.Reader, root string) ([]Finding, error) {
	var jsonText strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		jsonText.WriteString(line)
		jsonText.WriteString("\n")
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("selflint: reading vet output: %w", err)
	}

	var findings []Finding
	dec := json.NewDecoder(strings.NewReader(jsonText.String()))
	for {
		var byPkg map[string]map[string][]vetDiagnostic
		if err := dec.Decode(&byPkg); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("selflint: decoding vet JSON: %w", err)
		}
		for _, byAnalyzer := range byPkg {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					findings = append(findings, Finding{
						Analyzer: analyzer,
						Pos:      normalizePos(d.Posn, root),
						Message:  d.Message,
					})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Key() < findings[j].Key() })
	return findings, nil
}

// normalizePos strips the module root and the column from a vet
// position, leaving root-relative file:line.
func normalizePos(posn, root string) string {
	if root != "" {
		posn = strings.TrimPrefix(posn, strings.TrimSuffix(root, "/")+"/")
	}
	// file:line:col -> file:line (paths on the platforms we build for do
	// not contain colons; vet always emits the column).
	if i := strings.LastIndexByte(posn, ':'); i > 0 {
		if j := strings.LastIndexByte(posn[:i], ':'); j > 0 {
			posn = posn[:i]
		}
	}
	return posn
}

// ParseLedger parses suppressions.txt: one entry per line, #-comments
// and blanks ignored. Every entry must carry a justification — an
// unexplained suppression is exactly what the ledger exists to prevent.
func ParseLedger(r io.Reader) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("selflint: suppressions line %d: want \"<analyzer> <file:line> <justification>\", got %q", line, text)
		}
		entries = append(entries, Entry{
			Analyzer:      fields[0],
			Pos:           fields[1],
			Justification: strings.Join(fields[2:], " "),
			Line:          line,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("selflint: reading suppressions: %w", err)
	}
	return entries, nil
}

// Reconcile diffs findings against ledger entries: findings with no
// entry are unledgered (must be fixed or ledgered); entries with no
// finding are stale (must be deleted). Both directions fail the
// self-lint.
func Reconcile(findings []Finding, entries []Entry) (unledgered []Finding, stale []Entry) {
	ledgered := make(map[string]bool, len(entries))
	for _, e := range entries {
		ledgered[e.Key()] = true
	}
	live := make(map[string]bool, len(findings))
	for _, f := range findings {
		live[f.Key()] = true
		if !ledgered[f.Key()] {
			unledgered = append(unledgered, f)
		}
	}
	for _, e := range entries {
		if !live[e.Key()] {
			stale = append(stale, e)
		}
	}
	return unledgered, stale
}
