// Package sched is a fixture stand-in for ocd/internal/core: a container
// whose Append method retains its argument.
package sched

// List retains every slice handed to Append.
type List struct {
	Steps [][]int
}

// Append stores st; the caller must not reuse st's backing array.
func (l *List) Append(st []int) { l.Steps = append(l.Steps, st) }
