// Package neg is the scratchalias negative-path fixture: returning a
// non-scratch buffer with a "want" annotation that must NOT fire, proving the
// harness reports unmatched expectations.
package neg

type planner struct {
	moves []int
}

func returnsOwnedBuffer(p *planner) []int {
	p.moves = append(p.moves[:0], 1)
	return p.moves // want `this diagnostic never fires`
}
