// Package a exercises the scratchalias analyzer: every escape of a
// designated scratch buffer must be flagged, and the sanctioned patterns
// (exact-size copies, scratch-to-scratch staging, justified directives)
// must stay silent.
package a

import "sched"

type planner struct {
	//ocd:scratch
	delivered []int
	// moves is deliberately NOT scratch: returning it is the sanctioned
	// per-step handoff.
	moves []int
	keep  []int
}

func returnsNamedScratch() []int {
	scratch := make([]int, 0, 8)
	scratch = append(scratch, 1)
	return scratch // want `scratch buffer scratch is returned`
}

func returnsAnnotatedField(p *planner) []int {
	p.delivered = p.delivered[:0]
	return p.delivered // want `scratch buffer p\.delivered is returned`
}

func returnsTaintedReslice(p *planner) []int {
	out := p.delivered[:0]
	out = append(out, 7)
	return out // want `scratch buffer out is returned`
}

func returnsMovesIsFine(p *planner) []int {
	p.moves = p.moves[:0]
	p.moves = append(p.moves, 1)
	return p.moves
}

func storesInNonScratchField(p *planner) {
	p.keep = p.delivered[:2] // want `scratch buffer p\.delivered stored in non-scratch field keep`
}

func scratchToScratchIsFine(p *planner) {
	scratchView := p.delivered[:0]
	p.delivered = append(scratchView, 3)
}

func exactSizeCopyIsFine(p *planner, l *sched.List) {
	out := make([]int, len(p.delivered))
	copy(out, p.delivered)
	l.Append(out)
}

func passedToRetainer(p *planner, l *sched.List) {
	l.Append(p.delivered) // want `scratch buffer p\.delivered passed to retaining callee \(sched\.List\)\.Append`
}

func sentOnChannel(p *planner, ch chan []int) {
	ch <- p.delivered // want `scratch buffer p\.delivered sent on a channel`
}

func capturedByGoroutine(p *planner, done chan struct{}) {
	go func() {
		_ = p.delivered // want `scratch buffer p\.delivered captured by a goroutine`
		close(done)
	}()
}

func storedInComposite(p *planner) sched.List {
	return sched.List{Steps: [][]int{
		p.delivered, // want `scratch buffer p\.delivered stored in a composite literal`
	}}
}

func storedInContainer(p *planner, steps [][]int) {
	steps[0] = p.delivered // want `scratch buffer p\.delivered stored in a container element`
}

func suppressedWithReason(p *planner) []int {
	//ocd:scratchok caller documented single-shot, never reused
	return p.delivered
}

func suppressedWithoutReason(p *planner) []int {
	//ocd:scratchok
	return p.delivered // want `directive requires a reason`
}

func readingElementsIsFine(p *planner) int {
	total := 0
	for _, v := range p.delivered {
		total += v
	}
	return total
}
