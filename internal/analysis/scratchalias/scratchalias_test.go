package scratchalias

import (
	"strings"
	"testing"

	"ocd/internal/analysis/analyzertest"
)

// setRetainers points the analyzer at the fixture's retaining callee for
// one test and restores the real default afterwards.
func setRetainers(t *testing.T, v string) {
	t.Helper()
	old := retainersFlag
	if err := Analyzer.Flags.Set("retainers", v); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { retainersFlag = old })
}

func TestScratchAlias(t *testing.T) {
	setRetainers(t, "(sched.List).Append")
	analyzertest.Run(t, "testdata", Analyzer, "a")
}

func TestNegativeFixture(t *testing.T) {
	// A // want on returning a non-scratch buffer must stay unmatched,
	// and the harness must surface that as a mismatch.
	probs := analyzertest.Problems(t, "testdata", Analyzer, "neg")
	if len(probs) != 1 || !strings.Contains(probs[0], "no diagnostic matched") {
		t.Fatalf("want exactly one unmatched-expectation problem, got %q", probs)
	}
}

func TestDirectiveConstants(t *testing.T) {
	// Both directive strings are documented in DESIGN.md and grep-able; a
	// silent rename would orphan every annotation in the tree.
	if Directive != "//ocd:scratch" {
		t.Fatalf("Directive = %q; annotations in the tree rely on //ocd:scratch", Directive)
	}
	if OkDirective != "//ocd:scratchok" {
		t.Fatalf("OkDirective = %q; annotations in the tree rely on //ocd:scratchok", OkDirective)
	}
}

func TestDefaultRetainerList(t *testing.T) {
	// (core.Schedule).Append stores its Step argument in the schedule; if
	// it falls out of the default list, the PR 4 aliasing class returns.
	if retainersFlag != "(ocd/internal/core.Schedule).Append" {
		t.Fatalf("default retainers = %q; want (ocd/internal/core.Schedule).Append", retainersFlag)
	}
}
