// Package scratchalias defines an analyzer that flags escaping or
// retained references to designated reusable scratch buffers.
//
// The hot paths of the simulator reuse per-run scratch slices instead of
// allocating per step (the kernel's accepted/delivered buffers, every
// heuristic's work lists, the trace observers' per-step arrays). The
// unchecked convention those buffers rely on: a reference to a scratch
// buffer must never outlive the call that filled it, because the next
// step overwrites the backing array in place. PR 4's exact-size-copy fix
// repaired one such aliasing bug case by case; this analyzer enforces
// the rule for every designated buffer at compile time.
//
// A buffer is designated as scratch either by name — an identifier named
// "scratch" or carrying the "scratch" prefix — or explicitly with a
// directive on the declaration line or the line above it:
//
//	//ocd:scratch
//	delivered []core.Move
//
// Within each function the analyzer taints uses of designated buffers
// and everything derived from them by assignment, reslicing, or append,
// then reports taint that escapes: returned values, stores into
// non-scratch fields, globals, or container elements, channel sends,
// captures by goroutine closures, and arguments to known retaining
// callees (by default (ocd/internal/core.Schedule).Append, which stores
// its Step argument in the schedule). A site that is provably safe can
// be suppressed with a justified directive on or above the line:
//
//	//ocd:scratchok <reason>
package scratchalias

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

const doc = `flag escaping or retained references to reusable scratch buffers

Scratch buffers (identifiers named or prefixed "scratch", or any
declaration annotated with //ocd:scratch on or directly above its line)
are overwritten in place on every reuse, so no reference to one may
outlive the call that filled it. The analyzer taints scratch values and
everything derived from them (assignments, reslices, appends) and
reports taint that escapes the function: return statements, stores into
non-scratch fields / package variables / container elements, channel
sends, goroutine captures, and arguments to retaining callees
(-retainers, default "(ocd/internal/core.Schedule).Append"). Safe sites
carry a justified "//ocd:scratchok <reason>" directive.`

// Directive designates a declaration as a scratch buffer.
const Directive = "//ocd:scratch"

// OkDirective suppresses a scratchalias diagnostic with a reason.
const OkDirective = "//ocd:scratchok"

// Analyzer is the scratchalias go/analysis entry point.
var Analyzer = &analysis.Analyzer{
	Name:     "scratchalias",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var defaultRetainers = []string{
	"(ocd/internal/core.Schedule).Append",
}

var retainersFlag string

func init() {
	Analyzer.Flags.StringVar(&retainersFlag, "retainers", strings.Join(defaultRetainers, ","),
		`comma-separated callees that retain their slice arguments ("pkgpath.Func" or "(pkgpath.Type).Method")`)
}

func run(pass *analysis.Pass) (interface{}, error) {
	retainers := make(map[string]bool)
	for _, name := range strings.Split(retainersFlag, ",") {
		if name = strings.TrimSpace(name); name != "" {
			retainers[name] = true
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	scratch := designated(pass)
	suppress := collectOkDirectives(pass)

	// Analyze each function declaration as one taint scope. Function
	// literals are analyzed within their enclosing declaration so that
	// captures of tainted locals are visible.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		checkFunc(pass, fd, scratch, retainers, suppress)
	})
	return nil, nil
}

// designated collects the objects declared as scratch buffers: every
// variable (field, local, package var) whose name is "scratch" or has the
// "scratch" prefix, plus every variable whose declaration carries the
// //ocd:scratch directive on its line or the line above.
func designated(pass *analysis.Pass) map[types.Object]bool {
	directiveLines := make(map[directiveKey]bool)
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text != Directive && !strings.HasPrefix(c.Text, Directive+" ") {
					continue
				}
				line := pass.Fset.Position(c.Pos()).Line
				directiveLines[directiveKey{fname, line}] = true
				directiveLines[directiveKey{fname, line + 1}] = true
			}
		}
	}
	out := make(map[types.Object]bool)
	for id, obj := range pass.TypesInfo.Defs {
		if obj == nil {
			continue
		}
		if _, isVar := obj.(*types.Var); !isVar {
			continue
		}
		if scratchName(id.Name) {
			out[obj] = true
			continue
		}
		posn := pass.Fset.Position(id.Pos())
		if directiveLines[directiveKey{posn.Filename, posn.Line}] {
			out[obj] = true
		}
	}
	return out
}

func scratchName(name string) bool {
	return strings.HasPrefix(name, "scratch")
}

type directiveKey struct {
	file string
	line int
}

// collectOkDirectives maps (file, line) to the //ocd:scratchok reason; a
// directive governs its own line and the next.
func collectOkDirectives(pass *analysis.Pass) map[directiveKey]string {
	out := make(map[directiveKey]string)
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, OkDirective) {
					continue
				}
				reason := strings.TrimPrefix(c.Text, OkDirective)
				line := pass.Fset.Position(c.Pos()).Line
				out[directiveKey{fname, line}] = reason
				out[directiveKey{fname, line + 1}] = reason
			}
		}
	}
	return out
}

// checkFunc taints scratch-derived values within fd and reports escapes.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, scratch map[types.Object]bool,
	retainers map[string]bool, suppress map[directiveKey]string) {

	tainted := make(map[types.Object]bool)

	// isScratchExpr reports whether e denotes a designated scratch buffer
	// or a value tainted by one: a scratch identifier or field selector, a
	// tainted local, a reslice of either, or an append rooted at one.
	var isScratchExpr func(e ast.Expr) bool
	isScratchExpr = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			return obj != nil && (scratch[obj] || tainted[obj])
		case *ast.SelectorExpr:
			obj := pass.TypesInfo.Uses[e.Sel]
			return obj != nil && scratch[obj]
		case *ast.SliceExpr:
			return isScratchExpr(e.X)
		case *ast.ParenExpr:
			return isScratchExpr(e.X)
		case *ast.IndexExpr:
			// An element of a scratch container aliases its backing array
			// only for reference-typed elements; int/Move elements are
			// copies. Treat element reads as clean unless the element type
			// itself is a slice.
			if !isScratchExpr(e.X) {
				return false
			}
			if t := pass.TypesInfo.TypeOf(e); t != nil {
				_, isSlice := t.Underlying().(*types.Slice)
				return isSlice
			}
			return false
		case *ast.CallExpr:
			// Only the append builtin propagates its first argument's
			// backing array to its result.
			if id, ok := e.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
					return isScratchExpr(e.Args[0])
				}
			}
			return false
		}
		return false
	}

	report := func(pos token.Pos, format string, args ...interface{}) {
		posn := pass.Fset.Position(pos)
		if reason, ok := suppress[directiveKey{posn.Filename, posn.Line}]; ok {
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(pos, "%s directive requires a reason explaining why the reference cannot be retained", OkDirective)
			}
			return
		}
		pass.Reportf(pos, format, args...)
	}

	// Pass 1: propagate taint through assignments to locals until fixed
	// point (bounded by the number of assignments).
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isScratchExpr(as.Rhs[i]) {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || scratch[obj] || tainted[obj] {
					continue
				}
				tainted[obj] = true
				changed = true
			}
			return true
		})
	}

	// Pass 2: report escapes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isScratchExpr(res) {
					report(res.Pos(), "scratch buffer %s is returned; the caller may retain it past the next reuse", exprName(res))
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !isScratchExpr(n.Rhs[i]) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.Ident:
					// Taint propagation to a local: handled in pass 1.
				case *ast.SelectorExpr:
					// Storing into a field: fine when the field is itself a
					// designated scratch slot, an escape otherwise.
					obj := pass.TypesInfo.Uses[l.Sel]
					if obj != nil && scratch[obj] {
						continue
					}
					report(n.Pos(), "scratch buffer %s stored in non-scratch field %s; the field retains the buffer past its next reuse", exprName(n.Rhs[i]), l.Sel.Name)
				case *ast.IndexExpr:
					if isScratchExpr(l.X) {
						continue // scratch-into-scratch is the staging pattern
					}
					report(n.Pos(), "scratch buffer %s stored in a container element; the container retains the buffer past its next reuse", exprName(n.Rhs[i]))
				case *ast.StarExpr:
					report(n.Pos(), "scratch buffer %s stored through a pointer; the pointee retains the buffer past its next reuse", exprName(n.Rhs[i]))
				}
			}
		case *ast.SendStmt:
			if isScratchExpr(n.Value) {
				report(n.Pos(), "scratch buffer %s sent on a channel; the receiver holds it while the buffer is reused", exprName(n.Value))
			}
		case *ast.GoStmt:
			// A goroutine capturing a scratch buffer (or tainted local)
			// races with its reuse.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(inner ast.Node) bool {
					e, ok := inner.(ast.Expr)
					if !ok {
						return true
					}
					switch e.(type) {
					case *ast.Ident, *ast.SelectorExpr:
						if isScratchExpr(e) {
							report(e.Pos(), "scratch buffer %s captured by a goroutine; it races with the buffer's next reuse", exprName(e))
							return false
						}
					}
					return true
				})
			}
			for _, arg := range n.Call.Args {
				if isScratchExpr(arg) {
					report(arg.Pos(), "scratch buffer %s passed to a goroutine; it races with the buffer's next reuse", exprName(arg))
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isScratchExpr(v) {
					report(v.Pos(), "scratch buffer %s stored in a composite literal; the literal retains the buffer past its next reuse", exprName(v))
				}
			}
		case *ast.CallExpr:
			callee := typeutil.Callee(pass.TypesInfo, n)
			fn, ok := callee.(*types.Func)
			if !ok {
				return true
			}
			if !retainers[qualifiedName(fn)] {
				return true
			}
			for _, arg := range n.Args {
				if isScratchExpr(arg) {
					report(arg.Pos(), "scratch buffer %s passed to retaining callee %s; pass an exact-size copy instead", exprName(arg), qualifiedName(fn))
				}
			}
		}
		return true
	})
}

// exprName renders a short name for a flagged expression.
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.SliceExpr:
		return exprName(e.X)
	case *ast.ParenExpr:
		return exprName(e.X)
	case *ast.IndexExpr:
		return exprName(e.X)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			return exprName(e.Args[0])
		}
	}
	return "value"
}

// qualifiedName renders fn as "pkgpath.Func" or "(pkgpath.Type).Method",
// stripping pointer receivers — the same format checkederr uses.
func qualifiedName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recv := sig.Recv()
	if recv == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return "(" + fn.Pkg().Path() + "." + named.Obj().Name() + ")." + fn.Name()
}
