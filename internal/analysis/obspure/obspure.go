// Package obspure defines an analyzer that proves Observer
// implementations never write through *sim.State, and that
// StepInterceptor implementations only mutate it through the sanctioned
// method API — and only in PreStep.
//
// The kernel hands both hook families a pointer to its live State. The
// contracts they rely on are documented but were unchecked until now:
//
//   - sim.Observer (OnStep/OnMove/OnReject) is strictly read-only. The
//     InvariantMonitor's zero-violation runs and the step traces are
//     evidence about the engine only if attaching an observer cannot
//     change the run. Observers also must not retain the State or the
//     delivered slice past the callback (the kernel reuses both).
//   - sim.StepInterceptor (PreStep/StopEarly/OnDeliver/OnIdleLimit) is
//     the engine's trusted half: PreStep applies crash transitions by
//     mutating possession through the sanctioned methods (tokenset
//     mutators plus State.InvalidateCounts). Structural writes — storing
//     to a State field or replacing a possession-slice element — bypass
//     the count-cache discipline and are forbidden everywhere; mutating
//     method calls are forbidden outside PreStep (StopEarly and
//     OnIdleLimit are decision hooks, not transition hooks).
//
// The analyzer locates the sim package among the checked package's
// imports (the -sim flag names its import path) and checks every method
// of every type implementing either interface.
package obspure

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const doc = `prove Observer hooks read-only and StepInterceptor mutation sanctioned

For every type implementing sim.Observer, the OnStep/OnMove/OnReject
bodies must treat their *sim.State as read-only: no field stores, no
possession-element writes, no calls to mutating State methods (Deliver,
InvalidateCounts) or token-set mutators reached through the state, no
passing the State pointer to another function, and no storing the State
or the delivered slice anywhere that outlives the callback.

For every type implementing sim.StepInterceptor, structural writes
through the State (field stores, possession-element replacement) are
forbidden in all four hooks, and mutating method calls are forbidden
outside PreStep — the one hook sanctioned to apply transitions.

The -sim flag names the import path of the package defining State,
Observer, and StepInterceptor (default ocd/internal/sim). The -readonly
flag extends the list of State methods the analyzer accepts as pure.`

// Analyzer is the obspure go/analysis entry point.
var Analyzer = &analysis.Analyzer{
	Name:     "obspure",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	simFlag      string
	readonlyFlag string
)

// defaultReadonly are the State methods an observer may call: accessors
// that cannot change the run. HaveCounts is included deliberately — it
// materializes a lazily-computed cache, but the cached values are
// identical whether or not an observer forced the computation, so
// attaching the observer cannot perturb the schedule.
var defaultReadonly = []string{"Missing", "Lacking", "MissingInto", "LackingInto", "HaveCounts"}

func init() {
	Analyzer.Flags.StringVar(&simFlag, "sim", "ocd/internal/sim",
		"import path of the package defining State, Observer, and StepInterceptor")
	Analyzer.Flags.StringVar(&readonlyFlag, "readonly", strings.Join(defaultReadonly, ","),
		"comma-separated State methods accepted as read-only")
}

// observerMethods and interceptorMethods are the hook names whose bodies
// are checked (only methods that receive a *State matter; the others
// cannot touch it).
var observerMethods = map[string]bool{"OnStep": true, "OnMove": true, "OnReject": true}
var interceptorMethods = map[string]bool{"PreStep": true, "StopEarly": true, "OnDeliver": true, "OnIdleLimit": true}

// setMutators are method names that mutate their receiver on the
// repository's token-set type (and any set-like value reached through the
// State). Calling one on a possession set is a state write.
var setMutators = map[string]bool{
	"Add": true, "Remove": true, "Clear": true, "Fill": true,
	"CopyFrom": true, "UnionWith": true, "IntersectWith": true,
	"DifferenceWith": true, "SetDifference": true, "SetIntersection": true,
	"AddRange": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	sim := findSimPackage(pass)
	if sim == nil {
		return nil, nil
	}
	stateType, observer, interceptor := lookupContracts(sim)
	if stateType == nil || (observer == nil && interceptor == nil) {
		return nil, nil
	}
	readonly := make(map[string]bool)
	for _, name := range strings.Split(readonlyFlag, ",") {
		if name = strings.TrimSpace(name); name != "" {
			readonly[name] = true
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Recv == nil || fd.Body == nil {
			return
		}
		obj := pass.TypesInfo.Defs[fd.Name]
		fn, ok := obj.(*types.Func)
		if !ok {
			return
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return
		}
		rt := recv.Type()
		isObserver := observer != nil && types.Implements(rt, observer) && observerMethods[fd.Name.Name]
		isInterceptor := interceptor != nil && types.Implements(rt, interceptor) && interceptorMethods[fd.Name.Name]
		if !isObserver && !isInterceptor {
			return
		}
		mode := checkMode{
			observer:        isObserver,
			mutatorsAllowed: isInterceptor && !isObserver && fd.Name.Name == "PreStep",
		}
		checkHook(pass, fd, stateType, readonly, mode)
	})
	return nil, nil
}

type checkMode struct {
	// observer selects the strict read-only rules; otherwise the
	// interceptor rules (structural writes only) apply.
	observer bool
	// mutatorsAllowed permits sanctioned mutating method calls (PreStep).
	mutatorsAllowed bool
}

// findSimPackage locates the configured sim package: the checked package
// itself or one of its direct imports.
func findSimPackage(pass *analysis.Pass) *types.Package {
	if pass.Pkg.Path() == simFlag {
		return pass.Pkg
	}
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == simFlag {
			return imp
		}
	}
	return nil
}

// lookupContracts resolves State, Observer, and StepInterceptor from the
// sim package's scope.
func lookupContracts(sim *types.Package) (state types.Type, observer, interceptor *types.Interface) {
	if obj := sim.Scope().Lookup("State"); obj != nil {
		state = obj.Type()
	}
	if obj := sim.Scope().Lookup("Observer"); obj != nil {
		observer, _ = obj.Type().Underlying().(*types.Interface)
	}
	if obj := sim.Scope().Lookup("StepInterceptor"); obj != nil {
		interceptor, _ = obj.Type().Underlying().(*types.Interface)
	}
	return state, observer, interceptor
}

// checkHook enforces the mode's rules on one hook body.
func checkHook(pass *analysis.Pass, fd *ast.FuncDecl, stateType types.Type,
	readonly map[string]bool, mode checkMode) {

	// The state parameters (usually one) and, for OnStep, the delivered
	// slice parameter.
	stateParams := make(map[types.Object]bool)
	sliceParams := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if ptr, ok := t.(*types.Pointer); ok && types.Identical(ptr.Elem(), stateType) {
				stateParams[obj] = true
			} else if _, ok := t.Underlying().(*types.Slice); ok && mode.observer {
				sliceParams[obj] = true
			}
		}
	}
	if len(stateParams) == 0 {
		return
	}

	// Taint: locals derived from the state (p := st.Possess[v], range
	// values over st.Possess) count as state-rooted.
	tainted := make(map[types.Object]bool)

	var stateRooted func(e ast.Expr) bool
	stateRooted = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			return obj != nil && (stateParams[obj] || tainted[obj])
		case *ast.SelectorExpr:
			return stateRooted(e.X)
		case *ast.IndexExpr:
			return stateRooted(e.X)
		case *ast.SliceExpr:
			return stateRooted(e.X)
		case *ast.ParenExpr:
			return stateRooted(e.X)
		case *ast.StarExpr:
			return stateRooted(e.X)
		case *ast.CallExpr:
			// Results of calls are fresh values (Missing returns a new
			// set); they do not alias the state. The calls themselves are
			// vetted separately.
			return false
		}
		return false
	}
	isStateIdent := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.TypesInfo.Uses[id]
		return obj != nil && stateParams[obj]
	}

	// Pass 1: propagate taint (st.Possess elements held in locals).
	for changed := true; changed; {
		changed = false
		mark := func(id *ast.Ident, rooted bool) {
			if !rooted {
				return
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil || stateParams[obj] || tainted[obj] {
				return
			}
			tainted[obj] = true
			changed = true
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						mark(id, stateRooted(n.Rhs[i]))
					}
				}
			case *ast.RangeStmt:
				if stateRooted(n.X) {
					if id, ok := n.Value.(*ast.Ident); ok && id != nil {
						mark(id, true)
					}
				}
			}
			return true
		})
	}

	hook := fd.Name.Name
	// Pass 2: report.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					if stateRooted(l.X) {
						pass.Reportf(n.Pos(), "%s writes through *sim.State (field store %s); the hook contract is read-only, mutation must go through the sanctioned State API", hook, l.Sel.Name)
					}
				case *ast.IndexExpr:
					if stateRooted(l.X) {
						pass.Reportf(n.Pos(), "%s writes through *sim.State (element store); replacing a possession entry bypasses the count-cache discipline", hook)
					}
				case *ast.StarExpr:
					if stateRooted(l.X) {
						pass.Reportf(n.Pos(), "%s writes through *sim.State (pointer store)", hook)
					}
				}
			}
			// Retention: storing the state or a state-rooted value (or the
			// delivered slice) into anything that outlives the callback.
			if mode.observer && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					rhsRetains := stateRooted(n.Rhs[i]) || retainsSliceParam(pass, sliceParams, n.Rhs[i])
					if !rhsRetains {
						continue
					}
					switch lhs.(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						pass.Reportf(n.Pos(), "%s retains state or the delivered slice past the callback; the kernel reuses both", hook)
					}
				}
			}
		case *ast.IncDecStmt:
			switch x := n.X.(type) {
			case *ast.SelectorExpr:
				if stateRooted(x.X) {
					pass.Reportf(n.Pos(), "%s writes through *sim.State (field store %s)", hook, x.Sel.Name)
				}
			case *ast.IndexExpr:
				if stateRooted(x.X) {
					pass.Reportf(n.Pos(), "%s writes through *sim.State (element store)", hook)
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if ok && stateRooted(sel.X) {
				name := sel.Sel.Name
				if isStateIdent(sel.X) {
					// A method on the State itself: the read-only list or bust.
					if !readonly[name] && (mode.observer || !mode.mutatorsAllowed) {
						pass.Reportf(n.Pos(), "%s calls State.%s, which the analyzer cannot prove read-only; observers and non-PreStep interceptor hooks must not mutate the state", hook, name)
					}
				} else if setMutators[name] && (mode.observer || !mode.mutatorsAllowed) {
					pass.Reportf(n.Pos(), "%s mutates state through %s on a possession set reached from *sim.State", hook, name)
				}
			}
			if mode.observer {
				for _, arg := range n.Args {
					if isStateIdent(arg) {
						pass.Reportf(arg.Pos(), "%s passes *sim.State to a callee the analyzer cannot prove read-only", hook)
					}
				}
			}
		case *ast.GoStmt:
			if mode.observer {
				for _, arg := range n.Call.Args {
					if stateRooted(arg) {
						pass.Reportf(arg.Pos(), "%s hands state to a goroutine; the kernel mutates it concurrently after the callback", hook)
					}
				}
			}
		}
		return true
	})
}

// retainsSliceParam reports whether e is (a reslice of) one of the hook's
// slice parameters — for OnStep, the delivered step the kernel reuses.
func retainsSliceParam(pass *analysis.Pass, sliceParams map[types.Object]bool, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		return obj != nil && sliceParams[obj]
	case *ast.SliceExpr:
		return retainsSliceParam(pass, sliceParams, e.X)
	case *ast.ParenExpr:
		return retainsSliceParam(pass, sliceParams, e.X)
	}
	return false
}
