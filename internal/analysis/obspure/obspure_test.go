package obspure

import (
	"strings"
	"testing"

	"ocd/internal/analysis/analyzertest"
)

// setSim points the analyzer at the fixture's sim stand-in for one test
// and restores the real default afterwards.
func setSim(t *testing.T, v string) {
	t.Helper()
	old := simFlag
	if err := Analyzer.Flags.Set("sim", v); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { simFlag = old })
}

func TestObsPure(t *testing.T) {
	setSim(t, "sim")
	analyzertest.Run(t, "testdata", Analyzer, "a")
}

func TestNegativeFixture(t *testing.T) {
	setSim(t, "sim")
	// A // want on a non-implementing type's state write must stay
	// unmatched, and the harness must surface that as a mismatch.
	probs := analyzertest.Problems(t, "testdata", Analyzer, "neg")
	if len(probs) != 1 || !strings.Contains(probs[0], "no diagnostic matched") {
		t.Fatalf("want exactly one unmatched-expectation problem, got %q", probs)
	}
}

func TestDefaultContractPackage(t *testing.T) {
	if simFlag != "ocd/internal/sim" {
		t.Fatalf("default -sim = %q; the analyzer must target the real kernel package", simFlag)
	}
}

func TestHaveCountsIsReadonly(t *testing.T) {
	// HaveCounts materializes a lazy cache but cannot change the schedule;
	// dropping it from the read-only list would flag StepCollector's
	// sanctioned use and push people toward suppressions.
	found := false
	for _, name := range defaultReadonly {
		if name == "HaveCounts" {
			found = true
		}
	}
	if !found {
		t.Fatal("HaveCounts missing from defaultReadonly; trace.StepCollector relies on it")
	}
}
