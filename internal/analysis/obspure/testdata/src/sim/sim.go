// Package sim is a fixture stand-in for ocd/internal/sim: the State the
// kernel shares with its hooks, and the Observer / StepInterceptor
// contracts the obspure analyzer enforces.
package sim

// Move and Step mirror the core types the kernel hands to hooks.
type Move struct{ From, To, Token int }

// Step is the delivered-moves slice the kernel reuses between steps.
type Step []Move

// Set mimics tokenset.Set: mutators change the receiver in place.
type Set struct{ bits []uint64 }

func (s Set) Add(t int)              {}
func (s Set) Clear()                 {}
func (s Set) CopyFrom(o Set)         {}
func (s Set) Has(t int) bool         { return false }
func (s Set) Count() int             { return 0 }
func (s Set) UnionWith(o Set)        {}
func (s Set) SetDifference(a, b Set) {}

// State is the kernel's live run state.
type State struct {
	Possess []Set
	Step    int
	counts  []int
}

func (s *State) HaveCounts() []int { return s.counts }
func (s *State) Missing(v int) Set { return Set{} }
func (s *State) Deliver(mv Move)   {}
func (s *State) InvalidateCounts() { s.counts = nil }

// Observer receives per-step callbacks; implementations must be
// read-only.
type Observer interface {
	OnStep(step int, delivered Step, st *State)
	OnMove(step int, mv Move, arcID int, lost bool, st *State)
	OnReject(step int, mv Move, st *State)
}

// StepInterceptor hooks engine semantics into the timestep; only PreStep
// may mutate the state, and only through the sanctioned methods.
type StepInterceptor interface {
	PreStep(step int, st *State)
	StopEarly(step int, st *State) bool
	OnDeliver(step int, mv Move)
	OnIdleLimit(step int, st *State) bool
}
