// Package a exercises the obspure analyzer: observers that write
// through (or retain) the kernel state must be flagged, interceptors may
// mutate only through sanctioned methods and only in PreStep, and the
// read-only idioms of the real InvariantMonitor must stay silent.
package a

import "sim"

// cleanObserver mirrors trace.InvariantMonitor's read-only patterns.
type cleanObserver struct {
	scratch sim.Set
	seen    []int
}

func (c *cleanObserver) OnStep(step int, delivered sim.Step, st *sim.State) {
	for v, p := range st.Possess {
		// Reading through the state and mutating the observer's own
		// scratch is the sanctioned pattern.
		c.scratch.SetDifference(p, p)
		_ = v
	}
	if counts := st.HaveCounts(); len(counts) > 0 {
		c.seen = append(c.seen, counts[0])
	}
}

func (c *cleanObserver) OnMove(step int, mv sim.Move, arcID int, lost bool, st *sim.State) {
	if !st.Possess[mv.From].Has(mv.Token) {
		c.seen = append(c.seen, mv.Token)
	}
}

func (c *cleanObserver) OnReject(step int, mv sim.Move, st *sim.State) {}

// dirtyObserver commits every forbidden write.
type dirtyObserver struct {
	stash    sim.Step
	lastStep *sim.State
}

func (d *dirtyObserver) OnStep(step int, delivered sim.Step, st *sim.State) {
	st.Step = step        // want `OnStep writes through \*sim\.State \(field store Step\)`
	d.stash = delivered   // want `OnStep retains state or the delivered slice`
	d.lastStep = st       // want `OnStep retains state or the delivered slice`
	st.InvalidateCounts() // want `OnStep calls State\.InvalidateCounts`
	mutateElsewhere(st)   // want `OnStep passes \*sim\.State to a callee`
}

func (d *dirtyObserver) OnMove(step int, mv sim.Move, arcID int, lost bool, st *sim.State) {
	st.Possess[mv.To].Add(mv.Token) // want `OnMove mutates state through Add`
	st.Deliver(mv)                  // want `OnMove calls State\.Deliver`
}

func (d *dirtyObserver) OnReject(step int, mv sim.Move, st *sim.State) {
	st.Possess[mv.To] = sim.Set{} // want `OnReject writes through \*sim\.State \(element store\)`
	p := st.Possess[mv.From]
	p.Clear() // want `OnReject mutates state through Clear`
}

func mutateElsewhere(st *sim.State) { st.Step++ }

// cleanInterceptor mirrors the fault kernel: sanctioned mutation in
// PreStep, read-only decisions elsewhere.
type cleanInterceptor struct {
	down []bool
}

func (f *cleanInterceptor) PreStep(step int, st *sim.State) {
	for v := range f.down {
		if f.down[v] {
			st.Possess[v].Clear() // sanctioned: tokenset mutator in PreStep
		}
	}
	st.InvalidateCounts() // sanctioned: State mutator in PreStep
}

func (f *cleanInterceptor) StopEarly(step int, st *sim.State) bool {
	return settled(st.Possess)
}

func (f *cleanInterceptor) OnDeliver(step int, mv sim.Move) {}

func (f *cleanInterceptor) OnIdleLimit(step int, st *sim.State) bool {
	return settled(st.Possess)
}

func settled(possess []sim.Set) bool { return len(possess) == 0 }

// dirtyInterceptor makes structural writes and mutates outside PreStep.
type dirtyInterceptor struct{}

func (f *dirtyInterceptor) PreStep(step int, st *sim.State) {
	st.Possess[0] = sim.Set{} // want `PreStep writes through \*sim\.State \(element store\)`
	st.Possess = nil          // want `PreStep writes through \*sim\.State \(field store Possess\)`
}

func (f *dirtyInterceptor) StopEarly(step int, st *sim.State) bool {
	st.InvalidateCounts() // want `StopEarly calls State\.InvalidateCounts`
	return false
}

func (f *dirtyInterceptor) OnDeliver(step int, mv sim.Move) {}

func (f *dirtyInterceptor) OnIdleLimit(step int, st *sim.State) bool {
	st.Possess[0].Clear() // want `OnIdleLimit mutates state through Clear`
	return false
}

// notAHook has an OnStep method but implements neither interface (wrong
// signature), so it is not checked.
type notAHook struct{}

func (n *notAHook) OnStep(st *sim.State) { st.Step++ }
