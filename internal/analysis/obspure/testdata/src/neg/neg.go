// Package neg is the obspure negative-path fixture: a type whose OnStep
// has the wrong signature implements neither hook interface, so its
// state writes are out of scope — the "want" annotation must NOT fire, proving the
// harness reports unmatched expectations.
package neg

import "sim"

type notAHook struct{}

func (n *notAHook) OnStep(st *sim.State) {
	st.Step++ // want `this diagnostic never fires`
}
