package detrand

import (
	"strings"
	"testing"

	"ocd/internal/analysis/analyzertest"
)

// setPackages points the analyzer at the fixture package for one test and
// restores the real default afterwards.
func setPackages(t *testing.T, v string) {
	t.Helper()
	old := packagesFlag
	if err := Analyzer.Flags.Set("packages", v); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { packagesFlag = old })
}

func TestDeterministicPackage(t *testing.T) {
	setPackages(t, "a")
	analyzertest.Run(t, "testdata", Analyzer, "a")
}

func TestNonDeterministicPackageIgnored(t *testing.T) {
	setPackages(t, "a")
	analyzertest.Run(t, "testdata", Analyzer, "notdet")
}

func TestWallclockDirective(t *testing.T) {
	setPackages(t, "wc")
	analyzertest.Run(t, "testdata", Analyzer, "wc")
}

func TestNegativeFixture(t *testing.T) {
	setPackages(t, "neg")
	// A // want on the sanctioned injected-generator pattern must stay
	// unmatched, and the harness must surface that as a mismatch.
	probs := analyzertest.Problems(t, "testdata", Analyzer, "neg")
	if len(probs) != 1 || !strings.Contains(probs[0], "no diagnostic matched") {
		t.Fatalf("want exactly one unmatched-expectation problem, got %q", probs)
	}
}

func TestDefaultPackageList(t *testing.T) {
	for _, want := range []string{
		"ocd/internal/sim",
		"ocd/internal/heuristics",
		"ocd/internal/fault",
		"ocd/internal/dynamic",
		"ocd/internal/topology",
		"ocd/internal/core",
		"ocd/internal/telemetry",
	} {
		if !deterministic(want) {
			t.Errorf("default package list misses %s", want)
		}
	}
	if deterministic("ocd/internal/stats") {
		t.Error("internal/stats (reporting only) should not be in the deterministic set")
	}
}

func TestPackageMatching(t *testing.T) {
	setPackages(t, "ocd/internal/sim")
	cases := []struct {
		path string
		want bool
	}{
		{"ocd/internal/sim", true},
		{"ocd/internal/sim_test", true}, // external test package
		{"ocd/internal/sim/subpkg", true},
		{"ocd/internal/simulator", false}, // prefix of the path segment only
		{"ocd", false},
	}
	for _, c := range cases {
		if got := deterministic(c.path); got != c.want {
			t.Errorf("deterministic(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestDocNamesDirectiveFreeContract(t *testing.T) {
	// The doc is user-facing help (`ocdlint help detrand`); keep the key
	// remediation visible.
	if !strings.Contains(Analyzer.Doc, "*rand.Rand") {
		t.Error("doc should tell users to inject a *rand.Rand")
	}
}
