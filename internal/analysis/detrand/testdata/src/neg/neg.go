// Package neg is the detrand negative-path fixture: the sanctioned
// injected-generator pattern with a "want" annotation that must NOT fire. The
// harness has to report the unmatched expectation — a harness that let
// it pass would also hide the analyzer regressing to silence.
package neg

import "math/rand"

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // want `this diagnostic never fires`
	return rng.Intn(10)
}
