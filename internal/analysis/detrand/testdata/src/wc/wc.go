// Package wc is a detrand fixture exercising the //ocd:wallclock
// allowance (the test sets -packages=wc).
package wc

import (
	"math/rand"
	"time"
)

// trailing-comment form: the directive sits on the read's own line.
func allowedTrailing() time.Time {
	return time.Now() //ocd:wallclock latency histogram is WallClock by contract
}

// line-above form: the directive covers the line below it.
func allowedAbove() time.Duration {
	start := allowedTrailing()
	//ocd:wallclock latency histogram is WallClock by contract
	return time.Since(start)
}

func missingReason() time.Time {
	//ocd:wallclock
	return time.Now() // want `directive requires a reason`
}

func undirected() time.Time {
	return time.Now() // want `use of nondeterministic time\.Now`
}

// The directive never excuses global-PRNG use.
func prngNotExcused() int {
	return rand.Intn(3) //ocd:wallclock not a clock // want `use of nondeterministic math/rand\.Intn`
}
