// Package notdet is a detrand fixture for a package outside the
// deterministic set: identical violations, zero diagnostics expected.
package notdet

import (
	"math/rand"
	"time"
)

var clock = time.Now()

func draw() int { return rand.Intn(10) }
