// Package a is a detrand fixture playing the role of a deterministic
// simulator package (the test sets -packages=a).
package a

import (
	"math/rand"
	v2 "math/rand/v2"
	"time"
)

var globalRNG = rand.New(rand.NewSource(1)) // want `package-level \*rand\.Rand variable globalRNG holds PRNG state`

var globalSrc rand.Source // want `rand\.Source variable globalSrc holds PRNG state`

const tokens = 12 // constants are fine

var horizon = tokens * 2 // non-PRNG globals are fine

func clocked() time.Duration {
	start := time.Now()      // want `use of nondeterministic time\.Now`
	return time.Since(start) // want `use of nondeterministic time\.Since`
}

func globalDraws() int {
	n := rand.Intn(10)                 // want `use of nondeterministic math/rand\.Intn`
	rand.Shuffle(3, func(i, j int) {}) // want `use of nondeterministic math/rand\.Shuffle`
	return n + v2.IntN(7)              // want `use of nondeterministic math/rand/v2\.IntN`
}

// injected demonstrates the sanctioned pattern: construct or accept a
// local generator and call its methods.
func injected(rng *rand.Rand) int {
	local := rand.New(rand.NewSource(42))
	return local.Intn(10) + rng.Intn(3) + len(rng.Perm(4))
}
