// Package detrand defines an analyzer that forbids nondeterministic
// randomness and wall-clock reads in the simulator's deterministic
// packages.
//
// Reproducibility of every experiment table rests on runs being pure
// functions of their seed: the same (instance, heuristic, seed) triple
// must yield byte-identical schedules, and fault plans promise
// byte-identical replay. Code in the deterministic packages therefore
// must draw randomness only from an injected *rand.Rand (typically
// sim.State.Rand or a Factory argument) and must never consult the wall
// clock. This analyzer enforces that contract at compile time.
package detrand

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const doc = `forbid global randomness and wall-clock reads in deterministic packages

In packages that must be pure functions of their seed (internal/sim,
internal/heuristics, internal/fault, internal/dynamic, internal/topology,
internal/core by default), detrand reports:

  - calls to time.Now and time.Since (wall-clock reads);
  - uses of math/rand and math/rand/v2 top-level functions that draw
    from the process-global generator (rand.Intn, rand.Float64,
    rand.Perm, rand.Shuffle, rand.Seed, ...);
  - package-level variables holding PRNG state (*rand.Rand or
    rand.Source), which would be shared across runs.

Constructors (rand.New, rand.NewSource, rand.NewZipf, rand.NewPCG,
rand.NewChaCha8) and the rand.Rand/rand.Source types themselves are
allowed: injecting a locally seeded generator is exactly the sanctioned
pattern. The -packages flag replaces the default deterministic package
list (comma-separated import paths; a package matches an entry exactly,
as a path prefix entry/..., or as the entry's external test package).

A wall-clock read may be annotated "//ocd:wallclock <reason>" (trailing
comment or the line above) when it feeds an explicitly WallClock metric
that never folds into deterministic output — the telemetry package's
latency instruments are the sanctioned case. The directive requires a
reason and does not excuse global-PRNG use.`

// Directive is the comment prefix that suppresses a wall-clock-read
// diagnostic for the annotated line.
const Directive = "//ocd:wallclock"

// Analyzer is the detrand go/analysis entry point.
var Analyzer = &analysis.Analyzer{
	Name:     "detrand",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// defaultPackages is the deterministic core of the simulator: everything
// that participates in planning, scheduling, or replaying moves.
var defaultPackages = []string{
	"ocd/internal/sim",
	"ocd/internal/heuristics",
	"ocd/internal/fault",
	"ocd/internal/dynamic",
	"ocd/internal/topology",
	"ocd/internal/core",
	"ocd/internal/telemetry",
}

var packagesFlag string

func init() {
	Analyzer.Flags.StringVar(&packagesFlag, "packages", strings.Join(defaultPackages, ","),
		"comma-separated import paths of deterministic packages")
}

// bannedFuncs maps package path -> function names whose use implies
// process-global nondeterminism.
var bannedFuncs = map[string]map[string]bool{
	"time": {
		"Now":   true,
		"Since": true,
		"Until": true,
	},
	"math/rand": {
		"Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true, "ExpFloat64": true,
		"NormFloat64": true, "Perm": true, "Shuffle": true,
		"Read": true, "Seed": true,
	},
	"math/rand/v2": {
		"Int": true, "IntN": true, "Int32": true, "Int32N": true,
		"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
		"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
		"N": true, "Float32": true, "Float64": true, "ExpFloat64": true,
		"NormFloat64": true, "Perm": true, "Shuffle": true,
	},
}

// prngStatePkgs are the packages whose Rand/Source types constitute PRNG
// state when stored in a package-level variable.
var prngStatePkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	directives := collectDirectives(pass)

	nodeFilter := []ast.Node{
		(*ast.SelectorExpr)(nil),
		(*ast.GenDecl)(nil),
	}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkSelector(pass, n, directives)
		case *ast.GenDecl:
			// Only package-level declarations: the enclosing node two
			// frames up (File -> GenDecl) marks file scope.
			if len(stack) >= 2 {
				if _, ok := stack[len(stack)-2].(*ast.File); ok {
					checkGlobalState(pass, n)
				}
			}
		}
		return true
	})
	return nil, nil
}

// deterministic reports whether pkgPath falls under the configured
// deterministic package set. External test packages ("p_test") and
// subpackages of an entry are included.
func deterministic(pkgPath string) bool {
	for _, entry := range strings.Split(packagesFlag, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if pkgPath == entry ||
			pkgPath == entry+"_test" ||
			strings.HasPrefix(pkgPath, entry+"/") {
			return true
		}
	}
	return false
}

func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr, directives map[directiveKey]string) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	names, banned := bannedFuncs[fn.Pkg().Path()]
	if !banned || !names[fn.Name()] {
		return
	}
	// Methods (e.g. (*rand.Rand).Intn) are the sanctioned injected form;
	// only package-level functions reach global state.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	// A wall-clock read (and only that — the directive never excuses
	// global-PRNG use) may carry an //ocd:wallclock allowance.
	if fn.Pkg().Path() == "time" {
		pos := pass.Fset.Position(sel.Pos())
		if reason, ok := directives[directiveKey{pos.Filename, pos.Line}]; ok {
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(sel.Pos(), "%s directive requires a reason: %s <why this wall-clock read is safe>",
					Directive, Directive)
			}
			return
		}
	}
	pass.Reportf(sel.Pos(), "use of nondeterministic %s.%s in deterministic package %s: inject a *rand.Rand (or pass the clock) instead",
		fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
}

// directiveKey identifies a source line that an //ocd:wallclock comment
// covers.
type directiveKey struct {
	file string
	line int
}

// collectDirectives gathers every //ocd:wallclock comment in the pass,
// mapping both the comment's own line (trailing-comment form) and the
// line below it (line-above form) to the stated reason.
func collectDirectives(pass *analysis.Pass) map[directiveKey]string {
	out := make(map[directiveKey]string)
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, Directive) {
					continue
				}
				reason := strings.TrimPrefix(c.Text, Directive)
				line := pass.Fset.Position(c.Pos()).Line
				out[directiveKey{fname, line}] = reason
				out[directiveKey{fname, line + 1}] = reason
			}
		}
	}
	return out
}

// checkGlobalState reports package-level variables that hold PRNG state.
func checkGlobalState(pass *analysis.Pass, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if _, isVar := obj.(*types.Var); !isVar {
				continue // constants cannot hold PRNG state
			}
			if kind := prngStateKind(obj.Type()); kind != "" {
				pass.Reportf(name.Pos(), "package-level %s %s holds PRNG state shared across runs; inject a per-run *rand.Rand instead",
					kind, name.Name)
			}
		}
	}
}

// prngStateKind classifies t as PRNG state ("*rand.Rand", "rand.Source",
// ...) or returns "" if it is not.
func prngStateKind(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		// Interface types (rand.Source) reach here as Named too; a bare
		// unnamed type is never PRNG state.
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !prngStatePkgs[obj.Pkg().Path()] {
		return ""
	}
	switch obj.Name() {
	case "Rand":
		return "*rand.Rand variable"
	case "Source", "Source64", "PCG", "ChaCha8":
		return fmt.Sprintf("rand.%s variable", obj.Name())
	}
	return ""
}
