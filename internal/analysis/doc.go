// Package analysis hosts the repository's custom static analyzers.
//
// The paper's empirical claims (heuristic rankings, Fig. 1-style sweeps)
// are reproducible only if every simulator run is a pure function of its
// seed, and the fault plans of internal/fault promise byte-identical
// replay. The runtime property tests check that promise per run; the
// analyzers here enforce it at compile time for every future change:
//
//   - detrand forbids wall-clock and global-PRNG randomness inside the
//     deterministic packages, requiring all randomness to flow through an
//     injected *rand.Rand.
//   - maporder flags range-over-map loops whose bodies reach
//     ordering-sensitive sinks (appends, writers, channel sends, float or
//     string accumulation) unless annotated with //ocd:orderinvariant.
//   - checkederr requires callers to consume the validation errors of
//     core.Validate, core.ValidateConstraints, and fault.Validate.
//   - scratchalias forbids references to designated reusable scratch
//     buffers (//ocd:scratch, or "scratch"-prefixed names) from escaping
//     the call that filled them; safe sites carry //ocd:scratchok.
//   - obspure proves sim.Observer implementations read-only on
//     *sim.State (no writes, no retention of the state or the delivered
//     slice, no handing the state to unvetted callees) and confines
//     StepInterceptor mutation to sanctioned methods called from
//     PreStep.
//   - prngshare keeps every *rand.Rand single-owner: no goroutine
//     handoff, no channel send, no runner cell capturing a stream
//     instead of deriving one from its seed; safe sites carry
//     //ocd:prngok.
//
// The analyzers are wired into `go vet` through cmd/ocdlint, a vettool
// built on golang.org/x/tools/go/analysis/unitchecker:
//
//	go build -o /tmp/ocdlint ./cmd/ocdlint
//	go vet -vettool=/tmp/ocdlint ./...
//
// Each analyzer lives in its own subpackage with analyzertest-based tests
// whose testdata fixtures carry `// want` expectations, mirroring the
// upstream analysistest convention.
package analysis
