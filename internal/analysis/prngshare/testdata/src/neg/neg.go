// Package neg is the prngshare negative-path fixture: a plain (non-go)
// closure may use an outer PRNG — same goroutine, same owner — so the
// "want" annotation must NOT fire, proving the harness reports unmatched
// expectations.
package neg

import "math/rand"

func sameGoroutineClosure(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	draw := func() int {
		return rng.Intn(10) // want `this diagnostic never fires`
	}
	return draw()
}
