// Package runner is a fixture stand-in for ocd/internal/runner: the
// experiment cell whose Run closure must own its PRNG.
package runner

// Cell is one unit of experiment work; Run receives the derived seed and
// must construct everything it mutates — including its PRNG — inside.
type Cell[T any] struct {
	Key     string
	SeedKey string
	Run     func(seed int64) (T, error)
}
