// Package a exercises the prngshare analyzer: PRNGs crossing into
// goroutines, channels, or runner-cell Run closures must be flagged, and
// cells that construct their own stream from the seed must stay silent.
package a

import (
	"math/rand"

	"runner"
)

func consume(rng *rand.Rand, done chan struct{}) { close(done) }

func passedToGoroutine(rng *rand.Rand, done chan struct{}) {
	go consume(rng, done) // want `PRNG rng passed to a goroutine`
}

func capturedByGoroutine(done chan struct{}) {
	rng := rand.New(rand.NewSource(1))
	go func() {
		_ = rng.Int63() // want `PRNG rng captured by a goroutine`
		close(done)
	}()
	_ = rng.Int63()
}

type holder struct{ rng *rand.Rand }

func fieldThroughCapturedStruct(h *holder, done chan struct{}) {
	go func() {
		_ = h.rng.Int63() // want `PRNG h\.rng captured by a goroutine`
		close(done)
	}()
}

func sourceCapturedByGoroutine(src rand.Source, done chan struct{}) {
	go func() {
		_ = src.Int63() // want `PRNG src captured by a goroutine`
		close(done)
	}()
}

func sentOnChannel(ch chan *rand.Rand) {
	ch <- rand.New(rand.NewSource(2)) // want `PRNG value sent on a channel`
}

func cellCapturesRand(base *rand.Rand) runner.Cell[int] {
	return runner.Cell[int]{
		Key: "k",
		Run: func(seed int64) (int, error) {
			return int(base.Int63()), nil // want `PRNG base referenced by a runner cell's Run closure`
		},
	}
}

type experiment struct{ rng *rand.Rand }

func cellSharesStructField(e *experiment) runner.Cell[int] {
	return runner.Cell[int]{
		Key: "k2",
		Run: func(seed int64) (int, error) {
			return int(e.rng.Int63()), nil // want `PRNG e\.rng referenced by a runner cell's Run closure`
		},
	}
}

func cellOwnsItsRandIsFine() runner.Cell[int] {
	return runner.Cell[int]{
		Key: "k3",
		Run: func(seed int64) (int, error) {
			rng := rand.New(rand.NewSource(seed))
			return int(rng.Int63()), nil
		},
	}
}

type notACell struct {
	Run func(seed int64) (int, error)
}

// otherRunFieldsAreFine: only the configured cell type's Run closure is
// constrained; an unrelated struct with a Run field is a plain closure.
func otherRunFieldsAreFine(rng *rand.Rand) notACell {
	return notACell{Run: func(seed int64) (int, error) { return int(rng.Int63()), nil }}
}

func suppressedWithReason(rng *rand.Rand, done chan struct{}) {
	//ocd:prngok the goroutine joins via done before the next draw; handoff, not sharing
	go consume(rng, done)
}

func suppressedWithoutReason(rng *rand.Rand, done chan struct{}) {
	//ocd:prngok
	go consume(rng, done) // want `directive requires a reason`
}
