package prngshare

import (
	"strings"
	"testing"

	"ocd/internal/analysis/analyzertest"
)

// setCell points the analyzer at the fixture's cell type for one test
// and restores the real default afterwards.
func setCell(t *testing.T, v string) {
	t.Helper()
	old := cellFlag
	if err := Analyzer.Flags.Set("cell", v); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cellFlag = old })
}

func TestPRNGShare(t *testing.T) {
	setCell(t, "runner.Cell")
	analyzertest.Run(t, "testdata", Analyzer, "a")
}

func TestNegativeFixture(t *testing.T) {
	// A // want on a same-goroutine closure draw must stay unmatched,
	// and the harness must surface that as a mismatch.
	probs := analyzertest.Problems(t, "testdata", Analyzer, "neg")
	if len(probs) != 1 || !strings.Contains(probs[0], "no diagnostic matched") {
		t.Fatalf("want exactly one unmatched-expectation problem, got %q", probs)
	}
}

func TestDefaultCellType(t *testing.T) {
	if cellFlag != "ocd/internal/runner.Cell" {
		t.Fatalf("default -cell = %q; the analyzer must target the real runner cell", cellFlag)
	}
}

func TestDirectiveConstant(t *testing.T) {
	if OkDirective != "//ocd:prngok" {
		t.Fatalf("OkDirective = %q; suppressions in the tree rely on //ocd:prngok", OkDirective)
	}
}
