// Package prngshare defines an analyzer that flags PRNG values escaping
// their owning goroutine or experiment cell.
//
// Every random draw in the simulator comes from a *math/rand.Rand owned
// by exactly one sequential context: the kernel's per-run strategy
// stream, the loss-policy stream, or a runner cell's stream derived from
// its seed. The determinism guarantee — byte-identical output for any
// worker count — holds only while that ownership is respected.
// *rand.Rand is not safe for concurrent use, and even a data-race-free
// shared stream makes the draw sequence depend on scheduling order.
//
// The analyzer reports three escape classes:
//
//   - a PRNG (or rand.Source) passed to or captured by a `go` statement,
//     which hands the stream to a second goroutine;
//   - a PRNG sent on a channel, which does the same asynchronously;
//   - a runner cell's Run closure (a func literal in a composite literal
//     of the -cell type, default ocd/internal/runner.Cell) referencing a
//     PRNG declared outside the closure — whether a captured local or a
//     field reached through a captured struct. Cells must construct
//     their PRNG inside Run from the seed argument; a captured stream
//     would be shared across cells and advanced in completion order,
//     which also covers reuse of the stream after the runner.Map call.
//
// A site that is provably single-threaded can be suppressed with a
// justified directive on or above the line:
//
//	//ocd:prngok <reason>
package prngshare

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const doc = `flag PRNG streams escaping their owning goroutine or runner cell

*math/rand.Rand and rand.Source values are single-owner: sharing one
across goroutines races, and sharing one across experiment cells makes
the draw sequence depend on scheduling order, breaking the runner's
byte-identical-output guarantee. The analyzer reports PRNGs passed to or
captured by go statements, sent on channels, or referenced by a runner
cell's Run closure from outside the closure (-cell names the cell type,
default ocd/internal/runner.Cell). Safe sites carry a justified
"//ocd:prngok <reason>" directive.`

// OkDirective suppresses a prngshare diagnostic with a reason.
const OkDirective = "//ocd:prngok"

// Analyzer is the prngshare go/analysis entry point.
var Analyzer = &analysis.Analyzer{
	Name:     "prngshare",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var cellFlag string

func init() {
	Analyzer.Flags.StringVar(&cellFlag, "cell", "ocd/internal/runner.Cell",
		`qualified name ("pkgpath.Type") of the experiment cell struct whose Run closure owns its PRNG`)
}

// randTypeNames are the math/rand types whose values are single-owner
// streams.
var randTypeNames = map[string]bool{"Rand": true, "Source": true, "Source64": true}

// isPRNG reports whether t is (a pointer to) math/rand.Rand or one of
// its Source interfaces.
func isPRNG(t types.Type) bool {
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "math/rand" && randTypeNames[obj.Name()]
}

type directiveKey struct {
	file string
	line int
}

// collectOkDirectives maps (file, line) to the //ocd:prngok reason; a
// directive governs its own line and the next.
func collectOkDirectives(pass *analysis.Pass) map[directiveKey]string {
	out := make(map[directiveKey]string)
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, OkDirective) {
					continue
				}
				reason := strings.TrimPrefix(c.Text, OkDirective)
				line := pass.Fset.Position(c.Pos()).Line
				out[directiveKey{fname, line}] = reason
				out[directiveKey{fname, line + 1}] = reason
			}
		}
	}
	return out
}

func run(pass *analysis.Pass) (interface{}, error) {
	suppress := collectOkDirectives(pass)
	report := func(pos token.Pos, format string, args ...interface{}) {
		posn := pass.Fset.Position(pos)
		if reason, ok := suppress[directiveKey{posn.Filename, posn.Line}]; ok {
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(pos, "%s directive requires a reason explaining why the stream stays single-owner", OkDirective)
			}
			return
		}
		pass.Reportf(pos, format, args...)
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodes := []ast.Node{
		(*ast.GoStmt)(nil),
		(*ast.SendStmt)(nil),
		(*ast.CompositeLit)(nil),
	}
	ins.Preorder(nodes, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if t := pass.TypesInfo.TypeOf(arg); t != nil && isPRNG(t) {
					report(arg.Pos(), "PRNG %s passed to a goroutine; *rand.Rand is single-owner and sharing a stream makes draws depend on scheduling", exprName(arg))
				}
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				reportEscapes(pass, lit, report, "captured by a goroutine; *rand.Rand is single-owner and sharing a stream makes draws depend on scheduling")
			}
		case *ast.SendStmt:
			if t := pass.TypesInfo.TypeOf(n.Value); t != nil && isPRNG(t) {
				report(n.Pos(), "PRNG %s sent on a channel; the receiver would share its stream", exprName(n.Value))
			}
		case *ast.CompositeLit:
			if !isCellLit(pass, n) {
				return
			}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "Run" {
					continue
				}
				if lit, ok := kv.Value.(*ast.FuncLit); ok {
					reportEscapes(pass, lit, report, "referenced by a runner cell's Run closure; construct the cell's PRNG inside Run from the seed argument")
				}
			}
		}
	})
	return nil, nil
}

// isCellLit reports whether lit is a composite literal of the configured
// cell type (matching generic instantiations by their origin).
func isCellLit(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path()+"."+obj.Name() == cellFlag
}

// reportEscapes reports every PRNG-typed expression inside lit whose
// root variable is declared outside the literal: captured locals and
// parameters, and PRNG fields reached through captured structs. Each
// root object is reported once, at its first use.
func reportEscapes(pass *analysis.Pass, lit *ast.FuncLit, report func(token.Pos, string, ...interface{}), what string) {
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		t := pass.TypesInfo.TypeOf(e)
		if t == nil || !isPRNG(t) {
			return true
		}
		root := rootObject(pass, e)
		if root == nil || seen[root] {
			return true
		}
		// Declared inside the literal (including its parameters) means the
		// closure owns it; declared outside means it escaped in.
		if lit.Pos() <= root.Pos() && root.Pos() < lit.End() {
			return true
		}
		seen[root] = true
		report(e.Pos(), "PRNG %s %s", exprName(e), what)
		return false
	})
}

// rootObject resolves the variable at the base of an identifier or
// selector chain (for s.rng, the object for s).
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if _, ok := obj.(*types.Var); ok {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprName renders a short name for a flagged expression.
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprName(e.X)
	case *ast.IndexExpr:
		return exprName(e.X)
	}
	return "value"
}
