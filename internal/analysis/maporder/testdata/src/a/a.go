// Package a exercises the maporder analyzer: every ordering-sensitive
// escape of map iteration order must be flagged, and the sanctioned
// patterns (sorted keys, per-key writes, commutative integer
// aggregation, justified directives) must stay silent.
package a

import (
	"fmt"
	"sort"
	"strings"
)

func appendOutside(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `append to slice declared outside the loop`
		out = append(out, v)
	}
	return out
}

func appendInsideIsFine(m map[int]string) int {
	n := 0
	for k := range m {
		local := []int{}
		local = append(local, k)
		n += len(local)
	}
	return n
}

// sortedKeysIsFine is the canonical remediation: collect, sort, iterate.
// The collect loop needs no directive because the keys are sorted before
// use.
func sortedKeysIsFine(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func printing(m map[string]int) {
	for k, v := range m { // want `call to fmt\.Println`
		fmt.Println(k, v)
	}
}

func building(m map[string]int, sb *strings.Builder) {
	for k := range m { // want `call to ordering-sensitive method WriteString`
		sb.WriteString(k)
	}
}

type moveList struct{ moves []int }

func (l *moveList) Append(m int) { l.moves = append(l.moves, m) }

func methodAppend(m map[int]bool, l *moveList) {
	for k := range m { // want `call to ordering-sensitive method Append`
		l.Append(k)
	}
}

func channelSend(m map[int]bool, ch chan int) {
	for k := range m { // want `channel send`
		ch <- k
	}
}

func stringConcat(m map[int]string) string {
	s := ""
	for _, v := range m { // want `string concatenation into outer variable s`
		s += v
	}
	return s
}

func floatSum(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `floating-point accumulation into outer variable sum`
		sum += v
	}
	return sum
}

func intSumIsFine(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func perKeyWriteIsFine(src map[int]int, dst map[int]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func directiveTrailing(m map[int]string, ch chan int) {
	for k := range m { //ocd:orderinvariant receiver drains and re-sorts before use
		ch <- k
	}
}

func directiveNeedsReason(m map[int]string) []string {
	var out []string
	//ocd:orderinvariant
	for _, v := range m { // want `directive requires a reason`
		out = append(out, v)
	}
	return out
}

func rangeOverSliceIsFine(xs []int, out *[]int) {
	for _, x := range xs {
		*out = append(*out, x)
	}
}

// methodValueBoundBefore binds the writer to a local before the loop;
// calling the local inside the loop reaches the same sink as calling
// sb.WriteString directly.
func methodValueBoundBefore(m map[string]int, sb *strings.Builder) {
	emit := sb.WriteString
	for k := range m { // want `call via emit bound to ordering-sensitive method value WriteString`
		emit(k)
	}
}

// methodValueBoundInside binds the writer inside the loop body.
func methodValueBoundInside(m map[string]int, sb *strings.Builder) {
	for k := range m { // want `call via emit bound to ordering-sensitive method value WriteString`
		emit := sb.WriteString
		emit(k)
	}
}

// funcValueBound covers package-level function values (fmt.Println).
func funcValueBound(m map[string]int) {
	var show = fmt.Println
	for k, v := range m { // want `call via show bound to ordering-sensitive function value fmt\.Println`
		show(k, v)
	}
}

// parenMethodValueCall is the immediate form: the method value invoked
// through parentheses without an intermediate variable.
func parenMethodValueCall(m map[string]int, sb *strings.Builder) {
	for k := range m { // want `call to ordering-sensitive method WriteString`
		(sb.WriteString)(k)
	}
}

// unboundLocalFuncIsFine: a local func value with no ordering-sensitive
// binding stays silent (the closure writes per-key map entries).
func unboundLocalFuncIsFine(m map[string]int, dst map[string]int) {
	put := func(k string, v int) { dst[k] = v }
	for k, v := range m {
		put(k, v)
	}
}

func nestedMapRange(outer map[int]map[int]string) []string {
	var out []string
	for i := 0; i < 3; i++ {
		for _, inner := range outer { // want `append to slice declared outside the loop`
			_ = inner
			out = append(out, "x")
		}
	}
	return out
}
