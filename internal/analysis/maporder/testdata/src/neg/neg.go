// Package neg is the maporder negative-path fixture: a range over a
// slice (deterministic order) with a "want" annotation that must NOT fire, proving
// the harness reports unmatched expectations.
package neg

func sliceAppend(xs []int) []int {
	var out []int
	for _, x := range xs { // want `this diagnostic never fires`
		out = append(out, x)
	}
	return out
}
