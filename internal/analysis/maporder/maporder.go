// Package maporder defines an analyzer that flags range-over-map loops
// whose iteration order can leak into ordering-sensitive results.
//
// Go randomizes map iteration order on purpose, so a loop that ranges
// over a map and appends to a slice, writes to an output stream, sends on
// a channel, or accumulates non-commutative values produces a different
// result on every run — precisely the nondeterminism that breaks
// byte-identical schedule replay. The fix is to iterate over sorted keys;
// when a loop is genuinely order-invariant (pure per-key writes,
// commutative integer aggregation the analyzer cannot prove), it can be
// annotated with a justified directive:
//
//	//ocd:orderinvariant <reason>
//	for k, v := range m { ... }
//
// The directive must carry a non-empty reason and must sit on the line of
// the range statement or immediately above it.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

const doc = `flag range-over-map loops that reach ordering-sensitive sinks

A range over a map runs in randomized order. If the loop body appends to
a slice declared outside the loop, calls an ordering-sensitive writer
(fmt print family, Write/WriteString/WriteRune/WriteByte/Append methods,
io.WriteString), sends on a channel, or compound-assigns to an outer
string or floating-point variable (both non-commutative), the final
result depends on that order. Iterate over sorted keys instead, or annotate
the loop with "//ocd:orderinvariant <reason>" when order provably does
not matter.`

// Directive is the comment prefix that suppresses maporder diagnostics.
const Directive = "//ocd:orderinvariant"

// Analyzer is the maporder go/analysis entry point.
var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Directive positions per file: line -> reason (may be empty).
	directives := collectDirectives(pass)

	nodeFilter := []ast.Node{(*ast.RangeStmt)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rng := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		line := pass.Fset.Position(rng.Pos()).Line
		file := pass.Fset.Position(rng.Pos()).Filename
		if reason, ok := directives[directiveKey{file, line}]; ok {
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(rng.Pos(), "%s directive requires a reason explaining why iteration order cannot matter", Directive)
			}
			return true
		}
		if sink := findSink(pass, rng, enclosingFunc(stack)); sink != "" {
			pass.Reportf(rng.Pos(), "iteration over map reaches ordering-sensitive sink (%s); iterate over sorted keys or annotate with %q",
				sink, Directive+" <reason>")
		}
		return true
	})
	return nil, nil
}

// enclosingFunc returns the innermost function declaration or literal on
// the stack, or nil at package scope.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

type directiveKey struct {
	file string
	line int
}

// collectDirectives maps (file, line-governed-by-directive) to the
// directive's reason. A directive on line L governs statements starting
// on L (trailing comment) or L+1 (comment line above).
func collectDirectives(pass *analysis.Pass) map[directiveKey]string {
	out := make(map[directiveKey]string)
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, Directive) {
					continue
				}
				reason := strings.TrimPrefix(c.Text, Directive)
				line := pass.Fset.Position(c.Pos()).Line
				out[directiveKey{fname, line}] = reason
				out[directiveKey{fname, line + 1}] = reason
			}
		}
	}
	return out
}

// orderSensitiveMethods are method names whose calls emit or accumulate
// in call order regardless of receiver: stream writers and slice-like
// container appends.
var orderSensitiveMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Append":      true,
}

// orderSensitiveFuncs are package-level functions that emit output in
// call order.
var orderSensitiveFuncs = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
	},
	"io": {
		"WriteString": true, "Copy": true,
	},
}

// findSink scans the loop body for the first construct through which map
// iteration order can escape, returning a description or "".
func findSink(pass *analysis.Pass, rng *ast.RangeStmt, fn ast.Node) string {
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if s := callSink(pass, rng, fn, n); s != "" {
				sink = s
				return false
			}
		case *ast.SendStmt:
			sink = "channel send"
			return false
		case *ast.AssignStmt:
			if s := assignSink(pass, rng, n); s != "" {
				sink = s
				return false
			}
		case *ast.RangeStmt:
			// A nested ordered loop is fine to descend into; nested map
			// ranges get their own diagnostic.
		}
		return true
	})
	return sink
}

// callSink classifies a call inside the loop body as ordering-sensitive.
func callSink(pass *analysis.Pass, rng *ast.RangeStmt, fn ast.Node, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if isBuiltinAppend(pass, fun) && appendEscapes(pass, rng, fn, call) {
			return "append to slice declared outside the loop"
		}
		// A call through a local bound to a method value (emit :=
		// w.WriteString; emit(k)) reaches the same sink as the direct
		// call; resolve the binding within the enclosing function.
		if obj, ok := pass.TypesInfo.Uses[fun].(*types.Var); ok {
			if s := boundSink(pass, fn, obj); s != "" {
				return "call via " + fun.Name + " bound to ordering-sensitive " + s
			}
		}
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[fun.Sel]
		fn, ok := obj.(*types.Func)
		if !ok {
			return ""
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return ""
		}
		if sig.Recv() != nil {
			if orderSensitiveMethods[fn.Name()] {
				return "call to ordering-sensitive method " + fn.Name()
			}
			return ""
		}
		if fn.Pkg() != nil {
			if names, ok := orderSensitiveFuncs[fn.Pkg().Path()]; ok && names[fn.Name()] {
				return "call to " + fn.Pkg().Path() + "." + fn.Name()
			}
		}
	}
	return ""
}

// methodValueSink classifies an expression as an ordering-sensitive
// method value (w.WriteString taken as a func value) or package function
// value (fmt.Println without a call).
func methodValueSink(pass *analysis.Pass, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() != nil {
		if orderSensitiveMethods[obj.Name()] {
			return "method value " + obj.Name()
		}
		return ""
	}
	if obj.Pkg() != nil {
		if names, ok := orderSensitiveFuncs[obj.Pkg().Path()]; ok && names[obj.Name()] {
			return "function value " + obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

// boundSink reports whether obj is bound, anywhere in the enclosing
// function, to an ordering-sensitive method or function value. Bindings
// before, inside, or after the loop all count: the variable carries the
// writer either way.
func boundSink(pass *analysis.Pass, fn ast.Node, obj types.Object) string {
	if fn == nil || obj == nil {
		return ""
	}
	var sink string
	ast.Inspect(fn, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				o := pass.TypesInfo.Defs[id]
				if o == nil {
					o = pass.TypesInfo.Uses[id]
				}
				if o != obj {
					continue
				}
				if s := methodValueSink(pass, n.Rhs[i]); s != "" {
					sink = s
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if pass.TypesInfo.Defs[id] != obj || i >= len(n.Values) {
					continue
				}
				if s := methodValueSink(pass, n.Values[i]); s != "" {
					sink = s
				}
			}
		}
		return true
	})
	return sink
}

func isBuiltinAppend(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendEscapes reports whether the append target outlives one iteration
// with its insertion order intact: its first argument is not an
// identifier declared inside the loop body, and the target is not handed
// to a sort afterwards (the canonical collect-keys-then-sort fix).
// Non-identifier targets (fields, index expressions) are conservatively
// treated as escaping.
func appendEscapes(pass *analysis.Pass, rng *ast.RangeStmt, fn ast.Node, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return true
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return true
	}
	if within(obj.Pos(), rng.Body) {
		return false
	}
	return !sortedAfter(pass, fn, rng, obj)
}

// sortNames are the sort-package entry points that erase insertion order.
var sortNames = map[string]bool{
	"Ints": true, "Strings": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
}

// sortedAfter reports whether obj is passed to a sort.* or slices.Sort*
// call after the range loop within the same function, which makes the
// collection order immaterial.
func sortedAfter(pass *analysis.Pass, fn ast.Node, rng *ast.RangeStmt, obj types.Object) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := typeutil.Callee(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch path := callee.Pkg().Path(); {
		case path == "sort" && sortNames[callee.Name()]:
		case path == "slices" && strings.HasPrefix(callee.Name(), "Sort"):
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// assignSink flags compound assignments to outer variables whose element
// operation is non-commutative or non-associative: string concatenation
// and floating-point accumulation.
func assignSink(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return ""
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || within(obj.Pos(), rng.Body) {
			continue
		}
		basic, ok := obj.Type().Underlying().(*types.Basic)
		if !ok {
			continue
		}
		switch {
		case basic.Info()&types.IsString != 0:
			return "string concatenation into outer variable " + id.Name
		case basic.Info()&types.IsFloat != 0:
			return "floating-point accumulation into outer variable " + id.Name + " (addition order changes the result)"
		}
	}
	return ""
}

func within(pos token.Pos, node ast.Node) bool {
	return node.Pos() <= pos && pos < node.End()
}
