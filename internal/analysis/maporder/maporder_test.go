package maporder

import (
	"testing"

	"ocd/internal/analysis/analyzertest"
)

func TestMapOrder(t *testing.T) {
	analyzertest.Run(t, "testdata", Analyzer, "a")
}

func TestDirectiveConstant(t *testing.T) {
	// The directive string is documented in DESIGN.md and grep-able; a
	// silent rename would orphan every annotation in the tree.
	if Directive != "//ocd:orderinvariant" {
		t.Fatalf("Directive = %q; annotations in the tree rely on //ocd:orderinvariant", Directive)
	}
}
