package maporder

import (
	"strings"
	"testing"

	"ocd/internal/analysis/analyzertest"
)

func TestMapOrder(t *testing.T) {
	analyzertest.Run(t, "testdata", Analyzer, "a")
}

func TestNegativeFixture(t *testing.T) {
	// A // want on a deterministic slice range must stay unmatched, and
	// the harness must surface that as a mismatch.
	probs := analyzertest.Problems(t, "testdata", Analyzer, "neg")
	if len(probs) != 1 || !strings.Contains(probs[0], "no diagnostic matched") {
		t.Fatalf("want exactly one unmatched-expectation problem, got %q", probs)
	}
}

func TestDirectiveConstant(t *testing.T) {
	// The directive string is documented in DESIGN.md and grep-able; a
	// silent rename would orphan every annotation in the tree.
	if Directive != "//ocd:orderinvariant" {
		t.Fatalf("Directive = %q; annotations in the tree rely on //ocd:orderinvariant", Directive)
	}
}
