// Package analyzertest runs go/analysis analyzers over source fixtures
// and checks their diagnostics against // want annotations.
//
// It is a self-contained, offline replacement for the upstream
// golang.org/x/tools/go/analysis/analysistest package (which is not
// vendored with the Go toolchain): fixtures live under
// <testdata>/src/<importpath>/, are typechecked against the standard
// library via the source importer, and every diagnostic must be matched
// by a // want annotation on the same line, written as one or more
// backquoted regular expressions:
//
//	for k := range m { // want `ordering-sensitive`
//
// Unmatched expectations and unexpected diagnostics both fail the test.
// Fixture files may import only the standard library and sibling fixture
// packages; that keeps the harness hermetic.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the fixture package at <testdata>/src/<pkgpath>, applies the
// analyzer (running its Requires dependencies first), and reports any
// mismatch between diagnostics and // want annotations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	if err := analysis.Validate([]*analysis.Analyzer{a}); err != nil {
		t.Fatalf("invalid analyzer: %v", err)
	}
	diags, fset, files, err := runOnFixture(testdata, a, pkgpath)
	if err != nil {
		t.Fatal(err)
	}
	problems, err := diffDiagnostics(fset, files, diags)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// Problems runs the analyzer on the fixture and returns the mismatches
// between diagnostics and // want annotations without failing the test.
// A nil slice means the fixture is green. Negative-path tests use this
// to prove the harness rejects a // want that does not fire: a harness
// that silently ignored unmatched expectations would let every analyzer
// regress to never firing while its fixtures stayed green.
func Problems(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) []string {
	t.Helper()
	diags, fset, files, err := runOnFixture(testdata, a, pkgpath)
	if err != nil {
		t.Fatal(err)
	}
	problems, err := diffDiagnostics(fset, files, diags)
	if err != nil {
		t.Fatal(err)
	}
	return problems
}

// Diagnostics runs the analyzer on the fixture and returns the raw
// diagnostics, for tests that assert on them directly.
func Diagnostics(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) []analysis.Diagnostic {
	t.Helper()
	diags, _, _, err := runOnFixture(testdata, a, pkgpath)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func runOnFixture(testdata string, a *analysis.Analyzer, pkgpath string) ([]analysis.Diagnostic, *token.FileSet, []*ast.File, error) {
	dir := filepath.Join(testdata, "src", pkgpath)
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, nil, nil, err
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: fixtureImporter{
			testdata: testdata,
			fset:     fset,
			std:      importer.ForCompiler(fset, "source", nil),
			cache:    map[string]*types.Package{},
		},
	}
	pkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("typechecking %s: %v", pkgpath, err)
	}

	var diags []analysis.Diagnostic
	_, err = runAnalyzer(a, fset, files, pkg, info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	}, map[*analysis.Analyzer]interface{}{})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("running %s: %v", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, fset, files, nil
}

// runAnalyzer executes a (and, recursively, its Requires closure) on one
// package, memoizing results so shared dependencies run once.
func runAnalyzer(a *analysis.Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, report func(analysis.Diagnostic),
	results map[*analysis.Analyzer]interface{}) (interface{}, error) {

	if res, done := results[a]; done {
		return res, nil
	}
	resultOf := make(map[*analysis.Analyzer]interface{})
	for _, dep := range a.Requires {
		res, err := runAnalyzer(dep, fset, files, pkg, info, func(analysis.Diagnostic) {}, results)
		if err != nil {
			return nil, fmt.Errorf("dependency %s: %v", dep.Name, err)
		}
		resultOf[dep] = res
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   resultOf,
		Report:     report,
		ReadFile:   os.ReadFile,

		// The analyzers under test declare no FactTypes; stub the fact
		// API so an accidental use fails loudly instead of mysteriously.
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { panic("facts unsupported in analyzertest") },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { panic("facts unsupported in analyzertest") },
		ExportObjectFact:  func(types.Object, analysis.Fact) { panic("facts unsupported in analyzertest") },
		ExportPackageFact: func(analysis.Fact) { panic("facts unsupported in analyzertest") },
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, err
	}
	results[a] = res
	return res, nil
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reading fixture dir: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return files, nil
}

// fixtureImporter resolves standard-library imports through the source
// importer and sibling fixture packages from testdata/src.
type fixtureImporter struct {
	testdata string
	fset     *token.FileSet
	std      types.Importer
	cache    map[string]*types.Package
}

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.testdata, "src", path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		files, err := parseDir(fi.fset, dir)
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: fi}
		pkg, err := conf.Check(path, fi.fset, files, nil)
		if err != nil {
			return nil, err
		}
		fi.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := fi.std.Import(path)
	if err != nil {
		return nil, err
	}
	fi.cache[path] = pkg
	return pkg, nil
}

var wantRE = regexp.MustCompile("// want (.*)$")
var patternRE = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// diffDiagnostics diffs diagnostics against the fixtures' // want
// annotations: unexpected diagnostics and unmatched expectations are
// both mismatches. Malformed fixtures (no backquoted pattern, an
// uncompilable regexp) are errors, not mismatches.
func diffDiagnostics(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) ([]string, error) {
	var wants []*expectation
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(fname)
		if err != nil {
			return nil, fmt.Errorf("re-reading fixture: %v", err)
		}
		for i, lineText := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			pats := patternRE.FindAllStringSubmatch(m[1], -1)
			if len(pats) == 0 {
				return nil, fmt.Errorf("%s:%d: // want with no backquoted pattern", fname, i+1)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad // want pattern %q: %v", fname, i+1, p[1], err)
				}
				wants = append(wants, &expectation{file: fname, line: i + 1, re: re, raw: p[1]})
			}
		}
	}

	var problems []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched // want `%s`", w.file, w.line, w.raw))
		}
	}
	return problems, nil
}
