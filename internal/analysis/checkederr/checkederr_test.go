package checkederr

import (
	"strings"
	"testing"

	"ocd/internal/analysis/analyzertest"
)

func TestCheckedErr(t *testing.T) {
	old := funcsFlag
	if err := Analyzer.Flags.Set("funcs", "a.Validate,(a.Schedule).Check"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { funcsFlag = old })
	analyzertest.Run(t, "testdata", Analyzer, "a")
}

func TestNegativeFixture(t *testing.T) {
	old := funcsFlag
	if err := Analyzer.Flags.Set("funcs", "neg.Validate"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { funcsFlag = old })
	// A // want on a properly consumed result must stay unmatched, and
	// the harness must surface that as a mismatch.
	probs := analyzertest.Problems(t, "testdata", Analyzer, "neg")
	if len(probs) != 1 || !strings.Contains(probs[0], "no diagnostic matched") {
		t.Fatalf("want exactly one unmatched-expectation problem, got %q", probs)
	}
}

func TestDefaultTargets(t *testing.T) {
	// The default set is the runtime half of the determinism contract;
	// losing an entry silently un-guards its call sites.
	for _, want := range []string{
		"ocd.Validate",
		"ocd/internal/core.Validate",
		"ocd/internal/core.ValidateConstraints",
		"ocd/internal/fault.Validate",
	} {
		if !strings.Contains(funcsFlag, want) {
			t.Errorf("default -funcs misses %s", want)
		}
	}
}
