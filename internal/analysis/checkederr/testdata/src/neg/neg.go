// Package neg is the checkederr negative-path fixture: a properly
// consumed validation result with a "want" annotation that must NOT fire, proving
// the harness reports unmatched expectations.
package neg

import "errors"

// Validate plays the role of a tracked validation function.
func Validate() error { return errors.New("invalid") }

func consumes() error {
	if err := Validate(); err != nil { // want `this diagnostic never fires`
		return err
	}
	return nil
}
