// Package a exercises the checkederr analyzer with fixture-local
// stand-ins for the validation functions (the test sets
// -funcs=a.Validate,(a.Schedule).Check).
package a

import "errors"

type Schedule struct{}

// Check plays the role of a validation method.
func (s *Schedule) Check() error { return errors.New("invalid") }

// Validate plays the role of a package-level validation function.
func Validate() error { return nil }

// Audit is NOT in the configured target set.
func Audit() error { return nil }

func discards() {
	Validate()     // want `result of a\.Validate is discarded`
	_ = Validate() // want `result of a\.Validate is discarded`
	var s Schedule
	s.Check()        // want `result of \(a\.Schedule\)\.Check is discarded`
	go Validate()    // want `result of a\.Validate is discarded`
	defer Validate() // want `result of a\.Validate is discarded`
	Audit()          // untracked functions may be dropped
}

func consumes() error {
	if err := Validate(); err != nil {
		return err
	}
	var s Schedule
	err := s.Check()
	if err != nil {
		return err
	}
	return Validate()
}

func propagates() error {
	return (&Schedule{}).Check()
}

func handled(errs *[]error) {
	if err := Validate(); err != nil {
		*errs = append(*errs, err)
	}
}
