// Package checkederr defines an analyzer that requires callers to
// consume the results of the repository's validation functions.
//
// core.Validate, core.ValidateConstraints, and fault.Validate are the
// runtime half of the determinism contract: they certify that a schedule
// obeys the §3.1 move constraints and that a faulted run replays its
// plan byte-for-byte. Discarding their error silently converts a failed
// certification into a reported success, so every call site must check
// (or deliberately propagate) the result.
package checkederr

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

const doc = `require the errors of schedule/plan validation functions to be consumed

Calls to the configured validation functions (by default ocd.Validate,
ocd/internal/core.Validate, ocd/internal/core.ValidateConstraints, and
ocd/internal/fault.Validate) must not discard their error: using the
call as a statement, assigning the error to the blank identifier, or
launching it with go/defer all drop the only evidence that a schedule
or fault replay failed certification.

The -funcs flag replaces the target list. Entries name package-level
functions as "importpath.Func" and methods as "(importpath.Type).Method";
pointer receivers match their value form.`

// Analyzer is the checkederr go/analysis entry point.
var Analyzer = &analysis.Analyzer{
	Name:     "checkederr",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var defaultFuncs = []string{
	"ocd.Validate",
	"ocd/internal/core.Validate",
	"ocd/internal/core.ValidateConstraints",
	"ocd/internal/fault.Validate",
}

var funcsFlag string

func init() {
	Analyzer.Flags.StringVar(&funcsFlag, "funcs", strings.Join(defaultFuncs, ","),
		`comma-separated validation functions ("pkgpath.Func" or "(pkgpath.Type).Method") whose errors must be consumed`)
}

func run(pass *analysis.Pass) (interface{}, error) {
	targets := make(map[string]bool)
	for _, name := range strings.Split(funcsFlag, ",") {
		if name = strings.TrimSpace(name); name != "" {
			targets[name] = true
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.CallExpr)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok {
			return true
		}
		name := qualifiedName(fn)
		if name == "" || !targets[name] {
			return true
		}
		if discarded(pass, call, stack) {
			pass.Reportf(call.Pos(), "result of %s is discarded; the validation error must be checked", name)
		}
		return true
	})
	return nil, nil
}

// qualifiedName renders fn as "pkgpath.Func" for package-level functions
// or "(pkgpath.Type).Method" for methods, stripping pointer receivers.
func qualifiedName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recv := sig.Recv()
	if recv == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return "(" + fn.Pkg().Path() + "." + named.Obj().Name() + ")." + fn.Name()
}

// discarded reports whether the call's results are dropped: expression
// statement, go/defer, or every result assigned to blank.
func discarded(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	// stack ends with the CallExpr itself; the parent precedes it.
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.ExprStmt:
		return true
	case *ast.GoStmt, *ast.DeferStmt:
		return true
	case *ast.AssignStmt:
		// Only the form `x, _ = f()` / `_ = f()` where the call is the
		// sole RHS can drop results wholesale.
		if len(parent.Rhs) != 1 || parent.Rhs[0] != ast.Expr(call) {
			return false
		}
		for _, lhs := range parent.Lhs {
			if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
				return false
			}
		}
		return true
	}
	return false
}
