package sim

// The step-kernel: the one plan→admit→loss→deliver loop shared by all four
// engines (baseline, dynamic, fault, underlay). The kernel owns possession
// state, dense arc-usage accounting, loss draws, idle/stall tracking, and
// schedule assembly; everything engine-specific enters through the small
// policy interfaces below. A correctness fix or allocation win in this loop
// lands in every engine at once.
//
// Equivalence contract: the kernel reproduces each pre-consolidation engine
// byte for byte (see golden_test.go). The ordering facts that contract
// depends on are called out inline — PreStep before the done check, loss
// draws per accepted move in admission order, idle steps appending a nil
// timestep, and metrics finalization left to the caller (the fault engine
// finalizes even on a stall; the others do not).

import (
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/tokenset"
)

// CapacityModel supplies each timestep's effective arc capacities. StepView
// fills eff — indexed by the base graph's dense arc IDs — with this step's
// capacities (0 removes the arc) and returns the instance the strategy
// should plan against, typically a view whose graph reflects the effective
// capacities. A nil CapacityModel means the base graph's static capacities
// and the base instance.
type CapacityModel interface {
	StepView(step int, st *State, eff []int) *core.Instance
}

// LossPolicy decides which accepted moves are dropped in transit. Lost is
// called exactly once per accepted move, in admission order — stateful
// policies (PRNG streams, per-arc draw indices) depend on that ordering.
type LossPolicy interface {
	Lost(step int, mv core.Move, arcID int) bool
}

// StepInterceptor hooks engine-specific semantics into fixed points of the
// kernel's timestep. The fault engine is the canonical implementation:
// crash transitions in PreStep, graceful settlement in StopEarly and
// OnIdleLimit, retransmission accounting in OnDeliver.
type StepInterceptor interface {
	// PreStep runs first in every timestep, before the completion check —
	// crash transitions apply even to a step that then terminates.
	// Implementations that mutate possession wholesale must call
	// st.InvalidateCounts.
	PreStep(step int, st *State)
	// StopEarly runs after the completion check; returning true stops the
	// run with StopEarly (the fault engine's graceful settlement).
	StopEarly(step int, st *State) bool
	// OnDeliver observes each delivered move just before possession grows.
	OnDeliver(step int, mv core.Move)
	// OnIdleLimit is consulted when idle patience is exhausted; returning
	// true stops the run with StopEarly instead of StopStalled.
	OnIdleLimit(step int, st *State) bool
}

// Observer receives per-step callbacks from the kernel. A nil Observer is
// free: the kernel guards every callback behind a nil check and allocates
// nothing on its behalf. Implementations must not retain the delivered
// slice past OnStep nor mutate the state.
type Observer interface {
	// OnStep runs at the end of every executed timestep, idle steps
	// included (delivered is nil for an idle step).
	OnStep(step int, delivered core.Step, st *State)
	// OnMove runs for every accepted move, after its loss draw and before
	// any delivery of the step applies — st.Possess is the admission-time
	// possession the kernel checked the move against.
	OnMove(step int, mv core.Move, arcID int, lost bool, st *State)
	// OnReject runs for every proposed move the kernel discarded.
	OnReject(step int, mv core.Move, st *State)
}

// StopReason reports why the kernel stopped.
type StopReason int

const (
	// StopDone: the completion predicate held at the top of a timestep.
	StopDone StopReason = iota
	// StopLimit: the step limit was exhausted.
	StopLimit
	// StopStalled: idle patience was exhausted with wants unsatisfied.
	StopStalled
	// StopEarly: the interceptor stopped the run (StopEarly or
	// OnIdleLimit returning true).
	StopEarly
)

// Engine parameterizes one kernel run. Zero-value fields select the
// baseline behavior: static capacities, no loss, no interceptor, no extra
// admission, no observer.
type Engine struct {
	// MaxSteps bounds the run; callers compute their engine's default
	// (Theorem 1 horizon multiples) before invoking the kernel.
	MaxSteps int
	// IdlePatience is the number of consecutive zero-move timesteps
	// tolerated before the run stops with StopStalled.
	IdlePatience int
	// Done is the completion predicate; nil means core.Done.
	Done func(inst *core.Instance, possess []tokenset.Set) bool
	// Capacity supplies per-step effective capacities; nil means the base
	// graph's static capacities.
	Capacity CapacityModel
	// Loss drops accepted moves in transit; nil means lossless.
	Loss LossPolicy
	// Interceptor hooks engine-specific per-step semantics; nil means none.
	Interceptor StepInterceptor
	// Admit, when non-nil, is an extra admission predicate run after the
	// kernel's own checks; it may commit side usage (the underlay engine
	// charges physical links here).
	Admit func(step int, mv core.Move, arcID int) bool
	// Observer receives per-step callbacks; nil costs nothing.
	Observer Observer
}

// Run executes the kernel loop over st, assembling the schedule and move
// counters into res, and reports why it stopped along with the step index
// at that moment. Metrics finalization (Completed, Steps, Moves, pruning)
// is the caller's: engines differ on whether a stalled run finalizes.
//
// Admission enforces, in order: token range, arc existence in the base
// graph, effective capacity, sender possession, then the Admit hook. Each
// proposed move is rejected at most once regardless of how many checks it
// fails.
func (eng *Engine) Run(inst *core.Instance, strat Strategy, st *State, res *Result) (StopReason, int) {
	done := eng.Done
	if done == nil {
		done = core.Done
	}
	ic := eng.Interceptor
	obs := eng.Observer

	// Per-timestep arc usage and effective capacities live in dense slices
	// indexed by the base graph's arc IDs — no per-step map churn. With no
	// capacity model the effective view is the static capacities, copied
	// once (CapsByID is the graph's own storage).
	numArcs := inst.G.NumArcs()
	//ocd:scratch
	eff := make([]int, numArcs)
	if eng.Capacity == nil {
		copy(eff, inst.G.CapsByID())
	}
	//ocd:scratch
	used := make([]int, numArcs)
	// accepted/acceptedIDs/delivered are scratch buffers reused across
	// steps; the schedule only ever retains exact-size copies.
	//ocd:scratch
	var accepted core.Step
	//ocd:scratch
	var acceptedIDs []int
	//ocd:scratch
	var delivered core.Step
	idle := 0

	step := 0
	for ; step < eng.MaxSteps; step++ {
		if ic != nil {
			ic.PreStep(step, st)
		}
		if done(inst, st.Possess) {
			return StopDone, step
		}
		if ic != nil && ic.StopEarly(step, st) {
			return StopEarly, step
		}

		view := inst
		if eng.Capacity != nil {
			view = eng.Capacity.StepView(step, st, eff)
		}
		st.Inst = view
		st.Step = step
		proposed := strat.Plan(st)

		clear(used)
		accepted = accepted[:0]
		acceptedIDs = acceptedIDs[:0]
		for _, mv := range proposed {
			id := -1
			if mv.Token >= 0 && mv.Token < inst.NumTokens {
				id = inst.G.ArcID(mv.From, mv.To)
			}
			ok := id >= 0 && used[id] < eff[id] && st.Possess[mv.From].Has(mv.Token)
			if ok && eng.Admit != nil {
				ok = eng.Admit(step, mv, id)
			}
			if !ok {
				res.Rejected++
				if obs != nil {
					obs.OnReject(step, mv, st)
				}
				continue
			}
			used[id]++
			accepted = append(accepted, mv)
			acceptedIDs = append(acceptedIDs, id)
		}

		if len(accepted) == 0 {
			idle++
			if idle > eng.IdlePatience {
				if ic != nil && ic.OnIdleLimit(step, st) {
					return StopEarly, step
				}
				return StopStalled, step
			}
			res.Schedule.Append(nil)
			if obs != nil {
				obs.OnStep(step, nil, st)
			}
			continue
		}
		idle = 0

		delivered = delivered[:0]
		for i, mv := range accepted {
			if eng.Loss != nil && eng.Loss.Lost(step, mv, acceptedIDs[i]) {
				res.Lost++
				if obs != nil {
					obs.OnMove(step, mv, acceptedIDs[i], true, st)
				}
				continue
			}
			delivered = append(delivered, mv)
			if obs != nil {
				obs.OnMove(step, mv, acceptedIDs[i], false, st)
			}
		}
		// The schedule keeps an exact-size copy — the scratch buffer's
		// spare capacity never escapes, and a fully-lost step records nil.
		var out core.Step
		if len(delivered) > 0 {
			out = make(core.Step, len(delivered))
			copy(out, delivered)
		}
		for _, mv := range out {
			if ic != nil {
				ic.OnDeliver(step, mv)
			}
			st.Deliver(mv)
		}
		res.Schedule.Append(out)
		if obs != nil {
			obs.OnStep(step, out, st)
		}
	}
	return StopLimit, step
}

// Finalize fills the summary fields of a completed (non-stalled) run:
// Completed, Steps, Moves (delivered plus lost), and the pruning post-pass.
func (res *Result) Finalize(inst *core.Instance, possess []tokenset.Set,
	done func(inst *core.Instance, possess []tokenset.Set) bool, prune bool) {
	res.Completed = done(inst, possess)
	res.Steps = res.Schedule.Makespan()
	res.Moves = res.Schedule.Moves() + res.Lost
	if prune && res.Completed {
		res.PrunedMoves = core.Prune(inst, res.Schedule).Moves()
	}
}

// RateLossPolicy is the §6 independent-loss model: each accepted move is
// dropped with probability rate, drawn from the dedicated loss stream for
// seed (LossRand) so the strategy stream is unperturbed. A non-positive
// rate returns nil — the kernel then makes no draws at all, exactly as when
// loss is disabled.
func RateLossPolicy(rate float64, seed int64) LossPolicy {
	if rate <= 0 {
		return nil
	}
	return &rateLoss{rate: rate, rng: LossRand(seed)}
}

type rateLoss struct {
	rate float64
	rng  *rand.Rand
}

func (l *rateLoss) Lost(int, core.Move, int) bool { return l.rng.Float64() < l.rate }

// WrapStrategy lifts a per-run strategy wrapper into a Factory: the inner
// factory builds its strategy, then wrap decorates it. Wrappers compose
// facade names (e.g. retry(roundrobin), oracle(global)) that experiment
// tables key on, so Name composition is pinned by tests.
func WrapStrategy(inner Factory, wrap func(inst *core.Instance, s Strategy) (Strategy, error)) Factory {
	return func(inst *core.Instance, rng *rand.Rand) (Strategy, error) {
		s, err := inner(inst, rng)
		if err != nil {
			return nil, err
		}
		return wrap(inst, s)
	}
}
