package sim_test

// Golden equivalence tests for the step-kernel consolidation: each of the
// four engines (baseline, dynamic, fault, underlay) is run on seeded
// transit-stub instances for every heuristic, and the observable outcome —
// makespan, moves, rejected, lost, and an FNV-1a hash of the full schedule
// — is pinned against values recorded on the pre-kernel engines. Any
// divergence means the consolidation changed behavior, not just structure.
//
// To regenerate the table after an intentional semantic change, run:
//
//	OCD_GOLDEN_PRINT=1 go test ./internal/sim -run TestGoldenEngineEquivalence -v
//
// and paste the printed table over goldenEngineTable below. Regenerating is
// a deliberate act: it asserts the behavior change was intended.

import (
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"testing"

	"ocd/internal/core"
	"ocd/internal/dynamic"
	"ocd/internal/fault"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/underlay"
	"ocd/internal/workload"
)

// hashSchedule folds every step boundary and move of a schedule into an
// FNV-1a digest, so two schedules hash equal iff they are move-for-move
// identical.
func hashSchedule(sched *core.Schedule) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(x int) {
		v := uint64(x)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, st := range sched.Steps {
		writeInt(-1) // step boundary marker
		for _, mv := range st {
			writeInt(mv.From)
			writeInt(mv.To)
			writeInt(mv.Token)
		}
	}
	return h.Sum64()
}

// summarize renders one run outcome as a single golden line.
func summarize(res *sim.Result, err error) string {
	if res == nil {
		return fmt.Sprintf("err=%v", err)
	}
	errTag := "nil"
	if err != nil {
		errTag = "stalled"
	}
	return fmt.Sprintf("steps=%d moves=%d rejected=%d lost=%d hash=%016x err=%s",
		res.Steps, res.Moves, res.Rejected, res.Lost, hashSchedule(res.Schedule), errTag)
}

// goldenEngineRuns executes the fixed engine × heuristic grid and renders
// one line per cell.
func goldenEngineRuns(t *testing.T) string {
	t.Helper()
	g, err := topology.TransitStubN(36, topology.DefaultCaps, 7)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 24)

	net, err := underlay.RandomNetwork(60, 14, 2, topology.DefaultCaps, 9)
	if err != nil {
		t.Fatal(err)
	}
	instU := workload.SingleFile(net.Overlay, 16)

	var b strings.Builder
	for i, factory := range heuristics.All() {
		name := heuristics.Names()[i]

		res, err := sim.Run(inst, factory, sim.Options{Seed: 11, IdlePatience: 20, Prune: true})
		fmt.Fprintf(&b, "base/%s: %s\n", name, summarize(res, err))

		res, err = sim.Run(inst, factory, sim.Options{Seed: 11, LossRate: 0.15, IdlePatience: 30})
		fmt.Fprintf(&b, "base-lossy/%s: %s\n", name, summarize(res, err))

		dres, err := dynamic.Run(inst, factory,
			dynamic.CrossTraffic{MaxShare: 0.6, Seed: 3}, sim.Options{Seed: 11, IdlePatience: 30})
		fmt.Fprintf(&b, "dynamic-cross/%s: %s\n", name, sumDyn(dres, err))

		dres, err = dynamic.Run(inst, factory,
			dynamic.NewAdversary(inst, g.NumArcs()/8), sim.Options{Seed: 11, IdlePatience: 30})
		fmt.Fprintf(&b, "dynamic-adversary/%s: %s\n", name, sumDyn(dres, err))

		fres, err := fault.Run(inst, factory, fault.AtIntensity(0.35, 13, 0),
			sim.Options{Seed: 11, IdlePatience: 40})
		fmt.Fprintf(&b, "fault-chaos/%s: %s\n", name, sumFault(fres, err))

		fres, err = fault.Run(inst, factory, fault.Plan{
			Crashes: fault.CrashSchedule{Events: []fault.CrashEvent{
				{V: 0, At: 4, RecoverAt: -1},
			}},
			StateLoss: fault.DropAll,
		}, sim.Options{Seed: 11, IdlePatience: 40})
		fmt.Fprintf(&b, "fault-crash/%s: %s\n", name, sumFault(fres, err))

		ures, err := net.Run(instU, factory, sim.Options{Seed: 11, IdlePatience: 30})
		fmt.Fprintf(&b, "underlay/%s: %s\n", name, summarize(ures, err))
	}
	return b.String()
}

func sumDyn(res *dynamic.Result, err error) string {
	if res == nil {
		return fmt.Sprintf("err=%v", err)
	}
	return summarize(res.Result, err)
}

func sumFault(res *fault.Result, err error) string {
	if res == nil {
		return fmt.Sprintf("err=%v", err)
	}
	// Faulted runs always finalize their metrics, even on a stall; the
	// graceful flag is part of the pinned behavior.
	return fmt.Sprintf("%s graceful=%v", summarize(res.Result, err), res.Graceful)
}

func TestGoldenEngineEquivalence(t *testing.T) {
	got := goldenEngineRuns(t)
	if os.Getenv("OCD_GOLDEN_PRINT") != "" {
		fmt.Print(got)
		return
	}
	want := strings.TrimPrefix(goldenEngineTable, "\n")
	if got == want {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(want, "\n")
	for i := range gotLines {
		if i >= len(wantLines) {
			t.Errorf("extra line %d: %s", i, gotLines[i])
			continue
		}
		if gotLines[i] != wantLines[i] {
			t.Errorf("line %d:\n got: %s\nwant: %s", i, gotLines[i], wantLines[i])
		}
	}
	if len(wantLines) > len(gotLines) {
		t.Errorf("missing %d lines", len(wantLines)-len(gotLines))
	}
}

// goldenEngineTable was recorded on the pre-kernel engines (commit
// f592303); the unified kernel must reproduce it byte for byte.
const goldenEngineTable = `
base/roundrobin: steps=12 moves=7999 rejected=0 lost=0 hash=deff66d945966b21 err=nil
base-lossy/roundrobin: steps=27 moves=20118 rejected=0 lost=3047 hash=3d89a8d96e4de11a err=nil
dynamic-cross/roundrobin: steps=21 moves=9758 rejected=0 lost=0 hash=29a86cc46a8089b1 err=nil
dynamic-adversary/roundrobin: steps=62 moves=39009 rejected=0 lost=0 hash=51f1bee87de23b28 err=nil
fault-chaos/roundrobin: steps=314 moves=234114 rejected=0 lost=20114 hash=9990d09f4aa0d15b err=nil graceful=false
fault-crash/roundrobin: steps=12 moves=6895 rejected=0 lost=0 hash=a63f3a589c6d5499 err=nil graceful=false
underlay/roundrobin: steps=862 moves=91997 rejected=207885 lost=0 hash=3542a99fa61f8c61 err=nil
base/random: steps=11 moves=974 rejected=0 lost=0 hash=e31e07aa661ad489 err=nil
base-lossy/random: steps=14 moves=1142 rejected=0 lost=170 hash=ba24b56663828d1b err=nil
dynamic-cross/random: steps=19 moves=968 rejected=0 lost=0 hash=28845ccabc3baf86 err=nil
dynamic-adversary/random: steps=46 moves=964 rejected=0 lost=0 hash=695d1568009b86dc err=nil
fault-chaos/random: steps=184 moves=3362 rejected=0 lost=252 hash=0a1fee599fc5bcd1 err=nil graceful=false
fault-crash/random: steps=11 moves=965 rejected=0 lost=0 hash=13a57f04472c3c6a err=nil graceful=false
underlay/random: steps=10 moves=253 rejected=387 lost=0 hash=39213da23a77b351 err=nil
base/local: steps=11 moves=936 rejected=0 lost=0 hash=27422782b91fce41 err=nil
base-lossy/local: steps=14 moves=1102 rejected=0 lost=166 hash=ef2bd554e7e72f31 err=nil
dynamic-cross/local: steps=19 moves=936 rejected=0 lost=0 hash=66f41fe4d7a5455f err=nil
dynamic-adversary/local: steps=45 moves=936 rejected=0 lost=0 hash=9a2ad81082432d3f err=nil
fault-chaos/local: steps=184 moves=2753 rejected=0 lost=204 hash=3b48ca48609433c8 err=nil graceful=false
fault-crash/local: steps=11 moves=936 rejected=0 lost=0 hash=9166cbb9c51c2fdc err=nil graceful=false
underlay/local: steps=9 moves=208 rejected=170 lost=0 hash=d132562d5b132784 err=nil
base/bandwidth: steps=11 moves=936 rejected=0 lost=0 hash=24d212ba6685218c err=nil
base-lossy/bandwidth: steps=15 moves=1102 rejected=0 lost=166 hash=9c02e7cff7829313 err=nil
dynamic-cross/bandwidth: steps=19 moves=936 rejected=0 lost=0 hash=b95e78562b9069ce err=nil
dynamic-adversary/bandwidth: steps=45 moves=936 rejected=0 lost=0 hash=ce5a968c07a624a1 err=nil
fault-chaos/bandwidth: steps=184 moves=2764 rejected=0 lost=215 hash=d752603a8c8c7cb5 err=nil graceful=false
fault-crash/bandwidth: steps=11 moves=936 rejected=0 lost=0 hash=3fbd68faa2e05bc0 err=nil graceful=false
underlay/bandwidth: steps=8 moves=208 rejected=142 lost=0 hash=49d18fc228474d05 err=nil
base/global: steps=11 moves=936 rejected=0 lost=0 hash=d2b9d795811129f2 err=nil
base-lossy/global: steps=14 moves=1102 rejected=0 lost=166 hash=713513021c429d37 err=nil
dynamic-cross/global: steps=19 moves=936 rejected=0 lost=0 hash=04828daf54f63583 err=nil
dynamic-adversary/global: steps=45 moves=936 rejected=0 lost=0 hash=411db6a3fe247931 err=nil
fault-chaos/global: steps=184 moves=2760 rejected=0 lost=211 hash=0466b97462cd3d66 err=nil graceful=false
fault-crash/global: steps=11 moves=936 rejected=0 lost=0 hash=452c5cfe2600cced err=nil graceful=false
underlay/global: steps=8 moves=208 rejected=168 lost=0 hash=bec595151032bff4 err=nil
`
