// Package sim executes distribution strategies over OCD instances one
// timestep at a time, producing schedules in the §3.1 model.
//
// The engine owns the ground truth (current possession per vertex) and
// enforces the Capacity and Possession constraints on whatever a strategy
// proposes, so a buggy strategy cannot produce an invalid schedule — the
// offending moves are rejected and reported in the run statistics. Each
// heuristic in internal/heuristics declares the knowledge it relies on
// (§4.1/§5.1) through the view it reads; the engine simply hands out a
// read-only view of the state.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/tokenset"
)

// State is the read-only view a strategy receives each timestep.
//
// Which fields a strategy may consult is a modelling decision documented on
// the strategy itself: Round Robin only reads Possess[v] for its own v;
// Random additionally reads the possession of out-neighbors; Local reads
// the global aggregate vectors; Bandwidth and Global read everything
// (they are the paper's global-knowledge heuristics).
type State struct {
	Inst *core.Instance
	// Possess is the current possession p_i(v) per vertex. Strategies must
	// not mutate these sets. Engines that mutate them directly (instead of
	// through Deliver) must call InvalidateCounts afterwards.
	Possess []tokenset.Set
	// Step is the index of the timestep being planned (0-based).
	Step int
	// Rand is the per-run PRNG for randomized strategies.
	Rand *rand.Rand

	// counts caches the per-token holder counts |{v : t ∈ p(v)}|, computed
	// lazily by HaveCounts and maintained incrementally by Deliver.
	counts []int
}

// Missing returns w(v) \ p(v) for vertex v as a fresh set.
func (s *State) Missing(v int) tokenset.Set {
	return s.Inst.Want[v].Difference(s.Possess[v])
}

// Lacking returns T \ p(v): every token v does not yet possess.
func (s *State) Lacking(v int) tokenset.Set {
	full := tokenset.Full(s.Inst.NumTokens)
	full.DifferenceWith(s.Possess[v])
	return full
}

// MissingInto overwrites dst with w(v) \ p(v) without allocating. dst must
// have universe NumTokens.
func (s *State) MissingInto(v int, dst tokenset.Set) {
	dst.SetDifference(s.Inst.Want[v], s.Possess[v])
}

// LackingInto overwrites dst with T \ p(v) without allocating. dst must
// have universe NumTokens.
func (s *State) LackingInto(v int, dst tokenset.Set) {
	dst.Fill()
	dst.DifferenceWith(s.Possess[v])
}

// HaveCounts returns, for each token t, the number of vertices currently
// possessing t (the rarity signal shared by the rarest-first heuristics).
// The first call computes the counts in O(n·T/64); afterwards Deliver keeps
// them current in O(1) per delivery, so per-step strategies no longer pay
// the full recount. The returned slice is the state's own cache: read-only.
func (s *State) HaveCounts() []int {
	if s.counts == nil {
		s.counts = make([]int, s.Inst.NumTokens)
		for _, p := range s.Possess {
			p.ForEach(func(t int) bool {
				s.counts[t]++
				return true
			})
		}
	}
	return s.counts
}

// Deliver records the delivery of mv: the destination gains the token and
// the cached have-counts are updated incrementally. Engines must route all
// possession growth through this method (or call InvalidateCounts after
// mutating Possess directly).
func (s *State) Deliver(mv core.Move) {
	if s.counts != nil && !s.Possess[mv.To].Has(mv.Token) {
		s.counts[mv.Token]++
	}
	s.Possess[mv.To].Add(mv.Token)
}

// InvalidateCounts drops the cached have-counts; the next HaveCounts call
// recomputes them. Needed after wholesale possession edits such as the
// fault engine's state-loss events.
func (s *State) InvalidateCounts() { s.counts = nil }

// Strategy plans the moves of one timestep. Implementations may keep
// per-run state (e.g. Round Robin's per-arc cursor); a fresh Strategy is
// created for every run via its Factory.
type Strategy interface {
	// Name identifies the heuristic in tables and logs.
	Name() string
	// Plan returns the moves to attempt this timestep. The engine clips
	// them against capacity and possession.
	Plan(st *State) []core.Move
}

// Factory creates a fresh strategy instance for a run. Strategies that
// precompute static structure (e.g. all-pairs distances for Bandwidth)
// do so here.
type Factory func(inst *core.Instance, rng *rand.Rand) (Strategy, error)

// Failer is implemented by strategies that can fail internally and want
// the cause surfaced when a run stalls (e.g. the fault package's retry
// wrapper after exhausting MaxAttempts). Engines join a non-nil Err into
// the stall error; a strategy that has not failed returns nil.
type Failer interface {
	// Err reports why the strategy stopped proposing moves, or nil.
	Err() error
}

// Result summarizes a completed run.
type Result struct {
	Strategy string
	Schedule *core.Schedule
	// Completed reports whether every want set was satisfied within the
	// step limit.
	Completed bool
	// Steps is the makespan (number of timesteps used).
	Steps int
	// Moves is the bandwidth consumed (total moves).
	Moves int
	// PrunedMoves is the bandwidth after the §5.1 pruning post-pass.
	PrunedMoves int
	// Rejected counts strategy-proposed moves the engine had to discard
	// for violating capacity or possession. Zero for correct strategies.
	Rejected int
	// Lost counts accepted moves dropped by the loss model (Options.
	// LossRate); they consumed capacity but delivered nothing.
	Lost int
}

// Options configures a run.
type Options struct {
	// MaxSteps caps the schedule length. Zero means the Theorem 1 horizon
	// m·(n−1).
	MaxSteps int
	// Seed seeds the run's PRNG.
	Seed int64
	// Prune controls whether Result.PrunedMoves is computed.
	Prune bool
	// IdlePatience is the number of consecutive zero-move timesteps
	// tolerated before the run is declared stalled. Idle steps count
	// toward the makespan; the §4.2 "propagate knowledge, then plan"
	// oracle relies on this to model its diameter-long listening phase.
	IdlePatience int
	// LossRate, when positive, drops each accepted move with this
	// probability before delivery (the §6 "lossy channels" open problem).
	// Lost moves consume capacity and count as bandwidth and in
	// Result.Lost, but deliver nothing; the schedule records only the
	// successful moves so it always validates against the static model.
	LossRate float64
	// Done overrides the completion predicate (default: every want set is
	// satisfied). The §6 encoding extension uses this for "any k of n
	// coded tokens" semantics.
	Done func(inst *core.Instance, possess []tokenset.Set) bool
	// Observer, when non-nil, receives the kernel's per-step callbacks
	// (internal/trace.StepCollector is the standard consumer). A nil
	// Observer adds no work to the hot loop.
	Observer Observer
}

// ErrStalled is returned when a strategy makes no progress for a full
// timestep while wants remain unsatisfied (the engine also stops at
// MaxSteps without this error, reporting Completed=false).
var ErrStalled = errors.New("sim: strategy stalled with unsatisfied wants")

// lossStreamSalt separates the loss model's PRNG stream from the strategy
// stream. Drawing both from one source would make enabling LossRate change
// every randomized strategy's decisions for the same seed.
const lossStreamSalt int64 = 0x6c6f7373 // "loss"

// LossRand returns the engine's dedicated loss-draw PRNG for a run seed.
// Exported so alternative engines (internal/dynamic) drop losses from the
// identical stream.
func LossRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ lossStreamSalt))
}

// Run executes the strategy produced by factory on inst until every want is
// satisfied or the step limit is reached. It is the baseline composition
// over the step-kernel: static capacities, the §6 independent-loss model,
// no interceptor.
func Run(inst *core.Instance, factory Factory, opts Options) (*Result, error) {
	if err := inst.Check(); err != nil {
		return nil, err
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		// Theorem 1 horizon plus the permitted idle prefix.
		maxSteps = inst.TheoremOneHorizon() + opts.IdlePatience
		if maxSteps < 1 {
			maxSteps = 1
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	strat, err := factory(inst, rng)
	if err != nil {
		return nil, fmt.Errorf("sim: create strategy: %w", err)
	}
	done := opts.Done
	if done == nil {
		done = core.Done
	}

	st := &State{
		Inst:    inst,
		Possess: inst.InitialPossession(),
		Rand:    rng,
	}
	res := &Result{Strategy: strat.Name(), Schedule: &core.Schedule{}}
	eng := Engine{
		MaxSteps:     maxSteps,
		IdlePatience: opts.IdlePatience,
		Done:         done,
		Loss:         RateLossPolicy(opts.LossRate, opts.Seed),
		Observer:     opts.Observer,
	}
	reason, stepAt := eng.Run(inst, strat, st, res)
	if reason == StopStalled {
		// A stalled run reports its partial schedule without finalized
		// summary metrics, matching the engine's historical contract.
		err := fmt.Errorf("%w: step %d, strategy %s", ErrStalled, stepAt, strat.Name())
		if fs, ok := strat.(Failer); ok {
			if ferr := fs.Err(); ferr != nil {
				err = errors.Join(err, ferr)
			}
		}
		return res, err
	}
	res.Finalize(inst, st.Possess, done, opts.Prune)
	return res, nil
}
