package sim_test

import (
	"errors"
	"math/rand"
	"testing"

	"ocd/internal/competitive"
	"ocd/internal/core"
	"ocd/internal/fault"
	"ocd/internal/heuristics"
	"ocd/internal/sim"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

// named is a trivial strategy for exercising WrapStrategy in isolation.
type named struct{ name string }

func (n named) Name() string                { return n.name }
func (n named) Plan(*sim.State) []core.Move { return nil }

func TestWrapStrategy(t *testing.T) {
	g, err := topology.Line(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 1)

	t.Run("decorates inner strategy", func(t *testing.T) {
		inner := func(*core.Instance, *rand.Rand) (sim.Strategy, error) {
			return named{"inner"}, nil
		}
		var sawInst *core.Instance
		wrapped := sim.WrapStrategy(inner, func(i *core.Instance, s sim.Strategy) (sim.Strategy, error) {
			sawInst = i
			return named{"wrap(" + s.Name() + ")"}, nil
		})
		s, err := wrapped(inst, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Name(); got != "wrap(inner)" {
			t.Errorf("wrapped Name() = %q, want wrap(inner)", got)
		}
		if sawInst != inst {
			t.Error("wrap did not receive the run's instance")
		}
	})

	t.Run("propagates inner factory error", func(t *testing.T) {
		boom := errors.New("boom")
		inner := func(*core.Instance, *rand.Rand) (sim.Strategy, error) { return nil, boom }
		wrapped := sim.WrapStrategy(inner, func(_ *core.Instance, s sim.Strategy) (sim.Strategy, error) {
			t.Error("wrap must not run when the inner factory fails")
			return s, nil
		})
		if _, err := wrapped(inst, rand.New(rand.NewSource(1))); !errors.Is(err, boom) {
			t.Errorf("error = %v, want inner factory error", err)
		}
	})
}

// TestWrapperNameComposition pins the facade-name composition of the two
// production wrappers: experiment tables key on these exact strings, so a
// change here silently re-keys every downstream table.
func TestWrapperNameComposition(t *testing.T) {
	g, err := topology.Line(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 1)
	rng := rand.New(rand.NewSource(1))

	retry, err := fault.WithRetry(heuristics.RoundRobin, fault.RetryOptions{})(inst, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := retry.Name(); got != "retry(roundrobin)" {
		t.Errorf("retry wrapper Name() = %q, want retry(roundrobin)", got)
	}

	oracle, err := competitive.Oracle(heuristics.RoundRobin)(inst, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := oracle.Name(); got != "oracle(roundrobin)" {
		t.Errorf("oracle wrapper Name() = %q, want oracle(roundrobin)", got)
	}

	nested, err := competitive.Oracle(fault.WithRetry(heuristics.RoundRobin, fault.RetryOptions{}))(inst, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := nested.Name(); got != "oracle(retry(roundrobin))" {
		t.Errorf("nested wrapper Name() = %q, want oracle(retry(roundrobin))", got)
	}
}
