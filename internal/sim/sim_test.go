package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ocd/internal/core"
	"ocd/internal/graph"
	"ocd/internal/tokenset"
)

// lineInstance is 0→1→…→n−1 with capacity c; vertex 0 holds m tokens,
// the tail wants them all.
func lineInstance(t *testing.T, n, m, c int) *core.Instance {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddArc(i, i+1, c); err != nil {
			t.Fatal(err)
		}
	}
	inst := core.NewInstance(g, m)
	inst.Have[0].AddRange(0, m)
	inst.Want[n-1].AddRange(0, m)
	return inst
}

// pusher is a minimal correct strategy: every vertex sends every useful
// token to each successor up to capacity.
type pusher struct{}

func (pusher) Name() string { return "pusher" }

func (pusher) Plan(st *State) []core.Move {
	var moves []core.Move
	for u := 0; u < st.Inst.N(); u++ {
		for _, a := range st.Inst.G.Out(u) {
			sent := 0
			st.Possess[u].ForEach(func(tok int) bool {
				if sent >= a.Cap {
					return false
				}
				if !st.Possess[a.To].Has(tok) {
					moves = append(moves, core.Move{From: u, To: a.To, Token: tok})
					sent++
				}
				return true
			})
		}
	}
	return moves
}

func pusherFactory(_ *core.Instance, _ *rand.Rand) (Strategy, error) {
	return pusher{}, nil
}

func TestRunCompletesAndValidates(t *testing.T) {
	inst := lineInstance(t, 4, 3, 2)
	res, err := Run(inst, pusherFactory, Options{Seed: 1, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if err := core.Validate(inst, res.Schedule); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	// 3 tokens over 3 hops at capacity 2: steps = 3 hops + 1 extra for the
	// second batch ≥ 4; just sanity-check metrics agree with the schedule.
	if res.Steps != res.Schedule.Makespan() || res.Moves != res.Schedule.Moves() {
		t.Error("result metrics disagree with schedule")
	}
	if res.PrunedMoves == 0 || res.PrunedMoves > res.Moves {
		t.Errorf("pruned moves %d out of range (moves %d)", res.PrunedMoves, res.Moves)
	}
	if res.Rejected != 0 {
		t.Errorf("correct strategy had %d rejected moves", res.Rejected)
	}
}

// violator proposes moves that break possession and capacity; the engine
// must clip them and count rejections.
type violator struct{}

func (violator) Name() string { return "violator" }

func (violator) Plan(st *State) []core.Move {
	return []core.Move{
		{From: 1, To: 2, Token: 0},  // vertex 1 has nothing on step 0
		{From: 0, To: 1, Token: 0},  // fine
		{From: 0, To: 1, Token: 0},  // duplicate but within capacity 2
		{From: 0, To: 1, Token: 99}, // token out of range
		{From: 0, To: 2, Token: 0},  // arc does not exist
	}
}

func TestRunRejectsIllegalMoves(t *testing.T) {
	inst := lineInstance(t, 3, 1, 2)
	res, err := Run(inst, func(*core.Instance, *rand.Rand) (Strategy, error) {
		return violator{}, nil
	}, Options{Seed: 1})
	// The violator eventually completes: its legal move is delivered each
	// step and vertex 1 starts sending once it holds the token... it never
	// sends 1→2 legally? It always proposes (1,2,0): once vertex 1 holds
	// token 0 that move becomes legal.
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("violator run did not complete")
	}
	if res.Rejected == 0 {
		t.Error("no rejected moves counted")
	}
	if err := core.Validate(inst, res.Schedule); err != nil {
		t.Fatalf("engine emitted invalid schedule: %v", err)
	}
}

// silent never proposes anything.
type silent struct{}

func (silent) Name() string            { return "silent" }
func (silent) Plan(*State) []core.Move { return nil }

func TestRunStallDetection(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	_, err := Run(inst, func(*core.Instance, *rand.Rand) (Strategy, error) {
		return silent{}, nil
	}, Options{Seed: 1})
	if !errors.Is(err, ErrStalled) {
		t.Errorf("want ErrStalled, got %v", err)
	}
}

// lazy idles for `wait` steps, then behaves like pusher.
type lazy struct {
	wait int
}

func (l *lazy) Name() string { return "lazy" }

func (l *lazy) Plan(st *State) []core.Move {
	if st.Step < l.wait {
		return nil
	}
	return pusher{}.Plan(st)
}

func TestRunIdlePatience(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	factory := func(*core.Instance, *rand.Rand) (Strategy, error) {
		return &lazy{wait: 3}, nil
	}
	if _, err := Run(inst, factory, Options{Seed: 1, IdlePatience: 1}); !errors.Is(err, ErrStalled) {
		t.Errorf("patience 1 should stall, got %v", err)
	}
	res, err := Run(inst, factory, Options{Seed: 1, IdlePatience: 3})
	if err != nil {
		t.Fatalf("patience 3 failed: %v", err)
	}
	if !res.Completed {
		t.Error("lazy run did not complete")
	}
	// Idle steps count toward the makespan.
	if res.Steps != 3+2 {
		t.Errorf("makespan = %d, want 5 (3 idle + 2 hops)", res.Steps)
	}
}

func TestRunAlreadyDone(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	inst.Want[2].Clear() // nobody wants anything
	res, err := Run(inst, pusherFactory, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Steps != 0 || res.Moves != 0 {
		t.Errorf("trivially-done run: %+v", res)
	}
}

func TestRunMaxStepsBound(t *testing.T) {
	inst := lineInstance(t, 5, 1, 1)
	res, err := Run(inst, pusherFactory, Options{Seed: 1, MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("completed despite tiny step budget")
	}
	if res.Steps > 2 {
		t.Errorf("ran %d steps, limit 2", res.Steps)
	}
}

func TestRunRejectsBrokenInstance(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	inst.Have[0].Clear() // wanted token held by nobody
	if _, err := Run(inst, pusherFactory, Options{Seed: 1}); err == nil {
		t.Error("broken instance accepted")
	}
}

func TestStateHelpers(t *testing.T) {
	inst := lineInstance(t, 3, 4, 1)
	inst.Want[1].Add(2)
	st := &State{Inst: inst, Possess: inst.InitialPossession()}
	if got := st.Missing(1).Slice(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Missing(1) = %v", got)
	}
	if got := st.Lacking(0).Count(); got != 0 {
		t.Errorf("Lacking(source) = %d tokens", got)
	}
	if got := st.Lacking(2).Count(); got != 4 {
		t.Errorf("Lacking(2) = %d, want 4", got)
	}
}

func TestFactoryErrorPropagates(t *testing.T) {
	inst := lineInstance(t, 3, 1, 1)
	_, err := Run(inst, func(*core.Instance, *rand.Rand) (Strategy, error) {
		return nil, errors.New("boom")
	}, Options{Seed: 1})
	if err == nil {
		t.Error("factory error swallowed")
	}
}

func TestRunLossModel(t *testing.T) {
	// With 50% loss on a single link, bandwidth includes the lost moves
	// and the recorded schedule still validates (only successful moves
	// are recorded).
	inst := lineInstance(t, 2, 20, 4)
	res, err := Run(inst, pusherFactory, Options{
		Seed: 9, LossRate: 0.5, MaxSteps: 500, IdlePatience: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("lossy run incomplete")
	}
	if res.Lost == 0 {
		t.Error("no losses at 50% loss rate")
	}
	if res.Moves != res.Schedule.Moves()+res.Lost {
		t.Errorf("bandwidth accounting: %d != %d + %d",
			res.Moves, res.Schedule.Moves(), res.Lost)
	}
	if err := core.Validate(inst, res.Schedule); err != nil {
		t.Fatalf("lossy schedule invalid: %v", err)
	}
}

func TestRunLossZeroIsLossless(t *testing.T) {
	inst := lineInstance(t, 3, 5, 2)
	res, err := Run(inst, pusherFactory, Options{Seed: 1, LossRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Errorf("lost %d moves at zero loss rate", res.Lost)
	}
}

// randomPusher picks a uniformly random useful token per arc each turn —
// a minimal randomized strategy whose decisions expose any perturbation of
// the strategy PRNG stream.
type randomPusher struct{}

func (randomPusher) Name() string { return "random-pusher" }

func (randomPusher) Plan(st *State) []core.Move {
	var moves []core.Move
	for u := 0; u < st.Inst.N(); u++ {
		for _, a := range st.Inst.G.Out(u) {
			useful := st.Possess[u].Difference(st.Possess[a.To]).Slice()
			for c := 0; c < a.Cap && len(useful) > 0; c++ {
				i := st.Rand.Intn(len(useful))
				moves = append(moves, core.Move{From: u, To: a.To, Token: useful[i]})
				useful = append(useful[:i], useful[i+1:]...)
			}
		}
	}
	return moves
}

// recorder logs every move its inner strategy proposes.
type recorder struct {
	inner Strategy
	log   *[]core.Move
}

func (r recorder) Name() string { return r.inner.Name() }

func (r recorder) Plan(st *State) []core.Move {
	mvs := r.inner.Plan(st)
	*r.log = append(*r.log, mvs...)
	return mvs
}

// TestLossStreamDecoupledFromStrategy is the regression test for the
// loss/strategy PRNG coupling: enabling LossRate must not change a
// randomized strategy's decisions for the same seed. A loss rate small
// enough to never actually drop anything still performs a draw per
// delivered move, so with a shared stream the two runs below would
// diverge from the second timestep on.
func TestLossStreamDecoupledFromStrategy(t *testing.T) {
	inst := lineInstance(t, 4, 6, 2)
	run := func(loss float64) ([]core.Move, *Result) {
		var log []core.Move
		res, err := Run(inst, func(*core.Instance, *rand.Rand) (Strategy, error) {
			return recorder{inner: randomPusher{}, log: &log}, nil
		}, Options{Seed: 42, LossRate: loss, IdlePatience: 5})
		if err != nil {
			t.Fatal(err)
		}
		return log, res
	}
	plain, _ := run(0)
	lossy, res := run(1e-12)
	if res.Lost != 0 {
		t.Fatalf("wanted a drop-free lossy run, lost %d", res.Lost)
	}
	if !res.Completed {
		t.Fatal("lossy run incomplete")
	}
	if len(plain) == 0 || !reflect.DeepEqual(plain, lossy) {
		t.Error("enabling LossRate changed the strategy's proposed moves for the same seed")
	}
}

func TestRunCustomDone(t *testing.T) {
	// Stop as soon as vertex 1 holds 2 of the 4 tokens (a threshold
	// predicate, the §6 coding hook).
	inst := lineInstance(t, 2, 4, 1)
	res, err := Run(inst, pusherFactory, Options{
		Seed: 1,
		Done: func(in *core.Instance, possess []tokenset.Set) bool {
			return possess[1].Count() >= 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("custom-done run incomplete")
	}
	if res.Steps != 2 {
		t.Errorf("steps = %d, want 2 (capacity 1, threshold 2)", res.Steps)
	}
}
