package cliutil

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ocd/internal/telemetry"
)

func TestParseFloats(t *testing.T) {
	xs, err := ParseFloats("0, 0.5,,1")
	if err != nil || !reflect.DeepEqual(xs, []float64{0, 0.5, 1}) {
		t.Fatalf("got %v, %v", xs, err)
	}
	if _, err := ParseFloats("0,abc"); err == nil {
		t.Error("bad float accepted")
	}
	if xs, err := ParseFloats(""); err != nil || xs != nil {
		t.Errorf("empty list: got %v, %v", xs, err)
	}
}

func TestParseInts(t *testing.T) {
	xs, err := ParseInts("1, -1, 16")
	if err != nil || !reflect.DeepEqual(xs, []int{1, -1, 16}) {
		t.Fatalf("got %v, %v", xs, err)
	}
	if _, err := ParseInts("1,1.5"); err == nil {
		t.Error("float accepted as int")
	}
}

func TestSplitNames(t *testing.T) {
	if got := SplitNames(" local , ,bandwidth"); !reflect.DeepEqual(got, []string{"local", "bandwidth"}) {
		t.Fatalf("got %v", got)
	}
	if got := SplitNames(""); got != nil {
		t.Fatalf("empty input: got %v", got)
	}
}

func TestParamsFlag(t *testing.T) {
	var p Params
	for _, kv := range []string{"n=12", "heuristics=local,bandwidth", "journal="} {
		if err := p.Set(kv); err != nil {
			t.Fatalf("Set(%q): %v", kv, err)
		}
	}
	if p["n"] != "12" || p["heuristics"] != "local,bandwidth" || p["journal"] != "" {
		t.Fatalf("bad params: %v", p)
	}
	if err := p.Set("n=13"); err == nil {
		t.Error("duplicate param accepted")
	}
	if err := p.Set("novalue"); err == nil {
		t.Error("missing '=' accepted")
	}
	if err := p.Set("=5"); err == nil {
		t.Error("empty name accepted")
	}
}

// newSpecFS builds a flag set the way both mains do.
func newSpecFS() (*flag.FlagSet, *Harness, *SpecMode) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	h := AddHarness(fs)
	m := AddSpecMode(fs)
	return fs, h, m
}

func execute(t *testing.T, w io.Writer, csv bool, args ...string) error {
	t.Helper()
	fs, h, m := newSpecFS()
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse(%v): %v", args, err)
	}
	if !m.Active() {
		t.Fatalf("spec mode not active for %v", args)
	}
	return m.Execute(fs, w, csv, h)
}

func TestSpecModeList(t *testing.T) {
	var out bytes.Buffer
	if err := execute(t, &out, false, "-list"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"figure1", "facade: ocd.ExperimentChaos", "-param seed=<int64>"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in listing:\n%s", want, out.String())
		}
	}
}

func TestSpecModeExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := execute(t, &out, false, "-experiment", "theorem4", "-param", "decoys=1,4"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Theorem 4") {
		t.Errorf("output:\n%s", out.String())
	}
}

// TestHarnessSeedMerge checks that an explicitly set -seed flag reaches the
// spec exactly like -param seed would, and that leaving it at its default
// lets the spec default win.
func TestHarnessSeedMerge(t *testing.T) {
	run := func(args ...string) string {
		var out bytes.Buffer
		if err := execute(t, &out, false, args...); err != nil {
			t.Fatalf("execute(%v): %v", args, err)
		}
		return out.String()
	}
	base := []string{"-experiment", "chaos", "-param", "n=12", "-param", "tokens=6",
		"-param", "intensities=0.6", "-param", "heuristics=local"}
	viaFlag := run(append([]string{"-seed", "9"}, base...)...)
	viaParam := run(append(base, "-param", "seed=9")...)
	if viaFlag != viaParam {
		t.Errorf("-seed 9 and -param seed=9 diverge:\n--- flag ---\n%s--- param ---\n%s", viaFlag, viaParam)
	}
	if deflt := run(base...); deflt == viaFlag {
		t.Error("seed override had no effect")
	}
	// An explicit -param wins over the flag.
	both := run(append(append([]string{"-seed", "3"}, base...), "-param", "seed=9")...)
	if both != viaParam {
		t.Error("-param seed did not take precedence over -seed")
	}
}

// TestHarnessIgnoredWhenUndeclared: figure1 declares no seed, so an explicit
// -seed must be dropped rather than rejected as an unknown parameter.
func TestHarnessIgnoredWhenUndeclared(t *testing.T) {
	var out bytes.Buffer
	if err := execute(t, &out, false, "-seed", "7", "-experiment", "figure1"); err != nil {
		t.Fatalf("explicit -seed broke a seedless spec: %v", err)
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestSpecModeCSV(t *testing.T) {
	var out bytes.Buffer
	if err := execute(t, &out, true, "-experiment", "theorem4", "-param", "decoys=1"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "decoys,path,") {
		t.Errorf("not CSV:\n%s", out.String())
	}
}

func TestSpecModeSpecFileAndJSONL(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	jsonlPath := filepath.Join(dir, "rows.jsonl")
	spec := `[
		{"experiment": "figure1"},
		{"experiment": "theorem4", "params": {"decoys": "1"}}
	]`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := execute(t, &out, false, "-spec", specPath, "-jsonl", jsonlPath); err != nil {
		t.Fatal(err)
	}
	// Both tables, blank-line separated.
	if got := out.String(); !strings.Contains(got, "Figure 1") || !strings.Contains(got, "Theorem 4") ||
		!strings.Contains(got, "\n\n==") {
		t.Errorf("spec file output malformed:\n%s", got)
	}
	rows, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	// The JSONL stream carries both experiments' head lines.
	if got := string(rows); strings.Count(got, `"title"`) != 2 {
		t.Errorf("JSONL stream malformed:\n%s", got)
	}
}

func TestSpecModeErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-list", "-experiment", "figure1"},
		{"-experiment", "figure1", "-spec", "x.json"},
		{"-param", "n=12"},
		{"-experiment", "nope"},
		{"-experiment", "chaos", "-param", "nope=1"},
		{"-experiment", "chaos", "-param", "n=abc"},
		{"-spec", "/does/not/exist.json"},
	} {
		if err := execute(t, io.Discard, false, args...); err == nil {
			t.Errorf("Execute(%v) accepted invalid invocation", args)
		}
	}
}

// TestValidateRejectsNegativeParallelism pins the bugfix: a negative
// -parallelism used to slip through and silently mean GOMAXPROCS.
func TestValidateRejectsNegativeParallelism(t *testing.T) {
	fs, h, _ := newSpecFS()
	if err := fs.Parse([]string{"-parallelism", "-2"}); err != nil {
		t.Fatal(err)
	}
	err := h.Validate()
	if err == nil || !strings.Contains(err.Error(), "-parallelism must be non-negative") {
		t.Fatalf("Validate() = %v, want non-negative error", err)
	}
	for _, p := range []string{"0", "1", "8"} {
		fs, h, _ := newSpecFS()
		if err := fs.Parse([]string{"-parallelism", p}); err != nil {
			t.Fatal(err)
		}
		if err := h.Validate(); err != nil {
			t.Errorf("Validate() rejected -parallelism %s: %v", p, err)
		}
	}
}

// TestHarnessTelemetryLifecycle runs the full Validate → Start → Execute →
// Finish cycle with -telemetry and checks the written stream decodes and
// carries the kernel and runner counters the sweep produced.
func TestHarnessTelemetryLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tel.jsonl")
	fs, h, m := newSpecFS()
	args := []string{"-telemetry", path, "-experiment", "graph-size",
		"-param", "sizes=12", "-param", "tokens=8", "-param", "graph-seeds=1",
		"-param", "repeats=1", "-param", "seed=5"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if h.Registry() == nil {
		t.Fatal("-telemetry set but Registry() is nil")
	}
	if err := m.Execute(fs, io.Discard, false, h); err != nil {
		t.Fatal(err)
	}
	if err := h.Finish(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ms, err := telemetry.DecodeJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	var kernel, runner bool
	for _, mtr := range ms {
		kernel = kernel || strings.HasPrefix(mtr.Name, "kernel.")
		runner = runner || strings.HasPrefix(mtr.Name, "runner.")
	}
	if !kernel || !runner {
		t.Errorf("stream lacks kernel.*/runner.* metrics: %+v", ms)
	}
}

// TestHarnessProfilesWritten checks the pprof flags produce non-empty
// profile files through the same lifecycle.
func TestHarnessProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	fs, h, m := newSpecFS()
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem, "-experiment", "figure1"}); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(fs, io.Discard, false, h); err != nil {
		t.Fatal(err)
	}
	if err := h.Finish(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile missing: %v", err)
		} else if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestWriteTableReportsWriteErrors(t *testing.T) {
	fs, h, m := newSpecFS()
	if err := fs.Parse([]string{"-experiment", "figure1"}); err != nil {
		t.Fatal(err)
	}
	err := m.Execute(fs, failWriter{}, false, h)
	if err == nil || !strings.Contains(err.Error(), "writing table") {
		t.Fatalf("want write error reported, got %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }
