// Package cliutil holds the command-line plumbing shared by cmd/ocdsim and
// cmd/ocdchaos: comma-separated list parsing, the common harness flags
// (seed, journal, monitor, parallelism), table writing, and the registry-
// driven spec mode (-experiment/-param/-list/-spec) that lowers both
// binaries onto the declarative experiment pipeline.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"ocd/internal/experiments"
	"ocd/internal/telemetry"
)

// ParseFloats parses a comma-separated float list, skipping empty entries.
func ParseFloats(s string) ([]float64, error) {
	var xs []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		x, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		xs = append(xs, x)
	}
	return xs, nil
}

// ParseInts parses a comma-separated integer list, skipping empty entries.
func ParseInts(s string) ([]int, error) {
	var xs []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		x, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		xs = append(xs, x)
	}
	return xs, nil
}

// SplitNames splits a comma-separated name list, dropping empty entries.
func SplitNames(s string) []string {
	var names []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	return names
}

// Harness bundles the flags every experiment-running binary shares: the
// base seed, the sweep harness ring (crash-safety journal, kernel
// invariant monitor, runner parallelism), and the observability ring
// (telemetry JSONL stream, pprof CPU/heap profiles). The lifecycle is
// Validate → Start → run → Finish; Finish's error must reach the exit
// code, since it carries the profile and telemetry write/close errors.
type Harness struct {
	Seed        int64
	Journal     string
	Monitor     bool
	Parallelism int
	Telemetry   string
	CPUProfile  string
	MemProfile  string

	reg     *telemetry.Registry
	cpuFile *os.File
}

// AddHarness registers the shared harness flags on fs.
func AddHarness(fs *flag.FlagSet) *Harness {
	h := &Harness{}
	fs.Int64Var(&h.Seed, "seed", 1, "random seed")
	fs.StringVar(&h.Journal, "journal", "", "crash-safety journal path; re-invoking with the same journal resumes from completed cells")
	fs.BoolVar(&h.Monitor, "monitor", false, "attach the kernel invariant monitor; any violation fails the run")
	fs.IntVar(&h.Parallelism, "parallelism", 0, "experiment runner worker count (0 = GOMAXPROCS); output is identical at every setting")
	fs.StringVar(&h.Telemetry, "telemetry", "", "write the run's metric stream to this JSONL file; never changes the experiment output")
	fs.StringVar(&h.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&h.MemProfile, "memprofile", "", "write a pprof heap profile to this file at exit")
	return h
}

// Validate rejects harness flag values no mode accepts.
func (h *Harness) Validate() error {
	if h.Parallelism < 0 {
		return fmt.Errorf("-parallelism must be non-negative, got %d", h.Parallelism)
	}
	return nil
}

// Start begins the observability ring: it allocates the telemetry
// registry when -telemetry was given and starts CPU profiling when
// -cpuprofile was given. Finish must run (even on error paths) once
// Start has succeeded.
func (h *Harness) Start() error {
	if h.Telemetry != "" {
		h.reg = telemetry.New()
	}
	if h.CPUProfile != "" {
		f, err := os.Create(h.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		h.cpuFile = f
	}
	return nil
}

// Registry returns the run's metric registry — nil when -telemetry is
// off, which every instrumented seam treats as "record nothing".
func (h *Harness) Registry() *telemetry.Registry { return h.reg }

// Finish ends the observability ring: it stops the CPU profile, writes
// the heap profile and the telemetry JSONL stream, and checks every
// close. All failures are joined — a telemetry stream that cannot flush
// must fail the process, not vanish in a defer.
func (h *Harness) Finish() error {
	var errs []error
	if h.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := h.cpuFile.Close(); err != nil {
			errs = append(errs, fmt.Errorf("-cpuprofile: %w", err))
		}
		h.cpuFile = nil
	}
	if h.MemProfile != "" {
		if err := writeHeapProfile(h.MemProfile); err != nil {
			errs = append(errs, fmt.Errorf("-memprofile: %w", err))
		}
	}
	if h.reg != nil && h.Telemetry != "" {
		if err := writeTelemetry(h.Telemetry, h.reg); err != nil {
			errs = append(errs, fmt.Errorf("-telemetry: %w", err))
		}
	}
	return errors.Join(errs...)
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize up-to-date allocation statistics
	werr := pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func writeTelemetry(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := reg.WriteJSONL(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// harnessParamNames maps the shared harness flag names onto the spec
// parameter names they override (they coincide by construction).
var harnessParamNames = []string{"seed", "journal", "monitor", "parallelism"}

// overrides merges the harness flags the user explicitly set into the
// parameter overrides of one spec invocation: only flags the spec declares
// are forwarded, and explicit -param values win.
func (h *Harness) overrides(fs *flag.FlagSet, spec *experiments.Spec, params map[string]string) map[string]string {
	set := make(map[string]bool, len(harnessParamNames))
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	out := make(map[string]string, len(params)+len(harnessParamNames))
	for k, v := range params {
		out[k] = v
	}
	for _, name := range harnessParamNames {
		if !set[name] || !spec.HasParam(name) {
			continue
		}
		if _, explicit := out[name]; explicit {
			continue
		}
		out[name] = fs.Lookup(name).Value.String()
	}
	return out
}

// WriteTable renders one experiment table to w, as CSV or ASCII. Write
// failures (closed pipe, full disk) are reported instead of silently
// exiting zero with a truncated table.
func WriteTable(w io.Writer, t *experiments.Table, csv bool) error {
	var err error
	if csv {
		_, err = fmt.Fprint(w, t.CSV())
	} else {
		_, err = fmt.Fprint(w, t.ASCII())
	}
	if err != nil {
		return fmt.Errorf("writing table: %w", err)
	}
	return nil
}

// Params is the repeatable -param k=v flag.
type Params map[string]string

func (p Params) String() string {
	// Flag printing only; the zero value renders empty.
	if len(p) == 0 {
		return ""
	}
	return fmt.Sprintf("%d params", len(p))
}

// Set records one k=v override.
func (p *Params) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	if *p == nil {
		*p = make(Params)
	}
	if _, dup := (*p)[k]; dup {
		return fmt.Errorf("duplicate param %q", k)
	}
	(*p)[k] = v
	return nil
}

// SpecMode bundles the registry-driven flags: -list prints the registry,
// -experiment runs one spec with -param overrides, -spec runs a JSON sweep
// file, and -jsonl streams every row into a JSONL sink as it is produced.
type SpecMode struct {
	Experiment string
	List       bool
	SpecFile   string
	JSONL      string
	Params     Params
}

// AddSpecMode registers the spec-mode flags on fs.
func AddSpecMode(fs *flag.FlagSet) *SpecMode {
	m := &SpecMode{}
	fs.StringVar(&m.Experiment, "experiment", "", "run a registered experiment by name (see -list)")
	fs.BoolVar(&m.List, "list", false, "list the experiment registry with parameter schemas and exit")
	fs.StringVar(&m.SpecFile, "spec", "", "run the experiment invocations in this JSON spec file")
	fs.StringVar(&m.JSONL, "jsonl", "", "stream experiment rows into this JSONL file as they are produced")
	fs.Var(&m.Params, "param", "override one experiment parameter as name=value (repeatable)")
	return m
}

// Active reports whether any spec-mode flag was used, i.e. whether Execute
// will handle the invocation instead of the binary's classic mode.
func (m *SpecMode) Active() bool {
	return m.List || m.Experiment != "" || m.SpecFile != "" || len(m.Params) > 0
}

// Execute handles a spec-mode invocation: the registry listing, a single
// -experiment run, or a -spec sweep file. The harness flags the user set
// explicitly are merged into every invocation that declares them. Tables
// are written to w (CSV when csv is set), separated by a blank line.
func (m *SpecMode) Execute(fs *flag.FlagSet, w io.Writer, csv bool, h *Harness) error {
	if m.List {
		if m.Experiment != "" || m.SpecFile != "" || len(m.Params) > 0 {
			return fmt.Errorf("-list does not combine with -experiment, -spec, or -param")
		}
		return experiments.Describe(w)
	}
	if m.Experiment != "" && m.SpecFile != "" {
		return fmt.Errorf("-experiment and -spec are mutually exclusive")
	}
	if m.Experiment == "" && len(m.Params) > 0 {
		return fmt.Errorf("-param requires -experiment")
	}

	var invs []experiments.Invocation
	switch {
	case m.Experiment != "":
		invs = []experiments.Invocation{{Experiment: m.Experiment, Params: m.Params}}
		if _, ok := experiments.Lookup(m.Experiment); !ok {
			// Surface the registry's canonical unknown-name error (with the
			// catalogue) rather than a bare failure downstream.
			_, err := experiments.RunStrings(m.Experiment, nil)
			return err
		}
	case m.SpecFile != "":
		loaded, err := experiments.LoadSpecFile(m.SpecFile)
		if err != nil {
			return err
		}
		invs = loaded
	default:
		return fmt.Errorf("spec mode needs -list, -experiment, or -spec")
	}

	var sinks []experiments.Sink
	var jsonlFile *os.File
	if m.JSONL != "" {
		f, err := os.Create(m.JSONL)
		if err != nil {
			return err
		}
		jsonlFile = f
		sinks = append(sinks, &experiments.JSONLSink{W: f})
	}
	// The close error must reach the caller: a row log whose tail never
	// hit disk is corrupt, and exiting zero would hide it.
	closeJSONL := func(err error) error {
		if jsonlFile == nil {
			return err
		}
		if cerr := jsonlFile.Close(); cerr != nil && err == nil {
			return fmt.Errorf("-jsonl: %w", cerr)
		}
		return err
	}

	for i, inv := range invs {
		spec, _ := experiments.Lookup(inv.Experiment)
		tab, err := experiments.RunStringsTelemetry(inv.Experiment, h.overrides(fs, spec, inv.Params), h.Registry(), sinks...)
		if err != nil {
			return closeJSONL(err)
		}
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return closeJSONL(fmt.Errorf("writing table: %w", err))
			}
		}
		if err := WriteTable(w, tab, csv); err != nil {
			return closeJSONL(err)
		}
	}
	return closeJSONL(nil)
}
