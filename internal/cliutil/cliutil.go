// Package cliutil holds the command-line plumbing shared by cmd/ocdsim and
// cmd/ocdchaos: comma-separated list parsing, the common harness flags
// (seed, journal, monitor, parallelism), table writing, and the registry-
// driven spec mode (-experiment/-param/-list/-spec) that lowers both
// binaries onto the declarative experiment pipeline.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ocd/internal/experiments"
)

// ParseFloats parses a comma-separated float list, skipping empty entries.
func ParseFloats(s string) ([]float64, error) {
	var xs []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		x, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		xs = append(xs, x)
	}
	return xs, nil
}

// ParseInts parses a comma-separated integer list, skipping empty entries.
func ParseInts(s string) ([]int, error) {
	var xs []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		x, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		xs = append(xs, x)
	}
	return xs, nil
}

// SplitNames splits a comma-separated name list, dropping empty entries.
func SplitNames(s string) []string {
	var names []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	return names
}

// Harness bundles the flags every experiment-running binary shares: the
// base seed and the sweep harness ring (crash-safety journal, kernel
// invariant monitor, runner parallelism).
type Harness struct {
	Seed        int64
	Journal     string
	Monitor     bool
	Parallelism int
}

// AddHarness registers the shared harness flags on fs.
func AddHarness(fs *flag.FlagSet) *Harness {
	h := &Harness{}
	fs.Int64Var(&h.Seed, "seed", 1, "random seed")
	fs.StringVar(&h.Journal, "journal", "", "crash-safety journal path; re-invoking with the same journal resumes from completed cells")
	fs.BoolVar(&h.Monitor, "monitor", false, "attach the kernel invariant monitor; any violation fails the run")
	fs.IntVar(&h.Parallelism, "parallelism", 0, "experiment runner worker count (0 = GOMAXPROCS); output is identical at every setting")
	return h
}

// harnessParamNames maps the shared harness flag names onto the spec
// parameter names they override (they coincide by construction).
var harnessParamNames = []string{"seed", "journal", "monitor", "parallelism"}

// overrides merges the harness flags the user explicitly set into the
// parameter overrides of one spec invocation: only flags the spec declares
// are forwarded, and explicit -param values win.
func (h *Harness) overrides(fs *flag.FlagSet, spec *experiments.Spec, params map[string]string) map[string]string {
	set := make(map[string]bool, len(harnessParamNames))
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	out := make(map[string]string, len(params)+len(harnessParamNames))
	for k, v := range params {
		out[k] = v
	}
	for _, name := range harnessParamNames {
		if !set[name] || !spec.HasParam(name) {
			continue
		}
		if _, explicit := out[name]; explicit {
			continue
		}
		out[name] = fs.Lookup(name).Value.String()
	}
	return out
}

// WriteTable renders one experiment table to w, as CSV or ASCII. Write
// failures (closed pipe, full disk) are reported instead of silently
// exiting zero with a truncated table.
func WriteTable(w io.Writer, t *experiments.Table, csv bool) error {
	var err error
	if csv {
		_, err = fmt.Fprint(w, t.CSV())
	} else {
		_, err = fmt.Fprint(w, t.ASCII())
	}
	if err != nil {
		return fmt.Errorf("writing table: %w", err)
	}
	return nil
}

// Params is the repeatable -param k=v flag.
type Params map[string]string

func (p Params) String() string {
	// Flag printing only; the zero value renders empty.
	if len(p) == 0 {
		return ""
	}
	return fmt.Sprintf("%d params", len(p))
}

// Set records one k=v override.
func (p *Params) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	if *p == nil {
		*p = make(Params)
	}
	if _, dup := (*p)[k]; dup {
		return fmt.Errorf("duplicate param %q", k)
	}
	(*p)[k] = v
	return nil
}

// SpecMode bundles the registry-driven flags: -list prints the registry,
// -experiment runs one spec with -param overrides, -spec runs a JSON sweep
// file, and -jsonl streams every row into a JSONL sink as it is produced.
type SpecMode struct {
	Experiment string
	List       bool
	SpecFile   string
	JSONL      string
	Params     Params
}

// AddSpecMode registers the spec-mode flags on fs.
func AddSpecMode(fs *flag.FlagSet) *SpecMode {
	m := &SpecMode{}
	fs.StringVar(&m.Experiment, "experiment", "", "run a registered experiment by name (see -list)")
	fs.BoolVar(&m.List, "list", false, "list the experiment registry with parameter schemas and exit")
	fs.StringVar(&m.SpecFile, "spec", "", "run the experiment invocations in this JSON spec file")
	fs.StringVar(&m.JSONL, "jsonl", "", "stream experiment rows into this JSONL file as they are produced")
	fs.Var(&m.Params, "param", "override one experiment parameter as name=value (repeatable)")
	return m
}

// Active reports whether any spec-mode flag was used, i.e. whether Execute
// will handle the invocation instead of the binary's classic mode.
func (m *SpecMode) Active() bool {
	return m.List || m.Experiment != "" || m.SpecFile != "" || len(m.Params) > 0
}

// Execute handles a spec-mode invocation: the registry listing, a single
// -experiment run, or a -spec sweep file. The harness flags the user set
// explicitly are merged into every invocation that declares them. Tables
// are written to w (CSV when csv is set), separated by a blank line.
func (m *SpecMode) Execute(fs *flag.FlagSet, w io.Writer, csv bool, h *Harness) error {
	if m.List {
		if m.Experiment != "" || m.SpecFile != "" || len(m.Params) > 0 {
			return fmt.Errorf("-list does not combine with -experiment, -spec, or -param")
		}
		return experiments.Describe(w)
	}
	if m.Experiment != "" && m.SpecFile != "" {
		return fmt.Errorf("-experiment and -spec are mutually exclusive")
	}
	if m.Experiment == "" && len(m.Params) > 0 {
		return fmt.Errorf("-param requires -experiment")
	}

	var invs []experiments.Invocation
	switch {
	case m.Experiment != "":
		invs = []experiments.Invocation{{Experiment: m.Experiment, Params: m.Params}}
		if _, ok := experiments.Lookup(m.Experiment); !ok {
			// Surface the registry's canonical unknown-name error (with the
			// catalogue) rather than a bare failure downstream.
			_, err := experiments.RunStrings(m.Experiment, nil)
			return err
		}
	case m.SpecFile != "":
		loaded, err := experiments.LoadSpecFile(m.SpecFile)
		if err != nil {
			return err
		}
		invs = loaded
	default:
		return fmt.Errorf("spec mode needs -list, -experiment, or -spec")
	}

	var sinks []experiments.Sink
	if m.JSONL != "" {
		f, err := os.Create(m.JSONL)
		if err != nil {
			return err
		}
		defer f.Close()
		sinks = append(sinks, &experiments.JSONLSink{W: f})
	}

	for i, inv := range invs {
		spec, _ := experiments.Lookup(inv.Experiment)
		tab, err := experiments.RunStrings(inv.Experiment, h.overrides(fs, spec, inv.Params), sinks...)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return fmt.Errorf("writing table: %w", err)
			}
		}
		if err := WriteTable(w, tab, csv); err != nil {
			return err
		}
	}
	return nil
}
