package flow

import (
	"math/rand"
	"testing"

	"ocd/internal/core"
	"ocd/internal/exact"
	"ocd/internal/graph"
	"ocd/internal/topology"
	"ocd/internal/workload"
)

func TestMaxFlowDiamond(t *testing.T) {
	// s→a(3), s→b(2), a→t(2), b→t(2): max flow 4.
	g := graph.New(4)
	for _, a := range [][3]int{{0, 1, 3}, {0, 2, 2}, {1, 3, 2}, {2, 3, 2}} {
		if err := g.AddArc(a[0], a[1], a[2]); err != nil {
			t.Fatal(err)
		}
	}
	value, cut, err := MaxFlow(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if value != 4 {
		t.Errorf("max flow = %d, want 4", value)
	}
	if len(cut) == 0 || cut[0] != 0 {
		t.Errorf("cut side = %v", cut)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	// A chain with one narrow link: flow = narrowest capacity.
	g := graph.New(4)
	for i, c := range []int{5, 1, 7} {
		if err := g.AddArc(i, i+1, c); err != nil {
			t.Fatal(err)
		}
	}
	value, cut, err := MaxFlow(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if value != 1 {
		t.Errorf("max flow = %d, want 1", value)
	}
	// The cut must isolate the narrow link: {0,1} on the source side.
	if len(cut) != 2 {
		t.Errorf("cut = %v", cut)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := graph.New(3)
	if err := g.AddArc(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	value, _, err := MaxFlow(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if value != 0 {
		t.Errorf("disconnected flow = %d", value)
	}
}

func TestMaxFlowErrors(t *testing.T) {
	g := graph.New(2)
	if _, _, err := MaxFlow(g, 0, 5); err == nil {
		t.Error("out-of-range sink accepted")
	}
	if _, _, err := MaxFlow(g, 1, 1); err == nil {
		t.Error("s == t accepted")
	}
}

func TestMaxFlowAgainstBruteForce(t *testing.T) {
	// Cross-check Edmonds–Karp against exhaustive cut enumeration on
	// random small graphs (max-flow = min-cut).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(3)
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.4 {
					_ = g.AddArc(u, v, 1+rng.Intn(4))
				}
			}
		}
		s, t2 := 0, n-1
		value, _, err := MaxFlow(g, s, t2)
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force min cut over all vertex bipartitions with s∈S, t∉S.
		best := -1
		for mask := 0; mask < 1<<uint(n); mask++ {
			if mask&1 == 0 || mask&(1<<uint(t2)) != 0 {
				continue
			}
			cutCap := 0
			for _, a := range g.Arcs() {
				if mask&(1<<uint(a.From)) != 0 && mask&(1<<uint(a.To)) == 0 {
					cutCap += a.Cap
				}
			}
			if best == -1 || cutCap < best {
				best = cutCap
			}
		}
		if value != best {
			t.Errorf("trial %d: flow %d != brute-force min cut %d", trial, value, best)
		}
	}
}

func TestMinCutToVertex(t *testing.T) {
	// Two parallel unit paths from the holder to v: cut = 2.
	g := graph.New(4)
	for _, a := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddArc(a[0], a[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	inst := core.NewInstance(g, 4)
	inst.Have[0].AddRange(0, 4)
	inst.Want[3].AddRange(0, 4)
	cut, err := MinCutToVertex(inst, []int{0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 2 {
		t.Errorf("min cut = %d, want 2", cut)
	}
}

func TestFlowBoundSometimesBeatsRadiusBound(t *testing.T) {
	// Diamond with unit caps and 6 tokens: v's in-capacity is 2, so the
	// radius bound and flow bound agree at ceil(6/2)=3 here; but make the
	// in-arcs wide and the upstream cut narrow and only the flow bound
	// sees it: s →(1)→ a →(9)→ v, s →(1)→ b →(9)→ v.
	g := graph.New(4)
	for _, a := range [][3]int{{0, 1, 1}, {0, 2, 1}, {1, 3, 9}, {2, 3, 9}} {
		if err := g.AddArc(a[0], a[1], a[2]); err != nil {
			t.Fatal(err)
		}
	}
	inst := core.NewInstance(g, 8)
	inst.Have[0].AddRange(0, 8)
	inst.Want[3].AddRange(0, 8)

	radius := core.MakespanLowerBound(inst, nil)
	flowLB, err := FlowMakespanLowerBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	// The upstream cut is 2 (the two unit arcs out of s): flow bound
	// ceil(8/2) = 4; the radius bound only sees v's in-capacity 18 and
	// distance 2.
	if flowLB != 4 {
		t.Errorf("flow bound = %d, want 4", flowLB)
	}
	if radius >= flowLB {
		t.Errorf("expected the flow bound (%d) to beat the radius bound (%d) here",
			flowLB, radius)
	}
	combined, err := CombinedMakespanLowerBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	if combined != 4 {
		t.Errorf("combined bound = %d, want 4", combined)
	}
}

func TestFlowBoundAdmissible(t *testing.T) {
	// The flow bound must never exceed the certified FOCD optimum.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(3)
		g := graph.New(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			if err := g.AddEdge(perm[i], perm[rng.Intn(i)], 1+rng.Intn(2)); err != nil {
				t.Fatal(err)
			}
		}
		inst := core.NewInstance(g, 2)
		for tok := 0; tok < 2; tok++ {
			inst.Have[rng.Intn(n)].Add(tok)
			inst.Want[rng.Intn(n)].Add(tok)
		}
		opt, err := exact.SolveFOCD(inst, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		flowLB, err := FlowMakespanLowerBound(inst)
		if err != nil {
			t.Fatal(err)
		}
		if flowLB > opt.Makespan() {
			t.Errorf("trial %d: flow bound %d exceeds optimum %d", trial, flowLB, opt.Makespan())
		}
	}
}

func TestFlowBoundOnPaperWorkload(t *testing.T) {
	g, err := topology.Random(20, topology.DefaultCaps, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.SingleFile(g, 50)
	flowLB, err := FlowMakespanLowerBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	if flowLB < 1 {
		t.Errorf("flow bound = %d on a nontrivial workload", flowLB)
	}
}
