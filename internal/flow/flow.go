// Package flow implements the classical network-flow machinery the paper
// positions OCD against (§2): Edmonds–Karp max-flow / min-cut over the
// overlay's capacities.
//
// Flow conservation does not hold in OCD — tokens are stored and
// duplicated — so flow does not *solve* the problem, but min-cuts still
// yield admissible bounds: every token a receiver is missing must cross
// the minimum cut separating the token's holders from the receiver, at
// most cut-capacity tokens per timestep. FlowMakespanLowerBound combines
// this with hop distance into a bound that is incomparable with (sometimes
// tighter than, sometimes looser than) the §5.1 radius bound, and the two
// compose by taking the maximum.
package flow

import (
	"fmt"

	"ocd/internal/core"
	"ocd/internal/graph"
)

// MaxFlow computes the maximum s→t flow value in g (arc weights as
// capacities) with Edmonds–Karp, and returns the flow value together with
// the source side of a minimum cut.
func MaxFlow(g *graph.Graph, s, t int) (int, []int, error) {
	n := g.N()
	if s < 0 || s >= n || t < 0 || t >= n {
		return 0, nil, fmt.Errorf("flow: endpoints (%d,%d) out of range n=%d", s, t, n)
	}
	if s == t {
		return 0, nil, fmt.Errorf("flow: source equals sink (%d)", s)
	}
	// Residual capacities: forward arcs seeded from g, reverse arcs at 0.
	residual := make(map[[2]int]int, 2*g.NumArcs())
	for _, a := range g.Arcs() {
		residual[[2]int{a.From, a.To}] += a.Cap
	}
	// Adjacency over the union of forward and reverse arcs.
	adj := make([][]int, n)
	seen := make(map[[2]int]bool, 2*g.NumArcs())
	addAdj := func(u, v int) {
		if !seen[[2]int{u, v}] {
			seen[[2]int{u, v}] = true
			adj[u] = append(adj[u], v)
		}
	}
	for _, a := range g.Arcs() {
		addAdj(a.From, a.To)
		addAdj(a.To, a.From)
	}

	total := 0
	parent := make([]int, n)
	for {
		// BFS for an augmenting path in the residual graph.
		for i := range parent {
			parent[i] = -2
		}
		parent[s] = -1
		queue := []int{s}
		for len(queue) > 0 && parent[t] == -2 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if parent[v] == -2 && residual[[2]int{u, v}] > 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[t] == -2 {
			break
		}
		// Bottleneck along the path.
		bottleneck := -1
		for v := t; parent[v] != -1; v = parent[v] {
			r := residual[[2]int{parent[v], v}]
			if bottleneck == -1 || r < bottleneck {
				bottleneck = r
			}
		}
		for v := t; parent[v] != -1; v = parent[v] {
			residual[[2]int{parent[v], v}] -= bottleneck
			residual[[2]int{v, parent[v]}] += bottleneck
		}
		total += bottleneck
	}

	// Min cut: vertices reachable from s in the final residual graph.
	var cut []int
	mark := make([]bool, n)
	mark[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		cut = append(cut, u)
		for _, v := range adj[u] {
			if !mark[v] && residual[[2]int{u, v}] > 0 {
				mark[v] = true
				queue = append(queue, v)
			}
		}
	}
	return total, cut, nil
}

// MinCutToVertex returns the capacity of the minimum cut separating the
// merged holder set of token t from vertex v: the per-timestep ceiling on
// how fast copies of t (or any fixed token set held by exactly those
// holders) can stream toward v. Holders are merged with a virtual
// super-source connected by infinite-capacity arcs.
func MinCutToVertex(inst *core.Instance, holders []int, v int) (int, error) {
	n := inst.N()
	aug := graph.New(n + 1)
	super := n
	for _, a := range inst.G.Arcs() {
		if err := aug.AddArc(a.From, a.To, a.Cap); err != nil {
			return 0, err
		}
	}
	infinite := inst.G.NumArcs()*maxCap(inst.G) + 1
	for _, h := range holders {
		if h == v {
			continue
		}
		if err := aug.AddArc(super, h, infinite); err != nil {
			return 0, err
		}
	}
	value, _, err := MaxFlow(aug, super, v)
	return value, err
}

func maxCap(g *graph.Graph) int {
	m := 1
	for _, a := range g.Arcs() {
		if a.Cap > m {
			m = a.Cap
		}
	}
	return m
}

// FlowMakespanLowerBound is the min-cut bound on the remaining timesteps:
// for each vertex v missing k tokens, all k must cross the minimum cut
// separating the holders of v's missing tokens from v, at most cut
// tokens per step, and none can arrive before the hop distance from the
// nearest holder. The bound is max over v of max(ceil(k/cut), dist).
//
// It is admissible, and incomparable with core.MakespanLowerBound: the
// radius bound sees in-capacity and token spread, the flow bound sees
// global bottleneck cuts. Take the maximum of the two for the sharpest
// cheap bound.
func FlowMakespanLowerBound(inst *core.Instance) (int, error) {
	best := 0
	for v := 0; v < inst.N(); v++ {
		missing := inst.Want[v].Difference(inst.Have[v])
		k := missing.Count()
		if k == 0 {
			continue
		}
		// Holders of any missing token (merged: the cut must pass all k
		// tokens regardless of which holder sources them).
		var holders []int
		for u := 0; u < inst.N(); u++ {
			if u != v && inst.Have[u].Intersects(missing) {
				holders = append(holders, u)
			}
		}
		if len(holders) == 0 {
			continue // unsatisfiable vertex; Satisfiable() reports it
		}
		cut, err := MinCutToVertex(inst, holders, v)
		if err != nil {
			return 0, err
		}
		if cut == 0 {
			continue
		}
		bound := (k + cut - 1) / cut
		if d := nearestHolder(inst, holders, v); d > bound {
			bound = d
		}
		if bound > best {
			best = bound
		}
	}
	return best, nil
}

// nearestHolder returns the hop distance from the nearest holder to v.
func nearestHolder(inst *core.Instance, holders []int, v int) int {
	dist := inst.G.BFSTo(v)
	bestDist := -1
	for _, h := range holders {
		if dist[h] >= 0 && (bestDist == -1 || dist[h] < bestDist) {
			bestDist = dist[h]
		}
	}
	if bestDist < 0 {
		return 0
	}
	return bestDist
}

// CombinedMakespanLowerBound returns the max of the §5.1 radius bound and
// the flow bound.
func CombinedMakespanLowerBound(inst *core.Instance) (int, error) {
	flowLB, err := FlowMakespanLowerBound(inst)
	if err != nil {
		return 0, err
	}
	if radius := core.MakespanLowerBound(inst, nil); radius > flowLB {
		return radius, nil
	}
	return flowLB, nil
}
