package lp

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForceLP solves min c·x, Ax ≤ b, lo ≤ x ≤ up by enumerating every
// basic point: each choice of n constraints from {rows of A} ∪ {x_j = lo_j}
// ∪ {x_j = up_j} held with equality yields an n×n system; feasible
// solutions of nonsingular systems are exactly the vertices of the
// polytope. With all bounds finite the feasible region is a polytope, so
// it is nonempty iff it has a vertex and the optimum is attained at one.
type eq struct {
	coef []float64
	rhs  float64
}

func bruteForceLP(c []float64, a [][]float64, b, lo, up []float64) (float64, bool) {
	n := len(c)
	// Build the combined constraint list as rows (coef, rhs) meaning
	// coef·x = rhs when selected.
	var eqs []eq
	for i := range a {
		eqs = append(eqs, eq{coef: a[i], rhs: b[i]})
	}
	for j := 0; j < n; j++ {
		unit := make([]float64, n)
		unit[j] = 1
		eqs = append(eqs, eq{coef: unit, rhs: lo[j]})
		eqs = append(eqs, eq{coef: unit, rhs: up[j]})
	}

	feasible := func(x []float64) bool {
		for i := range a {
			dot := 0.0
			for j := 0; j < n; j++ {
				dot += a[i][j] * x[j]
			}
			if dot > b[i]+1e-7 {
				return false
			}
		}
		for j := 0; j < n; j++ {
			if x[j] < lo[j]-1e-7 || x[j] > up[j]+1e-7 {
				return false
			}
		}
		return true
	}

	bestObj, found := math.Inf(1), false
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(eqs, idx, n)
			if ok && feasible(x) {
				obj := 0.0
				for j := 0; j < n; j++ {
					obj += c[j] * x[j]
				}
				if obj < bestObj {
					bestObj, found = obj, true
				}
			}
			return
		}
		for i := start; i < len(eqs); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return bestObj, found
}

// solveSquare solves the n×n system formed by the selected equalities via
// Gaussian elimination with partial pivoting; ok=false on singularity.
func solveSquare(eqs []eq, idx []int, n int) ([]float64, bool) {
	m := make([][]float64, n)
	for r := 0; r < n; r++ {
		m[r] = append(append([]float64(nil), eqs[idx[r]].coef...), eqs[idx[r]].rhs)
	}
	for col := 0; col < n; col++ {
		piv, pivAbs := -1, 1e-9
		for r := col; r < n; r++ {
			if a := math.Abs(m[r][col]); a > pivAbs {
				piv, pivAbs = r, a
			}
		}
		if piv < 0 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col] / m[col][col]
			for k := col; k <= n; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	x := make([]float64, n)
	for r := 0; r < n; r++ {
		x[r] = m[r][n] / m[r][r]
	}
	return x, true
}

// TestSolveMatchesBruteForce cross-checks the simplex against exhaustive
// vertex enumeration on seeded random small LPs with finite bounds:
// statuses agree, objectives agree within 1e-9, and the returned point is
// feasible and consistent with its reported objective.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	infeasibleSeen, optimalSeen := 0, 0
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(2) // 2..3 variables
		m := 1 + rng.Intn(3) // 1..3 rows
		c := make([]float64, n)
		lo := make([]float64, n)
		up := make([]float64, n)
		for j := 0; j < n; j++ {
			c[j] = float64(rng.Intn(7) - 3)
			up[j] = float64(1 + rng.Intn(3))
			if rng.Intn(4) == 0 {
				lo[j] = 1
			}
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			a[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				a[i][j] = float64(rng.Intn(7) - 3)
			}
			b[i] = float64(rng.Intn(9) - 2)
		}

		wantObj, wantFeasible := bruteForceLP(c, a, b, lo, up)
		sol, err := Solve(&Problem{C: c, A: a, B: b, Lo: lo, Up: up})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !wantFeasible {
			infeasibleSeen++
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: brute force says infeasible, simplex says %v (obj %v)",
					trial, sol.Status, sol.Objective)
			}
			continue
		}
		optimalSeen++
		if sol.Status != Optimal {
			t.Fatalf("trial %d: brute force optimum %v, simplex says %v", trial, wantObj, sol.Status)
		}
		if math.Abs(sol.Objective-wantObj) > 1e-9 {
			t.Fatalf("trial %d: objective %v, brute force %v", trial, sol.Objective, wantObj)
		}
		// The returned point must itself be feasible and match the objective.
		dot := 0.0
		for j := 0; j < n; j++ {
			if sol.X[j] < lo[j]-1e-7 || sol.X[j] > up[j]+1e-7 {
				t.Fatalf("trial %d: x[%d]=%v outside [%v,%v]", trial, j, sol.X[j], lo[j], up[j])
			}
			dot += c[j] * sol.X[j]
		}
		for i := 0; i < m; i++ {
			row := 0.0
			for j := 0; j < n; j++ {
				row += a[i][j] * sol.X[j]
			}
			if row > b[i]+1e-7 {
				t.Fatalf("trial %d: row %d violated: %v > %v", trial, i, row, b[i])
			}
		}
		if math.Abs(dot-sol.Objective) > 1e-9 {
			t.Fatalf("trial %d: reported objective %v but c·x = %v", trial, sol.Objective, dot)
		}
	}
	// The generator must actually exercise both outcomes.
	if infeasibleSeen < 10 || optimalSeen < 100 {
		t.Fatalf("generator drifted: %d infeasible / %d optimal trials", infeasibleSeen, optimalSeen)
	}
}

// TestBealeCyclingTerminates runs Beale's classic degenerate LP, on which
// textbook Dantzig-rule simplex cycles forever. The stall counter must
// hand over to Bland's rule and reach the optimum −0.05 at (1/25, 0, 1, 0).
func TestBealeCyclingTerminates(t *testing.T) {
	sol := solveOK(t, &Problem{
		C: []float64{-0.75, 150, -0.02, 6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
		},
		B:  []float64{0, 0},
		Up: []float64{math.Inf(1), math.Inf(1), 1, math.Inf(1)},
	})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-9 {
		t.Fatalf("objective = %v, want -0.05", sol.Objective)
	}
	want := []float64{0.04, 0, 1, 0}
	for j, w := range want {
		if math.Abs(sol.X[j]-w) > 1e-9 {
			t.Fatalf("x = %v, want %v", sol.X, want)
		}
	}
}

// TestWarmStartMatchesColdSolve fixes variables one at a time via
// SetBounds+Resolve and checks each warm-started optimum equals a cold
// solve of the equivalently-bounded problem.
func TestWarmStartMatchesColdSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n, m := 3, 3
		c := make([]float64, n)
		lo := make([]float64, n)
		up := make([]float64, n)
		for j := 0; j < n; j++ {
			c[j] = float64(rng.Intn(7) - 3)
			up[j] = float64(1 + rng.Intn(2))
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			a[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				a[i][j] = float64(rng.Intn(5) - 1)
			}
			b[i] = float64(1 + rng.Intn(5))
		}
		p := &Problem{C: c, A: a, B: b, Lo: lo, Up: up}
		s, err := NewSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol, err := s.Solve(); err != nil || sol.Status != Optimal {
			continue // uninteresting draw; the generator keeps b ≥ 1 so most are optimal
		}
		for j := 0; j < n; j++ {
			v := float64(rng.Intn(2))
			if v > up[j] {
				v = up[j]
			}
			if err := s.SetBounds(j, v, v); err != nil {
				t.Fatal(err)
			}
			warm, err := s.Resolve()
			if err != nil {
				t.Fatalf("trial %d fix x%d=%v: %v", trial, j, v, err)
			}

			lo2 := append([]float64(nil), lo...)
			up2 := append([]float64(nil), up...)
			lo2[j], up2[j] = v, v
			cold, err := Solve(&Problem{C: c, A: a, B: b, Lo: lo2, Up: up2})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("trial %d fix x%d=%v: warm %v, cold %v", trial, j, v, warm.Status, cold.Status)
			}
			if warm.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-9 {
				t.Fatalf("trial %d fix x%d=%v: warm obj %v, cold obj %v",
					trial, j, v, warm.Objective, cold.Objective)
			}
			// Release the variable again for the next fixing.
			if err := s.SetBounds(j, lo[j], up[j]); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Resolve(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSnapshotRestoreRoundTrip pivots the solver away from an optimum via
// bound fixings, restores the snapshot, and checks the solver reproduces
// the original optimum exactly.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := &Problem{
		C:  []float64{-2, -3, -1},
		A:  [][]float64{{1, 1, 1}, {2, 1, 0}},
		B:  []float64{4, 5},
		Up: []float64{3, 3, 3},
	}
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Solve()
	if err != nil || first.Status != Optimal {
		t.Fatalf("first solve: %v %v", first, err)
	}
	snap := s.Snapshot()

	// Wander: fix each variable to 0 in turn and re-optimize.
	for j := 0; j < 3; j++ {
		if err := s.SetBounds(j, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Resolve(); err != nil {
			t.Fatal(err)
		}
		if err := s.SetBounds(j, 0, 3); err != nil {
			t.Fatal(err)
		}
	}

	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	again, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != Optimal || math.Abs(again.Objective-first.Objective) > 1e-9 {
		t.Fatalf("restored solve: %+v, want objective %v", again, first.Objective)
	}
	if again.Iterations != 0 {
		t.Fatalf("restored basis needed %d pivots; snapshot should already be optimal", again.Iterations)
	}
}
