package lp

import (
	"math"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveSimpleMin(t *testing.T) {
	// min −x − y  s.t. x ≤ 2, y ≤ 3, x + y ≤ 4  → x=2, y=2? Either corner
	// on x+y=4 with obj −4.
	sol := solveOK(t, &Problem{
		C: []float64{-1, -1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 1}},
		B: []float64{2, 3, 4},
	})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, -4) {
		t.Errorf("objective = %f, want -4", sol.Objective)
	}
	if !approx(sol.X[0]+sol.X[1], 4) {
		t.Errorf("x+y = %f, want 4", sol.X[0]+sol.X[1])
	}
}

func TestSolveWithNegativeRHS(t *testing.T) {
	// min x  s.t. x ≥ 3 (written −x ≤ −3) → x = 3. Exercises phase one.
	sol := solveOK(t, &Problem{
		C: []float64{1},
		A: [][]float64{{-1}},
		B: []float64{-3},
	})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.X[0], 3) {
		t.Errorf("x = %f, want 3", sol.X[0])
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 2.
	sol := solveOK(t, &Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -2},
	})
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min −x with only x ≥ 0: unbounded below.
	sol := solveOK(t, &Problem{
		C: []float64{-1},
		A: [][]float64{{0}},
		B: []float64{1},
	})
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveEqualityViaPair(t *testing.T) {
	// x + y = 2 expressed as ≤ and ≥; min x → x=0, y=2.
	sol := solveOK(t, &Problem{
		C: []float64{1, 0},
		A: [][]float64{{1, 1}, {-1, -1}, {0, 1}},
		B: []float64{2, -2, 5},
	})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.X[0], 0) || !approx(sol.X[1], 2) {
		t.Errorf("x = %v, want (0,2)", sol.X)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Redundant constraints sharing a vertex; Bland's rule must terminate.
	sol := solveOK(t, &Problem{
		C: []float64{-1, -1},
		A: [][]float64{{1, 0}, {1, 0}, {0, 1}, {1, 1}, {1, 1}},
		B: []float64{1, 1, 1, 2, 2},
	})
	if sol.Status != Optimal || !approx(sol.Objective, -2) {
		t.Errorf("status=%v obj=%f, want optimal −2", sol.Status, sol.Objective)
	}
}

func TestSolveTransportation(t *testing.T) {
	// Classic transportation: 2 suppliers (cap 3, 2) → 2 consumers
	// (demand 2, 3), costs: c11=1 c12=4 c21=2 c22=1. Optimal: x11=2,
	// x22=2, x12=1 → cost 2+2+4 = 8? Alternatives: x11=2 (2), x12=1 (4),
	// x22=2 (2) total 8; or x11=2, x21=0, x12=1, x22=2 → 8. LP optimum 8.
	sol := solveOK(t, &Problem{
		C: []float64{1, 4, 2, 1},
		A: [][]float64{
			{1, 1, 0, 0},   // supplier 1 cap
			{0, 0, 1, 1},   // supplier 2 cap
			{-1, 0, -1, 0}, // consumer 1 demand ≥ 2
			{0, -1, 0, -1}, // consumer 2 demand ≥ 3
		},
		B: []float64{3, 2, -2, -3},
	})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 8) {
		t.Errorf("objective = %f, want 8", sol.Objective)
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	if _, err := Solve(&Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Error("ragged row accepted")
	}
	if _, err := Solve(&Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{}}); err == nil {
		t.Error("missing rhs accepted")
	}
}

func TestSolveZeroConstraints(t *testing.T) {
	// min x with no constraints: x = 0 at the origin.
	sol := solveOK(t, &Problem{C: []float64{1}, A: nil, B: nil})
	if sol.Status != Optimal || !approx(sol.X[0], 0) {
		t.Errorf("unconstrained min: %+v", sol)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if Status(99).String() == "" {
		t.Error("unknown status empty")
	}
}
