// Package lp implements a dense bounded-variable simplex solver for
// linear programs of the form
//
//	min cᵀx  subject to  Ax ≤ b,  lo ≤ x ≤ up
//
// (lo defaults to 0 and up to +∞; ≥ and = constraints can be expressed
// by negation or row pairs). Variable bounds are handled implicitly by
// the pivoting rules rather than as explicit rows, which matters for the
// time-indexed integer program of paper §3.4: its T·|A| binary variables
// each carry an x ≤ 1 bound, and folding those into the basis logic
// removes that many dense tableau rows outright. Go has no ILP
// ecosystem, so internal/ilp branches and bounds on top of this solver.
//
// The solver is warm-startable: a Solver retains its tableau between
// solves, bounds can be tightened or relaxed in place with SetBounds,
// and Resolve re-establishes optimality by dual simplex from the current
// basis instead of a phase-1 from scratch — the branch-and-bound loop in
// internal/ilp leans on exactly this. Basis snapshots (Snapshot /
// Restore) let callers return to an earlier basis cheaply.
//
// Pricing is Dantzig's rule (most violating reduced cost) with an
// automatic switch to Bland's rule after a run of degenerate pivots,
// which restores the termination guarantee on cycling-prone instances.
package lp

import (
	"errors"
	"fmt"
)

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota + 1
	// Infeasible means no lo ≤ x ≤ up satisfies Ax ≤ b.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Problem is a linear program in inequality standard form with optional
// variable bounds.
type Problem struct {
	// C is the objective coefficient vector (length = number of variables).
	C []float64
	// A is the constraint matrix, one row per constraint.
	A [][]float64
	// B is the right-hand side, one entry per constraint.
	B []float64
	// Lo holds per-variable lower bounds; nil means all zero. Entries
	// must be finite.
	Lo []float64
	// Up holds per-variable upper bounds; nil means all +∞. Entries of
	// math.Inf(1) leave a variable unbounded above.
	Up []float64
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	// X is the optimal primal solution (valid only when Status == Optimal).
	X []float64
	// Objective is cᵀx at the optimum.
	Objective float64
	// Iterations counts the simplex pivots (primal and dual, including
	// bound flips) this solve performed.
	Iterations int
}

const (
	// eps is the pivoting / reduced-cost tolerance.
	eps = 1e-9
	// feasTol is the bound-violation tolerance of the dual simplex.
	feasTol = 1e-7
)

// ErrDimensions indicates inconsistent problem dimensions.
var ErrDimensions = errors.New("lp: inconsistent dimensions")

// ErrBounds indicates an invalid variable bound pair.
var ErrBounds = errors.New("lp: invalid bounds")

// ErrIterLimit indicates the simplex iteration safety cap was hit; it
// signals a numerical breakdown, not a property of the problem.
var ErrIterLimit = errors.New("lp: iteration limit exceeded")

// ErrSingular indicates a Basis could not be re-installed because its
// columns are (numerically) linearly dependent.
var ErrSingular = errors.New("lp: singular basis")

// Solve runs bounded-variable simplex on the problem. It is the one-shot
// entry point; use NewSolver for warm-started resolves.
func Solve(p *Problem) (*Solution, error) {
	s, err := NewSolver(p)
	if err != nil {
		return nil, err
	}
	return s.Solve()
}
