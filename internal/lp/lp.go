// Package lp implements a dense two-phase primal simplex solver for linear
// programs of the form
//
//	min cᵀx  subject to  Ax ≤ b,  x ≥ 0
//
// (rows with negative b are handled in phase one via artificial variables,
// so ≥ and = constraints can be expressed by negation or row pairs). It is
// the substrate for the time-indexed integer program of paper §3.4 — Go has
// no ILP ecosystem, so internal/ilp branches and bounds on top of this
// solver. Bland's rule guarantees termination.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota + 1
	// Infeasible means no x ≥ 0 satisfies Ax ≤ b.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Problem is a linear program in inequality standard form.
type Problem struct {
	// C is the objective coefficient vector (length = number of variables).
	C []float64
	// A is the constraint matrix, one row per constraint.
	A [][]float64
	// B is the right-hand side, one entry per constraint.
	B []float64
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	// X is the optimal primal solution (valid only when Status == Optimal).
	X []float64
	// Objective is cᵀx at the optimum.
	Objective float64
}

const eps = 1e-9

// ErrDimensions indicates inconsistent problem dimensions.
var ErrDimensions = errors.New("lp: inconsistent dimensions")

// Solve runs two-phase primal simplex on the problem.
func Solve(p *Problem) (*Solution, error) {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m {
		return nil, fmt.Errorf("%w: %d rows but %d rhs entries", ErrDimensions, m, len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrDimensions, i, len(row), n)
		}
	}

	// Tableau layout: columns [x (n) | slack (m) | artificial (k) | rhs].
	// Row i: a_i·x + s_i = b_i. Rows with b_i < 0 are negated, which flips
	// the slack coefficient to −1 (a surplus); those rows get an artificial
	// basic variable for phase one.
	var artRows []int
	for i := 0; i < m; i++ {
		if p.B[i] < 0 {
			artRows = append(artRows, i)
		}
	}
	k := len(artRows)
	totalCols := n + m
	width := totalCols + k + 1 // + rhs
	rows := make([][]float64, m)
	basis := make([]int, m)
	art := 0
	for i := 0; i < m; i++ {
		row := make([]float64, width)
		copy(row, p.A[i])
		rhs := p.B[i]
		sign := 1.0
		if rhs < 0 {
			sign = -1.0
			rhs = -rhs
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
		}
		row[n+i] = sign // slack (+1) or surplus (−1)
		row[width-1] = rhs
		if sign > 0 {
			basis[i] = n + i
		} else {
			col := totalCols + art
			art++
			row[col] = 1
			basis[i] = col
		}
		rows[i] = row
	}

	t := &tableau{rows: rows, basis: basis, width: width, nVars: n}

	if k > 0 {
		// Phase 1: minimize the sum of artificials.
		phase1 := make([]float64, width-1)
		for idx := 0; idx < k; idx++ {
			phase1[totalCols+idx] = 1
		}
		if err := t.run(phase1); err != nil {
			return nil, err
		}
		if t.objective(phase1) > eps {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive any artificial still in the basis out (degenerate rows).
		for i, b := range t.basis {
			if b >= totalCols {
				t.pivotOutArtificial(i, totalCols)
			}
		}
		// Freeze artificial columns at zero.
		t.frozenFrom = totalCols
	} else {
		t.frozenFrom = totalCols
	}

	// Phase 2: original objective.
	phase2 := make([]float64, width-1)
	copy(phase2, p.C)
	if err := t.run(phase2); err != nil {
		if errors.Is(err, errUnbounded) {
			return &Solution{Status: Unbounded}, nil
		}
		return nil, err
	}

	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			x[b] = t.rows[i][width-1]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}, nil
}

var errUnbounded = errors.New("lp: unbounded")

type tableau struct {
	rows       [][]float64
	basis      []int
	width      int // columns including rhs
	nVars      int
	frozenFrom int // columns ≥ frozenFrom are ineligible to enter
}

// reducedCosts computes c_j − c_Bᵀ B⁻¹ A_j for all columns given the
// objective vector, using the current (already pivoted) tableau rows.
func (t *tableau) reducedCosts(obj []float64) []float64 {
	rc := make([]float64, t.width-1)
	copy(rc, obj)
	for i, b := range t.basis {
		cb := obj[b]
		if cb == 0 {
			continue
		}
		for j := 0; j < t.width-1; j++ {
			rc[j] -= cb * t.rows[i][j]
		}
	}
	return rc
}

func (t *tableau) objective(obj []float64) float64 {
	total := 0.0
	for i, b := range t.basis {
		total += obj[b] * t.rows[i][t.width-1]
	}
	return total
}

// run performs primal simplex iterations with Bland's rule until optimal.
func (t *tableau) run(obj []float64) error {
	maxIter := 50 * (len(t.rows) + t.width)
	for iter := 0; iter < maxIter; iter++ {
		rc := t.reducedCosts(obj)
		enter := -1
		limit := t.width - 1
		for j := 0; j < limit; j++ {
			if t.frozenFrom > 0 && j >= t.frozenFrom {
				break
			}
			if rc[j] < -eps {
				enter = j // Bland: smallest index
				break
			}
		}
		if enter == -1 {
			return nil // optimal
		}
		// Ratio test (Bland: smallest basis index breaks ties).
		leave := -1
		bestRatio := math.Inf(1)
		for i := range t.rows {
			a := t.rows[i][enter]
			if a > eps {
				ratio := t.rows[i][t.width-1] / a
				if ratio < bestRatio-eps ||
					(math.Abs(ratio-bestRatio) <= eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return errUnbounded
		}
		t.pivot(leave, enter)
	}
	return errors.New("lp: iteration limit exceeded")
}

// pivot makes column `enter` basic in row `leave`.
func (t *tableau) pivot(leave, enter int) {
	row := t.rows[leave]
	pv := row[enter]
	for j := range row {
		row[j] /= pv
	}
	for i := range t.rows {
		if i == leave {
			continue
		}
		factor := t.rows[i][enter]
		if factor == 0 {
			continue
		}
		for j := range t.rows[i] {
			t.rows[i][j] -= factor * row[j]
		}
	}
	t.basis[leave] = enter
}

// pivotOutArtificial replaces a basic artificial in row i with any
// non-artificial column having a nonzero coefficient; if none exists the
// row is redundant and left alone (its rhs is zero).
func (t *tableau) pivotOutArtificial(i, artStart int) {
	for j := 0; j < artStart; j++ {
		if math.Abs(t.rows[i][j]) > eps {
			t.pivot(i, j)
			return
		}
	}
}
