package lp

import (
	"fmt"
	"math"
)

// Basis is an immutable snapshot of a Solver's basis: which column is
// basic in each row plus the resting bound of every nonbasic column. It
// carries no bound values — reinstalling a Basis under different bounds
// is exactly the branch-and-bound warm start, where a child node reuses
// its parent's optimal basis with one variable's bounds tightened.
type Basis struct {
	cols []int
	atUp []bool
}

// Snapshot captures the current basis. The snapshot is detached: later
// pivots or bound changes do not affect it, and it may be restored into
// the solver any number of times (callers typically share one snapshot
// across sibling branch-and-bound nodes).
func (s *Solver) Snapshot() Basis {
	return Basis{
		cols: append([]int(nil), s.basis...),
		atUp: append([]bool(nil), s.atUp...),
	}
}

// Restore re-installs a snapshot taken earlier on the same solver. It
// pivots incrementally from the current basis — the cost is proportional
// to how many positions differ, so hopping between nearby branch-and-
// bound nodes is cheap — then rebuilds the value and reduced-cost rows
// under the solver's *current* bounds. Reduced costs depend only on the
// basis, so a snapshot taken at an optimum stays dual feasible no matter
// how the bounds have moved since; a subsequent Resolve finishes the job.
func (s *Solver) Restore(bs Basis) error {
	if len(bs.cols) != s.m || len(bs.atUp) != s.ncols {
		return fmt.Errorf("%w: basis for %d rows/%d cols restored into %d/%d",
			ErrDimensions, len(bs.cols), len(bs.atUp), s.m, s.ncols)
	}
	target := make([]bool, s.ncols)
	for _, c := range bs.cols {
		if c < 0 || c >= s.ncols || target[c] {
			return fmt.Errorf("%w: basis names column %d twice or out of range", ErrSingular, c)
		}
		target[c] = true
	}

	// Pivot target columns in one at a time, each time kicking out a
	// current basic column the target does not want. Choosing the largest
	// available pivot element keeps the elimination stable.
	for {
		bestR, bestJ := -1, -1
		bestA := 1e-7
		for i := 0; i < s.m; i++ {
			if target[s.basis[i]] {
				continue
			}
			row := s.rows[i]
			for j := 0; j < s.ncols; j++ {
				if !target[j] || s.rowOf[j] >= 0 {
					continue
				}
				if a := math.Abs(row[j]); a > bestA {
					bestR, bestJ, bestA = i, j, a
				}
			}
		}
		if bestR == -1 {
			for i := 0; i < s.m; i++ {
				if !target[s.basis[i]] {
					return ErrSingular
				}
			}
			break
		}
		old := s.basis[bestR]
		s.structuralPivot(bestR, bestJ)
		s.rowOf[old] = -1
		s.basis[bestR] = bestJ
		s.rowOf[bestJ] = bestR
	}

	for j := 0; j < s.ncols; j++ {
		if s.rowOf[j] < 0 {
			s.atUp[j] = bs.atUp[j] && !math.IsInf(s.up[j], 1)
		}
	}
	// Full recomputation doubles as drift control: restores are the
	// natural refactorization points of a long branch-and-bound run.
	s.recomputeCost()
	s.recomputeValues()
	return nil
}
