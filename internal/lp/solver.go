package lp

import (
	"fmt"
	"math"
)

// Solver holds a dense simplex tableau that persists across solves. The
// column layout is [structural (n) | slack (m)]; the tableau rows hold
// the current B⁻¹[A I] with one extra column carrying the *value* of
// each basic variable (not B⁻¹b: nonbasic variables sit at one of their
// bounds and their contribution is folded in). A parallel cost row holds
// the current reduced costs.
type Solver struct {
	n, m  int // structural variables, rows
	ncols int // n + m coefficient columns; the value column is ncols

	c  []float64 // objective per column (slack columns are 0)
	lo []float64 // lower bound per column (slacks: 0)
	up []float64 // upper bound per column (slacks: +∞)
	b  []float64 // original right-hand side (for value recomputation)

	// The tableau and basis bookkeeping are reused across every solve,
	// resolve, and restore on this Solver — pivots mutate them in place.
	//ocd:scratch
	rows [][]float64 // m × (ncols+1)
	//ocd:scratch
	cost []float64 // ncols reduced costs
	//ocd:scratch
	basis []int // row → basic column
	//ocd:scratch
	rowOf []int // column → row, or -1 when nonbasic
	//ocd:scratch
	atUp []bool // nonbasic column rests at its upper bound

	// dualDeficient marks columns with negative cost and no finite upper
	// bound: no nonbasic status makes them dual feasible, so a fresh
	// solve needs a feasibility pass before pricing with the real costs.
	dualDeficient bool

	iters    int // lifetime pivot count (primal + dual + bound flips)
	flips    int // lifetime bound flips (subset of iters)
	resolves int // lifetime Resolve calls (dual-simplex warm-start restorations)
	stall    int // consecutive degenerate pivots; triggers Bland's rule
	bland    bool
}

// stallLimit is the degenerate-pivot run length that switches pricing
// from Dantzig's rule to Bland's anti-cycling rule. Any strict progress
// switches back.
const stallLimit = 24

// NewSolver validates the problem and builds a solver positioned at the
// all-slack basis. The problem data is copied; the caller may reuse p.
func NewSolver(p *Problem) (*Solver, error) {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m {
		return nil, fmt.Errorf("%w: %d rows but %d rhs entries", ErrDimensions, m, len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrDimensions, i, len(row), n)
		}
	}
	if p.Lo != nil && len(p.Lo) != n {
		return nil, fmt.Errorf("%w: %d lower bounds for %d variables", ErrDimensions, len(p.Lo), n)
	}
	if p.Up != nil && len(p.Up) != n {
		return nil, fmt.Errorf("%w: %d upper bounds for %d variables", ErrDimensions, len(p.Up), n)
	}

	s := &Solver{
		n: n, m: m, ncols: n + m,
		c:     make([]float64, n+m),
		lo:    make([]float64, n+m),
		up:    make([]float64, n+m),
		b:     append([]float64(nil), p.B...),
		cost:  make([]float64, n+m),
		basis: make([]int, m),
		rowOf: make([]int, n+m),
		atUp:  make([]bool, n+m),
		rows:  make([][]float64, m),
	}
	copy(s.c, p.C)
	for j := 0; j < n; j++ {
		if p.Lo != nil {
			s.lo[j] = p.Lo[j]
		}
		if p.Up != nil {
			s.up[j] = p.Up[j]
		} else {
			s.up[j] = math.Inf(1)
		}
		if math.IsInf(s.lo[j], 0) || math.IsNaN(s.lo[j]) || math.IsNaN(s.up[j]) || s.up[j] < s.lo[j] {
			return nil, fmt.Errorf("%w: variable %d has [%v, %v]", ErrBounds, j, s.lo[j], s.up[j])
		}
	}
	for i := 0; i < m; i++ {
		s.up[n+i] = math.Inf(1) // slack bounds [0, ∞)
		row := make([]float64, s.ncols+1)
		copy(row, p.A[i])
		row[n+i] = 1
		s.rows[i] = row
	}
	s.reset()
	return s, nil
}

// reset positions the solver at the all-slack basis with every
// structural variable nonbasic at the bound that makes it dual feasible
// where one exists (negative cost prefers the upper bound).
func (s *Solver) reset() {
	s.dualDeficient = false
	for j := 0; j < s.ncols; j++ {
		s.rowOf[j] = -1
		s.cost[j] = s.c[j]
		s.atUp[j] = s.c[j] < -eps && !math.IsInf(s.up[j], 1)
		if s.c[j] < -eps && math.IsInf(s.up[j], 1) {
			s.dualDeficient = true
		}
	}
	for i := 0; i < s.m; i++ {
		col := s.n + i
		s.basis[i] = col
		s.rowOf[col] = i
		s.atUp[col] = false
	}
	// The tableau rows for the identity basis are the original [A I].
	// Re-pivoting may have scrambled them, so recompute is not enough —
	// but reset is only called from NewSolver where rows are pristine.
	s.recomputeValues()
}

// boundVal returns the value a nonbasic column rests at.
func (s *Solver) boundVal(j int) float64 {
	if s.atUp[j] {
		return s.up[j]
	}
	return s.lo[j]
}

// fixed reports whether a column's bounds pin it to a single value.
func (s *Solver) fixed(j int) bool { return s.up[j]-s.lo[j] <= eps }

// recomputeValues rebuilds the basic-value column from the invariant
// x_B = B⁻¹b − Σ_{j nonbasic} (B⁻¹A_j)·x_j, using the slack block of the
// tableau as B⁻¹.
func (s *Solver) recomputeValues() {
	for i := 0; i < s.m; i++ {
		v := 0.0
		for k := 0; k < s.m; k++ {
			v += s.rows[i][s.n+k] * s.b[k]
		}
		s.rows[i][s.ncols] = v
	}
	for j := 0; j < s.ncols; j++ {
		if s.rowOf[j] >= 0 {
			continue
		}
		x := s.boundVal(j)
		if x == 0 {
			continue
		}
		for i := 0; i < s.m; i++ {
			s.rows[i][s.ncols] -= s.rows[i][j] * x
		}
	}
}

// recomputeCost rebuilds the reduced-cost row c − c_Bᵀ·B⁻¹[A I] from the
// current tableau.
func (s *Solver) recomputeCost() {
	copy(s.cost, s.c)
	for i := 0; i < s.m; i++ {
		cb := s.c[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.rows[i]
		for j := 0; j < s.ncols; j++ {
			s.cost[j] -= cb * row[j]
		}
	}
}

// structuralPivot makes column enter basic in row r, updating the
// coefficient columns and the cost row but not the value column (the
// callers maintain values explicitly, which keeps the two concerns from
// contaminating each other numerically).
func (s *Solver) structuralPivot(r, enter int) {
	row := s.rows[r]
	pv := row[enter]
	for q := 0; q < s.ncols; q++ {
		row[q] /= pv
	}
	row[enter] = 1
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		f := s.rows[i][enter]
		if f == 0 {
			continue
		}
		ri := s.rows[i]
		for q := 0; q < s.ncols; q++ {
			ri[q] -= f * row[q]
		}
		ri[enter] = 0
	}
	if f := s.cost[enter]; f != 0 {
		for q := 0; q < s.ncols; q++ {
			s.cost[q] -= f * row[q]
		}
		s.cost[enter] = 0
	}
}

// installBasic moves column enter into the basis at row r after the
// value column has been shifted; enterVal is its post-move value.
func (s *Solver) installBasic(r, enter int, enterVal float64) {
	s.structuralPivot(r, enter)
	s.rows[r][s.ncols] = enterVal
	leave := s.basis[r]
	s.rowOf[leave] = -1
	s.basis[r] = enter
	s.rowOf[enter] = r
}

// progress records whether a pivot moved the solution and manages the
// Dantzig→Bland anti-cycling switch.
func (s *Solver) progress(step float64) {
	s.iters++
	if step > eps {
		s.stall = 0
		s.bland = false
		return
	}
	s.stall++
	if s.stall > stallLimit {
		s.bland = true
	}
}

func (s *Solver) maxIter() int { return 200*(s.m+s.ncols) + 1000 }

var errUnbounded = fmt.Errorf("lp: unbounded")
var errInfeasible = fmt.Errorf("lp: infeasible")

// primal runs bounded-variable primal simplex to optimality. It requires
// a primal-feasible tableau and returns errUnbounded when the objective
// is unbounded below.
func (s *Solver) primal() error {
	for iter := 0; iter < s.maxIter(); iter++ {
		enter := -1
		score := eps
		for j := 0; j < s.ncols; j++ {
			if s.rowOf[j] >= 0 || s.fixed(j) {
				continue
			}
			var sc float64
			if s.atUp[j] {
				sc = s.cost[j] // decreasing from the upper bound pays when rc > 0
			} else {
				sc = -s.cost[j] // increasing from the lower bound pays when rc < 0
			}
			if sc > score {
				enter = j
				if s.bland {
					break // Bland: first eligible index
				}
				score = sc
			}
		}
		if enter == -1 {
			return nil // optimal
		}
		d := 1.0
		if s.atUp[enter] {
			d = -1
		}

		// Ratio test: the entering variable moves by t ≥ 0 in direction d
		// until a basic variable hits a bound or it hits its own opposite
		// bound. Ties break toward the smallest basic column (Bland).
		limit := s.up[enter] - s.lo[enter]
		leave := -1
		leaveToUpper := false
		bestT := math.Inf(1)
		for i := 0; i < s.m; i++ {
			alpha := s.rows[i][enter] * d
			bi := s.basis[i]
			v := s.rows[i][s.ncols]
			var t float64
			var toUpper bool
			switch {
			case alpha > eps:
				t = (v - s.lo[bi]) / alpha
			case alpha < -eps:
				if math.IsInf(s.up[bi], 1) {
					continue
				}
				t = (v - s.up[bi]) / alpha
				toUpper = true
			default:
				continue
			}
			if t < 0 {
				t = 0 // degeneracy dust must not reverse the move
			}
			if leave == -1 || t < bestT-eps || (t <= bestT+eps && bi < s.basis[leave]) {
				leave = i
				leaveToUpper = toUpper
				if t < bestT {
					bestT = t
				}
			}
		}

		if !math.IsInf(limit, 1) && limit <= bestT {
			// The entering variable reaches its other bound first: a
			// bound flip, no basis change.
			for i := 0; i < s.m; i++ {
				s.rows[i][s.ncols] -= s.rows[i][enter] * d * limit
			}
			s.atUp[enter] = !s.atUp[enter]
			s.flips++
			s.progress(limit)
			continue
		}
		if leave == -1 {
			return errUnbounded
		}
		enterVal := s.boundVal(enter) + d*bestT
		for i := 0; i < s.m; i++ {
			s.rows[i][s.ncols] -= s.rows[i][enter] * d * bestT
		}
		s.atUp[s.basis[leave]] = leaveToUpper
		s.installBasic(leave, enter, enterVal)
		s.progress(bestT)
	}
	return ErrIterLimit
}

// dual runs dual simplex until every basic variable is inside its
// bounds. It requires a dual-feasible cost row and returns errInfeasible
// when a violated row admits no entering column (a Farkas certificate).
func (s *Solver) dual() error {
	for iter := 0; iter < s.maxIter(); iter++ {
		r := -1
		worst := feasTol
		for i := 0; i < s.m; i++ {
			bi := s.basis[i]
			v := s.rows[i][s.ncols]
			viol := s.lo[bi] - v
			if over := v - s.up[bi]; over > viol {
				viol = over
			}
			if viol > worst {
				r = i
				if s.bland {
					break // Bland: first violated row
				}
				worst = viol
			}
		}
		if r == -1 {
			return nil // primal feasible
		}
		bi := s.basis[r]
		v := s.rows[r][s.ncols]
		toLower := v < s.lo[bi]
		target := s.up[bi]
		if toLower {
			target = s.lo[bi]
		}

		// Entering column: eligible nonbasic columns are those whose
		// admissible move pushes the violated basic variable toward its
		// bound; the dual ratio |rc/α| keeps the cost row dual feasible.
		enter := -1
		bestRatio := math.Inf(1)
		bestAlpha := 0.0
		for j := 0; j < s.ncols; j++ {
			if s.rowOf[j] >= 0 || s.fixed(j) {
				continue
			}
			alpha := s.rows[r][j]
			if math.Abs(alpha) <= eps {
				continue
			}
			// Moving off a lower bound means Δx_j ≥ 0; off an upper bound
			// Δx_j ≤ 0. The basic value changes by −α·Δx_j.
			up := s.atUp[j]
			if toLower { // need the basic value to increase
				if (!up && alpha >= -eps) || (up && alpha <= eps) {
					continue
				}
			} else { // need it to decrease
				if (!up && alpha <= eps) || (up && alpha >= -eps) {
					continue
				}
			}
			ratio := math.Abs(s.cost[j]) / math.Abs(alpha)
			// Scanning ascending j, ties keep the earlier (smaller) index
			// in Bland mode and prefer the larger |α| pivot otherwise.
			better := ratio < bestRatio-eps ||
				(!s.bland && ratio <= bestRatio+eps && math.Abs(alpha) > math.Abs(bestAlpha))
			if enter == -1 || better {
				enter = j
				if ratio < bestRatio {
					bestRatio = ratio
				}
				bestAlpha = alpha
			}
		}
		if enter == -1 {
			return errInfeasible
		}
		alpha := s.rows[r][enter]
		dx := (v - target) / alpha
		enterVal := s.boundVal(enter) + dx
		for i := 0; i < s.m; i++ {
			s.rows[i][s.ncols] -= s.rows[i][enter] * dx
		}
		s.atUp[bi] = !toLower
		s.installBasic(r, enter, enterVal)
		s.progress(bestRatio) // dual progress: a zero ratio is degenerate
	}
	return ErrIterLimit
}

// primalFeasible reports whether every basic value is inside its bounds.
func (s *Solver) primalFeasible() bool {
	for i := 0; i < s.m; i++ {
		bi := s.basis[i]
		v := s.rows[i][s.ncols]
		if v < s.lo[bi]-feasTol || v > s.up[bi]+feasTol {
			return false
		}
	}
	return true
}

// Solve optimizes from the solver's current state. On a fresh solver
// that is the all-slack basis; after SetBounds / Restore it continues
// from wherever the tableau stands (see Resolve for the warm-start
// contract). The returned Iterations counts only this call's pivots.
func (s *Solver) Solve() (*Solution, error) {
	startIters := s.iters
	s.stall, s.bland = 0, false

	var err error
	switch {
	case s.primalFeasible():
		err = s.primal()
	case !s.dualDeficient:
		if err = s.dual(); err == nil {
			err = s.primal()
		}
	default:
		// No nonbasic status makes the cost row dual feasible (some
		// negative-cost column is unbounded above). Run a feasibility
		// pass: dual simplex against a zero cost row accepts any pivot
		// and terminates at a primal-feasible basis without artificial
		// variables, then the real costs take over.
		for j := range s.cost {
			s.cost[j] = 0
		}
		if err = s.dual(); err == nil {
			s.recomputeCost()
			err = s.primal()
		} else {
			s.recomputeCost()
		}
	}
	return s.finish(startIters, err)
}

// Resolve re-optimizes after bound changes via dual simplex from the
// current basis. The cost row stays dual feasible across SetBounds
// calls, so this is the warm start: typically a handful of pivots where
// a fresh Solve would need a full phase. The returned Iterations counts
// only this call's pivots.
func (s *Solver) Resolve() (*Solution, error) {
	startIters := s.iters
	s.resolves++
	s.stall, s.bland = 0, false
	err := s.dual()
	if err == nil {
		err = s.primal()
	}
	return s.finish(startIters, err)
}

func (s *Solver) finish(startIters int, err error) (*Solution, error) {
	iters := s.iters - startIters
	switch err {
	case nil:
	case errInfeasible:
		return &Solution{Status: Infeasible, Iterations: iters}, nil
	case errUnbounded:
		return &Solution{Status: Unbounded, Iterations: iters}, nil
	default:
		return nil, err
	}
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		var v float64
		if r := s.rowOf[j]; r >= 0 {
			v = s.rows[r][s.ncols]
		} else {
			v = s.boundVal(j)
		}
		// Snap bound dust so callers see exactly-feasible points.
		if v < s.lo[j] {
			v = s.lo[j]
		} else if v > s.up[j] {
			v = s.up[j]
		}
		x[j] = v
	}
	obj := 0.0
	for j := 0; j < s.n; j++ {
		obj += s.c[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iterations: iters}, nil
}

// Iterations returns the lifetime pivot count across all solves.
func (s *Solver) Iterations() int { return s.iters }

// Stats breaks down the solver's lifetime work: total pivots, the
// bound-flip subset (entering variable reached its other bound — no
// basis change), and dual-simplex warm-start restorations (Resolve
// calls). All three are deterministic functions of the solve sequence.
type Stats struct {
	Iterations       int
	BoundFlips       int
	DualRestorations int
}

// Stats returns the solver's lifetime work breakdown.
func (s *Solver) Stats() Stats {
	return Stats{Iterations: s.iters, BoundFlips: s.flips, DualRestorations: s.resolves}
}

// SetBounds replaces variable j's bounds in place. The tableau stays
// consistent and dual feasible: a nonbasic variable is snapped to
// whichever new bound its reduced cost admits (shifting the basic
// values), a basic variable is left to the next Resolve's dual simplex
// to pull back inside the new range.
func (s *Solver) SetBounds(j int, lo, up float64) error {
	if j < 0 || j >= s.n {
		return fmt.Errorf("%w: variable %d of %d", ErrDimensions, j, s.n)
	}
	if math.IsInf(lo, 0) || math.IsNaN(lo) || math.IsNaN(up) || up < lo {
		return fmt.Errorf("%w: variable %d gets [%v, %v]", ErrBounds, j, lo, up)
	}
	oldVal := s.boundVal(j)
	s.lo[j], s.up[j] = lo, up
	if s.rowOf[j] >= 0 {
		return nil
	}
	target := oldVal
	switch {
	case target <= lo+eps:
		s.atUp[j] = false
		target = lo
	case target >= up-eps:
		s.atUp[j] = true
		target = up
	case s.cost[j] >= 0 || math.IsInf(up, 1):
		s.atUp[j] = false
		target = lo
	default:
		s.atUp[j] = true
		target = up
	}
	if !s.fixed(j) {
		// Keep the resting bound dual feasible: rc < 0 belongs at the
		// upper bound, rc > 0 at the lower.
		if !s.atUp[j] && s.cost[j] < -eps && !math.IsInf(up, 1) {
			s.atUp[j] = true
			target = up
		} else if s.atUp[j] && s.cost[j] > eps {
			s.atUp[j] = false
			target = lo
		}
	}
	if delta := target - oldVal; delta != 0 {
		for i := 0; i < s.m; i++ {
			s.rows[i][s.ncols] -= s.rows[i][j] * delta
		}
	}
	return nil
}
