// Package locd formalizes the knowledge model of the Local-knowledge
// Overlay Content Distribution problem (§4.1): k_0(v) is a function of
// vertex v's immediate surroundings (neighbors, incident capacities, h(v),
// w(v)), and k_{i+1}(v) is computable from k_i(v) and the knowledge of v's
// neighbors — information travels bidirectionally along edges even when an
// edge is unidirectional, because "want" information flows back to the
// sender.
//
// The package computes how knowledge propagates and certifies the §4.2
// observation that after at most the knowledge diameter of the graph,
// every vertex can possess full information about the initial state — the
// basis of the additive-diameter online algorithm.
package locd

import (
	"ocd/internal/graph"
	"ocd/internal/tokenset"
)

// Propagate simulates §4.1 knowledge exchange for `steps` timesteps and
// returns know[i][v] = the set of vertices whose initial state v can have
// learned by the start of timestep i (know[0][v] = {v}). Knowledge crosses
// every edge in both directions once per timestep.
func Propagate(g *graph.Graph, steps int) [][]tokenset.Set {
	n := g.N()
	know := make([][]tokenset.Set, steps+1)
	know[0] = make([]tokenset.Set, n)
	for v := 0; v < n; v++ {
		know[0][v] = tokenset.New(n)
		know[0][v].Add(v)
	}
	for i := 1; i <= steps; i++ {
		know[i] = make([]tokenset.Set, n)
		for v := 0; v < n; v++ {
			next := know[i-1][v].Clone()
			for _, a := range g.In(v) {
				next.UnionWith(know[i-1][a.From])
			}
			for _, a := range g.Out(v) {
				next.UnionWith(know[i-1][a.To])
			}
			know[i][v] = next
		}
	}
	return know
}

// FullKnowledgeStep returns the smallest number of timesteps after which
// every vertex knows the initial state of every other vertex, or -1 if the
// bidirectional knowledge graph is disconnected. This is the listening
// delay of the §4.2 propagate-then-plan algorithm.
func FullKnowledgeStep(g *graph.Graph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	know := make([]tokenset.Set, n)
	for v := 0; v < n; v++ {
		know[v] = tokenset.New(n)
		know[v].Add(v)
	}
	for step := 0; step <= n; step++ {
		all := true
		for v := 0; v < n; v++ {
			if know[v].Count() != n {
				all = false
				break
			}
		}
		if all {
			return step
		}
		next := make([]tokenset.Set, n)
		for v := 0; v < n; v++ {
			s := know[v].Clone()
			for _, a := range g.In(v) {
				s.UnionWith(know[a.From])
			}
			for _, a := range g.Out(v) {
				s.UnionWith(know[a.To])
			}
			next[v] = s
		}
		know = next
	}
	return -1
}

// KnowledgeDiameter returns the diameter of the bidirectional knowledge
// graph (edges usable in both directions), the graph-theoretic value
// FullKnowledgeStep realizes operationally.
func KnowledgeDiameter(g *graph.Graph) int {
	// Build the undirected closure and reuse the graph diameter.
	u := graph.New(g.N())
	for _, a := range g.Arcs() {
		if !u.HasArc(a.From, a.To) {
			_ = u.AddArc(a.From, a.To, 1) // valid arcs by construction
		}
		if !u.HasArc(a.To, a.From) {
			_ = u.AddArc(a.To, a.From, 1)
		}
	}
	return u.Diameter()
}
