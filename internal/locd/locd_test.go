package locd

import (
	"testing"

	"ocd/internal/graph"
	"ocd/internal/topology"
)

func TestPropagateLine(t *testing.T) {
	// On a one-way line, knowledge still flows both ways (§4.1).
	g := graph.New(4)
	for i := 0; i+1 < 4; i++ {
		if err := g.AddArc(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	know := Propagate(g, 3)
	if know[0][0].Count() != 1 {
		t.Error("initial knowledge is not only self")
	}
	// After 1 step, interior vertices know both neighbors.
	if know[1][1].Count() != 3 {
		t.Errorf("vertex 1 knows %d after 1 step, want 3", know[1][1].Count())
	}
	// Vertex 0 learns about vertex 3 (3 hops away) exactly at step 3.
	if know[2][0].Has(3) {
		t.Error("knowledge traveled faster than one hop per step")
	}
	if !know[3][0].Has(3) {
		t.Error("knowledge did not traverse the line in diameter steps")
	}
}

func TestFullKnowledgeStepEqualsKnowledgeDiameter(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g, err := topology.Random(20, topology.DefaultCaps, seed)
		if err != nil {
			t.Fatal(err)
		}
		full := FullKnowledgeStep(g)
		diam := KnowledgeDiameter(g)
		if full != diam {
			t.Errorf("seed %d: full-knowledge step %d != knowledge diameter %d",
				seed, full, diam)
		}
	}
}

func TestFullKnowledgeStepOneWayLine(t *testing.T) {
	// Bidirectional knowledge exchange makes even a one-way data line
	// fully knowable in its undirected diameter.
	g := graph.New(5)
	for i := 0; i+1 < 5; i++ {
		if err := g.AddArc(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := FullKnowledgeStep(g); got != 4 {
		t.Errorf("full knowledge step = %d, want 4", got)
	}
}

func TestFullKnowledgeDisconnected(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := FullKnowledgeStep(g); got != -1 {
		t.Errorf("disconnected graph reported %d", got)
	}
	if got := KnowledgeDiameter(g); got != -1 {
		t.Errorf("disconnected knowledge diameter %d", got)
	}
}

func TestFullKnowledgeTrivial(t *testing.T) {
	if got := FullKnowledgeStep(graph.New(1)); got != 0 {
		t.Errorf("singleton graph needs %d steps", got)
	}
	if got := FullKnowledgeStep(graph.New(0)); got != 0 {
		t.Errorf("empty graph needs %d steps", got)
	}
}
