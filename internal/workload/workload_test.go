package workload

import (
	"testing"

	"ocd/internal/core"
	"ocd/internal/exact"
	"ocd/internal/topology"
)

func TestSingleFile(t *testing.T) {
	g, err := topology.Ring(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst := SingleFile(g, 7)
	if err := inst.Check(); err != nil {
		t.Fatal(err)
	}
	if inst.Have[0].Count() != 7 {
		t.Error("source does not hold the full file")
	}
	for v := 1; v < 5; v++ {
		if inst.Want[v].Count() != 7 {
			t.Errorf("vertex %d wants %d tokens", v, inst.Want[v].Count())
		}
	}
	if inst.Want[0].Count() != 0 {
		t.Error("source wants its own file")
	}
}

func TestReceiverDensityExtremes(t *testing.T) {
	g, err := topology.Ring(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	full := ReceiverDensity(g, 5, 1.0, 3)
	receivers := 0
	for v := 1; v < 20; v++ {
		if full.Want[v].Count() > 0 {
			receivers++
		}
	}
	if receivers != 19 {
		t.Errorf("threshold 1.0: %d receivers, want 19", receivers)
	}
	// Threshold 0 still guarantees at least one receiver.
	sparse := ReceiverDensity(g, 5, 0.0, 3)
	receivers = 0
	for v := 1; v < 20; v++ {
		if sparse.Want[v].Count() > 0 {
			receivers++
		}
	}
	if receivers != 1 {
		t.Errorf("threshold 0: %d receivers, want exactly 1", receivers)
	}
}

func TestReceiverDensityDeterministic(t *testing.T) {
	g, err := topology.Ring(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := ReceiverDensity(g, 5, 0.5, 9)
	b := ReceiverDensity(g, 5, 0.5, 9)
	for v := 0; v < 20; v++ {
		if !a.Want[v].Equal(b.Want[v]) {
			t.Fatalf("vertex %d wants differ across identical seeds", v)
		}
	}
}

func TestMultiFilePartition(t *testing.T) {
	g, err := topology.Ring(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := MultiFile(g, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Check(); err != nil {
		t.Fatal(err)
	}
	// 8 receivers in 4 groups of 2; each wants a distinct 2-token file.
	seen := make(map[int]int) // token → wanting receivers
	for v := 1; v < 9; v++ {
		if got := inst.Want[v].Count(); got != 2 {
			t.Errorf("vertex %d wants %d tokens, want 2", v, got)
		}
		inst.Want[v].ForEach(func(tok int) bool {
			seen[tok]++
			return true
		})
	}
	for tok := 0; tok < 8; tok++ {
		if seen[tok] != 2 {
			t.Errorf("token %d wanted by %d receivers, want 2", tok, seen[tok])
		}
	}
}

func TestMultiFileErrors(t *testing.T) {
	g, err := topology.Ring(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MultiFile(g, 8, 3); err == nil {
		t.Error("non-dividing file count accepted")
	}
	if _, err := MultiFile(g, 8, 8); err == nil {
		t.Error("more files than receivers accepted")
	}
	if _, err := MultiFile(g, 8, 0); err == nil {
		t.Error("zero files accepted")
	}
}

func TestMultiSenderSourcesDoNotWant(t *testing.T) {
	g, err := topology.Ring(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := MultiSender(g, 8, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Check(); err != nil {
		t.Fatal(err)
	}
	// Every file's holder must not want that file.
	for v := 0; v < 9; v++ {
		if inst.Have[v].Intersects(inst.Want[v]) {
			t.Errorf("vertex %d both has and wants tokens %v ∩ %v",
				v, inst.Have[v], inst.Want[v])
		}
	}
	// All 8 tokens are held somewhere.
	total := 0
	for v := 0; v < 9; v++ {
		total += inst.Have[v].Count()
	}
	if total != 8 {
		t.Errorf("held tokens = %d, want 8", total)
	}
}

func TestPointToPoint(t *testing.T) {
	g, err := topology.Line(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst := PointToPoint(g, 3, 0, 3)
	if inst.Have[0].Count() != 3 || inst.Want[3].Count() != 3 {
		t.Error("point-to-point layout wrong")
	}
}

func TestFigure1CertifiedOptima(t *testing.T) {
	inst := Figure1()
	if err := inst.Check(); err != nil {
		t.Fatal(err)
	}
	fast, err := exact.SolveFOCD(inst, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Makespan() != 2 {
		t.Errorf("min time = %d steps, want 2", fast.Makespan())
	}
	fastCheapest, err := exact.SolveEOCD(inst, 2, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fastCheapest.Moves() != 6 {
		t.Errorf("min bandwidth at tau=2 is %d, want 6", fastCheapest.Moves())
	}
	cheap, err := exact.SolveEOCD(inst, 0, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cheap.Moves() != 4 || cheap.Makespan() != 3 {
		t.Errorf("min bandwidth = %d moves / %d steps, want 4/3",
			cheap.Moves(), cheap.Makespan())
	}
	if err := core.Validate(inst, cheap); err != nil {
		t.Fatal(err)
	}
}
