// Package workload constructs the OCD instances used in the paper's
// evaluation (§5.2–5.3): single-source single-file distribution to all or a
// density-chosen subset of receivers, and the multi-file subdivision
// scenarios with single or random multiple senders.
package workload

import (
	"fmt"
	"math/rand"

	"ocd/internal/core"
	"ocd/internal/graph"
)

// SingleFile builds the §5.2 workload: one file of m tokens at a single
// source (vertex 0), wanted by every other vertex.
func SingleFile(g *graph.Graph, m int) *core.Instance {
	inst := core.NewInstance(g, m)
	inst.Have[0].AddRange(0, m)
	for v := 1; v < g.N(); v++ {
		inst.Want[v].AddRange(0, m)
	}
	return inst
}

// ReceiverDensity builds the §5.2 receiver-density workload: one file of m
// tokens at vertex 0; every other vertex draws a uniform score and joins
// the want set iff its score is below threshold. At threshold 1 this is
// SingleFile; at 0 no vertex wants anything. At least one receiver is
// always selected so the run is non-trivial.
func ReceiverDensity(g *graph.Graph, m int, threshold float64, seed int64) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	inst := core.NewInstance(g, m)
	inst.Have[0].AddRange(0, m)
	any := false
	for v := 1; v < g.N(); v++ {
		if rng.Float64() < threshold {
			inst.Want[v].AddRange(0, m)
			any = true
		}
	}
	if !any && g.N() > 1 {
		v := 1 + rng.Intn(g.N()-1)
		inst.Want[v].AddRange(0, m)
	}
	return inst
}

// MultiFile builds the §5.3 subdivision workload: m tokens at a single
// source are split into `files` equal files, the non-source vertices are
// split into `files` equal groups, and group i wants exactly file i. The
// total token mass distributed from the source is constant across the
// subdivision sweep, as in the paper. files must divide m and be at most
// the number of non-source vertices.
func MultiFile(g *graph.Graph, m, files int) (*core.Instance, error) {
	n := g.N()
	if files < 1 || m%files != 0 {
		return nil, fmt.Errorf("workload: %d files must evenly divide %d tokens", files, m)
	}
	if files > n-1 {
		return nil, fmt.Errorf("workload: %d files exceed %d receivers", files, n-1)
	}
	inst := core.NewInstance(g, m)
	inst.Have[0].AddRange(0, m)
	perFile := m / files
	receivers := n - 1
	for i := 0; i < receivers; i++ {
		v := i + 1
		file := i * files / receivers
		inst.Want[v].AddRange(file*perFile, (file+1)*perFile)
	}
	return inst, nil
}

// MultiSender builds the §5.3 multiple-senders workload: like MultiFile,
// but the source of each file is a random vertex drawn from the set of
// vertices that do not want that file.
func MultiSender(g *graph.Graph, m, files int, seed int64) (*core.Instance, error) {
	inst, err := MultiFile(g, m, files)
	if err != nil {
		return nil, err
	}
	// Clear the single source and re-seed each file at a random non-wanter.
	inst.Have[0].Clear()
	rng := rand.New(rand.NewSource(seed))
	perFile := m / files
	n := g.N()
	for f := 0; f < files; f++ {
		lo, hi := f*perFile, (f+1)*perFile
		var candidates []int
		for v := 0; v < n; v++ {
			if !inst.Want[v].Has(lo) {
				candidates = append(candidates, v)
			}
		}
		src := candidates[rng.Intn(len(candidates))]
		inst.Have[src].AddRange(lo, hi)
	}
	return inst, nil
}

// PointToPoint builds a minimal sender/receiver instance: src has all m
// tokens, dst wants them all. Used by the competitive-analysis experiments.
func PointToPoint(g *graph.Graph, m, src, dst int) *core.Instance {
	inst := core.NewInstance(g, m)
	inst.Have[src].AddRange(0, m)
	inst.Want[dst].AddRange(0, m)
	return inst
}
