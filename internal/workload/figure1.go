package workload

import (
	"ocd/internal/core"
	"ocd/internal/graph"
)

// Figure1 reconstructs the paper's Figure 1: a graph in which minimizing
// time and minimizing bandwidth are at odds. The figure's exact graph is
// not specified in the text, so we use a 7-vertex gadget engineered to
// reproduce the stated optima exactly:
//
//   - the minimum-time schedule takes 2 timesteps and uses 6 moves,
//   - the minimum-bandwidth schedule uses 4 moves but takes 3 timesteps.
//
// One token starts at s (vertex 0) and is wanted by w, y, x, z. The cheap
// distribution is the relay chain s→w→y→{x,z} (4 moves, but x and z sit at
// depth 3). Finishing in 2 steps forces the two helper vertices a and b
// (which want nothing) to carry copies: s→{w,a,b} then {w→y, a→x, b→z},
// 6 moves. y's only in-arc is from w, so y can never supply x or z before
// step 3, making the helpers unavoidable at τ = 2.
func Figure1() *core.Instance {
	const (
		s = iota
		w
		y
		x
		z
		a
		b
		numVertices
	)
	g := graph.New(numVertices)
	for _, arc := range [][2]int{
		{s, w}, {w, y}, {y, x}, {y, z}, // the bandwidth-optimal relay tree
		{s, a}, {a, x}, // fast helper path to x
		{s, b}, {b, z}, // fast helper path to z
	} {
		// Unit capacities; the tension comes from path depth, not width.
		if err := g.AddArc(arc[0], arc[1], 1); err != nil {
			panic("workload: figure1 gadget construction: " + err.Error())
		}
	}
	inst := core.NewInstance(g, 1)
	inst.Have[s].Add(0)
	for _, v := range []int{w, y, x, z} {
		inst.Want[v].Add(0)
	}
	return inst
}
