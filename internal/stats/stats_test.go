package stats

import (
	"math"
	"strings"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !approx(s.Mean, 2.5) || !approx(s.Min, 1) || !approx(s.Max, 4) {
		t.Errorf("summary = %+v", s)
	}
	// Sample stddev of 1..4 is sqrt(5/3).
	if !approx(s.Stddev, math.Sqrt(5.0/3.0)) {
		t.Errorf("stddev = %f", s.Stddev)
	}
	if !approx(s.Median, 2.5) {
		t.Errorf("median = %f", s.Median)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{5, 1, 9})
	if !approx(s.Median, 5) {
		t.Errorf("median = %f, want 5", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || !approx(s.Mean, 7) || !approx(s.Stddev, 0) || !approx(s.Median, 7) {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4})
	if !approx(s.Mean, 3) {
		t.Errorf("mean = %f", s.Mean)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input reordered")
	}
}

func TestString(t *testing.T) {
	got := Summarize([]float64{1, 2}).String()
	if !strings.Contains(got, "mean=1.50") {
		t.Errorf("String = %q", got)
	}
}
