// Package stats provides the small aggregation helpers the experiment
// harness uses to summarize repeated heuristic runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary aggregates a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	total := 0.0
	for _, x := range xs {
		total += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = total / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// SummarizeInts converts and summarizes integer observations.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.0f max=%.0f", s.N, s.Mean, s.Stddev, s.Min, s.Max)
}
