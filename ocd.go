// Package ocd is the public API of this reproduction of "The Overlay
// Network Content Distribution Problem" (Killian, Vrable, Snoeren, Vahdat,
// Pasquale; UCSD 2005 / PODC 2005 brief announcement).
//
// The package re-exports the problem model (instances, schedules,
// validation, pruning, lower bounds), the topology generators, the paper's
// five distribution heuristics, the exact solvers (schedule branch-and-
// bound and the §3.4 time-indexed integer program), and the experiment
// harness that regenerates every figure of the paper's evaluation.
//
// Quick start:
//
//	g, _ := ocd.RandomTopology(100, ocd.DefaultCaps, 42)
//	inst := ocd.SingleFile(g, 200)
//	res, _ := ocd.RunHeuristic(inst, "local", ocd.RunOptions{Seed: 1, Prune: true})
//	fmt.Println(res.Steps, res.Moves, res.PrunedMoves)
package ocd

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"ocd/internal/baselines"
	"ocd/internal/competitive"
	"ocd/internal/core"
	"ocd/internal/exact"
	"ocd/internal/experiments"
	"ocd/internal/fault"
	"ocd/internal/flow"
	"ocd/internal/graph"
	"ocd/internal/heuristics"
	"ocd/internal/ilp"
	"ocd/internal/protocol"
	"ocd/internal/sim"
	"ocd/internal/steiner"
	"ocd/internal/telemetry"
	"ocd/internal/tokenset"
	"ocd/internal/topology"
	"ocd/internal/trace"
	"ocd/internal/workload"
)

// NewTokenSet returns an empty token set over [0, universe).
func NewTokenSet(universe int) TokenSet { return tokenset.New(universe) }

// Core model types (§3.1).
type (
	// Instance is an OCD problem instance (G, T, h, w).
	Instance = core.Instance
	// Move assigns one token to one arc for one timestep.
	Move = core.Move
	// Step is the simultaneous move set of one timestep.
	Step = core.Step
	// Schedule is a sequence of timesteps.
	Schedule = core.Schedule
	// Graph is a simple weighted directed graph with capacities.
	Graph = graph.Graph
	// Arc is a directed capacitated edge.
	Arc = graph.Arc
	// CapRange is the inclusive capacity range for generated topologies.
	CapRange = topology.CapRange
	// TokenSet is a bitset over token IDs; Instance.Have and Instance.Want
	// are slices of TokenSet indexed by vertex.
	TokenSet = tokenset.Set
	// RunOptions configures a heuristic run.
	RunOptions = sim.Options
	// RunResult summarizes a heuristic run.
	RunResult = sim.Result
	// Strategy plans the moves of one timestep.
	Strategy = sim.Strategy
	// PlanState is the read-only view a Strategy receives each timestep.
	PlanState = sim.State
	// StrategyFactory creates a fresh Strategy per run.
	StrategyFactory = sim.Factory
	// Table is a rendered experiment result.
	Table = experiments.Table
	// ExactOptions bounds the exact solvers.
	ExactOptions = exact.Options
)

// Fault injection (robustness extension) — deterministic, replayable fault
// plans for the engine in internal/fault.
type (
	// FaultPlan composes loss, crash, state-loss, capacity, and gossip
	// models; the zero value is fault-free.
	FaultPlan = fault.Plan
	// FaultResult extends RunResult with the degradation report.
	FaultResult = fault.Result
	// FaultReceiver is one receiver's outcome under faults.
	FaultReceiver = fault.Receiver
	// LossModel decides per-move drops as a pure function of (step, arc,
	// move index).
	LossModel = fault.LossModel
	// CrashModel decides per-step vertex downtime.
	CrashModel = fault.CrashModel
	// CrashEvent is one scripted crash (RecoverAt < 0 = crash-stop).
	CrashEvent = fault.CrashEvent
	// CrashSchedule replays scripted crash events.
	CrashSchedule = fault.CrashSchedule
	// StateLossPolicy selects what a crashing vertex forgets.
	StateLossPolicy = fault.StateLoss
	// RetryOptions configures the retry-with-backoff wrapper.
	RetryOptions = fault.RetryOptions
	// PartitionModel decides per-step arc severing (FaultPlan.Partitions).
	PartitionModel = fault.PartitionModel
	// PartitionEvent is one scripted cut (HealAt < 0 = never heals).
	PartitionEvent = fault.PartitionEvent
	// PartitionSchedule replays scripted partition events.
	PartitionSchedule = fault.PartitionSchedule
	// ChurnModel decides per-step membership absences (FaultPlan.Churn).
	ChurnModel = fault.ChurnModel
	// ChurnEvent is one scripted session gap (RejoinAt < 0 = never returns).
	ChurnEvent = fault.ChurnEvent
	// ChurnSchedule replays scripted churn events.
	ChurnSchedule = fault.ChurnSchedule
	// FaultLiveness classifies a faulted run's terminal state: complete,
	// healable (stalled behind transient faults), or unsatisfiable.
	FaultLiveness = fault.Liveness
)

// Liveness verdicts reported in FaultResult.Liveness.
const (
	LivenessComplete      = fault.LivenessComplete
	LivenessHealable      = fault.LivenessHealable
	LivenessUnsatisfiable = fault.LivenessUnsatisfiable
)

// State-loss policies for crashing vertices.
const (
	// KeepState freezes possession across downtime.
	KeepState = fault.KeepState
	// DropDownloads reverts a crashing vertex to its initial have set.
	DropDownloads = fault.DropDownloads
	// DropAll wipes a crashing vertex entirely — tokens can go extinct.
	DropAll = fault.DropAll
)

// BernoulliLoss drops each move independently with probability P.
func BernoulliLoss(p float64, seed int64) LossModel { return fault.Bernoulli{P: p, Seed: seed} }

// GilbertElliottLoss returns the two-state bursty channel loss model.
func GilbertElliottLoss(pGoodBad, pBadGood, lossGood, lossBad float64, seed int64) LossModel {
	return fault.NewGilbertElliott(pGoodBad, pBadGood, lossGood, lossBad, seed)
}

// RandomCrashes returns memoryless crash/recovery churn; recoverP = 0
// makes every crash permanent, and protected vertices never fail.
func RandomCrashes(crashP, recoverP float64, seed int64, protect ...int) CrashModel {
	return fault.NewRandomCrashes(crashP, recoverP, seed, protect...)
}

// RandomPartitions splits the overlay into k seeded sides and severs every
// cross-side arc during partition episodes: when none is active, one
// starts with probability startP per step and lasts healAfter steps
// (healAfter < 0: the first episode never heals).
func RandomPartitions(k int, startP float64, healAfter int, seed int64) PartitionModel {
	return fault.NewRandomPartitions(k, startP, healAfter, seed)
}

// RandomChurn models session churn: present members leave with leaveP per
// step (losing all state), absent ones rejoin empty with rejoinP per step
// (rejoinP = 0: departures are permanent). Protected vertices never leave.
func RandomChurn(leaveP, rejoinP float64, seed int64, protect ...int) ChurnModel {
	return fault.NewRandomChurn(leaveP, rejoinP, seed, protect...)
}

// CutEdge scripts a full bidirectional link cut over [at, healAt).
func CutEdge(u, v, at, healAt int) []PartitionEvent { return fault.CutEdge(u, v, at, healAt) }

// FaultPlanAtIntensity builds the canonical chaos plan at intensity
// x ∈ [0,1]: bursty loss, crash/recovery churn with download loss, and
// gossip loss, all scaled by x. Protected vertices never crash.
func FaultPlanAtIntensity(x float64, seed int64, protect ...int) FaultPlan {
	return fault.AtIntensity(x, seed, protect...)
}

// RunFaulted runs the named heuristic under the fault plan using the
// crash/recovery-aware engine: it detects provably undeliverable receivers
// via live-holder reachability and terminates gracefully with degradation
// metrics instead of stalling.
func RunFaulted(inst *Instance, name string, plan FaultPlan, opts RunOptions) (*FaultResult, error) {
	f, err := HeuristicFactory(name)
	if err != nil {
		return nil, err
	}
	return fault.Run(inst, f, plan, opts)
}

// RunFaultedStrategy is RunFaulted for a custom strategy factory.
func RunFaultedStrategy(inst *Instance, factory StrategyFactory, plan FaultPlan, opts RunOptions) (*FaultResult, error) {
	return fault.Run(inst, factory, plan, opts)
}

// ValidateFaulted replays a faulted schedule against the plan's crash and
// capacity trajectory, checking constraints only — faulted runs may
// legitimately end partial.
func ValidateFaulted(inst *Instance, sched *Schedule, plan FaultPlan) error {
	return fault.Validate(inst, sched, plan)
}

// ValidateConstraints checks the capacity/possession constraints of a
// schedule without requiring that it satisfies every want set.
func ValidateConstraints(inst *Instance, sched *Schedule) error {
	return core.ValidateConstraints(inst, sched)
}

// RetryFactory wraps a strategy factory in the retry-with-backoff sender:
// moves proposed by the inner strategy that fail to deliver are re-offered
// with exponential backoff, re-routing around crashed senders.
func RetryFactory(inner StrategyFactory, opts RetryOptions) StrategyFactory {
	return fault.WithRetry(inner, opts)
}

// Error sentinels, for errors.Is on run errors.
var (
	// ErrStalled marks a run that made no progress for a full IdlePatience
	// window with wants unsatisfied. A FaultResult's Liveness says whether
	// the stall was healable or the wants provably dead.
	ErrStalled = sim.ErrStalled
	// ErrRetriesExhausted marks a delivery the retry wrapper abandoned
	// after MaxAttempts; it is joined onto the stall error of a run that
	// subsequently made no progress.
	ErrRetriesExhausted = fault.ErrRetriesExhausted
)

// ProtocolLocalWithGossipLoss is ProtocolLocalFactory with lossy knowledge
// gossip: each per-turn neighbor exchange is skipped when drop returns
// true (pair with FaultPlan.Gossip).
func ProtocolLocalWithGossipLoss(drop func(step, from, to int) bool) StrategyFactory {
	return protocol.LocalWithGossipLoss(drop)
}

// Experiment registry — every Experiment* function below is a one-line
// resolution against the declarative spec registry in
// internal/experiments: the same specs back the ocdsim/ocdchaos
// -experiment modes and -spec sweep files, so a facade call, a CLI flag
// set, and a JSON sweep entry are three spellings of the same run.

// ExperimentNames lists the registered experiment specs in sorted order.
func ExperimentNames() []string { return experiments.Names() }

// DescribeExperiments writes the experiment registry listing — every spec
// with its parameter schema, defaults, and seed policy.
func DescribeExperiments(w io.Writer) error { return experiments.Describe(w) }

// RunExperiment runs a registered experiment by name with string parameter
// overrides (exactly what `ocdsim -experiment name -param k=v` passes);
// unset parameters take their declared defaults.
func RunExperiment(name string, params map[string]string) (*Table, error) {
	return experiments.RunStrings(name, params)
}

// ExperimentChaos sweeps fault intensity × heuristic under the canonical
// chaos plan, reporting outcome, delivered fraction, loss/retransmission/
// waste counters, and makespan inflation over a fault-free baseline.
// Heuristic names accept a "retry-" prefix for the backoff wrapper.
func ExperimentChaos(n, tokens int, intensities []float64, heuristicNames []string, seed int64) (*Table, error) {
	return experiments.Run("chaos", experiments.Values{
		"n": n, "tokens": tokens, "intensities": intensities,
		"heuristics": heuristicNames, "seed": seed,
	})
}

// ExperimentCrashedSource crash-stops the sole holder of a single-file
// workload at the given step and shows every heuristic terminating
// gracefully with an explicit unsatisfiable-receiver report.
func ExperimentCrashedSource(n, tokens, crashAt int, seed int64) (*Table, error) {
	return experiments.Run("crashed-source", experiments.Values{
		"n": n, "tokens": tokens, "crash-at": crashAt, "seed": seed,
	})
}

// FaultSweepOptions configures the partition/churn sweeps' harness ring:
// the crash-safety journal, the invariant monitor, and parallelism.
type FaultSweepOptions = experiments.FaultSweepOptions

// ExperimentPartition sweeps partition heal time × heuristic under the
// k-way RandomPartitions model, classifying stalled runs as healable or
// unsatisfiable.
func ExperimentPartition(n, tokens, k int, healAfters []int, heuristicNames []string, seed int64, opts FaultSweepOptions) (*Table, error) {
	return experiments.RunTelemetry("partition", experiments.Values{
		"n": n, "tokens": tokens, "k": k, "heal": healAfters,
		"heuristics": heuristicNames, "seed": seed,
		"journal": opts.JournalPath, "monitor": opts.Monitor, "parallelism": opts.Parallelism,
	}, opts.Telemetry)
}

// ExperimentChurn sweeps membership churn rate × heuristic: members leave
// with per-step probability (losing all state) and rejoin empty.
func ExperimentChurn(n, tokens int, leaveRates []float64, rejoinP float64, heuristicNames []string, seed int64, opts FaultSweepOptions) (*Table, error) {
	return experiments.RunTelemetry("churn", experiments.Values{
		"n": n, "tokens": tokens, "leave": leaveRates, "rejoin": rejoinP,
		"heuristics": heuristicNames, "seed": seed,
		"journal": opts.JournalPath, "monitor": opts.Monitor, "parallelism": opts.Parallelism,
	}, opts.Telemetry)
}

// DefaultCaps is the paper's capacity range: 3..15 tokens per timestep.
var DefaultCaps = topology.DefaultCaps

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewInstance returns an instance over g with m tokens and empty have/want
// sets; populate via inst.Have[v].Add(t) and inst.Want[v].Add(t).
func NewInstance(g *Graph, m int) *Instance { return core.NewInstance(g, m) }

// Topology generators (§5.2).

// RandomTopology generates the paper's Erdős–Rényi G(n, 2·ln n/n) graph.
func RandomTopology(n int, caps CapRange, seed int64) (*Graph, error) {
	return topology.Random(n, caps, seed)
}

// TransitStubTopology generates a GT-ITM-style transit-stub graph with
// approximately n vertices.
func TransitStubTopology(n int, caps CapRange, seed int64) (*Graph, error) {
	return topology.TransitStubN(n, caps, seed)
}

// Workloads (§5.2–5.3).

// SingleFile places one m-token file at vertex 0, wanted by every other
// vertex.
func SingleFile(g *Graph, m int) *Instance { return workload.SingleFile(g, m) }

// ReceiverDensity places one m-token file at vertex 0; each other vertex
// wants it with the given probability threshold.
func ReceiverDensity(g *Graph, m int, threshold float64, seed int64) *Instance {
	return workload.ReceiverDensity(g, m, threshold, seed)
}

// MultiFile splits m tokens at vertex 0 into `files` files wanted by
// disjoint receiver groups.
func MultiFile(g *Graph, m, files int) (*Instance, error) {
	return workload.MultiFile(g, m, files)
}

// MultiSender is MultiFile with each file sourced at a random non-wanting
// vertex.
func MultiSender(g *Graph, m, files int, seed int64) (*Instance, error) {
	return workload.MultiSender(g, m, files, seed)
}

// Figure1Instance returns the reconstructed Figure 1 gadget where time and
// bandwidth optima conflict.
func Figure1Instance() *Instance { return workload.Figure1() }

// Heuristics (§5.1).

// Heuristics lists the five heuristic names in paper order.
func Heuristics() []string { return heuristics.Names() }

// HeuristicFactory returns the factory for a named strategy: the paper's
// five heuristics plus the extensions — "tree" and "forest-K" (§2
// architectures), "protocol-local" (§4.1 message passing),
// "local-delayed-K" (§5.1 stale knowledge), and "retry-<name>" (any of the
// above wrapped in the retry-with-backoff sender for faulted runs).
func HeuristicFactory(name string) (StrategyFactory, error) {
	if f, ok := heuristics.Named(name); ok {
		return f, nil
	}
	if inner, ok := strings.CutPrefix(name, "retry-"); ok {
		f, err := HeuristicFactory(inner)
		if err != nil {
			return nil, err
		}
		return fault.WithRetry(f, fault.RetryOptions{}), nil
	}
	switch {
	case name == "tree":
		return baselines.Tree, nil
	case name == "protocol-local":
		return protocol.Local, nil
	case strings.HasPrefix(name, "forest-"):
		k, err := strconv.Atoi(strings.TrimPrefix(name, "forest-"))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("ocd: bad forest stripe count in %q", name)
		}
		return baselines.Forest(k), nil
	case strings.HasPrefix(name, "local-delayed-"):
		d, err := strconv.Atoi(strings.TrimPrefix(name, "local-delayed-"))
		if err != nil || d < 0 {
			return nil, fmt.Errorf("ocd: bad delay in %q", name)
		}
		return heuristics.LocalDelayed(d), nil
	}
	return nil, fmt.Errorf("ocd: unknown heuristic %q (have %v plus tree, forest-K, protocol-local, local-delayed-K, retry-<name>)",
		name, heuristics.Names())
}

// RunHeuristic runs the named heuristic on the instance.
func RunHeuristic(inst *Instance, name string, opts RunOptions) (*RunResult, error) {
	f, err := HeuristicFactory(name)
	if err != nil {
		return nil, err
	}
	return sim.Run(inst, f, opts)
}

// RunStrategy runs a custom strategy factory on the instance — the
// extension point for user-defined heuristics.
func RunStrategy(inst *Instance, factory StrategyFactory, opts RunOptions) (*RunResult, error) {
	return sim.Run(inst, factory, opts)
}

// RunOracle runs the §4.2 propagate-then-plan online algorithm wrapped
// around the named heuristic; its makespan is within an additive graph
// diameter of the inner plan.
func RunOracle(inst *Instance, name string, seed int64) (*RunResult, error) {
	f, err := HeuristicFactory(name)
	if err != nil {
		return nil, err
	}
	return competitive.RunOracle(inst, f, seed)
}

// Schedule analysis (§3.1, §5.1).

// Validate checks a schedule against the capacity/possession constraints
// and that it satisfies every want set.
func Validate(inst *Instance, sched *Schedule) error { return core.Validate(inst, sched) }

// Prune applies the §5.1 pruning post-pass (duplicate and never-used
// deliveries are removed).
func Prune(inst *Instance, sched *Schedule) *Schedule { return core.Prune(inst, sched) }

// RenderTimeline formats a schedule as a per-timestep text timeline with a
// running completion percentage. maxMovesPerLine truncates wide steps
// (0 = no truncation).
func RenderTimeline(inst *Instance, sched *Schedule, maxMovesPerLine int) string {
	return core.RenderTimeline(inst, sched, maxMovesPerLine)
}

// MakespanLowerBound returns the §5.1 radius-closure bound on remaining
// timesteps from the initial possession.
func MakespanLowerBound(inst *Instance) int { return core.MakespanLowerBound(inst, nil) }

// FlowMakespanLowerBound returns the min-cut bound on remaining timesteps
// (the §2 network-flow relaxation): all missing tokens must cross the
// minimum cut from their holders. Incomparable with the radius bound.
func FlowMakespanLowerBound(inst *Instance) (int, error) {
	return flow.FlowMakespanLowerBound(inst)
}

// CombinedMakespanLowerBound is the max of the radius and flow bounds.
func CombinedMakespanLowerBound(inst *Instance) (int, error) {
	return flow.CombinedMakespanLowerBound(inst)
}

// MaxFlow computes the Edmonds–Karp maximum flow between two vertices of a
// graph, returning the value and the source side of a minimum cut.
func MaxFlow(g *Graph, s, t int) (int, []int, error) { return flow.MaxFlow(g, s, t) }

// BandwidthLowerBound returns the §5.1 remaining-bandwidth bound from the
// initial possession.
func BandwidthLowerBound(inst *Instance) int { return core.BandwidthLowerBound(inst, nil) }

// Exact solvers (§3).

// SolveFOCD returns a minimum-makespan schedule (Fast OCD) by
// branch-and-bound; exponential, intended for small instances.
func SolveFOCD(inst *Instance, opts ExactOptions) (*Schedule, error) {
	return exact.SolveFOCD(inst, opts)
}

// SolveEOCD returns a minimum-bandwidth schedule (Efficient OCD) within
// the given timestep horizon (0 = the Theorem 1 horizon m·(n−1)).
func SolveEOCD(inst *Instance, horizon int, opts ExactOptions) (*Schedule, error) {
	return exact.SolveEOCD(inst, horizon, opts)
}

// SolveILP builds the §3.4 time-indexed integer program for horizon tau
// and solves it by branch-and-bound on an LP relaxation, returning the
// schedule and its optimal move count.
func SolveILP(inst *Instance, tau int) (*Schedule, int, error) {
	prog, err := ilp.Build(inst, tau)
	if err != nil {
		return nil, 0, err
	}
	return prog.Solve(ilp.Options{})
}

// SteinerSchedule realizes §3.3: distribute each token serially over an
// approximate Steiner tree — near-optimal bandwidth, long makespan.
func SteinerSchedule(inst *Instance) (*Schedule, error) {
	return steiner.SerialSchedule(inst)
}

// Experiments — each regenerates one paper figure; see internal/experiments
// for the configuration structs.

// ExperimentGraphSize reproduces Figure 2 (random) or Figure 3
// (transit-stub) at the given sizes.
func ExperimentGraphSize(transitStub bool, sizes []int, tokens, seeds, repeats int, baseSeed int64) (*Table, error) {
	vals := sweepValues(tokens, seeds, repeats, baseSeed)
	vals["topology"] = "random"
	if transitStub {
		vals["topology"] = "transit-stub"
	}
	vals["sizes"] = sizes
	return experiments.Run("graph-size", vals)
}

// ExperimentReceiverDensity reproduces Figure 4.
func ExperimentReceiverDensity(n int, thresholds []float64, tokens, seeds, repeats int, baseSeed int64) (*Table, error) {
	vals := sweepValues(tokens, seeds, repeats, baseSeed)
	vals["n"] = n
	vals["thresholds"] = thresholds
	return experiments.Run("receiver-density", vals)
}

// ExperimentNumFiles reproduces Figure 5 (multiSender=false) or Figure 6
// (multiSender=true).
func ExperimentNumFiles(n int, fileCounts []int, tokens, seeds, repeats int, multiSender bool, baseSeed int64) (*Table, error) {
	vals := sweepValues(tokens, seeds, repeats, baseSeed)
	vals["n"] = n
	vals["files"] = fileCounts
	vals["multi-sender"] = multiSender
	return experiments.Run("num-files", vals)
}

// ExperimentFigure1 certifies the Figure 1 tradeoff with both exact
// solvers.
func ExperimentFigure1() (*Table, error) {
	return experiments.Run("figure1", nil)
}

// ExperimentFigure7 validates the Theorem 5 reduction on random graphs.
func ExperimentFigure7(graphs, n int, edgeP float64, seed int64) (*Table, error) {
	return experiments.Run("figure7", experiments.Values{
		"graphs": graphs, "n": n, "edge-p": edgeP, "seed": seed,
	})
}

// ExperimentTheorem4 measures the unbounded competitive ratio family.
func ExperimentTheorem4(pathLen int, decoySweep []int, capacity int) (*Table, error) {
	return experiments.Run("theorem4", experiments.Values{
		"path": pathLen, "decoys": decoySweep, "capacity": capacity,
	})
}

// ExperimentOracleAdditive measures the §4.2 additive-diameter oracle.
func ExperimentOracleAdditive(sizes []int, tokens int, seed int64) (*Table, error) {
	return experiments.Run("oracle-additive", experiments.Values{
		"sizes": sizes, "tokens": tokens, "seed": seed,
	})
}

// ExperimentILPvsBnB cross-checks the two exact solvers on random tiny
// instances.
func ExperimentILPvsBnB(instances, n, m int, seed int64) (*Table, error) {
	return experiments.Run("ilp-vs-bnb", experiments.Values{
		"instances": instances, "n": n, "m": m, "seed": seed,
	})
}

// Extensions — the paper's §6 open problems, implemented as experiments.

// ExperimentDynamicConditions runs every heuristic under time-varying
// capacity models (§6 "Changing network conditions" and "Arrivals and
// departures").
func ExperimentDynamicConditions(n, tokens int, seed int64) (*Table, error) {
	return experiments.Run("dynamic-conditions", experiments.Values{
		"n": n, "tokens": tokens, "seed": seed,
	})
}

// ExperimentLossCoding compares uncoded vs (k,n)-coded distribution under
// per-move loss (§6 "Encoding").
func ExperimentLossCoding(n, tokens int, lossRate float64, redundancies []float64, seed int64) (*Table, error) {
	return experiments.Run("loss-coding", experiments.Values{
		"n": n, "tokens": tokens, "loss": lossRate, "redundancies": redundancies, "seed": seed,
	})
}

// ExperimentUnderlay compares overlay-only capacities against shared
// physical links (§6 "Realistic topologies").
func ExperimentUnderlay(physN, hosts, tokens int, seed int64) (*Table, error) {
	return experiments.Run("underlay", experiments.Values{
		"phys-n": physN, "hosts": hosts, "tokens": tokens, "seed": seed,
	})
}

// ExperimentKnowledgeDelay ablates the Local heuristic's knowledge
// freshness (§5.1's "state k turns ago" relaxation).
func ExperimentKnowledgeDelay(n, tokens, maxDelay int, seed int64) (*Table, error) {
	return experiments.Run("knowledge-delay", experiments.Values{
		"n": n, "tokens": tokens, "max-delay": maxDelay, "seed": seed,
	})
}

// ExperimentTradeoffCurve certifies the §3.4 hybrid objective on an
// instance: minimum bandwidth at every makespan bound.
func ExperimentTradeoffCurve(inst *Instance) (*Table, error) {
	return experiments.Run("tradeoff-curve", experiments.Values{"instance": inst})
}

// LocalDelayedFactory returns the Local heuristic planning from peer
// views that are `delay` turns stale. Run it with IdlePatience ≥ delay.
func LocalDelayedFactory(delay int) StrategyFactory {
	return heuristics.LocalDelayed(delay)
}

// SolveFOCDILP finds the minimum makespan by binary search on the §3.4
// program's feasibility (the Decisional FOCD problem), returning the
// schedule and the optimal τ.
func SolveFOCDILP(inst *Instance) (*Schedule, int, error) {
	return ilp.SolveFOCD(inst, ilp.Options{})
}

// ExperimentBoundsQuality reports heuristic makespan/bandwidth as ratios
// to certified optima on random small instances (the paper's §1 bound-
// quality promise).
func ExperimentBoundsQuality(instances, n, m int, seed int64) (*Table, error) {
	return experiments.Run("bounds-quality", experiments.Values{
		"instances": instances, "n": n, "m": m, "seed": seed,
	})
}

// ProtocolLocalFactory returns the message-passing realization of the
// Local heuristic: knowledge spreads only via per-turn neighbor gossip
// (§4.1). Run with IdlePatience of at least the graph diameter.
func ProtocolLocalFactory() StrategyFactory { return protocol.Local }

// ExperimentProtocolComparison measures the turn cost of honest
// message-passing knowledge versus the §5.1 idealized instant aggregates.
func ExperimentProtocolComparison(sizes []int, tokens int, seed int64) (*Table, error) {
	return experiments.Run("protocol-comparison", experiments.Values{
		"sizes": sizes, "tokens": tokens, "seed": seed,
	})
}

// TreeFactory returns the §2 single-tree (Overcast-style) architecture as
// a strategy: bandwidth-optimal on all-want workloads, pipeline-bound on
// speed.
func TreeFactory() StrategyFactory { return baselines.Tree }

// ForestFactory returns the §2 striped-forest (SplitStream-style)
// architecture with k stripes.
func ForestFactory(k int) StrategyFactory { return baselines.Forest(k) }

// ExperimentArchitectures compares the §2 tree/forest architectures with
// the paper's mesh heuristics.
func ExperimentArchitectures(n, tokens int, seed int64) (*Table, error) {
	return experiments.Run("architectures", experiments.Values{
		"n": n, "tokens": tokens, "seed": seed,
	})
}

// EncodeInstanceJSON / DecodeInstanceJSON and the schedule counterparts
// serialize workloads for archival and replay.

// EncodeInstanceJSON writes the instance as JSON.
func EncodeInstanceJSON(w io.Writer, inst *Instance) error { return trace.EncodeInstance(w, inst) }

// DecodeInstanceJSON reads and validates an instance from JSON.
func DecodeInstanceJSON(r io.Reader) (*Instance, error) { return trace.DecodeInstance(r) }

// EncodeScheduleJSON writes the schedule as JSON.
func EncodeScheduleJSON(w io.Writer, sched *Schedule) error { return trace.EncodeSchedule(w, sched) }

// DecodeScheduleJSON reads a schedule from JSON.
func DecodeScheduleJSON(r io.Reader) (*Schedule, error) { return trace.DecodeSchedule(r) }

// Step tracing — the simulation kernel's Observer hooks and their standard
// consumer. Attach an Observer through RunOptions.Observer; every engine
// (baseline, dynamic, fault, underlay) feeds the same callbacks.
type (
	// Observer receives per-step callbacks from the simulation kernel; a
	// nil Observer costs nothing.
	Observer = sim.Observer
	// StepRecord is one condensed timestep of a step trace.
	StepRecord = trace.StepRecord
	// StepCollector is the standard Observer: one StepRecord per timestep.
	StepCollector = trace.StepCollector
	// InvariantMonitor is the kernel-invariant sanitizer Observer: it
	// re-checks possession, capacity, down-vertex silence, and token
	// conservation every step.
	InvariantMonitor = trace.InvariantMonitor
	// InvariantConfig adapts the monitor to an engine's fault semantics
	// (pass FaultPlan.DownAt and FaultPlan.EffectiveCapacity for faulted
	// runs); the zero value checks the static model.
	InvariantConfig = trace.InvariantConfig
	// InvariantViolation is one structured invariant breach.
	InvariantViolation = trace.InvariantViolation
)

// NewStepCollector builds a per-step trace collector for runs over inst.
func NewStepCollector(inst *Instance) *StepCollector { return trace.NewStepCollector(inst) }

// NewInvariantMonitor builds a kernel invariant monitor for runs over
// inst; attach it through RunOptions.Observer and check its Err after the
// run.
func NewInvariantMonitor(inst *Instance, cfg InvariantConfig) *InvariantMonitor {
	return trace.NewInvariantMonitor(inst, cfg)
}

// Telemetry — the deterministic-friendly metrics layer. A Registry hands
// out named counters (deterministic: safe to golden-test), gauges, and
// duration histograms (wall-clock: reported, never folded into experiment
// tables). A nil *TelemetryRegistry turns every recording site into a
// no-op, so instrumented code records unconditionally.
type (
	// TelemetryRegistry interns named metrics and snapshots/streams them.
	TelemetryRegistry = telemetry.Registry
	// TelemetryMetric is one snapshotted metric (JSONL stream row).
	TelemetryMetric = telemetry.Metric
	// KernelObserver counts kernel step-phase work (steps, planned,
	// admitted, delivered, lost, rejected) through the Observer seat.
	KernelObserver = telemetry.KernelObserver
)

// NewTelemetryRegistry builds an empty metric registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.New() }

// NewKernelObserver builds a step-phase counting Observer recording into
// reg under kernel.<engine>.*; attach it through RunOptions.Observer via
// its Observer() method. A nil reg yields a nil observer, which the
// kernel treats as "no observer".
func NewKernelObserver(reg *TelemetryRegistry, engine string) *KernelObserver {
	return telemetry.NewKernelObserver(reg, engine)
}

// EncodeStepTraceJSONL writes step records as JSONL (one object per line).
func EncodeStepTraceJSONL(w io.Writer, recs []StepRecord) error {
	return trace.EncodeStepTraceJSONL(w, recs)
}

// DecodeStepTraceJSONL reads a JSONL step trace back, validating structure.
func DecodeStepTraceJSONL(r io.Reader) ([]StepRecord, error) {
	return trace.DecodeStepTraceJSONL(r)
}

// sweepValues normalizes the shared sweep parameters the way the facade
// always has: non-positive tokens/seeds/repeats fall back to the spec
// defaults (the paper's settings), and the base seed is passed through.
func sweepValues(tokens, seeds, repeats int, baseSeed int64) experiments.Values {
	vals := experiments.Values{"seed": baseSeed}
	if tokens > 0 {
		vals["tokens"] = tokens
	}
	if seeds > 0 {
		vals["graph-seeds"] = seeds
	}
	if repeats > 0 {
		vals["repeats"] = repeats
	}
	return vals
}
