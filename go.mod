module ocd

go 1.22
