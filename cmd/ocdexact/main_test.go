package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFigure1Gadget(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gadget", "figure1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"FOCD optimum: tau=2",
		"EOCD optimum: bandwidth=4",
		"min bandwidth at tau*=2: 6 moves",
		"ILP tau=2: bandwidth=6",
		"ILP tau=3: bandwidth=4",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestRandomTiny(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "4", "-tokens", "2", "-seed", "5", "-ilp=false"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "FOCD optimum") {
		t.Errorf("output malformed:\n%s", out.String())
	}
}

func TestUnknownGadget(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gadget", "nope"}, &out); err == nil {
		t.Error("unknown gadget accepted")
	}
}
