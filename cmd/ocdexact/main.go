// Command ocdexact computes certified optimal schedules for small OCD
// instances using the schedule-space branch-and-bound and the §3.4
// time-indexed integer program.
//
//	ocdexact -gadget figure1            # the paper's Figure 1 tension
//	ocdexact -n 4 -tokens 2 -seed 3     # a random tiny instance
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"ocd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ocdexact:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ocdexact", flag.ContinueOnError)
	var (
		gadget  = fs.String("gadget", "", "named instance: figure1 (overrides -n/-tokens)")
		n       = fs.Int("n", 4, "vertices of the random tiny instance")
		tokens  = fs.Int("tokens", 2, "tokens of the random tiny instance")
		seed    = fs.Int64("seed", 1, "random seed")
		budget  = fs.Int("budget", 0, "search node budget (0 = default)")
		withILP = fs.Bool("ilp", true, "cross-check with the time-indexed ILP")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var inst *ocd.Instance
	switch *gadget {
	case "figure1":
		inst = ocd.Figure1Instance()
	case "":
		inst = randomTiny(*n, *tokens, *seed)
	default:
		return fmt.Errorf("unknown gadget %q", *gadget)
	}

	opts := ocd.ExactOptions{MaxNodes: *budget}
	fast, err := ocd.SolveFOCD(inst, opts)
	if err != nil {
		return fmt.Errorf("focd: %w", err)
	}
	fmt.Fprintf(stdout, "FOCD optimum: tau=%d (schedule uses %d moves)\n",
		fast.Makespan(), fast.Moves())

	cheap, err := ocd.SolveEOCD(inst, 0, opts)
	if err != nil {
		return fmt.Errorf("eocd: %w", err)
	}
	fmt.Fprintf(stdout, "EOCD optimum: bandwidth=%d (schedule takes %d timesteps)\n",
		cheap.Moves(), cheap.Makespan())

	atFast, err := ocd.SolveEOCD(inst, fast.Makespan(), opts)
	if err != nil {
		return fmt.Errorf("eocd@tau*: %w", err)
	}
	fmt.Fprintf(stdout, "min bandwidth at tau*=%d: %d moves\n", fast.Makespan(), atFast.Moves())

	if *withILP {
		for _, tau := range []int{fast.Makespan(), cheap.Makespan()} {
			sched, obj, err := ocd.SolveILP(inst, tau)
			if err != nil {
				return fmt.Errorf("ilp tau=%d: %w", tau, err)
			}
			fmt.Fprintf(stdout, "ILP tau=%d: bandwidth=%d timesteps=%d\n",
				tau, obj, sched.Makespan())
		}
	}
	return nil
}

// randomTiny builds a small random connected instance for the exact
// solvers.
func randomTiny(n, m int, seed int64) *ocd.Instance {
	rng := rand.New(rand.NewSource(seed))
	g := ocd.NewGraph(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(perm[i], perm[rng.Intn(i)], 1+rng.Intn(2))
	}
	inst := ocd.NewInstance(g, m)
	for t := 0; t < m; t++ {
		inst.Have[rng.Intn(n)].Add(t)
		inst.Want[rng.Intn(n)].Add(t)
	}
	return inst
}
