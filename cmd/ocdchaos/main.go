// Command ocdchaos is the fault-injection harness: it sweeps fault
// intensity × heuristic under the canonical chaos plan (bursty
// Gilbert–Elliott loss, crash/recovery churn with download loss, gossip
// loss) and reports degradation metrics — outcome, delivered fraction,
// lost/retransmitted/wasted moves, and makespan inflation over a
// fault-free baseline. The crash-source scenario crash-stops the sole
// holder mid-distribution to demonstrate graceful termination with an
// explicit unsatisfiable-receiver report. The partition scenario sweeps
// k-way partition heal times; the churn scenario sweeps membership leave
// rates (members lose all state and rejoin empty). Both support -monitor
// (kernel invariant monitor; any violation fails the run) and -journal
// (crash-safety journal: a killed sweep re-invoked with the same journal
// resumes from its completed cells with byte-identical output).
//
// The binary also speaks the declarative registry: -list prints every
// registered experiment with its parameter schema, -experiment <name>
// runs one with -param name=value overrides, and -spec file.json replays
// a JSON sweep file.
//
// Examples:
//
//	ocdchaos -n 30 -tokens 24 -intensities 0,0.25,0.5,1 -heuristics local,retry-local
//	ocdchaos -scenario crash-source -n 30 -tokens 60 -crash-at 2
//	ocdchaos -scenario partition -k 2 -heal 0,4,16,-1 -monitor
//	ocdchaos -scenario churn -churn-rates 0.01,0.05,0.1 -rejoin 0.5 -journal sweep.jsonl
//	ocdchaos -list
//	ocdchaos -experiment chaos -param intensities=0,0.5 -param heuristics=local -csv
//	ocdchaos -spec sweeps.json -monitor
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ocd"
	"ocd/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ocdchaos:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ocdchaos", flag.ContinueOnError)
	var (
		scenario    = fs.String("scenario", "sweep", "scenario: sweep | crash-source | partition | churn")
		n           = fs.Int("n", 30, "number of vertices")
		tokens      = fs.Int("tokens", 24, "number of tokens in the file")
		intensities = fs.String("intensities", "0,0.25,0.5,0.75,1", "comma-separated fault intensities in [0,1] (sweep)")
		heuristics  = fs.String("heuristics", "local,bandwidth,retry-local", "comma-separated heuristic names; retry-<name> wraps in the backoff sender")
		crashAt     = fs.Int("crash-at", 2, "step at which the sole source crash-stops (crash-source)")
		k           = fs.Int("k", 2, "number of partition sides (partition)")
		heal        = fs.String("heal", "0,4,16,-1", "comma-separated partition heal times in steps, -1 = never heals (partition)")
		churnRates  = fs.String("churn-rates", "0,0.02,0.05,0.1", "comma-separated per-step leave probabilities (churn)")
		rejoin      = fs.Float64("rejoin", 0.5, "per-step rejoin probability for absent members, 0 = departures are permanent (churn)")
		csv         = fs.Bool("csv", false, "emit CSV instead of the ASCII table")
	)
	harness := cliutil.AddHarness(fs)
	spec := cliutil.AddSpecMode(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := harness.Validate(); err != nil {
		return err
	}
	if err := harness.Start(); err != nil {
		return err
	}
	// Finish carries the telemetry/profile write errors; it must reach the
	// exit code even when the run itself failed first.
	err := runModes(fs, stdout, harness, spec, *csv, scenarioFlags{
		scenario: *scenario, n: *n, tokens: *tokens, intensities: *intensities,
		heuristics: *heuristics, crashAt: *crashAt, k: *k, heal: *heal,
		churnRates: *churnRates, rejoin: *rejoin,
	})
	if ferr := harness.Finish(); ferr != nil && err == nil {
		err = ferr
	}
	return err
}

// scenarioFlags bundles the classic (non-spec) mode's parsed flags.
type scenarioFlags struct {
	scenario, intensities, heuristics, heal, churnRates string
	n, tokens, crashAt, k                               int
	rejoin                                              float64
}

func runModes(fs *flag.FlagSet, stdout io.Writer, harness *cliutil.Harness, spec *cliutil.SpecMode, csv bool, sf scenarioFlags) error {
	if spec.Active() {
		return spec.Execute(fs, stdout, csv, harness)
	}
	return runScenario(stdout, harness, csv, sf)
}

func runScenario(stdout io.Writer, harness *cliutil.Harness, csvOut bool, sf scenarioFlags) error {
	scenario, n, tokens, intensities := &sf.scenario, &sf.n, &sf.tokens, &sf.intensities
	heuristics, crashAt, k, heal := &sf.heuristics, &sf.crashAt, &sf.k, &sf.heal
	churnRates, rejoin, csv := &sf.churnRates, &sf.rejoin, &csvOut

	xs, err := cliutil.ParseFloats(*intensities)
	if err != nil {
		return fmt.Errorf("-intensities: %w", err)
	}
	names := cliutil.SplitNames(*heuristics)
	if err := validateFlags(*n, *tokens, *crashAt, xs, names); err != nil {
		return err
	}
	sweepOpts := ocd.FaultSweepOptions{
		JournalPath: harness.Journal, Monitor: harness.Monitor, Parallelism: harness.Parallelism,
		Telemetry: harness.Registry(),
	}

	var tab *ocd.Table
	switch *scenario {
	case "sweep":
		tab, err = ocd.ExperimentChaos(*n, *tokens, xs, names, harness.Seed)
	case "crash-source":
		tab, err = ocd.ExperimentCrashedSource(*n, *tokens, *crashAt, harness.Seed)
	case "partition":
		var heals []int
		if heals, err = cliutil.ParseInts(*heal); err != nil {
			return fmt.Errorf("-heal: %w", err)
		}
		if len(heals) == 0 {
			return fmt.Errorf("-heal is empty")
		}
		if *k < 2 {
			return fmt.Errorf("-k must be at least 2, got %d", *k)
		}
		tab, err = ocd.ExperimentPartition(*n, *tokens, *k, heals, names, harness.Seed, sweepOpts)
	case "churn":
		var rates []float64
		if rates, err = cliutil.ParseFloats(*churnRates); err != nil {
			return fmt.Errorf("-churn-rates: %w", err)
		}
		if len(rates) == 0 {
			return fmt.Errorf("-churn-rates is empty")
		}
		for _, r := range rates {
			if r < 0 || r > 1 {
				return fmt.Errorf("-churn-rates entries must be in [0,1], got %v", r)
			}
		}
		if *rejoin < 0 || *rejoin > 1 {
			return fmt.Errorf("-rejoin must be in [0,1], got %v", *rejoin)
		}
		tab, err = ocd.ExperimentChurn(*n, *tokens, rates, *rejoin, names, harness.Seed, sweepOpts)
	default:
		return fmt.Errorf("unknown scenario %q (have sweep, crash-source, partition, churn)", *scenario)
	}
	if err != nil {
		return err
	}
	return cliutil.WriteTable(stdout, tab, *csv)
}

// validateFlags rejects out-of-range parameters up front with a clear
// message, mirroring cmd/ocdsim.
func validateFlags(n, tokens, crashAt int, xs []float64, names []string) error {
	switch {
	case n <= 0:
		return fmt.Errorf("-n must be positive, got %d", n)
	case tokens <= 0:
		return fmt.Errorf("-tokens must be positive, got %d", tokens)
	case crashAt < 0:
		return fmt.Errorf("-crash-at must be non-negative, got %d", crashAt)
	case len(xs) == 0:
		return fmt.Errorf("-intensities is empty")
	case len(names) == 0:
		return fmt.Errorf("-heuristics is empty")
	}
	for _, x := range xs {
		if x < 0 || x > 1 {
			return fmt.Errorf("-intensities entries must be in [0,1], got %v", x)
		}
	}
	return nil
}
